package finereg

import (
	"testing"

	"finereg/internal/experiments"
	"finereg/internal/kernels"
)

func TestDefaultConfigMatchesTableI(t *testing.T) {
	cfg := DefaultConfig()
	checks := []struct {
		name      string
		got, want int
	}{
		{"SMs", cfg.NumSMs, 16},
		{"max warps/SM", cfg.SM.MaxWarps, 64},
		{"max threads/SM", cfg.SM.MaxThreads, 2048},
		{"max CTAs/SM", cfg.SM.MaxCTAs, 32},
		{"warp schedulers/SM", cfg.SM.NumSchedulers, 4},
		{"register file/SM", cfg.SM.RegFileBytes, 256 << 10},
		{"shared memory/SM", cfg.SM.SharedMemBytes, 96 << 10},
		{"L1 size/SM", cfg.SM.L1Bytes, 48 << 10},
		{"L1 ways", cfg.SM.L1Ways, 8},
		{"L2 size", cfg.L2Bytes, 2048 << 10},
		{"L2 ways", cfg.L2Ways, 8},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d (Table I)", c.name, c.got, c.want)
		}
	}
	// 352.5 GB/s at 1126 MHz = 313 bytes/cycle.
	if cfg.DRAMBytesPerCycle < 310 || cfg.DRAMBytesPerCycle > 316 {
		t.Errorf("DRAM bandwidth = %v B/cycle, want ~313 (352.5 GB/s @ 1126 MHz)", cfg.DRAMBytesPerCycle)
	}
}

func TestBenchmarksAPI(t *testing.T) {
	names := Benchmarks()
	if len(names) != 18 {
		t.Fatalf("Benchmarks() returned %d names, want 18", len(names))
	}
	p, err := BenchmarkProfile("SG")
	if err != nil {
		t.Fatal(err)
	}
	if p.Class != kernels.TypeR {
		t.Error("SGEMM should be Type-R")
	}
	if _, err := BenchmarkProfile("nope"); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestRunBenchmarkPublicAPI(t *testing.T) {
	cfg := ScaledConfig(2)
	m, err := RunBenchmark(cfg, "CS", 32, FineReg())
	if err != nil {
		t.Fatal(err)
	}
	if m.Instructions == 0 || m.IPC() <= 0 {
		t.Errorf("run produced no work: %+v", m)
	}
	e := EstimateEnergy(m, cfg.NumSMs)
	if e.Total() <= 0 {
		t.Error("energy estimate should be positive")
	}
	if e.Leakage <= 0 || e.OthersDyn <= 0 {
		t.Error("energy breakdown components missing")
	}
}

func TestRunCustomKernel(t *testing.T) {
	prof := kernels.Profile{
		Abbrev: "CUSTOM", Name: "custom kernel", Class: kernels.TypeS,
		WarpsPerCTA: 2, Regs: 20, Persistent: 5,
		LoopTrips: 8, StreamLoads: 1, HotLoads: 1, ComputePerIter: 10,
		FootprintKB: 1 << 10, GridCTAs: 16,
	}
	m, err := RunKernel(ScaledConfig(2), prof, 16, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if m.CTAsLaunched != 16 {
		t.Errorf("launched %d CTAs, want 16", m.CTAsLaunched)
	}
}

// TestHeadlineShape asserts the paper's central result holds in shape at
// test scale: FineReg beats every other configuration's mean, the ordering
// FineReg > VT+RegMutex > {Reg+DRAM, VT} > Baseline holds, VT shows no CTA
// gain for Type-R workloads, and FineReg's gains exceed 15% overall.
func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute sweep")
	}
	sweep, err := experiments.RunSweep(experiments.Quick())
	if err != nil {
		t.Fatal(err)
	}
	f13 := experiments.Figure13(sweep)
	fine := f13.Mean[experiments.CfgFineReg][0]
	mutex := f13.Mean[experiments.CfgRegMutex][0]
	vt := f13.Mean[experiments.CfgVT][0]
	dram := f13.Mean[experiments.CfgRegDRAM][0]

	if fine <= mutex {
		t.Errorf("FineReg (%.3f) should outperform VT+RegMutex (%.3f)", fine, mutex)
	}
	if mutex <= vt {
		t.Errorf("VT+RegMutex (%.3f) should outperform VT (%.3f)", mutex, vt)
	}
	if dram < vt-0.01 {
		t.Errorf("Reg+DRAM (%.3f) should not fall below VT (%.3f)", dram, vt)
	}
	if fine < 1.15 {
		t.Errorf("FineReg mean speedup %.3f, want >= 1.15 (paper: 1.328)", fine)
	}
	if vt < 1.0 {
		t.Errorf("VT mean speedup %.3f, want >= 1.0 (paper: ~1.12)", vt)
	}

	f12 := experiments.Figure12(sweep)
	if r := f12.Mean[experiments.CfgFineReg][0]; r < 1.3 {
		t.Errorf("FineReg CTA ratio %.2f, want >= 1.3 (paper: ~2.4x)", r)
	}
	// Paper Section VI-B: Virtual Thread "shows no improvement over the
	// baseline for Type-R workloads".
	if r := f12.Mean[experiments.CfgVT][2]; r > 1.1 {
		t.Errorf("VT Type-R CTA ratio %.2f, want ~1.0", r)
	}
	// FineReg gains more CTAs on Type-S than Type-R (paper: 203.8% vs
	// 79.8%).
	fr := f12.Mean[experiments.CfgFineReg]
	if fr[1] <= fr[2] {
		t.Errorf("FineReg Type-S CTA ratio (%.2f) should exceed Type-R (%.2f)", fr[1], fr[2])
	}

	f16 := experiments.Figure16(sweep)
	if e := f16.Norm[experiments.CfgFineReg]; e >= 1.0 {
		t.Errorf("FineReg normalized energy %.3f, want < 1.0 (paper: 0.787)", e)
	}
}

// TestFigure17Shape asserts the split-sensitivity crossovers: the balanced
// 128/128 split wins, and both extremes lose to it.
func TestFigure17Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute sweep")
	}
	opts := experiments.Quick()
	// A subset keeps this test affordable while spanning both classes.
	opts.Benchmarks = []string{"CS", "SY2", "MC", "LB", "LI", "SG"}
	r, err := experiments.Figure17(opts)
	if err != nil {
		t.Fatal(err)
	}
	best := r.Splits[r.Best()]
	if best.ACRF < 96 || best.ACRF > 160 {
		t.Errorf("best split %d/%d, want near the balanced 128/128", best.ACRF, best.PCRF)
	}
	mid := r.NormPerf[2] // 128/128
	if r.NormPerf[0] > mid {
		t.Errorf("64/192 (%.3f) should not beat 128/128 (%.3f): tiny ACRF causes switch thrash", r.NormPerf[0], mid)
	}
	if r.NormPerf[4] > mid {
		t.Errorf("192/64 (%.3f) should not beat 128/128 (%.3f): tiny PCRF kills TLP", r.NormPerf[4], mid)
	}
	// Active share must grow monotonically as the ACRF grows.
	for i := 1; i < len(r.ActiveShare); i++ {
		if r.ActiveShare[i] < r.ActiveShare[i-1] {
			t.Errorf("active share not monotone in ACRF size: %v", r.ActiveShare)
		}
	}
}
