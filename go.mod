module finereg

go 1.22
