// finereg-sim runs one or more Table II benchmarks under one or more GPU
// configurations and prints per-run metrics. It is the low-level driver;
// finereg-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	finereg-sim [-bench CS,LB | all] [-policy baseline,vt,regdram,regmutex,finereg | all]
//	            [-sms 16] [-grid-scale 1.0] [-srp 0.25] [-dram-cap 4] [-v]
//	            [-json | -csv] [-stalls]
//
// -json and -csv replace the table with machine-readable output on stdout
// (one record per benchmark × policy run, derived ratios included).
// -stalls attaches the stall-attribution tracer to every run so the
// records carry the warp-slot cycle breakdown (small simulation slowdown,
// no timing change).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"finereg/internal/gpu"
	"finereg/internal/kernels"
	"finereg/internal/stats"
	"finereg/internal/trace"
)

func main() {
	var (
		benchFlag  = flag.String("bench", "all", "comma-separated benchmark abbreviations, or 'all'")
		policyFlag = flag.String("policy", "all", "comma-separated policies: baseline,vt,regdram,regmutex,finereg, or 'all'")
		sms        = flag.Int("sms", 16, "number of SMs (shared resources scale proportionally)")
		gridScale  = flag.Float64("grid-scale", 0, "grid-size scale factor (default: sms/16)")
		srp        = flag.Float64("srp", 0.25, "RegMutex SRP fraction of the register file")
		dramCap    = flag.Int("dram-cap", 4, "Reg+DRAM off-chip pending CTAs per SM")
		verbose    = flag.Bool("v", false, "print extended metrics")
		jsonOut    = flag.Bool("json", false, "emit metrics as a JSON array instead of the table")
		csvOut     = flag.Bool("csv", false, "emit metrics as CSV instead of the table")
		stalls     = flag.Bool("stalls", false, "trace each run and attach the stall-cycle breakdown")
	)
	flag.Parse()

	cfg := gpu.Default().Scale(*sms)
	scale := *gridScale
	if scale == 0 {
		scale = float64(*sms) / 16
	}

	var benches []string
	if *benchFlag == "all" {
		benches = kernels.Names()
	} else {
		benches = strings.Split(*benchFlag, ",")
	}
	policies := policySet(*policyFlag, *srp, *dramCap)

	tbl := &stats.Table{Header: []string{"bench/policy", "IPC", "cycles", "resident", "active", "switches", "dramKB"}}
	var runs []*stats.Metrics
	for _, b := range benches {
		p, err := kernels.ProfileByName(strings.TrimSpace(b))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, pol := range policies {
			k := kernels.MustBuild(p, int(float64(p.GridCTAs)*scale+0.5))
			g := gpu.New(cfg, pol.factory)
			var agg *trace.StallAggregator
			if *stalls {
				agg = trace.NewStallAggregator()
				g.SetTrace(agg)
			}
			m, err := g.Run(k)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s/%s: %v\n", b, pol.name, err)
				os.Exit(1)
			}
			if agg != nil {
				bd := agg.Breakdown()
				if err := bd.Check(); err != nil {
					fmt.Fprintf(os.Stderr, "%s/%s: stall accounting: %v\n", b, pol.name, err)
					os.Exit(1)
				}
				m.Stalls = bd
			}
			runs = append(runs, m)
			tbl.AddRow(fmt.Sprintf("%s/%s", p.Abbrev, pol.name),
				m.IPC(), m.Cycles, m.AvgResidentCTAs, m.AvgActiveCTAs, m.CTASwitches, m.DRAMBytes()>>10)
			if *verbose {
				fmt.Printf("# %s/%s: L1 %.1f%% miss, L2 %.1f%% miss, depletion %d cyc, first-stall %.0f cyc, ctx %d KB\n",
					p.Abbrev, pol.name, 100*m.L1MissRate(), 100*m.L2MissRate(),
					m.RegDepletionStallCycles, m.CyclesToFirstStall, m.DRAMContextBytes>>10)
			}
		}
	}
	switch {
	case *jsonOut:
		if err := stats.WriteJSON(os.Stdout, runs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *csvOut:
		if err := stats.WriteCSV(os.Stdout, runs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Print(tbl)
	}
}

type namedPolicy struct {
	name    string
	factory gpu.PolicyFactory
}

func policySet(spec string, srp float64, dramCap int) []namedPolicy {
	all := []namedPolicy{
		{"baseline", gpu.Baseline()},
		{"vt", gpu.VirtualThread()},
		{"regdram", gpu.RegDRAM(dramCap)},
		{"regmutex", gpu.VTRegMutex(srp)},
		{"finereg", gpu.FineRegDefault()},
	}
	if spec == "all" {
		return all
	}
	var out []namedPolicy
	for _, want := range strings.Split(spec, ",") {
		want = strings.TrimSpace(want)
		found := false
		for _, p := range all {
			if p.name == want {
				out = append(out, p)
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown policy %q\n", want)
			os.Exit(1)
		}
	}
	return out
}
