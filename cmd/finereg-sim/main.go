// finereg-sim runs one or more Table II benchmarks under one or more GPU
// configurations and prints per-run metrics. It is the low-level driver;
// finereg-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	finereg-sim [-bench CS,LB | all] [-policy baseline,vt,regdram,regmutex,finereg | all]
//	            [-program file.sasm] [-stream a.sasm,b.sasm] [-partitions 8,8]
//	            [-sms 16] [-shards N] [-grid-scale 1.0] [-srp 0.25] [-dram-cap 4] [-v]
//	            [-json | -csv] [-stalls] [-audit] [-audit-collect]
//	            [-jobs N] [-cache-dir ''] [-no-cache] [-job-timeout 0]
//	            [-progress] [-progress-every N]
//	            [-cpuprofile cpu.out] [-memprofile mem.out]
//
// -program runs a user-supplied .sasm file (the internal/isa assembly
// dialect; launch geometry comes from the source's .warps/.shmem/.grid
// directives) instead of the built-in benchmarks, through the same
// ingestion loader the serving stack uses — the run is byte-identical to
// submitting the same source via POST /v1/jobs. -stream runs several
// files back-to-back as one in-order stream on one GPU (per-kernel
// segment rows plus a combined rollup); with -partitions N1,N2,... the
// same files instead run concurrently, one per static SM partition
// (MPS-style: disjoint SM ranges, shared L2/DRAM; the counts must sum to
// -sms). A file entry of the form bench:XX references a built-in Table II
// benchmark instead of reading a file.
//
// -json and -csv replace the table with machine-readable output on stdout
// (one record per benchmark × policy run, derived ratios included).
// -stalls attaches the stall-attribution tracer to every run so the
// records carry the warp-slot cycle breakdown (small simulation slowdown,
// no timing change).
//
// -progress renders a live status line on stderr — jobs done plus
// cumulative simulated cycles and the live sim-cycles/s rate, sampled
// in-run every -progress-every simulated cycles (default
// gpu.DefaultProgressEvery). Sampling is observation only: results and
// cache keys are byte-identical with it on or off.
//
// -shards parallelizes *within* each simulation: due SMs tick on a pool
// of shard goroutines between deterministic barriers, byte-identical to
// the serial loop at any shard count (DESIGN.md §15). -jobs parallelizes
// *across* simulations; the two compose, so keep jobs × shards near the
// host's core count.
//
// Runs are scheduled through the run engine (internal/runner): -jobs sets
// the worker count (default GOMAXPROCS), -cache-dir enables the on-disk
// result cache (off by default for this low-level driver — pass a
// directory, e.g. .finereg-cache, to share results with finereg-experiments).
// Rows always print in bench × policy order regardless of worker count. A
// failing run no longer aborts the whole sweep: completed rows print, the
// failures are reported on stderr, and the exit status is non-zero.
//
// -cpuprofile and -memprofile write pprof profiles covering the simulation
// batch (not flag parsing or output rendering); see EXPERIMENTS.md for the
// analysis workflow.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"finereg/internal/audit"
	"finereg/internal/gpu"
	"finereg/internal/kernels"
	"finereg/internal/prof"
	"finereg/internal/runner"
	"finereg/internal/stats"
	"finereg/internal/trace"
	"finereg/internal/workload"
)

func main() {
	var (
		benchFlag   = flag.String("bench", "all", "comma-separated benchmark abbreviations, or 'all'")
		policyFlag  = flag.String("policy", "all", "comma-separated policies: baseline,vt,regdram,regmutex,finereg, or 'all'")
		programFlag = flag.String("program", "", "run a user .sasm program file instead of the built-in benchmarks")
		streamFlag  = flag.String("stream", "", "comma-separated .sasm files (or bench:XX entries) run as one in-order stream")
		partsFlag   = flag.String("partitions", "", "comma-separated SM counts (summing to -sms): run the -stream kernels concurrently, one per static partition")
		sms         = flag.Int("sms", 16, "number of SMs (shared resources scale proportionally)")
		shards      = flag.Int("shards", 0, "SM shard goroutines per simulation (0/1 = serial; results byte-identical at any value)")
		gridScale   = flag.Float64("grid-scale", 0, "grid-size scale factor (default: sms/16)")
		srp         = flag.Float64("srp", 0.25, "RegMutex SRP fraction of the register file")
		dramCap     = flag.Int("dram-cap", 4, "Reg+DRAM off-chip pending CTAs per SM")
		verbose     = flag.Bool("v", false, "print extended metrics")
		jsonOut     = flag.Bool("json", false, "emit metrics as a JSON array instead of the table")
		csvOut      = flag.Bool("csv", false, "emit metrics as CSV instead of the table")
		stalls      = flag.Bool("stalls", false, "trace each run and attach the stall-cycle breakdown")
		auditRuns   = flag.Bool("audit", false, "enable the runtime invariant auditor on every run (internal/audit)")
		auditAll    = flag.Bool("audit-collect", false, "audit in collect-all mode: gather every violation and summarize at the end instead of aborting at the first (implies -audit)")
		jobs        = flag.Int("jobs", 0, "parallel simulation workers (0 = GOMAXPROCS)")
		cacheDir    = flag.String("cache-dir", "", "on-disk result cache directory ('' = no disk cache)")
		noCache     = flag.Bool("no-cache", false, "disable the on-disk cache even if -cache-dir is set")
		jobTimeout  = flag.Duration("job-timeout", 0, "per-simulation wall-clock budget (0 = none)")
		progress    = flag.Bool("progress", false, "render a live stderr status line with in-run simulation progress")
		progEvery   = flag.Int64("progress-every", 0, "in-run sample period in simulated cycles (0 = default; needs -progress)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the simulation batch to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile taken after the simulation batch to this file")
	)
	flag.Parse()

	cfg := gpu.Default().Scale(*sms)
	cfg.Shards = *shards
	cfg.Audit = *auditRuns || *auditAll
	cfg.AuditCollect = *auditAll
	scale := *gridScale
	if scale == 0 {
		scale = float64(*sms) / 16
	}

	var benches []string
	if *benchFlag == "all" {
		benches = kernels.Names()
	} else {
		benches = strings.Split(*benchFlag, ",")
	}
	policies := policySet(*policyFlag, *srp, *dramCap)

	dir := *cacheDir
	if *noCache {
		dir = ""
	}
	eng := &runner.Engine{
		Jobs:    *jobs,
		Cache:   runner.NewCache(dir),
		Timeout: *jobTimeout,
	}
	if *progress {
		every := *progEvery
		if every <= 0 {
			every = gpu.DefaultProgressEvery
		}
		line := trace.NewProgress(os.Stderr)
		eng.Events = line
		eng.ProgressEvery = every
		defer line.Close()
	}

	var jobList []*runner.Job
	if *programFlag != "" || *streamFlag != "" {
		progs, name, err := programSpecs(*programFlag, *streamFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "finereg-sim:", err)
			os.Exit(1)
		}
		if *partsFlag != "" {
			cfg.Partitions, err = parsePartitions(*partsFlag)
			if err != nil {
				fmt.Fprintln(os.Stderr, "finereg-sim:", err)
				os.Exit(1)
			}
		}
		for _, pol := range policies {
			j := &runner.Job{
				Cfg:      cfg,
				Programs: progs,
				Policy:   pol.spec,
				Stalls:   *stalls,
				Label:    name + "/" + pol.name,
			}
			// Same admission gate as the service path: malformed source
			// fails here with the assembler's line/column, not mid-run.
			if err := j.Validate(); err != nil {
				fmt.Fprintln(os.Stderr, "finereg-sim:", err)
				os.Exit(1)
			}
			jobList = append(jobList, j)
		}
	} else {
		if *partsFlag != "" {
			fmt.Fprintln(os.Stderr, "finereg-sim: -partitions needs -stream (one kernel per partition)")
			os.Exit(1)
		}
		for _, b := range benches {
			p, err := kernels.ProfileByName(strings.TrimSpace(b))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			for _, pol := range policies {
				jobList = append(jobList, &runner.Job{
					Cfg:     cfg,
					Profile: p,
					Grid:    int(float64(p.GridCTAs)*scale + 0.5),
					Policy:  pol.spec,
					Stalls:  *stalls,
					Label:   p.Abbrev + "/" + pol.name,
				})
			}
		}
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "finereg-sim:", err)
		os.Exit(1)
	}
	batch := eng.Run(jobList)
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "finereg-sim:", err)
		os.Exit(1)
	}

	tbl := &stats.Table{Header: []string{"bench/policy", "IPC", "cycles", "resident", "active", "switches", "dramKB"}}
	var runs []*stats.Metrics
	for i, j := range jobList {
		if batch.Errs[i] != nil {
			continue
		}
		m := batch.Results[i].Metrics
		runs = append(runs, m)
		tbl.AddRow(j.Label,
			m.IPC(), m.Cycles, m.AvgResidentCTAs, m.AvgActiveCTAs, m.CTASwitches, m.DRAMBytes()>>10)
		// Multi-kernel jobs: one row per stream/partition segment under the
		// rollup (segments ride along in -json/-csv output too).
		for si, seg := range batch.Results[i].Segments {
			runs = append(runs, seg)
			tbl.AddRow(fmt.Sprintf("  [%d] %s", si, seg.Benchmark),
				seg.IPC(), seg.Cycles, seg.AvgResidentCTAs, seg.AvgActiveCTAs, seg.CTASwitches, seg.DRAMBytes()>>10)
		}
		if *verbose {
			fmt.Printf("# %s: L1 %.1f%% miss, L2 %.1f%% miss, depletion %d cyc, first-stall %.0f cyc, ctx %d KB\n",
				j.Label, 100*m.L1MissRate(), 100*m.L2MissRate(),
				m.RegDepletionStallCycles, m.CyclesToFirstStall, m.DRAMContextBytes>>10)
		}
	}
	switch {
	case *jsonOut:
		if err := stats.WriteJSON(os.Stdout, runs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *csvOut:
		if err := stats.WriteCSV(os.Stdout, runs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Print(tbl)
	}

	// Partial-sweep reporting: every run that completed has been printed;
	// failures are listed individually and reflected in the exit status.
	if failed := batch.Failed(); len(failed) > 0 {
		for _, i := range failed {
			var vs *audit.ViolationSet
			if errors.As(batch.Errs[i], &vs) {
				// Collect-mode verdict: the per-rule summary reads better
				// than the wrapped error chain.
				fmt.Fprintf(os.Stderr, "finereg-sim: %s: %s\n", jobList[i].Label, vs.Summary())
				continue
			}
			fmt.Fprintf(os.Stderr, "finereg-sim: %v\n", batch.Errs[i])
		}
		fmt.Fprintf(os.Stderr, "finereg-sim: %d/%d runs failed\n", len(failed), len(jobList))
		os.Exit(1)
	}
}

// programSpecs turns -program/-stream into workload specs plus a display
// name. Each entry is a .sasm file path or bench:XX for a built-in
// benchmark; files are read here, so the job carries the source text and
// runs through the exact loader the serving stack uses.
func programSpecs(program, stream string) ([]workload.Program, string, error) {
	if program != "" && stream != "" {
		return nil, "", errors.New("use -program or -stream, not both")
	}
	entries := []string{program}
	if stream != "" {
		entries = strings.Split(stream, ",")
	}
	var progs []workload.Program
	var names []string
	for _, e := range entries {
		e = strings.TrimSpace(e)
		if b, ok := strings.CutPrefix(e, "bench:"); ok {
			progs = append(progs, workload.Program{Bench: b})
			names = append(names, b)
			continue
		}
		text, err := os.ReadFile(e)
		if err != nil {
			return nil, "", err
		}
		progs = append(progs, workload.Program{Source: string(text)})
		names = append(names, strings.TrimSuffix(filepath.Base(e), filepath.Ext(e)))
	}
	return progs, strings.Join(names, "+"), nil
}

// parsePartitions parses -partitions (e.g. "8,8"); gpu.ValidatePartitions
// checks the geometry during job validation.
func parsePartitions(s string) ([]int, error) {
	var parts []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad -partitions entry %q", f)
		}
		parts = append(parts, n)
	}
	return parts, nil
}

type namedPolicy struct {
	name string
	spec runner.PolicySpec
}

func policySet(spec string, srp float64, dramCap int) []namedPolicy {
	all := []namedPolicy{
		{"baseline", runner.Baseline()},
		{"vt", runner.VirtualThread()},
		{"regdram", runner.RegDRAM(dramCap)},
		{"regmutex", runner.VTRegMutex(srp)},
		{"finereg", runner.FineRegDefault()},
	}
	if spec == "all" {
		return all
	}
	var out []namedPolicy
	for _, want := range strings.Split(spec, ",") {
		want = strings.TrimSpace(want)
		found := false
		for _, p := range all {
			if p.name == want {
				out = append(out, p)
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown policy %q\n", want)
			os.Exit(1)
		}
	}
	return out
}
