// finereg-fleet runs the distributed-simulation coordinator: the same v1
// HTTP/JSON API as finereg-serve, but execution is dispatched to a fleet
// of worker nodes (ordinary finereg-serve processes started with
// -coordinator).
//
// Usage:
//
//	finereg-fleet [-addr :8320] [-nodes http://h1:8321,http://h2:8321]
//	              [-queue 64] [-max-batch 256]
//	              [-cache-dir .finereg-fleet-cache] [-no-cache]
//	              [-slots 4] [-poll-every 50ms]
//	              [-probe-every 2s] [-down-after 3]
//	              [-progress-every N] [-drain-timeout 30s] [-quiet]
//
// Endpoints (beyond the full finereg-serve v1 API):
//
//	GET  /v1/cache/{key}      shared result tier (workers' remote cache)
//	PUT  /v1/cache/{key}      write-through from workers
//	GET  /v1/fleet/workers    fleet membership and per-node state
//	POST /v1/fleet/workers    worker self-registration {"url": "..."}
//
// Jobs route to workers by rendezvous hashing on their content-addressed
// key, so a repeated job lands on the worker whose disk cache already
// holds it; idle workers steal from the longest backlog; a worker that
// stops answering has its jobs requeued onto survivors. The coordinator's
// own cache — consulted before any dispatch, populated by every committed
// result and worker write-through — answers repeats without touching the
// fleet at all.
//
// -nodes seeds the fleet statically; workers started with -coordinator
// register themselves, so a pure self-assembling cluster needs no -nodes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"finereg/internal/fleet"
	"finereg/internal/serve"
	"finereg/internal/trace"
)

func main() {
	var (
		addr         = flag.String("addr", ":8320", "listen address")
		nodes        = flag.String("nodes", "", "comma-separated worker base URLs (workers can also self-register)")
		queueCap     = flag.Int("queue", serve.DefaultQueueCap, "admission queue capacity (full queue sheds with 429)")
		maxBatch     = flag.Int("max-batch", serve.DefaultMaxBatch, "max jobs per batch request")
		cacheDir     = flag.String("cache-dir", ".finereg-fleet-cache", "shared result cache directory ('' = memory only)")
		noCache      = flag.Bool("no-cache", false, "keep the shared cache in memory only")
		slots        = flag.Int("slots", 4, "concurrent dispatches per worker node")
		pollEvery    = flag.Duration("poll-every", 50*time.Millisecond, "per-job status poll period against workers")
		probeEvery   = flag.Duration("probe-every", 2*time.Second, "worker liveness probe period")
		downAfter    = flag.Int("down-after", 3, "consecutive failures before a worker is marked down")
		progEvery    = flag.Int64("progress-every", 0, "in-run sample period forwarded from workers (0 = default, negative = off)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "shutdown grace for dispatched jobs")
		quiet        = flag.Bool("quiet", false, "suppress the stderr progress line")
	)
	flag.Parse()

	dir := *cacheDir
	if *noCache {
		dir = ""
	}
	var nodeList []string
	for _, n := range strings.Split(*nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodeList = append(nodeList, n)
		}
	}

	coord := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Nodes:         nodeList,
		CacheDir:      dir,
		QueueCap:      *queueCap,
		MaxBatch:      *maxBatch,
		ProgressEvery: *progEvery,
		Slots:         *slots,
		PollEvery:     *pollEvery,
		ProbeEvery:    *probeEvery,
		DownAfter:     *downAfter,
	})
	if !*quiet {
		progress := trace.NewProgress(os.Stderr)
		coord.Server().Fanout().Subscribe(progress)
		defer progress.Close()
	}

	hs := &http.Server{Addr: *addr, Handler: coord}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "finereg-fleet: coordinating on %s (%d seed workers, cache %s)\n",
		*addr, len(nodeList), cacheLabel(dir))

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "finereg-fleet: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "\nfinereg-fleet: draining (up to %s)...\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Service first, listener second — same ordering rationale as
	// finereg-serve: SSE streams only terminate once the service drains.
	if err := coord.Shutdown(dctx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "finereg-fleet: drain deadline hit, outstanding dispatches cancelled\n")
	}
	hs.Shutdown(dctx)
	fmt.Fprintln(os.Stderr, "finereg-fleet: bye")
}

func cacheLabel(dir string) string {
	if dir == "" {
		return "memory-only"
	}
	return dir
}
