// finereg-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	finereg-experiments [-only t2,f2,f3,f4,f5,t3,f12,f13,f14,f15,f16,f17,f18,f19,abl,stalls]
//	                    [-sms 16] [-grid-scale 1.0] [-quick]
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"finereg/internal/experiments"
)

func main() {
	var (
		only      = flag.String("only", "", "comma-separated experiment ids (default: all)")
		sms       = flag.Int("sms", 16, "number of SMs")
		gridScale = flag.Float64("grid-scale", 1.0, "workload grid scale")
		quick     = flag.Bool("quick", false, "use the 4-SM quick configuration")
	)
	flag.Parse()

	opts := experiments.Options{SMs: *sms, GridScale: *gridScale}
	if *quick {
		opts = experiments.Quick()
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	var sweep *experiments.Sweep
	getSweep := func() *experiments.Sweep {
		if sweep == nil {
			var err error
			sweep, err = experiments.RunSweep(opts)
			check(err)
		}
		return sweep
	}

	run := func(id, title string, f func() (interface{ Render() string }, error)) {
		if !selected(id) {
			return
		}
		start := time.Now()
		r, err := f()
		check(err)
		fmt.Printf("==== %s (%s) ====\n%s\n", id, title, r.Render())
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}

	run("t2", "Table II: benchmark classification", func() (interface{ Render() string }, error) {
		return experiments.TableII(), nil
	})
	run("f2", "Figure 2: resource scaling", func() (interface{ Render() string }, error) {
		return experiments.Figure2(opts)
	})
	run("f3", "Figure 3: per-CTA overhead", func() (interface{ Render() string }, error) {
		return experiments.Figure3(), nil
	})
	run("f4", "Figure 4: CS case study", func() (interface{ Render() string }, error) {
		return experiments.Figure4(opts)
	})
	run("f5", "Figure 5: register usage windows", func() (interface{ Render() string }, error) {
		return experiments.Figure5(opts)
	})
	run("t3", "Table III: cycles to full stall", func() (interface{ Render() string }, error) {
		return experiments.TableIII(opts)
	})
	run("f12", "Figure 12: concurrent CTAs", func() (interface{ Render() string }, error) {
		return experiments.Figure12(getSweep()), nil
	})
	run("f13", "Figure 13: normalized IPC", func() (interface{ Render() string }, error) {
		return experiments.Figure13(getSweep()), nil
	})
	run("f14", "Figure 14: SRP ratio and depletion stalls", func() (interface{ Render() string }, error) {
		return experiments.Figure14(opts)
	})
	run("f15", "Figure 15: memory traffic", func() (interface{ Render() string }, error) {
		return experiments.Figure15(opts)
	})
	run("f16", "Figure 16: energy", func() (interface{ Render() string }, error) {
		return experiments.Figure16(getSweep()), nil
	})
	run("f17", "Figure 17: ACRF/PCRF split sensitivity", func() (interface{ Render() string }, error) {
		return experiments.Figure17(opts)
	})
	run("f18", "Figure 18: SM scaling", func() (interface{ Render() string }, error) {
		counts := []int{16, 32, 64, 128}
		if *quick {
			counts = []int{4, 8, 16}
		}
		return experiments.Figure18(opts, counts)
	})
	run("f19", "Figure 19: unified on-chip memory", func() (interface{ Render() string }, error) {
		return experiments.Figure19(opts)
	})
	run("abl", "Ablations: FineReg design choices", func() (interface{ Render() string }, error) {
		return experiments.Ablations(opts)
	})
	run("stalls", "Stall attribution: warp-slot cycle breakdown", func() (interface{ Render() string }, error) {
		return experiments.StallBreakdowns(opts, nil)
	})
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "finereg-experiments:", err)
		os.Exit(1)
	}
}
