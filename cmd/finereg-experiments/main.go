// finereg-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	finereg-experiments [-only t2,f2,f3,f4,f5,t3,f12,f13,f14,f15,f16,f17,f18,f19,abl,stalls,mps]
//	                    [-sms 16] [-shards N] [-grid-scale 1.0] [-quick] [-audit] [-audit-collect]
//	                    [-jobs N] [-cache-dir .finereg-cache] [-no-cache]
//	                    [-job-timeout 0] [-server http://host:8321]
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured record.
//
// All simulations run through one shared run engine (internal/runner): a
// worker pool (-jobs, default GOMAXPROCS) with a content-addressed result
// cache (-cache-dir, default .finereg-cache). The cache dedups repeated
// points both within a run (the Figure 12/13/16 sweep points, the stall
// probes that coincide with sweep candidates) and across invocations; a
// rerun of an already-computed figure is nearly free. -no-cache keeps
// results in memory only — points still dedup within the invocation, but
// nothing is read from or written to disk. Progress and a final scheduling
// summary go to stderr; the tables stay on stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"finereg/internal/experiments"
	"finereg/internal/runner"
	"finereg/internal/serve"
	"finereg/internal/trace"
)

// experimentIDs lists the valid -only ids in presentation order.
var experimentIDs = []string{
	"t2", "f2", "f3", "f4", "f5", "t3",
	"f12", "f13", "f14", "f15", "f16", "f17", "f18", "f19",
	"abl", "stalls", "mps",
}

func main() {
	var (
		only       = flag.String("only", "", "comma-separated experiment ids (default: all)")
		sms        = flag.Int("sms", 16, "number of SMs")
		shards     = flag.Int("shards", 0, "SM shard goroutines per simulation (0/1 = serial; results and cache keys identical at any value)")
		gridScale  = flag.Float64("grid-scale", 1.0, "workload grid scale")
		quick      = flag.Bool("quick", false, "use the 4-SM quick configuration")
		auditRuns  = flag.Bool("audit", false, "enable the runtime invariant auditor on every simulation")
		auditAll   = flag.Bool("audit-collect", false, "audit in collect-all mode: summarize every violation at the end instead of aborting at the first (implies -audit)")
		jobs       = flag.Int("jobs", 0, "parallel simulation workers (0 = GOMAXPROCS)")
		cacheDir   = flag.String("cache-dir", ".finereg-cache", "on-disk result cache directory ('' = memory only)")
		noCache    = flag.Bool("no-cache", false, "keep results in memory only (no disk reads or writes)")
		jobTimeout = flag.Duration("job-timeout", 0, "per-simulation wall-clock budget (0 = none)")
		server     = flag.String("server", "", "run simulations on a finereg-serve instance (e.g. http://localhost:8321) instead of in-process")
	)
	flag.Parse()

	opts := experiments.Options{SMs: *sms, GridScale: *gridScale}
	if *quick {
		opts = experiments.Quick()
	}
	opts.Shards = *shards
	opts.Audit = *auditRuns || *auditAll
	opts.AuditCollect = *auditAll

	valid := map[string]bool{}
	for _, id := range experimentIDs {
		valid[id] = true
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			if !valid[id] {
				fmt.Fprintf(os.Stderr, "finereg-experiments: unknown experiment id %q (valid: %s)\n",
					id, strings.Join(experimentIDs, ","))
				os.Exit(2)
			}
			want[id] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	// One engine for the whole invocation: every figure shares the worker
	// pool, the cache, and the progress line, so points repeated across
	// figures — the sweep feeding Figures 12/13/16, the stall probes that
	// coincide with sweep candidates — simulate at most once.
	dir := *cacheDir
	if *noCache {
		dir = ""
	}
	progress := trace.NewProgress(os.Stderr)
	eng := &runner.Engine{
		Jobs:    *jobs,
		Cache:   runner.NewCache(dir),
		Timeout: *jobTimeout,
		Events:  progress,
	}
	opts.Runner = eng
	if *server != "" {
		// Remote mode: batches go to the finereg-serve instance; the
		// server's engine owns the workers and the cache, so the local
		// knobs (-jobs, -cache-dir, -job-timeout) do not apply.
		opts.Service = &serve.Client{Base: strings.TrimRight(*server, "/")}
	}

	run := func(id, title string, f func() (interface{ Render() string }, error)) {
		if !selected(id) {
			return
		}
		start := time.Now()
		r, err := f()
		progress.Close()
		check(err)
		fmt.Printf("==== %s (%s) ====\n%s\n", id, title, r.Render())
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}

	run("t2", "Table II: benchmark classification", func() (interface{ Render() string }, error) {
		return experiments.TableII(), nil
	})
	run("f2", "Figure 2: resource scaling", func() (interface{ Render() string }, error) {
		return experiments.Figure2(opts)
	})
	run("f3", "Figure 3: per-CTA overhead", func() (interface{ Render() string }, error) {
		return experiments.Figure3(), nil
	})
	run("f4", "Figure 4: CS case study", func() (interface{ Render() string }, error) {
		return experiments.Figure4(opts)
	})
	run("f5", "Figure 5: register usage windows", func() (interface{ Render() string }, error) {
		return experiments.Figure5(opts)
	})
	run("t3", "Table III: cycles to full stall", func() (interface{ Render() string }, error) {
		return experiments.TableIII(opts)
	})
	// The sweep figures each re-request the full sweep; the engine's cache
	// collapses the repeats, so the simulations behind Figures 12/13/16 run
	// once no matter how many of the three are selected (the old lazy
	// singleton, without the cross-invocation reuse).
	run("f12", "Figure 12: concurrent CTAs", func() (interface{ Render() string }, error) {
		s, err := experiments.RunSweep(opts)
		if err != nil {
			return nil, err
		}
		return experiments.Figure12(s), nil
	})
	run("f13", "Figure 13: normalized IPC", func() (interface{ Render() string }, error) {
		s, err := experiments.RunSweep(opts)
		if err != nil {
			return nil, err
		}
		return experiments.Figure13(s), nil
	})
	run("f14", "Figure 14: SRP ratio and depletion stalls", func() (interface{ Render() string }, error) {
		return experiments.Figure14(opts)
	})
	run("f15", "Figure 15: memory traffic", func() (interface{ Render() string }, error) {
		return experiments.Figure15(opts)
	})
	run("f16", "Figure 16: energy", func() (interface{ Render() string }, error) {
		s, err := experiments.RunSweep(opts)
		if err != nil {
			return nil, err
		}
		return experiments.Figure16(s), nil
	})
	run("f17", "Figure 17: ACRF/PCRF split sensitivity", func() (interface{ Render() string }, error) {
		return experiments.Figure17(opts)
	})
	run("f18", "Figure 18: SM scaling", func() (interface{ Render() string }, error) {
		counts := []int{16, 32, 64, 128}
		if *quick {
			counts = []int{4, 8, 16}
		}
		return experiments.Figure18(opts, counts)
	})
	run("f19", "Figure 19: unified on-chip memory", func() (interface{ Render() string }, error) {
		return experiments.Figure19(opts)
	})
	run("abl", "Ablations: FineReg design choices", func() (interface{ Render() string }, error) {
		return experiments.Ablations(opts)
	})
	run("stalls", "Stall attribution: warp-slot cycle breakdown", func() (interface{ Render() string }, error) {
		return experiments.StallBreakdowns(opts, nil)
	})
	run("mps", "MPS co-scheduling: multi-tenant interference", func() (interface{ Render() string }, error) {
		return experiments.MPS(opts, nil)
	})

	progress.Close()
	st := eng.Stats()
	fmt.Fprintf(os.Stderr, "engine: %d submitted, %d simulated, %d cache hits (%d disk), %d deduped in flight (cache: %s)\n",
		st.Submitted, st.Executed, st.CacheHits, st.DiskHits, st.Deduped, eng.Cache.Stats())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "finereg-experiments:", err)
		os.Exit(1)
	}
}
