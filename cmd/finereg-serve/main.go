// finereg-serve runs the simulator as a long-lived HTTP/JSON service —
// standalone, or as a worker node of a finereg-fleet coordinator.
//
// Usage:
//
//	finereg-serve [-addr :8321] [-workers N] [-queue 64] [-max-batch 256]
//	              [-cache-dir .finereg-cache] [-no-cache] [-job-timeout 0]
//	              [-progress-every N] [-shards N|auto] [-quiet]
//	              [-coordinator http://host:port] [-advertise http://host:port]
//
// Endpoints:
//
//	POST /v1/jobs              submit one simulation
//	POST /v1/batches           submit a batch (admitted whole or shed whole)
//	GET  /v1/jobs/{id}         job status + result
//	GET  /v1/jobs/{id}/events  SSE lifecycle + progress stream
//	GET  /v1/batches/{id}      batch status
//	GET  /metrics              Prometheus text metrics
//	GET  /healthz              liveness (503 while draining)
//
// Freshly simulated jobs stream in-run `progress` SSE events (simulated
// cycle, CTA launch/retire counts, live sim-cycles/s, telemetry op
// deltas) sampled every -progress-every simulated cycles; the same
// samples feed the fleet-wide /metrics series (finereg_sim_*). Pass a
// negative -progress-every to disable in-run sampling.
//
// -shards threads intra-run SM parallelism (gpu.Config.Shards) through
// to every job this node simulates: each run's event steps Tick due SMs
// across that many shard goroutines, byte-identical to serial execution
// and invisible to the result cache. "auto" splits the host's cores over
// the job-level workers (max(1, NumCPU/workers)); 0 leaves jobs serial.
// In worker mode the setting is per-node, so a fleet can mix serial and
// sharded workers freely.
//
// Identical jobs coalesce: in-flight duplicates share one execution, and
// completed ones are answered from the content-addressed cache without
// re-simulation. When the admission queue is full the server sheds with
// 429 + Retry-After rather than queueing unboundedly. SIGINT/SIGTERM
// starts a graceful drain: in-flight simulations get -drain-timeout to
// finish before being stopped cooperatively.
//
// Worker mode: with -coordinator set, the server mounts the coordinator
// as its cache's remote tier (mem -> disk -> coordinator; a result
// computed anywhere in the fleet is a local hit) and announces itself to
// the coordinator every -announce-every as -advertise (derived from
// -addr when unset: ":8322" advertises "http://127.0.0.1:8322").
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"finereg/internal/fleet"
	"finereg/internal/runner"
	"finereg/internal/serve"
	"finereg/internal/trace"
)

func main() {
	var (
		addr         = flag.String("addr", ":8321", "listen address")
		workers      = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queueCap     = flag.Int("queue", serve.DefaultQueueCap, "admission queue capacity (full queue sheds with 429)")
		maxBatch     = flag.Int("max-batch", serve.DefaultMaxBatch, "max jobs per batch request")
		cacheDir     = flag.String("cache-dir", ".finereg-cache", "on-disk result cache directory ('' = memory only)")
		noCache      = flag.Bool("no-cache", false, "keep results in memory only (no disk reads or writes)")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-simulation wall-clock budget (0 = none)")
		progEvery    = flag.Int64("progress-every", 0, "in-run sample period in simulated cycles (0 = default, negative = off)")
		shardsFlag   = flag.String("shards", "0", "intra-run SM shards per simulation (0 = serial, 'auto' = cores/workers)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "shutdown grace for in-flight simulations")
		quiet        = flag.Bool("quiet", false, "suppress the stderr progress line")
		coordinator  = flag.String("coordinator", "", "fleet coordinator base URL (worker mode: remote cache tier + self-registration)")
		advertise    = flag.String("advertise", "", "base URL workers advertise to the coordinator (default derived from -addr)")
		announce     = flag.Duration("announce-every", 5*time.Second, "worker re-registration period in worker mode")
	)
	flag.Parse()

	dir := *cacheDir
	if *noCache {
		dir = ""
	}
	cache := runner.NewCache(dir)
	if *coordinator != "" {
		cache.Remote = &fleet.CacheClient{Base: *coordinator}
	}
	eng := &runner.Engine{
		Jobs:    *workers,
		Cache:   cache,
		Timeout: *jobTimeout,
	}
	shards, err := parseShards(*shardsFlag, *workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "finereg-serve: %v\n", err)
		os.Exit(2)
	}
	srv := serve.New(serve.Config{
		Engine:        eng,
		Workers:       *workers,
		QueueCap:      *queueCap,
		MaxBatch:      *maxBatch,
		ProgressEvery: *progEvery,
		Shards:        shards,
	})
	if !*quiet {
		progress := trace.NewProgress(os.Stderr)
		srv.Fanout().Subscribe(progress)
		defer progress.Close()
	}

	hs := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "finereg-serve: listening on %s (cache %s)\n", *addr, cacheLabel(dir))

	if *coordinator != "" {
		self := *advertise
		if self == "" {
			self = deriveAdvertise(*addr)
		}
		fmt.Fprintf(os.Stderr, "finereg-serve: worker of %s (advertising %s)\n", *coordinator, self)
		go fleet.AnnounceLoop(ctx, *coordinator, self, *announce, nil)
	}

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "finereg-serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "\nfinereg-serve: draining (up to %s)...\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Service first: draining closes SSE streams and answers submissions
	// with 503 while in-flight jobs finish. Only then stop the HTTP
	// listener — the other order would leave hs.Shutdown waiting on SSE
	// connections that only terminate once the service drains.
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "finereg-serve: drain deadline hit, in-flight simulations stopped\n")
	}
	hs.Shutdown(dctx)
	fmt.Fprintln(os.Stderr, "finereg-serve: bye")
}

func cacheLabel(dir string) string {
	if dir == "" {
		return "memory-only"
	}
	return dir
}

// parseShards resolves the -shards flag. "auto" divides the host's cores
// over the job-level worker slots, so one saturated node does not
// oversubscribe: 16 cores / 4 workers = 4 shards per simulation. A lone
// worker gets every core; more workers than cores degrades to serial.
func parseShards(v string, workers int) (int, error) {
	if v == "auto" {
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		n := runtime.NumCPU() / workers
		if n < 1 {
			n = 1
		}
		return n, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid -shards %q (want a non-negative integer or 'auto')", v)
	}
	return n, nil
}

// deriveAdvertise turns a listen address into a URL the coordinator can
// dial: ":8322" (all interfaces) advertises the loopback address — right
// for a single-machine cluster; multi-host fleets pass -advertise.
func deriveAdvertise(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	return "http://" + addr
}
