// finereg-liveness dumps the compiler-side view of a kernel: its
// disassembly, control-flow graph, post-dominator reconvergence points,
// and the per-PC live-register bit vectors the FineReg RMU consumes.
//
//	finereg-liveness [-bench CS | -program file.sasm] [-emit-asm]
//
// -program (alias -asm) analyzes a user .sasm file through the same
// ingestion loader the simulator and the serving stack use, so what this
// tool prints — and the errors it reports, with the assembler's
// line/column — is exactly what a submitted job would see.
package main

import (
	"flag"
	"fmt"
	"os"

	"finereg/internal/isa"
	"finereg/internal/kernels"
	"finereg/internal/liveness"
	"finereg/internal/workload"
)

func main() {
	bench := flag.String("bench", "CS", "Table II benchmark abbreviation")
	asmFile := flag.String("asm", "", "analyze a .sasm file instead of a built-in benchmark")
	programFile := flag.String("program", "", "alias for -asm")
	emitAsm := flag.Bool("emit-asm", false, "print the kernel in assembly format and exit")
	flag.Parse()

	file := *asmFile
	if file == "" {
		file = *programFile
	}
	var k *kernels.Kernel
	if file != "" {
		text, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// The service-path loader: assemble, validate, liveness-analyze,
		// derive the occupancy profile.
		k, err = (&workload.Program{Source: string(text)}).Load(kernels.Limits{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		prof, err := kernels.ProfileByName(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		k = kernels.MustBuild(prof, 1)
	}
	if *emitAsm {
		fmt.Print(isa.EmitAsm(k.Prog))
		return
	}
	if file != "" {
		p := &k.Profile
		fmt.Printf("kernel %s: %d warps/CTA, %d regs/thread, %d B shared/CTA, grid %d CTAs\n\n",
			p.Abbrev, p.WarpsPerCTA, p.Regs, p.SharedMem, k.GridCTAs)
	}
	fmt.Print(isa.Disassemble(k.Prog))
	fmt.Println()

	g, err := liveness.BuildCFG(k.Prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(g.String())
	pdom := g.PostDominators()
	fmt.Print("post-dominators: ")
	for i, d := range pdom {
		fmt.Printf("B%d->B%d ", i, d)
	}
	fmt.Println()
	fmt.Println()

	info := k.Live
	fmt.Println("per-PC live-register bit vectors (what a stalled warp must preserve):")
	for pc := 0; pc < k.Prog.Len(); pc++ {
		fmt.Printf("/*%04X*/ %2d live %v\n", pc*8, info.LiveCount(pc), info.At(pc))
	}
	fmt.Printf("\nmax live %d / mean live %.1f of %d allocated registers\n",
		info.MaxLive(), info.MeanLive(), k.Prog.RegsPerThread)
	fmt.Printf("off-chip bit-vector table: %d bytes (12 B x %d static instructions)\n",
		info.BitVectorBytes(), k.Prog.Len())
}
