// finereg-liveness dumps the compiler-side view of a kernel: its
// disassembly, control-flow graph, post-dominator reconvergence points,
// and the per-PC live-register bit vectors the FineReg RMU consumes.
//
//	finereg-liveness [-bench CS]
package main

import (
	"flag"
	"fmt"
	"os"

	"finereg/internal/isa"
	"finereg/internal/kernels"
	"finereg/internal/liveness"
)

func main() {
	bench := flag.String("bench", "CS", "Table II benchmark abbreviation")
	asmFile := flag.String("asm", "", "analyze an assembly file instead of a built-in benchmark")
	emitAsm := flag.Bool("emit-asm", false, "print the kernel in assembly format and exit")
	flag.Parse()

	var prog *isa.Program
	if *asmFile != "" {
		text, err := os.ReadFile(*asmFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		p, err := isa.Assemble(string(text))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		prog = p
	} else {
		prof, err := kernels.ProfileByName(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		prog = kernels.MustBuild(prof, 1).Prog
	}
	if *emitAsm {
		fmt.Print(isa.EmitAsm(prog))
		return
	}
	k := struct {
		Prog *isa.Program
		Live *liveness.Info
	}{Prog: prog, Live: liveness.MustAnalyze(prog)}
	fmt.Print(isa.Disassemble(k.Prog))
	fmt.Println()

	g, err := liveness.BuildCFG(k.Prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(g.String())
	pdom := g.PostDominators()
	fmt.Print("post-dominators: ")
	for i, d := range pdom {
		fmt.Printf("B%d->B%d ", i, d)
	}
	fmt.Println()
	fmt.Println()

	info := k.Live
	fmt.Println("per-PC live-register bit vectors (what a stalled warp must preserve):")
	for pc := 0; pc < k.Prog.Len(); pc++ {
		fmt.Printf("/*%04X*/ %2d live %v\n", pc*8, info.LiveCount(pc), info.At(pc))
	}
	fmt.Printf("\nmax live %d / mean live %.1f of %d allocated registers\n",
		info.MaxLive(), info.MeanLive(), k.Prog.RegsPerThread)
	fmt.Printf("off-chip bit-vector table: %d bytes (12 B x %d static instructions)\n",
		info.BitVectorBytes(), k.Prog.Len())
}
