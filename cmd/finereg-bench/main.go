// finereg-bench measures the run engine's parallel and cached speedup on
// the quick sweep and writes the result as JSON (scripts/bench_sweep.sh
// wraps it to produce BENCH_sweep.json).
//
// Usage:
//
//	finereg-bench [-jobs 4] [-benches CS,FD,LB,LI] [-out BENCH_sweep.json]
//	finereg-bench -hotpath [-out BENCH_hotpath.json]
//
// Three timings of the same sweep: serial (1 worker, cold), parallel
// (-jobs workers, cold), and cached (any workers, warm cache). The
// rendered tables of the serial and parallel runs are byte-compared — the
// engine's determinism guarantee — and the comparison result is recorded.
//
// -hotpath switches to the single-thread simulator-throughput benchmark:
// one CS run per policy at the quick scale (4 SMs, grid 256) and at the
// paper scale (16 SMs, reference grid), best of three, reporting simulated
// cycles per wall-clock second. This is the number the event-driven core
// optimizes; scripts/bench_sweep.sh records it as BENCH_hotpath.json.
// The report also sweeps the sharded event core (gpu.Config.Shards at
// 1/2/4/8 on the paper-16sm finereg cell) — the intra-simulation
// parallelism axis; its speedup only materializes on multi-core hosts.
//
// -cpuprofile and -memprofile write pprof profiles covering the measured
// runs; see EXPERIMENTS.md for the analysis workflow.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"finereg"
	"finereg/internal/experiments"
	"finereg/internal/gpu"
	"finereg/internal/prof"
	"finereg/internal/runner"
	"finereg/internal/telemetry"
	"finereg/internal/trace"
)

type report struct {
	Date       string   `json:"date"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Jobs       int      `json:"jobs"`
	Benches    []string `json:"benches"`

	JobsPerSweep int `json:"jobs_per_sweep"`

	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	CachedSeconds   float64 `json:"cached_seconds"`

	ParallelSpeedup float64 `json:"parallel_speedup"`
	CacheSpeedup    float64 `json:"cache_speedup"`

	ByteIdentical bool `json:"byte_identical"`
}

// hotpathRow is one policy × machine-scale throughput measurement.
// Shards > 0 marks a sharded-core sweep row (0 = the serial loop).
type hotpathRow struct {
	Scale        string  `json:"scale"`
	SMs          int     `json:"sms"`
	Shards       int     `json:"shards,omitempty"`
	Policy       string  `json:"policy"`
	Bench        string  `json:"bench"`
	Grid         int     `json:"grid"`
	Cycles       int64   `json:"cycles"`
	Seconds      float64 `json:"seconds"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// Sharded-row gate traffic, from the par_* telemetry counters.
	// GateSyncsPerCycle is cross-core gate operations (frontier publishes
	// + waits) per simulated cycle under batched publication + speculative
	// reads; PerVisit is the same run costed at the PR 8 protocol (one
	// publish per SM visit, one wait per shared touch incl. the reads that
	// now speculate) — the reduction factor is the ratio. SpecReplayRate
	// is speculative commits replayed / speculative reads.
	GateSyncsPerCycle float64 `json:"gate_syncs_per_cycle,omitempty"`
	PerVisitSyncs     float64 `json:"gate_syncs_per_cycle_pervisit,omitempty"`
	SpecReplayRate    float64 `json:"spec_replay_rate,omitempty"`
}

type hotpathReport struct {
	Date   string       `json:"date"`
	GOOS   string       `json:"goos"`
	GOARCH string       `json:"goarch"`
	NumCPU int          `json:"num_cpu"`
	Reps   int          `json:"reps"`
	Rows   []hotpathRow `json:"rows"`
	// ShardSpeedup is cycles/s at the best swept shard count over the
	// serial loop, paper-16sm finereg cell. Only meaningful on multi-core
	// hosts — with NumCPU 1 the shards time-slice one core and the ratio
	// sits at or below 1.
	ShardSpeedup float64 `json:"shard_speedup,omitempty"`
	BestShards   int     `json:"best_shards,omitempty"`
	// ShardRegression marks a sweep where no sharded row beat the serial
	// loop (BestShards is then honestly 1 and ShardSpeedup the least-bad
	// sharded ratio, below 1). Expected on single-core hosts, where the
	// shards time-slice one CPU.
	ShardRegression bool            `json:"shard_regression,omitempty"`
	Progress        hotpathOverhead `json:"progress"`
}

// hotpathOverhead is the observability tax measurement: the quick-4sm
// finereg cell timed with in-run progress sampling off and on (no-op
// callback at the default period). OnOverOff should sit within run-to-run
// noise of 1.0 — the sampler piggybacks on the event schedule and adds no
// work between samples.
type hotpathOverhead struct {
	SampleEvery     int64   `json:"sample_every"`
	OffCyclesPerSec float64 `json:"off_cycles_per_sec"`
	OnCyclesPerSec  float64 `json:"on_cycles_per_sec"`
	OnOverOff       float64 `json:"on_over_off"`
}

func main() {
	var (
		jobs       = flag.Int("jobs", 4, "worker count for the parallel run")
		benches    = flag.String("benches", "CS,FD,LB,LI", "benchmark subset for the sweep")
		out        = flag.String("out", "BENCH_sweep.json", "output JSON path ('-' = stdout)")
		hotpath    = flag.Bool("hotpath", false, "measure raw simulator throughput per policy instead of the engine sweep")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the measured runs to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile taken after the measured runs to this file")
	)
	flag.Parse()
	outSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "out" {
			outSet = true
		}
	})

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "finereg-bench:", err)
		os.Exit(1)
	}

	if *hotpath {
		if !outSet {
			*out = "BENCH_hotpath.json"
		}
		r := runHotpath()
		finishProfile(stopProf)
		writeJSON(*out, r)
		fmt.Fprintf(os.Stderr, "finereg-bench: hotpath (%d rows, best of %d) -> %s\n",
			len(r.Rows), r.Reps, *out)
		return
	}

	opts := experiments.Quick()
	opts.Benchmarks = strings.Split(*benches, ",")

	sweep := func(eng *runner.Engine) (string, float64) {
		opts.Runner = eng
		start := time.Now()
		s, err := experiments.RunSweep(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "finereg-bench:", err)
			os.Exit(1)
		}
		secs := time.Since(start).Seconds()
		return experiments.Figure13(s).Render(), secs
	}

	r := report{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Jobs:       *jobs,
		Benches:    opts.Benchmarks,
	}

	serialTbl, serialSecs := sweep(&runner.Engine{Jobs: 1})
	parTbl, parSecs := sweep(&runner.Engine{Jobs: *jobs})

	warm := &runner.Engine{Jobs: *jobs, Cache: runner.NewCache("")}
	if _, prime := sweep(warm); prime <= 0 {
		fmt.Fprintln(os.Stderr, "finereg-bench: implausible priming time")
		os.Exit(1)
	}
	_, cachedSecs := sweep(warm)
	r.JobsPerSweep = int(warm.Stats().Submitted) / 2

	r.SerialSeconds = serialSecs
	r.ParallelSeconds = parSecs
	r.CachedSeconds = cachedSecs
	r.ParallelSpeedup = serialSecs / parSecs
	r.CacheSpeedup = serialSecs / cachedSecs
	r.ByteIdentical = serialTbl == parTbl
	if !r.ByteIdentical {
		fmt.Fprintln(os.Stderr, "finereg-bench: WARNING: serial and parallel tables differ")
	}
	finishProfile(stopProf)

	writeJSON(*out, r)
	fmt.Fprintf(os.Stderr, "finereg-bench: %d jobs/sweep on %d CPUs: serial %.1fs, parallel(%d) %.1fs (%.2fx), cached %.3fs (%.0fx) -> %s\n",
		r.JobsPerSweep, r.NumCPU, serialSecs, *jobs, parSecs, r.ParallelSpeedup, cachedSecs, r.CacheSpeedup, *out)
}

// hotpathReps is the repetition count per cell; the minimum wall time wins
// (standard throughput practice — the runs are deterministic, so spread
// between reps is pure scheduler noise).
const hotpathReps = 3

// runHotpath times one CS simulation per policy at two machine scales on a
// single goroutine — the raw cycle-loop throughput, with no run-engine
// parallelism to muddy attribution.
func runHotpath() hotpathReport {
	scales := []struct {
		name string
		cfg  finereg.Config
		grid int
	}{
		{"quick-4sm", finereg.ScaledConfig(4), 256},
		{"paper-16sm", finereg.DefaultConfig(), 0},
	}
	policies := []struct {
		name string
		pf   finereg.PolicyFactory
	}{
		{"baseline", finereg.Baseline()},
		{"vt", finereg.VirtualThread()},
		{"regdram", finereg.RegDRAM(4)},
		{"regmutex", finereg.VTRegMutex(0.25)},
		{"finereg", finereg.FineReg()},
	}
	r := hotpathReport{
		Date:   time.Now().UTC().Format(time.RFC3339),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		Reps:   hotpathReps,
	}
	for _, sc := range scales {
		for _, pol := range policies {
			var cycles int64
			best := 0.0
			for rep := 0; rep < hotpathReps; rep++ {
				start := time.Now()
				m, err := finereg.RunBenchmark(sc.cfg, "CS", sc.grid, pol.pf)
				secs := time.Since(start).Seconds()
				if err != nil {
					fmt.Fprintf(os.Stderr, "finereg-bench: hotpath %s/%s: %v\n", sc.name, pol.name, err)
					os.Exit(1)
				}
				cycles = m.Cycles
				if rep == 0 || secs < best {
					best = secs
				}
			}
			r.Rows = append(r.Rows, hotpathRow{
				Scale:        sc.name,
				SMs:          sc.cfg.NumSMs,
				Policy:       pol.name,
				Bench:        "CS",
				Grid:         sc.grid,
				Cycles:       cycles,
				Seconds:      best,
				CyclesPerSec: float64(cycles) / best,
			})
		}
	}
	r.runShardSweep()
	r.Progress = runProgressOverhead()
	return r
}

// runShardSweep times the paper-16sm finereg cell under the sharded
// event core at increasing shard counts (1 = the serial loop, measured
// here too so the comparison shares a process and cache state). Results
// are byte-identical at every count — the golden matrix pins that — so
// the only thing that moves is wall-clock time, and only when the host
// has cores to spread the shards over.
func (r *hotpathReport) runShardSweep() {
	gateWaits := telemetry.NewCounter("par_gate_waits")
	gatePublishes := telemetry.NewCounter("par_gate_publishes")
	parRounds := telemetry.NewCounter("par_rounds")
	specReads := telemetry.NewCounter("par_spec_reads")
	specReplays := telemetry.NewCounter("par_spec_replays")

	cfg := finereg.DefaultConfig()
	serial := 0.0
	for _, shards := range []int{1, 2, 4, 8} {
		cfg.Shards = shards
		var cycles int64
		best := 0.0
		waits0, pubs0 := gateWaits.Value(), gatePublishes.Value()
		rounds0, reads0, replays0 := parRounds.Value(), specReads.Value(), specReplays.Value()
		for rep := 0; rep < hotpathReps; rep++ {
			start := time.Now()
			m, err := finereg.RunBenchmark(cfg, "CS", 0, finereg.FineReg())
			secs := time.Since(start).Seconds()
			if err != nil {
				fmt.Fprintf(os.Stderr, "finereg-bench: shard sweep shards=%d: %v\n", shards, err)
				os.Exit(1)
			}
			cycles = m.Cycles
			if rep == 0 || secs < best {
				best = secs
			}
		}
		cps := float64(cycles) / best
		row := hotpathRow{
			Scale:        "paper-16sm",
			SMs:          cfg.NumSMs,
			Shards:       shards,
			Policy:       "finereg",
			Bench:        "CS",
			Cycles:       cycles,
			Seconds:      best,
			CyclesPerSec: cps,
		}
		if shards > 1 {
			// Gate traffic over all reps (counters are process-global),
			// normalized per simulated cycle across the same reps. The
			// per-visit column costs the identical run at the PR 8
			// protocol: one publish per SM per parallel round, plus a wait
			// for each shared touch — including the reads that now
			// speculate past the gate instead of waiting at it.
			waits := float64(gateWaits.Value() - waits0)
			pubs := float64(gatePublishes.Value() - pubs0)
			rounds := float64(parRounds.Value() - rounds0)
			reads := float64(specReads.Value() - reads0)
			replays := float64(specReplays.Value() - replays0)
			simCycles := float64(cycles) * hotpathReps
			row.GateSyncsPerCycle = (waits + pubs) / simCycles
			row.PerVisitSyncs = (rounds*float64(cfg.NumSMs) + waits + reads) / simCycles
			if reads > 0 {
				row.SpecReplayRate = replays / reads
			}
		}
		r.Rows = append(r.Rows, row)
		if shards == 1 {
			serial = cps
		} else if speedup := cps / serial; speedup > r.ShardSpeedup {
			r.ShardSpeedup = speedup
			r.BestShards = shards
		}
	}
	// Honesty: when every sharded row loses to the serial loop, the best
	// shard count for this host is 1 — say so instead of crowning the
	// least-bad regression.
	if r.ShardSpeedup <= 1 {
		r.BestShards = 1
		r.ShardRegression = true
	}
}

// runProgressOverhead times the quick-4sm finereg cell with progress
// sampling off and with a no-op callback on, best of hotpathReps each,
// and reports the on/off throughput ratio.
func runProgressOverhead() hotpathOverhead {
	time1 := func(cfg finereg.Config) float64 {
		var cycles int64
		best := 0.0
		for rep := 0; rep < hotpathReps; rep++ {
			start := time.Now()
			m, err := finereg.RunBenchmark(cfg, "CS", 256, finereg.FineReg())
			secs := time.Since(start).Seconds()
			if err != nil {
				fmt.Fprintf(os.Stderr, "finereg-bench: progress overhead: %v\n", err)
				os.Exit(1)
			}
			cycles = m.Cycles
			if rep == 0 || secs < best {
				best = secs
			}
		}
		return float64(cycles) / best
	}
	off := finereg.ScaledConfig(4)
	on := finereg.ScaledConfig(4)
	on.Progress = func(trace.ProgressSample) {}
	ov := hotpathOverhead{
		SampleEvery:     gpu.DefaultProgressEvery,
		OffCyclesPerSec: time1(off),
		OnCyclesPerSec:  time1(on),
	}
	ov.OnOverOff = ov.OnCyclesPerSec / ov.OffCyclesPerSec
	return ov
}

func finishProfile(stop func() error) {
	if err := stop(); err != nil {
		fmt.Fprintln(os.Stderr, "finereg-bench:", err)
		os.Exit(1)
	}
}

func writeJSON(out string, v any) {
	b, err := json.MarshalIndent(v, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, "finereg-bench:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if out == "-" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "finereg-bench:", err)
		os.Exit(1)
	}
}
