// finereg-bench measures the run engine's parallel and cached speedup on
// the quick sweep and writes the result as JSON (scripts/bench_sweep.sh
// wraps it to produce BENCH_sweep.json).
//
// Usage:
//
//	finereg-bench [-jobs 4] [-benches CS,FD,LB,LI] [-out BENCH_sweep.json]
//
// Three timings of the same sweep: serial (1 worker, cold), parallel
// (-jobs workers, cold), and cached (any workers, warm cache). The
// rendered tables of the serial and parallel runs are byte-compared — the
// engine's determinism guarantee — and the comparison result is recorded.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"finereg/internal/experiments"
	"finereg/internal/runner"
)

type report struct {
	Date       string   `json:"date"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Jobs       int      `json:"jobs"`
	Benches    []string `json:"benches"`

	JobsPerSweep int `json:"jobs_per_sweep"`

	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	CachedSeconds   float64 `json:"cached_seconds"`

	ParallelSpeedup float64 `json:"parallel_speedup"`
	CacheSpeedup    float64 `json:"cache_speedup"`

	ByteIdentical bool `json:"byte_identical"`
}

func main() {
	var (
		jobs    = flag.Int("jobs", 4, "worker count for the parallel run")
		benches = flag.String("benches", "CS,FD,LB,LI", "benchmark subset for the sweep")
		out     = flag.String("out", "BENCH_sweep.json", "output JSON path ('-' = stdout)")
	)
	flag.Parse()

	opts := experiments.Quick()
	opts.Benchmarks = strings.Split(*benches, ",")

	sweep := func(eng *runner.Engine) (string, float64) {
		opts.Runner = eng
		start := time.Now()
		s, err := experiments.RunSweep(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "finereg-bench:", err)
			os.Exit(1)
		}
		secs := time.Since(start).Seconds()
		return experiments.Figure13(s).Render(), secs
	}

	r := report{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Jobs:       *jobs,
		Benches:    opts.Benchmarks,
	}

	serialTbl, serialSecs := sweep(&runner.Engine{Jobs: 1})
	parTbl, parSecs := sweep(&runner.Engine{Jobs: *jobs})

	warm := &runner.Engine{Jobs: *jobs, Cache: runner.NewCache("")}
	if _, prime := sweep(warm); prime <= 0 {
		fmt.Fprintln(os.Stderr, "finereg-bench: implausible priming time")
		os.Exit(1)
	}
	_, cachedSecs := sweep(warm)
	r.JobsPerSweep = int(warm.Stats().Submitted) / 2

	r.SerialSeconds = serialSecs
	r.ParallelSeconds = parSecs
	r.CachedSeconds = cachedSecs
	r.ParallelSpeedup = serialSecs / parSecs
	r.CacheSpeedup = serialSecs / cachedSecs
	r.ByteIdentical = serialTbl == parTbl
	if !r.ByteIdentical {
		fmt.Fprintln(os.Stderr, "finereg-bench: WARNING: serial and parallel tables differ")
	}

	b, err := json.MarshalIndent(r, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, "finereg-bench:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out == "-" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "finereg-bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "finereg-bench: %d jobs/sweep on %d CPUs: serial %.1fs, parallel(%d) %.1fs (%.2fx), cached %.3fs (%.0fx) -> %s\n",
		r.JobsPerSweep, r.NumCPU, serialSecs, *jobs, parSecs, r.ParallelSpeedup, cachedSecs, r.CacheSpeedup, *out)
}
