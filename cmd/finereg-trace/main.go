// finereg-trace runs one Table II benchmark under one GPU configuration
// with cycle-level tracing attached, writes a Chrome trace-event JSON file
// (open it at https://ui.perfetto.dev or chrome://tracing), and prints the
// stall-attribution breakdown plus a per-CTA timeline summary.
//
// Usage:
//
//	finereg-trace -bench CS [-config finereg] [-out trace.json]
//	              [-sms 16] [-grid-scale 1.0] [-srp 0.25] [-dram-cap 4]
//	              [-timeline 10]
package main

import (
	"flag"
	"fmt"
	"os"

	"finereg/internal/gpu"
	"finereg/internal/kernels"
	"finereg/internal/trace"
)

func main() {
	var (
		bench     = flag.String("bench", "", "benchmark abbreviation (required; see -list)")
		config    = flag.String("config", "finereg", "policy: baseline, vt, regdram, regmutex, finereg")
		out       = flag.String("out", "trace.json", "Chrome trace output path ('' disables the trace file)")
		sms       = flag.Int("sms", 16, "number of SMs (shared resources scale proportionally)")
		gridScale = flag.Float64("grid-scale", 0, "grid-size scale factor (default: sms/16)")
		srp       = flag.Float64("srp", 0.25, "RegMutex SRP fraction of the register file")
		dramCap   = flag.Int("dram-cap", 4, "Reg+DRAM off-chip pending CTAs per SM")
		timeline  = flag.Int("timeline", 10, "per-CTA timeline rows to print (0 disables)")
		list      = flag.Bool("list", false, "list benchmark abbreviations and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range kernels.Names() {
			fmt.Println(n)
		}
		return
	}
	if *bench == "" {
		fail(fmt.Errorf("-bench is required (use -list for choices)"))
	}

	pf, err := policyFor(*config, *srp, *dramCap)
	if err != nil {
		fail(err)
	}
	prof, err := kernels.ProfileByName(*bench)
	if err != nil {
		fail(err)
	}
	scale := *gridScale
	if scale == 0 {
		scale = float64(*sms) / 16
	}
	k, err := kernels.Build(prof, int(float64(prof.GridCTAs)*scale+0.5))
	if err != nil {
		fail(err)
	}

	agg := trace.NewStallAggregator()
	sink := trace.Sink(agg)
	var cw *trace.ChromeWriter
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		cw = trace.NewChromeWriter(f)
		sink = trace.Multi(cw, agg)
	}

	g := gpu.New(gpu.Default().Scale(*sms), pf)
	g.SetTrace(sink)
	m, err := g.Run(k)
	if err != nil {
		fail(err)
	}
	if cw != nil {
		if err := cw.Close(); err != nil {
			fail(fmt.Errorf("writing %s: %w", *out, err))
		}
		fmt.Printf("trace written to %s (open at https://ui.perfetto.dev)\n\n", *out)
	}

	fmt.Println(m)
	fmt.Println()

	b := agg.Breakdown()
	m.Stalls = b
	if err := b.Check(); err != nil {
		fail(fmt.Errorf("stall accounting invariant violated: %w", err))
	}
	fmt.Println("Stall attribution (every warp-slot cycle, bucketed):")
	fmt.Print(b.Table())

	if *timeline > 0 {
		fmt.Printf("\nPer-CTA timelines (top %d by resident time, of %d CTAs):\n",
			*timeline, len(agg.Timelines()))
		fmt.Print(agg.TimelineTable(*timeline))
	}
}

func policyFor(name string, srp float64, dramCap int) (gpu.PolicyFactory, error) {
	switch name {
	case "baseline":
		return gpu.Baseline(), nil
	case "vt":
		return gpu.VirtualThread(), nil
	case "regdram":
		return gpu.RegDRAM(dramCap), nil
	case "regmutex":
		return gpu.VTRegMutex(srp), nil
	case "finereg":
		return gpu.FineRegDefault(), nil
	}
	return nil, fmt.Errorf("unknown config %q (want baseline, vt, regdram, regmutex, finereg)", name)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "finereg-trace:", err)
	os.Exit(1)
}
