package finereg

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation. Each benchmark regenerates its artifact on the
// Quick configuration (a 4-SM machine with proportionally scaled shared
// resources and quarter-size grids) and reports the headline number as a
// custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation at test scale. Paper-scale runs (16
// SMs, full grids) come from `go run ./cmd/finereg-experiments`; the
// paper-vs-measured record lives in EXPERIMENTS.md.

import (
	"testing"

	"finereg/internal/experiments"
)

func quick() experiments.Options { return experiments.Quick() }

// sweepOnce caches the five-configuration sweep shared by Figures 12, 13
// and 16 so the bench binary does not repeat 90 simulations per figure.
var sweepCache *experiments.Sweep

func getSweep(b *testing.B) *experiments.Sweep {
	b.Helper()
	if sweepCache == nil {
		s, err := experiments.RunSweep(quick())
		if err != nil {
			b.Fatal(err)
		}
		sweepCache = s
	}
	return sweepCache
}

// BenchmarkTableII_Classification regenerates the benchmark table and its
// Type-S/Type-R classification (Table II).
func BenchmarkTableII_Classification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.TableII()
		if len(r.Rows) != 18 {
			b.Fatalf("Table II has %d rows, want 18", len(r.Rows))
		}
	}
}

// BenchmarkFigure2_ResourceScaling regenerates the scheduling-vs-memory
// scaling study (Figure 2). Reported metrics are the Type-S speedup under
// 2x scheduling and the Type-R speedup under 2x memory.
func BenchmarkFigure2_ResourceScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure2(quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TypeSMean[1], "typeS-sched2x")
		b.ReportMetric(r.TypeRMean[3], "typeR-mem2x")
	}
}

// BenchmarkFigure3_CTAOverhead regenerates the per-CTA overhead figure.
func BenchmarkFigure3_CTAOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure3()
		b.ReportMetric(r.RegShare, "reg-share")
	}
}

// BenchmarkFigure4_CSCaseStudy regenerates the Convolution Separable case
// study (Figure 4): Baseline / Full RF / Full RF+DRAM / Ideal.
func BenchmarkFigure4_CSCaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure4(quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.NormPerf[1], "fullRF-speedup")
		b.ReportMetric(r.NormPerf[3], "ideal-speedup")
	}
}

// BenchmarkFigure5_RegisterUsage regenerates the register-usage-window
// study (Figure 5); the paper reports a 55.3% suite mean.
func BenchmarkFigure5_RegisterUsage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5(quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.MeanUsage, "mean-usage-%")
	}
}

// BenchmarkTableIII_StallLatency regenerates the CTA time-to-full-stall
// table (Table III).
func BenchmarkTableIII_StallLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableIII(quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Cycles["SG"], "SG-cycles")
		b.ReportMetric(r.Cycles["BF"], "BF-cycles")
	}
}

// BenchmarkFigure12_ConcurrentCTAs regenerates the concurrent-CTA
// comparison (Figure 12); the paper reports FineReg running ~2.4x the
// baseline's CTAs.
func BenchmarkFigure12_ConcurrentCTAs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure12(getSweep(b))
		b.ReportMetric(r.Mean[experiments.CfgFineReg][0], "finereg-cta-ratio")
		b.ReportMetric(r.Mean[experiments.CfgVT][0], "vt-cta-ratio")
	}
}

// BenchmarkFigure13_IPC regenerates the normalized-performance comparison
// (Figure 13); the paper reports FineReg at +32.8% over the baseline.
func BenchmarkFigure13_IPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure13(getSweep(b))
		b.ReportMetric(r.Mean[experiments.CfgFineReg][0], "finereg-speedup")
		b.ReportMetric(r.Mean[experiments.CfgRegMutex][0], "regmutex-speedup")
		b.ReportMetric(r.Mean[experiments.CfgVT][0], "vt-speedup")
	}
}

// BenchmarkFigure14_DepletionStalls regenerates the SRP-ratio sweep and
// register-depletion stall comparison (Figure 14).
func BenchmarkFigure14_DepletionStalls(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure14(quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.MeanSRP, "mean-srp-%")
		var rm, fr float64
		for _, bench := range experiments.MemIntensive {
			rm += r.StallFrac[bench][0]
			fr += r.StallFrac[bench][1]
		}
		b.ReportMetric(100*rm/3, "regmutex-stall-%")
		b.ReportMetric(100*fr/3, "finereg-stall-%")
	}
}

// BenchmarkFigure15_MemoryTraffic regenerates the off-chip traffic
// comparison (Figure 15).
func BenchmarkFigure15_MemoryTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure15(quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Traffic["FD"][experiments.CfgRegDRAM], "FD-regdram-traffic")
		b.ReportMetric(r.Traffic["FD"][experiments.CfgFineReg], "FD-finereg-traffic")
	}
}

// BenchmarkFigure16_Energy regenerates the energy comparison (Figure 16);
// the paper reports FineReg using 21.3% less energy than the baseline.
func BenchmarkFigure16_Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure16(getSweep(b))
		b.ReportMetric(r.Norm[experiments.CfgFineReg], "finereg-energy")
		b.ReportMetric(r.Norm[experiments.CfgVT], "vt-energy")
	}
}

// BenchmarkFigure17_SplitSensitivity regenerates the ACRF/PCRF partition
// sweep (Figure 17); the paper finds the balanced 128KB/128KB split best.
func BenchmarkFigure17_SplitSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure17(quick())
		if err != nil {
			b.Fatal(err)
		}
		best := r.Splits[r.Best()]
		b.ReportMetric(float64(best.ACRF), "best-acrf-KB")
		b.ReportMetric(r.NormPerf[2], "128-128-speedup")
	}
}

// BenchmarkFigure18_SMScaling regenerates the SM-count scaling study
// (Figure 18) at bench-friendly machine sizes.
func BenchmarkFigure18_SMScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure18(quick(), []int{4, 8})
		if err != nil {
			b.Fatal(err)
		}
		last := r.Points[len(r.Points)-1]
		b.ReportMetric(last.FineRegSpeedup, "finereg-speedup")
		b.ReportMetric(last.OverheadMB, "resource-overhead-MB")
	}
}

// BenchmarkFigure19_UnifiedMemory regenerates the unified on-chip memory
// study (Figure 19).
func BenchmarkFigure19_UnifiedMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure19(quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Mean[0], "um-speedup")
		b.ReportMetric(r.Mean[2], "finereg-um-speedup")
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (simulated
// cycles per wall-clock second) on one representative kernel — the cost of
// the substrate itself rather than a paper artifact.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := ScaledConfig(4)
	var cycles int64
	for i := 0; i < b.N; i++ {
		m, err := RunBenchmark(cfg, "CS", 256, FineReg())
		if err != nil {
			b.Fatal(err)
		}
		cycles += m.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkSimulatorThroughput16SM is the same measurement at paper scale:
// the full Table I machine (16 SMs) on the reference CS grid. This is the
// configuration the event-driven run loop is judged on — with 16 SMs the
// dense alternative pays 16 Ticks and 16 stats samples per global step
// even when one SM has work.
func BenchmarkSimulatorThroughput16SM(b *testing.B) {
	cfg := DefaultConfig()
	var cycles int64
	for i := 0; i < b.N; i++ {
		m, err := RunBenchmark(cfg, "CS", 0, FineReg())
		if err != nil {
			b.Fatal(err)
		}
		cycles += m.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkSimulatorThroughputAudited is BenchmarkSimulatorThroughput with
// the runtime invariant auditor enabled — the measured cost of auditing
// every CTA lifecycle transition plus the periodic full sweeps. Compare the
// two benchmarks' sim-cycles/s to see the auditor's overhead; the audit-off
// path costs one nil check per event round (see gpu.Run), so the plain
// benchmark doubles as the no-audit baseline.
func BenchmarkSimulatorThroughputAudited(b *testing.B) {
	cfg := ScaledConfig(4)
	cfg.Audit = true
	var cycles int64
	for i := 0; i < b.N; i++ {
		m, err := RunBenchmark(cfg, "CS", 256, FineReg())
		if err != nil {
			b.Fatal(err)
		}
		cycles += m.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkAblations regenerates the design-choice ablation study
// (DESIGN.md §7): live compaction off, cold bit-vector cache, LRR
// scheduling — each relative to the full FineReg design.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablations(quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Norm[1], "no-compaction-rel")
		b.ReportMetric(r.Norm[2], "cold-bitvec-rel")
		b.ReportMetric(r.Norm[3], "lrr-rel")
	}
}
