// Package finereg is a from-scratch reproduction of "FineReg: Fine-Grained
// Register File Management for Augmenting GPU Throughput" (MICRO 2018): a
// cycle-level GPU simulator whose register file management is pluggable —
// conventional Baseline, Virtual Thread, Reg+DRAM (Zorua-like), VT+RegMutex,
// and the paper's FineReg (ACRF/PCRF split with live-register compaction) —
// together with the compiler liveness analysis FineReg depends on, the
// Table II benchmark suite as synthetic kernels, and a harness that
// regenerates every table and figure of the paper's evaluation.
//
// Quick start:
//
//	cfg := finereg.DefaultConfig()            // Table I machine (16 SMs)
//	m, err := finereg.RunBenchmark(cfg, "CS", 0, finereg.FineReg())
//	fmt.Println(m.IPC())
//
// The root package is a thin facade; the implementation lives under
// internal/ (isa, liveness, kernels, exec, mem, sm, regfile, core, gpu,
// energy, stats, experiments).
package finereg

import (
	"finereg/internal/energy"
	"finereg/internal/gpu"
	"finereg/internal/kernels"
	"finereg/internal/stats"
)

// Config is the whole-GPU configuration; DefaultConfig matches Table I.
type Config = gpu.Config

// DefaultConfig returns the paper's GTX 980-like machine: 16 SMs at
// 1126 MHz, 64 warps / 2048 threads / 32 CTAs per SM, 4 GTO schedulers,
// 256 KB register file, 96 KB shared memory, 48 KB 8-way L1, 2 MB 8-way
// L2, 352.5 GB/s DRAM.
func DefaultConfig() Config { return gpu.Default() }

// ScaledConfig returns the Table I machine resized to n SMs with shared
// resources (L2, DRAM bandwidth) scaled proportionally.
func ScaledConfig(n int) Config { return gpu.Default().Scale(n) }

// PolicyFactory builds one register-file management policy per SM.
type PolicyFactory = gpu.PolicyFactory

// Metrics carries the counters of one simulated kernel run.
type Metrics = stats.Metrics

// EnergyBreakdown is the Figure 16 component decomposition.
type EnergyBreakdown = energy.Breakdown

// Policy constructors for the paper's five configurations.
var (
	// Baseline is the conventional GPU (no CTA switching).
	Baseline = gpu.Baseline
	// VirtualThread launches CTAs until the register file fills and
	// switches stalled CTAs with ready pending ones [Yoon et al., 45].
	VirtualThread = gpu.VirtualThread
	// RegDRAM adds an off-chip pending pool with DMA'd register contexts
	// (Zorua-like [39]); the argument caps off-chip CTAs per SM.
	RegDRAM = gpu.RegDRAM
	// VTRegMutex merges Virtual Thread with RegMutex's BRS/SRP register
	// time-sharing [17]; the argument is the SRP fraction.
	VTRegMutex = gpu.VTRegMutex
	// FineRegSplit is the paper's policy with an explicit ACRF/PCRF byte
	// split; FineReg uses the default half/half partition.
	FineRegSplit = gpu.FineReg
	FineReg      = gpu.FineRegDefault
)

// Benchmarks returns the Table II benchmark abbreviations (Type-S first).
func Benchmarks() []string { return kernels.Names() }

// BenchmarkProfile returns the static resource profile of one Table II
// benchmark.
func BenchmarkProfile(abbrev string) (kernels.Profile, error) {
	return kernels.ProfileByName(abbrev)
}

// RunBenchmark simulates one Table II benchmark on a fresh GPU built from
// cfg under the given policy. grid <= 0 uses the benchmark's reference
// grid size (sized for the 16-SM machine; scale it down for smaller
// configurations).
func RunBenchmark(cfg Config, bench string, grid int, pf PolicyFactory) (*Metrics, error) {
	prof, err := kernels.ProfileByName(bench)
	if err != nil {
		return nil, err
	}
	k, err := kernels.Build(prof, grid)
	if err != nil {
		return nil, err
	}
	return gpu.New(cfg, pf).Run(k)
}

// RunKernel simulates a custom kernel profile (see kernels.Profile for the
// knobs: warps per CTA, registers, shared memory, instruction mix, access
// patterns).
func RunKernel(cfg Config, prof kernels.Profile, grid int, pf PolicyFactory) (*Metrics, error) {
	k, err := kernels.Build(prof, grid)
	if err != nil {
		return nil, err
	}
	return gpu.New(cfg, pf).Run(k)
}

// EstimateEnergy applies the GPUWattch-style event-energy model to a run.
func EstimateEnergy(m *Metrics, numSMs int) EnergyBreakdown {
	return energy.Estimate(m, numSMs, energy.DefaultCoefficients())
}
