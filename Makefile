GO ?= go

.PHONY: check fmt vet build test race bench bench-sweep

# The full gate: formatting, vet, build, race-enabled tests.
check: fmt vet build race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -short skips the multi-minute full-sweep shape tests in the root package;
# they run race-free under `make test`, and the sweep machinery they drive
# is race-tested via internal/experiments. Without -short the root package
# exceeds go test's default 10-minute timeout under the race detector.
race:
	$(GO) test -race -short -timeout 20m ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Parallel + cached speedup of the quick sweep -> BENCH_sweep.json.
bench-sweep:
	scripts/bench_sweep.sh
