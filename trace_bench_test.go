package finereg

// Tracing-overhead benchmarks. The Sink plumbing in the SM tick loop is
// guarded by a single nil check per emission site, so an untraced run must
// cost the same as the pre-trace simulator. Measured when the trace
// subsystem was added, with binaries built from the pre-trace and
// post-trace commits run interleaved (12 pairs of BenchmarkSimulatorThroughput
// at -benchtime 10x on a noisy shared host):
//
//	paired-run mean overhead:  1.8% (per-pair ratios 0.84–1.11, noise-bound)
//	best-case runs:            28.9 ms/op traced-nil vs 29.4 ms/op pre-trace
//
// i.e. the nil-sink cost is under 2% and indistinguishable from host
// noise. The benchmarks below keep the comparison reproducible:
// BenchmarkSimulatorThroughput (bench_test.go) is the nil-sink number;
// BenchmarkTraceNoopSink attaches trace.Noop so every emission site pays
// the interface call; BenchmarkTraceAggregator and BenchmarkTraceChrome
// price the real consumers (both ~1.5x the untraced run).

import (
	"io"
	"testing"

	"finereg/internal/gpu"
	"finereg/internal/kernels"
	"finereg/internal/trace"
)

// benchRun executes the BenchmarkSimulatorThroughput workload (CS, 256
// CTAs, 4-SM machine, FineReg) with the given sink attached.
func benchRun(b *testing.B, sink trace.Sink) {
	b.Helper()
	prof, err := kernels.ProfileByName("CS")
	if err != nil {
		b.Fatal(err)
	}
	cfg := ScaledConfig(4)
	var cycles int64
	for i := 0; i < b.N; i++ {
		k, err := kernels.Build(prof, 256)
		if err != nil {
			b.Fatal(err)
		}
		g := gpu.New(cfg, FineReg())
		g.SetTrace(sink)
		m, err := g.Run(k)
		if err != nil {
			b.Fatal(err)
		}
		cycles += m.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkTraceNoopSink measures the tick loop with a non-nil no-op sink:
// every emission site pays its nil check plus an interface dispatch to an
// empty method. Compare against BenchmarkSimulatorThroughput (nil sink).
func BenchmarkTraceNoopSink(b *testing.B) { benchRun(b, trace.Noop{}) }

// BenchmarkTraceAggregator measures the tick loop feeding the stall
// aggregator — the cost of running finereg-trace with -out disabled, or
// of the experiments stalls report.
func BenchmarkTraceAggregator(b *testing.B) { benchRun(b, trace.NewStallAggregator()) }

// benchProgress executes the same workload with the given progress
// configuration attached to the run (nil cb = sampling off).
func benchProgress(b *testing.B, cb func(trace.ProgressSample), every int64) {
	b.Helper()
	prof, err := kernels.ProfileByName("CS")
	if err != nil {
		b.Fatal(err)
	}
	cfg := ScaledConfig(4)
	cfg.Progress = cb
	cfg.ProgressEvery = every
	var cycles int64
	for i := 0; i < b.N; i++ {
		k, err := kernels.Build(prof, 256)
		if err != nil {
			b.Fatal(err)
		}
		g := gpu.New(cfg, FineReg())
		m, err := g.Run(k)
		if err != nil {
			b.Fatal(err)
		}
		cycles += m.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkProgressOff is the Progress == nil hot path: the run loop pays
// one nil check per event step and nothing else. Its sim-cycles/s must
// stay within host noise of BENCH_hotpath.json's quick-4sm finereg row
// (same workload) — compare against BenchmarkSimulatorThroughput too.
func BenchmarkProgressOff(b *testing.B) { benchProgress(b, nil, 0) }

// BenchmarkProgressNoop attaches a no-op callback at the default period:
// the sampling cost itself (an O(NumSMs) counter sweep per sample,
// ~15 samples/s of simulation at typical throughput).
func BenchmarkProgressNoop(b *testing.B) { benchProgress(b, func(trace.ProgressSample) {}, 0) }

// BenchmarkProgressNoop4k oversamples 25x (every 4096 cycles) to make the
// per-sample cost measurable at all; even this should move throughput by
// well under the trace-sink overhead.
func BenchmarkProgressNoop4k(b *testing.B) { benchProgress(b, func(trace.ProgressSample) {}, 4096) }

// BenchmarkTraceChrome measures the tick loop streaming Chrome trace JSON
// to a discarded writer — the serialization cost without disk I/O.
func BenchmarkTraceChrome(b *testing.B) {
	b.Helper()
	prof, err := kernels.ProfileByName("CS")
	if err != nil {
		b.Fatal(err)
	}
	cfg := ScaledConfig(4)
	for i := 0; i < b.N; i++ {
		k, err := kernels.Build(prof, 256)
		if err != nil {
			b.Fatal(err)
		}
		cw := trace.NewChromeWriter(io.Discard)
		g := gpu.New(cfg, FineReg())
		g.SetTrace(cw)
		if _, err := g.Run(k); err != nil {
			b.Fatal(err)
		}
		if err := cw.Err(); err != nil {
			b.Fatal(err)
		}
	}
}
