// Custompolicy shows how to extend the simulator with a register-file
// management scheme of your own: implement sm.Policy, plug it in through
// a gpu.PolicyFactory, and compare it against the built-ins.
//
// The demo policy, "EagerHalf", is deliberately simple: it behaves like
// the baseline but only ever admits CTAs into half the register file,
// leaving the rest idle — a lower bound that shows how much performance
// the register file's capacity is actually worth.
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"
	"log"

	"finereg"
	"finereg/internal/gpu"
	"finereg/internal/kernels"
	"finereg/internal/mem"
	"finereg/internal/sm"
)

// eagerHalf is a minimal sm.Policy: static allocation from half the file.
type eagerHalf struct {
	cfg      sm.Config
	regsFree int
}

func (p *eagerHalf) Name() string { return "EagerHalf" }
func (p *eagerHalf) KernelStart(s *sm.SM, now int64) {
	p.regsFree = p.cfg.TotalWarpRegs() / 2
}

func (p *eagerHalf) FillSlots(s *sm.SM, now int64) {
	cost := s.Meta().RegCostPerCTA()
	for s.CanActivateOne(true) && p.regsFree >= cost {
		if s.LaunchNew(now, 0) == nil {
			return
		}
		p.regsFree -= cost
	}
}

func (p *eagerHalf) OnCTAStalled(s *sm.SM, c *sm.CTA, now int64)     {}
func (p *eagerHalf) OnCTAReady(s *sm.SM, c *sm.CTA, now int64)       {}
func (p *eagerHalf) OnCTAFinished(s *sm.SM, c *sm.CTA, now int64)    { p.regsFree += c.RegCost }
func (p *eagerHalf) AllowIssue(s *sm.SM, w *sm.Warp, now int64) bool { return true }
func (p *eagerHalf) BlockedOnRegisters() bool                        { return false }

func main() {
	cfg := finereg.ScaledConfig(4)
	factory := func(c sm.Config, h *mem.Hierarchy) sm.Policy { return &eagerHalf{cfg: c} }

	fmt.Printf("%-8s %12s %12s %12s\n", "bench", "EagerHalf", "Baseline", "FineReg")
	for _, bench := range []string{"SY2", "LB", "LI"} {
		prof, err := kernels.ProfileByName(bench)
		if err != nil {
			log.Fatal(err)
		}
		grid := prof.GridCTAs / 8
		run := func(pf gpu.PolicyFactory) float64 {
			m, err := finereg.RunBenchmark(cfg, bench, grid, pf)
			if err != nil {
				log.Fatal(err)
			}
			return m.IPC()
		}
		fmt.Printf("%-8s %12.3f %12.3f %12.3f\n",
			bench, run(factory), run(finereg.Baseline()), run(finereg.FineReg()))
	}
	fmt.Println("\nEagerHalf wastes half the register file and pays for it; FineReg uses")
	fmt.Println("the same half for active CTAs but turns the rest into a pending pool.")
}
