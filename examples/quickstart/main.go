// Quickstart: simulate one Table II benchmark on the Table I machine under
// the conventional baseline and under FineReg, and print the comparison —
// the 30-second version of the paper's headline experiment.
//
//	go run ./examples/quickstart [bench]
package main

import (
	"fmt"
	"log"
	"os"

	"finereg"
)

func main() {
	bench := "SY2"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	// A 4-SM miniature of the Table I machine keeps this instant; pass 16
	// for the full GTX 980-like configuration.
	cfg := finereg.ScaledConfig(4)
	grid := 256

	prof, err := finereg.BenchmarkProfile(bench)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (%s, %s): %d regs/thread, %d warps/CTA, %d B shared memory\n\n",
		prof.Abbrev, prof.Name, prof.Class, prof.Regs, prof.WarpsPerCTA, prof.SharedMem)

	base, err := finereg.RunBenchmark(cfg, bench, grid, finereg.Baseline())
	if err != nil {
		log.Fatal(err)
	}
	fine, err := finereg.RunBenchmark(cfg, bench, grid, finereg.FineReg())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %12s %12s\n", "", "Baseline", "FineReg")
	fmt.Printf("%-22s %12.3f %12.3f\n", "IPC", base.IPC(), fine.IPC())
	fmt.Printf("%-22s %12d %12d\n", "cycles", base.Cycles, fine.Cycles)
	fmt.Printf("%-22s %12.1f %12.1f\n", "resident CTAs/SM", base.AvgResidentCTAs, fine.AvgResidentCTAs)
	fmt.Printf("%-22s %12.1f %12.1f\n", "active CTAs/SM", base.AvgActiveCTAs, fine.AvgActiveCTAs)
	fmt.Printf("%-22s %12d %12d\n", "CTA switches", base.CTASwitches, fine.CTASwitches)

	eb := finereg.EstimateEnergy(base, cfg.NumSMs)
	ef := finereg.EstimateEnergy(fine, cfg.NumSMs)
	fmt.Printf("%-22s %12.1f %12.1f\n", "energy (uJ)", eb.Total(), ef.Total())

	fmt.Printf("\nFineReg speedup: %.2fx  (energy %.1f%% of baseline)\n",
		fine.IPC()/base.IPC(), 100*ef.Total()/eb.Total())
}
