// Sensitivity sweeps a custom kernel's register pressure and shows where
// FineReg's advantage comes from: as static register demand grows, the
// baseline's occupancy collapses while FineReg keeps pending CTAs resident
// in the PCRF (the paper's Type-R story), until shared resources bind.
//
//	go run ./examples/sensitivity
package main

import (
	"fmt"
	"log"

	"finereg"
	"finereg/internal/kernels"
)

func main() {
	cfg := finereg.ScaledConfig(4)
	fmt.Println("Custom kernel: 4 warps/CTA, memory-bound loop, sweeping registers/thread")
	fmt.Printf("%-14s %14s %14s %10s %14s\n", "regs/thread", "baseline IPC", "FineReg IPC", "speedup", "FineReg CTAs")
	for _, regs := range []int{16, 24, 32, 40, 48, 56} {
		prof := kernels.Profile{
			Abbrev: "SWEEP", Name: "register sweep", Class: kernels.TypeR,
			WarpsPerCTA: 4, Regs: regs, Persistent: 8,
			LoopTrips: 12, StreamLoads: 2, HotLoads: 1, ComputePerIter: 18,
			FootprintKB: 8 << 10, GridCTAs: 256,
		}
		base, err := finereg.RunKernel(cfg, prof, 256, finereg.Baseline())
		if err != nil {
			log.Fatal(err)
		}
		fine, err := finereg.RunKernel(cfg, prof, 256, finereg.FineReg())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14d %14.3f %14.3f %9.2fx %14.1f\n",
			regs, base.IPC(), fine.IPC(), fine.IPC()/base.IPC(), fine.AvgResidentCTAs)
	}
	fmt.Println("\nAt low pressure the halved ACRF costs FineReg a little (the paper's")
	fmt.Println("Figure 17 trade-off); once register demand collapses baseline occupancy,")
	fmt.Println("PCRF-resident pending CTAs win — the Type-R trend of Figure 13.")
}
