// Vecadd demonstrates the functional side of the stack: a kernel written
// in the SASS-like ISA is disassembled, run through the compiler's
// live-register analysis (the information FineReg's RMU consumes), and
// then executed for real on the functional SIMT machine with results
// verified against a CPU loop.
//
//	go run ./examples/vecadd
package main

import (
	"fmt"
	"log"

	"finereg/internal/exec"
	"finereg/internal/kernels"
	"finereg/internal/liveness"
)

func main() {
	const n = 1024 // 32 warps of work
	baseA, baseB, baseC := uint32(0), uint32(4*n), uint32(8*n)
	prog := kernels.VecAdd(baseA, baseB, baseC)

	fmt.Println(prog.Name, "— disassembly with per-PC live registers:")
	info, err := liveness.Analyze(prog)
	if err != nil {
		log.Fatal(err)
	}
	for pc := 0; pc < prog.Len(); pc++ {
		fmt.Printf("/*%04X*/  %-28s live-in: %v\n", pc*8, prog.At(pc).String(), info.At(pc))
	}
	fmt.Printf("\nmax live registers: %d of %d allocated (FineReg would park %.0f%% of this warp's registers)\n\n",
		info.MaxLive(), prog.RegsPerThread,
		100*(1-float64(info.MaxLive())/float64(prog.RegsPerThread)))

	m := &exec.Machine{Mem: make([]byte, 12*n)}
	for i := 0; i < n; i++ {
		m.WriteF32(int(baseA)+4*i, float32(i))
		m.WriteF32(int(baseB)+4*i, float32(2*i))
	}
	if err := m.Launch(prog, 4, 256); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := float32(i) + float32(2*i)
		if got := m.ReadF32(int(baseC) + 4*i); got != want {
			log.Fatalf("c[%d] = %v, want %v", i, got, want)
		}
	}
	fmt.Printf("executed %d threads across 4 CTAs: all %d results verified ✓\n", n, n)
}
