// Compare runs a mixed set of Table II benchmarks under all five GPU
// configurations of the paper's evaluation and prints normalized IPC —
// a miniature of Figure 13.
//
//	go run ./examples/compare
package main

import (
	"fmt"
	"log"

	"finereg"
)

func main() {
	cfg := finereg.ScaledConfig(4)
	benches := []string{"CS", "BI", "MC", "LB", "LI", "SG"}
	policies := []struct {
		name string
		pf   finereg.PolicyFactory
	}{
		{"Baseline", finereg.Baseline()},
		{"VT", finereg.VirtualThread()},
		{"Reg+DRAM", finereg.RegDRAM(4)},
		{"VT+RegMutex", finereg.VTRegMutex(0.2)},
		{"FineReg", finereg.FineReg()},
	}

	fmt.Printf("%-6s", "bench")
	for _, p := range policies {
		fmt.Printf("%13s", p.name)
	}
	fmt.Println()
	for _, b := range benches {
		prof, err := finereg.BenchmarkProfile(b)
		if err != nil {
			log.Fatal(err)
		}
		grid := prof.GridCTAs / 4
		var base float64
		fmt.Printf("%-6s", b)
		for i, p := range policies {
			m, err := finereg.RunBenchmark(cfg, b, grid, p.pf)
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				base = m.IPC()
			}
			fmt.Printf("%13.3f", m.IPC()/base)
		}
		fmt.Println()
	}
	fmt.Println("\n(normalized IPC vs baseline; see cmd/finereg-experiments for the full Figure 13)")
}
