package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"runtime"
	"time"

	"finereg/internal/runner"
	"finereg/internal/serve"
	"finereg/internal/serve/metrics"
)

// CoordinatorConfig sizes a Coordinator.
type CoordinatorConfig struct {
	// Nodes are worker base URLs registered at startup; more can join
	// later via AddWorker or POST /v1/fleet/workers.
	Nodes []string
	// CacheDir backs the coordinator's shared result store (the fleet's
	// remote tier); "" keeps it in memory.
	CacheDir string
	// QueueCap / MaxBatch / ProgressEvery pass through to the embedded
	// serve.Server (zero = its defaults).
	QueueCap      int
	MaxBatch      int
	ProgressEvery int64
	// Slots is the per-node dispatch concurrency (default 4). The
	// embedded server's worker pool is sized to saturate it.
	Slots int
	// PollEvery paces job-status polls against workers (default 50ms).
	PollEvery time.Duration
	// ProbeEvery paces worker liveness probes (default 2s; < 0 disables
	// the probe loop — tests drive ProbeAll directly).
	ProbeEvery time.Duration
	// DownAfter is the consecutive-failure threshold demoting a node
	// (default 3).
	DownAfter int
	// HTTP is the dispatch/probe transport (nil = 15s-timeout client).
	HTTP *http.Client
}

// Coordinator fronts a worker fleet with the single-node v1 API: an
// embedded serve.Server does admission/coalescing/records/SSE/metrics,
// a Dispatcher does placement, and the coordinator adds the fleet-facing
// routes —
//
//	GET/PUT /v1/cache/{key}   the shared result tier workers mount as L3
//	GET     /v1/fleet/workers fleet membership and per-node state
//	POST    /v1/fleet/workers worker self-registration {"url": "..."}
//
// — plus per-node metrics and the liveness probe loop.
type Coordinator struct {
	srv   *serve.Server
	disp  *Dispatcher
	cache *runner.Cache

	nodeUp    *metrics.GaugeFuncVec
	nodeQueue *metrics.GaugeFuncVec

	probeStop chan struct{}
	probeDone chan struct{}
}

// NewCoordinator builds and starts a coordinator.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	cache := runner.NewCache(cfg.CacheDir)
	disp := NewDispatcher(DispatcherConfig{
		Cache:     cache,
		Slots:     cfg.Slots,
		PollEvery: cfg.PollEvery,
		DownAfter: cfg.DownAfter,
		HTTP:      cfg.HTTP,
	})
	for _, u := range cfg.Nodes {
		disp.AddNode(u)
	}

	// The embedded engine is the metrics/cache anchor (the serve layer
	// reads its cache stats; nothing executes on it — the Runner seam
	// routes every job through the dispatcher). Workers: enough blocked
	// dispatch waiters to saturate every node's slots, with headroom for
	// nodes that join later.
	workers := disp.cfg.Slots * (len(cfg.Nodes) + 1)
	if min := runtime.GOMAXPROCS(0); workers < min {
		workers = min
	}
	c := &Coordinator{
		disp:  disp,
		cache: cache,
		srv: serve.New(serve.Config{
			Engine:        &runner.Engine{Cache: cache},
			Runner:        disp,
			Workers:       workers,
			QueueCap:      cfg.QueueCap,
			MaxBatch:      cfg.MaxBatch,
			ProgressEvery: cfg.ProgressEvery,
		}),
		probeStop: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	c.routes()
	c.initMetrics()

	probeEvery := cfg.ProbeEvery
	if probeEvery == 0 {
		probeEvery = 2 * time.Second
	}
	if probeEvery > 0 {
		go c.probeLoop(probeEvery)
	} else {
		close(c.probeDone)
	}
	return c
}

// Server exposes the embedded serve.Server (tests and CLIs attach
// progress observers or extra metrics through it).
func (c *Coordinator) Server() *serve.Server { return c.srv }

// Dispatcher exposes the dispatcher (fleet state inspection).
func (c *Coordinator) Dispatcher() *Dispatcher { return c.disp }

// Cache exposes the shared result tier.
func (c *Coordinator) Cache() *runner.Cache { return c.cache }

// AddWorker registers (or revives) a worker node and its metric series.
func (c *Coordinator) AddWorker(nodeURL string) error {
	u, err := url.Parse(nodeURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("fleet: worker url %q is not absolute", nodeURL)
	}
	base := u.Scheme + "://" + u.Host
	if c.disp.AddNode(base) {
		c.addNodeMetrics(base)
	}
	return nil
}

// ServeHTTP implements http.Handler by delegating to the embedded server
// (which carries the extra fleet routes).
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.srv.ServeHTTP(w, r) }

// Shutdown stops probing, drains the embedded server (its Runner StopAll
// hook cancels outstanding dispatches at the deadline), and closes the
// dispatcher.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	close(c.probeStop)
	<-c.probeDone
	err := c.srv.Shutdown(ctx)
	c.disp.Close()
	return err
}

func (c *Coordinator) probeLoop(every time.Duration) {
	defer close(c.probeDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.disp.ProbeAll()
		case <-c.probeStop:
			return
		}
	}
}

func (c *Coordinator) routes() {
	cs := cacheServer{cache: c.cache}
	c.srv.Handle("GET /v1/cache/{key}", http.HandlerFunc(cs.handleGet))
	c.srv.Handle("PUT /v1/cache/{key}", http.HandlerFunc(cs.handlePut))
	c.srv.Handle("GET /v1/fleet/workers", http.HandlerFunc(c.handleListWorkers))
	c.srv.Handle("POST /v1/fleet/workers", http.HandlerFunc(c.handleRegisterWorker))
}

func (c *Coordinator) handleListWorkers(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	enc.Encode(c.disp.NodeStatuses())
}

// registerBody is the POST /v1/fleet/workers payload.
type registerBody struct {
	URL string `json:"url"`
}

func (c *Coordinator) handleRegisterWorker(w http.ResponseWriter, r *http.Request) {
	var body registerBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.URL == "" {
		http.Error(w, "fleet: body must be {\"url\": \"http://host:port\"}", http.StatusBadRequest)
		return
	}
	if err := c.AddWorker(body.URL); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) initMetrics() {
	r := c.srv.Registry()
	r.NewCounterFunc("finereg_fleet_dispatched_total",
		"Jobs dispatched to worker nodes (including requeued re-dispatches).",
		func() int64 { return c.disp.Stats().Dispatched })
	r.NewCounterFunc("finereg_fleet_stolen_total",
		"Dispatches pulled from another node's backlog by an idle node.",
		func() int64 { return c.disp.Stats().Stolen })
	r.NewCounterFunc("finereg_fleet_requeued_total",
		"Jobs requeued after their worker stopped answering.",
		func() int64 { return c.disp.Stats().Requeued })
	r.NewGaugeFunc("finereg_fleet_nodes_alive",
		"Worker nodes currently considered live.",
		func() float64 {
			n := 0
			for _, ns := range c.disp.NodeStatuses() {
				if ns.Alive {
					n++
				}
			}
			return float64(n)
		})
	c.nodeUp = r.NewGaugeFuncVec("finereg_fleet_node_up",
		"Per-node liveness (1 = answering, 0 = down).", "node")
	c.nodeQueue = r.NewGaugeFuncVec("finereg_fleet_node_queue_depth",
		"Per-node dispatch backlog.", "node")
	for _, ns := range c.disp.NodeStatuses() {
		c.addNodeMetrics(ns.URL)
	}
}

// addNodeMetrics registers one node's labeled series (idempotent —
// re-adding replaces the child with an equivalent closure).
func (c *Coordinator) addNodeMetrics(nodeURL string) {
	find := func() (NodeStatus, bool) {
		for _, ns := range c.disp.NodeStatuses() {
			if ns.URL == nodeURL {
				return ns, true
			}
		}
		return NodeStatus{}, false
	}
	c.nodeUp.Add(nodeURL, func() float64 {
		if ns, ok := find(); ok && ns.Alive {
			return 1
		}
		return 0
	})
	c.nodeQueue.Add(nodeURL, func() float64 {
		ns, _ := find()
		return float64(ns.QueueDepth)
	})
}
