package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// RegisterWorker announces a worker's base URL to a coordinator (POST
// /v1/fleet/workers). Registration is idempotent on the coordinator, so
// workers call this periodically as a heartbeat-by-reannouncement: a
// worker the coordinator demoted (or a coordinator that restarted and
// forgot its fleet) re-enlists on the next announcement.
func RegisterWorker(ctx context.Context, coordinator, self string, hc *http.Client) error {
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	body, err := json.Marshal(registerBody{URL: self})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		coordinator+"/v1/fleet/workers", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("fleet: coordinator rejected registration: HTTP %d", resp.StatusCode)
	}
	return nil
}

// AnnounceLoop registers self with the coordinator every interval until
// ctx ends, logging nothing and giving up never — a coordinator outage
// must not take workers down with it.
func AnnounceLoop(ctx context.Context, coordinator, self string, every time.Duration, hc *http.Client) {
	if every <= 0 {
		every = 5 * time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		RegisterWorker(ctx, coordinator, self, hc)
		select {
		case <-t.C:
		case <-ctx.Done():
			return
		}
	}
}
