package fleet

import (
	"fmt"
	"io"
	"net/http"
	"testing"
)

// httptestGet fetches a URL body (test helper shared with fleet_test.go).
func httptestGet(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// httpGetResp returns just the status code.
func httpGetResp(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// TestRendezvousStable: placement is deterministic and independent of the
// node-list order.
func TestRendezvousStable(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	perm := []string{"http://c:1", "http://a:1", "http://b:1"}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("%064x", i)
		r1 := rendezvousRank(key, nodes)
		r2 := rendezvousRank(key, perm)
		for j := range r1 {
			if r1[j] != r2[j] {
				t.Fatalf("key %s: rank depends on input order: %v vs %v", key, r1, r2)
			}
		}
	}
}

// TestRendezvousMinimalRemap: removing one node only remaps the keys that
// node owned; every other key keeps its placement (and its warm cache).
func TestRendezvousMinimalRemap(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	without := []string{"http://a:1", "http://b:1"}
	moved, owned := 0, 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("%064x", i*7919)
		before := rendezvousRank(key, nodes)[0]
		after := rendezvousRank(key, without)[0]
		if before == "http://c:1" {
			owned++
			continue
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed node changed placement", moved)
	}
	if owned == 0 {
		t.Error("degenerate test: removed node owned no keys")
	}
}

// TestRendezvousSpread: a 3-node fleet should see every node win a
// non-trivial share of keys (FNV mixing sanity check).
func TestRendezvousSpread(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	counts := map[string]int{}
	const n = 600
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("%064x", i*104729)
		counts[rendezvousRank(key, nodes)[0]]++
	}
	for _, u := range nodes {
		if counts[u] < n/10 {
			t.Errorf("node %s won only %d/%d keys", u, counts[u], n)
		}
	}
}
