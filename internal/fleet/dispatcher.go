package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"finereg/internal/runner"
	"finereg/internal/serve"
)

// Dispatcher routes admitted jobs to worker nodes. It implements
// serve.Runner, so a coordinator is an ordinary serve.Server whose
// execution seam points here instead of at a local engine: admission,
// coalescing, records, SSE, and metrics are all unchanged.
//
// Placement is rendezvous hashing on the job key (cache-aware: a job
// returns to the worker that computed it last time), each node has its
// own dispatch queue drained by Slots puller goroutines, and an idle
// node's pullers steal from the longest backlog so one hot placement
// cannot serialize the fleet. A node that stops answering — transport
// errors while dispatching/polling, or failed liveness probes — is marked
// down and its queued and in-flight jobs are requeued onto survivors;
// the serving record's at-most-once commit keeps a presumed-dead node's
// late result from double-finishing a job.
type Dispatcher struct {
	cfg    DispatcherConfig
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	cond   *sync.Cond
	nodes  map[string]*node
	closed bool
	wg     sync.WaitGroup

	dispatched atomic.Int64
	stolen     atomic.Int64
	requeued   atomic.Int64
}

// DispatcherConfig sizes a Dispatcher.
type DispatcherConfig struct {
	// Cache is the coordinator's shared result store, consulted before
	// any dispatch and populated with every committed result (nil = no
	// pre-dispatch cache).
	Cache *runner.Cache
	// Slots is the number of jobs dispatched concurrently per node
	// (default 4): roughly the worker's appetite, kept modest so the
	// worker's own admission queue, not the coordinator, is the backlog.
	Slots int
	// PollEvery paces per-job status polls against workers (default
	// 50ms).
	PollEvery time.Duration
	// DownAfter is how many consecutive transport failures (polling a
	// job, or liveness probes) demote a node to down (default 3).
	DownAfter int
	// HTTP is the transport for dispatch and probes (nil = a client with
	// a 15s timeout).
	HTTP *http.Client
}

func (c *DispatcherConfig) withDefaults() DispatcherConfig {
	out := *c
	if out.Slots <= 0 {
		out.Slots = 4
	}
	if out.PollEvery <= 0 {
		out.PollEvery = 50 * time.Millisecond
	}
	if out.DownAfter <= 0 {
		out.DownAfter = 3
	}
	if out.HTTP == nil {
		out.HTTP = &http.Client{Timeout: 15 * time.Second}
	}
	return out
}

// node is one worker: its client, liveness, and dispatch queue.
type node struct {
	url    string
	client *serve.Client

	// Guarded by Dispatcher.mu.
	alive      bool
	probeFails int
	queue      []*task
	inflight   int

	dispatched atomic.Int64
}

// task is one job in flight through the dispatcher.
type task struct {
	job   *runner.Job
	key   string
	tried map[string]bool // nodes that already failed this task
	res   chan taskResult // buffered(1); delivered exactly once
}

type taskResult struct {
	res    *runner.Result
	cached bool
	err    error
}

// errNodeLost is the puller-internal signal that a worker stopped
// answering mid-job; the task is requeued, never failed, on this path.
var errNodeLost = errors.New("fleet: worker node lost")

// NewDispatcher builds an empty dispatcher; add workers with AddNode.
func NewDispatcher(cfg DispatcherConfig) *Dispatcher {
	d := &Dispatcher{cfg: cfg.withDefaults(), nodes: map[string]*node{}}
	d.cond = sync.NewCond(&d.mu)
	d.ctx, d.cancel = context.WithCancel(context.Background())
	return d
}

// AddNode registers (or revives) a worker by base URL. Reports whether
// the node is new. Safe to call at any time; registration is idempotent,
// so workers can re-announce themselves periodically.
func (d *Dispatcher) AddNode(url string) bool {
	d.mu.Lock()
	if n, ok := d.nodes[url]; ok {
		n.alive = true
		n.probeFails = 0
		d.mu.Unlock()
		d.cond.Broadcast()
		return false
	}
	n := &node{
		url:   url,
		alive: true,
		client: &serve.Client{
			Base:         url,
			HTTP:         d.cfg.HTTP,
			PollInterval: d.cfg.PollEvery,
		},
	}
	d.nodes[url] = n
	for i := 0; i < d.cfg.Slots; i++ {
		d.wg.Add(1)
		go d.puller(n)
	}
	d.mu.Unlock()
	d.cond.Broadcast()
	return true
}

func (d *Dispatcher) fingerprint() string {
	if d.cfg.Cache != nil && d.cfg.Cache.Fingerprint != "" {
		return d.cfg.Cache.Fingerprint
	}
	return runner.SimFingerprint
}

// RunJob implements serve.Runner: shared-cache lookup, then dispatch.
func (d *Dispatcher) RunJob(j *runner.Job) (*runner.Result, bool, error) {
	key := j.Key(d.fingerprint())
	if c := d.cfg.Cache; c != nil {
		if res, _, ok := c.Get(key); ok {
			return res, true, nil
		}
	}
	t := &task{job: j, key: key, tried: map[string]bool{}, res: make(chan taskResult, 1)}
	d.mu.Lock()
	err := d.routeLocked(t)
	d.mu.Unlock()
	if err != nil {
		return nil, false, err
	}
	d.cond.Broadcast()
	select {
	case r := <-t.res:
		if r.err == nil && d.cfg.Cache != nil {
			// Commit to the shared tier: a result computed (or locally
			// cached) on any worker becomes a coordinator hit for the
			// whole fleet.
			d.cfg.Cache.Put(key, r.res)
		}
		return r.res, r.cached, r.err
	case <-d.ctx.Done():
		return nil, false, d.ctx.Err()
	}
}

// StopAll implements the optional shutdown hook of serve.Runner: it
// cancels every outstanding dispatch (the workers' own watchdogs handle
// their local simulations) and returns how many were in flight.
func (d *Dispatcher) StopAll() int {
	d.mu.Lock()
	n := 0
	for _, nd := range d.nodes {
		n += nd.inflight
	}
	d.mu.Unlock()
	d.cancel()
	return n
}

// Close stops the pullers; outstanding tasks fail with a cancellation
// error. Idempotent.
func (d *Dispatcher) Close() {
	d.cancel()
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.cond.Broadcast()
	d.wg.Wait()
}

// routeLocked places t on the best node per rendezvous order: the
// highest-scoring alive node that has not already failed it (falling back
// to retrying failed nodes when no fresh one is alive).
func (d *Dispatcher) routeLocked(t *task) error {
	var alive []string
	for url, n := range d.nodes {
		if n.alive {
			alive = append(alive, url)
		}
	}
	if len(alive) == 0 {
		return fmt.Errorf("fleet: no live worker for job %s", t.job.Label)
	}
	ranked := rendezvousRank(t.key, alive)
	target := ""
	for _, url := range ranked {
		if !t.tried[url] {
			target = url
			break
		}
	}
	if target == "" {
		// Every live node failed this task once already; reset and retry
		// the primary rather than failing a job a transient blip touched.
		t.tried = map[string]bool{}
		target = ranked[0]
	}
	d.nodes[target].queue = append(d.nodes[target].queue, t)
	return nil
}

// next blocks until n has a task (its own queue first, then stealing from
// the longest backlog). Returns nil when the dispatcher closes.
func (d *Dispatcher) next(n *node) (*task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.closed {
			return nil, false
		}
		if n.alive {
			if len(n.queue) > 0 {
				t := n.queue[0]
				n.queue = n.queue[1:]
				n.inflight++
				return t, false
			}
			var victim *node
			for _, o := range d.nodes {
				if o != n && len(o.queue) > 0 && (victim == nil || len(o.queue) > len(victim.queue)) {
					victim = o
				}
			}
			if victim != nil {
				t := victim.queue[0]
				victim.queue = victim.queue[1:]
				n.inflight++
				return t, true
			}
		}
		d.cond.Wait()
	}
}

// puller is one dispatch slot of one node.
func (d *Dispatcher) puller(n *node) {
	defer d.wg.Done()
	for {
		t, stole := d.next(n)
		if t == nil {
			return
		}
		if stole {
			d.stolen.Add(1)
		}
		d.dispatched.Add(1)
		n.dispatched.Add(1)
		res, cached, err := d.runOn(n, t)
		d.mu.Lock()
		n.inflight--
		if errors.Is(err, errNodeLost) {
			// The node stopped answering mid-job: demote it and requeue
			// this task (and its queued backlog) onto survivors. If the
			// node actually finished the job, the serving record's
			// at-most-once commit discards the late twin result.
			d.markDownLocked(n)
			t.tried[n.url] = true
			d.requeued.Add(1)
			if rerr := d.routeLocked(t); rerr != nil {
				t.res <- taskResult{err: rerr}
			}
			d.mu.Unlock()
			d.cond.Broadcast()
			continue
		}
		d.mu.Unlock()
		t.res <- taskResult{res: res, cached: cached, err: err}
	}
}

// markDownLocked demotes n and reroutes its queued tasks.
func (d *Dispatcher) markDownLocked(n *node) {
	n.alive = false
	pending := n.queue
	n.queue = nil
	for _, t := range pending {
		t.tried[n.url] = true
		d.requeued.Add(1)
		if err := d.routeLocked(t); err != nil {
			t.res <- taskResult{err: err}
		}
	}
}

// runOn executes t on n: submit, forward progress, poll to completion.
// errNodeLost (wrapped) means "requeue elsewhere"; any other error is the
// job's own failure.
func (d *Dispatcher) runOn(n *node, t *task) (*runner.Result, bool, error) {
	st, err := n.client.SubmitJob(d.ctx, serve.RequestFromJob(t.job))
	if err != nil {
		var ae *serve.APIError
		if errors.As(err, &ae) {
			// The worker answered: a rejection, not a dead node. 429
			// (worker queue full) retries on another node; anything else
			// is the job's failure.
			if ae.Status == http.StatusTooManyRequests || ae.Status == http.StatusServiceUnavailable {
				return nil, false, fmt.Errorf("%w: %s shed the job: %v", errNodeLost, n.url, err)
			}
			return nil, false, fmt.Errorf("fleet: worker %s rejected job: %w", n.url, err)
		}
		if d.ctx.Err() != nil {
			return nil, false, d.ctx.Err()
		}
		return nil, false, fmt.Errorf("%w: %s: %v", errNodeLost, n.url, err)
	}

	// Forward the worker's progress stream into the coordinator-side
	// record: the job's Progress callback is the one serve installed at
	// admission, so samples surface through the coordinator's SSE and
	// rate gauges exactly as if the job ran locally.
	if t.job.Cfg.Progress != nil {
		sctx, cancel := context.WithCancel(d.ctx)
		defer cancel()
		go n.client.StreamEvents(sctx, st.ID, func(ev serve.Event) bool {
			if ev.Kind == "progress" {
				t.job.Cfg.Progress(ev.Sample())
			}
			return true
		})
	}

	fails := 0
	for {
		js, err := n.client.JobStatus(d.ctx, st.ID)
		switch {
		case err == nil:
			fails = 0
			if js.Done() {
				if js.State == "failed" {
					return nil, false, fmt.Errorf("fleet: worker %s: %s", n.url, js.Error)
				}
				if js.Result == nil {
					return nil, false, fmt.Errorf("fleet: worker %s finished job %s without a result", n.url, st.ID)
				}
				return js.Result, js.Cached, nil
			}
		default:
			var ae *serve.APIError
			if errors.As(err, &ae) {
				// The worker answered but no longer knows the job (e.g.
				// restarted in between): re-run it elsewhere.
				return nil, false, fmt.Errorf("%w: %s lost job %s: %v", errNodeLost, n.url, st.ID, err)
			}
			if d.ctx.Err() != nil {
				return nil, false, d.ctx.Err()
			}
			if fails++; fails >= d.cfg.DownAfter {
				return nil, false, fmt.Errorf("%w: %s unreachable polling job %s: %v", errNodeLost, n.url, st.ID, err)
			}
		}
		select {
		case <-time.After(d.cfg.PollEvery):
		case <-d.ctx.Done():
			return nil, false, d.ctx.Err()
		}
	}
}

// ProbeAll checks every node's /healthz once, reviving answering nodes
// and demoting nodes that failed DownAfter consecutive probes (their
// backlog requeues onto survivors). The coordinator calls this on its
// probe interval.
func (d *Dispatcher) ProbeAll() {
	d.mu.Lock()
	var nodes []*node
	for _, n := range d.nodes {
		nodes = append(nodes, n)
	}
	d.mu.Unlock()

	var wg sync.WaitGroup
	for _, n := range nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			ok := d.probe(n.url)
			d.mu.Lock()
			if ok {
				n.probeFails = 0
				if !n.alive {
					n.alive = true
					d.mu.Unlock()
					d.cond.Broadcast()
					return
				}
			} else {
				n.probeFails++
				if n.probeFails >= d.cfg.DownAfter && n.alive {
					d.markDownLocked(n)
					d.mu.Unlock()
					d.cond.Broadcast()
					return
				}
			}
			d.mu.Unlock()
		}(n)
	}
	wg.Wait()
}

// probe is one liveness check: a 200 from /healthz. A draining worker
// answers 503 and correctly reads as not-accepting-work.
func (d *Dispatcher) probe(url string) bool {
	req, err := http.NewRequestWithContext(d.ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := d.cfg.HTTP.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// DispatcherStats is a point-in-time counter snapshot.
type DispatcherStats struct {
	Dispatched, Stolen, Requeued int64
}

// Stats snapshots the dispatch counters.
func (d *Dispatcher) Stats() DispatcherStats {
	return DispatcherStats{
		Dispatched: d.dispatched.Load(),
		Stolen:     d.stolen.Load(),
		Requeued:   d.requeued.Load(),
	}
}

// NodeStatus is one worker's externally visible state.
type NodeStatus struct {
	URL        string `json:"url"`
	Alive      bool   `json:"alive"`
	QueueDepth int    `json:"queue_depth"`
	Inflight   int    `json:"inflight"`
	Dispatched int64  `json:"dispatched"`
}

// NodeStatuses lists the fleet sorted by URL.
func (d *Dispatcher) NodeStatuses() []NodeStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []NodeStatus
	for url, n := range d.nodes {
		out = append(out, NodeStatus{
			URL:        url,
			Alive:      n.alive,
			QueueDepth: len(n.queue),
			Inflight:   n.inflight,
			Dispatched: n.dispatched.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}
