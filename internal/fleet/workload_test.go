package fleet

import (
	"context"
	"testing"

	"finereg/internal/gpu"
	"finereg/internal/runner"
	"finereg/internal/workload"
)

const fleetProgram = `.kernel demo
.regs 12
.warps 2
.grid 8
  MOV R0, #0
  MOV R1, #4
top:
  LDG R2, [R0] pattern=coalesced region=1 footprint=65536
  FFMA R3, R2, R2, R3
  IADD R0, R0, #1
  ISETP R4, R0, R1
  @R4 BRA top trip=4
  STG [R0], R3 region=15
  EXIT
`

// TestFleetRunsProgramJobs: user programs dispatched through a
// coordinator reach a worker intact (the program text rides in the
// request RequestFromJob emits) and come back byte-identical to a direct
// engine run — including a partitioned concurrent job's per-tenant
// segments.
func TestFleetRunsProgramJobs(t *testing.T) {
	concurrent := gpu.Default().Scale(2)
	concurrent.Partitions = []int{1, 1}
	jobs := []*runner.Job{
		{Cfg: gpu.Default().Scale(2), Policy: runner.Baseline(),
			Programs: []workload.Program{{Source: fleetProgram}}},
		{Cfg: gpu.Default().Scale(2), Policy: runner.FineRegDefault(),
			Programs: []workload.Program{{Source: fleetProgram}, {Bench: "CS", Grid: 4}}},
		{Cfg: concurrent, Policy: runner.Baseline(),
			Programs: []workload.Program{{Source: fleetProgram}, {Bench: "CS", Grid: 4}}},
	}
	direct := (&runner.Engine{}).Run(jobs)
	if err := direct.Err(); err != nil {
		t.Fatalf("direct run: %v", err)
	}

	w := newWorker(t, "", nil)
	_, client := newCoordinator(t, CoordinatorConfig{}, w)
	fleetRun, err := client.RunJobs(context.Background(), jobs)
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	if err := fleetRun.Err(); err != nil {
		t.Fatalf("fleet batch: %v", err)
	}
	assertSameResults(t, jobs, direct, fleetRun)
	if len(fleetRun.Results[2].Segments) != 2 {
		t.Errorf("concurrent job lost its partition segments over the fleet hop: %d", len(fleetRun.Results[2].Segments))
	}
	if got := w.eng.Stats().Executed; got != int64(len(jobs)) {
		t.Errorf("worker executed %d simulations, want %d", got, len(jobs))
	}
}
