package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"finereg/internal/runner"
)

// The remote-cache wire protocol: results keyed by the same hex SHA-256
// job keys every other cache tier uses.
//
//	GET /v1/cache/{key}  -> 200 + Result JSON, or 404
//	PUT /v1/cache/{key}  <- Result JSON; 204
//
// The coordinator serves it over its own runner.Cache (the fleet's shared
// tier); workers mount a CacheClient as their cache's Remote, making the
// coordinator their L3 behind process memory and local disk.

// maxCacheBody bounds accepted PUT bodies; a Result is a metrics struct
// plus optional per-window floats, far below this.
const maxCacheBody = 16 << 20

// validKey reports whether k looks like a runner.Job key (64 hex chars) —
// anything else is rejected before touching the filesystem-backed cache.
func validKey(k string) bool {
	if len(k) != 64 {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// cacheServer exposes a runner.Cache as the fleet's shared result store.
type cacheServer struct{ cache *runner.Cache }

func (cs cacheServer) handleGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		http.Error(w, "fleet: malformed cache key", http.StatusBadRequest)
		return
	}
	res, _, ok := cs.cache.Get(key)
	if !ok {
		http.Error(w, "fleet: cache miss", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

func (cs cacheServer) handlePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		http.Error(w, "fleet: malformed cache key", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxCacheBody))
	if err != nil {
		http.Error(w, "fleet: reading body", http.StatusBadRequest)
		return
	}
	var res runner.Result
	if err := json.Unmarshal(body, &res); err != nil || res.Metrics == nil {
		http.Error(w, "fleet: malformed result", http.StatusBadRequest)
		return
	}
	cs.cache.Put(key, &res)
	w.WriteHeader(http.StatusNoContent)
}

// CacheClient implements runner.RemoteTier over the fleet cache protocol:
// install it as a worker cache's Remote to make the coordinator the
// worker's shared L3 tier. Every failure — transport, status, decode — is
// a miss or a dropped write, never an error: the remote tier accelerates,
// it is not a correctness dependency.
type CacheClient struct {
	// Base is the coordinator root, e.g. "http://coordinator:8321".
	Base string
	// HTTP is the transport (nil = a client with a short timeout, so a
	// wedged coordinator degrades lookups to misses instead of stalling
	// simulations).
	HTTP *http.Client
}

var _ runner.RemoteTier = (*CacheClient)(nil)

func (c *CacheClient) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 10 * time.Second}
}

// Get fetches key from the coordinator; any failure is a miss.
func (c *CacheClient) Get(key string) (*runner.Result, bool) {
	resp, err := c.http().Get(c.Base + "/v1/cache/" + key)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	var res runner.Result
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxCacheBody)).Decode(&res); err != nil ||
		res.Metrics == nil {
		return nil, false
	}
	return &res, true
}

// Put stores key on the coordinator, best effort.
func (c *CacheClient) Put(key string, r *runner.Result) {
	body, err := json.Marshal(r)
	if err != nil {
		return
	}
	req, err := http.NewRequest(http.MethodPut, c.Base+"/v1/cache/"+key, bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
