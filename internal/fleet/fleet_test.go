package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"finereg/internal/gpu"
	"finereg/internal/kernels"
	"finereg/internal/runner"
	"finereg/internal/serve"
)

// tinyJob mirrors the serve test corpus: a small but real simulation (2-SM
// machine, shrunken grid) so fleet tests drive the actual simulator.
func tinyJob(t *testing.T, bench string, pol runner.PolicySpec) *runner.Job {
	t.Helper()
	p, err := kernels.ProfileByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	return &runner.Job{
		Cfg:     gpu.Default().Scale(2),
		Profile: p,
		Grid:    int(float64(p.GridCTAs)*0.1 + 0.5),
		Policy:  pol,
		Label:   bench + "/" + pol.Kind,
	}
}

// corpus is the serve e2e job set the fleet must reproduce byte for byte.
func corpus(t *testing.T) []*runner.Job {
	return []*runner.Job{
		tinyJob(t, "CS", runner.Baseline()),
		tinyJob(t, "CS", runner.VirtualThread()),
		tinyJob(t, "CS", runner.FineRegDefault()),
		tinyJob(t, "LB", runner.Baseline()),
		tinyJob(t, "LB", runner.FineRegDefault()),
	}
}

// testWorker is one worker node: its serve server, engine, and HTTP front.
type testWorker struct {
	srv *serve.Server
	hs  *httptest.Server
	eng *runner.Engine
}

// newWorker starts a worker with a disk-backed cache; coordURL != ""
// mounts the coordinator as the cache's remote tier.
func newWorker(t *testing.T, coordURL string, r serve.Runner) *testWorker {
	t.Helper()
	cache := runner.NewCache(t.TempDir())
	if coordURL != "" {
		cache.Remote = &CacheClient{Base: coordURL}
	}
	eng := &runner.Engine{Cache: cache}
	s := serve.New(serve.Config{Engine: eng, Workers: 2, Runner: r})
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return &testWorker{srv: s, hs: hs, eng: eng}
}

// newCoordinator starts a coordinator over the given workers (probe loop
// off; tests drive ProbeAll explicitly where liveness matters).
func newCoordinator(t *testing.T, cfg CoordinatorConfig, workers ...*testWorker) (*Coordinator, *serve.Client) {
	t.Helper()
	for _, w := range workers {
		cfg.Nodes = append(cfg.Nodes, w.hs.URL)
	}
	if cfg.ProbeEvery == 0 {
		cfg.ProbeEvery = -1
	}
	if cfg.PollEvery == 0 {
		cfg.PollEvery = 10 * time.Millisecond
	}
	c := NewCoordinator(cfg)
	hs := httptest.NewServer(c)
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	})
	return c, &serve.Client{Base: hs.URL, PollInterval: 5 * time.Millisecond, ShedBackoff: 5 * time.Millisecond}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// assertSameResults compares two result sets byte for byte.
func assertSameResults(t *testing.T, jobs []*runner.Job, want, got *runner.Batch) {
	t.Helper()
	for i := range jobs {
		w := mustJSON(t, want.Results[i])
		g := mustJSON(t, got.Results[i])
		if !bytes.Equal(w, g) {
			t.Errorf("job %d (%s): fleet result differs from direct run\ndirect: %s\nfleet:  %s",
				i, jobs[i].Label, w, g)
		}
	}
}

// TestFleetByteIdenticalSweep is the tentpole acceptance test: the serve
// e2e corpus through a coordinator + two workers must be byte-identical
// to a direct engine run, with every simulation executed on a worker and
// a repeat sweep answered with zero re-simulations.
func TestFleetByteIdenticalSweep(t *testing.T) {
	jobs := corpus(t)
	direct := (&runner.Engine{}).Run(jobs)
	if err := direct.Err(); err != nil {
		t.Fatalf("direct run: %v", err)
	}

	wA := newWorker(t, "", nil)
	wB := newWorker(t, "", nil)
	coord, client := newCoordinator(t, CoordinatorConfig{}, wA, wB)

	fleetRun, err := client.RunJobs(context.Background(), jobs)
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	if err := fleetRun.Err(); err != nil {
		t.Fatalf("fleet batch: %v", err)
	}
	assertSameResults(t, jobs, direct, fleetRun)

	execA := wA.eng.Stats().Executed
	execB := wB.eng.Stats().Executed
	if execA+execB != int64(len(jobs)) {
		t.Errorf("workers executed %d+%d simulations, want %d total", execA, execB, len(jobs))
	}
	if got := coord.Server().Registry(); got == nil {
		t.Fatal("coordinator has no registry")
	}
	if st := coord.Dispatcher().Stats(); st.Dispatched < int64(len(jobs)) {
		t.Errorf("dispatched %d, want >= %d", st.Dispatched, len(jobs))
	}

	// Warm repeat: same sweep again — answered by the coordinator
	// (coalesced records / shared cache), no new simulations anywhere.
	again, err := client.RunJobs(context.Background(), jobs)
	if err != nil {
		t.Fatalf("repeat run: %v", err)
	}
	if err := again.Err(); err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, jobs, direct, again)
	if a, b := wA.eng.Stats().Executed, wB.eng.Stats().Executed; a != execA || b != execB {
		t.Errorf("repeat sweep re-simulated: executed %d/%d -> %d/%d", execA, execB, a, b)
	}

	// Fleet membership is visible over the API.
	var nodes []NodeStatus
	if err := json.Unmarshal(httpGet(t, client.Base+"/v1/fleet/workers"), &nodes); err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || !nodes[0].Alive || !nodes[1].Alive {
		t.Errorf("fleet workers = %+v, want 2 alive nodes", nodes)
	}
	body := string(httpGet(t, client.Base+"/metrics"))
	for _, want := range []string{"finereg_fleet_nodes_alive 2", "finereg_fleet_node_up{node="} {
		if !strings.Contains(body, want) {
			t.Errorf("coordinator metrics missing %q", want)
		}
	}
}

// TestFleetRemoteCacheTier: a cold worker whose cache mounts the
// coordinator as its remote tier must serve a sweep the fleet already
// computed entirely from remote hits — zero simulations — with the hit
// source visible in its metrics.
func TestFleetRemoteCacheTier(t *testing.T) {
	jobs := corpus(t)
	direct := (&runner.Engine{}).Run(jobs)
	if err := direct.Err(); err != nil {
		t.Fatal(err)
	}

	wA := newWorker(t, "", nil)
	coord, client := newCoordinator(t, CoordinatorConfig{}, wA)
	if _, err := client.RunJobs(context.Background(), jobs); err != nil {
		t.Fatalf("warming run: %v", err)
	}
	if got := coord.Cache().Stats(); got.Misses == 0 {
		t.Fatalf("coordinator cache saw no traffic: %+v", got)
	}

	// Cold node: empty local cache, coordinator as remote tier. Submit
	// the sweep directly to it, as a fleet worker would see it.
	coordURL := client.Base
	wCold := newWorker(t, coordURL, nil)
	coldClient := &serve.Client{Base: wCold.hs.URL, PollInterval: 5 * time.Millisecond}
	got, err := coldClient.RunJobs(context.Background(), jobs)
	if err != nil {
		t.Fatalf("cold worker run: %v", err)
	}
	if err := got.Err(); err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, jobs, direct, got)

	st := wCold.eng.Stats()
	if st.Executed != 0 {
		t.Errorf("cold worker executed %d simulations, want 0 (remote tier)", st.Executed)
	}
	if st.RemoteHits != int64(len(jobs)) {
		t.Errorf("cold worker remote hits = %d, want %d", st.RemoteHits, len(jobs))
	}
	cs := wCold.eng.Cache.Stats()
	if cs.RemoteHits != int64(len(jobs)) || cs.MemHits != 0 || cs.DiskHits != 0 {
		t.Errorf("cold worker cache stats = %+v, want all %d hits remote", cs, len(jobs))
	}

	body := string(httpGet(t, wCold.hs.URL+"/metrics"))
	if want := `finereg_cache_hits_total{source="remote"} 5`; !strings.Contains(body, want) {
		t.Errorf("cold worker metrics missing %q", want)
	}

	// Back-fill: the same sweep again is now local (mem), not remote.
	if _, err := coldClient.RunJobs(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if cs2 := wCold.eng.Cache.Stats(); cs2.RemoteHits != cs.RemoteHits {
		t.Errorf("repeat on cold worker went remote again: %+v", cs2)
	}
}

// parkRunner wraps a worker engine: every job parks until release closes,
// then runs normally. entered reports each parked job.
type parkRunner struct {
	e       *runner.Engine
	entered chan *runner.Job
	release chan struct{}
}

func (p *parkRunner) RunJob(j *runner.Job) (*runner.Result, bool, error) {
	p.entered <- j
	<-p.release
	b := p.e.Run([]*runner.Job{j})
	return b.Results[0], b.Stats.CacheHits+b.Stats.Deduped > 0, b.Errs[0]
}

// splitByPrimary partitions candidate jobs by their rendezvous-primary
// node, generating grid-perturbed variants of the corpus until each node
// has at least want primaries.
func splitByPrimary(t *testing.T, urls []string, want int) map[string][]*runner.Job {
	t.Helper()
	out := map[string][]*runner.Job{}
	base := corpus(t)
	for i := 0; i < 64; i++ {
		j := base[i%len(base)]
		cand := *j
		cand.Grid = j.Grid + i/len(base)
		key := cand.Key(runner.SimFingerprint)
		primary := rendezvousRank(key, urls)[0]
		if len(out[primary]) < want {
			out[primary] = append(out[primary], &cand)
		}
		done := true
		for _, u := range urls {
			if len(out[u]) < want {
				done = false
			}
		}
		if done {
			return out
		}
	}
	t.Fatalf("could not find %d primary jobs per node over %v", want, urls)
	return nil
}

// TestFleetWorkStealing: with one dispatch slot per node and node A
// parked, A's backlog must be stolen and completed by node B.
func TestFleetWorkStealing(t *testing.T) {
	entered := make(chan *runner.Job, 16)
	release := make(chan struct{})
	cacheA := runner.NewCache(t.TempDir())
	engA := &runner.Engine{Cache: cacheA}
	park := &parkRunner{e: engA, entered: entered, release: release}
	released := false
	defer func() {
		if !released {
			close(release)
		}
	}()

	sA := serve.New(serve.Config{Engine: engA, Workers: 2, Runner: park})
	hsA := httptest.NewServer(sA)
	wA := &testWorker{srv: sA, hs: hsA, eng: engA}
	t.Cleanup(func() {
		hsA.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		sA.Shutdown(ctx)
	})
	wB := newWorker(t, "", nil)

	coord, client := newCoordinator(t, CoordinatorConfig{Slots: 1}, wA, wB)

	split := splitByPrimary(t, []string{wA.hs.URL, wB.hs.URL}, 2)
	jobs := append(append([]*runner.Job{}, split[wA.hs.URL]...), split[wB.hs.URL][0])

	resCh := make(chan error, 1)
	go func() {
		b, err := client.RunJobs(context.Background(), jobs)
		if err == nil {
			err = b.Err()
		}
		resCh <- err
	}()

	// A's single slot parks on one A-primary job; its second A-primary
	// job can only finish if B steals it. Hold A parked until B has
	// executed both its own job and the stolen one.
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("no job reached worker A")
	}
	deadline := time.Now().Add(30 * time.Second)
	for coord.Dispatcher().Stats().Stolen == 0 || wB.eng.Stats().Executed < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no steal while A parked: stolen=%d, B executed %d",
				coord.Dispatcher().Stats().Stolen, wB.eng.Stats().Executed)
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(release)
	released = true
	if err := <-resCh; err != nil {
		t.Fatalf("sweep with stealing failed: %v", err)
	}
	if execB := wB.eng.Stats().Executed; execB != 2 {
		t.Errorf("worker B executed %d jobs, want 2 (own + stolen)", execB)
	}
	if execA := wA.eng.Stats().Executed; execA != 1 {
		t.Errorf("worker A executed %d jobs, want 1 (the parked one)", execA)
	}
}

// TestFleetWorkerFailureRequeue is the failure-semantics acceptance test:
// a worker killed mid-job must have its in-flight and queued jobs
// requeued onto the survivor, the sweep must still complete, and the
// results must stay byte-identical to a direct run.
func TestFleetWorkerFailureRequeue(t *testing.T) {
	entered := make(chan *runner.Job, 16)
	release := make(chan struct{})
	cacheA := runner.NewCache(t.TempDir())
	engA := &runner.Engine{Cache: cacheA}
	park := &parkRunner{e: engA, entered: entered, release: release}

	sA := serve.New(serve.Config{Engine: engA, Workers: 2, Runner: park})
	hsA := httptest.NewServer(sA)
	wA := &testWorker{srv: sA, hs: hsA, eng: engA}
	closedA := false
	t.Cleanup(func() {
		close(release) // un-park before draining A
		if !closedA {
			hsA.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		sA.Shutdown(ctx)
	})
	wB := newWorker(t, "", nil)

	coord, client := newCoordinator(t, CoordinatorConfig{Slots: 2, DownAfter: 3}, wA, wB)

	split := splitByPrimary(t, []string{wA.hs.URL, wB.hs.URL}, 2)
	jobs := append(append([]*runner.Job{}, split[wA.hs.URL]...), split[wB.hs.URL]...)
	direct := (&runner.Engine{}).Run(jobs)
	if err := direct.Err(); err != nil {
		t.Fatal(err)
	}

	type runOut struct {
		b   *runner.Batch
		err error
	}
	resCh := make(chan runOut, 1)
	go func() {
		b, err := client.RunJobs(context.Background(), jobs)
		resCh <- runOut{b, err}
	}()

	// Wait until A holds a job mid-flight, then kill the node.
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("no job reached worker A")
	}
	hsA.CloseClientConnections()
	hsA.Close()
	closedA = true

	out := <-resCh
	if out.err != nil {
		t.Fatalf("sweep across worker failure: %v", out.err)
	}
	if err := out.b.Err(); err != nil {
		t.Fatalf("sweep across worker failure: %v", err)
	}
	assertSameResults(t, jobs, direct, out.b)

	st := coord.Dispatcher().Stats()
	if st.Requeued == 0 {
		t.Error("worker death caused no requeues")
	}
	var aliveA, aliveB bool
	for _, ns := range coord.Dispatcher().NodeStatuses() {
		switch ns.URL {
		case wA.hs.URL:
			aliveA = ns.Alive
		case wB.hs.URL:
			aliveB = ns.Alive
		}
	}
	if aliveA {
		t.Error("dead worker A still marked alive")
	}
	if !aliveB {
		t.Error("surviving worker B marked down")
	}
	if execB := wB.eng.Stats().Executed; execB != int64(len(jobs)) {
		t.Errorf("survivor executed %d jobs, want all %d", execB, len(jobs))
	}
}

// TestFleetCacheProtocol covers the HTTP cache endpoints directly: round
// trip, miss, and malformed-key rejection.
func TestFleetCacheProtocol(t *testing.T) {
	wA := newWorker(t, "", nil)
	_, client := newCoordinator(t, CoordinatorConfig{}, wA)

	job := tinyJob(t, "CS", runner.Baseline())
	b := (&runner.Engine{}).Run([]*runner.Job{job})
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	key := job.Key(runner.SimFingerprint)

	cc := &CacheClient{Base: client.Base}
	if _, ok := cc.Get(key); ok {
		t.Fatal("empty coordinator cache reported a hit")
	}
	cc.Put(key, b.Results[0])
	got, ok := cc.Get(key)
	if !ok {
		t.Fatal("round-tripped result not found")
	}
	if !bytes.Equal(mustJSON(t, b.Results[0]), mustJSON(t, got)) {
		t.Error("result changed across the cache protocol round trip")
	}

	if _, ok := cc.Get("not-a-key"); ok {
		t.Error("malformed key reported a hit")
	}
	if resp, err := httpGetResp(client.Base + "/v1/cache/zzzz"); err == nil {
		if resp != 400 {
			t.Errorf("malformed key GET = HTTP %d, want 400", resp)
		}
	}
}

func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := httptestGet(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
