// Package fleet turns the single-node simulation service (internal/serve)
// into a coordinator/worker cluster. The coordinator fronts the exact v1
// API clients already speak: submissions are admitted, coalesced, and
// cached exactly as on a single node, but execution is dispatched over
// HTTP to worker nodes — each an ordinary finereg-serve instance — with
// cache-aware routing, work stealing, and requeue-on-failure.
//
// Routing is rendezvous (highest-random-weight) hashing on the job's
// content-addressed key: the same job always prefers the same worker, so
// a worker's local disk cache (its L2) accumulates exactly the keys it
// keeps being asked for. The coordinator's own cache is the fleet's
// shared tier — consulted before any dispatch, populated by write-through
// from the workers (runner.RemoteTier over HTTP, /v1/cache/{key}) — so a
// result computed anywhere is a hit everywhere.
package fleet

import "hash/fnv"

// rendezvousScore is the HRW weight of (key, node): each node hashes the
// key independently and the highest score wins, so adding or removing one
// node only remaps the keys that node won — every other key keeps its
// placement (and its warmed worker cache).
func rendezvousScore(key, node string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{'|'})
	h.Write([]byte(node))
	return h.Sum64()
}

// rendezvousRank orders nodes by descending score for key: [0] is the
// primary placement, the rest the failover order.
func rendezvousRank(key string, nodes []string) []string {
	out := append([]string(nil), nodes...)
	// Insertion sort by score descending (ties by name for determinism);
	// fleets are a handful of nodes.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			sj, sp := rendezvousScore(key, out[j]), rendezvousScore(key, out[j-1])
			if sj > sp || (sj == sp && out[j] < out[j-1]) {
				out[j], out[j-1] = out[j-1], out[j]
			} else {
				break
			}
		}
	}
	return out
}
