// Package prof wires the standard pprof profilers into the CLIs
// (cmd/finereg-sim, cmd/finereg-bench): one Start call after flag parsing,
// one stop call once the interesting work is done. Both profiles are
// optional and independent; EXPERIMENTS.md documents the analysis
// workflow (go tool pprof over the simulator hot path).
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges a heap profile at
// memPath; either may be empty to disable that profile. The returned stop
// function finalizes both files and must be called exactly once — call it
// right after the measured work, not via defer past an os.Exit.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // settle live objects before the heap snapshot
			return pprof.WriteHeapProfile(f)
		}
		return nil
	}, nil
}
