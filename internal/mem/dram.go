package mem

import (
	"math"

	"finereg/internal/telemetry"
)

// Telemetry (internal/telemetry): off-chip channel activity, one add pair
// per transfer (an L2-missing line or a policy DMA — far below the issue
// rate).
var (
	telDRAMAccesses = telemetry.NewCounter("mem_dram_accesses")
	telDRAMBytes    = telemetry.NewCounter("mem_dram_bytes")
)

// TrafficClass labels off-chip transfers for the Figure 15 breakdown.
type TrafficClass uint8

const (
	// TrafficDemand is ordinary load/store traffic.
	TrafficDemand TrafficClass = iota
	// TrafficContext is CTA register context moved to/from DRAM by the
	// Reg+DRAM (Zorua-like) policy.
	TrafficContext
	// TrafficBitvec is FineReg's live-register bit-vector fetches.
	TrafficBitvec
	numTrafficClasses
)

// DRAM models the off-chip channel: every transfer pays LatencyCycles and
// occupies the channel for bytes/BytesPerCycle cycles; concurrent requests
// serialize behind nextFree (a single-queue bandwidth model).
type DRAM struct {
	// LatencyCycles is the unloaded access latency.
	LatencyCycles int64
	// BytesPerCycle is the channel bandwidth (Table I: 352.5 GB/s at
	// 1126 MHz ≈ 313 B/cycle).
	BytesPerCycle float64

	// ops attributes channel telemetry to the owning run's scope (nil =
	// unobserved); set via Hierarchy.SetOps.
	ops *telemetry.Scope

	nextFree float64
	bytes    [numTrafficClasses]int64

	// accesses and gross count transfers and total bytes independently of
	// the per-class ledger, so gross == Σ bytes[class] is a conservation
	// invariant (a transfer booked to the wrong place, or a ledger entry
	// mutated outside Access, breaks it).
	accesses int64
	gross    int64
}

// Access schedules a transfer of the given size issued at cycle now and
// returns its completion cycle. Traffic is accounted to class.
func (d *DRAM) Access(now int64, bytes int, class TrafficClass) int64 {
	d.bytes[class] += int64(bytes)
	d.accesses++
	d.gross += int64(bytes)
	telDRAMAccesses.IncScoped(d.ops)
	telDRAMBytes.AddScoped(d.ops, int64(bytes))
	start := float64(now)
	if d.nextFree > start {
		start = d.nextFree
	}
	service := float64(bytes) / d.BytesPerCycle
	d.nextFree = start + service
	// Round the completion cycle up: a transfer occupying any fraction of a
	// cycle is not done until that cycle ends. Truncation let sub-cycle
	// transfers finish up to a cycle early (nextFree keeps the exact
	// fractional time so back-to-back backlog accounting stays precise).
	return int64(math.Ceil(start+service)) + d.LatencyCycles
}

// QueueDelay returns how long a request issued now would wait for the
// channel (the bandwidth queue's backlog).
func (d *DRAM) QueueDelay(now int64) float64 {
	w := d.nextFree - float64(now)
	if w < 0 {
		return 0
	}
	return w
}

// Bytes returns the transferred bytes of one traffic class.
func (d *DRAM) Bytes(class TrafficClass) int64 { return d.bytes[class] }

// TotalBytes returns all off-chip traffic.
func (d *DRAM) TotalBytes() int64 {
	var t int64
	for _, b := range d.bytes {
		t += b
	}
	return t
}

// Accesses returns how many transfers the channel has serviced.
func (d *DRAM) Accesses() int64 { return d.accesses }

// GrossBytes returns total transferred bytes counted independently of the
// per-class ledger; internal/audit checks it against TotalBytes.
func (d *DRAM) GrossBytes() int64 { return d.gross }

// InjectLedgerSkew corrupts one traffic class's ledger entry by delta
// without touching the gross counter. Tests only: it lets mutation tests
// prove the auditor detects ledger drift.
func (d *DRAM) InjectLedgerSkew(class TrafficClass, delta int64) {
	d.bytes[class] += delta
}

// Utilization returns channel-busy cycles divided by elapsed cycles.
func (d *DRAM) Utilization(elapsed int64) float64 {
	if elapsed <= 0 {
		return 0
	}
	busy := float64(d.TotalBytes()) / d.BytesPerCycle
	u := busy / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}
