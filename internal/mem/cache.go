// Package mem models the GPU memory hierarchy of the Table I machine: a
// per-SM L1 cache, a shared L2, and an off-chip DRAM channel with a fixed
// access latency plus a bandwidth queue, together with the warp-level
// coalescer that turns access descriptors into 128-byte transactions.
package mem

import (
	"fmt"
	"sync/atomic"
)

// LineBytes is the cache line / memory transaction size.
const LineBytes = 128

// Cache is a set-associative, LRU, write-allocate cache. It models tags
// and recency only; data never moves (the timing simulator does not need
// values).
type Cache struct {
	ways      int
	sets      uint64
	lineShift uint
	tags      []uint64 // sets × ways, tag 0 = invalid (addresses are offset to avoid 0)
	used      []int64  // LRU stamps, parallel to tags

	// Accesses, Hits, and Misses count probe results. Hits is maintained
	// on the hit return path, independently of the other two, so
	// Hits + Misses == Accesses is a real conservation invariant (a skipped
	// increment on either path breaks it) rather than a tautology.
	Accesses, Hits, Misses int64

	stamp int64

	// version counts content changes: it is bumped on every miss fill and
	// on Reset, and never on a hit (hits touch only LRU recency, which
	// cannot change a later probe's hit/miss outcome). Speculative readers
	// (mem.Hierarchy L2 speculation) snapshot it before lock-free Probes
	// and revalidate it at their canonical commit point: an unchanged
	// version proves no line moved in between, so the probes observed
	// exactly the state a synchronized access would have seen.
	version atomic.Int64
}

// NewCache builds a cache of sizeBytes capacity with the given
// associativity and LineBytes lines. sizeBytes must be a positive multiple
// of ways*LineBytes (set counts need not be powers of two — the Table I L1
// is 48 KB / 8-way / 128 B = 48 sets).
func NewCache(sizeBytes, ways int) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 {
		return nil, fmt.Errorf("mem: invalid cache geometry %d bytes / %d ways", sizeBytes, ways)
	}
	sets := sizeBytes / (ways * LineBytes)
	if sets == 0 || sizeBytes%(ways*LineBytes) != 0 {
		return nil, fmt.Errorf("mem: cache of %d bytes / %d ways is not a whole number of %d-byte sets", sizeBytes, ways, ways*LineBytes)
	}
	c := &Cache{
		ways:      ways,
		sets:      uint64(sets),
		lineShift: 7, // log2(LineBytes)
		tags:      make([]uint64, sets*ways),
		used:      make([]int64, sets*ways),
	}
	return c, nil
}

// MustNewCache is NewCache that panics on error (static configurations).
func MustNewCache(sizeBytes, ways int) *Cache {
	c, err := NewCache(sizeBytes, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// Access probes the cache with a byte address, fills on miss, and reports
// whether it hit. The LRU victim in the set is replaced on miss.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	c.stamp++
	line := (addr >> c.lineShift) + 1 // +1 so tag 0 stays "invalid"
	set := int((addr >> c.lineShift) % c.sets)
	base := set * c.ways
	victim := base
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == line {
			c.used[i] = c.stamp
			c.Hits++
			return true
		}
		if c.used[i] < c.used[victim] {
			victim = i
		}
	}
	c.Misses++
	c.version.Add(1)
	// The fill store is atomic so concurrent lock-free Probes (speculative
	// readers on other shard goroutines) never read a torn tag. Mutators
	// are serialized by the canonical-order gate, so the plain tag reads in
	// the scan above race with nothing.
	atomic.StoreUint64(&c.tags[victim], line)
	c.used[victim] = c.stamp
	return false
}

// Probe reports whether addr is resident without touching any cache
// state — no LRU update, no counters, no fill. It uses atomic tag loads
// only, so speculative readers may call it concurrently with a
// gate-serialized Access on another goroutine; a probe that overlaps a
// fill returns an arbitrary but untorn answer, which the caller's
// version validation then rejects.
func (c *Cache) Probe(addr uint64) bool {
	line := (addr >> c.lineShift) + 1
	set := int((addr >> c.lineShift) % c.sets)
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if atomic.LoadUint64(&c.tags[i]) == line {
			return true
		}
	}
	return false
}

// Version returns the content-change counter (see the field doc).
func (c *Cache) Version() int64 { return c.version.Load() }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.used[i] = 0
	}
	c.Accesses, c.Hits, c.Misses, c.stamp = 0, 0, 0, 0
	c.version.Add(1)
}

// SizeBytes returns the cache capacity.
func (c *Cache) SizeBytes() int { return len(c.tags) * LineBytes }

// ResidentLines counts the valid lines. Lines only become valid through a
// miss fill, so ResidentLines <= Misses (and <= capacity) at all times —
// the residency invariant internal/audit checks.
func (c *Cache) ResidentLines() int {
	n := 0
	for _, t := range c.tags {
		if t != 0 {
			n++
		}
	}
	return n
}

// InjectAuditSkew corrupts one of the cache's probe counters by delta.
// Tests only: it exists so mutation tests can prove the auditor detects
// cache-accounting drift. Unknown counter names panic.
func (c *Cache) InjectAuditSkew(counter string, delta int64) {
	switch counter {
	case "hits":
		c.Hits += delta
	case "misses":
		c.Misses += delta
	case "accesses":
		c.Accesses += delta
	default:
		panic(fmt.Sprintf("mem: InjectAuditSkew: unknown counter %q", counter))
	}
}
