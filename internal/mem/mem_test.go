package mem

import (
	"testing"
	"testing/quick"

	"finereg/internal/isa"
	"finereg/internal/par"
)

func TestCacheGeometry(t *testing.T) {
	c := MustNewCache(48<<10, 8) // Table I L1
	if got := c.SizeBytes(); got != 48<<10 {
		t.Errorf("SizeBytes = %d, want %d", got, 48<<10)
	}
	if _, err := NewCache(48<<10+1, 8); err == nil {
		t.Error("fractional set count should be rejected")
	}
	if _, err := NewCache(0, 8); err == nil {
		t.Error("zero size should be rejected")
	}
	if _, err := NewCache(1<<10, 0); err == nil {
		t.Error("zero ways should be rejected")
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := MustNewCache(1<<12, 4)
	if c.Access(0x1000) {
		t.Error("cold access should miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access should hit")
	}
	if !c.Access(0x1000 + 64) {
		t.Error("same-line access should hit")
	}
	if c.Access(0x1000 + LineBytes) {
		t.Error("next line should miss")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Errorf("counters = %d/%d, want 4 accesses / 2 misses", c.Accesses, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 sets × 2 ways: four distinct lines mapping to set 0 force LRU.
	c := MustNewCache(2*2*LineBytes, 2)
	setStride := uint64(2 * LineBytes) // lines with the same set index
	a, b, d := uint64(0), setStride, 2*setStride
	c.Access(a) // miss, fill
	c.Access(b) // miss, fill
	c.Access(a) // hit, a most recent
	c.Access(d) // miss, evicts b (LRU)
	if !c.Access(a) {
		t.Error("a should still be resident")
	}
	if c.Access(b) {
		t.Error("b should have been evicted by LRU")
	}
}

func TestCacheReset(t *testing.T) {
	c := MustNewCache(1<<12, 4)
	c.Access(0)
	c.Reset()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Error("Reset should clear counters")
	}
	if c.Access(0) {
		t.Error("Reset should clear contents")
	}
}

// Property: a working set smaller than capacity never misses after the
// first pass, regardless of ordering within passes.
func TestCacheFitsWorkingSetQuick(t *testing.T) {
	f := func(seed uint16) bool {
		c := MustNewCache(1<<13, 8) // 64 lines
		nLines := 1 + int(seed%32)  // at most half capacity
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < nLines; i++ {
				hit := c.Access(uint64(i) * LineBytes)
				if pass > 0 && !hit {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDRAMLatencyAndQueueing(t *testing.T) {
	d := &DRAM{LatencyCycles: 400, BytesPerCycle: 256}
	t1 := d.Access(0, 128, TrafficDemand)
	if t1 != 401 {
		t.Errorf("first access completes at %d, want 401 (latency + 0.5 cycle service, rounded up)", t1)
	}
	// Saturate the channel: 100 back-to-back lines serialize at 0.5
	// cycles each.
	var last int64
	for i := 0; i < 100; i++ {
		last = d.Access(0, 128, TrafficDemand)
	}
	if last < 400+45 {
		t.Errorf("100 queued accesses complete at %d, want >= 445 (bandwidth-bound)", last)
	}
	if got := d.Bytes(TrafficDemand); got != 128*101 {
		t.Errorf("demand bytes = %d, want %d", got, 128*101)
	}
}

func TestDRAMTrafficClasses(t *testing.T) {
	d := &DRAM{LatencyCycles: 1, BytesPerCycle: 64}
	d.Access(0, 100, TrafficDemand)
	d.Access(0, 200, TrafficContext)
	d.Access(0, 12, TrafficBitvec)
	if d.Bytes(TrafficDemand) != 100 || d.Bytes(TrafficContext) != 200 || d.Bytes(TrafficBitvec) != 12 {
		t.Errorf("per-class bytes wrong: %d/%d/%d", d.Bytes(TrafficDemand), d.Bytes(TrafficContext), d.Bytes(TrafficBitvec))
	}
	if d.TotalBytes() != 312 {
		t.Errorf("TotalBytes = %d, want 312", d.TotalBytes())
	}
}

func TestDRAMUtilization(t *testing.T) {
	d := &DRAM{LatencyCycles: 1, BytesPerCycle: 100}
	d.Access(0, 1000, TrafficDemand) // 10 busy cycles
	if u := d.Utilization(100); u < 0.09 || u > 0.11 {
		t.Errorf("Utilization = %v, want ~0.10", u)
	}
	if u := d.Utilization(5); u != 1 {
		t.Errorf("Utilization should clamp to 1, got %v", u)
	}
	if u := d.Utilization(0); u != 0 {
		t.Errorf("Utilization(0) = %v, want 0", u)
	}
}

func TestCoalesceShapes(t *testing.T) {
	var buf []uint64
	foot := int64(1 << 20)
	cases := []struct {
		md    isa.MemDesc
		nWant int
	}{
		{isa.MemDesc{Pattern: isa.PatCoalesced, Footprint: foot}, 1},
		{isa.MemDesc{Pattern: isa.PatBroadcast, Footprint: foot}, 1},
		{isa.MemDesc{Pattern: isa.PatStrided, Stride: 8, Footprint: foot}, 8},
		{isa.MemDesc{Pattern: isa.PatStrided, Stride: 64, Footprint: foot}, 32},
		{isa.MemDesc{Pattern: isa.PatRandom, Footprint: foot}, 8},
	}
	for _, c := range cases {
		got := Coalesce(c.md, 7, buf)
		if len(got) != c.nWant {
			t.Errorf("%v: %d transactions, want %d", c.md.Pattern, len(got), c.nWant)
		}
	}
}

func TestCoalesceRegionsDisjoint(t *testing.T) {
	a := Coalesce(isa.MemDesc{Pattern: isa.PatCoalesced, Region: 0, Footprint: 1 << 20}, 5, nil)
	b := Coalesce(isa.MemDesc{Pattern: isa.PatCoalesced, Region: 1, Footprint: 1 << 20}, 5, nil)
	if a[0] == b[0] {
		t.Error("different regions must not alias")
	}
}

func TestCoalesceFootprintWraps(t *testing.T) {
	md := isa.MemDesc{Pattern: isa.PatCoalesced, Footprint: 4 * LineBytes}
	seen := map[uint64]bool{}
	for i := uint64(0); i < 64; i++ {
		for _, l := range Coalesce(md, i, nil) {
			seen[l] = true
		}
	}
	if len(seen) != 4 {
		t.Errorf("footprint of 4 lines produced %d distinct lines", len(seen))
	}
}

// Property: Coalesce is deterministic and respects the footprint bound.
func TestCoalesceBoundedQuick(t *testing.T) {
	f := func(pat, region uint8, stride int16, stream uint32, footKB uint8) bool {
		md := isa.MemDesc{
			Pattern:   isa.Pattern(pat % 4),
			Stride:    int(stride),
			Region:    region % 16,
			Footprint: int64(1+footKB%64) << 10,
		}
		a := Coalesce(md, uint64(stream), nil)
		b := Coalesce(md, uint64(stream), nil)
		if len(a) != len(b) || len(a) == 0 || len(a) > 32 {
			return false
		}
		base := uint64(md.Region) << 40
		foot := uint64(md.Footprint)
		if foot < LineBytes {
			foot = LineBytes
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
			if a[i] < base || a[i] >= base+foot {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyAccessLatencies(t *testing.T) {
	h := NewHierarchy(2<<20, 8, 400, 313, DefaultLatencies())
	l1 := MustNewCache(48<<10, 8)
	lines := []uint64{0}

	// Cold: miss everywhere -> DRAM latency dominates.
	r := h.Access(l1, 0, lines, false)
	if r.L1Misses != 1 || r.L2Misses != 1 {
		t.Fatalf("cold access misses = %d/%d, want 1/1", r.L1Misses, r.L2Misses)
	}
	if r.ReadyAt < 400 {
		t.Errorf("cold load ready at %d, want >= DRAM latency 400", r.ReadyAt)
	}

	// Warm L1: hit latency.
	r = h.Access(l1, 1000, lines, false)
	if r.L1Misses != 0 || r.ReadyAt != 1000+h.Lat.L1Hit {
		t.Errorf("L1 hit ready at %d, want %d", r.ReadyAt, 1000+h.Lat.L1Hit)
	}

	// L2 hit: evictions aside, a fresh L1 but warm L2.
	l1b := MustNewCache(48<<10, 8)
	r = h.Access(l1b, 2000, lines, false)
	if r.L1Misses != 1 || r.L2Misses != 0 {
		t.Fatalf("expected L1 miss + L2 hit, got %d/%d", r.L1Misses, r.L2Misses)
	}
	if want := 2000 + h.Lat.L1Hit + h.Lat.L2Hit; r.ReadyAt != want {
		t.Errorf("L2 hit ready at %d, want %d", r.ReadyAt, want)
	}
}

func TestHierarchyStoresDontBlock(t *testing.T) {
	h := NewHierarchy(2<<20, 8, 400, 313, DefaultLatencies())
	l1 := MustNewCache(48<<10, 8)
	r := h.Access(l1, 123, []uint64{1 << 20}, true)
	if r.ReadyAt != 123 {
		t.Errorf("store ReadyAt = %d, want issue cycle 123", r.ReadyAt)
	}
	if h.DRAM.Bytes(TrafficDemand) != LineBytes {
		t.Errorf("store should have generated one line of demand traffic")
	}
}

func TestHierarchyTransfer(t *testing.T) {
	h := NewHierarchy(2<<20, 8, 400, 256, DefaultLatencies())
	done := h.Transfer(0, 4096, TrafficContext)
	if done < 400+16 {
		t.Errorf("4KB transfer completes at %d, want >= 416", done)
	}
	if h.Transfer(5, 0, TrafficContext) != 5 {
		t.Error("zero-byte transfer should be free")
	}
	if h.DRAM.Bytes(TrafficContext) != 4096 {
		t.Errorf("context bytes = %d, want 4096", h.DRAM.Bytes(TrafficContext))
	}
}

// TestDRAMSubCycleRounding is the regression test for the truncation bug:
// completion cycles must round up (a transfer occupying any fraction of a
// cycle is not done until that cycle ends), while the channel backlog
// keeps exact fractional time so back-to-back accounting stays precise.
func TestDRAMSubCycleRounding(t *testing.T) {
	d := &DRAM{LatencyCycles: 0, BytesPerCycle: 313}
	// 128 B at 313 B/cycle = 0.409 cycles of service: truncation returned
	// 100 — completing before any channel time elapsed.
	if got := d.Access(100, 128, TrafficDemand); got != 101 {
		t.Errorf("first sub-cycle access completes at %d, want 101", got)
	}
	// Backlog is fractional: the second transfer ends at 100.818, still
	// within cycle 101 — the rounding must not double-charge.
	if got := d.Access(100, 128, TrafficDemand); got != 101 {
		t.Errorf("second sub-cycle access completes at %d, want 101", got)
	}
	// The third crosses into cycle 102 (ends at 101.227).
	if got := d.Access(100, 128, TrafficDemand); got != 102 {
		t.Errorf("third sub-cycle access completes at %d, want 102", got)
	}

	// Exact whole-cycle service must not be rounded further.
	d2 := &DRAM{LatencyCycles: 0, BytesPerCycle: 313}
	if got := d2.Access(100, 313, TrafficDemand); got != 101 {
		t.Errorf("whole-cycle access completes at %d, want 101", got)
	}
}

// TestCacheProbeAndVersion pins the two primitives L2 speculation is
// built on: Probe reads residency without mutating anything, and the
// version counter moves on fills (and Reset) but never on hits.
func TestCacheProbeAndVersion(t *testing.T) {
	c := MustNewCache(4*LineBytes, 1)
	v0 := c.Version()
	if c.Probe(0) {
		t.Fatal("Probe hit on an empty cache")
	}
	if c.Accesses != 0 || c.Hits != 0 || c.Misses != 0 || c.Version() != v0 {
		t.Fatal("Probe mutated cache state")
	}
	c.Access(0)
	if c.Version() == v0 {
		t.Fatal("miss fill did not bump the version")
	}
	if !c.Probe(0) {
		t.Fatal("Probe missed a resident line")
	}
	v1 := c.Version()
	c.Access(0) // hit: LRU only
	if c.Version() != v1 {
		t.Fatal("hit bumped the version (would cause spurious replays)")
	}
	c.Reset()
	if c.Version() == v1 {
		t.Fatal("Reset did not bump the version")
	}
	if c.Probe(0) {
		t.Fatal("Probe hit after Reset")
	}
}

// TestHierarchySpeculation drives the deferred-L2-read protocol directly:
// an eligible access buffers instead of synchronizing, a quiet commit
// validates and applies, and a conflicting fill between issue and commit
// forces a replay that corrects the patched ready time.
func TestHierarchySpeculation(t *testing.T) {
	h := NewHierarchy(2<<20, 8, 400, 313, DefaultLatencies())
	g := par.NewGate()
	g.Size(1)
	v := h.ShardView(g, 0)
	v.SetSpeculation(true)
	lines := []uint64{0}

	// Prefill the L2 through the synchronized path (gate unarmed:
	// speculation is ineligible, slow path runs).
	if res := v.Access(MustNewCache(48<<10, 8), 0, lines, false); res.Speculative {
		t.Fatal("access speculated with the gate unarmed")
	}

	// Validated commit: speculate inside an armed step, nothing conflicts.
	g.Arm()
	g.Visit(0, 0)
	res := v.Access(MustNewCache(48<<10, 8), 100, lines, false)
	if !res.Speculative || res.L1Misses != 1 || res.L2Misses != 0 {
		t.Fatalf("eligible access did not speculate: %+v", res)
	}
	want := 100 + h.Lat.L1Hit + h.Lat.L2Hit
	if res.ReadyAt != want {
		t.Fatalf("provisional ReadyAt %d, want all-L2-hit %d", res.ReadyAt, want)
	}
	if _, _, _, p := v.SpecLedger(); p != 1 {
		t.Fatalf("pending %d after speculative access, want 1", p)
	}
	ready := res.ReadyAt
	v.SpecPatch(&ready)
	accBefore := h.L2.Accesses
	v.CommitSpeculation()
	g.Finish(0)
	g.Disarm()
	if r, val, rp, p := v.SpecLedger(); r != 1 || val != 1 || rp != 0 || p != 0 {
		t.Fatalf("ledger after validated commit = %d/%d/%d/%d, want 1/1/0/0", r, val, rp, p)
	}
	if h.L2.Accesses != accBefore+1 {
		t.Fatalf("validated commit applied %d L2 accesses, want 1", h.L2.Accesses-accBefore)
	}
	if ready != want {
		t.Fatalf("validated commit changed ready time to %d", ready)
	}

	// Replayed commit: speculate, then evict the probed line (8 fills in
	// its set, bumping the version) before the commit — the replay must
	// take the DRAM path and push the patched ready time past provisional.
	g.Arm()
	g.Visit(0, 0)
	res = v.Access(MustNewCache(48<<10, 8), 200, lines, false)
	if !res.Speculative {
		t.Fatalf("second speculation did not engage: %+v", res)
	}
	ready = res.ReadyAt
	v.SpecPatch(&ready)
	sets := uint64(h.L2.SizeBytes() / (8 * LineBytes))
	for k := uint64(1); k <= 8; k++ {
		h.L2.Access(k * sets * LineBytes) // same set as line 0
	}
	v.CommitSpeculation()
	g.Finish(0)
	g.Disarm()
	if r, val, rp, p := v.SpecLedger(); r != 2 || val != 1 || rp != 1 || p != 0 {
		t.Fatalf("ledger after replayed commit = %d/%d/%d/%d, want 2/1/1/0", r, val, rp, p)
	}
	if provisional := int64(200) + h.Lat.L1Hit + h.Lat.L2Hit; ready <= provisional {
		t.Fatalf("replay left ready at %d, want > provisional %d (DRAM path)", ready, provisional)
	}
}
