package mem

import (
	"finereg/internal/isa"
	"finereg/internal/par"
	"finereg/internal/telemetry"
)

// Telemetry (internal/telemetry): shared-memory-system pressure. L2
// counts are batched per warp access (one add covering all of the
// access's missing lines) so the hot path pays at most two atomic adds
// per memory instruction and none when the L1 absorbs it.
var (
	telL2Accesses = telemetry.NewCounter("mem_l2_accesses")
	telL2Misses   = telemetry.NewCounter("mem_l2_misses")
)

// Latencies groups the fixed on-chip access latencies (cycles).
type Latencies struct {
	L1Hit int64
	L2Hit int64 // added on top of L1 latency when L1 misses
}

// DefaultLatencies mirrors common GTX 980-class measurements.
func DefaultLatencies() Latencies { return Latencies{L1Hit: 28, L2Hit: 160} }

// Hierarchy is the shared part of the memory system: one L2 and one DRAM
// channel serving all SMs. Per-SM L1 caches are owned by the SMs and passed
// into Access.
//
// Shard-boundary contract (sharded runs, internal/gpu): the L2 and DRAM
// are mutable shared state, so under a parallel event step every access
// to them must happen in canonical SM order. A per-SM view built with
// ShardView enforces that on the paths the hierarchy itself owns — the
// post-L1 portion of Access and the Transfer entry points — by waiting on
// the owner SM's ordering gate before the first shared touch (L1 probes
// are per-SM and stay ungated). Direct reads of h.L2 / h.DRAM from
// policy code are legal only inside an SM's gated hook windows (see the
// sm.Policy contract); run-level consumers (metric collection, the
// auditor) read them between steps, when no shard is running.
type Hierarchy struct {
	L2   *Cache
	DRAM *DRAM
	Lat  Latencies

	// gate/owner bind a ShardView to its SM's slot in the canonical
	// order; nil gate (the base hierarchy, serial runs) disables ordering.
	gate  *par.Gate
	owner int
	// ops is the owning run's telemetry scope (nil when the run is
	// unobserved); shared by every view of one hierarchy.
	ops *telemetry.Scope
}

// ShardView returns a shallow copy of h bound to owner's slot in gate's
// canonical order. Views share the L2, DRAM, and telemetry scope with the
// base hierarchy; only the ordering identity differs. The run loop gives
// each SM (and its policy) a view so hierarchy traffic self-serializes
// under parallel steps.
func (h *Hierarchy) ShardView(gate *par.Gate, owner int) *Hierarchy {
	v := *h
	v.gate, v.owner = gate, owner
	return &v
}

// SetOps attaches the run's telemetry scope. Call on the base hierarchy
// before building ShardViews so every view shares it.
func (h *Hierarchy) SetOps(s *telemetry.Scope) {
	h.ops = s
	h.DRAM.ops = s
}

// Ops returns the attached telemetry scope (nil when unobserved).
// Policies use it to attribute their own counters to the run.
func (h *Hierarchy) Ops() *telemetry.Scope { return h.ops }

// sync blocks until this view's owner SM holds the canonical-order gate
// (no-op for the base hierarchy and outside parallel steps).
func (h *Hierarchy) sync() {
	if h.gate != nil {
		h.gate.Wait(h.owner)
	}
}

// NewHierarchy builds the shared L2 + DRAM.
func NewHierarchy(l2Bytes, l2Ways int, dramLatency int64, dramBytesPerCycle float64, lat Latencies) *Hierarchy {
	return &Hierarchy{
		L2:   MustNewCache(l2Bytes, l2Ways),
		DRAM: &DRAM{LatencyCycles: dramLatency, BytesPerCycle: dramBytesPerCycle},
		Lat:  lat,
	}
}

// AccessResult reports what one warp-level memory operation did.
type AccessResult struct {
	// ReadyAt is the cycle the last transaction's data returns (loads) or
	// now (stores — retired through a store buffer).
	ReadyAt int64
	// L1Miss and L2Miss count missing transactions.
	Transactions, L1Misses, L2Misses int
}

// Access performs one warp memory instruction against l1 (the issuing SM's
// L1) at cycle now, touching the given line addresses. Stores consume
// bandwidth but never block the warp.
func (h *Hierarchy) Access(l1 *Cache, now int64, lines []uint64, isStore bool) AccessResult {
	res := AccessResult{ReadyAt: now, Transactions: len(lines)}
	for _, addr := range lines {
		var done int64
		if l1.Access(addr) {
			done = now + h.Lat.L1Hit
		} else {
			if res.L1Misses == 0 {
				// First shared touch of this access: enter the canonical
				// order before the L2 sees the address. An all-L1-hit
				// access never synchronizes.
				h.sync()
			}
			res.L1Misses++
			if h.L2.Access(addr) {
				done = now + h.Lat.L1Hit + h.Lat.L2Hit
			} else {
				res.L2Misses++
				done = h.DRAM.Access(now+h.Lat.L1Hit+h.Lat.L2Hit, LineBytes, TrafficDemand)
			}
		}
		if !isStore && done > res.ReadyAt {
			res.ReadyAt = done
		}
	}
	if res.L1Misses > 0 {
		telL2Accesses.AddScoped(h.ops, int64(res.L1Misses))
		if res.L2Misses > 0 {
			telL2Misses.AddScoped(h.ops, int64(res.L2Misses))
		}
	}
	return res
}

// Transfer moves raw bytes to/from DRAM on behalf of a policy (context
// switching, bit-vector fetches) and returns the completion cycle.
func (h *Hierarchy) Transfer(now int64, bytes int, class TrafficClass) int64 {
	if bytes <= 0 {
		return now
	}
	h.sync()
	return h.DRAM.Access(now, bytes, class)
}

// TransferOverlapped moves raw bytes to/from DRAM like Transfer but
// models a DMA engine that overlaps the access latency with execution:
// the returned completion accounts for channel occupancy (queue + service)
// only. Used for Zorua-style context paging, whose cost the paper
// attributes to bandwidth rather than serialized latency.
func (h *Hierarchy) TransferOverlapped(now int64, bytes int, class TrafficClass) int64 {
	if bytes <= 0 {
		return now
	}
	h.sync()
	return h.DRAM.Access(now, bytes, class) - h.DRAM.LatencyCycles
}

// Coalesce converts one warp-level access descriptor into the 128-byte
// line addresses its 32 lanes touch, deterministically from the access
// stream index. Streams from different regions never alias (the region id
// selects a disjoint address space).
//
//	PatCoalesced  — 1 line, consecutive across the stream
//	PatBroadcast  — 1 line, fixed per region
//	PatStrided    — min(stride, 32) lines spread stride lines apart
//	PatRandom     — Stride hashed lines (default 8): scattered accesses
//	                after intra-warp coalescing merges colliding lanes
//
// streamIdx should be unique per (cta, warp, loop iteration) so a stream
// walks its footprint; the footprint wraps addresses so cache behaviour
// reflects the kernel's working-set size.
func Coalesce(md isa.MemDesc, streamIdx uint64, buf []uint64) []uint64 {
	base := uint64(md.Region) << 40
	foot := uint64(md.Footprint)
	if foot < LineBytes {
		foot = LineBytes
	}
	wrap := func(off uint64) uint64 { return base + off%foot }
	buf = buf[:0]
	switch md.Pattern {
	case isa.PatBroadcast:
		buf = append(buf, wrap(0))
	case isa.PatStrided:
		stride := md.Stride
		if stride < 1 {
			stride = 1
		}
		if stride > 32 {
			stride = 32
		}
		span := uint64(stride) * LineBytes
		start := streamIdx * span
		for i := 0; i < stride; i++ {
			buf = append(buf, wrap(start+uint64(i)*LineBytes))
		}
	case isa.PatRandom:
		n := md.Stride
		if n < 1 || n > 32 {
			n = 8
		}
		for i := 0; i < n; i++ {
			h := hash64(streamIdx*uint64(n) + uint64(i))
			buf = append(buf, wrap((h%(foot/LineBytes))*LineBytes))
		}
	default: // PatCoalesced
		buf = append(buf, wrap(streamIdx*LineBytes))
	}
	return buf
}

// hash64 is SplitMix64, a fast deterministic scrambler.
func hash64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
