package mem

import (
	"finereg/internal/isa"
	"finereg/internal/par"
	"finereg/internal/telemetry"
)

// Telemetry (internal/telemetry): shared-memory-system pressure. L2
// counts are batched per warp access (one add covering all of the
// access's missing lines) so the hot path pays at most two atomic adds
// per memory instruction and none when the L1 absorbs it.
var (
	telL2Accesses = telemetry.NewCounter("mem_l2_accesses")
	telL2Misses   = telemetry.NewCounter("mem_l2_misses")
)

// Speculation counters are global-only (never scoped): like the par_gate_*
// counters they measure host-side synchronization cost, which differs
// between serial and sharded executions of the same job and so must not
// leak into per-run Ops deltas.
var (
	telSpecReads   = telemetry.NewCounter("par_spec_reads")
	telSpecReplays = telemetry.NewCounter("par_spec_replays")
)

// Latencies groups the fixed on-chip access latencies (cycles).
type Latencies struct {
	L1Hit int64
	L2Hit int64 // added on top of L1 latency when L1 misses
}

// DefaultLatencies mirrors common GTX 980-class measurements.
func DefaultLatencies() Latencies { return Latencies{L1Hit: 28, L2Hit: 160} }

// Hierarchy is the shared part of the memory system: one L2 and one DRAM
// channel serving all SMs. Per-SM L1 caches are owned by the SMs and passed
// into Access.
//
// Shard-boundary contract (sharded runs, internal/gpu): the L2 and DRAM
// are mutable shared state, so under a parallel event step every access
// to them must happen in canonical SM order. A per-SM view built with
// ShardView enforces that on the paths the hierarchy itself owns — the
// post-L1 portion of Access and the Transfer entry points — by waiting on
// the owner SM's ordering gate before the first shared touch (L1 probes
// are per-SM and stay ungated). Direct reads of h.L2 / h.DRAM from
// policy code are legal only inside an SM's gated hook windows (see the
// sm.Policy contract); run-level consumers (metric collection, the
// auditor) read them between steps, when no shard is running.
type Hierarchy struct {
	L2   *Cache
	DRAM *DRAM
	Lat  Latencies

	// gate/owner bind a ShardView to its SM's slot in the canonical
	// order; nil gate (the base hierarchy, serial runs) disables ordering.
	gate  *par.Gate
	owner int
	// ops is the owning run's telemetry scope (nil when the run is
	// unobserved); shared by every view of one hierarchy.
	ops *telemetry.Scope

	// missBuf collects an access's L1-missing lines so the shared-path
	// phase of Access runs after all (per-SM, ungated) L1 probes. Per
	// view: each SM's view grows its own buffer.
	missBuf []uint64
	// spec is this view's speculative-read state (nil until
	// SetSpeculation(true); per view, like missBuf). See specState.
	spec *specState
}

// specState buffers speculative L2 reads between their issue point and
// their canonical commit point. One per ShardView (per SM); only the
// owning SM's shard goroutine touches it, so all fields are plain.
//
// Protocol: an L1 miss whose lines all Probe-hit the L2 skips the gate
// Wait, snapshots the L2 version, and buffers a specEntry instead of
// touching shared state. The buffer drains at the view's next canonical
// commit point — the SM's next synchronized shared access (Sync), or the
// end of its Tick (CommitSpeculation from the shard runner) — which
// first waits on the gate, then per entry: if the L2 version still
// matches the snapshot, no fill happened anywhere since the probes, so
// the probes observed exactly the state a synchronized access would have
// seen and the entry applies through the real L2.Access (all lines hit
// by construction); otherwise the entry replays through the full
// synchronized L2/DRAM path with its original timestamps, and the
// recomputed ready time overwrites the issuing warp's scoreboard slot
// via the registered patch pointer — before any consumer can read it, so
// aborts are semantically invisible (DESIGN.md §15 carries the proof).
type specState struct {
	enabled bool
	entries []specEntry

	// Ledger for the audit invariant reads == validated + replayed
	// (checked between steps, when entries is empty).
	reads, validated, replayed int64
}

// specEntry is one deferred L2 access.
type specEntry struct {
	now   int64    // issue cycle
	ver   int64    // L2 version snapshot taken before the probes
	patch *int64   // scoreboard slot to overwrite on replay (nil: store / no dst)
	lines []uint64 // owned copy of the L1-missing lines
}

// ShardView returns a shallow copy of h bound to owner's slot in gate's
// canonical order. Views share the L2, DRAM, and telemetry scope with the
// base hierarchy; only the ordering identity differs. The run loop gives
// each SM (and its policy) a view so hierarchy traffic self-serializes
// under parallel steps.
func (h *Hierarchy) ShardView(gate *par.Gate, owner int) *Hierarchy {
	v := *h
	v.gate, v.owner = gate, owner
	return &v
}

// SetOps attaches the run's telemetry scope. Call on the base hierarchy
// before building ShardViews so every view shares it.
func (h *Hierarchy) SetOps(s *telemetry.Scope) {
	h.ops = s
	h.DRAM.ops = s
}

// Ops returns the attached telemetry scope (nil when unobserved).
// Policies use it to attribute their own counters to the run.
func (h *Hierarchy) Ops() *telemetry.Scope { return h.ops }

// sync blocks until this view's owner SM holds the canonical-order gate
// (no-op for the base hierarchy and outside parallel steps). It does NOT
// drain the speculation buffer — internal callers that have already
// committed use it directly; everyone else wants Sync.
func (h *Hierarchy) sync() {
	if h.gate != nil {
		h.gate.Wait(h.owner)
	}
}

// Sync enters the canonical shared-state order on behalf of the view's
// owner SM, first committing any buffered speculative reads (their
// canonical slot precedes whatever shared touch the caller is about to
// make). This is the entry point for SM/policy code about to read or
// mutate shared state outside the hierarchy's own methods.
func (h *Hierarchy) Sync() {
	h.commitSpec()
	h.sync()
}

// SetSpeculation enables or disables speculative L2 reads on this view
// and resets the per-run speculation ledger. The run loop calls it per
// SM view at run start: on for sharded, untraced runs; off otherwise
// (trace sinks would observe provisional ready times, and serial runs
// have no gate to defer). Must not be called with entries buffered
// (between runs, or before the first access).
func (h *Hierarchy) SetSpeculation(on bool) {
	if h.spec == nil {
		if !on {
			return
		}
		h.spec = &specState{}
	}
	if len(h.spec.entries) != 0 {
		panic("mem: SetSpeculation with speculative entries in flight")
	}
	h.spec.enabled = on
	h.spec.reads, h.spec.validated, h.spec.replayed = 0, 0, 0
}

// SpecPatch registers the scoreboard slot the most recent speculative
// access should overwrite if its commit replays. Call immediately after
// an Access that returned Speculative=true; a no-op otherwise.
func (h *Hierarchy) SpecPatch(p *int64) {
	sp := h.spec
	if sp == nil || len(sp.entries) == 0 {
		return
	}
	sp.entries[len(sp.entries)-1].patch = p
}

// CommitSpeculation drains the view's speculative-read buffer at its
// canonical commit point. The shard runner calls it at the end of each
// owned SM's Tick; a run with nothing buffered pays one nil/len check.
func (h *Hierarchy) CommitSpeculation() { h.commitSpec() }

// SpecLedger returns the view's per-run speculation ledger: speculative
// reads issued, commits validated, commits replayed, and entries still
// buffered. Outside a Tick (between steps, after a run) pending is
// always zero — the audit invariants check both facts.
func (h *Hierarchy) SpecLedger() (reads, validated, replayed, pending int64) {
	sp := h.spec
	if sp == nil {
		return 0, 0, 0, 0
	}
	return sp.reads, sp.validated, sp.replayed, int64(len(sp.entries))
}

// InjectSpecSkew corrupts the speculation ledger's read count by delta.
// Tests only: it exists so mutation tests can prove the auditor detects
// ledger drift.
func (h *Hierarchy) InjectSpecSkew(delta int64) {
	if h.spec == nil {
		h.spec = &specState{}
	}
	h.spec.reads += delta
}

// trySpeculate attempts to serve the L1-missing lines in h.missBuf
// without synchronizing: eligible only when speculation is on, a
// parallel step is in flight (armed gate — otherwise the deferred commit
// would have no canonical point inside this step), and every missing
// line lock-free-probes resident in the L2 (a DRAM access is never
// speculated: the channel's queue state has no version to validate).
// On success it buffers a specEntry and reports a provisional all-L2-hit
// ready time through res.
func (h *Hierarchy) trySpeculate(now int64, isStore bool, res *AccessResult) bool {
	sp := h.spec
	if sp == nil || !sp.enabled || h.gate == nil || !h.gate.Armed() {
		return false
	}
	ver := h.L2.Version()
	for _, addr := range h.missBuf {
		if !h.L2.Probe(addr) {
			return false
		}
	}
	n := len(sp.entries)
	if n < cap(sp.entries) {
		sp.entries = sp.entries[:n+1]
	} else {
		sp.entries = append(sp.entries, specEntry{})
	}
	e := &sp.entries[n]
	e.now, e.ver, e.patch = now, ver, nil
	e.lines = append(e.lines[:0], h.missBuf...)
	sp.reads++
	telSpecReads.Inc()
	if done := now + h.Lat.L1Hit + h.Lat.L2Hit; !isStore && done > res.ReadyAt {
		res.ReadyAt = done
	}
	res.Speculative = true
	return true
}

// commitSpec drains the speculation buffer: wait for the canonical slot,
// then validate or replay each entry in program order. See specState.
func (h *Hierarchy) commitSpec() {
	sp := h.spec
	if sp == nil || len(sp.entries) == 0 {
		return
	}
	h.sync()
	var acc, miss int64
	for i := range sp.entries {
		e := &sp.entries[i]
		acc += int64(len(e.lines))
		if h.L2.Version() == e.ver {
			// No fill anywhere between the probes and this commit: the
			// probed residency is the committed residency.
			for _, addr := range e.lines {
				if !h.L2.Access(addr) {
					panic("mem: speculative commit: validated line missed L2")
				}
			}
			sp.validated++
		} else {
			// Conflict: some fill (an earlier-ordered SM, or an earlier
			// replayed entry of this buffer) moved the L2 after the probes.
			// Replay through the synchronized path with the original
			// timestamps and patch the issuing warp's scoreboard before
			// anything can read the provisional value.
			var ready int64
			for _, addr := range e.lines {
				var done int64
				if h.L2.Access(addr) {
					done = e.now + h.Lat.L1Hit + h.Lat.L2Hit
				} else {
					miss++
					done = h.DRAM.Access(e.now+h.Lat.L1Hit+h.Lat.L2Hit, LineBytes, TrafficDemand)
				}
				if done > ready {
					ready = done
				}
			}
			if e.patch != nil {
				*e.patch = ready
			}
			sp.replayed++
			telSpecReplays.Inc()
		}
		e.patch = nil
	}
	sp.entries = sp.entries[:0]
	telL2Accesses.AddScoped(h.ops, acc)
	if miss > 0 {
		telL2Misses.AddScoped(h.ops, miss)
	}
}

// NewHierarchy builds the shared L2 + DRAM.
func NewHierarchy(l2Bytes, l2Ways int, dramLatency int64, dramBytesPerCycle float64, lat Latencies) *Hierarchy {
	return &Hierarchy{
		L2:   MustNewCache(l2Bytes, l2Ways),
		DRAM: &DRAM{LatencyCycles: dramLatency, BytesPerCycle: dramBytesPerCycle},
		Lat:  lat,
	}
}

// AccessResult reports what one warp-level memory operation did.
type AccessResult struct {
	// ReadyAt is the cycle the last transaction's data returns (loads) or
	// now (stores — retired through a store buffer).
	ReadyAt int64
	// L1Miss and L2Miss count missing transactions.
	Transactions, L1Misses, L2Misses int
	// Speculative marks a deferred L2 access: ReadyAt is the provisional
	// all-L2-hit time and L2Misses is provisionally zero. The issuer must
	// register its scoreboard slot with SpecPatch so a replayed commit can
	// correct ReadyAt before anyone reads it.
	Speculative bool
}

// Access performs one warp memory instruction against l1 (the issuing SM's
// L1) at cycle now, touching the given line addresses. Stores consume
// bandwidth but never block the warp.
//
// It runs in two phases. Phase one probes every line against the L1 —
// per-SM state, never gated; hoisting all L1 probes ahead of the shared
// path is outcome-identical to the interleaved order because L1 state
// depends only on its own probe sequence. Phase two serves the missing
// lines: speculatively (trySpeculate — no synchronization, deferred
// commit) when eligible, else through the canonical-order synchronized
// L2/DRAM path.
func (h *Hierarchy) Access(l1 *Cache, now int64, lines []uint64, isStore bool) AccessResult {
	res := AccessResult{ReadyAt: now, Transactions: len(lines)}
	h.missBuf = h.missBuf[:0]
	for _, addr := range lines {
		if l1.Access(addr) {
			if done := now + h.Lat.L1Hit; !isStore && done > res.ReadyAt {
				res.ReadyAt = done
			}
		} else {
			h.missBuf = append(h.missBuf, addr)
		}
	}
	if len(h.missBuf) == 0 {
		// An all-L1-hit access never synchronizes.
		return res
	}
	res.L1Misses = len(h.missBuf)
	if h.trySpeculate(now, isStore, &res) {
		return res
	}
	// Slow path: commit anything buffered (its canonical slot precedes
	// this access), enter the canonical order, touch the real L2/DRAM.
	h.Sync()
	for _, addr := range h.missBuf {
		var done int64
		if h.L2.Access(addr) {
			done = now + h.Lat.L1Hit + h.Lat.L2Hit
		} else {
			res.L2Misses++
			done = h.DRAM.Access(now+h.Lat.L1Hit+h.Lat.L2Hit, LineBytes, TrafficDemand)
		}
		if !isStore && done > res.ReadyAt {
			res.ReadyAt = done
		}
	}
	telL2Accesses.AddScoped(h.ops, int64(res.L1Misses))
	if res.L2Misses > 0 {
		telL2Misses.AddScoped(h.ops, int64(res.L2Misses))
	}
	return res
}

// Transfer moves raw bytes to/from DRAM on behalf of a policy (context
// switching, bit-vector fetches) and returns the completion cycle.
func (h *Hierarchy) Transfer(now int64, bytes int, class TrafficClass) int64 {
	if bytes <= 0 {
		return now
	}
	h.Sync()
	return h.DRAM.Access(now, bytes, class)
}

// TransferOverlapped moves raw bytes to/from DRAM like Transfer but
// models a DMA engine that overlaps the access latency with execution:
// the returned completion accounts for channel occupancy (queue + service)
// only. Used for Zorua-style context paging, whose cost the paper
// attributes to bandwidth rather than serialized latency.
func (h *Hierarchy) TransferOverlapped(now int64, bytes int, class TrafficClass) int64 {
	if bytes <= 0 {
		return now
	}
	h.Sync()
	return h.DRAM.Access(now, bytes, class) - h.DRAM.LatencyCycles
}

// Coalesce converts one warp-level access descriptor into the 128-byte
// line addresses its 32 lanes touch, deterministically from the access
// stream index. Streams from different regions never alias (the region id
// selects a disjoint address space).
//
//	PatCoalesced  — 1 line, consecutive across the stream
//	PatBroadcast  — 1 line, fixed per region
//	PatStrided    — min(stride, 32) lines spread stride lines apart
//	PatRandom     — Stride hashed lines (default 8): scattered accesses
//	                after intra-warp coalescing merges colliding lanes
//
// streamIdx should be unique per (cta, warp, loop iteration) so a stream
// walks its footprint; the footprint wraps addresses so cache behaviour
// reflects the kernel's working-set size.
func Coalesce(md isa.MemDesc, streamIdx uint64, buf []uint64) []uint64 {
	base := uint64(md.Region) << 40
	foot := uint64(md.Footprint)
	if foot < LineBytes {
		foot = LineBytes
	}
	wrap := func(off uint64) uint64 { return base + off%foot }
	buf = buf[:0]
	switch md.Pattern {
	case isa.PatBroadcast:
		buf = append(buf, wrap(0))
	case isa.PatStrided:
		stride := md.Stride
		if stride < 1 {
			stride = 1
		}
		if stride > 32 {
			stride = 32
		}
		span := uint64(stride) * LineBytes
		start := streamIdx * span
		for i := 0; i < stride; i++ {
			buf = append(buf, wrap(start+uint64(i)*LineBytes))
		}
	case isa.PatRandom:
		n := md.Stride
		if n < 1 || n > 32 {
			n = 8
		}
		for i := 0; i < n; i++ {
			h := hash64(streamIdx*uint64(n) + uint64(i))
			buf = append(buf, wrap((h%(foot/LineBytes))*LineBytes))
		}
	default: // PatCoalesced
		buf = append(buf, wrap(streamIdx*LineBytes))
	}
	return buf
}

// hash64 is SplitMix64, a fast deterministic scrambler.
func hash64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
