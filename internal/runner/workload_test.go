package runner

import (
	"encoding/json"
	"errors"
	"testing"

	"finereg/internal/gpu"
	"finereg/internal/workload"
)

const testProgram = `.kernel demo
.regs 12
.warps 2
.grid 8
  MOV R0, #0
  MOV R1, #4
top:
  LDG R2, [R0] pattern=coalesced region=1 footprint=65536
  FFMA R3, R2, R2, R3
  IADD R0, R0, #1
  ISETP R4, R0, R1
  @R4 BRA top trip=4
  STG [R0], R3 region=15
  EXIT
`

func programJob(progs ...workload.Program) *Job {
	return &Job{
		Cfg:      gpu.Default().Scale(2),
		Policy:   Baseline(),
		Programs: progs,
	}
}

func TestProgramJobKeyChangesWithProgramText(t *testing.T) {
	j := programJob(workload.Program{Source: testProgram})
	k1 := j.Key(SimFingerprint)
	if k1 != programJob(workload.Program{Source: testProgram}).Key(SimFingerprint) {
		t.Fatal("program job key not stable")
	}
	// The key changes iff the program text (or launch geometry) changes.
	perturbed := map[string]*Job{
		"source": programJob(workload.Program{Source: testProgram + "; trailing comment\n"}),
		"grid":   programJob(workload.Program{Source: testProgram, Grid: 16}),
		"warps":  programJob(workload.Program{Source: testProgram, WarpsPerCTA: 4}),
		"second": programJob(workload.Program{Source: testProgram}, workload.Program{Bench: "CS"}),
	}
	for name, pj := range perturbed {
		if pj.Key(SimFingerprint) == k1 {
			t.Errorf("perturbing %s did not change the key", name)
		}
	}
	part := programJob(workload.Program{Source: testProgram}, workload.Program{Bench: "CS"})
	part.Cfg.Partitions = []int{1, 1}
	if part.Key(SimFingerprint) == perturbed["second"].Key(SimFingerprint) {
		t.Error("partitioning did not change the key")
	}

	// Legacy profile jobs must keep their pre-Programs keys: a nil and an
	// absent Programs slice encode identically (omitempty).
	legacy := tinyJob(t, "CS", Baseline())
	withNil := tinyJob(t, "CS", Baseline())
	withNil.Programs = []workload.Program{}
	if legacy.Key(SimFingerprint) != withNil.Key(SimFingerprint) {
		t.Error("empty Programs slice perturbs legacy job keys")
	}
}

// TestProgramJobMatchesInProcessRun pins the ingestion contract: a
// program executed through the engine (the serve/fleet path) yields
// metrics byte-identical to loading and running it in-process.
func TestProgramJobMatchesInProcessRun(t *testing.T) {
	j := programJob(workload.Program{Source: testProgram})
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	out := (&Engine{Jobs: 1}).Run([]*Job{j})
	if err := out.Err(); err != nil {
		t.Fatal(err)
	}

	k, err := (&workload.Program{Source: testProgram}).Load(j.limits())
	if err != nil {
		t.Fatal(err)
	}
	pf, err := j.Policy.Factory()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := gpu.New(j.Cfg, pf).Run(k)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(out.Results[0].Metrics)
	b, _ := json.Marshal(direct)
	if string(a) != string(b) {
		t.Errorf("engine metrics differ from in-process run:\nengine: %s\ndirect: %s", a, b)
	}
}

func TestStreamJobCarriesSegments(t *testing.T) {
	j := programJob(
		workload.Program{Source: testProgram},
		workload.Program{Bench: "CS", Grid: 8},
	)
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	out := (&Engine{Jobs: 1}).Run([]*Job{j})
	if err := out.Err(); err != nil {
		t.Fatal(err)
	}
	res := out.Results[0]
	if len(res.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(res.Segments))
	}
	if sum := res.Segments[0].Instructions + res.Segments[1].Instructions; res.Metrics.Instructions != sum {
		t.Errorf("rollup instructions %d != segment sum %d", res.Metrics.Instructions, sum)
	}
	clone := res.Clone()
	if len(clone.Segments) != 2 || clone.Segments[0] == res.Segments[0] {
		t.Error("Clone must deep-copy segments")
	}
}

func TestConcurrentJobRunsPartitioned(t *testing.T) {
	j := programJob(
		workload.Program{Bench: "LB", Grid: 8},
		workload.Program{Bench: "CS", Grid: 8},
	)
	j.Cfg = gpu.Default().Scale(4)
	j.Cfg.Partitions = []int{2, 2}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	out := (&Engine{Jobs: 1}).Run([]*Job{j})
	if err := out.Err(); err != nil {
		t.Fatal(err)
	}
	res := out.Results[0]
	if len(res.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(res.Segments))
	}
	if res.Segments[0].Instructions == 0 || res.Segments[1].Instructions == 0 {
		t.Error("partition segments missing instruction counts")
	}
}

func TestProgramJobValidation(t *testing.T) {
	bad := programJob(workload.Program{Source: "MOV R99, #1\nEXIT"})
	err := bad.Validate()
	var we *workload.Error
	if !errors.As(err, &we) {
		t.Fatalf("malformed source: want *workload.Error in chain, got %v", err)
	}
	if we.Line != 1 {
		t.Errorf("Line = %d, want 1", we.Line)
	}

	both := programJob(workload.Program{Source: testProgram})
	both.Profile = tinyJob(t, "CS", Baseline()).Profile
	if both.Validate() == nil {
		t.Error("programs + profile accepted")
	}

	partProfile := tinyJob(t, "CS", Baseline())
	partProfile.Cfg.Partitions = []int{1, 1}
	if partProfile.Validate() == nil {
		t.Error("partitioned profile job accepted")
	}

	mismatch := programJob(workload.Program{Source: testProgram})
	mismatch.Cfg.Partitions = []int{1, 1}
	if mismatch.Validate() == nil {
		t.Error("1 program for 2 partitions accepted")
	}

	badParts := programJob(workload.Program{Source: testProgram}, workload.Program{Bench: "CS"})
	badParts.Cfg.Partitions = []int{3, 3} // sums past the 2-SM machine
	if badParts.Validate() == nil {
		t.Error("oversubscribed partitions accepted")
	}

	multiStalls := programJob(workload.Program{Source: testProgram}, workload.Program{Bench: "CS"})
	multiStalls.Stalls = true
	if multiStalls.Validate() == nil {
		t.Error("multi-kernel stall attribution accepted")
	}
}
