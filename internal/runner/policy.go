package runner

import (
	"fmt"

	"finereg/internal/gpu"
)

// PolicySpec is a serializable description of a register-file management
// policy — the job-key-friendly counterpart of gpu.PolicyFactory (which,
// being a closure, can be neither hashed nor stored). The Kind plus the
// parameter fields fully determine behaviour for the built-in policies, so
// two jobs with equal specs are interchangeable and cache-equivalent.
type PolicySpec struct {
	// Kind selects the policy: "baseline", "vt", "regdram", "regmutex",
	// "finereg", "finereg-default", "finereg-full", or "custom:<name>".
	Kind string `json:"kind"`
	// DRAMCap is the Reg+DRAM per-SM off-chip pending-CTA cap.
	DRAMCap int `json:"dram_cap"`
	// SRPFrac is the RegMutex shared-register-pool fraction.
	SRPFrac float64 `json:"srp_frac"`
	// ACRFBytes/PCRFBytes split the register file for explicit FineReg
	// configurations (unused by "finereg-default", which halves whatever
	// the SM config provides).
	ACRFBytes int `json:"acrf_bytes"`
	PCRFBytes int `json:"pcrf_bytes"`

	// factory backs "custom:" specs only. It never reaches the job key or
	// the on-disk cache — the custom name stands in for it, so the name
	// MUST uniquely and stably identify the policy's behaviour (version it
	// if the behaviour changes).
	factory gpu.PolicyFactory
}

// Baseline is the conventional GPU (no CTA switching).
func Baseline() PolicySpec { return PolicySpec{Kind: "baseline"} }

// VirtualThread is the Virtual Thread configuration.
func VirtualThread() PolicySpec { return PolicySpec{Kind: "vt"} }

// RegDRAM is the Reg+DRAM (Zorua-like) configuration with the given
// per-SM off-chip pending-CTA cap.
func RegDRAM(cap int) PolicySpec { return PolicySpec{Kind: "regdram", DRAMCap: cap} }

// VTRegMutex is the VT+RegMutex configuration with srpFrac of the register
// file as the shared register pool.
func VTRegMutex(srpFrac float64) PolicySpec { return PolicySpec{Kind: "regmutex", SRPFrac: srpFrac} }

// FineReg is the paper's policy with an explicit ACRF/PCRF byte split.
func FineReg(acrfBytes, pcrfBytes int) PolicySpec {
	return PolicySpec{Kind: "finereg", ACRFBytes: acrfBytes, PCRFBytes: pcrfBytes}
}

// FineRegDefault splits the configured register file in half.
func FineRegDefault() PolicySpec { return PolicySpec{Kind: "finereg-default"} }

// FineRegFull is the ablation that stores full register sets in the PCRF
// instead of live-only sets.
func FineRegFull(acrfBytes, pcrfBytes int) PolicySpec {
	return PolicySpec{Kind: "finereg-full", ACRFBytes: acrfBytes, PCRFBytes: pcrfBytes}
}

// Custom wraps an arbitrary factory under a caller-chosen name. The name
// becomes part of the job key (and hence the cache identity), so it must
// uniquely identify the factory's behaviour across invocations.
func Custom(name string, pf gpu.PolicyFactory) PolicySpec {
	return PolicySpec{Kind: "custom:" + name, factory: pf}
}

// Name returns a short human label ("regmutex(srp=0.25)") for progress
// lines and error messages.
func (p PolicySpec) Name() string {
	switch p.Kind {
	case "regdram":
		return fmt.Sprintf("regdram(cap=%d)", p.DRAMCap)
	case "regmutex":
		return fmt.Sprintf("regmutex(srp=%.2f)", p.SRPFrac)
	case "finereg":
		return fmt.Sprintf("finereg(%dK/%dK)", p.ACRFBytes>>10, p.PCRFBytes>>10)
	case "finereg-full":
		return fmt.Sprintf("finereg-full(%dK/%dK)", p.ACRFBytes>>10, p.PCRFBytes>>10)
	}
	return p.Kind
}

// Factory resolves the spec to a gpu.PolicyFactory.
func (p PolicySpec) Factory() (gpu.PolicyFactory, error) {
	switch p.Kind {
	case "baseline":
		return gpu.Baseline(), nil
	case "vt":
		return gpu.VirtualThread(), nil
	case "regdram":
		return gpu.RegDRAM(p.DRAMCap), nil
	case "regmutex":
		return gpu.VTRegMutex(p.SRPFrac), nil
	case "finereg":
		return gpu.FineReg(p.ACRFBytes, p.PCRFBytes), nil
	case "finereg-default":
		return gpu.FineRegDefault(), nil
	case "finereg-full":
		return gpu.FineRegFull(p.ACRFBytes, p.PCRFBytes), nil
	}
	if p.factory != nil {
		return p.factory, nil
	}
	return nil, fmt.Errorf("runner: policy spec %q has no factory", p.Kind)
}
