package runner

import (
	"sync"
	"testing"

	"finereg/internal/trace"
)

// progressRecorder records every JobSink callback it receives.
type progressRecorder struct {
	mu      sync.Mutex
	samples []trace.ProgressSample
	ids     []int
	labels  []string
	done    int
}

func (r *progressRecorder) BatchStart(int)       {}
func (r *progressRecorder) JobStart(int, string) {}
func (r *progressRecorder) BatchEnd()            {}
func (r *progressRecorder) JobDone(int, string, bool, error) {
	r.mu.Lock()
	r.done++
	r.mu.Unlock()
}
func (r *progressRecorder) JobProgress(id int, label string, s trace.ProgressSample) {
	r.mu.Lock()
	r.samples = append(r.samples, s)
	r.ids = append(r.ids, id)
	r.labels = append(r.labels, label)
	r.mu.Unlock()
}

func TestProgressExcludedFromKey(t *testing.T) {
	plain := tinyJob(t, "CS", Baseline())
	sampled := tinyJob(t, "CS", Baseline())
	sampled.Cfg.Progress = func(trace.ProgressSample) {}
	sampled.Cfg.ProgressEvery = 64
	if plain.Key(SimFingerprint) != sampled.Key(SimFingerprint) {
		t.Fatal("Progress/ProgressEvery must not participate in the job key: sampled and unsampled runs share cache entries")
	}
}

func TestEngineForwardsProgressToSink(t *testing.T) {
	rec := &progressRecorder{}
	e := &Engine{Jobs: 1, Events: rec, ProgressEvery: 64}
	j := tinyJob(t, "CS", Baseline())
	j.Label = "cs-run"
	if err := e.Run([]*Job{j}).Err(); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.samples) == 0 {
		t.Fatal("no progress samples reached the sink")
	}
	last := rec.samples[len(rec.samples)-1]
	if !last.Final {
		t.Error("last forwarded sample must be Final")
	}
	for i, id := range rec.ids {
		if id != 0 || rec.labels[i] != "cs-run" {
			t.Fatalf("sample %d attributed to id=%d label=%q, want 0/%q", i, id, rec.labels[i], "cs-run")
		}
	}
}

func TestEngineProgressComposesUserCallback(t *testing.T) {
	var mu sync.Mutex
	var userSamples int
	rec := &progressRecorder{}
	e := &Engine{Jobs: 1, Events: rec}
	j := tinyJob(t, "CS", Baseline())
	j.Cfg.ProgressEvery = 64
	j.Cfg.Progress = func(trace.ProgressSample) {
		mu.Lock()
		userSamples++
		mu.Unlock()
	}
	if err := e.Run([]*Job{j}).Err(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if userSamples == 0 {
		t.Fatal("user callback starved")
	}
	if len(rec.samples) != userSamples {
		t.Fatalf("sink saw %d samples, user callback %d — both must see every sample", len(rec.samples), userSamples)
	}
}

// TestConcurrentJobsOpsAttribution pins the per-job telemetry scope: two
// different jobs held in flight simultaneously (a rendezvous at each
// job's first sample forces the overlap) must each report Ops deltas
// that sum to exactly their own run's totals. Before scoping, samples
// diffed the process-global registry, so each job's deltas absorbed the
// other's activity — under -race this also proves the scope plumbing is
// sound across engine workers.
func TestConcurrentJobsOpsAttribution(t *testing.T) {
	rec := &progressRecorder{}
	e := &Engine{Jobs: 2, Events: rec, ProgressEvery: 64}
	jobs := []*Job{tinyJob(t, "CS", FineRegDefault()), tinyJob(t, "LB", FineRegDefault())}

	// Rendezvous: neither job may proceed past its first sample until
	// both have sampled once, guaranteeing the runs overlap in time.
	var barrier sync.WaitGroup
	barrier.Add(len(jobs))
	for _, j := range jobs {
		var once sync.Once
		j.Cfg.ProgressEvery = 64
		j.Cfg.Progress = func(trace.ProgressSample) {
			once.Do(func() {
				barrier.Done()
				barrier.Wait()
			})
		}
	}

	res := e.Run(jobs)
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}

	// Sum each job's sampled deltas and check them against its own
	// metrics — exact equality, no tolerance: attribution is either
	// per-run or it is broken.
	sums := make([]map[string]int64, len(jobs))
	for i := range sums {
		sums[i] = map[string]int64{}
	}
	rec.mu.Lock()
	for i, s := range rec.samples {
		for k, v := range s.Ops {
			sums[rec.ids[i]][k] += v
		}
	}
	rec.mu.Unlock()
	for i, r := range res.Results {
		m := r.Metrics
		if got := sums[i]["gpu_instructions"]; got != m.Instructions {
			t.Errorf("job %d: sampled gpu_instructions sum to %d, metrics report %d — ops bled across jobs", i, got, m.Instructions)
		}
		if got := sums[i]["sm_cta_launches"]; got != m.CTAsLaunched {
			t.Errorf("job %d: sampled sm_cta_launches sum to %d, metrics report %d — ops bled across jobs", i, got, m.CTAsLaunched)
		}
		if got := sums[i]["gpu_cycles"]; got != m.Cycles {
			t.Errorf("job %d: sampled gpu_cycles sum to %d, metrics report %d — ops bled across jobs", i, got, m.Cycles)
		}
	}
}

func TestEngineNoEventsNoSampling(t *testing.T) {
	// ProgressEvery on the engine without an Events sink must not graft a
	// sampling callback onto the job.
	e := &Engine{Jobs: 1, ProgressEvery: 64}
	j := tinyJob(t, "CS", Baseline())
	got := e.withProgress(0, j)
	if got != j {
		t.Fatal("withProgress must return the job unchanged when there is no sink")
	}
}
