package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Cache is the content-addressed result store: an in-memory map always,
// plus an optional on-disk JSON layer when a directory is configured. Keys
// embed the simulator fingerprint (see Job.Key), and the disk layout nests
// entries under a fingerprint directory —
//
//	<dir>/<fingerprint>/<key[:2]>/<key>.json
//
// — so a fingerprint bump both changes every key and strands the old
// entries in a directory the cache prunes on first use. Corrupt or
// mismatched disk entries are treated as misses (the job just re-runs) and
// counted, never fatal.
//
// All methods are safe for concurrent use.
type Cache struct {
	// Fingerprint versions every key; defaults to SimFingerprint.
	// Override only in tests simulating a simulator change.
	Fingerprint string

	dir string // "" = memory only

	mu  sync.RWMutex
	mem map[string]*Result

	prune sync.Once

	memHits, diskHits, misses, corrupt atomic.Int64
}

// NewCache returns a cache backed by dir; dir == "" keeps results in
// memory only (they dedup within the process but not across invocations).
func NewCache(dir string) *Cache {
	return &Cache{Fingerprint: SimFingerprint, dir: dir, mem: map[string]*Result{}}
}

// CacheStats is a point-in-time snapshot of the hit/miss counters.
type CacheStats struct {
	MemHits, DiskHits, Misses, Corrupt int64
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		MemHits:  c.memHits.Load(),
		DiskHits: c.diskHits.Load(),
		Misses:   c.misses.Load(),
		Corrupt:  c.corrupt.Load(),
	}
}

// Get looks key up in memory, then on disk. The returned Result is the
// caller's own copy. source is "mem" or "disk" on a hit.
func (c *Cache) Get(key string) (r *Result, source string, ok bool) {
	c.mu.RLock()
	res := c.mem[key]
	c.mu.RUnlock()
	if res != nil {
		c.memHits.Add(1)
		return res.Clone(), "mem", true
	}
	if res := c.diskGet(key); res != nil {
		c.mu.Lock()
		c.mem[key] = res
		c.mu.Unlock()
		c.diskHits.Add(1)
		return res.Clone(), "disk", true
	}
	c.misses.Add(1)
	return nil, "", false
}

// Put stores a pristine copy of r under key in memory and, when
// configured, on disk. Disk failures are non-fatal: the entry simply will
// not persist across invocations.
func (c *Cache) Put(key string, r *Result) {
	pristine := r.Clone()
	c.mu.Lock()
	c.mem[key] = pristine
	c.mu.Unlock()
	c.diskPut(key, pristine)
}

// entry is the on-disk record. Key and Fingerprint are stored redundantly
// so a moved or hand-edited file self-identifies as stale.
type entry struct {
	Key         string  `json:"key"`
	Fingerprint string  `json:"fingerprint"`
	Result      *Result `json:"result"`
}

// path maps a key to its entry file, fanning out on the first key byte to
// keep directories small.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, c.Fingerprint, key[:2], key+".json")
}

// diskGet reads and validates one entry; any failure is a miss.
func (c *Cache) diskGet(key string) *Result {
	if c.dir == "" {
		return nil
	}
	c.pruneStale()
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil || e.Key != key ||
		e.Fingerprint != c.Fingerprint || e.Result == nil || e.Result.Metrics == nil {
		c.corrupt.Add(1)
		return nil
	}
	return e.Result
}

// diskPut writes one entry atomically (temp file + rename).
func (c *Cache) diskPut(key string, r *Result) {
	if c.dir == "" {
		return
	}
	c.pruneStale()
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return
	}
	b, err := json.MarshalIndent(entry{Key: key, Fingerprint: c.Fingerprint, Result: r}, "", "\t")
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
	}
}

// pruneStale removes sibling fingerprint directories once per process:
// entries written by an older (or newer) simulator version can never hit
// again, so they are reclaimed rather than accumulated.
func (c *Cache) pruneStale() {
	c.prune.Do(func() {
		ents, err := os.ReadDir(c.dir)
		if err != nil {
			return
		}
		for _, e := range ents {
			if e.IsDir() && e.Name() != c.Fingerprint {
				os.RemoveAll(filepath.Join(c.dir, e.Name()))
			}
		}
	})
}

// String summarizes the counters for log lines.
func (s CacheStats) String() string {
	return fmt.Sprintf("%d mem hits, %d disk hits, %d misses, %d corrupt",
		s.MemHits, s.DiskHits, s.Misses, s.Corrupt)
}
