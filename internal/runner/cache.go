package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// RemoteTier is an optional third cache level behind memory and disk: a
// shared, typically networked result store keyed by the same
// content-addressed job keys (internal/fleet layers it over HTTP against
// a coordinator node). Implementations must be safe for concurrent use
// and must treat every failure as a miss or a dropped write — the remote
// tier is an accelerator, never a correctness dependency.
type RemoteTier interface {
	// Get fetches the result for key, or ok == false on a miss (or any
	// transport failure).
	Get(key string) (r *Result, ok bool)
	// Put stores r under key, best effort. The callee must not retain or
	// mutate r after returning.
	Put(key string, r *Result)
}

// Cache is the content-addressed result store: an in-memory map always,
// an optional on-disk JSON layer when a directory is configured, and an
// optional remote tier behind both (Get fills mem and disk on a remote
// hit; Put writes through). Keys embed the simulator fingerprint (see
// Job.Key), and the disk layout nests entries under a fingerprint
// directory —
//
//	<dir>/<fingerprint>/<key[:2]>/<key>.json
//
// — so a fingerprint bump both changes every key and strands the old
// entries in a directory the cache prunes on first use. Corrupt or
// mismatched disk entries are treated as misses (the job just re-runs) and
// counted, never fatal.
//
// All methods are safe for concurrent use.
type Cache struct {
	// Fingerprint versions every key; defaults to SimFingerprint.
	// Override only in tests simulating a simulator change.
	Fingerprint string

	// Remote is the shared third tier (nil = none). Set before first use.
	Remote RemoteTier

	dir string // "" = memory only

	mu  sync.RWMutex
	mem map[string]*Result

	prune sync.Once

	memHits, diskHits, remoteHits, misses, corrupt atomic.Int64
}

// NewCache returns a cache backed by dir; dir == "" keeps results in
// memory only (they dedup within the process but not across invocations).
func NewCache(dir string) *Cache {
	return &Cache{Fingerprint: SimFingerprint, dir: dir, mem: map[string]*Result{}}
}

// CacheStats is a point-in-time snapshot of the hit/miss counters, with
// hits split by the tier that served them (mem, disk, or remote).
type CacheStats struct {
	MemHits, DiskHits, RemoteHits, Misses, Corrupt int64
}

// Hits is the total over all sources.
func (s CacheStats) Hits() int64 { return s.MemHits + s.DiskHits + s.RemoteHits }

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		MemHits:    c.memHits.Load(),
		DiskHits:   c.diskHits.Load(),
		RemoteHits: c.remoteHits.Load(),
		Misses:     c.misses.Load(),
		Corrupt:    c.corrupt.Load(),
	}
}

// Get looks key up in memory, then on disk, then in the remote tier. A
// hit from an outer tier is pulled into the inner ones (a remote hit
// lands in memory and on disk), so repeated lookups stay local. The
// returned Result is the caller's own copy. source is "mem", "disk", or
// "remote" on a hit.
func (c *Cache) Get(key string) (r *Result, source string, ok bool) {
	c.mu.RLock()
	res := c.mem[key]
	c.mu.RUnlock()
	if res != nil {
		c.memHits.Add(1)
		return res.Clone(), "mem", true
	}
	if res := c.diskGet(key); res != nil {
		c.mu.Lock()
		c.mem[key] = res
		c.mu.Unlock()
		c.diskHits.Add(1)
		return res.Clone(), "disk", true
	}
	if c.Remote != nil {
		if res, ok := c.Remote.Get(key); ok && res != nil && res.Metrics != nil {
			pristine := res.Clone()
			c.mu.Lock()
			c.mem[key] = pristine
			c.mu.Unlock()
			c.diskPut(key, pristine)
			c.remoteHits.Add(1)
			return res, "remote", true
		}
	}
	c.misses.Add(1)
	return nil, "", false
}

// Put stores a pristine copy of r under key in memory, on disk when
// configured, and (write-through) in the remote tier when configured.
// Disk and remote failures are non-fatal: the entry simply will not
// persist across invocations or be visible to other nodes.
func (c *Cache) Put(key string, r *Result) {
	pristine := r.Clone()
	c.mu.Lock()
	c.mem[key] = pristine
	c.mu.Unlock()
	c.diskPut(key, pristine)
	if c.Remote != nil {
		c.Remote.Put(key, pristine.Clone())
	}
}

// entry is the on-disk record. Key and Fingerprint are stored redundantly
// so a moved or hand-edited file self-identifies as stale.
type entry struct {
	Key         string  `json:"key"`
	Fingerprint string  `json:"fingerprint"`
	Result      *Result `json:"result"`
}

// path maps a key to its entry file, fanning out on the first key byte to
// keep directories small.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, c.Fingerprint, key[:2], key+".json")
}

// diskGet reads and validates one entry; any failure is a miss.
func (c *Cache) diskGet(key string) *Result {
	if c.dir == "" {
		return nil
	}
	c.pruneStale()
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil || e.Key != key ||
		e.Fingerprint != c.Fingerprint || e.Result == nil || e.Result.Metrics == nil {
		c.corrupt.Add(1)
		return nil
	}
	return e.Result
}

// diskPut writes one entry atomically (temp file + rename).
func (c *Cache) diskPut(key string, r *Result) {
	if c.dir == "" {
		return
	}
	c.pruneStale()
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return
	}
	b, err := json.MarshalIndent(entry{Key: key, Fingerprint: c.Fingerprint, Result: r}, "", "\t")
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
	}
}

// pruneStale removes sibling fingerprint directories once per process:
// entries written by an older (or newer) simulator version can never hit
// again, so they are reclaimed rather than accumulated.
func (c *Cache) pruneStale() {
	c.prune.Do(func() {
		ents, err := os.ReadDir(c.dir)
		if err != nil {
			return
		}
		for _, e := range ents {
			if e.IsDir() && e.Name() != c.Fingerprint {
				os.RemoveAll(filepath.Join(c.dir, e.Name()))
			}
		}
	})
}

// String summarizes the counters for log lines.
func (s CacheStats) String() string {
	return fmt.Sprintf("%d mem hits, %d disk hits, %d remote hits, %d misses, %d corrupt",
		s.MemHits, s.DiskHits, s.RemoteHits, s.Misses, s.Corrupt)
}
