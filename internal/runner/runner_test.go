package runner

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"finereg/internal/gpu"
	"finereg/internal/kernels"
	"finereg/internal/mem"
	"finereg/internal/sm"
)

// tinyJob returns a small but real simulation job (2-SM machine, shrunken
// grid) so engine tests exercise the actual simulator.
func tinyJob(t *testing.T, bench string, pol PolicySpec) *Job {
	t.Helper()
	p, err := kernels.ProfileByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	return &Job{
		Cfg:     gpu.Default().Scale(2),
		Profile: p,
		Grid:    int(float64(p.GridCTAs)*0.1 + 0.5),
		Policy:  pol,
	}
}

func TestJobKeyStableAndSensitive(t *testing.T) {
	j := tinyJob(t, "CS", Baseline())
	k1 := j.Key(SimFingerprint)
	k2 := j.Key(SimFingerprint)
	if k1 != k2 {
		t.Fatalf("key not stable: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Fatalf("key %q is not a hex SHA-256", k1)
	}

	// Every key-bearing field must perturb the key; the label must not.
	perturbed := []*Job{
		tinyJob(t, "LB", Baseline()),
		tinyJob(t, "CS", VirtualThread()),
		tinyJob(t, "CS", RegDRAM(2)),
	}
	g := tinyJob(t, "CS", Baseline())
	g.Grid++
	perturbed = append(perturbed, g)
	c := tinyJob(t, "CS", Baseline())
	c.Cfg.SM.MaxCTAs++
	perturbed = append(perturbed, c)
	s := tinyJob(t, "CS", Baseline())
	s.Stalls = true
	perturbed = append(perturbed, s)
	r := tinyJob(t, "CS", Baseline())
	r.TrackReg = true
	perturbed = append(perturbed, r)
	for i, pj := range perturbed {
		if pj.Key(SimFingerprint) == k1 {
			t.Errorf("perturbation %d did not change the key", i)
		}
	}

	l := tinyJob(t, "CS", Baseline())
	l.Label = "renamed"
	if l.Key(SimFingerprint) != k1 {
		t.Error("label must not participate in the key")
	}
	if j.Key("other-fingerprint") == k1 {
		t.Error("fingerprint must participate in the key")
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	mk := func() []*Job {
		var jobs []*Job
		for _, b := range []string{"CS", "LB"} {
			for _, pol := range []PolicySpec{Baseline(), VirtualThread(), FineRegDefault()} {
				jobs = append(jobs, tinyJob(t, b, pol))
			}
		}
		return jobs
	}
	serial := (&Engine{Jobs: 1}).Run(mk())
	wide := (&Engine{Jobs: 8}).Run(mk())
	if err := serial.Err(); err != nil {
		t.Fatal(err)
	}
	if err := wide.Err(); err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(serial.Results)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(wide.Results)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("results differ between -jobs 1 and -jobs 8")
	}
}

func TestInflightDedup(t *testing.T) {
	e := &Engine{Jobs: 4}
	jobs := []*Job{
		tinyJob(t, "CS", Baseline()),
		tinyJob(t, "CS", Baseline()),
		tinyJob(t, "CS", Baseline()),
	}
	b := e.Run(jobs)
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if b.Stats.Executed+b.Stats.Deduped != 3 || b.Stats.Executed != 1 {
		t.Fatalf("want 1 executed + 2 deduped, got %+v", b.Stats)
	}
	// Each consumer owns an independent clone.
	b.Results[0].Metrics.Config = "mutated"
	if b.Results[1].Metrics.Config == "mutated" {
		t.Error("deduped results share memory")
	}
}

func TestCacheMemAndDiskHits(t *testing.T) {
	dir := t.TempDir()
	e := &Engine{Jobs: 1, Cache: NewCache(dir)}
	j := tinyJob(t, "CS", Baseline())
	if err := e.Run([]*Job{j}).Err(); err != nil {
		t.Fatal(err)
	}
	b2 := e.Run([]*Job{tinyJob(t, "CS", Baseline())})
	if b2.Stats.CacheHits != 1 || b2.Stats.DiskHits != 0 {
		t.Fatalf("second run: want 1 mem hit, got %+v", b2.Stats)
	}

	// A fresh cache over the same directory must hit disk.
	e2 := &Engine{Jobs: 1, Cache: NewCache(dir)}
	b3 := e2.Run([]*Job{tinyJob(t, "CS", Baseline())})
	if b3.Stats.CacheHits != 1 || b3.Stats.DiskHits != 1 {
		t.Fatalf("fresh process: want 1 disk hit, got %+v", b3.Stats)
	}
	// The cached result must round-trip exactly.
	a, _ := json.Marshal(e.Run([]*Job{tinyJob(t, "CS", Baseline())}).Results[0])
	b, _ := json.Marshal(b3.Results[0])
	if string(a) != string(b) {
		t.Error("disk round-trip altered the result")
	}
}

// mapTier is an in-process RemoteTier over a plain map, counting traffic.
type mapTier struct {
	mu         sync.Mutex
	m          map[string]*Result
	gets, puts int
}

func newMapTier() *mapTier { return &mapTier{m: map[string]*Result{}} }

func (mt *mapTier) Get(key string) (*Result, bool) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.gets++
	r, ok := mt.m[key]
	return r.Clone(), ok
}

func (mt *mapTier) Put(key string, r *Result) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.puts++
	mt.m[key] = r
}

// TestCacheRemoteTier: the remote tier is consulted after mem and disk
// miss, a remote hit back-fills the local tiers, fresh results write
// through, and the hit-source counters attribute each tier exactly.
func TestCacheRemoteTier(t *testing.T) {
	tier := newMapTier()
	j := tinyJob(t, "CS", Baseline())
	key := j.Key(SimFingerprint)

	// Node A simulates fresh and writes through to the remote tier.
	cA := NewCache(t.TempDir())
	cA.Remote = tier
	eA := &Engine{Jobs: 1, Cache: cA}
	if err := eA.Run([]*Job{j}).Err(); err != nil {
		t.Fatal(err)
	}
	if tier.puts != 1 {
		t.Fatalf("fresh result write-through: %d puts, want 1", tier.puts)
	}

	// Node B (cold local tiers) is served by the remote tier, not a
	// re-simulation, and the hit is attributed to source "remote".
	cB := NewCache(t.TempDir())
	cB.Remote = tier
	eB := &Engine{Jobs: 1, Cache: cB}
	b := eB.Run([]*Job{tinyJob(t, "CS", Baseline())})
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if b.Stats.Executed != 0 || b.Stats.CacheHits != 1 || b.Stats.RemoteHits != 1 {
		t.Fatalf("cold node not served remotely: %+v", b.Stats)
	}
	st := cB.Stats()
	if st.RemoteHits != 1 || st.MemHits != 0 || st.DiskHits != 0 {
		t.Fatalf("hit-source split %+v, want exactly one remote hit", st)
	}
	if st.Hits() != 1 {
		t.Fatalf("Hits() = %d, want 1", st.Hits())
	}

	// The remote hit back-filled mem and disk: repeats stay local.
	gets := tier.gets
	if _, src, ok := cB.Get(key); !ok || src != "mem" {
		t.Fatalf("post-backfill lookup src %q ok %v, want mem hit", src, ok)
	}
	c2 := NewCache(cB.dir)
	if _, src, ok := c2.Get(key); !ok || src != "disk" {
		t.Fatalf("fresh cache over backfilled dir: src %q ok %v, want disk hit", src, ok)
	}
	if tier.gets != gets {
		t.Error("local hits still consulted the remote tier")
	}

	// Byte identity across the remote round trip.
	a, _ := json.Marshal(eA.Run([]*Job{tinyJob(t, "CS", Baseline())}).Results[0])
	bb, _ := json.Marshal(b.Results[0])
	if string(a) != string(bb) {
		t.Error("remote round-trip altered the result")
	}
}

func TestCacheFingerprintInvalidationAndPrune(t *testing.T) {
	dir := t.TempDir()
	c1 := NewCache(dir)
	c1.Fingerprint = "sim-vOLD"
	e1 := &Engine{Jobs: 1, Cache: c1}
	if err := e1.Run([]*Job{tinyJob(t, "CS", Baseline())}).Err(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "sim-vOLD")); err != nil {
		t.Fatalf("old fingerprint dir missing: %v", err)
	}

	// A new fingerprint misses (keys differ) and prunes the stale dir.
	c2 := NewCache(dir)
	c2.Fingerprint = "sim-vNEW"
	e2 := &Engine{Jobs: 1, Cache: c2}
	b := e2.Run([]*Job{tinyJob(t, "CS", Baseline())})
	if b.Stats.CacheHits != 0 || b.Stats.Executed != 1 {
		t.Fatalf("fingerprint change must force re-simulation, got %+v", b.Stats)
	}
	if _, err := os.Stat(filepath.Join(dir, "sim-vOLD")); !os.IsNotExist(err) {
		t.Error("stale fingerprint directory was not pruned")
	}
}

func TestCacheCorruptEntryFallsBack(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(dir)
	e := &Engine{Jobs: 1, Cache: c}
	j := tinyJob(t, "CS", Baseline())
	if err := e.Run([]*Job{j}).Err(); err != nil {
		t.Fatal(err)
	}
	key := j.Key(SimFingerprint)
	p := filepath.Join(dir, SimFingerprint, key[:2], key+".json")
	if err := os.WriteFile(p, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Fresh cache: the corrupt entry must be a counted miss, then re-run.
	c2 := NewCache(dir)
	e2 := &Engine{Jobs: 1, Cache: c2}
	b := e2.Run([]*Job{tinyJob(t, "CS", Baseline())})
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if b.Stats.Executed != 1 {
		t.Fatalf("corrupt entry should force re-simulation, got %+v", b.Stats)
	}
	if st := c2.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt counter = %d, want 1", st.Corrupt)
	}

	// A wrong-key entry (e.g. a renamed file) is equally rejected.
	gb, _ := json.Marshal(entry{Key: "deadbeef", Fingerprint: SimFingerprint, Result: b.Results[0]})
	if err := os.WriteFile(p, gb, 0o644); err != nil {
		t.Fatal(err)
	}
	c3 := NewCache(dir)
	if _, _, ok := c3.Get(key); ok {
		t.Error("entry with mismatched key must not hit")
	}
	if st := c3.Stats(); st.Corrupt != 1 {
		t.Errorf("mismatched key should count as corrupt, got %+v", st)
	}
}

func TestPanicIsolation(t *testing.T) {
	boom := Custom("test/panic", func(cfg sm.Config, hier *mem.Hierarchy) sm.Policy {
		panic("kaboom")
	})
	jobs := []*Job{tinyJob(t, "CS", boom), tinyJob(t, "CS", Baseline())}
	b := (&Engine{Jobs: 2}).Run(jobs)
	if b.Errs[0] == nil || b.Results[0] != nil {
		t.Fatal("panicking job must fail")
	}
	var pe *PanicError
	if !errors.As(b.Errs[0], &pe) || pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("want PanicError with stack, got %v", b.Errs[0])
	}
	var je *JobError
	if !errors.As(b.Errs[0], &je) {
		t.Fatalf("failure must carry the job label, got %v", b.Errs[0])
	}
	if b.Errs[1] != nil || b.Results[1] == nil {
		t.Fatal("healthy job must survive a sibling panic")
	}
	if err := b.Err(); err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("batch error should surface the panic, got %v", err)
	}
}

func TestJobTimeout(t *testing.T) {
	p, err := kernels.ProfileByName("CS")
	if err != nil {
		t.Fatal(err)
	}
	// Full-scale CS takes far longer than a microsecond budget.
	j := &Job{Cfg: gpu.Default().Scale(16), Profile: p, Grid: p.GridCTAs, Policy: Baseline()}
	b := (&Engine{Jobs: 1, Timeout: time.Microsecond}).Run([]*Job{j})
	if b.Errs[0] == nil {
		t.Fatal("job should have timed out")
	}
	if !errors.Is(b.Errs[0], ErrJobTimeout) {
		t.Fatalf("want ErrJobTimeout, got %v", b.Errs[0])
	}
	if b.Stats.Failed != 1 {
		t.Fatalf("stats should count the failure: %+v", b.Stats)
	}
}

func TestStallsJobVerifiedBreakdown(t *testing.T) {
	j := tinyJob(t, "CS", FineRegDefault())
	j.Stalls = true
	b := (&Engine{Jobs: 1}).Run([]*Job{j})
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	s := b.Results[0].Metrics.Stalls
	if s == nil || s.WarpSlotCycles == 0 {
		t.Fatal("stalls job must attach a populated breakdown")
	}
}

func TestTrackRegJobCarriesWindows(t *testing.T) {
	j := tinyJob(t, "CS", Baseline())
	j.TrackReg = true
	b := (&Engine{Jobs: 1}).Run([]*Job{j})
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if len(b.Results[0].Windows) == 0 {
		t.Fatal("TrackReg job must carry register-usage windows")
	}
}

func TestEngineStatsAccumulate(t *testing.T) {
	e := &Engine{Jobs: 2, Cache: NewCache("")}
	if err := e.Run([]*Job{tinyJob(t, "CS", Baseline())}).Err(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run([]*Job{tinyJob(t, "CS", Baseline())}).Err(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Submitted != 2 || st.Executed != 1 || st.CacheHits != 1 {
		t.Fatalf("cumulative stats wrong: %+v", st)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(t.TempDir())
	j := tinyJob(t, "CS", Baseline())
	key := j.Key(SimFingerprint)
	res, err := execute(j, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Put(key, res)
			if r, _, ok := c.Get(key); ok {
				r.Metrics.Config = "scribble" // must not leak into the cache
			}
		}()
	}
	wg.Wait()
	r, _, ok := c.Get(key)
	if !ok || r.Metrics.Config == "scribble" {
		t.Fatal("cache returned a shared or corrupted result")
	}
}

func TestPolicySpecFactories(t *testing.T) {
	specs := []PolicySpec{
		Baseline(), VirtualThread(), RegDRAM(2), VTRegMutex(0.2),
		FineReg(128<<10, 128<<10), FineRegDefault(), FineRegFull(128<<10, 128<<10),
	}
	for _, s := range specs {
		if _, err := s.Factory(); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
	if _, err := (PolicySpec{Kind: "custom:orphan"}).Factory(); err == nil {
		t.Error("custom spec without factory must error (e.g. after a cache decode)")
	}
}
