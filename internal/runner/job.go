// Package runner is the simulation run engine: it turns every simulation
// into a schedulable Job with a deterministic content-addressed key,
// executes job sets on a worker pool, dedups repeated points through an
// in-memory + on-disk result cache, and isolates faults (panics, wall-clock
// timeouts) to the job that caused them. Results come back in submission
// order, so a batch at -jobs N renders byte-identically to -jobs 1.
//
// The layering mirrors the rest of the repository: the simulator
// (internal/gpu and below) stays single-threaded and is never shared —
// each job builds a fresh kernel, GPU, and trace sink — while the engine
// owns all cross-goroutine state.
package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"finereg/internal/gpu"
	"finereg/internal/kernels"
	"finereg/internal/stats"
	"finereg/internal/trace"
	"finereg/internal/workload"
)

// SimFingerprint versions the simulator's observable semantics. It is part
// of every job key, so bumping it invalidates all cached results at once;
// bump it whenever a change to the timing model, kernel generation, or
// metric collection can alter any simulation outcome.
//
// v2: DRAM completion cycles round up instead of truncating, and the LRR
// scheduler became a true round-robin — both change timing everywhere.
//
// v3: the LRR rotation anchor survives mid-rotation CTA eviction (it was
// reset to slot 0 whenever the last-issued warp's CTA left the scheduler),
// and scheduler scans see a stable snapshot of the warp list (in-place
// compaction under an in-progress scan could skip ready warps). Both
// change timing on switch-heavy LRR runs. The event-driven run loop that
// landed alongside is timing-neutral — pinned byte-identical by
// audit/diff's golden matrix.
//
// v4: Metrics.RegDepletionStallCycles is now the sum across SMs instead
// of a truncating per-SM average (the division dropped up to NumSMs−1
// cycles). Timing is untouched — only this serialized metric changes —
// but cached results carry it, so the fingerprint moves. The sharded run
// loop (gpu.Config.Shards) that landed alongside is excluded from the
// key entirely: shard count changes wall-clock time, never results
// (pinned byte-identical by audit/diff's golden matrix at shards 1/2/4),
// so sharded and serial runs share cache entries.
const SimFingerprint = "finereg-sim-v4"

// Job is one schedulable simulation: a machine configuration, a workload
// (either a kernel profile + grid, or user-supplied Programs), a policy,
// and instrumentation flags. The zero-value fields all participate in the
// key, so two Jobs with equal exported fields are the same point.
type Job struct {
	Cfg     gpu.Config
	Profile kernels.Profile
	Grid    int
	Policy  PolicySpec
	// TrackReg enables the Figure 5 register-usage windows.
	TrackReg bool
	// Stalls attaches a stall-attribution aggregator; the result's
	// Metrics.Stalls carries the verified breakdown.
	Stalls bool

	// Programs, when non-empty, is the job's workload instead of
	// Profile/Grid: user .sasm source or bench references lowered through
	// internal/workload. One program on an unpartitioned machine is a
	// plain run; several programs run as an in-order stream; with
	// Cfg.Partitions set, exactly one program per partition runs
	// concurrently MPS-style. The program text is hashed into the job key,
	// so a job's cache identity changes iff its programs change.
	Programs []workload.Program

	// Label is a human-readable tag for progress lines and errors; it is
	// NOT part of the key.
	Label string
}

// label returns Label or a synthesized workload/policy tag.
func (j *Job) label() string {
	if j.Label != "" {
		return j.Label
	}
	if len(j.Programs) > 0 {
		names := make([]string, len(j.Programs))
		for i, p := range j.Programs {
			if p.Bench != "" {
				names[i] = p.Bench
			} else {
				names[i] = "user"
			}
		}
		return strings.Join(names, "+") + "/" + j.Policy.Name()
	}
	return j.Profile.Abbrev + "/" + j.Policy.Name()
}

// limits derives the occupancy-classification limits from the job's SM
// configuration (used to label user programs Type-S vs Type-R).
func (j *Job) limits() kernels.Limits {
	smc := &j.Cfg.SM
	return kernels.Limits{
		MaxCTAs:        smc.MaxCTAs,
		MaxWarps:       smc.MaxWarps,
		MaxThreads:     smc.MaxThreads,
		RegFileBytes:   smc.RegFileBytes,
		SharedMemBytes: smc.SharedMemBytes,
	}
}

// Key returns the content-addressed identity of the job: the hex SHA-256
// of the canonical JSON encoding of (fingerprint, config, profile, grid,
// policy, instrumentation). Go's encoding/json emits struct fields in
// declaration order, so the encoding — and therefore the key — is stable
// for a given simulator version.
func (j *Job) Key(fingerprint string) string {
	payload := struct {
		Fingerprint string             `json:"fingerprint"`
		Cfg         gpu.Config         `json:"cfg"`
		Profile     kernels.Profile    `json:"profile"`
		Grid        int                `json:"grid"`
		Policy      PolicySpec         `json:"policy"`
		TrackReg    bool               `json:"track_reg"`
		Stalls      bool               `json:"stalls"`
		Programs    []workload.Program `json:"programs,omitempty"`
	}{fingerprint, j.Cfg, j.Profile, j.Grid, j.Policy, j.TrackReg, j.Stalls, j.Programs}
	b, err := json.Marshal(payload)
	if err != nil {
		// All field types are plain values; failure here is a programming
		// error in the job definition, not a runtime condition.
		panic(fmt.Sprintf("runner: job key encoding: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Result is one job's outcome. Stall breakdowns ride inside
// Metrics.Stalls; energy is derived downstream (it is a pure function of
// the metrics and the machine size).
type Result struct {
	Metrics *stats.Metrics
	// Segments holds per-kernel metrics for multi-kernel jobs (streams and
	// partitioned concurrent runs) in submission order; Metrics is then
	// the combined rollup.
	Segments []*stats.Metrics `json:",omitempty"`
	// Windows holds the Figure 5 register-usage fractions when TrackReg
	// was set.
	Windows []float64 `json:",omitempty"`
}

// Clone returns an independent deep copy. Every consumer of a cached or
// deduplicated result receives its own clone, so relabeling Metrics.Config
// or attaching data never corrupts the cache or a sibling job.
func (r *Result) Clone() *Result {
	if r == nil {
		return nil
	}
	c := &Result{Metrics: r.Metrics.Clone()}
	for _, s := range r.Segments {
		c.Segments = append(c.Segments, s.Clone())
	}
	if r.Windows != nil {
		c.Windows = append([]float64(nil), r.Windows...)
	}
	return c
}

// execute runs the simulation for j from scratch: fresh kernel, fresh GPU,
// fresh per-job trace sink. It never touches engine state, so any number
// of executes may run concurrently. attach (optional) receives the GPU
// before the run starts so a watchdog can Stop it.
//
// The job's Cfg may carry a Progress callback (excluded from the key, so
// observed and unobserved runs share cache entries); the engine overrides
// it via executeIsolated to splice in JobProgress event forwarding.
func execute(j *Job, attach func(*gpu.GPU)) (*Result, error) {
	pf, err := j.Policy.Factory()
	if err != nil {
		return nil, err
	}
	cfg := j.Cfg
	cfg.SM.TrackRegUsage = j.TrackReg
	var ks []*kernels.Kernel
	if len(j.Programs) > 0 {
		ks, err = workload.LoadAll(j.Programs, j.limits())
	} else {
		var k *kernels.Kernel
		k, err = kernels.Build(j.Profile, j.Grid)
		ks = []*kernels.Kernel{k}
	}
	if err != nil {
		return nil, err
	}
	machine := gpu.New(cfg, pf)
	if attach != nil {
		attach(machine)
	}
	var agg *trace.StallAggregator
	if j.Stalls {
		agg = trace.NewStallAggregator()
		machine.SetTrace(agg)
	}
	res := &Result{}
	switch {
	case len(cfg.Partitions) > 0:
		mr, err := machine.RunConcurrent(ks...)
		if err != nil {
			return nil, err
		}
		res.Metrics, res.Segments = mr.Total, mr.Segments
	case len(ks) > 1:
		mr, err := machine.RunStream(ks...)
		if err != nil {
			return nil, err
		}
		res.Metrics, res.Segments = mr.Total, mr.Segments
	default:
		m, err := machine.Run(ks[0])
		if err != nil {
			return nil, err
		}
		res.Metrics = m
	}
	if agg != nil {
		bd := agg.Breakdown()
		if err := bd.Check(); err != nil {
			return nil, fmt.Errorf("stall accounting: %w", err)
		}
		res.Metrics.Stalls = bd
	}
	if j.TrackReg {
		res.Windows = machine.RegWindowFracs()
	}
	return res, nil
}
