package runner

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"finereg/internal/gpu"
	"finereg/internal/trace"
)

// Engine executes job batches on a worker pool. The zero value is usable:
// GOMAXPROCS workers, no cache, no timeout, no events. One Engine may run
// many batches (an experiments invocation issues one per figure); its
// cache and counters accumulate across them, which is what dedups repeated
// points between figures.
type Engine struct {
	// Jobs is the worker count; <= 0 means runtime.GOMAXPROCS(0).
	Jobs int
	// Cache dedups identical jobs within and across batches (nil = no
	// cache; duplicates within one batch still collapse via in-flight
	// tracking).
	Cache *Cache
	// Timeout is the per-job wall-clock budget for the simulation proper
	// (0 = none). A job that exceeds it is stopped cooperatively and
	// reported as ErrJobTimeout; the rest of the batch continues.
	Timeout time.Duration
	// Events receives job lifecycle notifications (nil = none). Calls are
	// serialized by the engine.
	Events trace.JobSink
	// ProgressEvery, when > 0, enables in-run progress sampling for every
	// executed job at this sim-cycle period: samples flow to Events as
	// JobProgress events (and to the job's own Cfg.Progress callback, if
	// set). 0 leaves sampling to each job's Cfg (a job with its own
	// Progress callback still samples, and its samples are still
	// forwarded to Events). Sampling never changes results — the period
	// and callback are excluded from job keys.
	ProgressEvery int64

	mu    sync.Mutex // guards Events calls and the cumulative counters
	total EngineStats

	// gmu guards the in-flight GPU registry (StopAll/InFlight introspection
	// for long-running front ends like internal/serve).
	gmu     sync.Mutex
	running map[*gpu.GPU]struct{}
}

// EngineStats accumulates scheduling counters across an Engine's batches.
type EngineStats struct {
	// Submitted counts jobs handed to Run; Executed counts fresh
	// simulations actually performed.
	Submitted, Executed int64
	// CacheHits counts results served by the cache (DiskHits of them came
	// from disk, RemoteHits from the remote tier); Deduped counts
	// duplicates that piggybacked on an identical in-flight job in the
	// same batch.
	CacheHits, DiskHits, RemoteHits, Deduped int64
	// Failed counts jobs that returned an error.
	Failed int64
}

// Stats snapshots the cumulative counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.total
}

// ErrJobTimeout marks a job stopped by the per-job wall-clock budget.
var ErrJobTimeout = errors.New("runner: job wall-clock timeout")

// track registers a job's GPU for the lifetime of its simulation.
func (e *Engine) track(g *gpu.GPU) {
	e.gmu.Lock()
	if e.running == nil {
		e.running = map[*gpu.GPU]struct{}{}
	}
	e.running[g] = struct{}{}
	e.gmu.Unlock()
}

func (e *Engine) untrack(g *gpu.GPU) {
	e.gmu.Lock()
	delete(e.running, g)
	e.gmu.Unlock()
}

// InFlight returns how many simulations are executing right now (cache
// hits and queued jobs do not count). Introspection for serving front
// ends; the value is a snapshot and may be stale by the time it is read.
func (e *Engine) InFlight() int {
	e.gmu.Lock()
	defer e.gmu.Unlock()
	return len(e.running)
}

// StopAll cooperatively stops every in-flight simulation via gpu.Stop and
// returns how many were signalled. Each stopped job fails with
// gpu.ErrInterrupted (not ErrJobTimeout) and the rest of its batch
// continues; jobs not yet started are unaffected. This is the graceful-
// shutdown hook: a server draining under a deadline bounds its wait by
// stopping whatever is still running.
func (e *Engine) StopAll() int {
	e.gmu.Lock()
	defer e.gmu.Unlock()
	for g := range e.running {
		g.Stop()
	}
	return len(e.running)
}

// PanicError is a panic inside a job converted to a typed error, carrying
// the recovered value and stack so the failure is diagnosable without
// taking down the batch.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (p *PanicError) Error() string { return fmt.Sprintf("job panicked: %v", p.Value) }

// JobError wraps a job failure with the job's label.
type JobError struct {
	Label string
	Err   error
}

// Error implements error.
func (e *JobError) Error() string { return e.Label + ": " + e.Err.Error() }

// Unwrap exposes the cause to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// Batch is the outcome of one Run: Results[i] and Errs[i] are job i's
// result and error, in submission order; exactly one of the two is
// non-nil per index. A batch with failures is a partial sweep — the
// successes are intact and Err aggregates the failures.
type Batch struct {
	Jobs    []*Job
	Results []*Result
	Errs    []error
	Stats   BatchStats
}

// BatchStats counts one Run's scheduling outcomes.
type BatchStats struct {
	Submitted, Executed, CacheHits, DiskHits, RemoteHits, Deduped, Failed int
	Wall                                                                  time.Duration
}

// Err returns nil when every job succeeded, otherwise an error wrapping
// the first failure and listing the rest (capped for readability).
func (b *Batch) Err() error {
	failed := b.Failed()
	if len(failed) == 0 {
		return nil
	}
	first := b.Errs[failed[0]]
	if len(failed) == 1 {
		return first
	}
	var rest []string
	for _, i := range failed[1:] {
		if len(rest) == 8 {
			rest = append(rest, fmt.Sprintf("... and %d more", len(failed)-1-len(rest)))
			break
		}
		rest = append(rest, b.Errs[i].Error())
	}
	return fmt.Errorf("%d/%d jobs failed: %w (also: %s)",
		len(failed), b.Stats.Submitted, first, strings.Join(rest, "; "))
}

// Failed returns the indices of failed jobs.
func (b *Batch) Failed() []int {
	var out []int
	for i, err := range b.Errs {
		if err != nil {
			out = append(out, i)
		}
	}
	return out
}

// flight tracks one in-progress key so duplicate submissions in the same
// batch wait for the leader instead of re-simulating.
type flight struct {
	done chan struct{}
	res  *Result // pristine; every taker clones
	err  error
}

// watchdog arms a Stop on the job's GPU when the timeout elapses. attach
// and fire may race (worker vs timer goroutine), hence the mutex.
type watchdog struct {
	mu      sync.Mutex
	g       *gpu.GPU
	expired bool
}

func (w *watchdog) attach(g *gpu.GPU) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.g = g
	if w.expired {
		g.Stop()
	}
}

func (w *watchdog) fire() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.expired = true
	if w.g != nil {
		w.g.Stop()
	}
}

// fired reports whether the timeout elapsed (vs. an external Stop).
func (w *watchdog) fired() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.expired
}

// Run executes jobs and returns their results in submission order.
func (e *Engine) Run(jobs []*Job) *Batch {
	start := time.Now()
	b := &Batch{
		Jobs:    jobs,
		Results: make([]*Result, len(jobs)),
		Errs:    make([]error, len(jobs)),
	}
	b.Stats.Submitted = len(jobs)
	e.emit(func(s trace.JobSink) { s.BatchStart(len(jobs)) })

	fingerprint := SimFingerprint
	if e.Cache != nil && e.Cache.Fingerprint != "" {
		fingerprint = e.Cache.Fingerprint
	}

	var (
		inflight = map[string]*flight{}
		fmu      sync.Mutex
		smu      sync.Mutex // batch stats
		wg       sync.WaitGroup
	)

	workers := e.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	idx := make(chan int)

	account := func(f func(*BatchStats)) {
		smu.Lock()
		f(&b.Stats)
		smu.Unlock()
	}

	worker := func() {
		defer wg.Done()
		for i := range idx {
			j := jobs[i]
			key := j.Key(fingerprint)

			fmu.Lock()
			f, dup := inflight[key]
			if !dup {
				f = &flight{done: make(chan struct{})}
				inflight[key] = f
			}
			fmu.Unlock()

			if dup {
				<-f.done
				b.Results[i], b.Errs[i] = f.res.Clone(), f.err
				account(func(s *BatchStats) {
					s.Deduped++
					if f.err != nil {
						s.Failed++
					}
				})
				e.emit(func(s trace.JobSink) { s.JobDone(i, j.label(), true, f.err) })
				continue
			}

			cached := false
			if e.Cache != nil {
				if res, src, ok := e.Cache.Get(key); ok {
					f.res, cached = res, true
					account(func(s *BatchStats) {
						s.CacheHits++
						switch src {
						case "disk":
							s.DiskHits++
						case "remote":
							s.RemoteHits++
						}
					})
				}
			}
			if !cached {
				e.emit(func(s trace.JobSink) { s.JobStart(i, j.label()) })
				f.res, f.err = e.executeIsolated(i, j)
				account(func(s *BatchStats) { s.Executed++ })
				if f.err != nil {
					f.err = &JobError{Label: j.label(), Err: f.err}
					account(func(s *BatchStats) { s.Failed++ })
				} else if e.Cache != nil {
					e.Cache.Put(key, f.res)
				}
			}
			close(f.done)
			b.Results[i], b.Errs[i] = f.res.Clone(), f.err
			e.emit(func(s trace.JobSink) { s.JobDone(i, j.label(), cached, f.err) })
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	b.Stats.Wall = time.Since(start)
	e.emit(func(s trace.JobSink) { s.BatchEnd() })

	e.mu.Lock()
	e.total.Submitted += int64(b.Stats.Submitted)
	e.total.Executed += int64(b.Stats.Executed)
	e.total.CacheHits += int64(b.Stats.CacheHits)
	e.total.DiskHits += int64(b.Stats.DiskHits)
	e.total.RemoteHits += int64(b.Stats.RemoteHits)
	e.total.Deduped += int64(b.Stats.Deduped)
	e.total.Failed += int64(b.Stats.Failed)
	e.mu.Unlock()
	return b
}

// executeIsolated runs one job with fault isolation: a panic anywhere in
// the simulation becomes a *PanicError, and the optional wall-clock
// timeout stops the GPU cooperatively (the simulator checks the flag once
// per event step, so the stop lands promptly without leaking goroutines).
// The job's GPU is registered with the engine for its lifetime so StopAll
// can reach it. i is the job's batch index, used to label JobProgress
// events.
func (e *Engine) executeIsolated(i int, j *Job) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	j = e.withProgress(i, j)
	var w *watchdog
	if e.Timeout > 0 {
		w = &watchdog{}
		timer := time.AfterFunc(e.Timeout, w.fire)
		defer timer.Stop()
	}
	var tracked *gpu.GPU
	defer func() {
		if tracked != nil {
			e.untrack(tracked)
		}
	}()
	attach := func(g *gpu.GPU) {
		tracked = g
		e.track(g)
		if w != nil {
			w.attach(g)
		}
	}
	res, err = execute(j, attach)
	// An interrupted run is a timeout only if our watchdog pulled the
	// trigger; otherwise the stop came from outside (StopAll during a
	// drain) and the ErrInterrupted cause is reported as-is.
	if errors.Is(err, gpu.ErrInterrupted) && w != nil && w.fired() {
		err = fmt.Errorf("%w (%s): %v", ErrJobTimeout, e.Timeout, err)
	}
	return res, err
}

// withProgress splices in-run sampling into job i: when the engine or the
// job itself enables progress, the executed copy's Cfg.Progress both
// invokes the job's own callback and forwards the sample to Events as a
// JobProgress event. Returns j unchanged when no sampling is wanted. The
// shallow copy keeps the caller's Job pristine — Progress never becomes
// part of the submitted job's identity or state.
func (e *Engine) withProgress(i int, j *Job) *Job {
	user := j.Cfg.Progress
	if e.Events == nil {
		// Nobody to forward to; the job's own callback (if any) already
		// rides Cfg into execute.
		return j
	}
	if user == nil && e.ProgressEvery <= 0 {
		return j
	}
	jc := *j
	if jc.Cfg.ProgressEvery <= 0 {
		jc.Cfg.ProgressEvery = e.ProgressEvery
	}
	label := j.label()
	jc.Cfg.Progress = func(sample trace.ProgressSample) {
		if user != nil {
			user(sample)
		}
		e.emit(func(s trace.JobSink) { s.JobProgress(i, label, sample) })
	}
	return &jc
}

// emit serializes an Events call; no-op when Events is nil.
func (e *Engine) emit(f func(trace.JobSink)) {
	if e.Events == nil {
		return
	}
	e.mu.Lock()
	f(e.Events)
	e.mu.Unlock()
}
