package runner

import (
	"fmt"

	"finereg/internal/mem"
)

// Validate checks that the job is well-formed enough to admit into a batch:
// the policy spec resolves to a factory, the kernel profile fits the
// configured SM, and the machine geometry is constructible. It exists for
// the serving layer (internal/serve), which accepts jobs from the network
// and must reject garbage with a 400 instead of burning a worker on a
// panic, but it is equally useful before submitting a long batch.
//
// Validation is deliberately cheap — no kernel is generated, no machine
// built — so it can run on every admission. A job that passes may still
// fail at run time (kernels.Build has deeper structural checks); a job
// that fails is guaranteed not to simulate.
func (j *Job) Validate() error {
	if _, err := j.Policy.Factory(); err != nil {
		return fmt.Errorf("runner: invalid job policy: %w", err)
	}
	p := &j.Profile
	if p.Abbrev == "" {
		return fmt.Errorf("runner: profile has no abbreviation")
	}
	if p.WarpsPerCTA < 1 {
		return fmt.Errorf("runner: profile %s: WarpsPerCTA %d < 1", p.Abbrev, p.WarpsPerCTA)
	}
	if p.Regs < 1 {
		return fmt.Errorf("runner: profile %s: Regs %d < 1", p.Abbrev, p.Regs)
	}
	if p.LoopTrips < 0 || p.StreamLoads < 0 || p.HotLoads < 0 ||
		p.ComputePerIter < 0 || p.SFUPerIter < 0 || p.ShmemPerIter < 0 {
		return fmt.Errorf("runner: profile %s: negative instruction-mix field", p.Abbrev)
	}
	if j.Grid < 1 {
		return fmt.Errorf("runner: grid %d < 1", j.Grid)
	}
	const maxGrid = 1 << 22
	if j.Grid > maxGrid {
		return fmt.Errorf("runner: grid %d exceeds the %d-CTA guard", j.Grid, maxGrid)
	}

	cfg := &j.Cfg
	if cfg.NumSMs < 1 || cfg.NumSMs > 4096 {
		return fmt.Errorf("runner: NumSMs %d outside [1, 4096]", cfg.NumSMs)
	}
	smc := &cfg.SM
	if smc.MaxCTAs < 1 || smc.MaxWarps < 1 || smc.MaxThreads < 1 || smc.NumSchedulers < 1 {
		return fmt.Errorf("runner: SM scheduling limits must be positive (CTAs=%d warps=%d threads=%d scheds=%d)",
			smc.MaxCTAs, smc.MaxWarps, smc.MaxThreads, smc.NumSchedulers)
	}
	if smc.MaxResidentCTAs < 1 {
		return fmt.Errorf("runner: MaxResidentCTAs %d < 1", smc.MaxResidentCTAs)
	}
	if smc.RegFileBytes < 1 || smc.SharedMemBytes < 0 {
		return fmt.Errorf("runner: SM memory sizes invalid (regfile=%d shared=%d)",
			smc.RegFileBytes, smc.SharedMemBytes)
	}
	// A single CTA of this kernel must be schedulable at all.
	if p.WarpsPerCTA > smc.MaxWarps {
		return fmt.Errorf("runner: profile %s needs %d warps/CTA, SM has %d slots",
			p.Abbrev, p.WarpsPerCTA, smc.MaxWarps)
	}
	if p.ThreadsPerCTA() > smc.MaxThreads {
		return fmt.Errorf("runner: profile %s needs %d threads/CTA, SM has %d",
			p.Abbrev, p.ThreadsPerCTA(), smc.MaxThreads)
	}
	if p.SharedMem > smc.SharedMemBytes {
		return fmt.Errorf("runner: profile %s needs %d B shared memory/CTA, SM has %d",
			p.Abbrev, p.SharedMem, smc.SharedMemBytes)
	}
	// Cache geometries must be constructible (sm.New panics otherwise).
	if _, err := mem.NewCache(smc.L1Bytes, smc.L1Ways); err != nil {
		return fmt.Errorf("runner: L1: %w", err)
	}
	if _, err := mem.NewCache(cfg.L2Bytes, cfg.L2Ways); err != nil {
		return fmt.Errorf("runner: L2: %w", err)
	}
	if cfg.DRAMBytesPerCycle <= 0 {
		return fmt.Errorf("runner: DRAMBytesPerCycle %v <= 0", cfg.DRAMBytesPerCycle)
	}
	if cfg.DRAMLatency < 0 || cfg.MaxCycles < 0 {
		return fmt.Errorf("runner: negative DRAM latency or cycle budget")
	}
	return nil
}
