package runner

import (
	"fmt"

	"finereg/internal/gpu"
	"finereg/internal/kernels"
	"finereg/internal/mem"
	"finereg/internal/workload"
)

// Validate checks that the job is well-formed enough to admit into a batch:
// the policy spec resolves to a factory, the kernel profile fits the
// configured SM, and the machine geometry is constructible. It exists for
// the serving layer (internal/serve), which accepts jobs from the network
// and must reject garbage with a 400 instead of burning a worker on a
// panic, but it is equally useful before submitting a long batch.
//
// Validation is deliberately cheap for profile jobs — no kernel is
// generated, no machine built — so it can run on every admission.
// Program jobs pay for a full assemble/validate/liveness pass (the point:
// malformed source must be rejected here, with the assembler's structured
// line/column error, never inside a worker), but never build a machine.
// A job that passes may still fail at run time; a job that fails is
// guaranteed not to simulate.
func (j *Job) Validate() error {
	if _, err := j.Policy.Factory(); err != nil {
		return fmt.Errorf("runner: invalid job policy: %w", err)
	}
	if len(j.Programs) > 0 {
		if err := j.validatePrograms(); err != nil {
			return err
		}
	} else {
		if len(j.Cfg.Partitions) > 0 {
			return fmt.Errorf("runner: a partitioned job must carry programs (one per partition), not a profile")
		}
		if err := j.validateProfile(); err != nil {
			return err
		}
	}
	return j.validateMachine()
}

// validatePrograms admits a Programs workload: every program must
// assemble and validate (so untrusted network input 400s at admission
// instead of panicking a worker), fit the configured SM, and — when the
// machine is partitioned — match the partition count one-to-one.
func (j *Job) validatePrograms() error {
	if j.Profile != (kernels.Profile{}) || j.Grid != 0 {
		return fmt.Errorf("runner: a job carries either programs or a profile/grid, not both")
	}
	if len(j.Programs) > 1 && (j.Stalls || j.TrackReg) {
		return fmt.Errorf("runner: stall attribution and register tracking apply to single-kernel jobs only")
	}
	if parts := j.Cfg.Partitions; len(parts) > 0 && len(j.Programs) != len(parts) {
		return fmt.Errorf("runner: %d programs for %d partitions (concurrent jobs need exactly one program per partition)", len(j.Programs), len(parts))
	}
	ks, err := workload.LoadAll(j.Programs, j.limits())
	if err != nil {
		// Keep the *workload.Error in the chain: the serving layer
		// extracts its field/line/column for structured 400 bodies.
		return fmt.Errorf("runner: %w", err)
	}
	smc := &j.Cfg.SM
	for i, k := range ks {
		p := &k.Profile
		if p.WarpsPerCTA > smc.MaxWarps {
			return fmt.Errorf("runner: program %d (%s) needs %d warps/CTA, SM has %d slots",
				i, p.Abbrev, p.WarpsPerCTA, smc.MaxWarps)
		}
		if p.ThreadsPerCTA() > smc.MaxThreads {
			return fmt.Errorf("runner: program %d (%s) needs %d threads/CTA, SM has %d",
				i, p.Abbrev, p.ThreadsPerCTA(), smc.MaxThreads)
		}
		if p.SharedMem > smc.SharedMemBytes {
			return fmt.Errorf("runner: program %d (%s) needs %d B shared memory/CTA, SM has %d",
				i, p.Abbrev, p.SharedMem, smc.SharedMemBytes)
		}
	}
	return nil
}

// validateProfile admits a classic profile/grid workload.
func (j *Job) validateProfile() error {
	p := &j.Profile
	if p.Abbrev == "" {
		return fmt.Errorf("runner: profile has no abbreviation")
	}
	if p.WarpsPerCTA < 1 {
		return fmt.Errorf("runner: profile %s: WarpsPerCTA %d < 1", p.Abbrev, p.WarpsPerCTA)
	}
	if p.Regs < 1 {
		return fmt.Errorf("runner: profile %s: Regs %d < 1", p.Abbrev, p.Regs)
	}
	if p.LoopTrips < 0 || p.StreamLoads < 0 || p.HotLoads < 0 ||
		p.ComputePerIter < 0 || p.SFUPerIter < 0 || p.ShmemPerIter < 0 {
		return fmt.Errorf("runner: profile %s: negative instruction-mix field", p.Abbrev)
	}
	if j.Grid < 1 {
		return fmt.Errorf("runner: grid %d < 1", j.Grid)
	}
	const maxGrid = 1 << 22
	if j.Grid > maxGrid {
		return fmt.Errorf("runner: grid %d exceeds the %d-CTA guard", j.Grid, maxGrid)
	}
	smc := &j.Cfg.SM
	// A single CTA of this kernel must be schedulable at all.
	if p.WarpsPerCTA > smc.MaxWarps {
		return fmt.Errorf("runner: profile %s needs %d warps/CTA, SM has %d slots",
			p.Abbrev, p.WarpsPerCTA, smc.MaxWarps)
	}
	if p.ThreadsPerCTA() > smc.MaxThreads {
		return fmt.Errorf("runner: profile %s needs %d threads/CTA, SM has %d",
			p.Abbrev, p.ThreadsPerCTA(), smc.MaxThreads)
	}
	if p.SharedMem > smc.SharedMemBytes {
		return fmt.Errorf("runner: profile %s needs %d B shared memory/CTA, SM has %d",
			p.Abbrev, p.SharedMem, smc.SharedMemBytes)
	}
	return nil
}

// validateMachine checks the machine geometry shared by both workload
// kinds.
func (j *Job) validateMachine() error {
	cfg := &j.Cfg
	if cfg.NumSMs < 1 || cfg.NumSMs > 4096 {
		return fmt.Errorf("runner: NumSMs %d outside [1, 4096]", cfg.NumSMs)
	}
	smc := &cfg.SM
	if smc.MaxCTAs < 1 || smc.MaxWarps < 1 || smc.MaxThreads < 1 || smc.NumSchedulers < 1 {
		return fmt.Errorf("runner: SM scheduling limits must be positive (CTAs=%d warps=%d threads=%d scheds=%d)",
			smc.MaxCTAs, smc.MaxWarps, smc.MaxThreads, smc.NumSchedulers)
	}
	if smc.MaxResidentCTAs < 1 {
		return fmt.Errorf("runner: MaxResidentCTAs %d < 1", smc.MaxResidentCTAs)
	}
	if smc.RegFileBytes < 1 || smc.SharedMemBytes < 0 {
		return fmt.Errorf("runner: SM memory sizes invalid (regfile=%d shared=%d)",
			smc.RegFileBytes, smc.SharedMemBytes)
	}
	// Partition specs must be well-formed before gpu.New sees them (New
	// panics on violation by contract — admission is the guard).
	if err := gpu.ValidatePartitions(cfg.NumSMs, cfg.Partitions); err != nil {
		return fmt.Errorf("runner: %w", err)
	}
	// Cache geometries must be constructible (sm.New panics otherwise).
	if _, err := mem.NewCache(smc.L1Bytes, smc.L1Ways); err != nil {
		return fmt.Errorf("runner: L1: %w", err)
	}
	if _, err := mem.NewCache(cfg.L2Bytes, cfg.L2Ways); err != nil {
		return fmt.Errorf("runner: L2: %w", err)
	}
	if cfg.DRAMBytesPerCycle <= 0 {
		return fmt.Errorf("runner: DRAMBytesPerCycle %v <= 0", cfg.DRAMBytesPerCycle)
	}
	if cfg.DRAMLatency < 0 || cfg.MaxCycles < 0 {
		return fmt.Errorf("runner: negative DRAM latency or cycle budget")
	}
	return nil
}
