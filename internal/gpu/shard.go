package gpu

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"finereg/internal/par"
	"finereg/internal/telemetry"
)

// telParRounds counts parallel event steps. Global-only (never scoped),
// like every par_* counter: rounds × NumSMs reconstructs the PR 8
// per-visit publication baseline, so finereg-bench can report the
// gate-sync reduction without re-running old code.
var telParRounds = telemetry.NewCounter("par_rounds")

// This file is the parallel half of the event core: a bounded pool of
// shard goroutines that Ticks due SMs concurrently inside one global
// event step, byte-identical to the serial loop at every shard count.
//
// Shard s statically owns the SMs with index ≡ s (mod shards) and visits
// them in ascending index order, publishing its progress through the
// gate's per-shard frontier. An SM's Tick runs concurrently with its
// peers' right up to its first shared-state access (L2/DRAM/dispatcher),
// where it blocks until every lower-indexed SM has finished — so the
// shared-state commit order is exactly the serial loop's, while the
// per-SM bulk of each Tick (scheduler scans, scoreboards, event heaps,
// L1 probes) overlaps freely. See internal/par for the protocol and the
// deadlock-freedom argument, DESIGN.md §15 for the full design.
//
// Everything at the step barrier — the auditor, progress sampling,
// termination, time advance — stays on the run goroutine, which also
// works shard 0 itself instead of idling at the barrier.

// minDueForParallel is the fewest due SMs worth a parallel round: below
// it the round's arm/publish/join synchronization costs more than the
// overlap wins, so Run Ticks those steps inline with the gate disarmed.
const minDueForParallel = 2

// effectiveShards resolves Config.Shards against the machine: at most
// one shard per SM. Traced runs shard too — Run swaps each SM's sink for
// a per-SM buffer that the step barrier drains in canonical SM order, so
// concurrent emission never reaches the user's sink (see installTraceBuffers).
func (g *GPU) effectiveShards() int {
	s := g.Cfg.Shards
	if s > len(g.SMs) {
		s = len(g.SMs)
	}
	if s <= 1 {
		return 1
	}
	return s
}

// shardSlot is one shard's per-round result, padded so slots on adjacent
// cache lines do not false-share.
type shardSlot struct {
	next     int64 // min wake time across the shard's SMs
	resident int64 // how many of the shard's SMs hold residents
	panicVal any
	stack    []byte
	_        [64]byte
}

// shardPool runs parallel event steps for one GPU. Workers idle on an
// epoch counter between rounds (spin → Gosched → microsleep backoff, see
// par.SpinUntil) so a round starts without scheduler latency when steps
// come hot, and close() retires them via an epoch sentinel.
type shardPool struct {
	g      *GPU
	shards int
	wake   []int64
	hasRes []bool
	slots  []shardSlot

	stepNow int64        // the round's cycle; published by the epoch store
	epoch   atomic.Int64 // round counter; -1 = shut down
	pending atomic.Int32 // workers yet to finish the current round
	wg      sync.WaitGroup
}

func newShardPool(g *GPU, shards int, wake []int64, hasRes []bool) *shardPool {
	p := &shardPool{
		g:      g,
		shards: shards,
		wake:   wake,
		hasRes: hasRes,
		slots:  make([]shardSlot, shards),
	}
	g.gate.Size(shards)
	// Shard 0 is worked by the run goroutine inside step.
	for s := 1; s < shards; s++ {
		p.wg.Add(1)
		go p.worker(s)
	}
	return p
}

// step executes one parallel event step at cycle now and returns the
// merged min wake time and resident-SM count. A panic on any shard
// surfaces as an error (the step's partial effects are abandoned — the
// run is over).
func (p *shardPool) step(now int64) (next int64, residentSMs int, err error) {
	telParRounds.Inc()
	p.stepNow = now
	p.g.gate.Arm()
	p.pending.Store(int32(p.shards - 1))
	p.epoch.Add(1)
	p.runShard(0)
	par.SpinUntil(func() bool { return p.pending.Load() == 0 })
	p.g.gate.Disarm()

	next = farFuture
	for s := range p.slots {
		sl := &p.slots[s]
		if sl.panicVal != nil {
			return 0, 0, fmt.Errorf("gpu: shard %d/%d panicked at cycle %d: %v\n%s",
				s, p.shards, now, sl.panicVal, sl.stack)
		}
		if sl.next < next {
			next = sl.next
		}
		residentSMs += int(sl.resident)
	}
	return next, residentSMs, nil
}

// worker is the loop of shards 1..S-1: wait for the next epoch, run the
// shard, report completion.
func (p *shardPool) worker(shard int) {
	defer p.wg.Done()
	seen := int64(0)
	for {
		par.SpinUntil(func() bool { return p.epoch.Load() != seen })
		e := p.epoch.Load()
		if e < 0 {
			return
		}
		seen = e
		p.runShard(shard)
		p.pending.Add(-1)
	}
}

// runShard Ticks the shard's due SMs in ascending index order, keeping
// the gate's frontier current so higher-indexed SMs on other shards can
// commit as soon as their predecessors are done. Skipped (not-due) SMs
// still advance the frontier — they are provably inert this step, so
// waiters need not wait on them. A panic is captured into the slot and
// the frontier released, so peer shards blocked in Wait always drain.
func (p *shardPool) runShard(shard int) {
	defer func() {
		if r := recover(); r != nil {
			sl := &p.slots[shard]
			sl.panicVal, sl.stack = r, debug.Stack()
			p.g.gate.Finish(shard)
		}
	}()
	g := p.g
	now := p.stepNow
	next := farFuture
	resident := int64(0)
	for i := shard; i < len(g.SMs); i += p.shards {
		g.gate.Visit(shard, i)
		if p.wake[i] <= now {
			s := g.SMs[i]
			n, _ := s.Tick(now)
			// End of the SM's Tick is its last canonical commit point:
			// drain any speculative L2 reads the Tick buffered before the
			// frontier moves past it (no-op when nothing is buffered).
			s.Hier.CommitSpeculation()
			p.wake[i] = n
			p.hasRes[i] = s.HasResidents()
		}
		if p.wake[i] < next {
			next = p.wake[i]
		}
		if p.hasRes[i] {
			resident++
		}
	}
	g.gate.Finish(shard)
	sl := &p.slots[shard]
	sl.next, sl.resident = next, resident
}

// close retires the workers. Called once, after the run loop exits.
func (p *shardPool) close() {
	p.epoch.Store(-1)
	p.wg.Wait()
}

// stepInline Ticks every due SM on the run goroutine with the gate
// disarmed — the serial event step. Both the serial loop and the sharded
// loop's small steps (due < minDueForParallel) run through here.
func (g *GPU) stepInline(now int64, wake []int64, hasRes []bool, residentSMs *int) (next int64) {
	next = farFuture
	for i, s := range g.SMs {
		if wake[i] <= now {
			n, _ := s.Tick(now)
			wake[i] = n
			if r := s.HasResidents(); r != hasRes[i] {
				hasRes[i] = r
				if r {
					*residentSMs++
				} else {
					*residentSMs--
				}
			}
		}
		if wake[i] < next {
			next = wake[i]
		}
	}
	return next
}

// stepInlineProtected is stepInline under the sharded run's fault
// contract: a policy panic becomes an error, as it would in a parallel
// round, instead of unwinding through Run. Serial (pool-less) runs keep
// the historical panic-through behavior — runner.executeIsolated owns
// fault isolation there.
func (g *GPU) stepInlineProtected(now int64, wake []int64, hasRes []bool, residentSMs *int) (next int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("gpu: event step panicked at cycle %d: %v\n%s", now, r, debug.Stack())
		}
	}()
	return g.stepInline(now, wake, hasRes, residentSMs), nil
}
