package gpu

import (
	"reflect"
	"testing"

	"finereg/internal/kernels"
	"finereg/internal/stats"
	"finereg/internal/trace"
)

// runWithProgress executes one CS run with the given sample period and
// returns the metrics plus every sample delivered.
func runWithProgress(t *testing.T, every int64) (*stats.Metrics, []trace.ProgressSample) {
	t.Helper()
	var samples []trace.ProgressSample
	cfg := Default().Scale(2)
	cfg.ProgressEvery = every
	cfg.Progress = func(s trace.ProgressSample) { samples = append(samples, s) }
	p, _ := kernels.ProfileByName("CS")
	k := kernels.MustBuild(p, 32)
	g := New(cfg, Baseline())
	m, err := g.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	return m, samples
}

func TestProgressSampling(t *testing.T) {
	const every = 1000
	m, samples := runWithProgress(t, every)
	if len(samples) < 2 {
		t.Fatalf("got %d samples, want at least a periodic and a final one", len(samples))
	}
	last := samples[len(samples)-1]
	if !last.Final {
		t.Fatal("last sample must be the Final one")
	}
	for i, s := range samples[:len(samples)-1] {
		if s.Final {
			t.Fatalf("sample %d marked Final before run end", i)
		}
	}

	// Cycles are strictly increasing and the deltas tile the run exactly.
	var sumDelta int64
	prev := int64(0)
	for i, s := range samples {
		if s.Cycle <= prev && !(i == 0 && s.Cycle > 0) {
			t.Fatalf("sample %d cycle %d not after %d", i, s.Cycle, prev)
		}
		if s.CycleDelta != s.Cycle-prev {
			t.Fatalf("sample %d delta %d, want %d", i, s.CycleDelta, s.Cycle-prev)
		}
		sumDelta += s.CycleDelta
		prev = s.Cycle
	}
	if sumDelta != m.Cycles || last.Cycle != m.Cycles {
		t.Fatalf("deltas sum to %d, final cycle %d, metrics report %d", sumDelta, last.Cycle, m.Cycles)
	}

	// Periodic samples ride the period grid: each fires at the first
	// event step at or after the boundary following the previous sample,
	// so consecutive samples land in strictly increasing period windows.
	// (The old re-anchored sampler — next at fired-step + every — drifted
	// the grid after every idle skip; see the boundary-snap test below.)
	for i := 1; i < len(samples)-1; i++ {
		bound := (samples[i-1].Cycle/every + 1) * every
		if samples[i].Cycle < bound {
			t.Errorf("sample %d at cycle %d fired before boundary %d (prev at %d)",
				i, samples[i].Cycle, bound, samples[i-1].Cycle)
		}
	}

	// The Final sample's cumulative counts agree with the run metrics, and
	// every CTA has retired by then.
	if last.CTAsLaunched != m.CTAsLaunched {
		t.Errorf("final CTAsLaunched %d, metrics %d", last.CTAsLaunched, m.CTAsLaunched)
	}
	if last.Instructions != m.Instructions {
		t.Errorf("final Instructions %d, metrics %d", last.Instructions, m.Instructions)
	}
	if last.GridCTAs != 32 || last.CTAsRetired != 32 {
		t.Errorf("final grid/retired = %d/%d, want 32/32", last.GridCTAs, last.CTAsRetired)
	}
	if last.WallMS < 0 || last.CyclesPerSec < 0 {
		t.Errorf("negative wall/rate: %d ms, %f cyc/s", last.WallMS, last.CyclesPerSec)
	}
}

func TestProgressHugePeriodOnlyFinal(t *testing.T) {
	_, samples := runWithProgress(t, 1<<40)
	if len(samples) != 1 || !samples[0].Final {
		t.Fatalf("got %d samples (final=%v), want exactly one Final sample",
			len(samples), len(samples) > 0 && samples[len(samples)-1].Final)
	}
}

// TestProgressBoundarySnap pins the sampler's grid arithmetic directly:
// after a sample fires at an event step past its boundary (a long idle
// skip), the next boundary is the following multiple of the period — not
// fired-step + period, which drifted the whole grid by the overshoot.
func TestProgressBoundarySnap(t *testing.T) {
	p := newProgressState(func(trace.ProgressSample) {}, 1000)
	if p.nextAt != 1000 {
		t.Fatalf("initial boundary %d, want 1000 (no sample at cycle 0)", p.nextAt)
	}
	g := New(Default().Scale(1), Baseline())
	for _, tc := range []struct {
		firedAt, want int64
	}{
		{1000, 2000},  // on-grid fire
		{2194, 3000},  // overshoot snaps to the next multiple, not 3194
		{9999, 10000}, // just short of a boundary
		{10000, 11000},
		{123456, 124000}, // long idle skip over many boundaries
	} {
		g.sampleProgress(p, tc.firedAt, false)
		if p.nextAt != tc.want {
			t.Errorf("after sample at %d: nextAt %d, want %d", tc.firedAt, p.nextAt, tc.want)
		}
	}
}

func TestProgressByteIdenticalMetrics(t *testing.T) {
	run := func(withProgress bool) interface{} {
		cfg := Default().Scale(2)
		if withProgress {
			cfg.ProgressEvery = 500
			cfg.Progress = func(trace.ProgressSample) {}
		}
		p, _ := kernels.ProfileByName("LB")
		k := kernels.MustBuild(p, 16)
		g := New(cfg, FineRegDefault())
		m, err := g.Run(k)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	off, on := run(false), run(true)
	if !reflect.DeepEqual(off, on) {
		t.Fatalf("metrics differ with progress sampling on:\noff: %+v\non:  %+v", off, on)
	}
}
