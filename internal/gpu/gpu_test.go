package gpu

import (
	"errors"
	"testing"

	"finereg/internal/kernels"
	"finereg/internal/mem"
	"finereg/internal/sm"
)

func TestScalePreservesPerSMResources(t *testing.T) {
	base := Default()
	quarter := base.Scale(4)
	if quarter.NumSMs != 4 {
		t.Fatalf("NumSMs = %d, want 4", quarter.NumSMs)
	}
	// Per-SM bandwidth share and L2 share must be unchanged.
	if got, want := quarter.DRAMBytesPerCycle/4, base.DRAMBytesPerCycle/16; got != want {
		t.Errorf("per-SM bandwidth %v, want %v", got, want)
	}
	if got, want := quarter.L2Bytes*4, base.L2Bytes; got != want {
		t.Errorf("scaled L2 %d x4 = %d, want %d", quarter.L2Bytes, got, want)
	}
	// SM-local resources never scale.
	if quarter.SM.RegFileBytes != base.SM.RegFileBytes {
		t.Error("register file must stay per-SM constant")
	}
}

func TestScaleKeepsL2Wellformed(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8, 32, 128} {
		cfg := Default().Scale(n)
		if _, err := mem.NewCache(cfg.L2Bytes, cfg.L2Ways); err != nil {
			t.Errorf("Scale(%d) produced invalid L2 geometry: %v", n, err)
		}
	}
}

func TestRunCollectsHierarchyMetrics(t *testing.T) {
	cfg := Default().Scale(2)
	p, _ := kernels.ProfileByName("LB")
	k := kernels.MustBuild(p, 16)
	g := New(cfg, Baseline())
	m, err := g.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	if m.L1Accesses == 0 || m.L2Accesses == 0 || m.DRAMDemandBytes == 0 {
		t.Errorf("memory metrics missing: L1=%d L2=%d dram=%d", m.L1Accesses, m.L2Accesses, m.DRAMDemandBytes)
	}
	if m.L1Misses > m.L1Accesses || m.L2Misses > m.L2Accesses {
		t.Error("misses exceed accesses")
	}
	if m.RFReads == 0 || m.RFWrites == 0 {
		t.Error("register file event counters missing")
	}
	if m.AvgResidentCTAs <= 0 || m.AvgActiveThreads <= 0 {
		t.Error("TLP time-averages missing")
	}
}

func TestCycleBudgetGuard(t *testing.T) {
	cfg := Default().Scale(2)
	cfg.MaxCycles = 100 // absurdly small
	p, _ := kernels.ProfileByName("CS")
	k := kernels.MustBuild(p, 64)
	g := New(cfg, Baseline())
	_, err := g.Run(k)
	if !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("expected ErrCycleBudget, got %v", err)
	}
}

// stuckPolicy deliberately never launches anything.
type stuckPolicy struct{}

func (stuckPolicy) Name() string                                    { return "stuck" }
func (stuckPolicy) KernelStart(s *sm.SM, now int64)                 {}
func (stuckPolicy) FillSlots(s *sm.SM, now int64)                   {}
func (stuckPolicy) OnCTAStalled(s *sm.SM, c *sm.CTA, now int64)     {}
func (stuckPolicy) OnCTAReady(s *sm.SM, c *sm.CTA, now int64)       {}
func (stuckPolicy) OnCTAFinished(s *sm.SM, c *sm.CTA, now int64)    {}
func (stuckPolicy) AllowIssue(s *sm.SM, w *sm.Warp, now int64) bool { return true }
func (stuckPolicy) BlockedOnRegisters() bool                        { return false }

func TestDeadlockDetection(t *testing.T) {
	// A policy that never launches leaves the grid undrained with no
	// events: the run loop must fail fast instead of spinning.
	cfg := Default().Scale(2)
	p, _ := kernels.ProfileByName("CS")
	k := kernels.MustBuild(p, 8)
	g := New(cfg, func(c sm.Config, h *mem.Hierarchy) sm.Policy { return stuckPolicy{} })
	_, err := g.Run(k)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected ErrDeadlock, got %v", err)
	}
}

func TestDispatcherDrainsExactly(t *testing.T) {
	d := &dispatcher{total: 3}
	ids := []int{d.NextCTAID(), d.NextCTAID(), d.NextCTAID()}
	if ids[0] != 0 || ids[1] != 1 || ids[2] != 2 {
		t.Errorf("ids = %v, want [0 1 2]", ids)
	}
	if d.NextCTAID() != -1 || d.Remaining() != 0 {
		t.Error("drained dispatcher must return -1 / 0 remaining")
	}
}

func TestPolicyFactoriesProduceDistinctInstances(t *testing.T) {
	cfg := Default().Scale(2)
	g := New(cfg, FineRegDefault())
	if g.SMs[0].Pol == g.SMs[1].Pol {
		t.Error("each SM must get its own policy instance")
	}
}

func TestFineRegSplitFactoryValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched ACRF/PCRF split should panic at construction")
		}
	}()
	New(Default().Scale(1), FineReg(64<<10, 64<<10)) // 128KB != 256KB file
}

func TestFineRegFullAblation(t *testing.T) {
	// The CompactLive=false ablation stores full register sets in the
	// PCRF: far fewer pending CTAs fit, so resident CTAs must not exceed
	// the live-compacted configuration.
	cfg := Default().Scale(2)
	p, _ := kernels.ProfileByName("SY2")
	run := func(pf PolicyFactory) float64 {
		k := kernels.MustBuild(p, 96)
		g := New(cfg, pf)
		m, err := g.Run(k)
		if err != nil {
			t.Fatal(err)
		}
		return m.AvgResidentCTAs
	}
	compact := run(FineRegDefault())
	full := run(FineRegFull(128<<10, 128<<10))
	if full > compact {
		t.Errorf("full-set PCRF residency %.1f should not exceed live-compacted %.1f", full, compact)
	}
}
