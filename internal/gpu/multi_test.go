package gpu

import (
	"reflect"
	"testing"

	"finereg/internal/kernels"
)

func mustKernel(t *testing.T, name string, grid int) *kernels.Kernel {
	t.Helper()
	p, err := kernels.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return kernels.MustBuild(p, grid)
}

func TestValidatePartitions(t *testing.T) {
	cases := []struct {
		numSMs int
		parts  []int
		ok     bool
	}{
		{4, nil, true},
		{4, []int{4}, true},
		{4, []int{2, 2}, true},
		{4, []int{1, 1, 1, 1}, true},
		{4, []int{3, 2}, false}, // sum > NumSMs
		{4, []int{2, 1}, false}, // sum < NumSMs
		{4, []int{4, 0}, false}, // empty partition
		{4, []int{-1, 5}, false},
	}
	for _, c := range cases {
		err := ValidatePartitions(c.numSMs, c.parts)
		if (err == nil) != c.ok {
			t.Errorf("ValidatePartitions(%d, %v) = %v, want ok=%v", c.numSMs, c.parts, err, c.ok)
		}
	}
}

// TestRunStreamFirstSegmentMatchesSoloRun pins the stream contract: the
// first segment starts on a pristine machine at cycle 0, so its metrics
// must be byte-identical to a solo Run of the same kernel.
func TestRunStreamFirstSegmentMatchesSoloRun(t *testing.T) {
	cfg := Default().Scale(2)
	k1 := mustKernel(t, "LB", 8)
	k2 := mustKernel(t, "CS", 8)

	solo, err := New(cfg, Baseline()).Run(mustKernel(t, "LB", 8))
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(cfg, Baseline()).RunStream(k1, k2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(res.Segments))
	}
	if !reflect.DeepEqual(res.Segments[0], solo) {
		t.Errorf("first stream segment differs from solo run:\nseg:  %+v\nsolo: %+v", res.Segments[0], solo)
	}
}

func TestRunStreamRollup(t *testing.T) {
	cfg := Default().Scale(2)
	cfg.Audit = true // exercise the partition invariants across rebinds
	res, err := New(cfg, Baseline()).RunStream(mustKernel(t, "LB", 8), mustKernel(t, "CS", 8))
	if err != nil {
		t.Fatal(err)
	}
	var cycles, instr, l2 int64
	for _, seg := range res.Segments {
		cycles += seg.Cycles
		instr += seg.Instructions
		l2 += seg.L2Accesses
	}
	if res.Total.Cycles != cycles {
		t.Errorf("total cycles %d != segment sum %d", res.Total.Cycles, cycles)
	}
	if res.Total.Instructions != instr {
		t.Errorf("total instructions %d != segment sum %d", res.Total.Instructions, instr)
	}
	if res.Total.L2Accesses != l2 {
		t.Errorf("total L2 accesses %d != segment sum %d (stream segments own the whole hierarchy)", res.Total.L2Accesses, l2)
	}
	if res.Total.Benchmark != "LB+CS" {
		t.Errorf("rollup name = %q", res.Total.Benchmark)
	}
	if res.Total.AvgActiveThreads <= 0 {
		t.Error("rollup occupancy averages missing")
	}
}

func TestRunStreamDeterministic(t *testing.T) {
	run := func(shards int) *MultiResult {
		cfg := Default().Scale(2)
		cfg.Shards = shards
		res, err := New(cfg, Baseline()).RunStream(mustKernel(t, "LB", 8), mustKernel(t, "ST", 8))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(0)
	for _, shards := range []int{0, 2} {
		if got := run(shards); !reflect.DeepEqual(got, base) {
			t.Errorf("stream result differs at shards=%d", shards)
		}
	}
}

// TestRunConcurrentInstructionCounts pins the headline partition
// invariant: instruction streams are timing-independent, so each
// partition's instruction count equals the same kernel's solo run on a
// machine of the partition's size — only cycle counts feel the shared
// L2/DRAM contention.
func TestRunConcurrentInstructionCounts(t *testing.T) {
	cfg := Default().Scale(4)
	cfg.Partitions = []int{2, 2}
	cfg.Audit = true
	g := New(cfg, Baseline())
	res, err := g.RunConcurrent(mustKernel(t, "LB", 8), mustKernel(t, "CS", 8))
	if err != nil {
		t.Fatal(err)
	}
	soloCfg := Default().Scale(2)
	for p, name := range []string{"LB", "CS"} {
		solo, err := New(soloCfg, Baseline()).Run(mustKernel(t, name, 8))
		if err != nil {
			t.Fatal(err)
		}
		seg := res.Segments[p]
		if seg.Instructions != solo.Instructions {
			t.Errorf("partition %d (%s): %d instructions, solo run %d", p, name, seg.Instructions, solo.Instructions)
		}
		if seg.CTAsLaunched != solo.CTAsLaunched {
			t.Errorf("partition %d (%s): %d CTAs, solo run %d", p, name, seg.CTAsLaunched, solo.CTAsLaunched)
		}
	}
	if sum := res.Segments[0].Instructions + res.Segments[1].Instructions; res.Total.Instructions != sum {
		t.Errorf("total instructions %d != partition sum %d", res.Total.Instructions, sum)
	}
	if res.Total.L2Accesses == 0 {
		t.Error("shared L2 traffic missing from rollup")
	}
	if res.Segments[0].L2Accesses != 0 || res.Segments[1].L2Accesses != 0 {
		t.Error("shared-hierarchy traffic must not be attributed to partition segments")
	}
}

func TestRunConcurrentDeterministicAcrossShards(t *testing.T) {
	run := func(shards int) *MultiResult {
		cfg := Default().Scale(4)
		cfg.Partitions = []int{2, 2}
		cfg.Shards = shards
		res, err := New(cfg, Baseline()).RunConcurrent(mustKernel(t, "LB", 8), mustKernel(t, "ST", 8))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(0)
	for _, shards := range []int{0, 2, 3} {
		if got := run(shards); !reflect.DeepEqual(got, base) {
			t.Errorf("concurrent result differs at shards=%d", shards)
		}
	}
}

func TestPartitionedMachineRejectsMismatchedEntryPoints(t *testing.T) {
	cfg := Default().Scale(4)
	cfg.Partitions = []int{2, 2}
	g := New(cfg, Baseline())
	if _, err := g.Run(mustKernel(t, "LB", 8)); err == nil {
		t.Error("Run accepted a partitioned machine")
	}
	if _, err := g.RunStream(mustKernel(t, "LB", 8)); err == nil {
		t.Error("RunStream accepted a partitioned machine")
	}
	if _, err := New(cfg, Baseline()).RunConcurrent(mustKernel(t, "LB", 8)); err == nil {
		t.Error("RunConcurrent accepted 1 kernel for 2 partitions")
	}
	if _, err := New(Default().Scale(2), Baseline()).RunStream(); err == nil {
		t.Error("RunStream accepted an empty stream")
	}
}

// TestRunConcurrentSinglePartitionMatchesRun: a one-partition concurrent
// run is the degenerate case and must reproduce Run exactly.
func TestRunConcurrentSinglePartitionMatchesRun(t *testing.T) {
	cfg := Default().Scale(2)
	solo, err := New(cfg, Baseline()).Run(mustKernel(t, "LB", 8))
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(cfg, Baseline()).RunConcurrent(mustKernel(t, "LB", 8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Total, solo) {
		t.Errorf("degenerate concurrent run differs from Run:\nconc: %+v\nsolo: %+v", res.Total, solo)
	}
}
