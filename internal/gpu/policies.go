package gpu

import (
	"finereg/internal/core"
	"finereg/internal/mem"
	"finereg/internal/regfile"
	"finereg/internal/sm"
)

// Named policy factories for the paper's GPU configurations.

// Baseline is the conventional GPU (no CTA switching).
func Baseline() PolicyFactory {
	return func(cfg sm.Config, hier *mem.Hierarchy) sm.Policy {
		return regfile.NewBaseline(cfg)
	}
}

// VirtualThread is the Virtual Thread configuration [45].
func VirtualThread() PolicyFactory {
	return func(cfg sm.Config, hier *mem.Hierarchy) sm.Policy {
		return regfile.NewVirtualThread(cfg, hier)
	}
}

// RegDRAM is the Reg+DRAM (Zorua-like) configuration with the given
// per-SM off-chip pending-CTA cap.
func RegDRAM(dramCap int) PolicyFactory {
	return func(cfg sm.Config, hier *mem.Hierarchy) sm.Policy {
		return regfile.NewRegDRAM(cfg, hier, dramCap)
	}
}

// VTRegMutex is the VT+RegMutex configuration with srpFrac of the register
// file as the shared register pool.
func VTRegMutex(srpFrac float64) PolicyFactory {
	return func(cfg sm.Config, hier *mem.Hierarchy) sm.Policy {
		return regfile.NewRegMutex(cfg, hier, srpFrac)
	}
}

// FineReg is the paper's configuration with the given ACRF/PCRF split in
// bytes (the default evaluation splits the 256 KB file 128/128).
func FineReg(acrfBytes, pcrfBytes int) PolicyFactory {
	return func(cfg sm.Config, hier *mem.Hierarchy) sm.Policy {
		return core.NewFineReg(cfg, hier, acrfBytes, pcrfBytes)
	}
}

// FineRegDefault splits the configured register file in half.
func FineRegDefault() PolicyFactory {
	return func(cfg sm.Config, hier *mem.Hierarchy) sm.Policy {
		half := cfg.RegFileBytes / 2
		return core.NewFineReg(cfg, hier, half, cfg.RegFileBytes-half)
	}
}

// FineRegFull is the ablation that stores full register sets in the PCRF
// instead of live-only sets.
func FineRegFull(acrfBytes, pcrfBytes int) PolicyFactory {
	return func(cfg sm.Config, hier *mem.Hierarchy) sm.Policy {
		f := core.NewFineReg(cfg, hier, acrfBytes, pcrfBytes)
		f.CompactLive = false
		return f
	}
}
