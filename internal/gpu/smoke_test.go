package gpu

import (
	"testing"

	"finereg/internal/kernels"
)

// testConfig is a 4-SM machine with proportionally scaled shared resources
// so unit tests stay fast while preserving per-SM behaviour.
func testConfig() Config { return Default().Scale(4) }

func TestBaselineCompletesAllBenchmarks(t *testing.T) {
	cfg := testConfig()
	for _, name := range kernels.Names() {
		p, err := kernels.ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		k := kernels.MustBuild(p, 32)
		g := New(cfg, Baseline())
		m, err := g.Run(k)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Instructions == 0 || m.Cycles == 0 {
			t.Errorf("%s: no progress (instrs=%d cycles=%d)", name, m.Instructions, m.Cycles)
		}
		if m.CTAsLaunched != 32 {
			t.Errorf("%s: launched %d CTAs, want 32", name, m.CTAsLaunched)
		}
	}
}

func TestAllPoliciesComplete(t *testing.T) {
	cfg := testConfig()
	policies := map[string]PolicyFactory{
		"baseline": Baseline(),
		"vt":       VirtualThread(),
		"regdram":  RegDRAM(4),
		"regmutex": VTRegMutex(0.25),
		"finereg":  FineRegDefault(),
	}
	for _, bench := range []string{"CS", "LB", "BF"} {
		p, err := kernels.ProfileByName(bench)
		if err != nil {
			t.Fatal(err)
		}
		var baseInstr int64
		for _, polName := range []string{"baseline", "vt", "regdram", "regmutex", "finereg"} {
			k := kernels.MustBuild(p, 64)
			g := New(cfg, policies[polName])
			m, err := g.Run(k)
			if err != nil {
				t.Fatalf("%s/%s: %v", bench, polName, err)
			}
			if m.CTAsLaunched != 64 {
				t.Errorf("%s/%s: launched %d CTAs, want 64", bench, polName, m.CTAsLaunched)
			}
			// Every policy must execute the same dynamic instruction count —
			// management changes timing, not work.
			if polName == "baseline" {
				baseInstr = m.Instructions
			} else if m.Instructions != baseInstr {
				t.Errorf("%s/%s: executed %d instructions, baseline executed %d",
					bench, polName, m.Instructions, baseInstr)
			}
			t.Logf("%s/%-9s IPC=%6.3f cycles=%8d resident=%5.1f active=%5.1f switches=%d",
				bench, polName, m.IPC(), m.Cycles, m.AvgResidentCTAs, m.AvgActiveCTAs, m.CTASwitches)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testConfig()
	p, _ := kernels.ProfileByName("CS")
	run := func() (int64, int64) {
		k := kernels.MustBuild(p, 48)
		g := New(cfg, FineRegDefault())
		m, err := g.Run(k)
		if err != nil {
			t.Fatal(err)
		}
		return m.Cycles, m.Instructions
	}
	c1, i1 := run()
	c2, i2 := run()
	if c1 != c2 || i1 != i2 {
		t.Errorf("simulation not deterministic: (%d,%d) vs (%d,%d)", c1, i1, c2, i2)
	}
}
