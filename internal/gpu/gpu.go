// Package gpu assembles the full machine: NumSMs streaming multiprocessors
// sharing an L2 and a DRAM channel, a grid dispatcher, and the run loop
// that advances all SMs in lockstep (skipping globally idle gaps) until
// the kernel's grid drains. It produces the stats.Metrics every experiment
// consumes.
package gpu

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"finereg/internal/audit"
	"finereg/internal/kernels"
	"finereg/internal/mem"
	"finereg/internal/par"
	"finereg/internal/sm"
	"finereg/internal/stats"
	"finereg/internal/telemetry"
	"finereg/internal/trace"
)

// Run-level telemetry: cumulative simulated cycles and instructions
// across every run in the process. Updated at progress sample points (so
// the serving layer's gauges read live) and reconciled at run end (so
// unsampled runs still count).
var (
	telCycles       = telemetry.NewCounter("gpu_cycles")
	telInstructions = telemetry.NewCounter("gpu_instructions")
)

// Config is the whole-GPU configuration (Table I by default).
type Config struct {
	NumSMs int
	SM     sm.Config

	L2Bytes, L2Ways int
	// DRAMLatency is the unloaded off-chip latency in core cycles;
	// DRAMBytesPerCycle the channel bandwidth (352.5 GB/s at 1126 MHz ≈
	// 313 bytes/cycle for the full chip).
	DRAMLatency       int64
	DRAMBytesPerCycle float64
	Lat               mem.Latencies

	// MaxCycles aborts runaway simulations (0 = default guard).
	MaxCycles int64

	// Audit enables the runtime invariant auditor (internal/audit): SM
	// occupancy counters and per-policy register accounting are re-derived
	// from first principles every AuditInterval cycles and at every CTA
	// lifecycle transition. A violation aborts Run with a typed
	// *audit.Violation carrying a full state dump. Part of the runner.Job
	// key (audited and unaudited runs are distinct cache entries).
	Audit bool
	// AuditInterval overrides the periodic sweep period in cycles
	// (0 = audit.DefaultInterval). Transitions are audited regardless.
	AuditInterval int64
	// AuditCollect switches the auditor from fail-fast to collect-all:
	// violations are recorded instead of aborting, and the run ends with a
	// *audit.ViolationSet summarizing every drift found. Excluded from the
	// job key (json:"-") — it changes failure reporting, not simulation
	// behaviour, so collected and fail-fast runs share cache entries.
	AuditCollect bool `json:"-"`

	// Progress, when non-nil, receives periodic trace.ProgressSample
	// observations from Run: one at the first event step at or after each
	// ProgressEvery-cycle boundary, plus a Final sample at run end.
	// Sampling is event-core-aware — it piggybacks on the wake schedule
	// and never adds an event step — so metrics are byte-identical with
	// Progress on or off (pinned by audit/diff's golden matrix). Both
	// fields are excluded from the job key (json:"-"), like AuditCollect:
	// they change observation, not simulation, so sampled and unsampled
	// runs share cache entries. The callback runs on the simulating
	// goroutine; a slow callback slows the run.
	Progress func(trace.ProgressSample) `json:"-"`
	// ProgressEvery is the sample period in simulated cycles
	// (0 = DefaultProgressEvery).
	ProgressEvery int64 `json:"-"`

	// Shards is the worker-goroutine count for intra-run SM parallelism:
	// a parallel event step Ticks due SMs across min(Shards, NumSMs)
	// goroutines with shared-state access serialized in canonical SM
	// order (internal/par, DESIGN.md §15), so results are byte-identical
	// at every shard count — pinned by audit/diff's golden matrix.
	// 0 or 1 selects the serial loop. Sharded untraced runs additionally
	// speculate L2 reads past the ordering gate (validated or replayed at
	// their canonical commit point — equally byte-identical); traced runs
	// shard too, with per-SM event buffers drained in canonical order at
	// each step barrier, but run with speculation off so emitted events
	// carry final values. Excluded from the runner job key (json:"-"):
	// shards change wall-clock time, never results, so sharded and serial
	// runs share cache entries.
	Shards int `json:"-"`

	// Partitions, when non-empty, statically partitions the machine
	// MPS-style: entry p is partition p's SM count, partitions occupy
	// disjoint contiguous SM index ranges in declaration order, and the
	// entries must sum to NumSMs (ValidatePartitions checks; New panics on
	// violation, so network input is validated at admission). Each
	// partition gets a private grid dispatcher while all partitions share
	// the L2 and DRAM channel, so RunConcurrent kernels contend in the
	// memory hierarchy but can never steal each other's CTA slots. Empty
	// means one partition spanning the whole machine. Part of the
	// runner.Job key (omitempty keeps legacy keys byte-identical).
	Partitions []int `json:",omitempty"`
}

// ValidatePartitions reports whether parts is a valid MPS-style static
// partitioning of numSMs SMs: every entry >= 1 and the entries sum to
// numSMs. Empty parts — the unpartitioned machine — is always valid.
func ValidatePartitions(numSMs int, parts []int) error {
	_, err := partitionSpans(numSMs, parts)
	return err
}

// partitionSpans lowers a partition spec to [lo, hi) SM index ranges.
func partitionSpans(numSMs int, parts []int) ([][2]int, error) {
	if len(parts) == 0 {
		return [][2]int{{0, numSMs}}, nil
	}
	spans := make([][2]int, len(parts))
	lo := 0
	for p, n := range parts {
		if n < 1 {
			return nil, fmt.Errorf("gpu: partition %d has %d SMs, want >= 1", p, n)
		}
		spans[p] = [2]int{lo, lo + n}
		lo += n
	}
	if lo != numSMs {
		return nil, fmt.Errorf("gpu: partitions sum to %d SMs, machine has %d", lo, numSMs)
	}
	return spans, nil
}

// DefaultProgressEvery is the Progress sample period when
// Config.ProgressEvery is zero: ~15 samples/s at the event core's typical
// 1-2M sim-cycles/s, comfortably amortizing the O(NumSMs) sample cost.
const DefaultProgressEvery = 100_000

// Default returns the Table I machine.
func Default() Config {
	return Config{
		NumSMs:            16,
		SM:                sm.Default(),
		L2Bytes:           2 << 20,
		L2Ways:            8,
		DRAMLatency:       600,
		DRAMBytesPerCycle: 313,
		Lat:               mem.DefaultLatencies(),
	}
}

// Scale resizes the machine to n SMs, scaling DRAM bandwidth and L2
// capacity proportionally so per-SM behaviour is preserved (used by the
// Figure 18 sweep and by fast test configurations).
func (c Config) Scale(n int) Config {
	ratio := float64(n) / float64(c.NumSMs)
	c.DRAMBytesPerCycle *= ratio
	l2 := int(float64(c.L2Bytes) * ratio)
	// Keep a whole number of sets.
	unit := c.L2Ways * mem.LineBytes
	if l2 < unit {
		l2 = unit
	}
	c.L2Bytes = l2 / unit * unit
	c.NumSMs = n
	return c
}

// PolicyFactory builds one policy instance per SM.
type PolicyFactory func(cfg sm.Config, hier *mem.Hierarchy) sm.Policy

// dispatcher hands out grid CTA IDs first-come-first-served.
type dispatcher struct {
	next, total int
}

func (d *dispatcher) NextCTAID() int {
	if d.next >= d.total {
		return -1
	}
	id := d.next
	d.next++
	return id
}

func (d *dispatcher) Remaining() int { return d.total - d.next }

// GPU is one simulated machine instance. Build a fresh GPU per run.
type GPU struct {
	Cfg  Config
	Hier *mem.Hierarchy
	SMs  []*sm.SM
	// disps holds one grid dispatcher per partition (exactly one on an
	// unpartitioned machine); spans[p] is partition p's [lo, hi) SM range.
	disps []*dispatcher
	spans [][2]int
	sink  trace.Sink
	stop  atomic.Bool

	// gate orders shared-state access during parallel event steps; armed
	// only while a sharded round is in flight (see shard.go).
	gate *par.Gate
	// ops is the run-scoped telemetry view backing exact per-job
	// ProgressSample.Ops attribution (nil when Progress is unset).
	ops *telemetry.Scope
}

// Stop asynchronously aborts a running simulation: the next event step of
// Run observes the flag and returns ErrInterrupted. Safe to call from any
// goroutine (the run engine's per-job wall-clock timeout uses it); calling
// it on an idle GPU makes the next Run fail fast.
func (g *GPU) Stop() { g.stop.Store(true) }

// SetTrace attaches an event sink to every SM and to the run loop. Pass
// nil to detach. The zero-sink (nil) path costs one pointer check per
// emission site, so an untraced run is unaffected.
func (g *GPU) SetTrace(t trace.Sink) {
	g.sink = t
	for _, s := range g.SMs {
		s.SetTrace(t)
	}
}

// New constructs the GPU with one policy instance per SM. Each SM (and
// its policy) receives its own ShardView of the memory hierarchy — a
// shallow copy sharing the L2/DRAM but bound to the SM's slot in the
// canonical order — so hierarchy traffic self-serializes when Run
// executes event steps across shard goroutines.
func New(cfg Config, pf PolicyFactory) *GPU {
	spans, err := partitionSpans(cfg.NumSMs, cfg.Partitions)
	if err != nil {
		// runner.Job.Validate rejects invalid specs at admission; reaching
		// here with one is a caller bug, not a data error.
		panic(err)
	}
	hier := mem.NewHierarchy(cfg.L2Bytes, cfg.L2Ways, cfg.DRAMLatency, cfg.DRAMBytesPerCycle, cfg.Lat)
	g := &GPU{Cfg: cfg, Hier: hier, spans: spans, gate: par.NewGate()}
	for range spans {
		g.disps = append(g.disps, &dispatcher{})
	}
	if cfg.Progress != nil {
		g.ops = telemetry.NewScope()
		hier.SetOps(g.ops)
	}
	p := 0
	for i := 0; i < cfg.NumSMs; i++ {
		for i >= spans[p][1] {
			p++
		}
		hv := hier.ShardView(g.gate, i)
		s := sm.New(i, cfg.SM, hv, g.disps[p], pf(cfg.SM, hv))
		g.SMs = append(g.SMs, s)
	}
	return g
}

// ErrDeadlock is returned when residents remain but no SM can make
// progress — always a policy bug, surfaced rather than hung.
var ErrDeadlock = errors.New("gpu: simulation deadlock")

// ErrCycleBudget is returned when the MaxCycles guard trips.
var ErrCycleBudget = errors.New("gpu: cycle budget exceeded")

// ErrInterrupted is returned when Stop aborts a simulation.
var ErrInterrupted = errors.New("gpu: simulation interrupted")

const farFuture = int64(1) << 62

// progressState carries one run's sampling bookkeeping: the next sample
// boundary, the previous sample's cumulative readings (for deltas and the
// live rate), and the previous telemetry snapshot.
type progressState struct {
	cb     func(trace.ProgressSample)
	every  int64
	nextAt int64

	start     time.Time
	lastWall  time.Time
	lastCycle int64
	lastInstr int64
	lastOps   telemetry.Snapshot
}

func newProgressState(cb func(trace.ProgressSample), every int64) *progressState {
	if every <= 0 {
		every = DefaultProgressEvery
	}
	now := time.Now()
	return &progressState{
		cb:       cb,
		every:    every,
		nextAt:   every, // no sample at cycle 0
		start:    now,
		lastWall: now,
	}
}

// sampleProgress collects one observation at cycle now and invokes the
// callback. It reads SM counters but mutates nothing in the machine, so
// the event sequence — and every metric — is unchanged by sampling.
func (g *GPU) sampleProgress(p *progressState, now int64, final bool) {
	wall := time.Now()
	var launched, instr int64
	resident := 0
	for _, s := range g.SMs {
		launched += s.Cnt.CTAsLaunched
		instr += s.Cnt.Instructions
		resident += len(s.Residents())
	}
	cycD, instrD := now-p.lastCycle, instr-p.lastInstr
	telCycles.AddScoped(g.ops, cycD)
	telInstructions.AddScoped(g.ops, instrD)
	// Per-run attribution: read this run's scope, not the process-global
	// registry, so concurrent jobs never bleed into each other's Ops
	// deltas (the globals still feed the fleet-wide /metrics series).
	ops := g.ops.Capture()
	rate := 0.0
	if dt := wall.Sub(p.lastWall).Seconds(); dt > 0 {
		rate = float64(cycD) / dt
	}
	var grid int64
	for _, d := range g.disps {
		grid += int64(d.total)
	}
	sample := trace.ProgressSample{
		Cycle:        now,
		CycleDelta:   cycD,
		GridCTAs:     grid,
		CTAsLaunched: launched,
		CTAsRetired:  launched - int64(resident),
		Instructions: instr,
		WallMS:       wall.Sub(p.start).Milliseconds(),
		CyclesPerSec: rate,
		Final:        final,
		Ops:          ops.Delta(p.lastOps),
	}
	p.lastCycle, p.lastInstr = now, instr
	p.lastWall, p.lastOps = wall, ops
	// Snap the next boundary to the period grid. Re-anchoring at the
	// fired step (now + every) let every idle skip drift all later
	// boundaries; the doc promises a sample at the first event step at or
	// after each ProgressEvery multiple.
	p.nextAt = (now/p.every + 1) * p.every
	p.cb(sample)
}

// loopState carries one run's cross-segment bookkeeping: the sampling and
// audit state live here so a multi-kernel stream shares one progress
// timeline and one violation harvest across segments, and the cycle clock
// (now) only moves forward — the DRAM channel keeps absolute-time state,
// so a later kernel must never rewind the clock the hierarchy has seen.
type loopState struct {
	prog    *progressState
	auditor *audit.Auditor
	// Partition-audit scratch (nil when auditing is off): base[i] is SM
	// i's cumulative CTAsLaunched recorded immediately before the latest
	// bind, so per-segment launch deltas can be conserved against the
	// dispatcher hand-outs; parts is reused every audit step.
	parts []audit.Partition
	base  []int64

	now       int64
	maxCycles int64
}

func (g *GPU) startRun() *loopState {
	st := &loopState{maxCycles: g.Cfg.MaxCycles}
	if st.maxCycles == 0 {
		st.maxCycles = 200_000_000
	}
	if g.Cfg.Progress != nil {
		st.prog = newProgressState(g.Cfg.Progress, g.Cfg.ProgressEvery)
	}
	if g.Cfg.Audit {
		st.auditor = audit.NewWithOptions(audit.Options{
			Interval:            g.Cfg.AuditInterval,
			ContinueOnViolation: g.Cfg.AuditCollect,
		})
		st.auditor.Hier = g.Hier
		st.parts = make([]audit.Partition, len(g.disps))
		st.base = make([]int64, len(g.SMs))
	}
	return st
}

// bind points each partition's dispatcher at its kernel and binds the
// partition's SMs at the current cycle, in ascending SM index order — the
// same order the event loop Ticks in, so CTA IDs land deterministically.
// ks[p] is partition p's kernel.
func (g *GPU) bind(ks []*kernels.Kernel, st *loopState) {
	if st.base != nil {
		// Launch baseline must precede BindKernel: FillSlots consumes
		// dispatcher IDs and bumps CTAsLaunched during the bind itself.
		for i, s := range g.SMs {
			st.base[i] = s.Cnt.CTAsLaunched
		}
	}
	for p, k := range ks {
		g.disps[p].next, g.disps[p].total = 0, k.GridCTAs
	}
	for p, k := range ks {
		lo, hi := g.spans[p][0], g.spans[p][1]
		for _, s := range g.SMs[lo:hi] {
			s.BindKernel(k, st.now)
		}
	}
}

// remaining sums the undispatched CTAs across every partition.
func (g *GPU) remaining() int {
	n := 0
	for _, d := range g.disps {
		n += d.Remaining()
	}
	return n
}

// auditPartitions refreshes the partition descriptors from the live
// dispatchers and runs the partition accounting invariants.
func (g *GPU) auditPartitions(st *loopState, now int64) error {
	for p, d := range g.disps {
		lo, hi := g.spans[p][0], g.spans[p][1]
		st.parts[p] = audit.Partition{
			Index:      p,
			SMs:        g.SMs[lo:hi],
			Base:       st.base[lo:hi],
			Dispatched: d.next,
			Total:      d.total,
		}
	}
	return st.auditor.StepPartitions(st.parts, now)
}

// auditFinal runs the end-of-run audit: partition accounting against the
// drained dispatchers, the per-SM leak sweep, and — in collect mode — the
// whole run's violation harvest.
func (g *GPU) auditFinal(st *loopState) error {
	if st.auditor == nil {
		return nil
	}
	if err := g.auditPartitions(st, st.now); err != nil {
		return err
	}
	return st.auditor.Final(g.SMs, st.now)
}

// reconcile settles the process-wide cycle/instruction telemetry at run
// end: sampled runs via the Final sample's deltas, unsampled runs in one
// shot.
func (g *GPU) reconcile(st *loopState) {
	if st.prog != nil {
		g.sampleProgress(st.prog, st.now, true)
		return
	}
	telCycles.Add(st.now)
	var instr int64
	for _, s := range g.SMs {
		instr += s.Cnt.Instructions
	}
	telInstructions.Add(instr)
}

// Run executes kernel k to completion and returns its metrics. It drives
// the whole machine as one partition; partitioned machines run through
// RunConcurrent, multi-kernel streams through RunStream.
func (g *GPU) Run(k *kernels.Kernel) (*stats.Metrics, error) {
	if len(g.disps) != 1 {
		return nil, fmt.Errorf("gpu: Run drives an unpartitioned machine (this one has %d partitions); use RunConcurrent", len(g.disps))
	}
	st := g.startRun()
	g.bind([]*kernels.Kernel{k}, st)
	if g.sink != nil {
		g.sink.RunStart(k.Name(), len(g.SMs))
	}
	if err := g.runLoop(st); err != nil {
		return nil, err
	}
	if err := g.auditFinal(st); err != nil {
		return nil, err
	}
	if g.sink != nil {
		g.sink.RunEnd(st.now)
	}
	g.reconcile(st)
	return g.collectNamed(k.Name(), st.now), nil
}

// runLoop advances the machine from st.now until every resident CTA has
// retired and every dispatcher has drained, leaving the end cycle in
// st.now. One invocation is one segment: Run uses a single segment,
// RunStream one per stream kernel (continuing the clock), RunConcurrent
// one for all partitions together.
//
// The loop is event-driven per SM: each SM's last-returned wake
// time is cached, and a global step only re-Ticks the SMs whose cache
// is due. A skipped SM is provably inert — it reported no awake warps
// and no event at or before now, and nothing outside its own Tick
// mutates it — so re-Ticking it (as the dense loop did) could only
// drain zero events and return the same wake time. The step sequence,
// and therefore every cycle count, is identical to the dense loop's.
//
// Occupancy integrals likewise no longer cost a per-step sweep over
// all SMs: each SM integrates its own counters at state transitions
// (sm.statSample) and the totals are flushed once at run end.
func (g *GPU) runLoop(st *loopState) error {
	now := st.now
	wake := make([]int64, len(g.SMs))
	for i := range wake {
		wake[i] = now // every SM ticks at the segment's first step
	}
	residentSMs := 0
	hasRes := make([]bool, len(g.SMs))
	for i, s := range g.SMs {
		if s.HasResidents() {
			hasRes[i] = true
			residentSMs++
		}
	}

	// Sharded execution (DESIGN.md §15): with Shards > 1 a pool of worker
	// goroutines Ticks due SMs in parallel between the barrier points of
	// this loop; everything below the Tick block — auditing, termination,
	// sampling, time advance — runs on this goroutine exactly as in the
	// serial loop. Steps with too few due SMs to amortize a round's
	// synchronization are Ticked inline here instead (the gate stays
	// disarmed, so those Ticks are as cheap as the serial loop's).
	var pool *shardPool
	if shards := g.effectiveShards(); shards > 1 {
		pool = newShardPool(g, shards, wake, hasRes)
		defer pool.close()
	}

	// Speculative L2 reads are on exactly when parallel rounds can happen
	// and no sink observes mid-Tick state (a sink would see provisional
	// ready times before a replayed commit corrects them). The per-run
	// reset also clears each view's speculation ledger.
	specOn := pool != nil && g.sink == nil
	for _, s := range g.SMs {
		s.Hier.SetSpeculation(specOn)
	}

	// Traced sharded runs swap every SM's sink for a private buffer and
	// drain the buffers in ascending SM index order at each step barrier:
	// the serial loop Ticks SMs in exactly that order, so the user's sink
	// receives byte-for-byte the serial event stream with zero concurrent
	// emission. Run-level events (RunStart/RunEnd) stay on this goroutine.
	var tbufs []*trace.ShardBuffer
	if pool != nil && g.sink != nil {
		tbufs = make([]*trace.ShardBuffer, len(g.SMs))
		for i, s := range g.SMs {
			tbufs[i] = trace.NewShardBuffer()
			s.SetTrace(tbufs[i])
		}
		defer func() {
			for _, s := range g.SMs {
				s.SetTrace(g.sink)
			}
		}()
	}

	for {
		if g.stop.Load() {
			return fmt.Errorf("%w at cycle %d", ErrInterrupted, now)
		}
		next := farFuture
		parallel := false
		if pool != nil {
			due := 0
			for i := range wake {
				if wake[i] <= now {
					due++
				}
			}
			if due >= minDueForParallel {
				var err error
				next, residentSMs, err = pool.step(now)
				if err != nil {
					return err
				}
				parallel = true
			}
		}
		if !parallel {
			if pool != nil {
				// A policy panic in an inline step of a sharded run
				// surfaces as an error, exactly like one in a parallel
				// round — the caller sees the same fault contract
				// regardless of which path the faulting cycle took.
				var err error
				next, err = g.stepInlineProtected(now, wake, hasRes, &residentSMs)
				if err != nil {
					return err
				}
			} else {
				next = g.stepInline(now, wake, hasRes, &residentSMs)
			}
		}
		if tbufs != nil {
			for _, b := range tbufs {
				b.FlushTo(g.sink)
			}
		}
		if st.auditor != nil {
			if err := st.auditor.Step(g.SMs, now); err != nil {
				return err
			}
			if err := g.auditPartitions(st, now); err != nil {
				return err
			}
		}
		if residentSMs == 0 && g.remaining() == 0 {
			break
		}
		// Sampling rides the wake schedule: the check costs one compare
		// when progress is off, and a due sample fires at the event step
		// already being executed — never by inserting one. The final
		// iteration is covered by the run-end Final sample, so a periodic
		// sample never duplicates it.
		if st.prog != nil && now >= st.prog.nextAt {
			g.sampleProgress(st.prog, now, false)
		}
		if next == farFuture {
			return fmt.Errorf("%w: %d CTAs unfinished at cycle %d\n%s", ErrDeadlock, g.residentCount(), now, g.debugResidents())
		}
		if next <= now {
			next = now + 1
		}
		now = next
		if now > st.maxCycles {
			return fmt.Errorf("%w: %d cycles", ErrCycleBudget, now)
		}
	}
	st.now = now
	return nil
}

// debugResidents dumps stuck CTA/warp state for deadlock reports.
func (g *GPU) debugResidents() string {
	out := ""
	for _, s := range g.SMs {
		for _, c := range s.Residents() {
			out += fmt.Sprintf("SM%d CTA%d state=%d %s\n", s.ID, c.ID, c.State, c.DebugWarps())
		}
	}
	return out
}

func (g *GPU) residentCount() int {
	n := 0
	for _, s := range g.SMs {
		n += len(s.Residents())
	}
	return n
}

// collectNamed gathers the machine's cumulative counters into one Metrics
// under the given benchmark name. Occupancy averages come from the
// integrals since the latest BindKernel, so they are valid for
// single-segment runs (Run, RunConcurrent); RunStream overwrites them
// with cycle-weighted segment averages.
func (g *GPU) collectNamed(name string, cycles int64) *stats.Metrics {
	m := &stats.Metrics{
		Benchmark: name,
		Config:    g.SMs[0].Pol.Name(),
		Cycles:    cycles,
	}
	var stallSum float64
	var stallN int64
	var residentInt, activeInt, threadsInt int64
	for _, s := range g.SMs {
		r, a, th := s.OccupancyIntegrals(cycles)
		residentInt += r
		activeInt += a
		threadsInt += th
		m.Instructions += s.Cnt.Instructions
		m.CTAsLaunched += s.Cnt.CTAsLaunched
		m.CTASwitches += s.Cnt.CTASwitches
		m.CTAStalls += s.Cnt.CTAStallEvents
		m.RFReads += s.Cnt.RFReads
		m.RFWrites += s.Cnt.RFWrites
		m.PCRFReads += s.Cnt.PCRFReads
		m.PCRFWrites += s.Cnt.PCRFWrites
		m.SharedAccesses += s.Cnt.SharedAccesses
		m.L1Accesses += s.L1.Accesses
		m.L1Misses += s.L1.Misses
		stallSum += s.Cnt.StallLatencySum
		stallN += s.Cnt.StallLatencyN
		m.RegDepletionStallCycles += s.Cnt.DepletionCycles
	}
	if stallN > 0 {
		m.CyclesToFirstStall = stallSum / float64(stallN)
	}
	if cycles > 0 {
		denom := float64(cycles) * float64(len(g.SMs))
		m.AvgResidentCTAs = float64(residentInt) / denom
		m.AvgActiveCTAs = float64(activeInt) / denom
		m.AvgActiveThreads = float64(threadsInt) / denom
	}
	m.L2Accesses = g.Hier.L2.Accesses
	m.L2Misses = g.Hier.L2.Misses
	m.DRAMDemandBytes = g.Hier.DRAM.Bytes(mem.TrafficDemand)
	m.DRAMContextBytes = g.Hier.DRAM.Bytes(mem.TrafficContext)
	m.DRAMBitvecBytes = g.Hier.DRAM.Bytes(mem.TrafficBitvec)
	return m
}

// SpecStats sums the per-SM speculation ledgers of the last run:
// speculative L2 reads issued, commits that validated, and commits that
// replayed through the synchronized path. Deliberately not part of
// stats.Metrics — speculation counts describe host-side execution
// strategy, and Metrics must stay byte-identical between serial and
// sharded runs.
func (g *GPU) SpecStats() (reads, validated, replayed int64) {
	for _, s := range g.SMs {
		r, v, rp, _ := s.Hier.SpecLedger()
		reads += r
		validated += v
		replayed += rp
	}
	return reads, validated, replayed
}

// RegWindowFracs concatenates the Figure 5 instrumentation windows of all
// SMs (only populated when SM.TrackRegUsage is set).
func (g *GPU) RegWindowFracs() []float64 {
	var out []float64
	for _, s := range g.SMs {
		out = append(out, s.Cnt.RegWindowFracs...)
	}
	return out
}
