package gpu

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"finereg/internal/isa"
	"finereg/internal/kernels"
	"finereg/internal/mem"
	"finereg/internal/sm"
	"finereg/internal/stats"
	"finereg/internal/trace"
)

// runSharded executes one run of profile×grid under pf with the given
// shard count and returns the full metrics.
func runSharded(t *testing.T, bench string, grid, sms, shards int, pf PolicyFactory) *stats.Metrics {
	t.Helper()
	p, err := kernels.ProfileByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default().Scale(sms)
	cfg.Shards = shards
	k := kernels.MustBuild(p, grid)
	m, err := New(cfg, pf).Run(k)
	if err != nil {
		t.Fatalf("%s sms=%d shards=%d: %v", bench, sms, shards, err)
	}
	return m
}

// TestShardedByteIdenticalMetrics is the sharded event core's core
// guarantee: every field of the metrics — cycles, instructions, cache
// and DRAM traffic, occupancy integrals, stall accounting — is identical
// at every shard count, including shard counts that do not divide the SM
// count and a shard per SM. Run under -race this doubles as the proof
// that the canonical-order gate fully serializes shared-state access.
func TestShardedByteIdenticalMetrics(t *testing.T) {
	cases := []struct {
		bench string
		grid  int
		sms   int
		pf    PolicyFactory
		name  string
	}{
		{"CS", 40, 8, FineRegDefault(), "finereg"},
		{"LB", 24, 8, VTRegMutex(0.25), "regmutex"},
		{"SG", 16, 5, RegDRAM(2), "regdram"},
	}
	for _, tc := range cases {
		ref := runSharded(t, tc.bench, tc.grid, tc.sms, 1, tc.pf)
		for _, shards := range []int{2, 3, 4, tc.sms, tc.sms + 7} {
			got := runSharded(t, tc.bench, tc.grid, tc.sms, shards, tc.pf)
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("%s/%s sms=%d: metrics diverge at shards=%d:\nserial:  %+v\nsharded: %+v",
					tc.bench, tc.name, tc.sms, shards, ref, got)
			}
		}
	}
}

// TestShardedProgressSamplesIdentical holds the observation layer to the
// same standard: the sample stream (cycles, deltas, cumulative counts,
// per-run ops) of a sharded run matches the serial run's exactly.
func TestShardedProgressSamplesIdentical(t *testing.T) {
	run := func(shards int) []map[string]int64 {
		var ops []map[string]int64
		cfg := Default().Scale(4)
		cfg.Shards = shards
		cfg.ProgressEvery = 2000
		cfg.Progress = func(s trace.ProgressSample) {
			o := map[string]int64{"cycle": s.Cycle, "instr": s.Instructions, "launched": s.CTAsLaunched}
			for k, v := range s.Ops {
				o[k] = v
			}
			ops = append(ops, o)
		}
		p, _ := kernels.ProfileByName("CS")
		k := kernels.MustBuild(p, 32)
		if _, err := New(cfg, FineRegDefault()).Run(k); err != nil {
			t.Fatal(err)
		}
		return ops
	}
	serial, sharded := run(1), run(4)
	if !reflect.DeepEqual(serial, sharded) {
		t.Fatalf("progress streams diverge:\nserial:  %v\nsharded: %v", serial, sharded)
	}
}

// panicPolicy wraps a working policy and panics inside the first
// OnCTAStalled hook — mid-Tick, on whatever shard owns that SM.
type panicPolicy struct{ sm.Policy }

func (p *panicPolicy) OnCTAStalled(s *sm.SM, c *sm.CTA, now int64) {
	panic("panicPolicy: injected shard fault")
}

// TestShardedPanicSurfacesAsError proves a policy panic in a sharded
// run neither hangs the barrier nor kills the process, whether it lands
// in a parallel round or an inline small step: peers drain, the pool
// shuts down, and Run reports the fault and cycle as an error.
func TestShardedPanicSurfacesAsError(t *testing.T) {
	cfg := Default().Scale(4)
	cfg.Shards = 4
	pf := func(c sm.Config, hier *mem.Hierarchy) sm.Policy {
		return &panicPolicy{Policy: VirtualThread()(c, hier)}
	}
	p, _ := kernels.ProfileByName("CS")
	k := kernels.MustBuild(p, 32)
	_, err := New(cfg, pf).Run(k)
	if err == nil {
		t.Fatal("sharded run with a panicking policy returned no error")
	}
	if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "injected shard fault") {
		t.Fatalf("error does not describe the shard panic: %v", err)
	}
}

// TestEffectiveShards pins the fallback rules: shards clamp to the SM
// count and zero/one stays serial. A trace sink no longer forces serial
// — traced runs shard through per-SM event buffers (the PR 8 carve-out
// is closed; TestShardedTraceIdentity pins the stream equivalence).
func TestEffectiveShards(t *testing.T) {
	cfg := Default().Scale(4)
	for _, tc := range []struct{ shards, want int }{
		{0, 1}, {1, 1}, {2, 2}, {4, 4}, {16, 4},
	} {
		cfg.Shards = tc.shards
		g := New(cfg, Baseline())
		if got := g.effectiveShards(); got != tc.want {
			t.Errorf("Shards=%d: effective %d, want %d", tc.shards, got, tc.want)
		}
	}
	cfg.Shards = 4
	g := New(cfg, Baseline())
	g.SetTrace(trace.NewStallAggregator())
	if got := g.effectiveShards(); got != 4 {
		t.Errorf("trace sink attached: effective %d, want 4 (traced runs shard via per-SM buffers)", got)
	}
}

// recSink records every event as a formatted line, so two runs' event
// streams can be compared byte-for-byte.
type recSink struct{ events []string }

func (r *recSink) add(f string, args ...any) { r.events = append(r.events, fmt.Sprintf(f, args...)) }

func (r *recSink) RunStart(kernel string, numSMs int) { r.add("start %s %d", kernel, numSMs) }
func (r *recSink) RunEnd(now int64)                   { r.add("end %d", now) }
func (r *recSink) CTAEvent(sm int, kind trace.CTAKind, cta int, now, arg int64) {
	r.add("cta %d %d %d %d %d", sm, kind, cta, now, arg)
}
func (r *recSink) WarpSpawn(sm, cta, warp int, now, wakeAt int64, reason trace.StallReason) {
	r.add("spawn %d %d %d %d %d %d", sm, cta, warp, now, wakeAt, reason)
}
func (r *recSink) WarpDrop(sm, cta, warp int, now int64) {
	r.add("drop %d %d %d %d", sm, cta, warp, now)
}
func (r *recSink) WarpBlock(sm, cta, warp int, now, until int64, reason trace.StallReason) {
	r.add("block %d %d %d %d %d %d", sm, cta, warp, now, until, reason)
}
func (r *recSink) WarpWake(sm, cta, warp int, now int64) {
	r.add("wake %d %d %d %d", sm, cta, warp, now)
}
func (r *recSink) WarpIssue(sm, cta, warp int, now int64, pc int) {
	r.add("issue %d %d %d %d %d", sm, cta, warp, now, pc)
}
func (r *recSink) WarpDeny(sm, cta, warp int, now int64) {
	r.add("deny %d %d %d %d", sm, cta, warp, now)
}
func (r *recSink) WarpBarrier(sm, cta, warp int, now int64) {
	r.add("bar %d %d %d %d", sm, cta, warp, now)
}
func (r *recSink) WarpBarrierRelease(sm, cta, warp int, now int64) {
	r.add("barrel %d %d %d %d", sm, cta, warp, now)
}
func (r *recSink) WarpExit(sm, cta, warp int, now int64) {
	r.add("exit %d %d %d %d", sm, cta, warp, now)
}
func (r *recSink) RegTransfer(sm, cta int, kind trace.TransferKind, regs, bytes int, now int64) {
	r.add("xfer %d %d %d %d %d %d", sm, cta, kind, regs, bytes, now)
}
func (r *recSink) MemAccess(sm int, now int64, lines, l1Miss, l2Miss int, queue float64) {
	r.add("mem %d %d %d %d %d %g", sm, now, lines, l1Miss, l2Miss, queue)
}

// TestShardedTraceIdentity closes the trace-sink carve-out: a sharded
// traced run must deliver byte-for-byte the serial run's event stream —
// same events, same order, same payloads (including the DRAM queue
// sample, which reads shared state mid-Tick). Run under -race this also
// proves the per-SM buffers keep concurrent emission away from the sink.
func TestShardedTraceIdentity(t *testing.T) {
	run := func(shards int) []string {
		cfg := Default().Scale(4)
		cfg.Shards = shards
		g := New(cfg, FineRegDefault())
		sink := &recSink{}
		g.SetTrace(sink)
		if shards > 1 && g.effectiveShards() != shards {
			t.Fatalf("traced run fell back to %d shards, want %d", g.effectiveShards(), shards)
		}
		p, _ := kernels.ProfileByName("CS")
		k := kernels.MustBuild(p, 24)
		if _, err := g.Run(k); err != nil {
			t.Fatal(err)
		}
		return sink.events
	}
	serial := run(1)
	for _, shards := range []int{2, 4} {
		sharded := run(shards)
		if len(serial) != len(sharded) {
			t.Fatalf("shards=%d: %d events vs %d serial", shards, len(sharded), len(serial))
		}
		for i := range serial {
			if serial[i] != sharded[i] {
				t.Fatalf("shards=%d: event %d diverges:\nserial:  %s\nsharded: %s",
					shards, i, serial[i], sharded[i])
			}
		}
	}
}

// TestShardedSpeculationReplay forces the speculation abort path: the
// kernel is skewed toward hot loads (L1-evicted but L2-resident — prime
// speculation candidates) with an occasional streaming load that misses
// the L2, so many Ticks buffer speculative reads with no earlier
// synchronization point and their end-of-Tick commit blocks on the gate
// while a lower-ordered SM still has stream fills pending — the classic
// conflict window. (A stream-heavy mix hides the window: the stream
// load's synchronized slow path runs before the Tick's hot loads, so
// every snapshot would already see all lower SMs finished.) Metrics must
// stay byte-identical to serial on every attempt, the ledger must
// balance, and at least one attempt must observe a replay.
func TestShardedSpeculationReplay(t *testing.T) {
	p := kernels.Profile{
		Abbrev: "SPX", Name: "Speculation Conflict", Suite: "synthetic",
		WarpsPerCTA: 4, Regs: 16, Persistent: 4,
		LoopTrips: 16, StreamLoads: 1, HotLoads: 6, HotKB: 128,
		ComputePerIter: 2, Pattern: isa.PatCoalesced,
		FootprintKB: 8 << 10, GridCTAs: 64,
	}
	k := kernels.MustBuild(p, p.GridCTAs)
	run := func(shards int) (*stats.Metrics, int64, int64, int64) {
		cfg := Default().Scale(8)
		cfg.Shards = shards
		g := New(cfg, FineRegDefault())
		m, err := g.Run(k)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		reads, validated, replayed := g.SpecStats()
		return m, reads, validated, replayed
	}
	ref, reads, _, _ := run(1)
	if reads != 0 {
		t.Fatalf("serial run speculated (%d reads), speculation must require a shard pool", reads)
	}
	sawReplay := false
	for attempt := 0; attempt < 5 && !sawReplay; attempt++ {
		got, reads, validated, replayed := run(4)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("attempt %d: sharded metrics diverge from serial:\nserial:  %+v\nsharded: %+v",
				attempt, ref, got)
		}
		if reads == 0 {
			t.Fatal("conflict-heavy sharded run never speculated")
		}
		if reads != validated+replayed {
			t.Fatalf("speculation ledger unbalanced: %d reads != %d validated + %d replayed",
				reads, validated, replayed)
		}
		sawReplay = replayed > 0
	}
	if !sawReplay {
		t.Fatal("no speculation replay in 5 conflict-heavy attempts")
	}
}
