package gpu

import (
	"reflect"
	"strings"
	"testing"

	"finereg/internal/kernels"
	"finereg/internal/mem"
	"finereg/internal/sm"
	"finereg/internal/stats"
	"finereg/internal/trace"
)

// runSharded executes one run of profile×grid under pf with the given
// shard count and returns the full metrics.
func runSharded(t *testing.T, bench string, grid, sms, shards int, pf PolicyFactory) *stats.Metrics {
	t.Helper()
	p, err := kernels.ProfileByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default().Scale(sms)
	cfg.Shards = shards
	k := kernels.MustBuild(p, grid)
	m, err := New(cfg, pf).Run(k)
	if err != nil {
		t.Fatalf("%s sms=%d shards=%d: %v", bench, sms, shards, err)
	}
	return m
}

// TestShardedByteIdenticalMetrics is the sharded event core's core
// guarantee: every field of the metrics — cycles, instructions, cache
// and DRAM traffic, occupancy integrals, stall accounting — is identical
// at every shard count, including shard counts that do not divide the SM
// count and a shard per SM. Run under -race this doubles as the proof
// that the canonical-order gate fully serializes shared-state access.
func TestShardedByteIdenticalMetrics(t *testing.T) {
	cases := []struct {
		bench string
		grid  int
		sms   int
		pf    PolicyFactory
		name  string
	}{
		{"CS", 40, 8, FineRegDefault(), "finereg"},
		{"LB", 24, 8, VTRegMutex(0.25), "regmutex"},
		{"SG", 16, 5, RegDRAM(2), "regdram"},
	}
	for _, tc := range cases {
		ref := runSharded(t, tc.bench, tc.grid, tc.sms, 1, tc.pf)
		for _, shards := range []int{2, 3, 4, tc.sms, tc.sms + 7} {
			got := runSharded(t, tc.bench, tc.grid, tc.sms, shards, tc.pf)
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("%s/%s sms=%d: metrics diverge at shards=%d:\nserial:  %+v\nsharded: %+v",
					tc.bench, tc.name, tc.sms, shards, ref, got)
			}
		}
	}
}

// TestShardedProgressSamplesIdentical holds the observation layer to the
// same standard: the sample stream (cycles, deltas, cumulative counts,
// per-run ops) of a sharded run matches the serial run's exactly.
func TestShardedProgressSamplesIdentical(t *testing.T) {
	run := func(shards int) []map[string]int64 {
		var ops []map[string]int64
		cfg := Default().Scale(4)
		cfg.Shards = shards
		cfg.ProgressEvery = 2000
		cfg.Progress = func(s trace.ProgressSample) {
			o := map[string]int64{"cycle": s.Cycle, "instr": s.Instructions, "launched": s.CTAsLaunched}
			for k, v := range s.Ops {
				o[k] = v
			}
			ops = append(ops, o)
		}
		p, _ := kernels.ProfileByName("CS")
		k := kernels.MustBuild(p, 32)
		if _, err := New(cfg, FineRegDefault()).Run(k); err != nil {
			t.Fatal(err)
		}
		return ops
	}
	serial, sharded := run(1), run(4)
	if !reflect.DeepEqual(serial, sharded) {
		t.Fatalf("progress streams diverge:\nserial:  %v\nsharded: %v", serial, sharded)
	}
}

// panicPolicy wraps a working policy and panics inside the first
// OnCTAStalled hook — mid-Tick, on whatever shard owns that SM.
type panicPolicy struct{ sm.Policy }

func (p *panicPolicy) OnCTAStalled(s *sm.SM, c *sm.CTA, now int64) {
	panic("panicPolicy: injected shard fault")
}

// TestShardedPanicSurfacesAsError proves a policy panic in a sharded
// run neither hangs the barrier nor kills the process, whether it lands
// in a parallel round or an inline small step: peers drain, the pool
// shuts down, and Run reports the fault and cycle as an error.
func TestShardedPanicSurfacesAsError(t *testing.T) {
	cfg := Default().Scale(4)
	cfg.Shards = 4
	pf := func(c sm.Config, hier *mem.Hierarchy) sm.Policy {
		return &panicPolicy{Policy: VirtualThread()(c, hier)}
	}
	p, _ := kernels.ProfileByName("CS")
	k := kernels.MustBuild(p, 32)
	_, err := New(cfg, pf).Run(k)
	if err == nil {
		t.Fatal("sharded run with a panicking policy returned no error")
	}
	if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "injected shard fault") {
		t.Fatalf("error does not describe the shard panic: %v", err)
	}
}

// TestEffectiveShards pins the fallback rules: shards clamp to the SM
// count, zero/one and trace-sink runs stay serial.
func TestEffectiveShards(t *testing.T) {
	cfg := Default().Scale(4)
	for _, tc := range []struct{ shards, want int }{
		{0, 1}, {1, 1}, {2, 2}, {4, 4}, {16, 4},
	} {
		cfg.Shards = tc.shards
		g := New(cfg, Baseline())
		if got := g.effectiveShards(); got != tc.want {
			t.Errorf("Shards=%d: effective %d, want %d", tc.shards, got, tc.want)
		}
	}
	cfg.Shards = 4
	g := New(cfg, Baseline())
	g.SetTrace(trace.NewStallAggregator())
	if got := g.effectiveShards(); got != 1 {
		t.Errorf("trace sink attached: effective %d, want 1 (sinks are not shard-safe)", got)
	}
}
