// multi.go is the multi-kernel execution surface: in-order streams
// (RunStream) and MPS-style concurrent kernels on a statically
// partitioned machine (RunConcurrent). Both reuse Run's event loop
// unchanged — a stream is several loop segments on one continuing cycle
// clock, a concurrent run is one segment with a private dispatcher per
// partition — so determinism and shard-compatibility are inherited, not
// re-proven: the loop Ticks SMs in canonical index order (or shard-gated
// to exactly that order), and partition membership only changes which
// dispatcher an SM drains.
package gpu

import (
	"errors"
	"fmt"
	"strings"

	"finereg/internal/kernels"
	"finereg/internal/mem"
	"finereg/internal/sm"
	"finereg/internal/stats"
)

// MultiResult is the outcome of a multi-kernel run: per-kernel metric
// segments plus the combined rollup.
type MultiResult struct {
	// Segments holds per-kernel metrics in submission order. For RunStream,
	// segment i covers kernel i's cycle range (Cycles is the segment's
	// duration, and L2/DRAM deltas are attributable because segments run
	// serially). For RunConcurrent, segment p is partition p's view over
	// the whole run: SM-local counters (instructions, L1, occupancy over
	// the partition's SMs) only — the L2 and DRAM are shared between
	// concurrently-running partitions, so their traffic appears solely in
	// Total.
	Segments []*stats.Metrics
	// Total is the whole run: cumulative counters over every SM, the full
	// cycle count, and the machine-wide L2/DRAM traffic.
	Total *stats.Metrics
}

// machineSnap freezes the machine's cumulative counters so a later
// collectRange can attribute a segment's deltas.
type machineSnap struct {
	cnt      []sm.Counters
	l1A, l1M []int64
	l2A, l2M int64

	dramDemand, dramContext, dramBitvec int64
}

func (g *GPU) snapshot() *machineSnap {
	snap := &machineSnap{
		cnt:         make([]sm.Counters, len(g.SMs)),
		l1A:         make([]int64, len(g.SMs)),
		l1M:         make([]int64, len(g.SMs)),
		l2A:         g.Hier.L2.Accesses,
		l2M:         g.Hier.L2.Misses,
		dramDemand:  g.Hier.DRAM.Bytes(mem.TrafficDemand),
		dramContext: g.Hier.DRAM.Bytes(mem.TrafficContext),
		dramBitvec:  g.Hier.DRAM.Bytes(mem.TrafficBitvec),
	}
	for i, s := range g.SMs {
		snap.cnt[i] = s.Cnt
		snap.l1A[i] = s.L1.Accesses
		snap.l1M[i] = s.L1.Misses
	}
	return snap
}

// collectRange gathers one segment's metrics: counter deltas against snap
// over the given SM subset, occupancy averages from the integrals the
// latest BindKernel restarted (so start must be that bind's cycle), and —
// when shared is set, i.e. no other kernel ran in [start, end) — the
// machine-wide L2/DRAM deltas.
func (g *GPU) collectRange(name string, sms []*sm.SM, snap *machineSnap, start, end int64, shared bool) *stats.Metrics {
	m := &stats.Metrics{
		Benchmark: name,
		Config:    g.SMs[0].Pol.Name(),
		Cycles:    end - start,
	}
	var stallSum float64
	var stallN int64
	var residentInt, activeInt, threadsInt int64
	for _, s := range sms {
		b := snap.cnt[s.ID]
		r, a, th := s.OccupancyIntegrals(end)
		residentInt += r
		activeInt += a
		threadsInt += th
		m.Instructions += s.Cnt.Instructions - b.Instructions
		m.CTAsLaunched += s.Cnt.CTAsLaunched - b.CTAsLaunched
		m.CTASwitches += s.Cnt.CTASwitches - b.CTASwitches
		m.CTAStalls += s.Cnt.CTAStallEvents - b.CTAStallEvents
		m.RFReads += s.Cnt.RFReads - b.RFReads
		m.RFWrites += s.Cnt.RFWrites - b.RFWrites
		m.PCRFReads += s.Cnt.PCRFReads - b.PCRFReads
		m.PCRFWrites += s.Cnt.PCRFWrites - b.PCRFWrites
		m.SharedAccesses += s.Cnt.SharedAccesses - b.SharedAccesses
		m.RegDepletionStallCycles += s.Cnt.DepletionCycles - b.DepletionCycles
		m.L1Accesses += s.L1.Accesses - snap.l1A[s.ID]
		m.L1Misses += s.L1.Misses - snap.l1M[s.ID]
		stallSum += s.Cnt.StallLatencySum - b.StallLatencySum
		stallN += s.Cnt.StallLatencyN - b.StallLatencyN
	}
	if stallN > 0 {
		m.CyclesToFirstStall = stallSum / float64(stallN)
	}
	if d := end - start; d > 0 {
		denom := float64(d) * float64(len(sms))
		m.AvgResidentCTAs = float64(residentInt) / denom
		m.AvgActiveCTAs = float64(activeInt) / denom
		m.AvgActiveThreads = float64(threadsInt) / denom
	}
	if shared {
		m.L2Accesses = g.Hier.L2.Accesses - snap.l2A
		m.L2Misses = g.Hier.L2.Misses - snap.l2M
		m.DRAMDemandBytes = g.Hier.DRAM.Bytes(mem.TrafficDemand) - snap.dramDemand
		m.DRAMContextBytes = g.Hier.DRAM.Bytes(mem.TrafficContext) - snap.dramContext
		m.DRAMBitvecBytes = g.Hier.DRAM.Bytes(mem.TrafficBitvec) - snap.dramBitvec
	}
	return m
}

func joinNames(ks []*kernels.Kernel, sep string) string {
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = k.Name()
	}
	return strings.Join(names, sep)
}

// RunStream executes kernels back-to-back on one machine — an in-order
// stream. The cycle clock continues across kernels (the DRAM channel
// keeps absolute-time state, so rewinding it between kernels would let a
// later kernel see a busy channel as free), each kernel gets a
// per-segment metrics diff, and the rollup's occupancy averages are the
// cycle-weighted combination of the segments — each BindKernel restarts
// the occupancy integrals, so the end-of-run integrals alone would cover
// only the last segment.
func (g *GPU) RunStream(ks ...*kernels.Kernel) (*MultiResult, error) {
	if len(ks) == 0 {
		return nil, errors.New("gpu: empty stream")
	}
	if len(g.disps) != 1 {
		return nil, fmt.Errorf("gpu: RunStream drives an unpartitioned machine (this one has %d partitions)", len(g.disps))
	}
	st := g.startRun()
	res := &MultiResult{Segments: make([]*stats.Metrics, 0, len(ks))}
	var wResident, wActive, wThreads float64
	for _, k := range ks {
		segStart := st.now
		snap := g.snapshot()
		g.bind([]*kernels.Kernel{k}, st)
		if g.sink != nil {
			g.sink.RunStart(k.Name(), len(g.SMs))
		}
		if err := g.runLoop(st); err != nil {
			return nil, err
		}
		if g.sink != nil {
			g.sink.RunEnd(st.now)
		}
		seg := g.collectRange(k.Name(), g.SMs, snap, segStart, st.now, true)
		res.Segments = append(res.Segments, seg)
		w := float64(st.now - segStart)
		wResident += seg.AvgResidentCTAs * w
		wActive += seg.AvgActiveCTAs * w
		wThreads += seg.AvgActiveThreads * w
	}
	if err := g.auditFinal(st); err != nil {
		return nil, err
	}
	g.reconcile(st)
	total := g.collectNamed(joinNames(ks, "+"), st.now)
	if st.now > 0 {
		total.AvgResidentCTAs = wResident / float64(st.now)
		total.AvgActiveCTAs = wActive / float64(st.now)
		total.AvgActiveThreads = wThreads / float64(st.now)
	}
	res.Total = total
	return res, nil
}

// RunConcurrent executes one kernel per partition simultaneously on a
// partitioned machine (Config.Partitions): each partition's private
// dispatcher hands its kernel's CTAs only to that partition's SMs while
// every memory request meets the other tenants in the shared L2 and DRAM
// channel. ks[p] is partition p's kernel. Because partition membership
// only selects a dispatcher, the event core's determinism guarantees
// carry over verbatim: repeat runs — at any shard count — are
// byte-identical, and each partition's instruction count equals the same
// kernel's solo run on a machine of the partition's size (instruction
// streams are timing-independent; only cycle counts feel the contention).
func (g *GPU) RunConcurrent(ks ...*kernels.Kernel) (*MultiResult, error) {
	if len(ks) != len(g.disps) {
		return nil, fmt.Errorf("gpu: %d kernels for %d partitions", len(ks), len(g.disps))
	}
	st := g.startRun()
	snap := g.snapshot()
	g.bind(ks, st)
	name := joinNames(ks, "|")
	if g.sink != nil {
		g.sink.RunStart(name, len(g.SMs))
	}
	if err := g.runLoop(st); err != nil {
		return nil, err
	}
	if err := g.auditFinal(st); err != nil {
		return nil, err
	}
	if g.sink != nil {
		g.sink.RunEnd(st.now)
	}
	g.reconcile(st)
	res := &MultiResult{Segments: make([]*stats.Metrics, 0, len(ks))}
	for p, k := range ks {
		lo, hi := g.spans[p][0], g.spans[p][1]
		res.Segments = append(res.Segments, g.collectRange(k.Name(), g.SMs[lo:hi], snap, 0, st.now, false))
	}
	res.Total = g.collectNamed(name, st.now)
	return res, nil
}
