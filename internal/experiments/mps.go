package experiments

import (
	"fmt"

	"finereg/internal/kernels"
	"finereg/internal/runner"
	"finereg/internal/stats"
	"finereg/internal/workload"
)

// This file is the multi-tenant study enabled by the workload subsystem:
// MPS-style static partitioning (gpu.Config.Partitions) lets two kernels
// share one machine's L2 and DRAM while keeping SM-private resources
// disjoint, so the interference a tenant suffers is purely
// memory-hierarchy contention. Each tenant's reference point is its solo
// run on a machine of its partition's size — same SM count, same L2/DRAM
// share — so the slowdown isolates what co-scheduling costs.

// MPSPair names two benchmarks co-scheduled on one partitioned machine.
type MPSPair struct{ A, B string }

// DefaultMPSPairs mixes the classes: a scheduler-limited tenant against a
// register-limited one (the case FineReg's reclaimed registers help), a
// bandwidth-heavy pair, and a compute-heavy pair.
func DefaultMPSPairs() []MPSPair {
	return []MPSPair{{"CS", "LB"}, {"BF", "SG"}, {"MC", "HS"}}
}

// MPSRow is one pair × policy outcome.
type MPSRow struct {
	Pair   string
	Config ConfigName
	// SlowdownA/SlowdownB divide the tenant's solo IPC (on a machine of
	// its partition's size) by its co-running IPC: 1.0 = no interference.
	SlowdownA, SlowdownB float64
	// Stretch divides the co-run's cycle count by the longer of the two
	// solo runs — how much the shared memory hierarchy stretches the
	// makespan past perfect overlap.
	Stretch float64
	// InstrMatch reports that each partition retired exactly its solo
	// run's instruction count (the determinism acceptance check:
	// instruction streams are timing-independent, so contention may move
	// cycles but never instructions).
	InstrMatch bool
}

// MPSResult reports memory-hierarchy interference under MPS-style
// concurrent execution.
type MPSResult struct{ Rows []MPSRow }

// MPS co-schedules each pair on an evenly split machine (half the SMs per
// tenant, shared L2/DRAM) under Baseline and FineReg, with each tenant's
// solo run on a partition-sized machine as the reference. nil pairs uses
// DefaultMPSPairs. Requires an even SM count.
func MPS(opts Options, pairs []MPSPair) (*MPSResult, error) {
	if opts.SMs < 2 || opts.SMs%2 != 0 {
		return nil, fmt.Errorf("experiments: MPS needs an even SM count, got %d", opts.SMs)
	}
	if pairs == nil {
		pairs = DefaultMPSPairs()
	}
	half := opts.SMs / 2
	ho := opts
	ho.SMs = half
	ho.GridScale = opts.GridScale * float64(half) / float64(opts.SMs)
	configs := []ConfigName{CfgBaseline, CfgFineReg}

	// Per pair × config: tenant A solo, tenant B solo, and the co-run.
	type probe struct {
		pair             MPSPair
		cn               ConfigName
		soloA, soloB, co ref
	}
	var probes []probe
	var jobs []*runner.Job
	add := func(j *runner.Job) ref {
		jobs = append(jobs, j)
		return ref(len(jobs) - 1)
	}
	for _, pr := range pairs {
		profA, err := kernels.ProfileByName(pr.A)
		if err != nil {
			return nil, err
		}
		profB, err := kernels.ProfileByName(pr.B)
		if err != nil {
			return nil, err
		}
		gridA, gridB := ho.grid(&profA), ho.grid(&profB)
		for _, cn := range configs {
			pol, err := specFor(cn)
			if err != nil {
				return nil, err
			}
			co := opts.config()
			co.Partitions = []int{half, half}
			probes = append(probes, probe{pair: pr, cn: cn,
				soloA: add(&runner.Job{Cfg: ho.config(), Profile: profA, Grid: gridA, Policy: pol}),
				soloB: add(&runner.Job{Cfg: ho.config(), Profile: profB, Grid: gridB, Policy: pol}),
				co: add(&runner.Job{Cfg: co, Policy: pol, Programs: []workload.Program{
					{Bench: pr.A, Grid: gridA}, {Bench: pr.B, Grid: gridB},
				}}),
			})
		}
	}

	b, err := opts.dispatch(jobs)
	if err != nil {
		return nil, err
	}
	if err := b.Err(); err != nil {
		return nil, err
	}
	res := &MPSResult{}
	for _, p := range probes {
		sa, sb := b.Results[p.soloA].Metrics, b.Results[p.soloB].Metrics
		co := b.Results[p.co]
		if len(co.Segments) != 2 {
			return nil, fmt.Errorf("experiments: co-run of %s|%s returned %d segments", p.pair.A, p.pair.B, len(co.Segments))
		}
		ca, cb := co.Segments[0], co.Segments[1]
		longest := sa.Cycles
		if sb.Cycles > longest {
			longest = sb.Cycles
		}
		res.Rows = append(res.Rows, MPSRow{
			Pair:       p.pair.A + "|" + p.pair.B,
			Config:     p.cn,
			SlowdownA:  stats.Speedup(sa.IPC(), ca.IPC()),
			SlowdownB:  stats.Speedup(sb.IPC(), cb.IPC()),
			Stretch:    float64(co.Metrics.Cycles) / float64(longest),
			InstrMatch: ca.Instructions == sa.Instructions && cb.Instructions == sb.Instructions,
		})
	}
	return res, nil
}

// Render prints per-tenant interference and makespan stretch per pair.
func (r *MPSResult) Render() string {
	t := &stats.Table{Header: []string{"pair/config", "slowA", "slowB", "stretch", "instr"}}
	for _, row := range r.Rows {
		mark := "=solo"
		if !row.InstrMatch {
			mark = "DRIFT"
		}
		t.AddRow(fmt.Sprintf("%s(%s)", row.Pair, row.Config),
			row.SlowdownA, row.SlowdownB, row.Stretch, mark)
	}
	return "MPS co-scheduling: per-tenant slowdown vs partition-sized solo runs\n" + t.String()
}
