// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections II, III, and VI). Each Figure*/Table* function runs
// the required simulations and returns a result struct that carries both
// the structured data (for tests and benchmarks) and a Render method that
// prints the same rows/series the paper reports.
//
// Absolute numbers differ from the paper (the substrate is this
// repository's simulator, not the authors' GPGPU-Sim testbed); the
// reproduction targets are the shapes — orderings, approximate factors,
// and crossovers — recorded side by side in EXPERIMENTS.md.
package experiments

import (
	"fmt"

	"finereg/internal/energy"
	"finereg/internal/gpu"
	"finereg/internal/kernels"
	"finereg/internal/stats"
)

// Options scales the experiment machinery. Paper() reproduces the Table I
// machine at full workload scale; Quick() is a proportionally shrunken
// machine for tests and `go test -bench`.
type Options struct {
	// SMs is the machine size; the shared L2 and DRAM bandwidth scale
	// proportionally (gpu.Config.Scale).
	SMs int
	// GridScale multiplies every benchmark's grid relative to its 16-SM
	// reference size.
	GridScale float64
	// Benchmarks restricts the suite (nil = all of Table II).
	Benchmarks []string
}

// Paper returns the full-scale configuration of Table I.
func Paper() Options { return Options{SMs: 16, GridScale: 1.0} }

// Quick returns a 4-SM machine with quarter-size grids: per-SM behaviour
// is preserved (resources scale together) while runs stay test-sized.
func Quick() Options { return Options{SMs: 4, GridScale: 0.25} }

func (o Options) benchNames() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return kernels.Names()
}

func (o Options) config() gpu.Config { return gpu.Default().Scale(o.SMs) }

func (o Options) grid(p *kernels.Profile) int {
	g := int(float64(p.GridCTAs)*o.GridScale + 0.5)
	if g < o.SMs {
		g = o.SMs
	}
	return g
}

// profile returns the benchmark profile with its streaming footprint
// scaled to the machine: the shared L2 and DRAM bandwidth scale with SM
// count, so working sets must scale too or a small machine would be
// artificially bandwidth-bound (per-SM hot regions are untouched).
func (o Options) profile(name string) (kernels.Profile, error) {
	p, err := kernels.ProfileByName(name)
	if err != nil {
		return p, err
	}
	scaled := int(float64(p.FootprintKB) * float64(o.SMs) / 16)
	if scaled < 256 {
		scaled = 256
	}
	p.FootprintKB = scaled
	return p, nil
}

// ConfigName labels the paper's GPU configurations.
type ConfigName string

// The evaluated configurations (Figure 12/13 legends).
const (
	CfgBaseline ConfigName = "Baseline"
	CfgVT       ConfigName = "VT"
	CfgRegDRAM  ConfigName = "Reg+DRAM"
	CfgRegMutex ConfigName = "VT+RegMutex"
	CfgFineReg  ConfigName = "FineReg"
)

// StandardConfigs returns the five configurations in plot order.
func StandardConfigs() []ConfigName {
	return []ConfigName{CfgBaseline, CfgVT, CfgRegDRAM, CfgRegMutex, CfgFineReg}
}

// Run is one simulation outcome.
type Run struct {
	Metrics *stats.Metrics
	Energy  energy.Breakdown
	// Windows holds Figure 5 register-usage fractions when tracking was
	// enabled.
	Windows []float64
}

// runOne executes one benchmark under one machine configuration + policy.
func runOne(cfg gpu.Config, prof kernels.Profile, grid int, pf gpu.PolicyFactory, trackReg bool) (*Run, error) {
	cfg.SM.TrackRegUsage = trackReg
	k, err := kernels.Build(prof, grid)
	if err != nil {
		return nil, err
	}
	g := gpu.New(cfg, pf)
	m, err := g.Run(k)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", prof.Abbrev, g.SMs[0].Pol.Name(), err)
	}
	r := &Run{Metrics: m, Energy: energy.Estimate(m, cfg.NumSMs, energy.DefaultCoefficients())}
	if trackReg {
		r.Windows = g.RegWindowFracs()
	}
	return r, nil
}

// runConfig dispatches by configuration name. Reg+DRAM and VT+RegMutex
// follow the paper's per-application tuning methodology: "we varied the
// number of pending CTAs in the off-chip memory to find its
// best-performance setup for every application" (Reg+DRAM, caps {0,2,4})
// and "we merged Virtual Thread into RegMutex to empirically find the
// optimal operating point of RegMutex (i.e., the ratio of BRS and SRP)"
// (SRP fractions {0.10..0.30}). The best run by IPC is reported.
func runConfig(cfg gpu.Config, prof kernels.Profile, grid int, name ConfigName) (*Run, error) {
	switch name {
	case CfgBaseline:
		return runOne(cfg, prof, grid, gpu.Baseline(), false)
	case CfgVT:
		return runOne(cfg, prof, grid, gpu.VirtualThread(), false)
	case CfgRegDRAM:
		var best *Run
		for _, cap := range []int{0, 2, 4} {
			r, err := runOne(cfg, prof, grid, gpu.RegDRAM(cap), false)
			if err != nil {
				return nil, err
			}
			if best == nil || r.Metrics.IPC() > best.Metrics.IPC() {
				best = r
			}
		}
		best.Metrics.Config = string(CfgRegDRAM)
		return best, nil
	case CfgRegMutex:
		var best *Run
		for _, frac := range []float64{0.10, 0.15, 0.20, 0.25, 0.30} {
			r, err := runOne(cfg, prof, grid, gpu.VTRegMutex(frac), false)
			if err != nil {
				return nil, err
			}
			if best == nil || r.Metrics.IPC() > best.Metrics.IPC() {
				best = r
			}
		}
		best.Metrics.Config = string(CfgRegMutex)
		return best, nil
	case CfgFineReg:
		return runOne(cfg, prof, grid, gpu.FineRegDefault(), false)
	default:
		return nil, fmt.Errorf("experiments: unknown configuration %q", name)
	}
}
