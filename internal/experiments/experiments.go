// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections II, III, and VI). Each Figure*/Table* function runs
// the required simulations and returns a result struct that carries both
// the structured data (for tests and benchmarks) and a Render method that
// prints the same rows/series the paper reports.
//
// Absolute numbers differ from the paper (the substrate is this
// repository's simulator, not the authors' GPGPU-Sim testbed); the
// reproduction targets are the shapes — orderings, approximate factors,
// and crossovers — recorded side by side in EXPERIMENTS.md.
package experiments

import (
	"finereg/internal/energy"
	"finereg/internal/gpu"
	"finereg/internal/kernels"
	"finereg/internal/runner"
	"finereg/internal/serve"
	"finereg/internal/stats"
)

// Options scales the experiment machinery. Paper() reproduces the Table I
// machine at full workload scale; Quick() is a proportionally shrunken
// machine for tests and `go test -bench`.
type Options struct {
	// SMs is the machine size; the shared L2 and DRAM bandwidth scale
	// proportionally (gpu.Config.Scale).
	SMs int
	// GridScale multiplies every benchmark's grid relative to its 16-SM
	// reference size.
	GridScale float64
	// Benchmarks restricts the suite (nil = all of Table II).
	Benchmarks []string
	// Runner executes the simulations. nil uses a fresh default engine
	// per experiment (GOMAXPROCS workers, no cache); share one Engine
	// with a cache across experiments to dedup repeated points between
	// figures — finereg-experiments does exactly that.
	Runner *runner.Engine
	// Service, when set, sends every batch to a remote finereg-serve
	// instance instead of the in-process engine (Runner is then ignored).
	// Jobs cross the wire in exact form, so keys, dedup, and caching
	// behave identically to a local run — the tables come back
	// byte-identical.
	Service *serve.Client
	// Audit enables the runtime invariant auditor (internal/audit) on
	// every simulation. Audited and unaudited runs cache separately (the
	// flag is part of gpu.Config and therefore of the job key).
	Audit bool
	// AuditCollect audits in collect-all mode: violations accumulate and
	// the run fails at the end with a *audit.ViolationSet summary instead
	// of aborting at the first drift. Implies Audit; not part of the job
	// key.
	AuditCollect bool
	// Shards sets gpu.Config.Shards on every simulation: the intra-run
	// worker-goroutine count for the sharded event core. Results are
	// byte-identical at any value (it is excluded from the job key);
	// raise it to speed up big single runs on a multi-core host when the
	// engine's job-level parallelism is not already saturating the
	// machine. 0 = serial.
	Shards int
}

// Paper returns the full-scale configuration of Table I.
func Paper() Options { return Options{SMs: 16, GridScale: 1.0} }

// Quick returns a 4-SM machine with quarter-size grids: per-SM behaviour
// is preserved (resources scale together) while runs stay test-sized.
func Quick() Options { return Options{SMs: 4, GridScale: 0.25} }

func (o Options) benchNames() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return kernels.Names()
}

func (o Options) config() gpu.Config {
	cfg := gpu.Default().Scale(o.SMs)
	cfg.Audit = o.Audit || o.AuditCollect
	cfg.AuditCollect = o.AuditCollect
	cfg.Shards = o.Shards
	return cfg
}

func (o Options) grid(p *kernels.Profile) int {
	g := int(float64(p.GridCTAs)*o.GridScale + 0.5)
	if g < o.SMs {
		g = o.SMs
	}
	return g
}

// profile returns the benchmark profile with its streaming footprint
// scaled to the machine: the shared L2 and DRAM bandwidth scale with SM
// count, so working sets must scale too or a small machine would be
// artificially bandwidth-bound (per-SM hot regions are untouched).
func (o Options) profile(name string) (kernels.Profile, error) {
	p, err := kernels.ProfileByName(name)
	if err != nil {
		return p, err
	}
	scaled := int(float64(p.FootprintKB) * float64(o.SMs) / 16)
	if scaled < 256 {
		scaled = 256
	}
	p.FootprintKB = scaled
	return p, nil
}

// ConfigName labels the paper's GPU configurations.
type ConfigName string

// The evaluated configurations (Figure 12/13 legends).
const (
	CfgBaseline ConfigName = "Baseline"
	CfgVT       ConfigName = "VT"
	CfgRegDRAM  ConfigName = "Reg+DRAM"
	CfgRegMutex ConfigName = "VT+RegMutex"
	CfgFineReg  ConfigName = "FineReg"
)

// StandardConfigs returns the five configurations in plot order.
func StandardConfigs() []ConfigName {
	return []ConfigName{CfgBaseline, CfgVT, CfgRegDRAM, CfgRegMutex, CfgFineReg}
}

// Run is one simulation outcome.
type Run struct {
	Metrics *stats.Metrics
	Energy  energy.Breakdown
	// Windows holds Figure 5 register-usage fractions when tracking was
	// enabled.
	Windows []float64
}

// Simulation dispatch lives in exec.go: experiments declare their runs as
// a jobSet and the run engine (internal/runner) schedules, parallelizes,
// and dedups them. The paper's per-application tuning of Reg+DRAM ("we
// varied the number of pending CTAs in the off-chip memory to find its
// best-performance setup for every application", caps {0,2,4}) and
// VT+RegMutex ("we merged Virtual Thread into RegMutex to empirically find
// the optimal operating point of RegMutex", SRP fractions {0.10..0.30})
// is expressed as jobSet.addConfig candidates resolved by pick.best.
