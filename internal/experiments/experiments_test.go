package experiments

import (
	"strings"
	"testing"

	"finereg/internal/kernels"
)

// tiny returns a minimal-cost option set: a 2-SM machine with small grids
// over a benchmark subset, enough to exercise every experiment path.
func tiny(benches ...string) Options {
	o := Options{SMs: 2, GridScale: 0.1}
	if len(benches) > 0 {
		o.Benchmarks = benches
	} else {
		o.Benchmarks = []string{"CS", "LB"}
	}
	return o
}

func TestTableIIRendersAllBenchmarks(t *testing.T) {
	r := TableII()
	if len(r.Rows) != 18 {
		t.Fatalf("%d rows, want 18", len(r.Rows))
	}
	out := r.Render()
	for _, b := range kernels.Names() {
		if !strings.Contains(out, b) {
			t.Errorf("Table II render missing %s", b)
		}
	}
	// Classification in the table must match the limiter semantics.
	for _, row := range r.Rows {
		if row.Limiter.IsScheduling() != (row.Class == kernels.TypeS) {
			t.Errorf("%s: limiter %s inconsistent with class %v", row.Abbrev, row.Limiter, row.Class)
		}
	}
}

func TestFigure2ScalingDirections(t *testing.T) {
	r, err := Figure2(tiny("CS", "LB"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(r.Rows))
	}
	for _, row := range r.Rows {
		for i, sp := range row.Speedup {
			if sp <= 0 {
				t.Errorf("%s %s: speedup %v", row.Bench, Figure2Labels[i], sp)
			}
		}
		// Sched+Mem x2 must be at least as good as either alone (within
		// simulation noise).
		both := row.Speedup[5]
		if both < row.Speedup[1]*0.9 || both < row.Speedup[3]*0.9 {
			t.Errorf("%s: Sched+Mem x2 (%v) should dominate single-resource scaling %v",
				row.Bench, both, row.Speedup)
		}
	}
	if !strings.Contains(r.Render(), "Type-S mean") {
		t.Error("render missing class means")
	}
}

func TestFigure3StaticProperties(t *testing.T) {
	r := Figure3()
	if len(r.Rows) != 18 {
		t.Fatalf("%d rows, want 18", len(r.Rows))
	}
	if r.RegShare < 0.75 || r.RegShare > 0.98 {
		t.Errorf("register share = %.3f, want ~0.887", r.RegShare)
	}
	for _, row := range r.Rows {
		tot := row.RegBytes + row.ShmemBytes
		if tot < 6<<10 || tot > 40<<10 {
			t.Errorf("%s: per-CTA overhead %d outside the paper's 6-37.3KB band", row.Bench, tot)
		}
	}
}

func TestFigure4Ordering(t *testing.T) {
	r, err := Figure4(Options{SMs: 4, GridScale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.NormPerf) != 4 {
		t.Fatalf("%d configs, want 4", len(r.NormPerf))
	}
	if r.NormPerf[0] != 1.0 {
		t.Errorf("baseline must normalize to 1.0, got %v", r.NormPerf[0])
	}
	// Full RF must help CS (the Section III-B observation) and ideal
	// hardware must be the best configuration.
	if r.NormPerf[1] <= 1.0 {
		t.Errorf("Full RF speedup %v, want > 1.0", r.NormPerf[1])
	}
	best := 0
	for i, p := range r.NormPerf {
		if p > r.NormPerf[best] {
			best = i
		}
	}
	if best != 3 {
		t.Errorf("ideal hardware should win, got %s (%v)", r.Labels[best], r.NormPerf)
	}
}

func TestFigure5Bounds(t *testing.T) {
	r, err := Figure5(tiny("CS", "MC"))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.WindowsObserved == 0 {
			t.Errorf("%s: no usage windows observed", row.Bench)
			continue
		}
		if row.Min < 0 || row.Max > 1 || row.Mean < row.Min || row.Mean > row.Max {
			t.Errorf("%s: inconsistent bounds min=%v mean=%v max=%v", row.Bench, row.Min, row.Mean, row.Max)
		}
		if row.Max >= 1.0 {
			t.Errorf("%s: full register file in use (%v) — over-allocation premise broken", row.Bench, row.Max)
		}
	}
	if r.MeanUsage <= 0 || r.MeanUsage >= 1 {
		t.Errorf("suite mean usage = %v, want in (0,1)", r.MeanUsage)
	}
}

func TestTableIIIPositive(t *testing.T) {
	r, err := TableIII(tiny("CS", "LB"))
	if err != nil {
		t.Fatal(err)
	}
	for b, c := range r.Cycles {
		if c <= 0 {
			t.Errorf("%s: cycles-to-stall = %v, want > 0", b, c)
		}
	}
	if !strings.Contains(r.Render(), "Table III") {
		t.Error("render missing title")
	}
}

func TestSweepAndDerivedFigures(t *testing.T) {
	s, err := RunSweep(tiny("CS", "LB"))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Order) != 2 || len(s.Runs["CS"]) != 5 {
		t.Fatalf("sweep shape wrong: %d benches x %d configs", len(s.Order), len(s.Runs["CS"]))
	}
	f12 := Figure12(s)
	f13 := Figure13(s)
	f16 := Figure16(s)
	for _, cn := range StandardConfigs() {
		if f12.Mean[cn][0] <= 0 || f13.Mean[cn][0] <= 0 || f16.Norm[cn] <= 0 {
			t.Errorf("%s: non-positive derived means", cn)
		}
	}
	if f13.Mean[CfgBaseline][0] != 1.0 {
		t.Errorf("baseline speedup = %v, want exactly 1", f13.Mean[CfgBaseline][0])
	}
	if f16.Norm[CfgBaseline] != 1.0 {
		t.Errorf("baseline energy = %v, want exactly 1", f16.Norm[CfgBaseline])
	}
	for _, render := range []string{f12.Render(), f13.Render(), f16.Render()} {
		if !strings.Contains(render, "CS") && !strings.Contains(render, "Baseline") {
			t.Error("render missing expected content")
		}
	}
}

func TestFigure15TrafficNormalized(t *testing.T) {
	opts := tiny()
	opts.Benchmarks = nil // Figure15 uses its own fixed trio
	r, err := Figure15(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range Figure15Benches {
		if r.Traffic[b][CfgBaseline] != 1.0 {
			t.Errorf("%s baseline traffic = %v, want 1.0", b, r.Traffic[b][CfgBaseline])
		}
		// Reg+DRAM may only add traffic, never remove demand.
		if r.Traffic[b][CfgRegDRAM] < 0.9 {
			t.Errorf("%s Reg+DRAM traffic = %v, implausibly low", b, r.Traffic[b][CfgRegDRAM])
		}
		if r.ContextBytes[b][CfgVT] != 0 || r.ContextBytes[b][CfgBaseline] != 0 {
			t.Errorf("%s: VT/baseline must have zero context traffic", b)
		}
	}
}

func TestFigure17SplitsCoverFile(t *testing.T) {
	for _, s := range Figure17Splits {
		if s.ACRF+s.PCRF != 256 {
			t.Errorf("split %d/%d does not cover the 256KB register file", s.ACRF, s.PCRF)
		}
	}
	r, err := Figure17(tiny("CS", "LB"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.NormPerf) != len(Figure17Splits) {
		t.Fatalf("%d results, want %d", len(r.NormPerf), len(Figure17Splits))
	}
}

func TestFigure18ScalesWorkload(t *testing.T) {
	opts := tiny()
	r, err := Figure18(opts, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("%d points, want 2", len(r.Points))
	}
	for _, p := range r.Points {
		if p.FineRegSpeedup <= 0 || p.ResourceSpeedup <= 0 {
			t.Errorf("SMs=%d: non-positive speedups %+v", p.SMs, p)
		}
		if p.OverheadMB < 0 {
			t.Errorf("SMs=%d: negative overhead", p.SMs)
		}
	}
	if r.Points[1].OverheadMB <= r.Points[0].OverheadMB {
		t.Error("resource overhead must grow with machine size")
	}
}

func TestFigure19UMOrdering(t *testing.T) {
	r, err := Figure19(tiny("BI", "LB"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Mean[2] < r.Mean[0] {
		t.Errorf("FineReg+UM (%v) should beat UM-only (%v)", r.Mean[2], r.Mean[0])
	}
}

func TestUnknownConfigRejected(t *testing.T) {
	prof, _ := kernels.ProfileByName("CS")
	set := tiny().newSet()
	if _, err := set.addConfig(tiny().config(), prof, 4, ConfigName("bogus")); err == nil {
		t.Error("addConfig should reject an unknown configuration")
	}
	if _, err := specFor(ConfigName("bogus")); err == nil {
		t.Error("specFor should reject an unknown configuration")
	}
}

func TestOptionsProfileScalesFootprint(t *testing.T) {
	p16, err := Paper().profile("CS")
	if err != nil {
		t.Fatal(err)
	}
	p4, err := Quick().profile("CS")
	if err != nil {
		t.Fatal(err)
	}
	if p4.FootprintKB*4 != p16.FootprintKB {
		t.Errorf("footprint scaling: 4-SM %dKB vs 16-SM %dKB", p4.FootprintKB, p16.FootprintKB)
	}
	orig, _ := kernels.ProfileByName("CS")
	if p16.FootprintKB != orig.FootprintKB {
		t.Error("16-SM options must not alter the reference footprint")
	}
}
