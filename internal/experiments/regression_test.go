package experiments

import (
	"testing"

	"finereg/internal/runner"
)

// TestFigure2BarrierRegression pins the barrier-park scheduler bug: SG's
// per-iteration CTA barriers once deadlocked under Figure 2's scaled
// configurations because parked warps stayed schedulable and corrupted the
// awake-warp accounting.
func TestFigure2BarrierRegression(t *testing.T) {
	o := Quick()
	o.Benchmarks = []string{"SG"}
	if _, err := Figure2(o); err != nil {
		t.Fatal(err)
	}
}

// TestFineRegAdmissionControlRegression pins the PR 3 PCRF
// overcommit-thrash fix on the cell where it was worst. FD's quick-scale
// point runs many CTAs whose live sets are far below the free-space
// monitor's granule, so before the fix stall-driven switches kept
// launching fresh CTAs until the pending population outgrew the PCRF;
// depletion blocks then pinned stalled CTAs in the ACRF and
// register-depletion stalls burned ~8% of all cycles (enough to drop
// FineReg below VT+RegMutex on the headline sweep). With launch
// admission control the same cell runs essentially depletion-free.
func TestFineRegAdmissionControlRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full quick-scale simulation cell")
	}
	o := Quick()
	prof, err := o.profile("FD")
	if err != nil {
		t.Fatal(err)
	}
	s := o.newSet()
	r := s.add(o.config(), prof, o.grid(&prof), runner.FineRegDefault(), false)
	runs, err := s.run()
	if err != nil {
		t.Fatal(err)
	}
	m := runs[r].Metrics
	if m.CTASwitches == 0 {
		t.Fatal("FD/FineReg performed no CTA switches; the cell no longer exercises the PCRF")
	}
	// RegDepletionStallCycles sums over SMs: compare against the total
	// SM-cycle budget (Cycles × SMs) for the per-SM 5% threshold.
	if 20*m.RegDepletionStallCycles > m.Cycles*int64(o.SMs) {
		t.Errorf("register-depletion stalls %d of %d SM-cycles (>5%%): PCRF launch admission control has regressed",
			m.RegDepletionStallCycles, m.Cycles*int64(o.SMs))
	}
}
