package experiments

import "testing"

// TestFigure2BarrierRegression pins the barrier-park scheduler bug: SG's
// per-iteration CTA barriers once deadlocked under Figure 2's scaled
// configurations because parked warps stayed schedulable and corrupted the
// awake-warp accounting.
func TestFigure2BarrierRegression(t *testing.T) {
	o := Quick()
	o.Benchmarks = []string{"SG"}
	if _, err := Figure2(o); err != nil {
		t.Fatal(err)
	}
}
