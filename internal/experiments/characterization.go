package experiments

import (
	"fmt"
	"sort"
	"strings"

	"finereg/internal/kernels"
	"finereg/internal/runner"
	"finereg/internal/stats"
)

// ---- Table II ----

// TableIIRow describes one benchmark's classification.
type TableIIRow struct {
	Abbrev, Name, Suite string
	Class               kernels.Type
	Limiter             kernels.Limiter
	OccupancyCTAs       int
}

// TableIIResult is the benchmark table with the occupancy limiter that
// produced each classification.
type TableIIResult struct{ Rows []TableIIRow }

// TableII reproduces the benchmark classification of Table II under the
// Table I per-SM limits.
func TableII() *TableIIResult {
	limits := kernels.Limits{
		MaxCTAs: 32, MaxWarps: 64, MaxThreads: 2048,
		RegFileBytes: 256 << 10, SharedMemBytes: 96 << 10,
	}
	res := &TableIIResult{}
	for _, name := range kernels.Names() {
		p, err := kernels.ProfileByName(name)
		if err != nil {
			panic(err) // Names() and ProfileByName share one table
		}
		ctas, lim := p.Occupancy(limits)
		res.Rows = append(res.Rows, TableIIRow{
			Abbrev: p.Abbrev, Name: p.Name, Suite: p.Suite,
			Class: p.Class, Limiter: lim, OccupancyCTAs: ctas,
		})
	}
	return res
}

// Render prints the table.
func (r *TableIIResult) Render() string {
	t := &stats.Table{Header: []string{"bench", "application", "suite", "class", "limiter", "CTAs/SM"}}
	for _, row := range r.Rows {
		t.AddRow(row.Abbrev, row.Name, row.Suite, row.Class.String(), string(row.Limiter), row.OccupancyCTAs)
	}
	return "Table II. Benchmark applications and their baseline scheduling limit\n" + t.String()
}

// ---- Figure 2 ----

// Figure2Row holds one benchmark's speedups under scaled resources.
type Figure2Row struct {
	Bench string
	Class kernels.Type
	// Speedups over the unscaled baseline, indexed like Figure2Labels.
	Speedup [6]float64
}

// Figure2Labels names the six scaled configurations of Figure 2.
var Figure2Labels = [6]string{
	"Sched x1.5", "Sched x2", "Mem x1.5", "Mem x2", "Sched+Mem x1.5", "Sched+Mem x2",
}

// Figure2Result reports performance sensitivity to scheduling resources vs
// on-chip memory, the Type-S/Type-R motivation experiment.
type Figure2Result struct {
	Rows []Figure2Row
	// TypeSMean and TypeRMean are the per-class geometric means.
	TypeSMean, TypeRMean [6]float64
}

// Figure2 runs every benchmark on the baseline policy with scheduling
// resources and/or on-chip memory scaled by 1.5x and 2x.
func Figure2(opts Options) (*Figure2Result, error) {
	type variant struct {
		sched, memv float64
	}
	variants := []variant{{1.5, 1}, {2, 1}, {1, 1.5}, {1, 2}, {1.5, 1.5}, {2, 2}}
	res := &Figure2Result{}
	var sVals, rVals [6][]float64
	set := opts.newSet()
	type row struct {
		bench    string
		class    kernels.Type
		baseRef  ref
		variants [6]ref
	}
	var rows []row
	for _, name := range opts.benchNames() {
		prof, err := opts.profile(name)
		if err != nil {
			return nil, err
		}
		grid := opts.grid(&prof)
		r := row{bench: name, class: prof.Class}
		r.baseRef = set.add(opts.config(), prof, grid, runner.Baseline(), false)
		for i, v := range variants {
			cfg := opts.config()
			cfg.SM.MaxCTAs = int(float64(cfg.SM.MaxCTAs) * v.sched)
			cfg.SM.MaxWarps = int(float64(cfg.SM.MaxWarps) * v.sched)
			cfg.SM.MaxThreads = int(float64(cfg.SM.MaxThreads) * v.sched)
			cfg.SM.RegFileBytes = int(float64(cfg.SM.RegFileBytes) * v.memv)
			cfg.SM.SharedMemBytes = int(float64(cfg.SM.SharedMemBytes) * v.memv)
			r.variants[i] = set.add(cfg, prof, grid, runner.Baseline(), false)
		}
		rows = append(rows, r)
	}
	runs, err := set.run()
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		base := runs[r.baseRef]
		out := Figure2Row{Bench: r.bench, Class: r.class}
		for i := range variants {
			out.Speedup[i] = stats.Speedup(runs[r.variants[i]].Metrics.IPC(), base.Metrics.IPC())
			if r.class == kernels.TypeS {
				sVals[i] = append(sVals[i], out.Speedup[i])
			} else {
				rVals[i] = append(rVals[i], out.Speedup[i])
			}
		}
		res.Rows = append(res.Rows, out)
	}
	for i := range variants {
		res.TypeSMean[i] = stats.Geomean(sVals[i])
		res.TypeRMean[i] = stats.Geomean(rVals[i])
	}
	return res, nil
}

// Render prints per-benchmark speedups and the per-class means.
func (r *Figure2Result) Render() string {
	t := &stats.Table{Header: append([]string{"bench"}, Figure2Labels[:]...)}
	for _, row := range r.Rows {
		vals := make([]any, len(row.Speedup))
		for i, v := range row.Speedup {
			vals[i] = v
		}
		t.AddRow(fmt.Sprintf("%s(%s)", row.Bench, row.Class), vals...)
	}
	sRow := make([]any, 6)
	rRow := make([]any, 6)
	for i := 0; i < 6; i++ {
		sRow[i] = r.TypeSMean[i]
		rRow[i] = r.TypeRMean[i]
	}
	t.AddRow("Type-S mean", sRow...)
	t.AddRow("Type-R mean", rRow...)
	return "Figure 2. Speedup from scaling scheduling resources vs on-chip memory\n" + t.String()
}

// ---- Figure 3 ----

// Figure3Row is one benchmark's per-CTA on-chip cost.
type Figure3Row struct {
	Bench                string
	RegBytes, ShmemBytes int
}

// Figure3Result reports the memory overhead of scheduling one more CTA.
type Figure3Result struct {
	Rows []Figure3Row
	// RegShare is the register fraction of total overhead across the
	// suite (the paper reports 88.7%).
	RegShare float64
}

// Figure3 computes the static per-CTA register + shared-memory overhead.
func Figure3() *Figure3Result {
	res := &Figure3Result{}
	var reg, tot float64
	for _, name := range kernels.Names() {
		p, _ := kernels.ProfileByName(name)
		res.Rows = append(res.Rows, Figure3Row{
			Bench: name, RegBytes: p.RegBytesPerCTA(), ShmemBytes: p.SharedMem,
		})
		reg += float64(p.RegBytesPerCTA())
		tot += float64(p.CTAOverheadBytes())
	}
	res.RegShare = reg / tot
	return res
}

// Render prints the overhead table.
func (r *Figure3Result) Render() string {
	t := &stats.Table{Header: []string{"bench", "Reg KB", "Shmem KB", "total KB"}}
	for _, row := range r.Rows {
		t.AddRow(row.Bench,
			float64(row.RegBytes)/1024, float64(row.ShmemBytes)/1024,
			float64(row.RegBytes+row.ShmemBytes)/1024)
	}
	return fmt.Sprintf("Figure 3. Per-CTA on-chip overhead (registers account for %.1f%%)\n%s",
		100*r.RegShare, t.String())
}

// ---- Figure 4 ----

// Figure4Result is the Convolution Separable case study: Baseline,
// Full RF (Virtual Thread-like), Full RF + DRAM (Zorua-like) and ideal
// hardware.
type Figure4Result struct {
	Labels        []string
	NormPerf      []float64
	ActiveThreads []float64
}

// Figure4 runs the CS benchmark under the four Section III-B setups.
func Figure4(opts Options) (*Figure4Result, error) {
	prof, err := opts.profile("CS")
	if err != nil {
		return nil, err
	}
	grid := opts.grid(&prof)
	res := &Figure4Result{Labels: []string{"Baseline", "Full RF", "Full RF+DRAM", "Ideal"}}

	set := opts.newSet()
	baseRef := set.add(opts.config(), prof, grid, runner.Baseline(), false)
	fullRFRef := set.add(opts.config(), prof, grid, runner.VirtualThread(), false)
	dramPick, err := set.addConfig(opts.config(), prof, grid, CfgRegDRAM)
	if err != nil {
		return nil, err
	}
	ideal := opts.config()
	ideal.SM.MaxCTAs *= 8
	ideal.SM.MaxWarps *= 8
	ideal.SM.MaxThreads *= 8
	ideal.SM.RegFileBytes *= 8
	ideal.SM.SharedMemBytes *= 8
	idealRef := set.add(ideal, prof, grid, runner.Baseline(), false)

	runs, err := set.run()
	if err != nil {
		return nil, err
	}
	base := runs[baseRef]
	for _, r := range []*Run{base, runs[fullRFRef], dramPick.best(runs), runs[idealRef]} {
		res.NormPerf = append(res.NormPerf, stats.Speedup(r.Metrics.IPC(), base.Metrics.IPC()))
		res.ActiveThreads = append(res.ActiveThreads, r.Metrics.AvgActiveThreads)
	}
	return res, nil
}

// Render prints the case-study bars.
func (r *Figure4Result) Render() string {
	t := &stats.Table{Header: []string{"config", "norm perf", "active threads/SM"}}
	for i, l := range r.Labels {
		t.AddRow(l, r.NormPerf[i], r.ActiveThreads[i])
	}
	return "Figure 4. CS case study: register-file relaxations vs ideal hardware\n" + t.String()
}

// ---- Figure 5 ----

// Figure5Row summarizes one benchmark's register-usage windows.
type Figure5Row struct {
	Bench           string
	Min, Mean, Max  float64
	WindowsObserved int
}

// Figure5Result reports the fraction of allocated registers actually
// accessed per 1000-instruction window.
type Figure5Result struct {
	Rows []Figure5Row
	// MeanUsage is the suite-wide average (paper: 55.3%).
	MeanUsage float64
}

// Figure5 runs every benchmark on the baseline with register-usage
// tracking enabled.
func Figure5(opts Options) (*Figure5Result, error) {
	res := &Figure5Result{}
	var all []float64
	set := opts.newSet()
	var benches []string
	for _, name := range opts.benchNames() {
		prof, err := opts.profile(name)
		if err != nil {
			return nil, err
		}
		set.add(opts.config(), prof, opts.grid(&prof), runner.Baseline(), true)
		benches = append(benches, name)
	}
	runs, err := set.run()
	if err != nil {
		return nil, err
	}
	for i, name := range benches {
		r := runs[i]
		row := Figure5Row{Bench: name, Min: 1, WindowsObserved: len(r.Windows)}
		for _, f := range r.Windows {
			if f < row.Min {
				row.Min = f
			}
			if f > row.Max {
				row.Max = f
			}
			row.Mean += f
			all = append(all, f)
		}
		if n := len(r.Windows); n > 0 {
			row.Mean /= float64(n)
		} else {
			row.Min = 0
		}
		res.Rows = append(res.Rows, row)
	}
	res.MeanUsage = stats.Mean(all)
	return res, nil
}

// Render prints per-benchmark usage bounds.
func (r *Figure5Result) Render() string {
	t := &stats.Table{Header: []string{"bench", "min %", "mean %", "max %", "windows"}}
	for _, row := range r.Rows {
		t.AddRow(row.Bench, 100*row.Min, 100*row.Mean, 100*row.Max, row.WindowsObserved)
	}
	return fmt.Sprintf("Figure 5. Register file usage per 1000-instruction window (suite mean %.1f%%)\n%s",
		100*r.MeanUsage, t.String())
}

// ---- Table III ----

// TableIIIResult reports the average cycles from a CTA's first issue to
// its first complete stall.
type TableIIIResult struct {
	Cycles map[string]float64
}

// TableIII measures CTA time-to-full-stall on the baseline.
func TableIII(opts Options) (*TableIIIResult, error) {
	res := &TableIIIResult{Cycles: map[string]float64{}}
	set := opts.newSet()
	var benches []string
	for _, name := range opts.benchNames() {
		prof, err := opts.profile(name)
		if err != nil {
			return nil, err
		}
		set.add(opts.config(), prof, opts.grid(&prof), runner.Baseline(), false)
		benches = append(benches, name)
	}
	runs, err := set.run()
	if err != nil {
		return nil, err
	}
	for i, name := range benches {
		res.Cycles[name] = runs[i].Metrics.CyclesToFirstStall
	}
	return res, nil
}

// Render prints the stall-latency table.
func (r *TableIIIResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Table III. Average CTA execution time until complete stall\n")
	t := &stats.Table{Header: []string{"app", "# cycles"}}
	keys := make([]string, 0, len(r.Cycles))
	for k := range r.Cycles {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t.AddRow(k, fmt.Sprintf("%.0f", r.Cycles[k]))
	}
	sb.WriteString(t.String())
	return sb.String()
}
