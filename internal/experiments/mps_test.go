package experiments

import (
	"strings"
	"testing"
)

func TestMPSInterference(t *testing.T) {
	opts := Quick()
	opts.Audit = true // partition accounting invariants run on every co-run
	res, err := MPS(opts, []MPSPair{{"CS", "LB"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // Baseline + FineReg
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.InstrMatch {
			t.Errorf("%s(%s): partition instruction counts drifted from solo runs", row.Pair, row.Config)
		}
		if row.SlowdownA <= 0 || row.SlowdownB <= 0 || row.Stretch <= 0 {
			t.Errorf("%s(%s): non-positive interference figures: %+v", row.Pair, row.Config, row)
		}
	}
	if out := res.Render(); !strings.Contains(out, "CS|LB(Baseline)") || !strings.Contains(out, "=solo") {
		t.Errorf("render missing expected rows:\n%s", out)
	}
}

func TestMPSRejectsOddMachines(t *testing.T) {
	opts := Quick()
	opts.SMs = 3
	if _, err := MPS(opts, nil); err == nil {
		t.Error("odd SM count accepted")
	}
}
