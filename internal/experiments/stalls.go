package experiments

import (
	"fmt"

	"finereg/internal/stats"
)

// StallRun is one traced simulation: its metrics with the stall breakdown
// attached (Metrics.Stalls is always non-nil here).
type StallRun struct {
	Metrics *stats.Metrics
}

// StallReport holds the traced runs of a benchmark × configuration sweep,
// bucketing every warp-slot cycle by why the warp did not issue.
type StallReport struct {
	Configs []ConfigName
	Runs    map[string]map[ConfigName]*StallRun // benchmark -> config -> run
}

// StallBreakdowns runs each benchmark under each configuration with a
// stall-attribution aggregator attached (Job.Stalls — the engine verifies
// the accounting partition per job). Unlike the sweep it does not
// per-application-tune Reg+DRAM/RegMutex (a traced run is a diagnostic
// probe, not a reported score): it uses the paper's default operating
// points (DRAM cap 4, SRP 0.25) via specFor.
func StallBreakdowns(o Options, configs []ConfigName) (*StallReport, error) {
	if len(configs) == 0 {
		configs = StandardConfigs()
	}
	type cell struct {
		bench string
		cn    ConfigName
		r     ref
	}
	set := o.newSet()
	var cells []cell
	for _, name := range o.benchNames() {
		prof, err := o.profile(name)
		if err != nil {
			return nil, err
		}
		for _, cn := range configs {
			pol, err := specFor(cn)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell{
				bench: name, cn: cn,
				r: set.addTraced(o.config(), prof, o.grid(&prof), pol),
			})
		}
	}
	runs, err := set.run()
	if err != nil {
		return nil, err
	}
	rep := &StallReport{Configs: configs, Runs: map[string]map[ConfigName]*StallRun{}}
	for _, c := range cells {
		if rep.Runs[c.bench] == nil {
			rep.Runs[c.bench] = map[ConfigName]*StallRun{}
		}
		m := runs[c.r].Metrics
		m.Config = string(c.cn)
		rep.Runs[c.bench][c.cn] = &StallRun{Metrics: m}
	}
	return rep, nil
}

// Render prints one row per benchmark × configuration with the share of
// warp-slot cycles in each bucket.
func (r *StallReport) Render() string {
	t := &stats.Table{Header: []string{
		"bench/config", "slotCyc", "issue%", "idle%", "sboard%", "mem%", "xfer%", "deplete%", "bar%",
	}}
	pct := func(v, total int64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(v) / float64(total)
	}
	for _, bench := range stats.SortedKeys(r.Runs) {
		for _, cn := range r.Configs {
			run := r.Runs[bench][cn]
			if run == nil {
				continue
			}
			s := run.Metrics.Stalls
			t.AddRow(fmt.Sprintf("%s/%s", bench, cn),
				s.WarpSlotCycles,
				pct(s.IssueCycles, s.WarpSlotCycles),
				pct(s.IdleCycles, s.WarpSlotCycles),
				pct(s.ScoreboardCycles, s.WarpSlotCycles),
				pct(s.MemoryCycles, s.WarpSlotCycles),
				pct(s.TransferCycles, s.WarpSlotCycles),
				pct(s.RegDepletionCycles, s.WarpSlotCycles),
				pct(s.BarrierCycles, s.WarpSlotCycles))
		}
	}
	return t.String()
}
