package experiments

import (
	"fmt"

	"finereg/internal/gpu"
	"finereg/internal/kernels"
	"finereg/internal/stats"
	"finereg/internal/trace"
)

// StallRun is one traced simulation: its metrics with the stall breakdown
// attached (Metrics.Stalls is always non-nil here).
type StallRun struct {
	Metrics *stats.Metrics
}

// StallReport holds the traced runs of a benchmark × configuration sweep,
// bucketing every warp-slot cycle by why the warp did not issue.
type StallReport struct {
	Configs []ConfigName
	Runs    map[string]map[ConfigName]*StallRun // benchmark -> config -> run
}

// StallBreakdowns runs each benchmark under each configuration with a
// stall-attribution aggregator attached. Unlike runConfig it does not
// per-application-tune Reg+DRAM/RegMutex (a traced run is a diagnostic
// probe, not a reported score): it uses the paper's default operating
// points (DRAM cap 4, SRP 0.25).
func StallBreakdowns(o Options, configs []ConfigName) (*StallReport, error) {
	if len(configs) == 0 {
		configs = StandardConfigs()
	}
	rep := &StallReport{Configs: configs, Runs: map[string]map[ConfigName]*StallRun{}}
	for _, name := range o.benchNames() {
		prof, err := o.profile(name)
		if err != nil {
			return nil, err
		}
		rep.Runs[name] = map[ConfigName]*StallRun{}
		for _, cn := range configs {
			pf, err := factoryFor(cn)
			if err != nil {
				return nil, err
			}
			r, err := tracedRun(o.config(), prof, o.grid(&prof), pf)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, cn, err)
			}
			r.Metrics.Config = string(cn)
			rep.Runs[name][cn] = r
		}
	}
	return rep, nil
}

// factoryFor maps a configuration name to its default-operating-point
// policy factory.
func factoryFor(cn ConfigName) (gpu.PolicyFactory, error) {
	switch cn {
	case CfgBaseline:
		return gpu.Baseline(), nil
	case CfgVT:
		return gpu.VirtualThread(), nil
	case CfgRegDRAM:
		return gpu.RegDRAM(4), nil
	case CfgRegMutex:
		return gpu.VTRegMutex(0.25), nil
	case CfgFineReg:
		return gpu.FineRegDefault(), nil
	}
	return nil, fmt.Errorf("experiments: unknown configuration %q", cn)
}

// tracedRun executes one simulation with a stall aggregator attached and
// verifies the accounting partition before returning.
func tracedRun(cfg gpu.Config, prof kernels.Profile, grid int, pf gpu.PolicyFactory) (*StallRun, error) {
	k, err := kernels.Build(prof, grid)
	if err != nil {
		return nil, err
	}
	agg := trace.NewStallAggregator()
	g := gpu.New(cfg, pf)
	g.SetTrace(agg)
	m, err := g.Run(k)
	if err != nil {
		return nil, err
	}
	b := agg.Breakdown()
	if err := b.Check(); err != nil {
		return nil, fmt.Errorf("stall accounting: %w", err)
	}
	m.Stalls = b
	return &StallRun{Metrics: m}, nil
}

// Render prints one row per benchmark × configuration with the share of
// warp-slot cycles in each bucket.
func (r *StallReport) Render() string {
	t := &stats.Table{Header: []string{
		"bench/config", "slotCyc", "issue%", "idle%", "sboard%", "mem%", "xfer%", "deplete%", "bar%",
	}}
	pct := func(v, total int64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(v) / float64(total)
	}
	for _, bench := range stats.SortedKeys(r.Runs) {
		for _, cn := range r.Configs {
			run := r.Runs[bench][cn]
			if run == nil {
				continue
			}
			s := run.Metrics.Stalls
			t.AddRow(fmt.Sprintf("%s/%s", bench, cn),
				s.WarpSlotCycles,
				pct(s.IssueCycles, s.WarpSlotCycles),
				pct(s.IdleCycles, s.WarpSlotCycles),
				pct(s.ScoreboardCycles, s.WarpSlotCycles),
				pct(s.MemoryCycles, s.WarpSlotCycles),
				pct(s.TransferCycles, s.WarpSlotCycles),
				pct(s.RegDepletionCycles, s.WarpSlotCycles),
				pct(s.BarrierCycles, s.WarpSlotCycles))
		}
	}
	return t.String()
}
