package experiments

import (
	"fmt"

	"finereg/internal/kernels"
	"finereg/internal/runner"
	"finereg/internal/stats"
)

// Sweep holds the five-configuration comparison over the benchmark suite
// that backs Figures 12, 13, 15 and 16. Results are keyed
// [benchmark][config].
type Sweep struct {
	Order   []string
	Configs []ConfigName
	Runs    map[string]map[ConfigName]*Run
}

// RunSweep executes every benchmark under every standard configuration
// (tuning candidates included) as one job batch.
func RunSweep(opts Options) (*Sweep, error) {
	s := &Sweep{Configs: StandardConfigs(), Runs: map[string]map[ConfigName]*Run{}}
	set := opts.newSet()
	type cell struct {
		bench string
		cn    ConfigName
		p     pick
	}
	var cells []cell
	for _, name := range opts.benchNames() {
		prof, err := opts.profile(name)
		if err != nil {
			return nil, err
		}
		grid := opts.grid(&prof)
		s.Order = append(s.Order, name)
		s.Runs[name] = map[ConfigName]*Run{}
		for _, cn := range s.Configs {
			p, err := set.addConfig(opts.config(), prof, grid, cn)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell{name, cn, p})
		}
	}
	runs, err := set.run()
	if err != nil {
		return nil, err
	}
	for _, c := range cells {
		s.Runs[c.bench][c.cn] = c.p.best(runs)
	}
	return s, nil
}

// classOf returns a benchmark's Type.
func classOf(name string) kernels.Type {
	p, err := kernels.ProfileByName(name)
	if err != nil {
		panic(err)
	}
	return p.Class
}

// meanRatio computes the per-class and overall geometric means of
// metric(cfg)/metric(baseline).
func (s *Sweep) meanRatio(cfg ConfigName, metric func(*Run) float64) (all, typeS, typeR float64) {
	var a, sv, rv []float64
	for _, b := range s.Order {
		ratio := stats.Speedup(metric(s.Runs[b][cfg]), metric(s.Runs[b][CfgBaseline]))
		a = append(a, ratio)
		if classOf(b) == kernels.TypeS {
			sv = append(sv, ratio)
		} else {
			rv = append(rv, ratio)
		}
	}
	return stats.Geomean(a), stats.Geomean(sv), stats.Geomean(rv)
}

// ---- Figure 12 ----

// Figure12Result reports concurrent (resident) CTA counts.
type Figure12Result struct {
	Sweep *Sweep
	// Mean[cfg] = {overall, Type-S, Type-R} geometric-mean CTA ratio vs
	// baseline.
	Mean map[ConfigName][3]float64
}

// Figure12 derives the concurrent-CTA comparison from a sweep.
func Figure12(s *Sweep) *Figure12Result {
	res := &Figure12Result{Sweep: s, Mean: map[ConfigName][3]float64{}}
	for _, cn := range s.Configs {
		all, ts, tr := s.meanRatio(cn, func(r *Run) float64 { return r.Metrics.AvgResidentCTAs })
		res.Mean[cn] = [3]float64{all, ts, tr}
	}
	return res
}

// Render prints per-benchmark resident CTAs and the class means.
func (r *Figure12Result) Render() string {
	t := &stats.Table{Header: []string{"bench", "Baseline", "VT", "Reg+DRAM", "VT+RegMutex", "FineReg"}}
	for _, b := range r.Sweep.Order {
		vals := make([]any, 0, 5)
		for _, cn := range r.Sweep.Configs {
			vals = append(vals, r.Sweep.Runs[b][cn].Metrics.AvgResidentCTAs)
		}
		t.AddRow(b, vals...)
	}
	out := "Figure 12. Concurrent CTAs per SM\n" + t.String()
	out += fmt.Sprintf("Mean CTA ratio vs baseline: VT %.2fx, Reg+DRAM %.2fx, VT+RegMutex %.2fx, FineReg %.2fx\n",
		r.Mean[CfgVT][0], r.Mean[CfgRegDRAM][0], r.Mean[CfgRegMutex][0], r.Mean[CfgFineReg][0])
	out += fmt.Sprintf("FineReg by class: Type-S %.2fx, Type-R %.2fx\n",
		r.Mean[CfgFineReg][1], r.Mean[CfgFineReg][2])
	return out
}

// ---- Figure 13 ----

// Figure13Result reports normalized IPC.
type Figure13Result struct {
	Sweep *Sweep
	Mean  map[ConfigName][3]float64
}

// Figure13 derives the normalized-performance comparison from a sweep.
func Figure13(s *Sweep) *Figure13Result {
	res := &Figure13Result{Sweep: s, Mean: map[ConfigName][3]float64{}}
	for _, cn := range s.Configs {
		all, ts, tr := s.meanRatio(cn, func(r *Run) float64 { return r.Metrics.IPC() })
		res.Mean[cn] = [3]float64{all, ts, tr}
	}
	return res
}

// Speedup returns one benchmark's IPC ratio under cfg vs baseline.
func (r *Figure13Result) Speedup(bench string, cfg ConfigName) float64 {
	return stats.Speedup(r.Sweep.Runs[bench][cfg].Metrics.IPC(),
		r.Sweep.Runs[bench][CfgBaseline].Metrics.IPC())
}

// Render prints normalized IPC per benchmark plus means.
func (r *Figure13Result) Render() string {
	t := &stats.Table{Header: []string{"bench", "VT", "Reg+DRAM", "VT+RegMutex", "FineReg"}}
	for _, b := range r.Sweep.Order {
		vals := make([]any, 0, 4)
		for _, cn := range r.Sweep.Configs[1:] {
			vals = append(vals, r.Speedup(b, cn))
		}
		t.AddRow(b, vals...)
	}
	out := "Figure 13. Normalized IPC vs baseline\n" + t.String()
	out += fmt.Sprintf("Geomean speedup: VT %.3f, Reg+DRAM %.3f, VT+RegMutex %.3f, FineReg %.3f\n",
		r.Mean[CfgVT][0], r.Mean[CfgRegDRAM][0], r.Mean[CfgRegMutex][0], r.Mean[CfgFineReg][0])
	out += fmt.Sprintf("FineReg by class: Type-S %.3f, Type-R %.3f\n",
		r.Mean[CfgFineReg][1], r.Mean[CfgFineReg][2])
	return out
}

// ---- Figure 14 ----

// Figure14Result reports (a) the best SRP fraction per benchmark and (b)
// register-depletion stall fractions for the memory-intensive trio.
type Figure14Result struct {
	// BestSRP maps benchmark -> SRP fraction with peak VT+RegMutex IPC.
	BestSRP map[string]float64
	// MeanSRP / MeanSRPMemIntensive are the averages the paper quotes
	// (28.1% overall, 20.8% for KM/SY2/BF).
	MeanSRP, MeanSRPMemIntensive float64
	// StallFrac[bench][0] = RegMutex, [1] = FineReg depletion stall
	// fraction of total cycles, for the memory-intensive benchmarks.
	StallFrac map[string][2]float64
}

// MemIntensive is the trio the paper analyses in Figure 14(b).
var MemIntensive = []string{"KM", "SY2", "BF"}

// Figure14 sweeps the RegMutex SRP fraction and measures depletion stalls.
func Figure14(opts Options) (*Figure14Result, error) {
	res := &Figure14Result{BestSRP: map[string]float64{}, StallFrac: map[string][2]float64{}}
	fracs := []float64{0.10, 0.15, 0.20, 0.25, 0.30, 0.35}
	memIntensive := map[string]bool{}
	for _, b := range MemIntensive {
		memIntensive[b] = true
	}
	set := opts.newSet()
	type row struct {
		bench    string
		srpRefs  []ref
		fineRef  ref
		memHeavy bool
	}
	var rows []row
	for _, name := range opts.benchNames() {
		prof, err := opts.profile(name)
		if err != nil {
			return nil, err
		}
		grid := opts.grid(&prof)
		r := row{bench: name, memHeavy: memIntensive[name]}
		for _, f := range fracs {
			r.srpRefs = append(r.srpRefs, set.add(opts.config(), prof, grid, runner.VTRegMutex(f), false))
		}
		if r.memHeavy {
			r.fineRef = set.add(opts.config(), prof, grid, runner.FineRegDefault(), false)
		}
		rows = append(rows, r)
	}
	runs, err := set.run()
	if err != nil {
		return nil, err
	}
	var sum, memSum float64
	for _, r := range rows {
		bestIPC, bestFrac := -1.0, fracs[0]
		var bestRun *Run
		for i, ref := range r.srpRefs {
			if ipc := runs[ref].Metrics.IPC(); ipc > bestIPC {
				bestIPC, bestFrac, bestRun = ipc, fracs[i], runs[ref]
			}
		}
		res.BestSRP[r.bench] = bestFrac
		sum += bestFrac
		if r.memHeavy {
			memSum += bestFrac
			fr := runs[r.fineRef]
			// RegDepletionStallCycles sums over SMs; normalize by
			// Cycles×SMs for the per-SM stall fraction of Figure 14(b).
			denom := float64(bestRun.Metrics.Cycles) * float64(opts.SMs)
			res.StallFrac[r.bench] = [2]float64{
				float64(bestRun.Metrics.RegDepletionStallCycles) / denom,
				float64(fr.Metrics.RegDepletionStallCycles) / (float64(fr.Metrics.Cycles) * float64(opts.SMs)),
			}
		}
	}
	if n := len(opts.benchNames()); n > 0 {
		res.MeanSRP = sum / float64(n)
	}
	res.MeanSRPMemIntensive = memSum / float64(len(MemIntensive))
	return res, nil
}

// Render prints both panels.
func (r *Figure14Result) Render() string {
	t := &stats.Table{Header: []string{"bench", "best SRP frac"}}
	for _, b := range stats.SortedKeys(r.BestSRP) {
		t.AddRow(b, r.BestSRP[b])
	}
	out := fmt.Sprintf("Figure 14(a). Best SRP fraction per benchmark (mean %.1f%%, mem-intensive %.1f%%)\n%s",
		100*r.MeanSRP, 100*r.MeanSRPMemIntensive, t.String())
	t2 := &stats.Table{Header: []string{"bench", "RegMutex stall %", "FineReg stall %"}}
	for _, b := range MemIntensive {
		sf := r.StallFrac[b]
		t2.AddRow(b, 100*sf[0], 100*sf[1])
	}
	out += "Figure 14(b). Stall cycles from register-resource depletion\n" + t2.String()
	return out
}

// ---- Figure 15 ----

// Figure15Benches are the three applications the paper measures.
var Figure15Benches = []string{"FD", "NW", "ST"}

// Figure15Result reports normalized off-chip traffic.
type Figure15Result struct {
	// Traffic[bench][cfg] is total DRAM bytes normalized to baseline.
	Traffic map[string]map[ConfigName]float64
	// ContextBytes[bench][cfg] is the raw CTA-context traffic.
	ContextBytes map[string]map[ConfigName]int64
}

// Figure15 measures memory traffic for FD, NW and ST. Reg+DRAM runs with a
// fixed off-chip pool (cap 4) here — the point of the figure is the
// context-switching traffic that configuration generates.
func Figure15(opts Options) (*Figure15Result, error) {
	res := &Figure15Result{
		Traffic:      map[string]map[ConfigName]float64{},
		ContextBytes: map[string]map[ConfigName]int64{},
	}
	set := opts.newSet()
	type cell struct {
		bench string
		cn    ConfigName
		p     pick
	}
	var cells []cell
	for _, name := range Figure15Benches {
		prof, err := opts.profile(name)
		if err != nil {
			return nil, err
		}
		grid := opts.grid(&prof)
		res.Traffic[name] = map[ConfigName]float64{}
		res.ContextBytes[name] = map[ConfigName]int64{}
		for _, cn := range StandardConfigs() {
			var p pick
			if cn == CfgRegDRAM {
				p = pick{cn: cn, refs: []ref{set.add(opts.config(), prof, grid, runner.RegDRAM(4), false)}}
			} else {
				var err error
				p, err = set.addConfig(opts.config(), prof, grid, cn)
				if err != nil {
					return nil, err
				}
			}
			cells = append(cells, cell{name, cn, p})
		}
	}
	runs, err := set.run()
	if err != nil {
		return nil, err
	}
	baseBytes := map[string]int64{}
	for _, c := range cells {
		r := c.p.best(runs)
		if c.cn == CfgBaseline {
			baseBytes[c.bench] = r.Metrics.DRAMBytes()
		}
		res.Traffic[c.bench][c.cn] = float64(r.Metrics.DRAMBytes()) / float64(baseBytes[c.bench])
		res.ContextBytes[c.bench][c.cn] = r.Metrics.DRAMContextBytes
	}
	return res, nil
}

// Render prints normalized traffic.
func (r *Figure15Result) Render() string {
	t := &stats.Table{Header: []string{"bench", "Baseline", "VT", "Reg+DRAM", "VT+RegMutex", "FineReg"}}
	for _, b := range Figure15Benches {
		vals := make([]any, 0, 5)
		for _, cn := range StandardConfigs() {
			vals = append(vals, r.Traffic[b][cn])
		}
		t.AddRow(b, vals...)
	}
	return "Figure 15. Off-chip memory traffic normalized to baseline\n" + t.String()
}

// ---- Figure 16 ----

// Figure16Result reports the energy comparison.
type Figure16Result struct {
	Sweep *Sweep
	// Norm[cfg] is geomean energy normalized to baseline.
	Norm map[ConfigName]float64
	// Components[cfg] is the suite-summed breakdown in µJ:
	// {DRAMDyn, RFDyn, OthersDyn, Leakage, FineRegLogic, CTASwitch}.
	Components map[ConfigName][6]float64
}

// Figure16 derives the energy comparison from a sweep.
func Figure16(s *Sweep) *Figure16Result {
	res := &Figure16Result{Sweep: s, Norm: map[ConfigName]float64{}, Components: map[ConfigName][6]float64{}}
	for _, cn := range s.Configs {
		var ratios []float64
		var comp [6]float64
		for _, b := range s.Order {
			e := s.Runs[b][cn].Energy
			base := s.Runs[b][CfgBaseline].Energy
			ratios = append(ratios, e.Total()/base.Total())
			comp[0] += e.DRAMDyn
			comp[1] += e.RFDyn
			comp[2] += e.OthersDyn
			comp[3] += e.Leakage
			comp[4] += e.FineRegLog
			comp[5] += e.CTASwitch
		}
		res.Norm[cn] = stats.Geomean(ratios)
		res.Components[cn] = comp
	}
	return res
}

// Render prints normalized energy and the component breakdown.
func (r *Figure16Result) Render() string {
	t := &stats.Table{Header: []string{"config", "norm energy", "DRAM_Dyn", "RF_Dyn", "Others_Dyn", "Leakage", "FineRegLogic", "CTASwitch"}}
	for _, cn := range r.Sweep.Configs {
		c := r.Components[cn]
		t.AddRow(string(cn), r.Norm[cn], c[0], c[1], c[2], c[3], c[4], c[5])
	}
	return "Figure 16. Normalized energy with component breakdown (uJ, suite totals)\n" + t.String()
}
