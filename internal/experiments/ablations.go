package experiments

import (
	"fmt"

	"finereg/internal/core"
	"finereg/internal/gpu"
	"finereg/internal/mem"
	"finereg/internal/runner"
	"finereg/internal/sm"
	"finereg/internal/stats"
)

// Ablations isolates FineReg's design choices (DESIGN.md §7): live-register
// compaction, the RMU bit-vector cache, the CTA-switch absence gate, and
// GTO scheduling. Each variant reports geomean IPC normalized to the full
// FineReg design over a mixed-class benchmark subset.
type AblationsResult struct {
	Labels []string
	// Norm[i] is variant i's geomean IPC relative to full FineReg.
	Norm []float64
}

// AblationBenches is a mixed Type-S/Type-R subset.
var AblationBenches = []string{"CS", "SY2", "MC", "LB", "LI", "SG"}

// Ablations runs the design-choice study.
func Ablations(opts Options) (*AblationsResult, error) {
	opts.Benchmarks = AblationBenches
	variants := []struct {
		label string
		pol   runner.PolicySpec
		sched sm.SchedKind
	}{
		{"FineReg (full design)", runner.FineRegDefault(), sm.SchedGTO},
		{"no live compaction (full register sets in PCRF)",
			runner.FineRegFull(128<<10, 128<<10), sm.SchedGTO},
		{"cold bit-vector cache (RMU cache disabled)",
			runner.Custom("finereg/cold-bitvec", coldBitvecFactory()), sm.SchedGTO},
		{"loose round-robin scheduling (GTO off)",
			runner.FineRegDefault(), sm.SchedLRR},
	}
	set := opts.newSet()
	var refs [][]ref // [bench][variant]
	for _, name := range opts.benchNames() {
		prof, err := opts.profile(name)
		if err != nil {
			return nil, err
		}
		grid := opts.grid(&prof)
		row := make([]ref, len(variants))
		for i, v := range variants {
			cfg := opts.config()
			cfg.SM.Scheduler = v.sched
			row[i] = set.add(cfg, prof, grid, v.pol, false)
		}
		refs = append(refs, row)
	}
	runs, err := set.run()
	if err != nil {
		return nil, err
	}
	res := &AblationsResult{}
	perVariant := make([][]float64, len(variants))
	for _, row := range refs {
		fullIPC := runs[row[0]].Metrics.IPC()
		for i := range variants {
			perVariant[i] = append(perVariant[i], stats.Speedup(runs[row[i]].Metrics.IPC(), fullIPC))
		}
	}
	for i, v := range variants {
		res.Labels = append(res.Labels, v.label)
		res.Norm = append(res.Norm, stats.Geomean(perVariant[i]))
	}
	return res, nil
}

// coldBitvecFactory builds FineReg variants whose RMU bit-vector cache is
// flushed before every lookup, making every CTA switch pay the off-chip
// bit-vector fetch — the ablation for the Section V-C cache.
func coldBitvecFactory() gpu.PolicyFactory {
	return func(cfg sm.Config, hier *mem.Hierarchy) sm.Policy {
		f := core.NewFineReg(cfg, hier, cfg.RegFileBytes/2, cfg.RegFileBytes-cfg.RegFileBytes/2)
		return &coldBitvecPolicy{FineReg: f}
	}
}

// coldBitvecPolicy wraps FineReg, resetting the RMU cache before each
// stall so every lookup misses.
type coldBitvecPolicy struct{ *core.FineReg }

// Name implements sm.Policy.
func (p *coldBitvecPolicy) Name() string { return "FineReg(cold-bitvec)" }

// OnCTAStalled flushes the bit-vector cache before delegating.
func (p *coldBitvecPolicy) OnCTAStalled(s *sm.SM, c *sm.CTA, now int64) {
	p.RMUState().Reset()
	p.FineReg.OnCTAStalled(s, c, now)
}

// Render prints the ablation table.
func (r *AblationsResult) Render() string {
	t := &stats.Table{Header: []string{"variant", "IPC vs full FineReg"}}
	for i, l := range r.Labels {
		t.AddRow(l, r.Norm[i])
	}
	return fmt.Sprintf("Ablations over %v\n%s", AblationBenches, t.String())
}
