package experiments

import (
	"fmt"

	"finereg/internal/kernels"
	"finereg/internal/mem"
	"finereg/internal/runner"
	"finereg/internal/stats"
)

// ---- Figure 17: ACRF/PCRF split sensitivity ----

// SplitKB is one ACRF/PCRF partition of the 256 KB register file.
type SplitKB struct{ ACRF, PCRF int }

// Figure17Splits are the partitions the paper sweeps.
var Figure17Splits = []SplitKB{
	{64, 192}, {96, 160}, {128, 128}, {160, 96}, {192, 64},
}

// Figure17Result reports performance and TLP across register-file splits.
type Figure17Result struct {
	Splits []SplitKB
	// NormPerf[i] is the geomean IPC of split i normalized to baseline.
	NormPerf []float64
	// CTARatio[i] is the geomean resident-CTA ratio vs baseline;
	// ActiveShare[i] the fraction of resident CTAs that are active.
	CTARatio, ActiveShare []float64
}

// Figure17 sweeps the ACRF/PCRF partition over the benchmark suite.
func Figure17(opts Options) (*Figure17Result, error) {
	res := &Figure17Result{Splits: Figure17Splits}
	set := opts.newSet()
	baseRef := map[string]ref{}
	for _, name := range opts.benchNames() {
		prof, err := opts.profile(name)
		if err != nil {
			return nil, err
		}
		baseRef[name] = set.add(opts.config(), prof, opts.grid(&prof), runner.Baseline(), false)
	}
	splitRef := map[SplitKB]map[string]ref{}
	for _, split := range Figure17Splits {
		splitRef[split] = map[string]ref{}
		for _, name := range opts.benchNames() {
			prof, err := opts.profile(name)
			if err != nil {
				return nil, err
			}
			splitRef[split][name] = set.add(opts.config(), prof, opts.grid(&prof),
				runner.FineReg(split.ACRF<<10, split.PCRF<<10), false)
		}
	}
	runs, err := set.run()
	if err != nil {
		return nil, err
	}
	for _, split := range Figure17Splits {
		var perf, ctas, share []float64
		for _, name := range opts.benchNames() {
			base := runs[baseRef[name]]
			r := runs[splitRef[split][name]]
			perf = append(perf, stats.Speedup(r.Metrics.IPC(), base.Metrics.IPC()))
			ctas = append(ctas, stats.Speedup(r.Metrics.AvgResidentCTAs, base.Metrics.AvgResidentCTAs))
			if r.Metrics.AvgResidentCTAs > 0 {
				share = append(share, r.Metrics.AvgActiveCTAs/r.Metrics.AvgResidentCTAs)
			}
		}
		res.NormPerf = append(res.NormPerf, stats.Geomean(perf))
		res.CTARatio = append(res.CTARatio, stats.Geomean(ctas))
		res.ActiveShare = append(res.ActiveShare, stats.Mean(share))
	}
	return res, nil
}

// Best returns the index of the best-performing split.
func (r *Figure17Result) Best() int {
	best := 0
	for i, p := range r.NormPerf {
		if p > r.NormPerf[best] {
			best = i
		}
		_ = i
	}
	return best
}

// Render prints the sensitivity sweep.
func (r *Figure17Result) Render() string {
	t := &stats.Table{Header: []string{"ACRF/PCRF", "norm perf", "CTA ratio", "active share"}}
	for i, s := range r.Splits {
		t.AddRow(fmt.Sprintf("%dKB/%dKB", s.ACRF, s.PCRF), r.NormPerf[i], r.CTARatio[i], r.ActiveShare[i])
	}
	b := r.Splits[r.Best()]
	return fmt.Sprintf("Figure 17. ACRF/PCRF split sensitivity (best: %dKB/%dKB)\n%s", b.ACRF, b.PCRF, t.String())
}

// ---- Figure 18: SM scaling ----

// Figure18Benches is the mixed-class subset used for the scaling study
// (full-suite runs at 128 SMs would dominate the harness runtime without
// changing the trend).
var Figure18Benches = []string{"CS", "FD", "SY2", "HS", "LB", "LI"}

// Figure18Point is one machine size's outcome.
type Figure18Point struct {
	SMs int
	// FineRegSpeedup and ResourceSpeedup are geomean IPC vs the baseline
	// at the same SM count.
	FineRegSpeedup, ResourceSpeedup float64
	// OverheadMB is the extra on-chip storage Baseline+Resource needs to
	// match FineReg's CTA count.
	OverheadMB float64
}

// Figure18Result is the SM-scaling study.
type Figure18Result struct{ Points []Figure18Point }

// Figure18 compares FineReg against a resource-scaled baseline
// (Baseline+Resource) across machine sizes. Workloads scale with the
// machine so per-SM pressure is constant.
func Figure18(opts Options, smCounts []int) (*Figure18Result, error) {
	if len(smCounts) == 0 {
		smCounts = []int{16, 32, 64, 128}
	}
	res := &Figure18Result{}

	// Phase 1: baseline and FineReg at every machine size. The
	// Baseline+Resource configuration is derived from these results, so it
	// forms a second batch.
	type point struct {
		n             int
		o             Options
		prof          kernels.Profile
		grid          int
		base, fine    ref
		big           ref // phase 2
		k             float64
		overheadBytes float64
	}
	set := opts.newSet()
	var points []point
	for _, n := range smCounts {
		o := opts
		o.SMs = n
		o.GridScale = opts.GridScale * float64(n) / float64(opts.SMs)
		o.Benchmarks = Figure18Benches
		for _, name := range o.benchNames() {
			prof, err := opts.profile(name)
			if err != nil {
				return nil, err
			}
			grid := o.grid(&prof)
			points = append(points, point{
				n: n, o: o, prof: prof, grid: grid,
				base: set.add(o.config(), prof, grid, runner.Baseline(), false),
				fine: set.add(o.config(), prof, grid, runner.FineRegDefault(), false),
			})
		}
	}
	runs, err := set.run()
	if err != nil {
		return nil, err
	}

	// Phase 2: Baseline+Resource — scale scheduling and memory so the
	// baseline can hold as many CTAs as FineReg kept resident.
	set2 := opts.newSet()
	for i := range points {
		p := &points[i]
		base, fine := runs[p.base], runs[p.fine]
		k := fine.Metrics.AvgResidentCTAs / base.Metrics.AvgResidentCTAs
		if k < 1 {
			k = 1
		}
		p.k = k
		cfg := p.o.config()
		cfg.SM.MaxCTAs = int(float64(cfg.SM.MaxCTAs)*k) + 1
		cfg.SM.MaxWarps = int(float64(cfg.SM.MaxWarps)*k) + 1
		cfg.SM.MaxThreads = int(float64(cfg.SM.MaxThreads)*k) + 1
		cfg.SM.RegFileBytes = int(float64(cfg.SM.RegFileBytes) * k)
		cfg.SM.SharedMemBytes = int(float64(cfg.SM.SharedMemBytes) * k)
		// The paper's Baseline+Resource provisions everything the
		// extra CTAs need, including first-level cache capacity.
		unit := cfg.SM.L1Ways * 128
		cfg.SM.L1Bytes = int(float64(cfg.SM.L1Bytes)*k) / unit * unit
		p.big = set2.add(cfg, p.prof, p.grid, runner.Baseline(), false)
		p.overheadBytes = (k - 1) * float64((256+96+48)<<10) * float64(p.n)
	}
	runs2, err := set2.run()
	if err != nil {
		return nil, err
	}

	for _, n := range smCounts {
		var fr, rs []float64
		var overheadBytes float64
		var benches int
		for _, p := range points {
			if p.n != n {
				continue
			}
			base := runs[p.base]
			fr = append(fr, stats.Speedup(runs[p.fine].Metrics.IPC(), base.Metrics.IPC()))
			rs = append(rs, stats.Speedup(runs2[p.big].Metrics.IPC(), base.Metrics.IPC()))
			overheadBytes += p.overheadBytes
			benches++
		}
		res.Points = append(res.Points, Figure18Point{
			SMs:             n,
			FineRegSpeedup:  stats.Geomean(fr),
			ResourceSpeedup: stats.Geomean(rs),
			OverheadMB:      overheadBytes / float64(benches) / (1 << 20),
		})
	}
	return res, nil
}

// Render prints the scaling table.
func (r *Figure18Result) Render() string {
	t := &stats.Table{Header: []string{"SMs", "FineReg speedup", "Baseline+Resource speedup", "overhead MB"}}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%d", p.SMs), p.FineRegSpeedup, p.ResourceSpeedup, p.OverheadMB)
	}
	return "Figure 18. FineReg vs resource-scaled baseline across machine sizes\n" + t.String()
}

// ---- Figure 19: unified on-chip local memory ----

// UMBytes is the unified pool size: PCRF (128 KB) + shared memory (96 KB)
// + L1 (48 KB), per the paper's Section VI-G3.
const UMBytes = 272 << 10

// Figure19Result compares UM-only, VT+UM and FineReg+UM.
type Figure19Result struct {
	Order []string
	// Speedup[bench] = {UM, VT+UM, FineReg+UM} IPC vs the plain baseline.
	Speedup map[string][3]float64
	// Mean is the geomean of each column.
	Mean [3]float64
}

// Figure19Labels names the three UM configurations.
var Figure19Labels = [3]string{"UM", "VT+UM", "FineReg+UM"}

// Figure19 evaluates the unified on-chip memory integration: each kernel's
// unused shared-memory share of the 272 KB pool becomes extra L1 capacity.
func Figure19(opts Options) (*Figure19Result, error) {
	res := &Figure19Result{Speedup: map[string][3]float64{}}
	type row struct {
		name string
		base ref
		um   [3]ref
	}
	set := opts.newSet()
	var rows []row
	for _, name := range opts.benchNames() {
		prof, err := opts.profile(name)
		if err != nil {
			return nil, err
		}
		grid := opts.grid(&prof)
		umCfg := opts.config()
		umCfg.SM.L1Bytes = umL1Bytes(&prof, umCfg.SM.L1Ways)

		r := row{name: name, base: set.add(opts.config(), prof, grid, runner.Baseline(), false)}
		for i, pol := range []runner.PolicySpec{runner.Baseline(), runner.VirtualThread(), runner.FineRegDefault()} {
			r.um[i] = set.add(umCfg, prof, grid, pol, false)
		}
		rows = append(rows, r)
	}
	runs, err := set.run()
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		base := runs[r.base]
		var trip [3]float64
		for i := 0; i < 3; i++ {
			trip[i] = stats.Speedup(runs[r.um[i]].Metrics.IPC(), base.Metrics.IPC())
		}
		res.Speedup[r.name] = trip
		res.Order = append(res.Order, r.name)
	}
	for i := 0; i < 3; i++ {
		var v []float64
		for _, b := range res.Order {
			v = append(v, res.Speedup[b][i])
		}
		res.Mean[i] = stats.Geomean(v)
	}
	return res, nil
}

// umL1Bytes computes the effective L1 under the unified pool: the PCRF
// slice stays register storage, the kernel's shared-memory demand (per-CTA
// usage times baseline occupancy) is reserved, and the remainder backs the
// L1 — never less than the baseline 48 KB.
func umL1Bytes(p *kernels.Profile, ways int) int {
	limits := kernels.Limits{
		MaxCTAs: 32, MaxWarps: 64, MaxThreads: 2048,
		RegFileBytes: 256 << 10, SharedMemBytes: 96 << 10,
	}
	occ, _ := p.Occupancy(limits)
	shmem := p.SharedMem * occ
	if shmem > 96<<10 {
		shmem = 96 << 10
	}
	l1 := UMBytes - 128<<10 - shmem
	if l1 < 48<<10 {
		l1 = 48 << 10
	}
	unit := ways * mem.LineBytes
	return l1 / unit * unit
}

// Render prints the UM comparison.
func (r *Figure19Result) Render() string {
	t := &stats.Table{Header: []string{"bench", "UM", "VT+UM", "FineReg+UM"}}
	for _, b := range r.Order {
		s := r.Speedup[b]
		t.AddRow(b, s[0], s[1], s[2])
	}
	out := "Figure 19. Unified on-chip local memory (speedup vs baseline)\n" + t.String()
	out += fmt.Sprintf("Geomean: UM %.3f, VT+UM %.3f, FineReg+UM %.3f\n", r.Mean[0], r.Mean[1], r.Mean[2])
	return out
}
