package experiments

import (
	"testing"

	"finereg/internal/runner"
)

// TestSweepParallelDeterminism is the engine's end-to-end determinism
// regression: the rendered sweep tables must be byte-identical between a
// serial engine and a wide one (ISSUE acceptance: `-jobs 1` vs `-jobs N`).
func TestSweepParallelDeterminism(t *testing.T) {
	render := func(workers int) string {
		o := tiny("CS", "LB")
		o.Runner = &runner.Engine{Jobs: workers}
		s, err := RunSweep(o)
		if err != nil {
			t.Fatal(err)
		}
		return Figure12(s).Render() + Figure13(s).Render() + Figure16(s).Render()
	}
	serial := render(1)
	wide := render(8)
	if serial != wide {
		t.Fatalf("rendered tables differ between jobs=1 and jobs=8:\n--- jobs=1\n%s\n--- jobs=8\n%s", serial, wide)
	}
}

// TestSweepParallelWithCache exercises the full engine (worker pool +
// shared cache) under the race detector when scripts/check.sh runs the test
// suite with -race: concurrent workers, cache writes, and dedup on one
// engine. It also checks that a cached second sweep simulates nothing.
func TestSweepParallelWithCache(t *testing.T) {
	eng := &runner.Engine{Jobs: 4, Cache: runner.NewCache(t.TempDir())}
	o := tiny("CS", "LB")
	o.Runner = eng
	first, err := RunSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	executed := eng.Stats().Executed
	if executed == 0 {
		t.Fatal("first sweep should simulate")
	}
	second, err := RunSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Executed; got != executed {
		t.Fatalf("second sweep re-simulated: %d -> %d executions", executed, got)
	}
	if Figure13(first).Render() != Figure13(second).Render() {
		t.Fatal("cached sweep renders differently")
	}
}

// TestCrossExperimentDedup verifies the zero-duplicate-simulation property
// the finereg-experiments CLI relies on: distinct experiments sharing one
// engine reuse every coinciding point. The stall probes of StallBreakdowns
// differ from sweep jobs (Stalls=true changes the key), but a repeated
// figure — Figure13 and Figure16 both consuming RunSweep — must be free.
func TestCrossExperimentDedup(t *testing.T) {
	eng := &runner.Engine{Jobs: 2, Cache: runner.NewCache("")}
	o := tiny("CS")
	o.Runner = eng
	if _, err := RunSweep(o); err != nil {
		t.Fatal(err)
	}
	executed := eng.Stats().Executed

	// TableIII re-runs plain baselines that the sweep already computed.
	if _, err := TableIII(o); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Executed; got != executed {
		t.Fatalf("TableIII re-simulated sweep points: %d -> %d", executed, got)
	}
}
