package experiments

import (
	"context"
	"fmt"

	"finereg/internal/energy"
	"finereg/internal/gpu"
	"finereg/internal/kernels"
	"finereg/internal/runner"
)

// This file is the experiments layer's bridge to the run engine
// (internal/runner): every Figure*/Table* function declares its
// simulations as a jobSet, submits the whole set as one batch, and then
// assembles its tables from the results. The engine parallelizes and
// dedups; declaration order is preserved, so tables render byte-identically
// at any worker count.

// engine returns the configured run engine, or a fresh default (GOMAXPROCS
// workers, no cache) when none was set. A fresh engine still collapses
// duplicate points within one batch via in-flight tracking.
func (o Options) engine() *runner.Engine {
	if o.Runner != nil {
		return o.Runner
	}
	return &runner.Engine{}
}

// ref indexes one submitted job within its jobSet's result slice.
type ref int

// jobSet accumulates jobs for one experiment and runs them as one batch.
type jobSet struct {
	o    Options
	jobs []*runner.Job
}

func (o Options) newSet() *jobSet { return &jobSet{o: o} }

// add submits one simulation point and returns its result slot.
func (s *jobSet) add(cfg gpu.Config, prof kernels.Profile, grid int, pol runner.PolicySpec, trackReg bool) ref {
	s.jobs = append(s.jobs, &runner.Job{
		Cfg: cfg, Profile: prof, Grid: grid, Policy: pol, TrackReg: trackReg,
	})
	return ref(len(s.jobs) - 1)
}

// addTraced submits a stall-attributed simulation point.
func (s *jobSet) addTraced(cfg gpu.Config, prof kernels.Profile, grid int, pol runner.PolicySpec) ref {
	s.jobs = append(s.jobs, &runner.Job{
		Cfg: cfg, Profile: prof, Grid: grid, Policy: pol, Stalls: true,
	})
	return ref(len(s.jobs) - 1)
}

// dispatch runs one batch on the configured backend: the remote service
// when Options.Service is set, the in-process engine otherwise. Jobs are
// canonical either way, so the backends are interchangeable result-wise.
func (o Options) dispatch(jobs []*runner.Job) (*runner.Batch, error) {
	if o.Service != nil {
		return o.Service.RunJobs(context.Background(), jobs)
	}
	return o.engine().Run(jobs), nil
}

// run executes the set and converts results to Runs (attaching the energy
// estimate, a pure function of metrics and machine size). A batch with
// failures aborts with the aggregated error — matching the historical
// fail-fast behaviour of the serial harness — but everything that could
// run has run, so a retry after a fix hits the cache for the survivors.
func (s *jobSet) run() ([]*Run, error) {
	b, err := s.o.dispatch(s.jobs)
	if err != nil {
		return nil, err
	}
	if err := b.Err(); err != nil {
		return nil, err
	}
	runs := make([]*Run, len(b.Results))
	for i, res := range b.Results {
		runs[i] = &Run{
			Metrics: res.Metrics,
			Energy:  energy.Estimate(res.Metrics, s.jobs[i].Cfg.NumSMs, energy.DefaultCoefficients()),
			Windows: res.Windows,
		}
	}
	return runs, nil
}

// pick is a deferred best-of selection over tuning candidates of one
// configuration (the paper's per-application tuning of Reg+DRAM and
// VT+RegMutex). For single-candidate configurations it is a plain lookup.
type pick struct {
	cn   ConfigName
	refs []ref
}

// addConfig submits the job(s) for configuration cn: one job for
// Baseline/VT/FineReg, the paper's tuning candidates for Reg+DRAM (pending
// caps {0,2,4}) and VT+RegMutex (SRP fractions {0.10..0.30}).
func (s *jobSet) addConfig(cfg gpu.Config, prof kernels.Profile, grid int, cn ConfigName) (pick, error) {
	p := pick{cn: cn}
	switch cn {
	case CfgBaseline:
		p.refs = []ref{s.add(cfg, prof, grid, runner.Baseline(), false)}
	case CfgVT:
		p.refs = []ref{s.add(cfg, prof, grid, runner.VirtualThread(), false)}
	case CfgRegDRAM:
		for _, cap := range []int{0, 2, 4} {
			p.refs = append(p.refs, s.add(cfg, prof, grid, runner.RegDRAM(cap), false))
		}
	case CfgRegMutex:
		for _, frac := range []float64{0.10, 0.15, 0.20, 0.25, 0.30} {
			p.refs = append(p.refs, s.add(cfg, prof, grid, runner.VTRegMutex(frac), false))
		}
	case CfgFineReg:
		p.refs = []ref{s.add(cfg, prof, grid, runner.FineRegDefault(), false)}
	default:
		return p, fmt.Errorf("experiments: unknown configuration %q", cn)
	}
	return p, nil
}

// best resolves the pick against the batch results: the candidate with
// peak IPC, earliest-submitted winning ties (matching the serial tuning
// loops). Tuned configurations are relabeled to their paper name.
func (p pick) best(runs []*Run) *Run {
	b := runs[p.refs[0]]
	for _, r := range p.refs[1:] {
		if runs[r].Metrics.IPC() > b.Metrics.IPC() {
			b = runs[r]
		}
	}
	if len(p.refs) > 1 {
		b.Metrics.Config = string(p.cn)
	}
	return b
}

// specFor maps a configuration name to its default-operating-point policy
// spec (DRAM cap 4, SRP 0.25) — used where the paper does not tune.
func specFor(cn ConfigName) (runner.PolicySpec, error) {
	switch cn {
	case CfgBaseline:
		return runner.Baseline(), nil
	case CfgVT:
		return runner.VirtualThread(), nil
	case CfgRegDRAM:
		return runner.RegDRAM(4), nil
	case CfgRegMutex:
		return runner.VTRegMutex(0.25), nil
	case CfgFineReg:
		return runner.FineRegDefault(), nil
	}
	return runner.PolicySpec{}, fmt.Errorf("experiments: unknown configuration %q", cn)
}
