// Package sm implements the cycle-level streaming-multiprocessor timing
// model: warp contexts, greedy-then-oldest (GTO) warp schedulers, a
// per-warp scoreboard, CTA slots and shared-memory allocation, stall
// classification, and the policy hooks that register-file management
// schemes (baseline, Virtual Thread, Reg+DRAM, RegMutex, FineReg) plug
// into.
//
// The model is warp-accurate and event-accelerated: each of the SM's
// schedulers issues at most one instruction per cycle from a ready warp;
// blocked warps sleep on an event heap until their scoreboard dependency
// resolves, and the SM reports the next cycle at which anything can happen
// so the GPU-level loop can skip idle gaps.
package sm

// SchedKind selects the warp scheduling policy.
type SchedKind uint8

const (
	// SchedGTO is greedy-then-oldest (Table I).
	SchedGTO SchedKind = iota
	// SchedLRR is loose round-robin, for ablations.
	SchedLRR
)

// Config holds the per-SM hardware parameters.
type Config struct {
	// Scheduling resources (Table I: 32 CTAs, 64 warps, 2048 threads,
	// 4 schedulers). MaxResidentCTAs bounds total resident (active +
	// pending) CTAs — the 128-CTA design point of FineReg's status
	// monitor, applied to every switching policy.
	MaxCTAs, MaxWarps, MaxThreads int
	MaxResidentCTAs               int
	NumSchedulers                 int
	Scheduler                     SchedKind

	// On-chip memory: total register file bytes (the policies decide how
	// it is partitioned) and shared memory bytes.
	RegFileBytes   int
	SharedMemBytes int

	// L1 geometry.
	L1Bytes, L1Ways int

	// Fixed latencies (cycles).
	ALULat, SFULat, ShmemLat int64

	// LongStall is the remaining-latency threshold beyond which a blocked
	// warp counts as stalled. A fully stalled CTA is offered for switching
	// only when its earliest warp wake-up is at least this far away, so
	// only DRAM-bound stalls (not L2 hits) trigger CTA switches.
	LongStall int64

	// SwitchDrainLat is the pipeline drain/refill cost of a CTA switch —
	// the Virtual Thread-style context movement through shared memory.
	SwitchDrainLat int64

	// TrackRegUsage enables the Figure 5 instrumentation (touched-register
	// fraction per 1000-instruction window).
	TrackRegUsage bool
}

// Default returns the Table I SM configuration.
func Default() Config {
	return Config{
		MaxCTAs:         32,
		MaxWarps:        64,
		MaxThreads:      2048,
		MaxResidentCTAs: 128,
		NumSchedulers:   4,
		Scheduler:       SchedGTO,
		RegFileBytes:    256 << 10,
		SharedMemBytes:  96 << 10,
		L1Bytes:         48 << 10,
		L1Ways:          8,
		ALULat:          4,
		SFULat:          16,
		ShmemLat:        24,
		LongStall:       250,
		SwitchDrainLat:  30,
	}
}

// WarpRegBytes is the size of one warp-register (32 lanes × 4 bytes) — the
// PCRF entry granularity.
const WarpRegBytes = 128

// TotalWarpRegs returns the register file capacity in warp-registers.
func (c *Config) TotalWarpRegs() int { return c.RegFileBytes / WarpRegBytes }
