package sm

import "fmt"

// This file is the SM's auditing surface: read-only accessors over the
// private residency/scheduler state that internal/audit re-derives from
// first principles, the policy-side self-auditing interface, and a test
// hook for deliberately corrupting a counter to prove the auditor catches
// drift. None of it is used on the simulation hot path.

// AuditAccount is one policy-maintained resource counter paired with its
// ground truth: Value is what the policy's incremental bookkeeping says,
// Expected is the same quantity recomputed from the resident set, and
// [Min, Max] is the legal range (capacity bounds). The auditor flags any
// account where Value != Expected or Value leaves the range.
type AuditAccount struct {
	// Name identifies the counter in violation reports (e.g. "regsFree").
	Name string
	// Value is the policy's incrementally maintained count.
	Value int
	// Expected is the count recomputed from the resident set.
	Expected int
	// Min and Max bound the legal range (typically 0 and the capacity).
	// Policies with deliberate oversubscription (RegMutex's emergency SRP
	// overdraft) widen Min accordingly.
	Min, Max int
}

// SelfAuditing is implemented by policies that expose their register
// accounting to the auditor. The implementation must be read-only and may
// assume it runs between Tick rounds (no transient mid-issue state).
type SelfAuditing interface {
	// AuditAccounting returns every resource account the policy maintains,
	// with ground truth recomputed from s's resident set.
	AuditAccounting(s *SM) []AuditAccount
}

// ---- State accessors (auditor-facing, read-only) ----

// WarpsUsed returns the warp scheduling slots occupied by active CTAs'
// non-exited warps.
func (s *SM) WarpsUsed() int { return s.warpsUsed }

// ThreadsUsed returns the thread slots occupied (32 per used warp slot).
func (s *SM) ThreadsUsed() int { return s.threadsUsed }

// SharedMemUsed returns the shared-memory bytes held by resident CTAs.
func (s *SM) SharedMemUsed() int { return s.shmemUsed }

// AwakeWarps returns the SM's awake counter: active, non-exited warps with
// wakeAt <= now.
func (s *SM) AwakeWarps() int { return s.awake }

// EachSchedulerWarp visits every warp currently wired into a scheduler, in
// scheduler then slot order.
func (s *SM) EachSchedulerWarp(visit func(sid int, w *Warp)) {
	for sid, ws := range s.schedWarps {
		for _, w := range ws {
			visit(sid, w)
		}
	}
}

// EachReadyWarp visits every warp in the schedulers' ready partitions, in
// scheduler then slot order — the exact issue-candidate set pick/pickLRR
// scan.
func (s *SM) EachReadyWarp(visit func(sid int, w *Warp)) {
	for sid, ws := range s.ready {
		for _, w := range ws {
			visit(sid, w)
		}
	}
}

// KernelBound reports whether BindKernel has run (the auditor needs the
// program metadata for shared-memory ground truth).
func (s *SM) KernelBound() bool { return s.meta != nil }

// Asleep reports whether the warp is descheduled waiting on an event.
func (w *Warp) Asleep() bool { return w.asleep }

// SchedSeq returns the warp's wiring sequence within its scheduler (the
// sort key of the scheduler and ready lists, and LRR's rotation anchor).
func (w *Warp) SchedSeq() int64 { return w.schedSeq }

// AtBarrier reports whether the warp is parked at a CTA-wide barrier.
func (w *Warp) AtBarrier() bool { return w.atBarrier }

// LongBlocked reports whether the warp counts toward its CTA's stalled-warp
// total (a block of at least Config.LongStall cycles).
func (w *Warp) LongBlocked() bool { return w.longBlocked }

// StalledWarps returns the CTA's long-blocked warp count.
func (c *CTA) StalledWarps() int { return c.stalledWarps }

// BarWaiting returns how many warps are parked at the CTA's barrier.
func (c *CTA) BarWaiting() int { return c.barWaiting }

// FinishedWarps returns how many of the CTA's warps have exited.
func (c *CTA) FinishedWarps() int { return c.finishedWarps }

// ---- Fault injection (tests only) ----

// InjectAccountingSkew corrupts one of the SM's occupancy counters by
// delta. It exists solely so tests can prove the auditor detects
// bookkeeping drift (the "skipped warpsUsed--" class of bug); it has no
// other callers. Unknown counter names panic.
func (s *SM) InjectAccountingSkew(counter string, delta int) {
	switch counter {
	case "warpsUsed":
		s.warpsUsed += delta
	case "threadsUsed":
		s.threadsUsed += delta
	case "shmemUsed":
		s.shmemUsed += delta
	case "awake":
		s.awake += delta
	case "activeCTAs":
		s.activeCTAs += delta
	case "pendingCTAs":
		s.pendingCTAs += delta
	default:
		panic(fmt.Sprintf("sm: InjectAccountingSkew: unknown counter %q", counter))
	}
}

// InjectMemSkew corrupts one of the SM's L1 probe counters by delta
// (delegates to mem.Cache.InjectAuditSkew). Tests only: it proves the
// auditor's memory-hierarchy conservation checks catch cache-accounting
// drift.
func (s *SM) InjectMemSkew(counter string, delta int64) {
	s.L1.InjectAuditSkew(counter, delta)
}

// InjectReadySkew corrupts the ready partitions by dropping the first
// entry of the first non-empty list (simulating a missed readyAdd — the
// bug class where a woken warp never becomes an issue candidate). Returns
// false when every partition is empty. Tests only.
func (s *SM) InjectReadySkew() bool {
	for sid, ws := range s.ready {
		if len(ws) > 0 {
			s.ready[sid] = ws[1:]
			return true
		}
	}
	return false
}
