package sm

import (
	"testing"

	"finereg/internal/isa"
	"finereg/internal/kernels"
	"finereg/internal/liveness"
	"finereg/internal/mem"
	"finereg/internal/trace"
)

// issueLog records the per-warp issue order through the trace sink.
type issueLog struct {
	trace.Noop
	order    []int
	ctaOrder []int
	counts   map[int]int
}

func (l *issueLog) WarpIssue(sm, cta, warp int, now int64, pc int) {
	l.order = append(l.order, warp)
	l.ctaOrder = append(l.ctaOrder, cta)
	l.counts[warp]++
}

// TestLRRRotatesFairly is the regression test for the loose-round-robin
// starvation bug: with every warp ready every cycle (independent ALU
// instructions, no memory), the old scheduler re-picked the lowest-index
// ready warp, so warp 0 ran to completion before warp 1 issued at all. A
// true round-robin must rotate: every warp appears early in the issue
// order, and no warp ever builds up more than a rotation's worth of lead.
func TestLRRRotatesFairly(t *testing.T) {
	const warps = 8
	b := isa.NewBuilder("lrr-fair")
	b.MovI(1, 7)
	for i := 0; i < 20; i++ {
		// Independent: all read r1, distinct destinations — no scoreboard
		// stalls, so every non-exited warp is ready every cycle.
		b.FAdd(isa.Reg(2+i), 1, 1)
	}
	b.Exit()
	prog := b.MustBuild(24)
	k := &kernels.Kernel{
		Profile:  kernels.Profile{Abbrev: "LRRF", WarpsPerCTA: warps, Regs: 24},
		Prog:     prog,
		GridCTAs: 1,
	}
	var err error
	k.Live, err = liveness.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}

	cfg := Default()
	cfg.NumSchedulers = 1 // all warps contend for one issue slot
	cfg.Scheduler = SchedLRR
	hier := mem.NewHierarchy(2<<20, 8, 600, 313, mem.DefaultLatencies())
	disp := &sliceDisp{total: 1}
	s := New(0, cfg, hier, disp, &nullPolicy{})
	log := &issueLog{counts: map[int]int{}}
	s.SetTrace(log)
	s.BindKernel(k, 0)
	drive(t, s, disp, 1_000_000)

	if got := len(log.order); got != warps*22 {
		t.Fatalf("issued %d instructions, want %d", got, warps*22)
	}

	// Rotation: the first two rotations' worth of issues must include
	// every warp (the old scheduler issued warp 0 sixteen times here).
	early := map[int]bool{}
	for _, w := range log.order[:2*warps] {
		early[w] = true
	}
	if len(early) != warps {
		t.Errorf("only %d/%d warps issued in the first %d slots: %v",
			len(early), warps, 2*warps, log.order[:2*warps])
	}

	// Bounded lead: at no point during the run may the most-served warp be
	// more than a full rotation ahead of the least-served non-exited warp.
	running := map[int]int{}
	for i := 0; i < warps; i++ {
		running[i] = 0
	}
	for _, w := range log.order {
		running[w]++
		if running[w] == 22 {
			delete(running, w) // exited; no longer owed slots
			continue
		}
		min, max := 1<<30, 0
		for _, c := range running {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > warps {
			t.Fatalf("warp lead %d exceeds a rotation (counts %v)", max-min, running)
		}
	}
}

// TestLRRSurvivesMidRotationEviction is the regression test for the
// rotation-anchor bug: the LRR start position was derived from the greedy
// *pointer*, which dropWarpsOf nils when the last-issued warp's CTA is
// evicted — so every mid-rotation CTA switch reset the rotation to slot 0
// and re-served the low-index warps. The anchor is now the departed warp's
// wiring sequence: after evicting the CTA that holds the anchor warp, the
// next issue must come from the first ready warp wired *after* it, not
// from slot 0.
func TestLRRSurvivesMidRotationEviction(t *testing.T) {
	b := isa.NewBuilder("lrr-evict")
	b.MovI(1, 7)
	for i := 0; i < 30; i++ {
		b.FAdd(isa.Reg(2+i%8), 1, 1)
	}
	b.Exit()
	prog := b.MustBuild(12)
	k := &kernels.Kernel{
		Profile:  kernels.Profile{Abbrev: "LRRE", WarpsPerCTA: 2, Regs: 12},
		Prog:     prog,
		GridCTAs: 3,
	}
	var err error
	k.Live, err = liveness.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}

	cfg := Default()
	cfg.NumSchedulers = 1
	cfg.Scheduler = SchedLRR
	hier := mem.NewHierarchy(2<<20, 8, 600, 313, mem.DefaultLatencies())
	disp := &sliceDisp{total: 3}
	s := New(0, cfg, hier, disp, &nullPolicy{})
	log := &issueLog{counts: map[int]int{}}
	s.SetTrace(log)
	s.BindKernel(k, 0)

	// Wiring order on the single scheduler: c0w0 c0w1 c1w0 c1w1 c2w0 c2w1.
	// Four ticks of all-ready ALU work issue c0w0, c0w1, c1w0, c1w1 — the
	// rotation anchor now sits on CTA 1's second warp.
	var now int64
	for i := 0; i < 4; i++ {
		s.Tick(now)
		now++
	}
	if got := len(log.order); got != 4 {
		t.Fatalf("issued %d instructions in 4 ticks, want 4 (one scheduler)", got)
	}
	if log.ctaOrder[3] != 1 || log.order[3] != 1 {
		t.Fatalf("anchor warp is CTA%d w%d, want CTA1 w1 (wiring-order rotation)", log.ctaOrder[3], log.order[3])
	}

	// Evict CTA 1 mid-rotation: the anchor warp leaves the scheduler.
	var c1 *CTA
	for _, c := range s.Residents() {
		if c.ID == 1 {
			c1 = c
		}
	}
	s.Deactivate(c1, CTAPendingRF, now)

	// The next issue must continue the rotation at CTA 2 (wired after the
	// departed anchor), not restart at CTA 0's slot-0 warp.
	s.Tick(now)
	if got := len(log.order); got != 5 {
		t.Fatalf("issued %d instructions after eviction tick, want 5", got)
	}
	if log.ctaOrder[4] != 2 || log.order[4] != 0 {
		t.Errorf("post-eviction issue went to CTA%d w%d, want CTA2 w0 (rotation must survive the eviction)",
			log.ctaOrder[4], log.order[4])
	}
}

// TestGTOStaysGreedy pins the other scheduler: GTO must keep issuing from
// the same warp while it stays ready, rather than rotating.
func TestGTOStaysGreedy(t *testing.T) {
	const warps = 4
	b := isa.NewBuilder("gto-greedy")
	b.MovI(1, 7)
	for i := 0; i < 12; i++ {
		b.FAdd(isa.Reg(2+i), 1, 1)
	}
	b.Exit()
	prog := b.MustBuild(16)
	k := &kernels.Kernel{
		Profile:  kernels.Profile{Abbrev: "GTOG", WarpsPerCTA: warps, Regs: 16},
		Prog:     prog,
		GridCTAs: 1,
	}
	var err error
	k.Live, err = liveness.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.NumSchedulers = 1
	cfg.Scheduler = SchedGTO
	hier := mem.NewHierarchy(2<<20, 8, 600, 313, mem.DefaultLatencies())
	disp := &sliceDisp{total: 1}
	s := New(0, cfg, hier, disp, &nullPolicy{})
	log := &issueLog{counts: map[int]int{}}
	s.SetTrace(log)
	s.BindKernel(k, 0)
	drive(t, s, disp, 1_000_000)

	// Greedy: consecutive issues from the same warp dominate the stream.
	same := 0
	for i := 1; i < len(log.order); i++ {
		if log.order[i] == log.order[i-1] {
			same++
		}
	}
	if frac := float64(same) / float64(len(log.order)-1); frac < 0.5 {
		t.Errorf("GTO issue stream only %.0f%% greedy-consecutive: %v", 100*frac, log.order)
	}
}
