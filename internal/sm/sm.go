package sm

import (
	"container/heap"

	"finereg/internal/isa"
	"finereg/internal/kernels"
	"finereg/internal/mem"
	"finereg/internal/trace"
)

// Policy is the register-file management scheme plugged into an SM. One
// policy instance is attached per SM and owns that SM's register-file
// accounting (how much of the RF active and pending CTAs consume, and what
// a CTA switch costs).
//
// The SM invokes the hooks; policies drive residency through the SM
// primitives LaunchNew, Deactivate and Reactivate.
type Policy interface {
	// Name identifies the configuration in results.
	Name() string
	// KernelStart resets per-kernel state; called after the SM is bound to
	// a kernel and before the first FillSlots.
	KernelStart(s *SM, now int64)
	// FillSlots should activate (launch or resume) as many CTAs as the
	// policy's register resources allow. Called at kernel start and after
	// every CTA completion.
	FillSlots(s *SM, now int64)
	// OnCTAStalled fires when every warp of an active CTA is long-blocked
	// — the CTA-switch trigger.
	OnCTAStalled(s *SM, c *CTA, now int64)
	// OnCTAReady fires when a pending CTA's earliest warp dependency has
	// resolved, making it a resume candidate.
	OnCTAReady(s *SM, c *CTA, now int64)
	// OnCTAFinished fires when a CTA's last warp exits, after the SM has
	// released its scheduling slots and shared memory.
	OnCTAFinished(s *SM, c *CTA, now int64)
	// AllowIssue gates instruction issue (RegMutex's shared-register-pool
	// acquisition); return false to block the warp this cycle.
	AllowIssue(s *SM, w *Warp, now int64) bool
	// BlockedOnRegisters reports whether the policy currently has
	// schedulable work blocked only by register-resource depletion
	// (Figure 14b accounting).
	BlockedOnRegisters() bool
}

// Dispatcher feeds grid CTAs to SMs.
type Dispatcher interface {
	// NextCTAID returns the next unlaunched CTA index, or -1 when the grid
	// is exhausted.
	NextCTAID() int
	// Remaining returns how many CTAs are still unlaunched.
	Remaining() int
}

// Counters aggregates the SM's raw event counts.
type Counters struct {
	Instructions   int64
	CTAsLaunched   int64
	CTASwitches    int64
	CTAStallEvents int64
	RFReads        int64
	RFWrites       int64
	// DepletionCycles counts cycles in which register-resource depletion
	// (SRP for RegMutex, PCRF for FineReg) held back schedulable work —
	// the Figure 14(b) metric. Policies maintain it.
	DepletionCycles int64
	PCRFReads       int64
	PCRFWrites      int64
	SharedAccesses  int64

	// Table III: sum and count of first-issue→first-full-stall latencies.
	StallLatencySum float64
	StallLatencyN   int64

	// Figure 5: per-window touched-register fractions.
	RegWindowFracs []float64
}

// SM is one streaming multiprocessor.
type SM struct {
	ID   int
	Cfg  Config
	Pol  Policy
	Hier *mem.Hierarchy
	L1   *mem.Cache
	Disp Dispatcher

	meta *progMeta

	// Residency.
	residents  []*CTA
	schedWarps [][]*Warp // per scheduler
	greedy     []*Warp

	activeCTAs  int
	awake       int // active, non-exited warps with wakeAt <= now
	warpsUsed   int
	threadsUsed int
	shmemUsed   int
	pendingCTAs int

	events      eventHeap
	stamp       int64
	schedAssign int

	// instrumentation
	Cnt          Counters
	windowIssued int
	lineBuf      []uint64

	// sink receives cycle-level trace events; nil (the default) disables
	// tracing at the cost of one untaken branch per emission site.
	sink trace.Sink
}

// SetTrace attaches an event sink (nil disables tracing). Attach before
// BindKernel so lifecycle events are complete.
func (s *SM) SetTrace(t trace.Sink) { s.sink = t }

// Trace returns the attached sink (nil when tracing is off); policies use
// it to emit register-transfer events.
func (s *SM) Trace() trace.Sink { return s.sink }

// New builds an SM bound to the shared memory hierarchy and dispatcher.
func New(id int, cfg Config, hier *mem.Hierarchy, disp Dispatcher, pol Policy) *SM {
	s := &SM{
		ID:   id,
		Cfg:  cfg,
		Pol:  pol,
		Hier: hier,
		L1:   mem.MustNewCache(cfg.L1Bytes, cfg.L1Ways),
		Disp: disp,
	}
	s.schedWarps = make([][]*Warp, cfg.NumSchedulers)
	s.greedy = make([]*Warp, cfg.NumSchedulers)
	return s
}

// BindKernel prepares the SM to run kernel k and lets the policy populate
// its initial CTAs.
func (s *SM) BindKernel(k *kernels.Kernel, now int64) {
	s.meta = newProgMeta(k)
	s.Pol.KernelStart(s, now)
	s.Pol.FillSlots(s, now)
}

// Meta exposes the bound program's derived tables to policies.
func (s *SM) Meta() *ProgInfo {
	return &ProgInfo{meta: s.meta}
}

// ProgInfo is the policy-facing view of the bound kernel.
type ProgInfo struct{ meta *progMeta }

// RegCostPerCTA returns the full static allocation in warp-registers.
func (p *ProgInfo) RegCostPerCTA() int { return p.meta.regCost }

// WarpsPerCTA returns warps per CTA.
func (p *ProgInfo) WarpsPerCTA() int { return p.meta.warpsPerCTA }

// SharedMemPerCTA returns shared-memory bytes per CTA.
func (p *ProgInfo) SharedMemPerCTA() int { return p.meta.sharedMem }

// RegsPerThread returns the per-thread register allocation.
func (p *ProgInfo) RegsPerThread() int { return p.meta.prog.RegsPerThread }

// LiveCount returns the live-register count at pc.
func (p *ProgInfo) LiveCount(pc int) int { return p.meta.live.LiveCount(pc) }

// MaxRegAt returns the highest register index the instruction at pc
// references plus one (0 when it references none).
func (p *ProgInfo) MaxRegAt(pc int) int { return p.meta.maxReg[pc] }

// HighPressure returns the warp's register demand above the first brs
// registers at pc: live registers with index >= brs (values that must
// physically occupy shared-pool entries right now, e.g. in-flight load
// destinations) plus the destination the instruction at pc is about to
// define. This is what RegMutex's SRP must hold for the warp.
func (p *ProgInfo) HighPressure(pc, brs int) int {
	live := p.meta.live.At(pc)
	n := 0
	for _, r := range live.Regs() {
		if int(r) >= brs {
			n++
		}
	}
	in := p.meta.prog.At(pc)
	if in.Dst.Valid() && int(in.Dst) >= brs && !live.Has(in.Dst) {
		n++
	}
	return n
}

// LiveRegsOf sums the current live warp-register demand of a CTA.
func (p *ProgInfo) LiveRegsOf(c *CTA) int {
	total := 0
	for _, w := range c.Warps {
		total += w.LiveAt(p.meta.live)
	}
	return total
}

// LiveRefs visits every live register of every non-exited warp of c in
// warp order — the registers FineReg chains into the PCRF.
func (p *ProgInfo) LiveRefs(c *CTA, visit func(warp, reg uint8)) {
	for _, w := range c.Warps {
		if w.exited {
			continue
		}
		for _, r := range p.meta.live.At(w.PC).Regs() {
			visit(uint8(w.Idx), uint8(r))
		}
	}
}

// StallPCs returns the distinct PCs at which the CTA's warps are parked —
// the bit-vector cache probe set for an eviction.
func (p *ProgInfo) StallPCs(c *CTA) []int {
	seen := map[int]bool{}
	var pcs []int
	for _, w := range c.Warps {
		if !w.exited && !seen[w.PC] {
			seen[w.PC] = true
			pcs = append(pcs, w.PC)
		}
	}
	return pcs
}

// ---- Residency accounting ----

// ActiveCTAs returns the number of CTAs currently executing.
func (s *SM) ActiveCTAs() int { return s.activeCTAs }

// PendingCTAs returns the number of parked resident CTAs.
func (s *SM) PendingCTAs() int { return s.pendingCTAs }

// ResidentCTAs returns active + pending.
func (s *SM) ResidentCTAs() int { return s.activeCTAs + s.pendingCTAs }

// ActiveThreads returns threads of active CTAs still running.
func (s *SM) ActiveThreads() int { return s.threadsUsed }

// Residents returns the resident CTA list (policies iterate it to find
// resume candidates). The slice must not be mutated.
func (s *SM) Residents() []*CTA { return s.residents }

// CanActivateOne reports whether scheduling resources (CTA/warp/thread
// slots) and shared memory admit one more active CTA. newResident says
// whether the CTA would also be a new resident (needing shared memory);
// resuming a pending CTA already holds its shared memory.
func (s *SM) CanActivateOne(newResident bool) bool {
	if s.meta == nil {
		return false
	}
	if s.activeCTAs+1 > s.Cfg.MaxCTAs {
		return false
	}
	if s.warpsUsed+s.meta.warpsPerCTA > s.Cfg.MaxWarps {
		return false
	}
	if s.threadsUsed+s.meta.warpsPerCTA*32 > s.Cfg.MaxThreads {
		return false
	}
	if newResident && !s.CanParkResident() {
		return false
	}
	return true
}

// CanParkResident reports whether shared memory admits one more *resident*
// CTA regardless of scheduling slots (used when launching directly into a
// pending pool, as Reg+DRAM does).
func (s *SM) CanParkResident() bool {
	return s.meta != nil &&
		s.shmemUsed+s.meta.sharedMem <= s.Cfg.SharedMemBytes &&
		len(s.residents) < s.Cfg.MaxResidentCTAs
}

// LaunchNew takes the next CTA from the grid and activates it; warps may
// first issue at now+delay. Returns nil when the grid is exhausted or
// scheduling resources are full. The caller (policy) is responsible for
// register-file accounting.
func (s *SM) LaunchNew(now, delay int64) *CTA {
	if !s.CanActivateOne(true) {
		return nil
	}
	id := s.Disp.NextCTAID()
	if id < 0 {
		return nil
	}
	s.stamp++
	c := &CTA{
		ID:           id,
		State:        CTAActive,
		RegCost:      s.meta.regCost,
		launchStamp:  s.stamp,
		firstIssueAt: -1,
		firstStallAt: -1,
	}
	for i := 0; i < s.meta.warpsPerCTA; i++ {
		w := s.meta.newWarp(c, i, warpUID(id, i), s.stamp*64+int64(i))
		w.wakeAt = now + delay
		c.Warps = append(c.Warps, w)
	}
	s.residents = append(s.residents, c)
	s.shmemUsed += s.meta.sharedMem
	if s.sink != nil {
		s.sink.CTAEvent(s.ID, trace.CTALaunch, c.ID, now, 0)
	}
	s.enterActive(c, now, delay)
	s.Cnt.CTAsLaunched++
	return c
}

// LaunchParked takes the next grid CTA directly into a pending state
// (never yet executed). Its ReadyAt is now — it can start as soon as it is
// activated. Used by Reg+DRAM to queue CTAs in off-chip memory.
func (s *SM) LaunchParked(now int64, st CTAState) *CTA {
	if !s.CanParkResident() {
		return nil
	}
	id := s.Disp.NextCTAID()
	if id < 0 {
		return nil
	}
	s.stamp++
	c := &CTA{
		ID:           id,
		State:        st,
		RegCost:      s.meta.regCost,
		launchStamp:  s.stamp,
		firstIssueAt: -1,
		firstStallAt: -1,
		ReadyAt:      now,
	}
	for i := 0; i < s.meta.warpsPerCTA; i++ {
		c.Warps = append(c.Warps, s.meta.newWarp(c, i, warpUID(id, i), s.stamp*64+int64(i)))
	}
	s.residents = append(s.residents, c)
	s.shmemUsed += s.meta.sharedMem
	s.pendingCTAs++
	s.Cnt.CTAsLaunched++
	if s.sink != nil {
		s.sink.CTAEvent(s.ID, trace.CTALaunchParked, c.ID, now, 0)
	}
	return c
}

// enterActive wires an active CTA's live warps into the schedulers.
func (s *SM) enterActive(c *CTA, now, delay int64) {
	s.activeCTAs++
	for _, w := range c.Warps {
		if w.exited {
			continue
		}
		s.warpsUsed++
		s.threadsUsed += 32
		sid := s.schedAssign % s.Cfg.NumSchedulers
		s.schedAssign++
		s.schedWarps[sid] = append(s.schedWarps[sid], w)
		if w.wakeAt < now+delay {
			w.wakeAt = now + delay
		}
		if w.wakeAt > now {
			w.asleep = true
			heap.Push(&s.events, event{at: w.wakeAt, warp: w})
		} else {
			w.asleep = false
			s.awake++
		}
		if s.sink != nil {
			// A warp entering blocked waits out either the switch's
			// register transfer/drain (wake == now+delay) or a memory
			// dependency that outlasts it.
			r := trace.ReasonIdle
			if w.wakeAt > now {
				if w.wakeAt == now+delay {
					r = trace.ReasonTransfer
				} else {
					r = trace.ReasonMemory
				}
			}
			s.sink.WarpSpawn(s.ID, c.ID, w.Idx, now, w.wakeAt, r)
		}
	}
}

// Deactivate parks an active CTA in the given pending state, releasing its
// scheduling slots. The policy does its own register accounting around
// this call. ReadyAt is set to the earliest warp dependency resolution and
// an OnCTAReady event is scheduled.
func (s *SM) Deactivate(c *CTA, st CTAState, now int64) {
	if c.State != CTAActive {
		return
	}
	c.State = st
	s.activeCTAs--
	s.pendingCTAs++
	ready := int64(-1)
	for _, w := range c.Warps {
		if w.exited {
			continue
		}
		s.warpsUsed--
		s.threadsUsed -= 32
		w.longBlocked = false
		if !w.asleep {
			w.asleep = true // parked; Reactivate re-arms wake-up
			s.awake--
		}
		if ready < 0 || w.wakeAt < ready {
			ready = w.wakeAt
		}
		if s.sink != nil {
			s.sink.WarpDrop(s.ID, c.ID, w.Idx, now)
		}
	}
	c.stalledWarps = 0
	if ready < now {
		ready = now
	}
	c.ReadyAt = ready
	s.dropWarpsOf(c)
	heap.Push(&s.events, event{at: ready, cta: c})
	if s.sink != nil {
		s.sink.CTAEvent(s.ID, trace.CTADeactivate, c.ID, now, int64(st))
	}
}

// Reactivate resumes a pending CTA; its warps may first issue at
// now+delay.
func (s *SM) Reactivate(c *CTA, now, delay int64) {
	if c.State == CTAActive || c.State == CTAFinished {
		return
	}
	c.State = CTAActive
	s.pendingCTAs--
	if s.sink != nil {
		s.sink.CTAEvent(s.ID, trace.CTAReactivate, c.ID, now, delay)
	}
	s.enterActive(c, now, delay)
	s.Cnt.CTASwitches++
}

// warpUID derives a grid-globally unique warp identity from the CTA's
// grid ID, so a CTA's memory address streams are the same regardless of
// which SM it lands on or which policy schedules it.
func warpUID(ctaID, warpIdx int) uint64 {
	return uint64(ctaID)*64 + uint64(warpIdx) + 1
}

// dropWarpsOf removes a CTA's warps from the scheduler lists.
func (s *SM) dropWarpsOf(c *CTA) {
	for sid := range s.schedWarps {
		ws := s.schedWarps[sid][:0]
		for _, w := range s.schedWarps[sid] {
			if w.CTA != c {
				ws = append(ws, w)
			}
		}
		s.schedWarps[sid] = ws
		if s.greedy[sid] != nil && s.greedy[sid].CTA == c {
			s.greedy[sid] = nil
		}
	}
}

// finishCTA releases a completed CTA's residency and notifies the policy.
func (s *SM) finishCTA(c *CTA, now int64) {
	c.State = CTAFinished
	if s.sink != nil {
		s.sink.CTAEvent(s.ID, trace.CTAFinish, c.ID, now, 0)
	}
	s.activeCTAs--
	s.shmemUsed -= s.meta.sharedMem
	for i, r := range s.residents {
		if r == c {
			s.residents = append(s.residents[:i], s.residents[i+1:]...)
			break
		}
	}
	s.dropWarpsOf(c)
	s.Pol.OnCTAFinished(s, c, now)
	s.Pol.FillSlots(s, now)
}

// Idle reports whether the SM has nothing resident and no grid work.
func (s *SM) Idle() bool {
	return len(s.residents) == 0 && (s.Disp == nil || s.Disp.Remaining() == 0)
}

// ---- Event heap ----

type event struct {
	at   int64
	warp *Warp // warp wake, or
	cta  *CTA  // pending-CTA ready
}

type eventHeap []event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// ScheduleEvent lets policies register a future OnCTAReady check.
func (s *SM) ScheduleEvent(at int64, c *CTA) {
	heap.Push(&s.events, event{at: at, cta: c})
}

// ---- The cycle ----

// Tick processes cycle `now`: drains due events, lets each scheduler issue
// at most one instruction, and returns the next cycle at which this SM can
// make progress (or a very large value when fully idle). issued reports
// how many instructions issued this cycle.
func (s *SM) Tick(now int64) (next int64, issued int) {
	for len(s.events) > 0 && s.events[0].at <= now {
		e := heap.Pop(&s.events).(event)
		if e.warp != nil {
			w := e.warp
			if w.asleep && !w.exited && !w.atBarrier && w.wakeAt <= now && w.CTA.State == CTAActive {
				w.asleep = false
				s.awake++
				if w.longBlocked {
					w.longBlocked = false
					w.CTA.stalledWarps--
				}
				if s.sink != nil {
					s.sink.WarpWake(s.ID, w.CTA.ID, w.Idx, now)
				}
			}
			continue
		}
		if c := e.cta; c != nil && c.State.IsPending() && c.ReadyAt <= now {
			if s.sink != nil {
				s.sink.CTAEvent(s.ID, trace.CTAReady, c.ID, now, 0)
			}
			s.Pol.OnCTAReady(s, c, now)
		}
	}

	if s.awake == 0 {
		next = int64(1) << 62
		if len(s.events) > 0 {
			next = s.events[0].at
		}
		return next, 0
	}

	for sid := 0; sid < s.Cfg.NumSchedulers; sid++ {
		if w := s.pick(sid, now); w != nil {
			s.issue(w, now)
			s.greedy[sid] = w
			issued++
		}
	}

	next = int64(1) << 62
	if len(s.events) > 0 {
		next = s.events[0].at
	}
	// Any awake warp (issued, issue-ready, or denied by the policy) means
	// the SM must be revisited next cycle — a denied warp's retry is what
	// eventually breaks shared-register-pool allocation deadlock.
	if s.awake > 0 && now+1 < next {
		next = now + 1
	}
	return next, issued
}

// pick selects the warp scheduler sid issues from, blocking (and sleeping)
// warps whose dependencies are not ready.
func (s *SM) pick(sid int, now int64) *Warp {
	if s.Cfg.Scheduler == SchedLRR {
		return s.pickLRR(sid, now)
	}
	if g := s.greedy[sid]; g != nil && s.issueReady(g, now) {
		return g
	}
	var best *Warp
	for _, w := range s.schedWarps[sid] {
		if w.exited || w.wakeAt > now {
			continue
		}
		if !s.issueReady(w, now) {
			continue
		}
		if best == nil || w.Age < best.Age {
			best = w
		}
	}
	return best
}

// pickLRR rotates through the scheduler's warp list: the scan starts just
// after the last-issued warp (greedy[sid]) and wraps, so every ready warp
// gets a turn before any warp issues twice. Starting from slot 0 every
// cycle would permanently starve high-index warps whenever the low-index
// ones stay ready.
func (s *SM) pickLRR(sid int, now int64) *Warp {
	ws := s.schedWarps[sid]
	n := len(ws)
	if n == 0 {
		return nil
	}
	start := 0
	if g := s.greedy[sid]; g != nil {
		for i, w := range ws {
			if w == g {
				start = i + 1
				break
			}
		}
	}
	for i := 0; i < n; i++ {
		w := ws[(start+i)%n]
		if w.exited || w.wakeAt > now {
			continue
		}
		if s.issueReady(w, now) {
			return w
		}
	}
	return nil
}

// issueReady checks scoreboard readiness; a dependency-blocked warp is put
// to sleep as a side effect.
func (s *SM) issueReady(w *Warp, now int64) bool {
	if w.exited || w.CTA.State != CTAActive || w.wakeAt > now {
		return false
	}
	// Register acquisition happens at decode — before operands are ready —
	// so a warp that then blocks on memory holds its shared-pool grant
	// across the stall (the RegMutex contention the paper measures).
	if !s.Pol.AllowIssue(s, w, now) {
		if s.sink != nil {
			s.sink.WarpDeny(s.ID, w.CTA.ID, w.Idx, now)
		}
		return false
	}
	in := s.meta.prog.At(w.PC)
	dep := w.depReadyAt(in)
	if dep > now {
		reason := trace.ReasonScoreboard
		if s.sink != nil {
			reason = w.blockReason(in)
		}
		s.block(w, dep, now, reason)
		return false
	}
	return true
}

// block puts a warp to sleep until its dependency resolves and performs
// CTA-stall detection.
func (s *SM) block(w *Warp, until, now int64, reason trace.StallReason) {
	w.wakeAt = until
	if !w.asleep {
		w.asleep = true
		s.awake--
	}
	heap.Push(&s.events, event{at: until, warp: w})
	if s.sink != nil {
		s.sink.WarpBlock(s.ID, w.CTA.ID, w.Idx, now, until, reason)
	}
	if until-now >= s.Cfg.LongStall && !w.longBlocked {
		w.longBlocked = true
		c := w.CTA
		c.stalledWarps++
		if c.FullyStalled() {
			s.Cnt.CTAStallEvents++
			if s.sink != nil {
				s.sink.CTAEvent(s.ID, trace.CTAFullStall, c.ID, now, 0)
			}
			if c.firstStallAt < 0 && c.firstIssueAt >= 0 {
				c.firstStallAt = now
				s.Cnt.StallLatencySum += float64(now - c.firstIssueAt)
				s.Cnt.StallLatencyN++
			}
			// Only offer the CTA to the policy when it will actually be
			// absent for a while; evicting a CTA whose first warp wakes
			// shortly just convoys it behind the switch machinery.
			if c.EarliestWake()-now >= s.Cfg.LongStall {
				s.Pol.OnCTAStalled(s, c, now)
			}
		}
	}
}

// issue executes one instruction of warp w at cycle now.
func (s *SM) issue(w *Warp, now int64) {
	c := w.CTA
	in := s.meta.prog.At(w.PC)
	s.Cnt.Instructions++
	if c.firstIssueAt < 0 {
		c.firstIssueAt = now
	}
	if s.sink != nil {
		s.sink.WarpIssue(s.ID, c.ID, w.Idx, now, w.PC)
		if in.Dst.Valid() {
			// Remember what produces the destination so a later blocked
			// consumer can be attributed (memory vs. scoreboard).
			bit := uint64(1) << uint(in.Dst)
			if isa.ClassOf(in.Op) == isa.ClassMemGlobal {
				w.memWritten |= bit
			} else {
				w.memWritten &^= bit
			}
		}
	}

	// Register file event accounting (reads per source, one write).
	s.Cnt.RFReads += int64(in.NSrc)
	if in.Dst.Valid() {
		s.Cnt.RFWrites++
	}
	if s.Cfg.TrackRegUsage {
		s.trackUsage(w, in)
	}

	switch isa.ClassOf(in.Op) {
	case isa.ClassALU:
		if in.Dst.Valid() {
			w.regReady[in.Dst] = now + s.Cfg.ALULat
		}
		w.PC++
	case isa.ClassSFU:
		if in.Dst.Valid() {
			w.regReady[in.Dst] = now + s.Cfg.SFULat
		}
		w.PC++
	case isa.ClassMemShared:
		s.Cnt.SharedAccesses++
		if in.Dst.Valid() {
			w.regReady[in.Dst] = now + s.Cfg.ShmemLat
		}
		w.PC++
	case isa.ClassMemGlobal:
		w.memCounter++
		stream := w.UID*2654435761 + w.memCounter
		s.lineBuf = mem.Coalesce(in.Mem, stream, s.lineBuf)
		res := s.Hier.Access(s.L1, now, s.lineBuf, !in.IsLoad())
		if in.Dst.Valid() {
			w.regReady[in.Dst] = res.ReadyAt
		}
		if s.sink != nil {
			s.sink.MemAccess(s.ID, now, res.Transactions, res.L1Misses, res.L2Misses,
				s.Hier.DRAM.QueueDelay(now))
		}
		w.PC++
	case isa.ClassSync:
		// CTA-wide barrier: the warp parks until every non-exited warp of
		// its CTA arrives, then all release in the same cycle.
		w.PC++
		w.atBarrier = true
		c.barWaiting++
		if s.sink != nil {
			s.sink.WarpBarrier(s.ID, c.ID, w.Idx, now)
		}
		if c.barWaiting+c.finishedWarps >= len(c.Warps) {
			s.releaseBarrier(c, now)
		} else {
			// Park unschedulably (no wake event; the last arrival or a
			// sibling's exit releases the whole CTA).
			if !w.asleep {
				w.asleep = true
				s.awake--
			}
			w.wakeAt = barrierParked
		}
	case isa.ClassControl:
		if in.Op == isa.OpEXIT {
			s.exitWarp(w, now)
			return
		}
		w.PC = w.advanceBranch(s.meta, w.PC, in)
	}
}

// barrierParked is the wakeAt sentinel of a warp parked at a barrier: far
// enough in the future that the schedulers never consider it, released
// explicitly by releaseBarrier.
const barrierParked = int64(1) << 61

// releaseBarrier wakes every warp of c parked at its barrier (the paper's
// generators emit one barrier per loop iteration; arrivals from adjacent
// iterations are conflated CTA-wide, which is safe because release only
// ever *adds* schedulability).
func (s *SM) releaseBarrier(c *CTA, now int64) {
	for _, bw := range c.Warps {
		if !bw.atBarrier {
			continue
		}
		bw.atBarrier = false
		c.barWaiting--
		if bw.asleep && !bw.exited && bw.wakeAt == barrierParked {
			bw.wakeAt = now
			bw.asleep = false
			s.awake++
		}
		if s.sink != nil {
			s.sink.WarpBarrierRelease(s.ID, c.ID, bw.Idx, now)
		}
	}
}

// exitWarp retires a warp, freeing its scheduling slots; the CTA finishes
// when its last warp exits.
func (s *SM) exitWarp(w *Warp, now int64) {
	w.exited = true
	c := w.CTA
	c.finishedWarps++
	if s.sink != nil {
		s.sink.WarpExit(s.ID, c.ID, w.Idx, now)
	}
	// A warp exiting may satisfy a barrier its siblings are parked at.
	if c.barWaiting > 0 && c.barWaiting+c.finishedWarps >= len(c.Warps) {
		s.releaseBarrier(c, now)
	}
	if !w.asleep {
		s.awake--
	}
	s.warpsUsed--
	s.threadsUsed -= 32
	if c.Finished() {
		s.finishCTA(c, now)
		return
	}
	if c.FullyStalled() {
		// The exit may have completed a full-stall condition.
		s.Cnt.CTAStallEvents++
		if c.EarliestWake()-now >= s.Cfg.LongStall {
			s.Pol.OnCTAStalled(s, c, now)
		}
	}
}

// trackUsage implements the Figure 5 window instrumentation.
func (s *SM) trackUsage(w *Warp, in *isa.Instr) {
	if in.Dst.Valid() {
		w.touched = w.touched.Set(in.Dst)
	}
	in.Reads(func(r isa.Reg) { w.touched = w.touched.Set(r) })
	s.windowIssued++
	if s.windowIssued < 1000 {
		return
	}
	s.windowIssued = 0
	var touched, allocated int
	regsPerWarp := s.meta.prog.RegsPerThread
	for _, c := range s.residents {
		if c.State != CTAActive {
			continue
		}
		for _, cw := range c.Warps {
			touched += cw.touched.Count()
			cw.touched = 0
			allocated += regsPerWarp
		}
	}
	if allocated > 0 {
		s.Cnt.RegWindowFracs = append(s.Cnt.RegWindowFracs, float64(touched)/float64(allocated))
	}
}

// NextEventAt returns the earliest scheduled event (for idle detection).
func (s *SM) NextEventAt() int64 {
	if len(s.events) == 0 {
		return int64(1) << 62
	}
	return s.events[0].at
}
