package sm

import (
	"fmt"
	"math/bits"

	"finereg/internal/isa"
	"finereg/internal/kernels"
	"finereg/internal/mem"
	"finereg/internal/telemetry"
	"finereg/internal/trace"
)

// Policy is the register-file management scheme plugged into an SM. One
// policy instance is attached per SM and owns that SM's register-file
// accounting (how much of the RF active and pending CTAs consume, and what
// a CTA switch costs).
//
// The SM invokes the hooks; policies drive residency through the SM
// primitives LaunchNew, Deactivate and Reactivate.
//
// Sharing contract (load-bearing for the sharded run loop, DESIGN.md
// §15): an SM mutates no state outside itself except through the shared
// memory hierarchy (s.Hier), the grid dispatcher (s.Disp), and atomic
// telemetry counters — and every such touch happens either inside a
// lifecycle hook window (FillSlots, OnCTAStalled, OnCTAReady,
// OnCTAFinished — the SM enters the canonical-order gate before invoking
// them) or on a path that gates itself (LaunchNew/LaunchParked before the
// dispatcher, mem.Hierarchy views on their post-L1 paths). AllowIssue is
// the one hook on the per-cycle issue hot path and is therefore held to a
// stricter rule: it must read and write only per-SM state (its own policy
// instance, the warp, the SM) — never the hierarchy, the dispatcher, or
// anything shared. All six in-tree policies satisfy this (RegMutex, the
// only non-trivial AllowIssue, touches only its per-SM SRP accounts).
type Policy interface {
	// Name identifies the configuration in results.
	Name() string
	// KernelStart resets per-kernel state; called after the SM is bound to
	// a kernel and before the first FillSlots.
	KernelStart(s *SM, now int64)
	// FillSlots should activate (launch or resume) as many CTAs as the
	// policy's register resources allow. Called at kernel start and after
	// every CTA completion.
	FillSlots(s *SM, now int64)
	// OnCTAStalled fires when every warp of an active CTA is long-blocked
	// — the CTA-switch trigger.
	OnCTAStalled(s *SM, c *CTA, now int64)
	// OnCTAReady fires when a pending CTA's earliest warp dependency has
	// resolved, making it a resume candidate.
	OnCTAReady(s *SM, c *CTA, now int64)
	// OnCTAFinished fires when a CTA's last warp exits, after the SM has
	// released its scheduling slots and shared memory.
	OnCTAFinished(s *SM, c *CTA, now int64)
	// AllowIssue gates instruction issue (RegMutex's shared-register-pool
	// acquisition); return false to block the warp this cycle.
	AllowIssue(s *SM, w *Warp, now int64) bool
	// BlockedOnRegisters reports whether the policy currently has
	// schedulable work blocked only by register-resource depletion
	// (Figure 14b accounting).
	BlockedOnRegisters() bool
}

// Dispatcher feeds grid CTAs to SMs.
type Dispatcher interface {
	// NextCTAID returns the next unlaunched CTA index, or -1 when the grid
	// is exhausted.
	NextCTAID() int
	// Remaining returns how many CTAs are still unlaunched.
	Remaining() int
}

// Counters aggregates the SM's raw event counts.
type Counters struct {
	Instructions   int64
	CTAsLaunched   int64
	CTASwitches    int64
	CTAStallEvents int64
	RFReads        int64
	RFWrites       int64
	// DepletionCycles counts cycles in which register-resource depletion
	// (SRP for RegMutex, PCRF for FineReg) held back schedulable work —
	// the Figure 14(b) metric. Policies maintain it.
	DepletionCycles int64
	PCRFReads       int64
	PCRFWrites      int64
	SharedAccesses  int64

	// Table III: sum and count of first-issue→first-full-stall latencies.
	StallLatencySum float64
	StallLatencyN   int64

	// Figure 5: per-window touched-register fractions.
	RegWindowFracs []float64
}

// SM is one streaming multiprocessor.
type SM struct {
	ID   int
	Cfg  Config
	Pol  Policy
	Hier *mem.Hierarchy
	L1   *mem.Cache
	Disp Dispatcher

	meta *progMeta

	// Residency.
	residents  []*CTA
	schedWarps [][]*Warp // per scheduler, sorted by schedSeq
	// ready is the issue-candidate partition of schedWarps: per scheduler,
	// the awake (non-exited, active-CTA, wakeAt <= now) warps, kept sorted
	// by schedSeq so scan order matches the full wiring order. Maintained in
	// lockstep with the awake counter; pick/pickLRR scan only this.
	ready   [][]*Warp
	scanBuf []*Warp // reusable pick-scan snapshot (see pick)
	greedy  []*Warp
	// rotor is the per-scheduler LRR rotation anchor: the schedSeq of the
	// last-issued warp. Unlike the greedy pointer it survives the warp
	// leaving the scheduler (CTA switch or exit compaction), so a rotation
	// resumes after the departed warp's position instead of resetting to
	// slot 0 and re-serving the low-index warps.
	rotor   []int64
	seqNext []int64 // per-scheduler wiring sequence counter

	activeCTAs  int
	awake       int // active, non-exited warps with wakeAt <= now
	warpsUsed   int
	threadsUsed int
	shmemUsed   int
	pendingCTAs int

	events      eventHeap
	stamp       int64
	schedAssign int

	// Occupancy integrals (Σ value·dt), maintained incrementally at state
	// transitions instead of sampled every global step by the run loop.
	// int64 is exact: peak values (threads ≤ 2048) times the cycle budget
	// (≤ 2e8) stay far below 2^53, so these match the old per-step float
	// accumulation bit for bit.
	statLastT   int64
	residentInt int64
	activeInt   int64
	threadsInt  int64

	// instrumentation
	Cnt          Counters
	windowIssued int
	lineBuf      []uint64

	// sink receives cycle-level trace events; nil (the default) disables
	// tracing at the cost of one untaken branch per emission site.
	sink trace.Sink
}

// SetTrace attaches an event sink (nil disables tracing). Attach before
// BindKernel so lifecycle events are complete.
func (s *SM) SetTrace(t trace.Sink) { s.sink = t }

// Trace returns the attached sink (nil when tracing is off); policies use
// it to emit register-transfer events.
func (s *SM) Trace() trace.Sink { return s.sink }

// syncShared enters the canonical shared-state order: it returns only
// once every lower-indexed SM of the current parallel step has completed
// its Tick, with any speculatively buffered L2 reads committed first
// (their canonical slot precedes whatever the caller is about to touch).
// Serial runs (nil gate) and steps outside a parallel round pay a couple
// of branches. Idempotent within a Tick.
func (s *SM) syncShared() {
	s.Hier.Sync()
}

// ops returns the run's telemetry scope (nil when unobserved).
func (s *SM) ops() *telemetry.Scope { return s.Hier.Ops() }

// New builds an SM bound to the shared memory hierarchy and dispatcher.
func New(id int, cfg Config, hier *mem.Hierarchy, disp Dispatcher, pol Policy) *SM {
	s := &SM{
		ID:   id,
		Cfg:  cfg,
		Pol:  pol,
		Hier: hier,
		L1:   mem.MustNewCache(cfg.L1Bytes, cfg.L1Ways),
		Disp: disp,
	}
	s.schedWarps = make([][]*Warp, cfg.NumSchedulers)
	s.ready = make([][]*Warp, cfg.NumSchedulers)
	s.greedy = make([]*Warp, cfg.NumSchedulers)
	s.rotor = make([]int64, cfg.NumSchedulers)
	s.seqNext = make([]int64, cfg.NumSchedulers)
	return s
}

// BindKernel prepares the SM to run kernel k and lets the policy populate
// its initial CTAs. The SM must be drained: stream segments rebind only
// after the previous kernel's CTAs have all retired, so a resident CTA
// here means the run loop terminated early and the old kernel's state
// would be silently reinterpreted under the new program's tables.
func (s *SM) BindKernel(k *kernels.Kernel, now int64) {
	if len(s.residents) > 0 {
		panic(fmt.Sprintf("sm: SM%d rebound with %d resident CTAs", s.ID, len(s.residents)))
	}
	s.meta = newProgMeta(k)
	s.statLastT = now
	s.residentInt, s.activeInt, s.threadsInt = 0, 0, 0
	s.Pol.KernelStart(s, now)
	s.Pol.FillSlots(s, now)
}

// Meta exposes the bound program's derived tables to policies.
func (s *SM) Meta() *ProgInfo {
	return &ProgInfo{meta: s.meta}
}

// ProgInfo is the policy-facing view of the bound kernel.
type ProgInfo struct{ meta *progMeta }

// RegCostPerCTA returns the full static allocation in warp-registers.
func (p *ProgInfo) RegCostPerCTA() int { return p.meta.regCost }

// WarpsPerCTA returns warps per CTA.
func (p *ProgInfo) WarpsPerCTA() int { return p.meta.warpsPerCTA }

// SharedMemPerCTA returns shared-memory bytes per CTA.
func (p *ProgInfo) SharedMemPerCTA() int { return p.meta.sharedMem }

// RegsPerThread returns the per-thread register allocation.
func (p *ProgInfo) RegsPerThread() int { return p.meta.prog.RegsPerThread }

// LiveCount returns the live-register count at pc.
func (p *ProgInfo) LiveCount(pc int) int { return p.meta.live.LiveCount(pc) }

// MaxRegAt returns the highest register index the instruction at pc
// references plus one (0 when it references none).
func (p *ProgInfo) MaxRegAt(pc int) int { return p.meta.maxReg[pc] }

// HighPressure returns the warp's register demand above the first brs
// registers at pc: live registers with index >= brs (values that must
// physically occupy shared-pool entries right now, e.g. in-flight load
// destinations) plus the destination the instruction at pc is about to
// define. This is what RegMutex's SRP must hold for the warp.
func (p *ProgInfo) HighPressure(pc, brs int) int {
	live := p.meta.live.At(pc)
	// Registers >= brs are exactly the bits that survive shifting the
	// vector right by brs (allocation-free, unlike materializing Regs()).
	n := bits.OnesCount64(uint64(live) >> uint(brs))
	in := p.meta.prog.At(pc)
	if in.Dst.Valid() && int(in.Dst) >= brs && !live.Has(in.Dst) {
		n++
	}
	return n
}

// LiveRegsOf sums the current live warp-register demand of a CTA.
func (p *ProgInfo) LiveRegsOf(c *CTA) int {
	total := 0
	for _, w := range c.Warps {
		total += w.LiveAt(p.meta.live)
	}
	return total
}

// LiveRefs visits every live register of every non-exited warp of c in
// warp order — the registers FineReg chains into the PCRF.
func (p *ProgInfo) LiveRefs(c *CTA, visit func(warp, reg uint8)) {
	for _, w := range c.Warps {
		if w.exited {
			continue
		}
		// Walk the set bits directly; this runs on every eviction, and
		// materializing Regs() allocated a slice per warp.
		for v := uint64(p.meta.live.At(w.PC)); v != 0; v &= v - 1 {
			visit(uint8(w.Idx), uint8(bits.TrailingZeros64(v)))
		}
	}
}

// StallPCs returns the distinct PCs at which the CTA's warps are parked —
// the bit-vector cache probe set for an eviction.
func (p *ProgInfo) StallPCs(c *CTA) []int {
	// A CTA has at most a handful of warps, so linear dedup beats a map
	// (which cost an allocation per eviction).
	var pcs []int
	for _, w := range c.Warps {
		if w.exited {
			continue
		}
		dup := false
		for _, pc := range pcs {
			if pc == w.PC {
				dup = true
				break
			}
		}
		if !dup {
			pcs = append(pcs, w.PC)
		}
	}
	return pcs
}

// ---- Residency accounting ----

// ActiveCTAs returns the number of CTAs currently executing.
func (s *SM) ActiveCTAs() int { return s.activeCTAs }

// PendingCTAs returns the number of parked resident CTAs.
func (s *SM) PendingCTAs() int { return s.pendingCTAs }

// ResidentCTAs returns active + pending.
func (s *SM) ResidentCTAs() int { return s.activeCTAs + s.pendingCTAs }

// ActiveThreads returns threads of active CTAs still running.
func (s *SM) ActiveThreads() int { return s.threadsUsed }

// HasResidents reports whether any CTA is resident (O(1); the run loop
// polls this after every skipped-SM round).
func (s *SM) HasResidents() bool { return len(s.residents) > 0 }

// Residents returns the resident CTA list (policies iterate it to find
// resume candidates). The slice must not be mutated.
func (s *SM) Residents() []*CTA { return s.residents }

// statSample closes the occupancy integrals' current piece at cycle now.
// Every mutation of activeCTAs/pendingCTAs/threadsUsed must call this
// first, so the integrals always reflect the value that held on
// [statLastT, now).
func (s *SM) statSample(now int64) {
	dt := now - s.statLastT
	if dt <= 0 {
		return
	}
	s.statLastT = now
	s.residentInt += int64(s.activeCTAs+s.pendingCTAs) * dt
	s.activeInt += int64(s.activeCTAs) * dt
	s.threadsInt += int64(s.threadsUsed) * dt
}

// OccupancyIntegrals flushes the incremental occupancy integrals up to
// cycle end and returns Σresident·dt, Σactive·dt and Σthreads·dt since
// BindKernel. The run loop divides by total cycles to recover the same
// averages the dense per-step sampling produced.
func (s *SM) OccupancyIntegrals(end int64) (resident, active, threads int64) {
	s.statSample(end)
	return s.residentInt, s.activeInt, s.threadsInt
}

// CanActivateOne reports whether scheduling resources (CTA/warp/thread
// slots) and shared memory admit one more active CTA. newResident says
// whether the CTA would also be a new resident (needing shared memory);
// resuming a pending CTA already holds its shared memory.
func (s *SM) CanActivateOne(newResident bool) bool {
	if s.meta == nil {
		return false
	}
	if s.activeCTAs+1 > s.Cfg.MaxCTAs {
		return false
	}
	if s.warpsUsed+s.meta.warpsPerCTA > s.Cfg.MaxWarps {
		return false
	}
	if s.threadsUsed+s.meta.warpsPerCTA*32 > s.Cfg.MaxThreads {
		return false
	}
	if newResident && !s.CanParkResident() {
		return false
	}
	return true
}

// CanParkResident reports whether shared memory admits one more *resident*
// CTA regardless of scheduling slots (used when launching directly into a
// pending pool, as Reg+DRAM does).
func (s *SM) CanParkResident() bool {
	return s.meta != nil &&
		s.shmemUsed+s.meta.sharedMem <= s.Cfg.SharedMemBytes &&
		len(s.residents) < s.Cfg.MaxResidentCTAs
}

// LaunchNew takes the next CTA from the grid and activates it; warps may
// first issue at now+delay. Returns nil when the grid is exhausted or
// scheduling resources are full. The caller (policy) is responsible for
// register-file accounting.
func (s *SM) LaunchNew(now, delay int64) *CTA {
	if !s.CanActivateOne(true) {
		return nil
	}
	s.syncShared() // the dispatcher is shared: take CTA IDs in canonical order
	id := s.Disp.NextCTAID()
	if id < 0 {
		return nil
	}
	s.stamp++
	c := &CTA{
		ID:           id,
		State:        CTAActive,
		RegCost:      s.meta.regCost,
		launchStamp:  s.stamp,
		firstIssueAt: -1,
		firstStallAt: -1,
	}
	for i := 0; i < s.meta.warpsPerCTA; i++ {
		w := s.meta.newWarp(c, i, warpUID(id, i), s.stamp*64+int64(i))
		w.wakeAt = now + delay
		c.Warps = append(c.Warps, w)
	}
	s.residents = append(s.residents, c)
	s.shmemUsed += s.meta.sharedMem
	if s.sink != nil {
		s.sink.CTAEvent(s.ID, trace.CTALaunch, c.ID, now, 0)
	}
	s.enterActive(c, now, delay)
	s.Cnt.CTAsLaunched++
	telCTALaunches.IncScoped(s.ops())
	return c
}

// LaunchParked takes the next grid CTA directly into a pending state
// (never yet executed). Its ReadyAt is now — it can start as soon as it is
// activated. Used by Reg+DRAM to queue CTAs in off-chip memory.
func (s *SM) LaunchParked(now int64, st CTAState) *CTA {
	if !s.CanParkResident() {
		return nil
	}
	s.syncShared() // the dispatcher is shared: take CTA IDs in canonical order
	id := s.Disp.NextCTAID()
	if id < 0 {
		return nil
	}
	s.stamp++
	c := &CTA{
		ID:           id,
		State:        st,
		RegCost:      s.meta.regCost,
		launchStamp:  s.stamp,
		firstIssueAt: -1,
		firstStallAt: -1,
		ReadyAt:      now,
	}
	for i := 0; i < s.meta.warpsPerCTA; i++ {
		c.Warps = append(c.Warps, s.meta.newWarp(c, i, warpUID(id, i), s.stamp*64+int64(i)))
	}
	s.residents = append(s.residents, c)
	s.shmemUsed += s.meta.sharedMem
	s.statSample(now)
	s.pendingCTAs++
	s.Cnt.CTAsLaunched++
	telCTALaunches.IncScoped(s.ops())
	if s.sink != nil {
		s.sink.CTAEvent(s.ID, trace.CTALaunchParked, c.ID, now, 0)
	}
	return c
}

// enterActive wires an active CTA's live warps into the schedulers.
func (s *SM) enterActive(c *CTA, now, delay int64) {
	s.statSample(now)
	s.activeCTAs++
	for _, w := range c.Warps {
		if w.exited {
			continue
		}
		s.warpsUsed++
		s.threadsUsed += 32
		sid := s.schedAssign % s.Cfg.NumSchedulers
		s.schedAssign++
		s.seqNext[sid]++
		w.schedSeq = s.seqNext[sid]
		w.schedID = sid
		s.schedWarps[sid] = append(s.schedWarps[sid], w)
		if w.wakeAt < now+delay {
			w.wakeAt = now + delay
		}
		if w.wakeAt > now {
			w.asleep = true
			s.events.push(event{at: w.wakeAt, warp: w})
		} else {
			w.asleep = false
			s.awake++
			s.readyAdd(w)
		}
		if s.sink != nil {
			// A warp entering blocked waits out either the switch's
			// register transfer/drain (wake == now+delay) or a memory
			// dependency that outlasts it.
			r := trace.ReasonIdle
			if w.wakeAt > now {
				if w.wakeAt == now+delay {
					r = trace.ReasonTransfer
				} else {
					r = trace.ReasonMemory
				}
			}
			s.sink.WarpSpawn(s.ID, c.ID, w.Idx, now, w.wakeAt, r)
		}
	}
}

// Deactivate parks an active CTA in the given pending state, releasing its
// scheduling slots. The policy does its own register accounting around
// this call. ReadyAt is set to the earliest warp dependency resolution and
// an OnCTAReady event is scheduled.
func (s *SM) Deactivate(c *CTA, st CTAState, now int64) {
	if c.State != CTAActive {
		return
	}
	s.statSample(now)
	c.State = st
	s.activeCTAs--
	s.pendingCTAs++
	ready := int64(-1)
	for _, w := range c.Warps {
		if w.exited {
			continue
		}
		s.warpsUsed--
		s.threadsUsed -= 32
		w.longBlocked = false
		if !w.asleep {
			w.asleep = true // parked; Reactivate re-arms wake-up
			s.awake--
			s.readyRemove(w)
		}
		if ready < 0 || w.wakeAt < ready {
			ready = w.wakeAt
		}
		if s.sink != nil {
			s.sink.WarpDrop(s.ID, c.ID, w.Idx, now)
		}
	}
	c.stalledWarps = 0
	if ready < now {
		ready = now
	}
	c.ReadyAt = ready
	s.dropWarpsOf(c)
	s.events.push(event{at: ready, cta: c})
	if s.sink != nil {
		s.sink.CTAEvent(s.ID, trace.CTADeactivate, c.ID, now, int64(st))
	}
}

// Reactivate resumes a pending CTA; its warps may first issue at
// now+delay.
func (s *SM) Reactivate(c *CTA, now, delay int64) {
	if c.State == CTAActive || c.State == CTAFinished {
		return
	}
	c.State = CTAActive
	s.pendingCTAs--
	if s.sink != nil {
		s.sink.CTAEvent(s.ID, trace.CTAReactivate, c.ID, now, delay)
	}
	s.enterActive(c, now, delay)
	s.Cnt.CTASwitches++
	telCTASwitches.IncScoped(s.ops())
}

// warpUID derives a grid-globally unique warp identity from the CTA's
// grid ID, so a CTA's memory address streams are the same regardless of
// which SM it lands on or which policy schedules it.
func warpUID(ctaID, warpIdx int) uint64 {
	return uint64(ctaID)*64 + uint64(warpIdx) + 1
}

// readyAdd inserts w into its scheduler's ready partition at its
// schedSeq-sorted position. Insertion scans from the tail: freshly wired
// warps carry the highest sequence so the common case is an append.
func (s *SM) readyAdd(w *Warp) {
	rs := s.ready[w.schedID]
	i := len(rs)
	for i > 0 && rs[i-1].schedSeq > w.schedSeq {
		i--
	}
	rs = append(rs, nil)
	copy(rs[i+1:], rs[i:])
	rs[i] = w
	s.ready[w.schedID] = rs
}

// readyRemove deletes w from its scheduler's ready partition (no-op if
// absent), preserving the sorted order of the rest.
func (s *SM) readyRemove(w *Warp) {
	rs := s.ready[w.schedID]
	for i, x := range rs {
		if x == w {
			s.ready[w.schedID] = append(rs[:i], rs[i+1:]...)
			return
		}
	}
}

// schedRemove unwires a single warp from its scheduler list (exit
// compaction — exited warps no longer linger until CTA completion).
func (s *SM) schedRemove(w *Warp) {
	ws := s.schedWarps[w.schedID]
	for i, x := range ws {
		if x == w {
			s.schedWarps[w.schedID] = append(ws[:i], ws[i+1:]...)
			return
		}
	}
}

// dropWarpsOf removes a CTA's warps from the scheduler lists and ready
// partitions. Deactivate has already slept (and ready-removed) the CTA's
// awake warps when this runs, so the ready filter is a defensive no-op on
// that path; it keeps the partitions consistent for any future caller.
//
// This can run under an in-progress pick scan (block → full stall →
// policy eviction), which is why pick/pickLRR scan a snapshot: compacting
// the live list an iterator is walking used to shift unrelated ready
// warps behind the cursor and silently skip them for the cycle.
func (s *SM) dropWarpsOf(c *CTA) {
	for sid := range s.schedWarps {
		ws := s.schedWarps[sid][:0]
		for _, w := range s.schedWarps[sid] {
			if w.CTA != c {
				ws = append(ws, w)
			}
		}
		s.schedWarps[sid] = ws
		rs := s.ready[sid][:0]
		for _, w := range s.ready[sid] {
			if w.CTA != c {
				rs = append(rs, w)
			}
		}
		s.ready[sid] = rs
		if s.greedy[sid] != nil && s.greedy[sid].CTA == c {
			s.greedy[sid] = nil
		}
	}
}

// finishCTA releases a completed CTA's residency and notifies the policy.
func (s *SM) finishCTA(c *CTA, now int64) {
	// The policy hooks below (OnCTAFinished, FillSlots) and the shared
	// telemetry may touch shared state: enter the canonical order first.
	s.syncShared()
	c.State = CTAFinished
	telCTARetired.IncScoped(s.ops())
	if s.sink != nil {
		s.sink.CTAEvent(s.ID, trace.CTAFinish, c.ID, now, 0)
	}
	s.statSample(now)
	s.activeCTAs--
	s.shmemUsed -= s.meta.sharedMem
	for i, r := range s.residents {
		if r == c {
			s.residents = append(s.residents[:i], s.residents[i+1:]...)
			break
		}
	}
	s.dropWarpsOf(c)
	s.Pol.OnCTAFinished(s, c, now)
	s.Pol.FillSlots(s, now)
}

// Idle reports whether the SM has nothing resident and no grid work.
func (s *SM) Idle() bool {
	return len(s.residents) == 0 && (s.Disp == nil || s.Disp.Remaining() == 0)
}

// ---- Event heap ----

type event struct {
	at   int64
	warp *Warp // warp wake, or
	cta  *CTA  // pending-CTA ready
}

// eventHeap is a hand-rolled binary min-heap on event.at. It replicates
// container/heap's sift comparisons exactly (strict < with the same
// up/down order), so equal-time events pop in the same order as before —
// that tie order is observable through same-cycle OnCTAReady delivery —
// while push/pop avoid boxing each event into an interface value, which
// cost one allocation per warp block on the hot path.
type eventHeap []event

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

func (h eventHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || h[j].at >= h[i].at {
			return
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h *eventHeap) pop() event {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	old.down(0, n)
	e := old[n]
	old[n] = event{} // release warp/CTA pointers to the collector
	*h = old[:n]
	return e
}

func (h eventHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			return
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h[j2].at < h[j1].at {
			j = j2 // right child
		}
		if h[j].at >= h[i].at {
			return
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// ScheduleEvent lets policies register a future OnCTAReady check.
func (s *SM) ScheduleEvent(at int64, c *CTA) {
	s.events.push(event{at: at, cta: c})
}

// ---- The cycle ----

// Tick processes cycle `now`: drains due events, lets each scheduler issue
// at most one instruction, and returns the next cycle at which this SM can
// make progress (or a very large value when fully idle). issued reports
// how many instructions issued this cycle.
func (s *SM) Tick(now int64) (next int64, issued int) {
	for len(s.events) > 0 && s.events[0].at <= now {
		e := s.events.pop()
		if e.warp != nil {
			w := e.warp
			if w.asleep && !w.exited && !w.atBarrier && w.wakeAt <= now && w.CTA.State == CTAActive {
				w.asleep = false
				s.awake++
				s.readyAdd(w)
				if w.longBlocked {
					w.longBlocked = false
					w.CTA.stalledWarps--
				}
				if s.sink != nil {
					s.sink.WarpWake(s.ID, w.CTA.ID, w.Idx, now)
				}
			}
			continue
		}
		if c := e.cta; c != nil && c.State.IsPending() && c.ReadyAt <= now {
			if s.sink != nil {
				s.sink.CTAEvent(s.ID, trace.CTAReady, c.ID, now, 0)
			}
			s.syncShared() // hook window: the policy may touch Hier/Disp
			s.Pol.OnCTAReady(s, c, now)
		}
	}

	if s.awake == 0 {
		next = int64(1) << 62
		if len(s.events) > 0 {
			next = s.events[0].at
		}
		return next, 0
	}

	for sid := 0; sid < s.Cfg.NumSchedulers; sid++ {
		if w := s.pick(sid, now); w != nil {
			s.issue(w, now)
			s.greedy[sid] = w
			s.rotor[sid] = w.schedSeq
			issued++
		}
	}

	next = int64(1) << 62
	if len(s.events) > 0 {
		next = s.events[0].at
	}
	// Any awake warp (issued, issue-ready, or denied by the policy) means
	// the SM must be revisited next cycle — a denied warp's retry is what
	// eventually breaks shared-register-pool allocation deadlock.
	if s.awake > 0 && now+1 < next {
		next = now + 1
	}
	return next, issued
}

// pick selects the warp scheduler sid issues from, blocking (and sleeping)
// warps whose dependencies are not ready.
//
// Both schedulers scan a snapshot of the ready partition rather than the
// full warp list: the sleeping majority contributes nothing to a pick, so
// skipping it is pure savings. The snapshot (a reusable buffer, no
// allocation) makes the scan safe against issueReady's side effects —
// blocking a warp can evict its fully-stalled CTA, which edits the live
// ready list mid-scan; the per-warp staleness guard below then skips
// anything the eviction put to sleep, exactly as the dense scan's
// wakeAt/CTA-state checks did.
func (s *SM) pick(sid int, now int64) *Warp {
	if s.Cfg.Scheduler == SchedLRR {
		return s.pickLRR(sid, now)
	}
	if g := s.greedy[sid]; g != nil && s.issueReady(g, now) {
		return g
	}
	var best *Warp
	buf := append(s.scanBuf[:0], s.ready[sid]...)
	for _, w := range buf {
		if w.asleep || w.exited || w.wakeAt > now {
			continue // went stale mid-scan
		}
		if !s.issueReady(w, now) {
			continue
		}
		if best == nil || w.Age < best.Age {
			best = w
		}
	}
	s.scanBuf = buf[:0]
	return best
}

// pickLRR rotates through the scheduler's warp list: the scan starts just
// after the rotation anchor — the wiring sequence of the last-issued warp
// — and wraps, so every ready warp gets a turn before any warp issues
// twice. Starting from slot 0 every cycle would permanently starve
// high-index warps whenever the low-index ones stay ready. The anchor is a
// sequence number rather than a warp pointer so that a mid-rotation CTA
// eviction (which unwires the anchor warp) resumes the rotation after the
// departed warp's position instead of handing slot 0 an extra turn.
func (s *SM) pickLRR(sid int, now int64) *Warp {
	ws := append(s.scanBuf[:0], s.ready[sid]...)
	defer func() { s.scanBuf = ws[:0] }()
	n := len(ws)
	if n == 0 {
		return nil
	}
	// The partition is sorted by schedSeq (insertion keeps order), so the
	// rotation start is the first entry wired after the anchor; none found
	// means the anchor was the tail and the scan wraps to slot 0. Sleeping
	// warps are absent from the partition but their relative order is
	// unchanged, so this visits the same awake warps in the same order as
	// a full-list rotation did.
	start := 0
	if rot := s.rotor[sid]; rot > 0 {
		start = n
		for i, w := range ws {
			if w.schedSeq > rot {
				start = i
				break
			}
		}
	}
	for i := 0; i < n; i++ {
		w := ws[(start+i)%n]
		if w.asleep || w.exited || w.wakeAt > now {
			continue // went stale mid-scan
		}
		if s.issueReady(w, now) {
			return w
		}
	}
	return nil
}

// issueReady checks scoreboard readiness; a dependency-blocked warp is put
// to sleep as a side effect.
func (s *SM) issueReady(w *Warp, now int64) bool {
	if w.exited || w.CTA.State != CTAActive || w.wakeAt > now {
		return false
	}
	// Register acquisition happens at decode — before operands are ready —
	// so a warp that then blocks on memory holds its shared-pool grant
	// across the stall (the RegMutex contention the paper measures).
	if !s.Pol.AllowIssue(s, w, now) {
		if s.sink != nil {
			s.sink.WarpDeny(s.ID, w.CTA.ID, w.Idx, now)
		}
		return false
	}
	in := s.meta.prog.At(w.PC)
	dep := w.depReadyAt(in)
	if dep > now {
		reason := trace.ReasonScoreboard
		if s.sink != nil {
			reason = w.blockReason(in)
		}
		s.block(w, dep, now, reason)
		return false
	}
	return true
}

// block puts a warp to sleep until its dependency resolves and performs
// CTA-stall detection.
func (s *SM) block(w *Warp, until, now int64, reason trace.StallReason) {
	w.wakeAt = until
	if !w.asleep {
		w.asleep = true
		s.awake--
		s.readyRemove(w)
	}
	s.events.push(event{at: until, warp: w})
	if s.sink != nil {
		s.sink.WarpBlock(s.ID, w.CTA.ID, w.Idx, now, until, reason)
	}
	if until-now >= s.Cfg.LongStall && !w.longBlocked {
		w.longBlocked = true
		c := w.CTA
		c.stalledWarps++
		if c.FullyStalled() {
			s.Cnt.CTAStallEvents++
			telCTAFullStall.IncScoped(s.ops())
			if s.sink != nil {
				s.sink.CTAEvent(s.ID, trace.CTAFullStall, c.ID, now, 0)
			}
			if c.firstStallAt < 0 && c.firstIssueAt >= 0 {
				c.firstStallAt = now
				s.Cnt.StallLatencySum += float64(now - c.firstIssueAt)
				s.Cnt.StallLatencyN++
			}
			// Only offer the CTA to the policy when it will actually be
			// absent for a while; evicting a CTA whose first warp wakes
			// shortly just convoys it behind the switch machinery.
			if c.EarliestWake()-now >= s.Cfg.LongStall {
				s.syncShared() // hook window: the policy may touch Hier/Disp
				s.Pol.OnCTAStalled(s, c, now)
			}
		}
	}
}

// issue executes one instruction of warp w at cycle now.
func (s *SM) issue(w *Warp, now int64) {
	c := w.CTA
	in := s.meta.prog.At(w.PC)
	s.Cnt.Instructions++
	if c.firstIssueAt < 0 {
		c.firstIssueAt = now
	}
	if s.sink != nil {
		s.sink.WarpIssue(s.ID, c.ID, w.Idx, now, w.PC)
		if in.Dst.Valid() {
			// Remember what produces the destination so a later blocked
			// consumer can be attributed (memory vs. scoreboard).
			bit := uint64(1) << uint(in.Dst)
			if isa.ClassOf(in.Op) == isa.ClassMemGlobal {
				w.memWritten |= bit
			} else {
				w.memWritten &^= bit
			}
		}
	}

	// Register file event accounting (reads per source, one write).
	s.Cnt.RFReads += int64(in.NSrc)
	if in.Dst.Valid() {
		s.Cnt.RFWrites++
	}
	if s.Cfg.TrackRegUsage {
		s.trackUsage(w, in)
	}

	switch isa.ClassOf(in.Op) {
	case isa.ClassALU:
		if in.Dst.Valid() {
			w.regReady[in.Dst] = now + s.Cfg.ALULat
		}
		w.PC++
	case isa.ClassSFU:
		if in.Dst.Valid() {
			w.regReady[in.Dst] = now + s.Cfg.SFULat
		}
		w.PC++
	case isa.ClassMemShared:
		s.Cnt.SharedAccesses++
		if in.Dst.Valid() {
			w.regReady[in.Dst] = now + s.Cfg.ShmemLat
		}
		w.PC++
	case isa.ClassMemGlobal:
		w.memCounter++
		stream := w.UID*2654435761 + w.memCounter
		s.lineBuf = mem.Coalesce(in.Mem, stream, s.lineBuf)
		res := s.Hier.Access(s.L1, now, s.lineBuf, !in.IsLoad())
		if in.Dst.Valid() {
			w.regReady[in.Dst] = res.ReadyAt
			if res.Speculative && in.IsLoad() {
				// A replayed commit must be able to correct the
				// provisional ready time before the next cycle reads it.
				s.Hier.SpecPatch(&w.regReady[in.Dst])
			}
		}
		if s.sink != nil {
			// QueueDelay reads the shared DRAM channel: traced sharded
			// runs must enter the canonical order even when the L1
			// absorbed the access (speculation is off under tracing, so
			// the emitted counts are final).
			s.syncShared()
			s.sink.MemAccess(s.ID, now, res.Transactions, res.L1Misses, res.L2Misses,
				s.Hier.DRAM.QueueDelay(now))
		}
		w.PC++
	case isa.ClassSync:
		// CTA-wide barrier: the warp parks until every non-exited warp of
		// its CTA arrives, then all release in the same cycle.
		w.PC++
		w.atBarrier = true
		c.barWaiting++
		if s.sink != nil {
			s.sink.WarpBarrier(s.ID, c.ID, w.Idx, now)
		}
		if c.barWaiting+c.finishedWarps >= len(c.Warps) {
			s.releaseBarrier(c, now)
		} else {
			// Park unschedulably (no wake event; the last arrival or a
			// sibling's exit releases the whole CTA).
			if !w.asleep {
				w.asleep = true
				s.awake--
				s.readyRemove(w)
			}
			w.wakeAt = barrierParked
		}
	case isa.ClassControl:
		if in.Op == isa.OpEXIT {
			s.exitWarp(w, now)
			return
		}
		w.PC = w.advanceBranch(s.meta, w.PC, in)
	}
}

// barrierParked is the wakeAt sentinel of a warp parked at a barrier: far
// enough in the future that the schedulers never consider it, released
// explicitly by releaseBarrier.
const barrierParked = int64(1) << 61

// releaseBarrier wakes every warp of c parked at its barrier (the paper's
// generators emit one barrier per loop iteration; arrivals from adjacent
// iterations are conflated CTA-wide, which is safe because release only
// ever *adds* schedulability).
func (s *SM) releaseBarrier(c *CTA, now int64) {
	for _, bw := range c.Warps {
		if !bw.atBarrier {
			continue
		}
		bw.atBarrier = false
		c.barWaiting--
		if bw.asleep && !bw.exited && bw.wakeAt == barrierParked {
			bw.wakeAt = now
			bw.asleep = false
			s.awake++
			s.readyAdd(bw)
		}
		if s.sink != nil {
			s.sink.WarpBarrierRelease(s.ID, c.ID, bw.Idx, now)
		}
	}
}

// exitWarp retires a warp, freeing its scheduling slots; the CTA finishes
// when its last warp exits.
func (s *SM) exitWarp(w *Warp, now int64) {
	w.exited = true
	c := w.CTA
	c.finishedWarps++
	// The greedy pointer must not outlive the warp's schedulability; the
	// LRR rotation position survives through the rotor sequence.
	for sid := range s.greedy {
		if s.greedy[sid] == w {
			s.greedy[sid] = nil
		}
	}
	s.schedRemove(w)
	if s.sink != nil {
		s.sink.WarpExit(s.ID, c.ID, w.Idx, now)
	}
	// A warp exiting may satisfy a barrier its siblings are parked at.
	if c.barWaiting > 0 && c.barWaiting+c.finishedWarps >= len(c.Warps) {
		s.releaseBarrier(c, now)
	}
	if !w.asleep {
		s.awake--
		s.readyRemove(w)
	}
	s.statSample(now)
	s.warpsUsed--
	s.threadsUsed -= 32
	if c.Finished() {
		s.finishCTA(c, now)
		return
	}
	if c.FullyStalled() {
		// The exit may have completed a full-stall condition.
		s.Cnt.CTAStallEvents++
		telCTAFullStall.IncScoped(s.ops())
		if c.EarliestWake()-now >= s.Cfg.LongStall {
			s.syncShared() // hook window: the policy may touch Hier/Disp
			s.Pol.OnCTAStalled(s, c, now)
		}
	}
}

// trackUsage implements the Figure 5 window instrumentation.
func (s *SM) trackUsage(w *Warp, in *isa.Instr) {
	if in.Dst.Valid() {
		w.touched = w.touched.Set(in.Dst)
	}
	in.Reads(func(r isa.Reg) { w.touched = w.touched.Set(r) })
	s.windowIssued++
	if s.windowIssued < 1000 {
		return
	}
	s.windowIssued = 0
	var touched, allocated int
	regsPerWarp := s.meta.prog.RegsPerThread
	for _, c := range s.residents {
		if c.State != CTAActive {
			continue
		}
		for _, cw := range c.Warps {
			touched += cw.touched.Count()
			cw.touched = 0
			allocated += regsPerWarp
		}
	}
	if allocated > 0 {
		s.Cnt.RegWindowFracs = append(s.Cnt.RegWindowFracs, float64(touched)/float64(allocated))
	}
}

// NextEventAt returns the earliest scheduled event (for idle detection).
func (s *SM) NextEventAt() int64 {
	if len(s.events) == 0 {
		return int64(1) << 62
	}
	return s.events[0].at
}
