package sm

import "finereg/internal/telemetry"

// Process-global op counters (internal/telemetry) for in-run
// observability: CTA lifecycle events are the SM's interesting
// low-frequency signals — launches, context switches (the degradation
// ladder engaging), retirements, and full-stall events. Per-instruction
// activity is deliberately NOT counted here (it would put an atomic add
// on the issue hot path); cumulative instruction counts reach telemetry
// via gpu.Run's sample points instead.
var (
	telCTALaunches  = telemetry.NewCounter("sm_cta_launches")
	telCTASwitches  = telemetry.NewCounter("sm_cta_switches")
	telCTARetired   = telemetry.NewCounter("sm_cta_retired")
	telCTAFullStall = telemetry.NewCounter("sm_cta_full_stalls")
)
