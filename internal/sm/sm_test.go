package sm

import (
	"testing"

	"finereg/internal/isa"
	"finereg/internal/kernels"
	"finereg/internal/liveness"
	"finereg/internal/mem"
)

// nullPolicy is a baseline-like policy with unbounded registers, for
// exercising the SM machinery in isolation.
type nullPolicy struct{ launched int }

func (n *nullPolicy) Name() string                 { return "null" }
func (n *nullPolicy) KernelStart(s *SM, now int64) {}
func (n *nullPolicy) FillSlots(s *SM, now int64) {
	for s.CanActivateOne(true) {
		if s.LaunchNew(now, 0) == nil {
			return
		}
		n.launched++
	}
}
func (n *nullPolicy) OnCTAStalled(s *SM, c *CTA, now int64)     {}
func (n *nullPolicy) OnCTAReady(s *SM, c *CTA, now int64)       {}
func (n *nullPolicy) OnCTAFinished(s *SM, c *CTA, now int64)    {}
func (n *nullPolicy) AllowIssue(s *SM, w *Warp, now int64) bool { return true }
func (n *nullPolicy) BlockedOnRegisters() bool                  { return false }

type sliceDisp struct{ next, total int }

func (d *sliceDisp) NextCTAID() int {
	if d.next >= d.total {
		return -1
	}
	d.next++
	return d.next - 1
}
func (d *sliceDisp) Remaining() int { return d.total - d.next }

func testSM(t *testing.T, bench string, grid int) (*SM, *kernels.Kernel, *sliceDisp) {
	t.Helper()
	prof, err := kernels.ProfileByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	k := kernels.MustBuild(prof, grid)
	hier := mem.NewHierarchy(2<<20, 8, 600, 313, mem.DefaultLatencies())
	disp := &sliceDisp{total: grid}
	s := New(0, Default(), hier, disp, &nullPolicy{})
	s.BindKernel(k, 0)
	return s, k, disp
}

// drive runs the SM until idle or the cycle bound, returning the final
// cycle.
func drive(t *testing.T, s *SM, disp *sliceDisp, bound int64) int64 {
	t.Helper()
	var now int64
	for now < bound {
		n, _ := s.Tick(now)
		if len(s.Residents()) == 0 && disp.Remaining() == 0 {
			return now
		}
		if n <= now {
			n = now + 1
		}
		now = n
	}
	t.Fatalf("SM did not finish within %d cycles", bound)
	return now
}

func TestSMRunsKernelToCompletion(t *testing.T) {
	s, _, disp := testSM(t, "CS", 8)
	drive(t, s, disp, 1_000_000)
	if s.Cnt.Instructions == 0 {
		t.Fatal("no instructions issued")
	}
	if s.Cnt.CTAsLaunched != 8 {
		t.Errorf("launched %d CTAs, want 8", s.Cnt.CTAsLaunched)
	}
	if s.ActiveCTAs() != 0 || s.PendingCTAs() != 0 {
		t.Errorf("residency not drained: %d active, %d pending", s.ActiveCTAs(), s.PendingCTAs())
	}
}

func TestSMDynamicInstructionCount(t *testing.T) {
	// Dynamic instruction count must equal the analytic expansion of the
	// program's loop structure, per warp, times warps.
	s, k, disp := testSM(t, "CS", 4)
	drive(t, s, disp, 1_000_000)
	perWarp := dynamicLength(k.Prog)
	want := int64(perWarp) * int64(4*k.Profile.WarpsPerCTA)
	if s.Cnt.Instructions != want {
		t.Errorf("instructions = %d, want %d (= %d/warp)", s.Cnt.Instructions, want, perWarp)
	}
}

// dynamicLength walks the program the way the timing model does (loops
// taken Trip times, cold guards not taken) and counts instructions.
func dynamicLength(p *isa.Program) int {
	remain := map[int]int{}
	n := 0
	pc := 0
	var diverge []int
	for {
		in := p.At(pc)
		n++
		switch {
		case in.Op == isa.OpEXIT:
			return n
		case in.Op == isa.OpBRA && in.IsBackward(pc):
			if _, ok := remain[pc]; !ok {
				remain[pc] = in.Trip
			}
			remain[pc]--
			if remain[pc] > 0 {
				pc = in.Target
			} else {
				delete(remain, pc)
				pc++
			}
		case in.Op == isa.OpBRA && in.IsConditional():
			if in.Diverge {
				diverge = append(diverge, in.Target)
			}
			pc++
		case in.Op == isa.OpBRA:
			if len(diverge) > 0 {
				pc = diverge[len(diverge)-1]
				diverge = diverge[:len(diverge)-1]
			} else {
				pc = in.Target
			}
		default:
			pc++
		}
	}
}

func TestSchedulingLimitsRespected(t *testing.T) {
	s, k, disp := testSM(t, "CS", 200)
	maxAct := 0
	var now int64
	for i := 0; i < 5_000_000; i++ {
		n, _ := s.Tick(now)
		if s.ActiveCTAs() > maxAct {
			maxAct = s.ActiveCTAs()
		}
		if got := s.ActiveCTAs() * k.Profile.WarpsPerCTA; got > s.Cfg.MaxWarps {
			t.Fatalf("warp slots exceeded: %d active warps", got)
		}
		if len(s.Residents()) == 0 && disp.Remaining() == 0 {
			break
		}
		if n <= now {
			n = now + 1
		}
		now = n
	}
	if maxAct > s.Cfg.MaxCTAs {
		t.Errorf("active CTAs peaked at %d > limit %d", maxAct, s.Cfg.MaxCTAs)
	}
	if maxAct < s.Cfg.MaxCTAs {
		t.Errorf("CS should reach the 32-CTA scheduling limit, peaked at %d", maxAct)
	}
}

func TestCTAStallDetection(t *testing.T) {
	s, _, disp := testSM(t, "LB", 16)
	drive(t, s, disp, 5_000_000)
	if s.Cnt.CTAStallEvents == 0 {
		t.Error("memory-bound kernel should produce full-CTA stall events")
	}
	if s.Cnt.StallLatencyN == 0 {
		t.Error("Table III first-stall sampling did not trigger")
	}
}

func TestGTOGreedyPrefersLastWarp(t *testing.T) {
	s, _, _ := testSM(t, "CS", 2)
	var now int64
	// After a few ticks the greedy pointers should be set and point at
	// warps the schedulers issued from.
	for i := 0; i < 10; i++ {
		n, _ := s.Tick(now)
		if n <= now {
			n = now + 1
		}
		now = n
	}
	found := false
	for _, g := range s.greedy {
		if g != nil {
			found = true
		}
	}
	if !found {
		t.Error("no scheduler recorded a greedy warp after issuing")
	}
}

func TestDeactivateReactivateRoundTrip(t *testing.T) {
	s, _, _ := testSM(t, "CS", 4)
	var now int64
	for i := 0; i < 50; i++ {
		n, _ := s.Tick(now)
		if n <= now {
			n = now + 1
		}
		now = n
	}
	c := s.Residents()[0]
	if c.State != CTAActive {
		t.Fatal("expected an active CTA")
	}
	act, pend := s.ActiveCTAs(), s.PendingCTAs()
	s.Deactivate(c, CTAPendingPCRF, now)
	if c.State != CTAPendingPCRF || s.ActiveCTAs() != act-1 || s.PendingCTAs() != pend+1 {
		t.Fatalf("Deactivate bookkeeping wrong: state=%v act=%d pend=%d", c.State, s.ActiveCTAs(), s.PendingCTAs())
	}
	if c.ReadyAt < now {
		t.Errorf("ReadyAt %d in the past (now %d)", c.ReadyAt, now)
	}
	s.Reactivate(c, now, 10)
	if c.State != CTAActive || s.ActiveCTAs() != act || s.PendingCTAs() != pend {
		t.Fatalf("Reactivate bookkeeping wrong: state=%v act=%d pend=%d", c.State, s.ActiveCTAs(), s.PendingCTAs())
	}
	if s.Cnt.CTASwitches != 1 {
		t.Errorf("switches = %d, want 1", s.Cnt.CTASwitches)
	}
}

func TestLiveRefsMatchesLiveCount(t *testing.T) {
	s, _, _ := testSM(t, "SG", 4)
	var now int64
	for i := 0; i < 200; i++ {
		n, _ := s.Tick(now)
		if n <= now {
			n = now + 1
		}
		now = n
	}
	info := s.Meta()
	for _, c := range s.Residents() {
		count := 0
		info.LiveRefs(c, func(w, r uint8) { count++ })
		if count != info.LiveRegsOf(c) {
			t.Errorf("LiveRefs visited %d, LiveRegsOf = %d", count, info.LiveRegsOf(c))
		}
	}
}

func TestStallPCsDistinct(t *testing.T) {
	s, _, _ := testSM(t, "FD", 2)
	var now int64
	for i := 0; i < 300; i++ {
		n, _ := s.Tick(now)
		if n <= now {
			n = now + 1
		}
		now = n
	}
	for _, c := range s.Residents() {
		pcs := s.Meta().StallPCs(c)
		seen := map[int]bool{}
		for _, pc := range pcs {
			if seen[pc] {
				t.Errorf("StallPCs returned duplicate pc %d", pc)
			}
			seen[pc] = true
		}
	}
}

func TestConfigDefaultsMatchTableI(t *testing.T) {
	c := Default()
	if c.MaxCTAs != 32 || c.MaxWarps != 64 || c.MaxThreads != 2048 ||
		c.NumSchedulers != 4 || c.RegFileBytes != 256<<10 ||
		c.SharedMemBytes != 96<<10 || c.L1Bytes != 48<<10 || c.L1Ways != 8 {
		t.Errorf("Default() does not match Table I: %+v", c)
	}
	if c.Scheduler != SchedGTO {
		t.Error("Table I specifies greedy-then-oldest scheduling")
	}
	if c.TotalWarpRegs() != 2048 {
		t.Errorf("TotalWarpRegs = %d, want 2048 (256KB / 128B)", c.TotalWarpRegs())
	}
}

func TestTimingBarrierSynchronizes(t *testing.T) {
	// A two-warp CTA where warp arrival at the barrier is skewed by a
	// long load: no warp may issue past the barrier before both arrive.
	b := isa.NewBuilder("barrier-timing")
	b.Ldg(1, 0, isa.MemDesc{Pattern: isa.PatCoalesced, Footprint: 64 << 20})
	b.FAdd(2, 1, 1) // depends on the load: arrival skew source
	b.Bar()
	b.IAdd(3, 2, 2)
	b.Exit()
	prog := b.MustBuild(8)
	k := &kernels.Kernel{
		Profile:  kernels.Profile{Abbrev: "BART", WarpsPerCTA: 2, Regs: 8},
		Prog:     prog,
		GridCTAs: 4,
	}
	var err error
	k.Live, err = liveness.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	hier := mem.NewHierarchy(2<<20, 8, 600, 313, mem.DefaultLatencies())
	disp := &sliceDisp{total: 4}
	s := New(0, Default(), hier, disp, &nullPolicy{})
	s.BindKernel(k, 0)
	drive(t, s, disp, 1_000_000)
	// 4 CTAs x 2 warps x 5 instructions each.
	if want := int64(4 * 2 * 5); s.Cnt.Instructions != want {
		t.Errorf("instructions = %d, want %d", s.Cnt.Instructions, want)
	}
}
