package sm

import (
	"fmt"

	"finereg/internal/isa"
	"finereg/internal/kernels"
	"finereg/internal/liveness"
	"finereg/internal/trace"
)

// CTAState tracks where a resident CTA's execution context currently is.
type CTAState uint8

const (
	// CTAActive: warps are in the pipeline, registers in the (AC)RF.
	CTAActive CTAState = iota
	// CTAPendingRF: context parked, registers still resident in the RF
	// (Virtual Thread style).
	CTAPendingRF
	// CTAPendingPCRF: context parked, live registers compacted into the
	// PCRF (FineReg).
	CTAPendingPCRF
	// CTAPendingDRAM: context parked, registers spilled to off-chip DRAM
	// (Reg+DRAM / Zorua style).
	CTAPendingDRAM
	// CTAFinished: all warps exited.
	CTAFinished
)

// IsPending reports whether the CTA is resident but not executing.
func (s CTAState) IsPending() bool {
	return s == CTAPendingRF || s == CTAPendingPCRF || s == CTAPendingDRAM
}

// CTA is one resident cooperative thread array on an SM.
type CTA struct {
	// ID is the global CTA index within the grid (drives address streams).
	ID int
	// State is maintained by the SM/policy machinery.
	State CTAState
	// Warps are the CTA's warp contexts (fixed at launch).
	Warps []*Warp

	// RegCost is the full static allocation in warp-registers
	// (regs/thread × warps).
	RegCost int
	// LiveRegs is the live warp-register total captured at the last
	// eviction decision (Σ per-warp live counts).
	LiveRegs int

	// ReadyAt is the earliest cycle any warp of a pending CTA could issue.
	ReadyAt int64

	finishedWarps int
	stalledWarps  int
	barWaiting    int
	launchStamp   int64

	firstIssueAt int64 // -1 until first instruction issues
	firstStallAt int64 // -1 until first complete stall

	// policyData lets the active policy hang bookkeeping off the CTA
	// (e.g. FineReg's PCRF chain head).
	policyData any
}

// FullyStalled reports whether every non-exited warp is long-blocked.
func (c *CTA) FullyStalled() bool {
	return c.State == CTAActive &&
		c.finishedWarps < len(c.Warps) &&
		c.stalledWarps+c.finishedWarps == len(c.Warps)
}

// EarliestWake returns the soonest scoreboard wake time among non-exited
// warps — the CTA's best-case resume time if it were parked now.
func (c *CTA) EarliestWake() int64 {
	best := int64(-1)
	for _, w := range c.Warps {
		if w.exited {
			continue
		}
		if best < 0 || w.wakeAt < best {
			best = w.wakeAt
		}
	}
	return best
}

// Finished reports whether all warps exited.
func (c *CTA) Finished() bool { return c.finishedWarps == len(c.Warps) }

// DebugWarps renders per-warp scheduler state for deadlock diagnostics.
func (c *CTA) DebugWarps() string {
	out := ""
	for _, w := range c.Warps {
		out += fmt.Sprintf("[w%d pc=%d asleep=%v bar=%v long=%v exited=%v wake=%d] ",
			w.Idx, w.PC, w.asleep, w.atBarrier, w.longBlocked, w.exited, w.wakeAt)
	}
	return out
}

// SetPolicyData attaches policy-private state to the CTA.
func (c *CTA) SetPolicyData(v any) { c.policyData = v }

// PolicyData returns the policy-private state.
func (c *CTA) PolicyData() any { return c.policyData }

// Warp is one warp's timing context.
type Warp struct {
	CTA *CTA
	// Idx is the warp's index within its CTA.
	Idx int
	// UID is globally unique (drives memory address streams).
	UID uint64
	// Age is the launch stamp used by GTO's "oldest" order.
	Age int64

	// PC is the next instruction to issue.
	PC int

	regReady [isa.MaxRegs]int64

	// loopRemain holds the remaining trip count per loop slot.
	loopRemain []int32
	// divergeRet is a small stack of pending else-path PCs for forward
	// divergent branches.
	divergeRet []int

	// schedSeq is the warp's wiring sequence within its scheduler,
	// assigned by enterActive; scheduler lists stay sorted by it, and LRR
	// anchors its rotation on the last-issued warp's sequence. schedID is
	// the scheduler the warp is currently wired to.
	schedSeq int64
	schedID  int

	wakeAt      int64
	asleep      bool
	longBlocked bool
	atBarrier   bool
	exited      bool

	memCounter uint64

	// touched accumulates registers referenced in the current Figure 5
	// instrumentation window.
	touched liveness.BitVec

	// memWritten is a bitmask over registers (MaxRegs = 64) marking those
	// last written by a global memory load. Maintained only while a trace
	// sink is attached; used to attribute scoreboard blocks to memory vs
	// compute dependencies.
	memWritten uint64
}

// blockReason classifies a scoreboard block at issue time: if the register
// that gates the instruction (the one with the latest ready time) was last
// written by a global load, the warp is memory-bound; otherwise it waits on
// a compute dependency.
func (w *Warp) blockReason(in *isa.Instr) trace.StallReason {
	ready := int64(0)
	gate := isa.RegNone
	consider := func(r isa.Reg) {
		if r.Valid() && w.regReady[r] > ready {
			ready = w.regReady[r]
			gate = r
		}
	}
	for _, r := range in.Srcs[:in.NSrc] {
		consider(r)
	}
	consider(in.Pred)
	consider(in.Dst)
	if gate.Valid() && w.memWritten&(1<<uint(gate)) != 0 {
		return trace.ReasonMemory
	}
	return trace.ReasonScoreboard
}

// Exited reports whether the warp hit EXIT.
func (w *Warp) Exited() bool { return w.exited }

// WakeAt returns the warp's scoreboard wake time.
func (w *Warp) WakeAt() int64 { return w.wakeAt }

// LiveAt returns the warp's current live-register count according to the
// kernel's liveness table (0 once exited). This is the per-warp PCRF
// demand when the warp's CTA is evicted.
func (w *Warp) LiveAt(info *liveness.Info) int {
	if w.exited {
		return 0
	}
	return info.LiveCount(w.PC)
}

// progMeta caches per-program derived tables the SM needs at issue time.
type progMeta struct {
	prog *isa.Program
	live *liveness.Info
	// loopSlot maps a backward-branch PC to a dense slot index, -1
	// otherwise.
	loopSlot []int
	numLoops int
	// maxReg[pc] is the highest register index referenced at pc, plus one.
	maxReg []int
	// kernel geometry
	warpsPerCTA int
	sharedMem   int
	regCost     int // warp-registers per CTA
}

func newProgMeta(k *kernels.Kernel) *progMeta {
	p := k.Prog
	m := &progMeta{
		prog:        p,
		live:        k.Live,
		loopSlot:    make([]int, p.Len()),
		warpsPerCTA: k.Profile.WarpsPerCTA,
		sharedMem:   k.Profile.SharedMem,
		regCost:     k.Profile.WarpsPerCTA * k.Profile.Regs,
	}
	for pc := range m.loopSlot {
		m.loopSlot[pc] = -1
	}
	m.maxReg = make([]int, p.Len())
	for pc := 0; pc < p.Len(); pc++ {
		in := p.At(pc)
		if in.Op == isa.OpBRA && in.IsBackward(pc) {
			m.loopSlot[pc] = m.numLoops
			m.numLoops++
		}
		hi := -1
		if in.Dst.Valid() {
			hi = int(in.Dst)
		}
		in.Reads(func(r isa.Reg) {
			if int(r) > hi {
				hi = int(r)
			}
		})
		m.maxReg[pc] = hi + 1
	}
	return m
}

// newWarp creates a warp context at PC 0 with loop counters armed.
func (m *progMeta) newWarp(c *CTA, idx int, uid uint64, age int64) *Warp {
	w := &Warp{CTA: c, Idx: idx, UID: uid, Age: age}
	w.loopRemain = make([]int32, m.numLoops)
	for pc := 0; pc < m.prog.Len(); pc++ {
		if slot := m.loopSlot[pc]; slot >= 0 {
			w.loopRemain[slot] = int32(m.prog.At(pc).Trip)
		}
	}
	return w
}

// depReadyAt returns the cycle at which the instruction's register
// dependencies (RAW on sources/predicate, WAW on destination) resolve.
func (w *Warp) depReadyAt(in *isa.Instr) int64 {
	ready := int64(0)
	for _, r := range in.Srcs[:in.NSrc] {
		if r.Valid() && w.regReady[r] > ready {
			ready = w.regReady[r]
		}
	}
	if in.Pred.Valid() && w.regReady[in.Pred] > ready {
		ready = w.regReady[in.Pred]
	}
	if in.Dst.Valid() && w.regReady[in.Dst] > ready {
		ready = w.regReady[in.Dst]
	}
	return ready
}

// advanceBranch computes the next PC after executing a branch at pc.
//
// Control-flow contract of the timing model (matching the kernel
// generators):
//   - backward conditional branch: loop edge, taken Trip-1 times per entry;
//   - forward conditional branch with Diverge: both paths execute — fall
//     through now, remember the target; the next unconditional forward
//     branch (the join jump) diverts to it;
//   - forward conditional branch without Diverge: not taken;
//   - unconditional forward branch: taken (or diverted, see above).
func (w *Warp) advanceBranch(m *progMeta, pc int, in *isa.Instr) int {
	if in.IsBackward(pc) {
		slot := m.loopSlot[pc]
		w.loopRemain[slot]--
		if w.loopRemain[slot] > 0 {
			return in.Target
		}
		w.loopRemain[slot] = int32(in.Trip) // re-arm for outer re-entry
		return pc + 1
	}
	if in.IsConditional() {
		if in.Diverge {
			w.divergeRet = append(w.divergeRet, in.Target)
		}
		return pc + 1
	}
	// Unconditional forward branch: divert to a pending diverged path if
	// one exists (PDOM-style serialization), else jump.
	if n := len(w.divergeRet); n > 0 {
		t := w.divergeRet[n-1]
		w.divergeRet = w.divergeRet[:n-1]
		return t
	}
	return in.Target
}
