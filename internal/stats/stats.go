// Package stats defines the metric counters the simulator produces and
// small aggregation helpers (means, geomeans, normalization) used by the
// experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Metrics is the full set of counters collected from one kernel run on one
// GPU configuration. All cycle counts are core clocks.
type Metrics struct {
	Benchmark string
	Config    string

	// Core progress.
	Cycles       int64
	Instructions int64

	// TLP accounting (time-weighted averages across SMs).
	AvgResidentCTAs  float64 // active + pending CTAs per SM
	AvgActiveCTAs    float64 // CTAs whose warps are schedulable
	AvgActiveThreads float64

	// CTA lifecycle.
	CTAsLaunched int64
	CTASwitches  int64 // pending<->active exchanges
	CTAStalls    int64 // all-warps-stalled events

	// Stall cycles attributable to register resources being depleted while
	// schedulable CTAs existed (Figure 14b: PCRF for FineReg, SRP for
	// RegMutex), summed across all SMs. Divide by Cycles×NumSMs for the
	// per-SM stall fraction the paper plots.
	RegDepletionStallCycles int64

	// Average cycles from a CTA's first issue to its first complete stall
	// (Table III).
	CyclesToFirstStall float64

	// Memory system.
	L1Accesses, L1Misses int64
	L2Accesses, L2Misses int64
	DRAMDemandBytes      int64 // demand loads/stores
	DRAMContextBytes     int64 // CTA context switching (Reg+DRAM)
	DRAMBitvecBytes      int64 // live-register bit-vector fetches (FineReg)

	// Register file events (128-byte warp-register granularity).
	RFReads, RFWrites     int64
	PCRFReads, PCRFWrites int64

	// SFU / shared-memory ops, for the energy model.
	SharedAccesses int64

	// Stalls is the per-reason warp-cycle attribution, populated only when
	// the run was traced with a stall aggregator (see internal/trace).
	Stalls *StallBreakdown `json:",omitempty"`
}

// Clone returns an independent deep copy. The run engine hands every
// consumer of a cached or deduplicated result its own copy, so callers may
// freely relabel Config or attach data without corrupting the cache.
func (m *Metrics) Clone() *Metrics {
	c := *m
	if m.Stalls != nil {
		s := *m.Stalls
		c.Stalls = &s
	}
	return &c
}

// IPC returns instructions per cycle (0 when no cycles elapsed).
func (m *Metrics) IPC() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.Instructions) / float64(m.Cycles)
}

// DRAMBytes returns total off-chip traffic.
func (m *Metrics) DRAMBytes() int64 {
	return m.DRAMDemandBytes + m.DRAMContextBytes + m.DRAMBitvecBytes
}

// L1MissRate returns the L1 miss ratio.
func (m *Metrics) L1MissRate() float64 { return ratio(m.L1Misses, m.L1Accesses) }

// L2MissRate returns the L2 miss ratio.
func (m *Metrics) L2MissRate() float64 { return ratio(m.L2Misses, m.L2Accesses) }

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// String summarizes the headline metrics on one line.
func (m *Metrics) String() string {
	return fmt.Sprintf("%s/%s: IPC=%.3f cycles=%d ctas=%.1f(act %.1f) switches=%d dram=%dB",
		m.Benchmark, m.Config, m.IPC(), m.Cycles, m.AvgResidentCTAs, m.AvgActiveCTAs,
		m.CTASwitches, m.DRAMBytes())
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Geomean returns the geometric mean of xs; entries must be positive.
// The paper's normalized-performance averages are conventionally geometric.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Speedup returns new/old, guarding division by zero.
func Speedup(newV, oldV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return newV / oldV
}

// Table renders rows of (label, values...) with a header, aligned, for the
// experiment CLIs. All rows must have len(header)-1 values; AddRow guards
// the contract by normalizing mismatched rows so they still render aligned
// while making the mismatch visible.
type Table struct {
	Header []string
	rows   [][]string
}

// AddRow appends a row; values are formatted with %v (floats with %.3f).
// Rows whose value count disagrees with the header are normalized to the
// header width: missing cells become "-", excess cells are dropped and the
// last kept cell is suffixed with "!" so the mismatch is visible instead
// of silently skewing every column to the right of it.
func (t *Table) AddRow(label string, vals ...any) {
	row := []string{label}
	for _, v := range vals {
		switch x := v.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.3f", x))
		case float32:
			row = append(row, fmt.Sprintf("%.3f", x))
		default:
			row = append(row, fmt.Sprintf("%v", x))
		}
	}
	if want := len(t.Header); want > 0 && len(row) != want {
		for len(row) < want {
			row = append(row, "-")
		}
		if len(row) > want {
			row = row[:want]
			row[want-1] += "!"
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	all := append([][]string{t.Header}, t.rows...)
	nCols := 0
	for _, row := range all {
		if len(row) > nCols {
			nCols = len(row)
		}
	}
	widths := make([]int, nCols)
	for _, row := range all {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	for ri, row := range all {
		for i, cell := range row {
			pad := widths[i] - len(cell)
			if i > 0 {
				sb.WriteString("  ")
				sb.WriteString(strings.Repeat(" ", pad))
				sb.WriteString(cell)
			} else {
				sb.WriteString(cell)
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					sb.WriteString("  ")
				}
				sb.WriteString(strings.Repeat("-", w))
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// SortedKeys returns map keys in sorted order, for deterministic output.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
