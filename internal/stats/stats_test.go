package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMetricsDerived(t *testing.T) {
	m := &Metrics{
		Benchmark: "CS", Config: "FineReg",
		Cycles: 1000, Instructions: 2500,
		L1Accesses: 100, L1Misses: 30,
		L2Accesses: 30, L2Misses: 6,
		DRAMDemandBytes: 1000, DRAMContextBytes: 200, DRAMBitvecBytes: 24,
	}
	if got := m.IPC(); got != 2.5 {
		t.Errorf("IPC = %v, want 2.5", got)
	}
	if got := m.DRAMBytes(); got != 1224 {
		t.Errorf("DRAMBytes = %d, want 1224", got)
	}
	if got := m.L1MissRate(); got != 0.3 {
		t.Errorf("L1MissRate = %v, want 0.3", got)
	}
	if got := m.L2MissRate(); got != 0.2 {
		t.Errorf("L2MissRate = %v, want 0.2", got)
	}
	if s := m.String(); !strings.Contains(s, "CS/FineReg") {
		t.Errorf("String() = %q, missing identity", s)
	}
}

func TestMetricsZeroSafe(t *testing.T) {
	m := &Metrics{}
	if m.IPC() != 0 || m.L1MissRate() != 0 || m.L2MissRate() != 0 {
		t.Error("zero-valued metrics must not divide by zero")
	}
}

func TestMeanGeomean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Geomean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Geomean = %v, want 2", got)
	}
	if got := Geomean(nil); got != 0 {
		t.Errorf("Geomean(nil) = %v, want 0", got)
	}
	if got := Geomean([]float64{1, -2}); got != 0 {
		t.Errorf("Geomean with nonpositive input = %v, want 0", got)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(3, 2); got != 1.5 {
		t.Errorf("Speedup = %v, want 1.5", got)
	}
	if got := Speedup(3, 0); got != 0 {
		t.Errorf("Speedup by zero = %v, want 0", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Header: []string{"bench", "IPC", "count"}}
	tbl.AddRow("CS", 1.23456, 42)
	tbl.AddRow("LongBenchName", 0.5, 7)
	out := tbl.String()
	for _, want := range []string{"bench", "1.235", "42", "LongBenchName", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4 (header, rule, 2 rows)", len(lines))
	}
}

func TestSortedKeys(t *testing.T) {
	keys := SortedKeys(map[string]int{"b": 1, "a": 2, "c": 3})
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Errorf("SortedKeys = %v", keys)
	}
}

// Property: geomean lies between min and max of its (positive) inputs.
func TestGeomeanBoundedQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = 0.001 + float64(r)/100
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := Geomean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
