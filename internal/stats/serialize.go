package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// jsonMetrics wraps Metrics with the derived ratios every consumer wants,
// so machine-readable output carries them precomputed.
type jsonMetrics struct {
	*Metrics
	IPC            float64
	L1MissRate     float64
	L2MissRate     float64
	DRAMTotalBytes int64
}

func (m *Metrics) wrap() jsonMetrics {
	return jsonMetrics{
		Metrics:        m,
		IPC:            m.IPC(),
		L1MissRate:     m.L1MissRate(),
		L2MissRate:     m.L2MissRate(),
		DRAMTotalBytes: m.DRAMBytes(),
	}
}

// WriteJSON writes the metrics (plus derived IPC/miss-rate/traffic fields,
// and the stall breakdown when present) as indented JSON.
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.wrap())
}

// WriteJSON writes a slice of runs as one indented JSON array.
func WriteJSON(w io.Writer, ms []*Metrics) error {
	out := make([]jsonMetrics, len(ms))
	for i, m := range ms {
		out[i] = m.wrap()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// csvHeader is the fixed column order of the CSV serialization. Stall
// buckets are always present (zero when the run was not traced).
var csvHeader = []string{
	"benchmark", "config", "cycles", "instructions", "ipc",
	"avg_resident_ctas", "avg_active_ctas", "avg_active_threads",
	"ctas_launched", "cta_switches", "cta_stalls",
	"reg_depletion_stall_cycles", "cycles_to_first_stall",
	"l1_accesses", "l1_misses", "l2_accesses", "l2_misses",
	"dram_demand_bytes", "dram_context_bytes", "dram_bitvec_bytes",
	"rf_reads", "rf_writes", "pcrf_reads", "pcrf_writes", "shared_accesses",
	"warp_slot_cycles", "issue_cycles", "idle_cycles", "scoreboard_cycles",
	"memory_cycles", "transfer_cycles", "reg_depletion_cycles", "barrier_cycles",
}

func (m *Metrics) csvRecord() []string {
	st := m.Stalls
	if st == nil {
		st = &StallBreakdown{}
	}
	f := func(v any) string {
		if x, ok := v.(float64); ok {
			return fmt.Sprintf("%.6g", x)
		}
		return fmt.Sprintf("%v", v)
	}
	return []string{
		m.Benchmark, m.Config, f(m.Cycles), f(m.Instructions), f(m.IPC()),
		f(m.AvgResidentCTAs), f(m.AvgActiveCTAs), f(m.AvgActiveThreads),
		f(m.CTAsLaunched), f(m.CTASwitches), f(m.CTAStalls),
		f(m.RegDepletionStallCycles), f(m.CyclesToFirstStall),
		f(m.L1Accesses), f(m.L1Misses), f(m.L2Accesses), f(m.L2Misses),
		f(m.DRAMDemandBytes), f(m.DRAMContextBytes), f(m.DRAMBitvecBytes),
		f(m.RFReads), f(m.RFWrites), f(m.PCRFReads), f(m.PCRFWrites), f(m.SharedAccesses),
		f(st.WarpSlotCycles), f(st.IssueCycles), f(st.IdleCycles), f(st.ScoreboardCycles),
		f(st.MemoryCycles), f(st.TransferCycles), f(st.RegDepletionCycles), f(st.BarrierCycles),
	}
}

// WriteCSV writes a header line plus one record.
func (m *Metrics) WriteCSV(w io.Writer) error {
	return WriteCSV(w, []*Metrics{m})
}

// WriteCSV writes a header line plus one record per run.
func WriteCSV(w io.Writer, ms []*Metrics) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, m := range ms {
		if err := cw.Write(m.csvRecord()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
