package stats

import "fmt"

// StallBreakdown partitions every warp-slot cycle of a run into what the
// warp was doing: issuing, ready-but-not-picked, or stalled for a specific
// reason. A warp-slot cycle is one simulated cycle of one warp wired into
// a scheduler (its CTA active, the warp not yet exited); cycles spent
// parked in a pending CTA are deliberately excluded — they are the
// residency the TLP metrics already measure.
//
// The buckets form an exact partition: Check verifies
//
//	Issue + Idle + Scoreboard + Memory + Transfer + RegDepletion + Barrier
//	  == WarpSlotCycles
//
// which the trace.StallAggregator guarantees by construction and the
// invariant tests enforce against independent counters.
type StallBreakdown struct {
	// WarpSlotCycles is the total warp-slot cycles of the run, accumulated
	// from CTA activation/deactivation boundaries only (independent of the
	// per-cycle buckets below).
	WarpSlotCycles int64

	// IssueCycles: cycles in which the warp issued an instruction.
	IssueCycles int64
	// IdleCycles: issue-ready but the scheduler picked another warp (or
	// denied/blocked probing consumed the cycle).
	IdleCycles int64
	// ScoreboardCycles: blocked on a short-latency dependency (ALU, SFU,
	// shared memory).
	ScoreboardCycles int64
	// MemoryCycles: blocked on a global-memory dependency.
	MemoryCycles int64
	// TransferCycles: waiting out CTA-switch register movement or pipeline
	// drain.
	TransferCycles int64
	// RegDepletionCycles: issue denied for lack of register resources.
	RegDepletionCycles int64
	// BarrierCycles: parked at a CTA-wide barrier.
	BarrierCycles int64
}

// Sum returns the total of all buckets (issue included).
func (b *StallBreakdown) Sum() int64 {
	return b.IssueCycles + b.IdleCycles + b.ScoreboardCycles + b.MemoryCycles +
		b.TransferCycles + b.RegDepletionCycles + b.BarrierCycles
}

// Check verifies the partition invariant: the buckets must cover every
// warp-slot cycle exactly once.
func (b *StallBreakdown) Check() error {
	if s := b.Sum(); s != b.WarpSlotCycles {
		return fmt.Errorf("stats: stall buckets sum to %d, want %d warp-slot cycles (diff %+d)",
			s, b.WarpSlotCycles, s-b.WarpSlotCycles)
	}
	return nil
}

// Buckets returns the (label, cycles) pairs in display order.
func (b *StallBreakdown) Buckets() []struct {
	Label  string
	Cycles int64
} {
	return []struct {
		Label  string
		Cycles int64
	}{
		{"issue", b.IssueCycles},
		{"idle", b.IdleCycles},
		{"scoreboard", b.ScoreboardCycles},
		{"memory", b.MemoryCycles},
		{"transfer", b.TransferCycles},
		{"reg-depletion", b.RegDepletionCycles},
		{"barrier", b.BarrierCycles},
	}
}

// Table renders the breakdown as an aligned two-column histogram with
// percentages of total warp-slot cycles.
func (b *StallBreakdown) Table() *Table {
	t := &Table{Header: []string{"bucket", "cycles", "share"}}
	total := b.WarpSlotCycles
	for _, bk := range b.Buckets() {
		share := 0.0
		if total > 0 {
			share = 100 * float64(bk.Cycles) / float64(total)
		}
		t.AddRow(bk.Label, bk.Cycles, fmt.Sprintf("%5.1f%%", share))
	}
	t.AddRow("total", total, "100.0%")
	return t
}

// String renders the breakdown table.
func (b *StallBreakdown) String() string { return b.Table().String() }
