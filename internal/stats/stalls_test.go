package stats

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleBreakdown() *StallBreakdown {
	return &StallBreakdown{
		WarpSlotCycles:     100,
		IssueCycles:        30,
		IdleCycles:         10,
		ScoreboardCycles:   5,
		MemoryCycles:       40,
		TransferCycles:     8,
		RegDepletionCycles: 4,
		BarrierCycles:      3,
	}
}

func TestStallBreakdownCheck(t *testing.T) {
	b := sampleBreakdown()
	if b.Sum() != 100 {
		t.Errorf("Sum = %d, want 100", b.Sum())
	}
	if err := b.Check(); err != nil {
		t.Errorf("balanced breakdown fails Check: %v", err)
	}
	b.MemoryCycles++
	if err := b.Check(); err == nil {
		t.Error("unbalanced breakdown passes Check")
	} else if !strings.Contains(err.Error(), "+1") {
		t.Errorf("Check error does not report the diff: %v", err)
	}
}

func TestStallBreakdownTable(t *testing.T) {
	out := sampleBreakdown().String()
	for _, want := range []string{"memory", "40.0%", "total", "100.0%", "reg-depletion"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown table missing %q:\n%s", want, out)
		}
	}
	// Zero totals must not divide by zero.
	if out := new(StallBreakdown).String(); !strings.Contains(out, "0.0%") {
		t.Errorf("zero breakdown renders oddly:\n%s", out)
	}
}

func TestAddRowMismatchGuard(t *testing.T) {
	tbl := &Table{Header: []string{"label", "a", "b"}}
	tbl.AddRow("short")            // 1 value missing
	tbl.AddRow("long", 1, 2, 3, 4) // 2 values extra
	tbl.AddRow("exact", 5, 6)      // matches
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("table has %d lines, want 5:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("padded cell missing:\n%s", out)
	}
	if !strings.Contains(out, "2!") {
		t.Errorf("truncation marker missing:\n%s", out)
	}
	// Headerless tables are unconstrained (used for free-form output).
	free := &Table{}
	free.AddRow("x", 1, 2, 3)
	if !strings.Contains(free.String(), "3") {
		t.Errorf("headerless row truncated:\n%s", free.String())
	}
}

func sampleMetrics() *Metrics {
	return &Metrics{
		Benchmark: "CS", Config: "FineReg",
		Cycles: 1000, Instructions: 5000,
		L1Accesses: 100, L1Misses: 25,
		L2Accesses: 25, L2Misses: 5,
		DRAMDemandBytes: 4096, DRAMContextBytes: 1024, DRAMBitvecBytes: 12,
	}
}

func TestWriteJSON(t *testing.T) {
	m := sampleMetrics()
	m.Stalls = sampleBreakdown()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var got map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if got["IPC"] != 5.0 {
		t.Errorf("IPC = %v, want 5", got["IPC"])
	}
	if got["DRAMTotalBytes"] != float64(4096+1024+12) {
		t.Errorf("DRAMTotalBytes = %v", got["DRAMTotalBytes"])
	}
	if _, ok := got["Stalls"]; !ok {
		t.Error("Stalls missing from JSON")
	}

	// Untraced runs omit the Stalls key entirely.
	buf.Reset()
	if err := sampleMetrics().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if strings.Contains(buf.String(), `"Stalls"`) {
		t.Error("nil Stalls serialized")
	}

	// Array form.
	buf.Reset()
	if err := WriteJSON(&buf, []*Metrics{sampleMetrics(), sampleMetrics()}); err != nil {
		t.Fatalf("WriteJSON slice: %v", err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil || len(arr) != 2 {
		t.Fatalf("JSON array: err=%v len=%d", err, len(arr))
	}
}

func TestWriteCSV(t *testing.T) {
	m := sampleMetrics()
	m.Stalls = sampleBreakdown()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []*Metrics{m, sampleMetrics()}); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 records", len(lines))
	}
	nCols := len(strings.Split(lines[0], ","))
	for i, line := range lines {
		if got := len(strings.Split(line, ",")); got != nCols {
			t.Errorf("line %d has %d columns, want %d", i, got, nCols)
		}
	}
	if !strings.Contains(lines[0], "warp_slot_cycles") {
		t.Errorf("stall columns missing from header: %s", lines[0])
	}
	if !strings.Contains(lines[1], "CS,FineReg,1000,5000,5,") {
		t.Errorf("record malformed: %s", lines[1])
	}
	// The untraced record carries zero stall columns, not blanks.
	if strings.Contains(lines[2], ",,") {
		t.Errorf("untraced record has blank cells: %s", lines[2])
	}
}
