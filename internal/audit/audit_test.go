package audit_test

import (
	"errors"
	"strings"
	"testing"

	"finereg/internal/audit"
	"finereg/internal/kernels"
	"finereg/internal/mem"
	"finereg/internal/regfile"
	"finereg/internal/sm"
)

const farFuture = int64(1) << 62

// disp mirrors gpu's grid dispatcher for single-SM rigs.
type disp struct{ next, total int }

func (d *disp) NextCTAID() int {
	if d.next >= d.total {
		return -1
	}
	id := d.next
	d.next++
	return id
}

func (d *disp) Remaining() int { return d.total - d.next }

// rig is one SM running a real benchmark kernel under the VT policy
// (launch + stall + switch + resume + finish transitions all fire).
type rig struct {
	s *sm.SM
	d *disp
}

func newRig(t *testing.T, grid int) *rig {
	t.Helper()
	p, err := kernels.ProfileByName("CS")
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernels.Build(p, grid)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sm.Default()
	hier := mem.NewHierarchy(2<<20, 8, 600, 313, mem.DefaultLatencies())
	d := &disp{total: grid}
	s := sm.New(0, cfg, hier, d, regfile.NewVirtualThread(cfg, hier))
	s.BindKernel(k, 0)
	return &rig{s: s, d: d}
}

// run advances the rig like gpu.Run does, invoking step after every event
// round, until the grid drains or step asks to stop. Returns the final
// cycle.
func (r *rig) run(t *testing.T, step func(now int64) bool) int64 {
	t.Helper()
	var now int64
	for {
		next, _ := r.s.Tick(now)
		if step != nil && !step(now) {
			return now
		}
		if len(r.s.Residents()) == 0 && r.d.Remaining() == 0 {
			return now
		}
		if next == farFuture {
			t.Fatalf("rig deadlocked at cycle %d", now)
		}
		if next <= now {
			next = now + 1
		}
		now = next
		if now > 50_000_000 {
			t.Fatalf("rig runaway at cycle %d", now)
		}
	}
}

// TestCheckSMCleanRun audits every event step of an unmodified run; no
// invariant may fire, from kernel start through the drained end state.
func TestCheckSMCleanRun(t *testing.T) {
	r := newRig(t, 48)
	steps := 0
	end := r.run(t, func(now int64) bool {
		if err := audit.CheckSM(r.s, now); err != nil {
			t.Fatalf("step %d: %v", steps, err)
		}
		steps++
		return true
	})
	if steps < 100 {
		t.Fatalf("run too short to be meaningful: %d steps", steps)
	}
	if err := audit.CheckSM(r.s, end); err != nil {
		t.Errorf("drained SM fails audit: %v", err)
	}
}

// TestSkewCaught is the acceptance-criterion mutation test: each seeded
// off-by-one in an occupancy counter must be caught by CheckSM under its
// own rule name, and reverting the skew must restore a clean audit.
func TestSkewCaught(t *testing.T) {
	counters := []string{
		"warpsUsed", "threadsUsed", "shmemUsed", "awake", "activeCTAs", "pendingCTAs",
	}
	r := newRig(t, 48)
	// Advance mid-kernel so every counter is live; audit at the cycle the
	// run stopped on (events beyond it are legitimately still queued).
	at := r.run(t, func(now int64) bool { return now < 5000 })
	if r.s.ActiveCTAs() == 0 {
		t.Fatal("rig has no active CTAs mid-run")
	}
	for _, c := range counters {
		c := c
		t.Run(c, func(t *testing.T) {
			r.s.InjectAccountingSkew(c, -1)
			err := audit.CheckSM(r.s, at)
			r.s.InjectAccountingSkew(c, +1)
			var v *audit.Violation
			if !errors.As(err, &v) {
				t.Fatalf("skewed %s: want *audit.Violation, got %v", c, err)
			}
			if v.Rule != c {
				t.Errorf("skewed %s: violation blames rule %q", c, v.Rule)
			}
			if v.Got != v.Want-1 {
				t.Errorf("skewed %s: got=%d want=%d, expected off-by-one", c, v.Got, v.Want)
			}
			if v.Dump == "" {
				t.Errorf("skewed %s: violation carries no state dump", c)
			}
			if err := audit.CheckSM(r.s, at); err != nil {
				t.Errorf("after reverting %s skew: %v", c, err)
			}
		})
	}
}

// TestReadySkewCaught is the mutation test for the ready-partition
// invariants: dropping one entry (a missed readyAdd — the bug class where
// a woken warp silently never issues again) must fire readyCoverage.
func TestReadySkewCaught(t *testing.T) {
	r := newRig(t, 48)
	at := r.run(t, func(now int64) bool {
		return now < 1000 || r.s.AwakeWarps() == 0
	})
	if r.s.AwakeWarps() == 0 {
		t.Fatal("rig never reached a step with awake warps")
	}
	if err := audit.CheckSM(r.s, at); err != nil {
		t.Fatalf("pre-skew audit not clean: %v", err)
	}
	if !r.s.InjectReadySkew() {
		t.Fatal("no ready entry to drop despite awake warps")
	}
	var v *audit.Violation
	if err := audit.CheckSM(r.s, at); !errors.As(err, &v) {
		t.Fatalf("dropped ready entry: want *audit.Violation, got %v", err)
	}
	if v.Rule != "readyCoverage" {
		t.Errorf("dropped ready entry blames rule %q, want readyCoverage", v.Rule)
	}
	if v.Got != v.Want-1 {
		t.Errorf("readyCoverage got=%d want=%d, expected off-by-one", v.Got, v.Want)
	}
}

// TestAuditorStepTriggering drives the Auditor itself: the first step
// sweeps unconditionally, an injected skew is caught by the periodic
// sweep even when no lifecycle transition accompanies it, and Final
// reports leaks on a drained machine.
func TestAuditorStepTriggering(t *testing.T) {
	r := newRig(t, 48)
	a := audit.New(64)
	sms := []*sm.SM{r.s}

	var stepErr error
	end := r.run(t, func(now int64) bool {
		if stepErr = a.Step(sms, now); stepErr != nil {
			return false
		}
		return true
	})
	if stepErr != nil {
		t.Fatalf("clean run: %v", stepErr)
	}
	if err := a.Final(sms, end); err != nil {
		t.Fatalf("drained machine fails Final: %v", err)
	}

	// A skew with no accompanying transition must still be caught once the
	// interval elapses.
	r.s.InjectAccountingSkew("awake", 1)
	defer r.s.InjectAccountingSkew("awake", -1)
	var err error
	for now := end + 1; now < end+200; now++ {
		if err = a.Step(sms, now); err != nil {
			break
		}
	}
	var v *audit.Violation
	if !errors.As(err, &v) || v.Rule != "awake" {
		t.Fatalf("periodic sweep missed the skew: %v", err)
	}
	if !errors.As(a.Final(sms, end+200), &v) {
		t.Fatal("Final missed the skew")
	}
}

// TestDefaultInterval pins New's clamping.
func TestDefaultInterval(t *testing.T) {
	if a := audit.New(0); a.Interval != audit.DefaultInterval {
		t.Errorf("New(0).Interval = %d, want %d", a.Interval, audit.DefaultInterval)
	}
	if a := audit.New(7); a.Interval != 7 {
		t.Errorf("New(7).Interval = %d", a.Interval)
	}
}

// TestViolationRendering checks the error string carries the rule, the
// values, the detail, and the dump.
func TestViolationRendering(t *testing.T) {
	v := &audit.Violation{SM: 3, Cycle: 99, Rule: "warpsUsed", Got: 7, Want: 8,
		Detail: "CTA 5", Dump: "SM3 @99: ..."}
	msg := v.Error()
	for _, want := range []string{"SM3", "cycle 99", "warpsUsed", "= 7", "want 8", "CTA 5", "SM3 @99"} {
		if !strings.Contains(msg, want) {
			t.Errorf("violation message lacks %q: %s", want, msg)
		}
	}
}

// TestDumpSM wants a non-empty render with per-CTA lines and the policy
// accounting section while CTAs are resident.
func TestDumpSM(t *testing.T) {
	r := newRig(t, 48)
	r.run(t, func(now int64) bool { return now < 2000 })
	if len(r.s.Residents()) == 0 {
		t.Fatal("no residents to dump")
	}
	dump := audit.DumpSM(r.s, 2000)
	if !strings.Contains(dump, "CTA") {
		t.Errorf("dump lacks CTA lines:\n%s", dump)
	}
	if !strings.Contains(dump, "regsFree") {
		t.Errorf("dump lacks policy accounting:\n%s", dump)
	}
}
