package audit_test

import (
	"errors"
	"strings"
	"testing"

	"finereg/internal/audit"
	"finereg/internal/mem"
	"finereg/internal/sm"
)

// TestCollectMode: with ContinueOnViolation the auditor records drift
// instead of aborting — Step keeps returning nil so the run continues —
// and Final delivers the whole harvest as one *ViolationSet.
func TestCollectMode(t *testing.T) {
	r := newRig(t, 48)
	a := audit.NewWithOptions(audit.Options{Interval: 64, ContinueOnViolation: true})
	a.Hier = r.s.Hier
	sms := []*sm.SM{r.s}

	// Seed two persistent drifts caught by different checkers (CheckSM
	// reports one violation per SM per check, so the pair must not share
	// a checker); every subsequent sweep re-detects them, so the totals
	// grow while the run survives.
	injected := false
	end := r.run(t, func(now int64) bool {
		if err := a.Step(sms, now); err != nil {
			t.Fatalf("collect-mode Step returned an error at %d: %v", now, err)
		}
		if !injected && now > 3000 && r.s.ActiveCTAs() > 0 {
			r.s.InjectMemSkew("hits", -1)
			r.s.Hier.DRAM.InjectLedgerSkew(mem.TrafficContext, 64)
			injected = true
		}
		return now < 20000
	})
	if !injected {
		t.Fatal("rig never reached an injectable state")
	}

	err := a.Final(sms, end)
	var set *audit.ViolationSet
	if !errors.As(err, &set) {
		t.Fatalf("Final: want *audit.ViolationSet, got %v", err)
	}
	if set.Total < 2 {
		t.Fatalf("two persistent drifts yielded Total=%d", set.Total)
	}
	if set.ByRule["mem:l1Conservation"] == 0 {
		t.Errorf("harvest missed the L1 conservation skew: %v", set.ByRule)
	}
	if set.ByRule["mem:dramLedger"] == 0 {
		t.Errorf("harvest missed the DRAM ledger skew: %v", set.ByRule)
	}
	if len(set.Violations) == 0 || len(set.Violations) > audit.DefaultMaxViolations {
		t.Errorf("retained %d violations, want (0, %d]", len(set.Violations), audit.DefaultMaxViolations)
	}
	for _, want := range []string{"violations", "mem:l1Conservation", "mem:dramLedger"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Error() lacks %q:\n%s", want, err)
		}
	}
	sum := set.Summary()
	for _, want := range []string{"mem:l1Conservation", "mem:dramLedger"} {
		if !strings.Contains(sum, want) {
			t.Errorf("Summary() lacks %q:\n%s", want, sum)
		}
	}

	// Revert: a fresh collect-mode auditor over the healed machine reports
	// nil, proving the harvest above came from the seeded drift alone.
	r.s.InjectMemSkew("hits", 1)
	r.s.Hier.DRAM.InjectLedgerSkew(mem.TrafficContext, -64)
	clean := audit.NewWithOptions(audit.Options{ContinueOnViolation: true})
	clean.Hier = r.s.Hier
	if err := clean.Final(sms, end); err != nil {
		t.Errorf("healed machine still reports: %v", err)
	}
}

// TestCollectCap: retention stops at MaxViolations but the counts keep
// counting, so the summary stays truthful past the cap.
func TestCollectCap(t *testing.T) {
	r := newRig(t, 48)
	a := audit.NewWithOptions(audit.Options{Interval: 16, ContinueOnViolation: true, MaxViolations: 3})
	sms := []*sm.SM{r.s}

	r.run(t, func(now int64) bool {
		if now == 0 {
			// Persistent from the first sweep onward.
			r.s.InjectMemSkew("accesses", 5)
		}
		if err := a.Step(sms, now); err != nil {
			t.Fatalf("Step: %v", err)
		}
		return now < 5000
	})
	r.s.InjectMemSkew("accesses", -5)

	var set *audit.ViolationSet
	if !errors.As(a.Report(), &set) {
		t.Fatal("Report returned no harvest")
	}
	if len(set.Violations) != 3 {
		t.Errorf("retained %d violations, want the cap of 3", len(set.Violations))
	}
	if set.Total <= 3 {
		t.Errorf("Total=%d, want counting to continue past the cap", set.Total)
	}
	if !strings.Contains(set.Summary(), "retained 3 of") {
		t.Errorf("Summary does not flag truncation:\n%s", set.Summary())
	}
}

// TestFailFastReportNil: a fail-fast auditor's Report is always nil (its
// violations abort the run directly instead of accumulating).
func TestFailFastReportNil(t *testing.T) {
	if err := audit.New(0).Report(); err != nil {
		t.Errorf("fail-fast Report() = %v, want nil", err)
	}
}
