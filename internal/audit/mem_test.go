package audit_test

import (
	"errors"
	"testing"

	"finereg/internal/audit"
	"finereg/internal/mem"
	"finereg/internal/sm"
)

// midRun advances a rig until its memory counters are live and returns
// the stop cycle; the CS kernel is memory-heavy, so a few thousand cycles
// guarantee L1/L2/DRAM traffic.
func midRun(t *testing.T, r *rig) int64 {
	t.Helper()
	at := r.run(t, func(now int64) bool { return now < 5000 })
	if r.s.L1.Accesses == 0 || r.s.Hier.L2.Accesses == 0 {
		t.Fatalf("rig produced no memory traffic (L1 %d, L2 %d accesses)",
			r.s.L1.Accesses, r.s.Hier.L2.Accesses)
	}
	return at
}

// TestMemCleanRun: the memory conservation invariants hold at every event
// step of an unmodified run, SM-level and hierarchy-level both.
func TestMemCleanRun(t *testing.T) {
	r := newRig(t, 48)
	sms := []*sm.SM{r.s}
	end := r.run(t, func(now int64) bool {
		if err := audit.CheckSM(r.s, now); err != nil {
			t.Fatalf("CheckSM at %d: %v", now, err)
		}
		if err := audit.CheckHierarchy(sms, r.s.Hier, now); err != nil {
			t.Fatalf("CheckHierarchy at %d: %v", now, err)
		}
		return true
	})
	if r.s.Hier.DRAM.GrossBytes() == 0 {
		t.Fatal("run produced no DRAM traffic; hierarchy checks were vacuous")
	}
	if err := audit.CheckHierarchy(sms, r.s.Hier, end); err != nil {
		t.Errorf("drained machine fails hierarchy audit: %v", err)
	}
}

// TestMemSkewCaught is the mutation test for the L1 conservation check:
// a skipped hit or miss increment must fire mem:l1Conservation, and
// reverting the skew must restore a clean audit.
func TestMemSkewCaught(t *testing.T) {
	r := newRig(t, 48)
	at := midRun(t, r)
	for _, c := range []string{"hits", "misses", "accesses"} {
		c := c
		t.Run(c, func(t *testing.T) {
			r.s.InjectMemSkew(c, -1)
			err := audit.CheckSM(r.s, at)
			r.s.InjectMemSkew(c, +1)
			var v *audit.Violation
			if !errors.As(err, &v) {
				t.Fatalf("skewed L1 %s: want *audit.Violation, got %v", c, err)
			}
			if v.Rule != "mem:l1Conservation" {
				t.Errorf("skewed L1 %s blames rule %q, want mem:l1Conservation", c, v.Rule)
			}
			if err := audit.CheckSM(r.s, at); err != nil {
				t.Errorf("after reverting L1 %s skew: %v", c, err)
			}
		})
	}
}

// TestHierarchySkewCaught seeds one drift per hierarchy rule and checks
// each is caught under its own name.
func TestHierarchySkewCaught(t *testing.T) {
	r := newRig(t, 48)
	at := midRun(t, r)
	sms := []*sm.SM{r.s}
	check := func() error { return audit.CheckHierarchy(sms, r.s.Hier, at) }
	if err := check(); err != nil {
		t.Fatalf("pre-skew hierarchy audit not clean: %v", err)
	}

	expect := func(t *testing.T, err error, rule string) {
		t.Helper()
		var v *audit.Violation
		if !errors.As(err, &v) {
			t.Fatalf("want *audit.Violation for %s, got %v", rule, err)
		}
		if v.Rule != rule {
			t.Errorf("violation blames rule %q, want %q", v.Rule, rule)
		}
		if v.SM != -1 {
			t.Errorf("hierarchy violation carries SM %d, want -1", v.SM)
		}
	}

	t.Run("l2Conservation", func(t *testing.T) {
		r.s.Hier.L2.InjectAuditSkew("hits", 1)
		expect(t, check(), "mem:l2Conservation")
		r.s.Hier.L2.InjectAuditSkew("hits", -1)
	})
	t.Run("l1l2Accesses", func(t *testing.T) {
		// An L1 miss that never probed the L2 — the forgotten-probe bug.
		r.s.Hier.L2.InjectAuditSkew("accesses", 1)
		r.s.Hier.L2.InjectAuditSkew("hits", 1) // keep L2 self-consistent
		expect(t, check(), "mem:l1l2Accesses")
		r.s.Hier.L2.InjectAuditSkew("accesses", -1)
		r.s.Hier.L2.InjectAuditSkew("hits", -1)
	})
	t.Run("demandBytes", func(t *testing.T) {
		r.s.Hier.DRAM.InjectLedgerSkew(mem.TrafficDemand, mem.LineBytes)
		expect(t, check(), "mem:demandBytes")
		r.s.Hier.DRAM.InjectLedgerSkew(mem.TrafficDemand, -mem.LineBytes)
	})
	t.Run("specLedger", func(t *testing.T) {
		// A speculative read whose commit was never accounted — the
		// lost-commit bug the ledger balance exists to catch.
		r.s.Hier.InjectSpecSkew(1)
		expect(t, check(), "mem:specLedger")
		r.s.Hier.InjectSpecSkew(-1)
	})
	t.Run("dramLedger", func(t *testing.T) {
		// A transfer booked to the wrong class: the class ledger drifts from
		// the independently counted gross bytes.
		r.s.Hier.DRAM.InjectLedgerSkew(mem.TrafficContext, mem.LineBytes)
		expect(t, check(), "mem:dramLedger")
		r.s.Hier.DRAM.InjectLedgerSkew(mem.TrafficContext, -mem.LineBytes)
	})

	if err := check(); err != nil {
		t.Fatalf("post-revert hierarchy audit not clean: %v", err)
	}
}

// TestAuditorSweepsHierarchy wires Hier into an Auditor and checks the
// periodic sweep catches hierarchy drift with no accompanying CTA
// transition.
func TestAuditorSweepsHierarchy(t *testing.T) {
	r := newRig(t, 48)
	a := audit.New(64)
	a.Hier = r.s.Hier
	sms := []*sm.SM{r.s}

	var stepErr error
	end := r.run(t, func(now int64) bool {
		if stepErr = a.Step(sms, now); stepErr != nil {
			return false
		}
		return true
	})
	if stepErr != nil {
		t.Fatalf("clean run: %v", stepErr)
	}
	if err := a.Final(sms, end); err != nil {
		t.Fatalf("drained machine fails Final: %v", err)
	}

	r.s.Hier.DRAM.InjectLedgerSkew(mem.TrafficBitvec, 64)
	defer r.s.Hier.DRAM.InjectLedgerSkew(mem.TrafficBitvec, -64)
	var err error
	for now := end + 1; now < end+200; now++ {
		if err = a.Step(sms, now); err != nil {
			break
		}
	}
	var v *audit.Violation
	if !errors.As(err, &v) || v.Rule != "mem:dramLedger" {
		t.Fatalf("periodic sweep missed the ledger skew: %v", err)
	}
}

// TestResidentLines pins the residency accessor the mem:l1Residency rule
// depends on: lines become valid only through miss fills.
func TestResidentLines(t *testing.T) {
	c := mem.MustNewCache(4*mem.LineBytes, 1)
	if c.ResidentLines() != 0 {
		t.Fatalf("fresh cache has %d resident lines", c.ResidentLines())
	}
	c.Access(0)
	c.Access(0)
	if c.ResidentLines() != 1 {
		t.Errorf("after one distinct line: %d resident", c.ResidentLines())
	}
	if c.Hits != 1 || c.Misses != 1 || c.Accesses != 2 {
		t.Errorf("counters hits=%d misses=%d accesses=%d, want 1/1/2", c.Hits, c.Misses, c.Accesses)
	}
	c.Reset()
	if c.ResidentLines() != 0 || c.Hits != 0 {
		t.Errorf("reset left residents=%d hits=%d", c.ResidentLines(), c.Hits)
	}
}
