package audit

import (
	"fmt"

	"finereg/internal/mem"
	"finereg/internal/sm"
)

// This file extends the invariant catalogue from the SMs to the shared
// memory hierarchy. The counters Figures 14/15 are built from — L1/L2
// hit/miss tallies and the DRAM traffic-class ledger — are maintained
// incrementally on the access path, so they rot exactly the way occupancy
// counters do: one transfer booked to the wrong class and the Figure 15
// breakdown is silently wrong while every simulation still "passes".
//
// Hierarchy-level invariants (cross-SM, checked on full sweeps and at
// end of run):
//
//	mem:l2Conservation  L2 hits + misses == accesses
//	mem:l1l2Accesses    Σ per-SM L1 misses == L2 accesses (the demand
//	                    path is the L2's only client; policy transfers
//	                    bypass it straight to DRAM)
//	mem:demandBytes     DRAM demand-class bytes == L2 misses × LineBytes
//	                    (each L2 miss moves exactly one line)
//	mem:dramLedger      Σ per-class ledger == independently counted
//	                    gross bytes
//	mem:specPending     no speculative L2 read is still buffered at a
//	                    step barrier (every Tick drains its buffer at
//	                    its canonical commit point)
//	mem:specLedger      Σ speculative reads == Σ validated + Σ replayed
//	                    commits — every speculation is accounted exactly
//	                    once (with specPending, checked at barriers where
//	                    nothing is in flight)
//
// Per-SM L1 conservation/residency lives in CheckSM.

// CheckHierarchy verifies the shared L2 + DRAM invariants against the
// SMs' L1 counters at cycle now. Violations carry SM = -1 (the hierarchy
// is machine-global).
func CheckHierarchy(sms []*sm.SM, h *mem.Hierarchy, now int64) error {
	if h == nil {
		return nil
	}
	fail := func(rule string, got, want int64, detail string) error {
		return &Violation{SM: -1, Cycle: now, Rule: rule, Got: got, Want: want, Detail: detail}
	}

	if l2 := h.L2; l2 != nil {
		if l2.Hits+l2.Misses != l2.Accesses {
			return fail("mem:l2Conservation", l2.Hits+l2.Misses, l2.Accesses,
				fmt.Sprintf("hits %d + misses %d vs accesses", l2.Hits, l2.Misses))
		}
		var l1Misses int64
		for _, s := range sms {
			l1Misses += s.L1.Misses
		}
		if l1Misses != l2.Accesses {
			return fail("mem:l1l2Accesses", l1Misses, l2.Accesses,
				"sum of per-SM L1 misses vs L2 probes")
		}
		if d := h.DRAM; d != nil {
			if want := l2.Misses * mem.LineBytes; d.Bytes(mem.TrafficDemand) != want {
				return fail("mem:demandBytes", d.Bytes(mem.TrafficDemand), want,
					fmt.Sprintf("demand traffic vs %d L2 misses x %d B lines", l2.Misses, mem.LineBytes))
			}
		}
	}
	if d := h.DRAM; d != nil {
		if d.TotalBytes() != d.GrossBytes() {
			return fail("mem:dramLedger", d.TotalBytes(), d.GrossBytes(),
				"per-class ledger sum vs gross transfer count")
		}
	}
	var reads, validated, replayed, pending int64
	for _, s := range sms {
		r, v, rp, p := s.Hier.SpecLedger()
		reads += r
		validated += v
		replayed += rp
		pending += p
	}
	if pending != 0 {
		return fail("mem:specPending", pending, 0,
			"speculative L2 reads still buffered at a step barrier")
	}
	if reads != validated+replayed {
		return fail("mem:specLedger", reads, validated+replayed,
			fmt.Sprintf("speculative reads vs %d validated + %d replayed commits", validated, replayed))
	}
	return nil
}
