// Package diff is the differential-validation layer on top of the runtime
// invariant auditor (internal/audit): it runs the same kernel under every
// register-file policy and both warp schedulers — with the auditor enabled
// on every run — and checks the cross-policy invariants. The executed
// instruction stream is a property of the kernel, not of the policy: CTA
// switching changes *when* warps run, never *what* they execute, so the
// instruction, shared-access, launch, and demand register-file traffic
// counts must agree across all runs of a matrix.
//
// FineReg's context movement inflates the raw register-file counters: a
// PCRF eviction re-reads the live registers from the ACRF (RFReads += n,
// PCRFWrites += n) and a restore writes them back (RFWrites += n,
// PCRFReads += n), one-for-one. The demand-only projection therefore
// subtracts the context traffic — RFReads − PCRFWrites and
// RFWrites − PCRFReads are policy-invariant even though the raw counters
// are not.
//
// The matrix also doubles as the auditor's widest test fixture: every run
// executes with gpu.Config.Audit set, so a single RunMatrix sweeps all six
// policies' accounting through launch, stall, switch, resume, and finish
// transitions under both schedulers.
package diff

import (
	"errors"
	"fmt"

	"finereg/internal/gpu"
	"finereg/internal/isa"
	"finereg/internal/kernels"
	"finereg/internal/runner"
	"finereg/internal/sm"
	"finereg/internal/stats"
)

// Policies returns the six evaluated configurations: the five of the
// paper's Figure 12/13 legends plus the finereg-full ablation (full
// register sets in the PCRF), which exercises a different eviction size
// accounting path.
func Policies() []runner.PolicySpec {
	return []runner.PolicySpec{
		runner.Baseline(),
		runner.VirtualThread(),
		runner.RegDRAM(2),
		runner.VTRegMutex(0.25),
		runner.FineRegDefault(),
		runner.FineRegFull(128<<10, 128<<10),
	}
}

// Config returns a small audited machine for differential runs: n SMs with
// proportionally scaled shared resources, the invariant auditor enabled,
// and a sweep interval tight enough that periodic invariants (not just
// transition-triggered ones) fire many times even on short kernels.
func Config(sms int) gpu.Config {
	cfg := gpu.Default().Scale(sms)
	cfg.Audit = true
	cfg.AuditInterval = 512
	return cfg
}

// Counts is the policy-invariant projection of a run's metrics. RFReads
// and RFWrites here are demand-only (context traffic subtracted); see the
// package comment.
type Counts struct {
	Instructions   int64
	SharedAccesses int64
	CTAsLaunched   int64
	RFReads        int64
	RFWrites       int64
}

// CountsOf projects metrics onto the policy-invariant counts.
func CountsOf(m *stats.Metrics) Counts {
	return Counts{
		Instructions:   m.Instructions,
		SharedAccesses: m.SharedAccesses,
		CTAsLaunched:   m.CTAsLaunched,
		RFReads:        m.RFReads - m.PCRFWrites,
		RFWrites:       m.RFWrites - m.PCRFReads,
	}
}

// Outcome is one cell of a differential matrix.
type Outcome struct {
	// Label is "bench/scheduler/policy".
	Label   string
	Counts  Counts
	Metrics *stats.Metrics
}

// RunMatrix runs profile×grid under every policy and both schedulers on
// audited copies of cfg and returns the outcomes in a fixed order. Any
// run failure — including an audit violation — fails the whole matrix.
func RunMatrix(cfg gpu.Config, p kernels.Profile, grid int) ([]Outcome, error) {
	scheds := []struct {
		name string
		kind sm.SchedKind
	}{{"gto", sm.SchedGTO}, {"lrr", sm.SchedLRR}}

	var jobList []*runner.Job
	for _, sched := range scheds {
		c := cfg
		c.SM.Scheduler = sched.kind
		for _, pol := range Policies() {
			jobList = append(jobList, &runner.Job{
				Cfg:     c,
				Profile: p,
				Grid:    grid,
				Policy:  pol,
				Label:   fmt.Sprintf("%s/%s/%s", p.Abbrev, sched.name, pol.Name()),
			})
		}
	}

	eng := &runner.Engine{Cache: runner.NewCache("")}
	batch := eng.Run(jobList)

	var errs []error
	out := make([]Outcome, 0, len(jobList))
	for i, j := range jobList {
		if err := batch.Errs[i]; err != nil {
			errs = append(errs, err)
			continue
		}
		m := batch.Results[i].Metrics
		out = append(out, Outcome{Label: j.Label, Counts: CountsOf(m), Metrics: m})
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return out, nil
}

// CheckInvariance verifies that every outcome's policy-invariant counts
// match the first one, returning a descriptive error on the first
// divergence.
func CheckInvariance(outs []Outcome) error {
	if len(outs) < 2 {
		return fmt.Errorf("diff: matrix too small (%d outcomes)", len(outs))
	}
	ref := outs[0]
	for _, o := range outs[1:] {
		if o.Counts != ref.Counts {
			return fmt.Errorf("diff: policy-variant execution:\n  %-40s %+v\n  %-40s %+v",
				ref.Label, ref.Counts, o.Label, o.Counts)
		}
	}
	return nil
}

// rng is splitmix64 — a tiny deterministic generator so random profiles
// are reproducible from their seed alone (the fuzz corpus stores seeds,
// not profiles).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// RandomProfile derives a small but valid kernel profile from seed: the
// register split, shared-memory footprint, loop shape, memory mix, and
// access pattern all vary, within the generator's constraints (see
// kernels.Build) and sized so a full 12-run matrix stays test-fast. The
// same seed always yields the same profile.
func RandomProfile(seed uint64) kernels.Profile {
	r := &rng{s: seed}

	// Register layout: 3 reserved + persistent + temps + cold, max 36 of
	// the ISA's 64 — spans scheduler-limited through register-limited
	// occupancy on the default SM.
	persistent := 1 + r.intn(20)
	cold := r.intn(8)
	temps := 1 + r.intn(6)

	sharedMem := []int{0, 1 << 10, 4 << 10, 8 << 10}[r.intn(4)]
	shmemPerIter := 0
	if sharedMem > 0 {
		shmemPerIter = r.intn(4)
	}
	streamLoads := r.intn(3)
	hotLoads := r.intn(3)
	if streamLoads+hotLoads == 0 {
		streamLoads = 1
	}

	return kernels.Profile{
		Abbrev:         fmt.Sprintf("R%x", seed),
		Name:           "random differential kernel",
		Suite:          "audit/diff",
		WarpsPerCTA:    1 + r.intn(4),
		Regs:           3 + persistent + cold + temps,
		Persistent:     persistent,
		ColdRegs:       cold,
		SharedMem:      sharedMem,
		LoopTrips:      1 + r.intn(6),
		StreamLoads:    streamLoads,
		HotLoads:       hotLoads,
		HotKB:          []int{0, 16, 32, 64}[r.intn(4)],
		ComputePerIter: r.intn(16),
		SFUPerIter:     r.intn(3),
		ShmemPerIter:   shmemPerIter,
		Pattern:        []isa.Pattern{isa.PatCoalesced, isa.PatStrided, isa.PatRandom}[r.intn(3)],
		Stride:         1 + r.intn(8),
		FootprintKB:    256 * (1 + r.intn(8)),
		StorePeriod:    r.intn(3),
		GridCTAs:       8 + r.intn(17),
	}
}
