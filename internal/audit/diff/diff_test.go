package diff

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"finereg/internal/audit"
	"finereg/internal/gpu"
	"finereg/internal/kernels"
	"finereg/internal/mem"
	"finereg/internal/regfile"
	"finereg/internal/runner"
	"finereg/internal/sm"
)

// TestCrossPolicyInvariance is the standalone instruction-count invariance
// check over real Table II benchmarks: one scheduler-limited and two
// register-limited workloads, each run under all six policies and both
// schedulers with the auditor on. Grids are small but large enough that
// the switching policies actually park and resume CTAs.
func TestCrossPolicyInvariance(t *testing.T) {
	cases := []struct {
		bench string
		grid  int
	}{
		{"CS", 40},
		{"LB", 16},
		{"SG", 16},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.bench, func(t *testing.T) {
			t.Parallel()
			p, err := kernels.ProfileByName(tc.bench)
			if err != nil {
				t.Fatal(err)
			}
			outs, err := RunMatrix(Config(2), p, tc.grid)
			if err != nil {
				t.Fatal(err)
			}
			if len(outs) != 2*len(Policies()) {
				t.Fatalf("matrix has %d outcomes, want %d", len(outs), 2*len(Policies()))
			}
			if err := CheckInvariance(outs); err != nil {
				t.Error(err)
			}
			for _, o := range outs {
				if o.Counts.Instructions <= 0 {
					t.Errorf("%s: no instructions executed", o.Label)
				}
			}
		})
	}
}

// TestReplayDeterminism runs the identical job through two fresh engines
// and requires bit-identical metrics: the simulator must be a pure
// function of the job description.
func TestReplayDeterminism(t *testing.T) {
	p, err := kernels.ProfileByName("CS")
	if err != nil {
		t.Fatal(err)
	}
	job := func() *runner.Job {
		return &runner.Job{Cfg: Config(2), Profile: p, Grid: 24, Policy: runner.FineRegDefault()}
	}
	run := func() *runner.Result {
		eng := &runner.Engine{Cache: runner.NewCache("")}
		batch := eng.Run([]*runner.Job{job()})
		if batch.Errs[0] != nil {
			t.Fatal(batch.Errs[0])
		}
		return batch.Results[0]
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Errorf("replay diverged:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
}

// TestRandomProfilesBuildable feeds a spread of seeds through the profile
// generator and requires every one to pass the kernel builder's
// constraint checks.
func TestRandomProfilesBuildable(t *testing.T) {
	for seed := uint64(0); seed < 64; seed++ {
		p := RandomProfile(seed)
		if _, err := kernels.Build(p, 8); err != nil {
			t.Errorf("seed %d: %+v: %v", seed, p, err)
		}
	}
}

// TestRandomProfileDeterministic pins the seed→profile mapping: the fuzz
// corpus stores seeds, so the derivation must never drift silently.
func TestRandomProfileDeterministic(t *testing.T) {
	if a, b := RandomProfile(42), RandomProfile(42); a != b {
		t.Errorf("same seed, different profiles:\n%+v\n%+v", a, b)
	}
	if a, b := RandomProfile(1), RandomProfile(2); a == b {
		t.Error("different seeds produced identical profiles")
	}
}

// TestDifferentialRandomKernels is the property test behind the fuzz
// harness: random kernels must execute the same instruction stream under
// every policy×scheduler combination, audited.
func TestDifferentialRandomKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix sweep skipped in -short")
	}
	for _, seed := range []uint64{3, 0x5eed, 0xbeef} {
		p := RandomProfile(seed)
		outs, err := RunMatrix(Config(2), p, p.GridCTAs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := CheckInvariance(outs); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// leakyBaseline seeds the acceptance-criterion mutation: it behaves as the
// baseline policy but skips the register release when a CTA finishes, so
// the maintained regsFree drifts below the value recomputed from the
// resident set. The auditor must catch this through gpu.Run's error path
// at the first CTA-finish transition.
type leakyBaseline struct {
	*regfile.Baseline
}

func (l *leakyBaseline) OnCTAFinished(s *sm.SM, c *sm.CTA, now int64) {}

func (l *leakyBaseline) Name() string { return "leaky-baseline" }

func TestAuditorCatchesLeakyPolicy(t *testing.T) {
	p, err := kernels.ProfileByName("CS")
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernels.Build(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	pf := func(cfg sm.Config, hier *mem.Hierarchy) sm.Policy {
		return &leakyBaseline{regfile.NewBaseline(cfg)}
	}
	g := gpu.New(Config(2), pf)
	_, err = g.Run(k)
	if err == nil {
		t.Fatal("leaky policy ran to completion unaudited")
	}
	var v *audit.Violation
	if !errors.As(err, &v) {
		t.Fatalf("want *audit.Violation, got %T: %v", err, err)
	}
	if v.Rule != "policy:regsFree" {
		t.Errorf("violation rule = %q, want policy:regsFree", v.Rule)
	}
	if !strings.Contains(v.Error(), "leaky-baseline") {
		t.Errorf("violation dump lacks the policy accounting section:\n%s", v.Error())
	}
}

// TestAuditChangesJobKey pins the cache-identity property: an audited and
// an unaudited run of the same point must never share a cache entry.
func TestAuditChangesJobKey(t *testing.T) {
	p, err := kernels.ProfileByName("CS")
	if err != nil {
		t.Fatal(err)
	}
	plain := &runner.Job{Cfg: gpu.Default().Scale(2), Profile: p, Grid: 8, Policy: runner.Baseline()}
	audited := &runner.Job{Cfg: Config(2), Profile: p, Grid: 8, Policy: runner.Baseline()}
	if plain.Key(runner.SimFingerprint) == audited.Key(runner.SimFingerprint) {
		t.Error("audited and unaudited jobs share a key")
	}
}
