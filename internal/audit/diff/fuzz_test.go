package diff

import "testing"

// FuzzDifferential explores the random-kernel space: each input seed
// derives a profile (RandomProfile is total — every uint64 maps to a
// buildable kernel) and runs the full audited policy×scheduler matrix.
// Two distinct failure modes surface here: an audit violation inside any
// single run, and a cross-policy divergence of the invariant counts.
//
// Run with `go test -fuzz=FuzzDifferential ./internal/audit/diff` to
// explore beyond the seed corpus; plain `go test` replays the corpus.
func FuzzDifferential(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(0x5eed))
	f.Add(uint64(0xdecaf))
	f.Fuzz(func(t *testing.T, seed uint64) {
		p := RandomProfile(seed)
		// Cap the grid so a pathological seed stays fuzz-fast; the matrix
		// is 12 audited simulations per input.
		grid := p.GridCTAs
		if grid > 12 {
			grid = 12
		}
		outs, err := RunMatrix(Config(2), p, grid)
		if err != nil {
			t.Fatalf("seed %#x: %v", seed, err)
		}
		if err := CheckInvariance(outs); err != nil {
			t.Fatalf("seed %#x: %v", seed, err)
		}
	})
}
