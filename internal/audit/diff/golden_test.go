package diff

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"finereg/internal/kernels"
	"finereg/internal/trace"
)

// The golden matrix pins the simulator's cycle-exact timing: every cell is
// one audited policy × scheduler run, and its Instructions, CTAsLaunched,
// and Cycles must reproduce byte-identically forever — or the fingerprint
// must be bumped and the goldens regenerated deliberately with
//
//	go test ./internal/audit/diff -run TestGoldenCycleExactness -update-golden
//
// The snapshot in testdata/golden_matrix.json was captured from the dense
// reference run loop (every SM ticked at every global step, every
// scheduler scanning its full warp list, per-step stats integration) with
// this PR's two scheduler bugfixes applied — the seq-anchored LRR rotation
// and out-of-place dropWarpsOf compaction (in-place compaction aliased an
// in-progress scheduler scan after a mid-scan CTA eviction, silently
// skipping ready warps that shifted behind the cursor) — immediately
// before the event-driven core landed. This test is therefore the proof
// that wake caching, the ready-list schedulers, and the incremental stats
// integrals are pure optimizations: same events, same cycles, same work —
// just fewer wasted scans.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_matrix.json from the current simulator")

const goldenPath = "testdata/golden_matrix.json"

// goldenCell is one matrix cell's pinned integer metrics.
type goldenCell struct {
	Label        string `json:"label"`
	Instructions int64  `json:"instructions"`
	CTAsLaunched int64  `json:"ctas_launched"`
	Cycles       int64  `json:"cycles"`
}

// goldenCase is one kernel's full 12-cell matrix.
type goldenCase struct {
	Kernel string       `json:"kernel"`
	Grid   int          `json:"grid"`
	Seed   uint64       `json:"seed,omitempty"`
	Cells  []goldenCell `json:"cells"`
}

// goldenKernels returns the pinned workloads: three real Table II
// benchmarks spanning scheduler-limited and register-limited behaviour,
// plus two random differential kernels (identified by seed so the profile
// derivation is part of what the goldens pin).
func goldenKernels(t *testing.T) []goldenCase {
	t.Helper()
	cases := []goldenCase{
		{Kernel: "CS", Grid: 40},
		{Kernel: "LB", Grid: 16},
		{Kernel: "SG", Grid: 16},
		{Kernel: "random", Seed: 0x5eed},
		{Kernel: "random", Seed: 0xfe11},
	}
	for i := range cases {
		if cases[i].Kernel == "random" {
			cases[i].Grid = RandomProfile(cases[i].Seed).GridCTAs
		}
	}
	return cases
}

func (gc *goldenCase) profile(t *testing.T) kernels.Profile {
	t.Helper()
	if gc.Kernel == "random" {
		return RandomProfile(gc.Seed)
	}
	p, err := kernels.ProfileByName(gc.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestGoldenCycleExactness runs the full differential matrix for every
// pinned workload and compares each cell's integer metrics against the
// snapshot. CheckInvariance runs on each matrix as well, so a regression
// that somehow moved all policies in lockstep would still have to get past
// the absolute numbers.
func TestGoldenCycleExactness(t *testing.T) {
	if testing.Short() && !*updateGolden {
		t.Skip("golden matrix sweep skipped in -short")
	}
	cases := goldenKernels(t)
	for i := range cases {
		gc := &cases[i]
		outs, err := RunMatrix(Config(2), gc.profile(t), gc.Grid)
		if err != nil {
			t.Fatalf("%s/%d: %v", gc.Kernel, gc.Grid, err)
		}
		if err := CheckInvariance(outs); err != nil {
			t.Errorf("%s/%d: %v", gc.Kernel, gc.Grid, err)
		}
		for _, o := range outs {
			gc.Cells = append(gc.Cells, goldenCell{
				Label:        o.Label,
				Instructions: o.Metrics.Instructions,
				CTAsLaunched: o.Metrics.CTAsLaunched,
				Cycles:       o.Metrics.Cycles,
			})
		}
	}

	if *updateGolden {
		b, err := json.MarshalIndent(cases, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cases)", goldenPath, len(cases))
		return
	}

	compareGolden(t, cases)
}

// compareGolden checks the freshly computed cases against the snapshot.
func compareGolden(t *testing.T, cases []goldenCase) {
	t.Helper()
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden snapshot (run with -update-golden to create): %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(cases) {
		t.Fatalf("golden snapshot has %d cases, test now runs %d — regenerate deliberately", len(want), len(cases))
	}
	for i := range cases {
		got, exp := cases[i], want[i]
		if got.Kernel != exp.Kernel || got.Grid != exp.Grid || got.Seed != exp.Seed {
			t.Fatalf("case %d is %s/%d/%#x, golden has %s/%d/%#x — regenerate deliberately",
				i, got.Kernel, got.Grid, got.Seed, exp.Kernel, exp.Grid, exp.Seed)
		}
		if len(got.Cells) != len(exp.Cells) {
			t.Fatalf("%s: %d cells, golden has %d", got.Kernel, len(got.Cells), len(exp.Cells))
		}
		for j := range got.Cells {
			if got.Cells[j] != exp.Cells[j] {
				t.Errorf("%s cell %s drifted:\n  got  %+v\n  want %+v",
					got.Kernel, got.Cells[j].Label, got.Cells[j], exp.Cells[j])
			}
		}
	}
}

// TestGoldenProgressSampling re-runs the pinned matrix with in-run
// progress sampling enabled — a no-op callback at a short period, so
// samples fire constantly — and holds the cells to the same snapshot.
// This is the observability layer's byte-identity proof: sampling rides
// the wake schedule, never inserts an event step, and must not move a
// single cycle in any policy × scheduler cell.
func TestGoldenProgressSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("golden matrix sweep skipped in -short")
	}
	var sampled atomic.Int64
	cfg := Config(2)
	cfg.ProgressEvery = 1024
	cfg.Progress = func(trace.ProgressSample) { sampled.Add(1) }

	cases := goldenKernels(t)
	for i := range cases {
		gc := &cases[i]
		outs, err := RunMatrix(cfg, gc.profile(t), gc.Grid)
		if err != nil {
			t.Fatalf("%s/%d: %v", gc.Kernel, gc.Grid, err)
		}
		for _, o := range outs {
			gc.Cells = append(gc.Cells, goldenCell{
				Label:        o.Label,
				Instructions: o.Metrics.Instructions,
				CTAsLaunched: o.Metrics.CTAsLaunched,
				Cycles:       o.Metrics.Cycles,
			})
		}
	}
	if sampled.Load() == 0 {
		t.Fatal("progress callback never fired — the matrix ran unsampled, proving nothing")
	}
	compareGolden(t, cases)
}

// TestGoldenShardedExecution re-runs the pinned matrix with the sharded
// event core at shards ∈ {2, 4} — committed golden_matrix.json unchanged.
// This is the parallel core's byte-identity proof at full audit depth:
// every cell runs with the cycle auditor attached, and every policy ×
// scheduler combination must land on exactly the serial snapshot.
// (Shards=1 — the serial loop — is what TestGoldenCycleExactness pins;
// RunMatrix builds a fresh engine and empty cache per call, so these
// cells genuinely re-simulate rather than replaying cached results of
// the serial runs.)
func TestGoldenShardedExecution(t *testing.T) {
	if testing.Short() {
		t.Skip("golden matrix sweep skipped in -short")
	}
	for _, shards := range []int{2, 4} {
		cfg := Config(2)
		cfg.Shards = shards
		cases := goldenKernels(t)
		for i := range cases {
			gc := &cases[i]
			outs, err := RunMatrix(cfg, gc.profile(t), gc.Grid)
			if err != nil {
				t.Fatalf("shards=%d %s/%d: %v", shards, gc.Kernel, gc.Grid, err)
			}
			for _, o := range outs {
				gc.Cells = append(gc.Cells, goldenCell{
					Label:        o.Label,
					Instructions: o.Metrics.Instructions,
					CTAsLaunched: o.Metrics.CTAsLaunched,
					Cycles:       o.Metrics.Cycles,
				})
			}
		}
		compareGolden(t, cases)
	}
}
