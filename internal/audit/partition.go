// partition.go extends the auditor with the MPS-style partition
// accounting invariants (gpu.Config.Partitions): each partition's grid
// dispatcher must hand out CTAs only within its own grid, and every
// hand-out must be conserved into exactly one launch on one of the
// partition's SMs. These are the cross-SM analogue of CheckSM's per-SM
// occupancy rules — a dispatcher shared by the wrong SM set, or a CTA ID
// leaking between partitions, corrupts every per-tenant metric silently.
package audit

import (
	"fmt"

	"finereg/internal/sm"
)

// Partition describes one static SM partition for the accounting checks.
// gpu's run loop refreshes these from the live dispatchers each audit
// step; the struct holds plain values so audit needs no gpu import.
type Partition struct {
	// Index is the partition's position in the machine's partition list.
	Index int
	// SMs is the partition's SM subset, in ascending index order.
	SMs []*sm.SM
	// Base[i] is SMs[i]'s cumulative CTAsLaunched recorded immediately
	// before the partition's kernel was bound, so launch conservation
	// holds per segment even on a machine that has run kernels before.
	Base []int64
	// Dispatched is how many CTA IDs the partition's dispatcher has handed
	// out; Total is the kernel's grid size.
	Dispatched, Total int
}

// CheckPartitions verifies the partition accounting invariants at cycle
// now and returns the first *Violation, or nil:
//
//	dispatchBounds       0 <= Dispatched <= Total
//	launchConservation   Σ over the partition's SMs of
//	                     (CTAsLaunched − Base) == Dispatched
//	ctaRange, ctaDup     resident CTA IDs lie in [0, Total) and are
//	                     unique within the partition
//
// Like CheckSM it must run between event steps (mid-Tick, a hand-out can
// be in flight between NextCTAID and the launch counter increment).
func CheckPartitions(parts []Partition, now int64) error {
	for i := range parts {
		if err := checkPartition(&parts[i], now); err != nil {
			return err
		}
	}
	return nil
}

func checkPartition(p *Partition, now int64) error {
	fail := func(smID int, rule string, got, want int64, detail string) error {
		return &Violation{SM: smID, Cycle: now, Rule: rule, Got: got, Want: want,
			Detail: fmt.Sprintf("partition %d: %s", p.Index, detail)}
	}
	if p.Dispatched < 0 || p.Dispatched > p.Total {
		return fail(-1, "partition:dispatchBounds", int64(p.Dispatched), int64(p.Total),
			"dispatched CTA count outside [0, grid]")
	}
	var launched int64
	seen := make(map[int]int, 64) // CTA ID -> SM holding it
	for i, s := range p.SMs {
		var base int64
		if i < len(p.Base) {
			base = p.Base[i]
		}
		launched += s.Cnt.CTAsLaunched - base
		for _, c := range s.Residents() {
			if c.ID < 0 || c.ID >= p.Total {
				return fail(s.ID, "partition:ctaRange", int64(c.ID), int64(p.Total),
					fmt.Sprintf("resident CTA %d outside the partition's grid [0,%d)", c.ID, p.Total))
			}
			if prev, dup := seen[c.ID]; dup {
				return fail(s.ID, "partition:ctaDup", int64(c.ID), int64(c.ID),
					fmt.Sprintf("CTA %d resident on both SM%d and SM%d", c.ID, prev, s.ID))
			}
			seen[c.ID] = s.ID
		}
	}
	if launched != int64(p.Dispatched) {
		return fail(-1, "partition:launchConservation", launched, int64(p.Dispatched),
			"per-SM launches since bind vs dispatcher hand-outs")
	}
	return nil
}

// StepPartitions applies CheckPartitions under the auditor's failure
// mode: fail-fast returns the violation, collect mode records it into the
// run's harvest and lets the simulation continue.
func (a *Auditor) StepPartitions(parts []Partition, now int64) error {
	err := CheckPartitions(parts, now)
	if err == nil || !a.opts.ContinueOnViolation {
		return err
	}
	a.record(err)
	return nil
}
