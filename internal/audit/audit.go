// Package audit is the simulator's runtime invariant checker. The
// occupancy counters the timing model maintains incrementally (warpsUsed,
// threadsUsed, awake, shmemUsed, active/pending CTA counts) and the
// register accounting each policy maintains (regsFree, PCRF free space,
// SRP holds, DRAM pool occupancy) are exactly the bookkeeping the paper
// delegates to hardware — and exactly where a cycle-level simulator rots:
// one skipped decrement corrupts every downstream figure silently.
//
// The auditor re-derives each counter from first principles — by walking
// the resident CTA set, the per-warp flags, the scheduler lists, the event
// heap, and (for FineReg) the PCRF tag chains — and compares. gpu.Run
// invokes it when Config.Audit is set: a full sweep every AuditInterval
// cycles plus a targeted sweep of any SM whose CTA lifecycle counters
// changed since the last event step, so every launch/switch/finish
// transition is audited at the step it happened. A mismatch aborts the run
// with a *Violation carrying the rule, both values, and a full state dump.
//
// The companion package audit/diff layers differential validation on top:
// cross-policy invariants (the executed instruction stream is
// policy-invariant) and replay determinism over random kernels.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"finereg/internal/mem"
	"finereg/internal/sm"
)

// DefaultInterval is the periodic full-sweep period in cycles when
// gpu.Config.AuditInterval is zero. Transitions are audited as they happen
// regardless; the periodic sweep bounds how long a drift that does not
// change CTA counts (e.g. a leaked awake counter) can go unnoticed.
const DefaultInterval = 4096

// DefaultMaxViolations caps how many violations collect mode retains in
// full (with state dumps); further violations are still counted per rule.
const DefaultMaxViolations = 32

// Violation is a failed invariant: which SM, when, which rule, and the
// mismatching values, plus a rendered dump of the SM's resident state.
// It flows out through gpu.Run's error return.
type Violation struct {
	SM    int
	Cycle int64
	// Rule names the invariant (e.g. "warpsUsed", "policy:regsFree").
	Rule string
	// Got is the maintained value, Want the recomputed ground truth.
	Got, Want int64
	// Detail optionally qualifies the mismatch (range bounds, CTA id).
	Detail string
	// Dump is the SM's resident/warp state at detection time.
	Dump string
}

// Error implements error.
func (v *Violation) Error() string {
	msg := fmt.Sprintf("audit: SM%d cycle %d: %s = %d, want %d", v.SM, v.Cycle, v.Rule, v.Got, v.Want)
	if v.Detail != "" {
		msg += " (" + v.Detail + ")"
	}
	if v.Dump != "" {
		msg += "\n" + v.Dump
	}
	return msg
}

// sig is the transition signature: if any of these change between event
// steps, a CTA lifecycle transition happened on the SM and it is audited
// immediately rather than waiting for the interval sweep.
type sig struct {
	launched, switches int64
	residents          int
	active, pending    int
}

func sigOf(s *sm.SM) sig {
	return sig{
		launched:  s.Cnt.CTAsLaunched,
		switches:  s.Cnt.CTASwitches,
		residents: len(s.Residents()),
		active:    s.ActiveCTAs(),
		pending:   s.PendingCTAs(),
	}
}

// Options configures an Auditor.
type Options struct {
	// Interval is the periodic full-sweep period in cycles (<= 0 uses
	// DefaultInterval).
	Interval int64
	// ContinueOnViolation switches the auditor from fail-fast to
	// collect-all: instead of aborting the run at the first violation, the
	// auditor records it and lets the simulation continue, so one run
	// surfaces every distinct drift (a single root cause often trips
	// several rules; fail-fast shows only the first). Final then reports
	// the whole harvest as one *ViolationSet error.
	ContinueOnViolation bool
	// MaxViolations caps how many violations are retained in full in
	// collect mode (<= 0 uses DefaultMaxViolations). The per-rule counts
	// keep counting past the cap, so the summary stays truthful.
	MaxViolations int
}

// Auditor drives invariant checking over a set of SMs. One Auditor per
// run; it is not safe for concurrent use (gpu.Run is single-threaded).
type Auditor struct {
	// Interval is the periodic full-sweep period in cycles.
	Interval int64
	// Hier, when set, extends full sweeps and the final check with the
	// shared memory-hierarchy invariants (CheckHierarchy). gpu.Run wires
	// the machine's hierarchy in.
	Hier *mem.Hierarchy

	opts Options
	next int64
	sigs []sig

	// collect-mode harvest
	kept   []*Violation
	total  int
	byRule map[string]int
}

// New returns an Auditor sweeping every interval cycles (<= 0 uses
// DefaultInterval).
func New(interval int64) *Auditor {
	return NewWithOptions(Options{Interval: interval})
}

// NewWithOptions returns an Auditor configured by opts.
func NewWithOptions(opts Options) *Auditor {
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if opts.MaxViolations <= 0 {
		opts.MaxViolations = DefaultMaxViolations
	}
	return &Auditor{Interval: opts.Interval, opts: opts, byRule: map[string]int{}}
}

// check applies one SM check under the configured failure mode: fail-fast
// returns the violation; collect mode records it and reports success so
// the run continues.
func (a *Auditor) check(s *sm.SM, now int64) error {
	err := CheckSM(s, now)
	if err == nil || !a.opts.ContinueOnViolation {
		return err
	}
	a.record(err)
	return nil
}

// record harvests a violation in collect mode.
func (a *Auditor) record(err error) {
	v, ok := err.(*Violation)
	if !ok {
		v = &Violation{Rule: "unknown", Detail: err.Error()}
	}
	a.total++
	a.byRule[v.Rule]++
	if len(a.kept) < a.opts.MaxViolations {
		a.kept = append(a.kept, v)
	}
}

// Step audits after one event step at cycle now: every SM whose lifecycle
// signature changed since the previous step, and all SMs when the periodic
// interval has elapsed. Returns the first *Violation found, or nil.
func (a *Auditor) Step(sms []*sm.SM, now int64) error {
	if a.sigs == nil {
		a.sigs = make([]sig, len(sms))
		for i, s := range sms {
			a.sigs[i] = sigOf(s)
		}
		// First step: audit everything (kernel start transitions).
		a.next = now + a.Interval
		return a.sweep(sms, now)
	}
	full := now >= a.next
	if full {
		a.next = now + a.Interval
		return a.sweep(sms, now)
	}
	for i, s := range sms {
		if g := sigOf(s); g != a.sigs[i] {
			a.sigs[i] = g
			if err := a.check(s, now); err != nil {
				return err
			}
		}
	}
	return nil
}

func (a *Auditor) sweep(sms []*sm.SM, now int64) error {
	if len(a.sigs) < len(sms) {
		// Final may run on an auditor whose Step never fired (empty grid,
		// direct use); allocate the signature slots it would have set up.
		a.sigs = make([]sig, len(sms))
	}
	for i, s := range sms {
		a.sigs[i] = sigOf(s)
		if err := a.check(s, now); err != nil {
			return err
		}
	}
	// The hierarchy invariants are machine-global sums, so they ride the
	// full sweeps rather than per-SM transition checks.
	if a.Hier != nil {
		if err := CheckHierarchy(sms, a.Hier, now); err != nil {
			if !a.opts.ContinueOnViolation {
				return err
			}
			a.record(err)
		}
	}
	return nil
}

// Final audits every SM once (end-of-run leak check: a drained machine
// must account every resource as free). In collect mode it then reports
// the whole run's harvest: a *ViolationSet error when anything was
// recorded, nil otherwise.
func (a *Auditor) Final(sms []*sm.SM, now int64) error {
	if err := a.sweep(sms, now); err != nil {
		return err
	}
	return a.Report()
}

// Report returns the collect-mode harvest as an error: nil when no
// violation was recorded, otherwise a *ViolationSet with the retained
// violations and complete per-rule counts. Fail-fast auditors always
// report nil (their violations abort the run directly).
func (a *Auditor) Report() error {
	if a.total == 0 {
		return nil
	}
	return &ViolationSet{Violations: a.kept, Total: a.total, ByRule: a.byRule}
}

// ViolationSet is the collect-mode run verdict: every violation the run
// produced, summarized per rule, with the first MaxViolations retained in
// full (dumps included).
type ViolationSet struct {
	// Violations holds the retained violations in detection order.
	Violations []*Violation
	// Total counts every violation, including those beyond the retention
	// cap.
	Total int
	// ByRule counts violations per rule name.
	ByRule map[string]int
}

// Error implements error: a per-rule summary line plus the first retained
// violation in full (the complete harvest stays available via the fields).
func (s *ViolationSet) Error() string {
	rules := make([]string, 0, len(s.ByRule))
	for r := range s.ByRule {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	parts := make([]string, len(rules))
	for i, r := range rules {
		parts[i] = fmt.Sprintf("%s x%d", r, s.ByRule[r])
	}
	msg := fmt.Sprintf("audit: %d violations (%s)", s.Total, strings.Join(parts, ", "))
	if len(s.Violations) > 0 {
		msg += "\nfirst: " + s.Violations[0].Error()
	}
	return msg
}

// Summary renders the per-rule counts and every retained violation's
// headline (dumps elided) — the end-of-run report CLIs print.
func (s *ViolationSet) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d violations across %d rules\n", s.Total, len(s.ByRule))
	rules := make([]string, 0, len(s.ByRule))
	for r := range s.ByRule {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	for _, r := range rules {
		fmt.Fprintf(&b, "  %-24s x%d\n", r, s.ByRule[r])
	}
	if len(s.Violations) < s.Total {
		fmt.Fprintf(&b, "retained %d of %d in full:\n", len(s.Violations), s.Total)
	}
	for _, v := range s.Violations {
		detail := ""
		if v.Detail != "" {
			detail = " (" + v.Detail + ")"
		}
		fmt.Fprintf(&b, "  SM%d @%d %s = %d, want %d%s\n", v.SM, v.Cycle, v.Rule, v.Got, v.Want, detail)
	}
	return strings.TrimRight(b.String(), "\n")
}

// CheckSM verifies every invariant of one SM at cycle now and returns the
// first *Violation, or nil. It must be called between Tick rounds (the
// counters are transiently inconsistent mid-issue).
//
// Invariant catalogue (DESIGN.md §10):
//
//	occupancy   warpsUsed, threadsUsed, awake, shmemUsed, activeCTAs,
//	            pendingCTAs equal sums over residents and warp flags
//	warp flags  an awake warp is schedulable (woken, active CTA, not
//	            exited/parked); per-CTA stalledWarps/barWaiting/
//	            finishedWarps match the per-warp flags
//	schedulers  the scheduler lists hold exactly the live warps of active
//	            CTAs, each once, sorted by wiring sequence; entry count ==
//	            warpsUsed
//	ready       the ready partitions hold exactly the awake warps, each
//	            once, wired, seq-sorted; entry count == awake
//	events      no event is due and unserviced (NextEventAt >= now)
//	policy      every sm.SelfAuditing account matches its recomputed
//	            ground truth and stays within [Min, Max]
func CheckSM(s *sm.SM, now int64) error {
	if !s.KernelBound() {
		return nil
	}
	fail := func(rule string, got, want int64, detail string) error {
		return &Violation{SM: s.ID, Cycle: now, Rule: rule, Got: got, Want: want,
			Detail: detail, Dump: DumpSM(s, now)}
	}

	// Ground truth from the resident set.
	var active, pending, warps, awake, shmem int
	for _, c := range s.Residents() {
		switch {
		case c.State == sm.CTAActive:
			active++
		case c.State.IsPending():
			pending++
		default:
			return fail("residentState", int64(c.State), int64(sm.CTAActive),
				fmt.Sprintf("CTA %d resident in non-resident state", c.ID))
		}
		shmem += s.Meta().SharedMemPerCTA()

		var exited, stalled, atBar int
		for _, w := range c.Warps {
			if w.Exited() {
				exited++
				if w.LongBlocked() {
					return fail("warpFlags", 1, 0,
						fmt.Sprintf("CTA %d warp %d exited but longBlocked", c.ID, w.Idx))
				}
				continue
			}
			if w.LongBlocked() {
				stalled++
			}
			if w.AtBarrier() {
				atBar++
			}
			if c.State == sm.CTAActive {
				warps++
				if !w.Asleep() {
					awake++
					if w.WakeAt() > now {
						return fail("awakeWake", w.WakeAt(), now,
							fmt.Sprintf("CTA %d warp %d awake before its wake time", c.ID, w.Idx))
					}
					if w.AtBarrier() {
						return fail("awakeBarrier", 1, 0,
							fmt.Sprintf("CTA %d warp %d awake while parked at barrier", c.ID, w.Idx))
					}
				}
			} else if !w.Asleep() {
				return fail("pendingAwake", 1, 0,
					fmt.Sprintf("pending CTA %d has awake warp %d", c.ID, w.Idx))
			}
		}
		if c.FinishedWarps() != exited {
			return fail("finishedWarps", int64(c.FinishedWarps()), int64(exited),
				fmt.Sprintf("CTA %d", c.ID))
		}
		if c.StalledWarps() != stalled {
			return fail("stalledWarps", int64(c.StalledWarps()), int64(stalled),
				fmt.Sprintf("CTA %d", c.ID))
		}
		if c.BarWaiting() != atBar {
			return fail("barWaiting", int64(c.BarWaiting()), int64(atBar),
				fmt.Sprintf("CTA %d", c.ID))
		}
	}

	// Occupancy counters against the recomputed sums.
	if s.ActiveCTAs() != active {
		return fail("activeCTAs", int64(s.ActiveCTAs()), int64(active), "")
	}
	if s.PendingCTAs() != pending {
		return fail("pendingCTAs", int64(s.PendingCTAs()), int64(pending), "")
	}
	if s.WarpsUsed() != warps {
		return fail("warpsUsed", int64(s.WarpsUsed()), int64(warps), "")
	}
	if s.ThreadsUsed() != warps*32 {
		return fail("threadsUsed", int64(s.ThreadsUsed()), int64(warps*32), "")
	}
	if s.AwakeWarps() != awake {
		return fail("awake", int64(s.AwakeWarps()), int64(awake), "")
	}
	if s.SharedMemUsed() != shmem {
		return fail("shmemUsed", int64(s.SharedMemUsed()), int64(shmem), "")
	}

	// Scheduler lists: exactly the live (non-exited) warps of active CTAs,
	// each wired once — exitWarp compacts a retired warp out immediately,
	// so an exited entry is a leak — kept sorted by wiring sequence (the
	// order both schedulers scan in, and the invariant pickLRR's rotation
	// anchor depends on).
	seen := make(map[*sm.Warp]int)
	listed := 0
	lastSID, lastSeq := -1, int64(0)
	var dup error
	s.EachSchedulerWarp(func(sid int, w *sm.Warp) {
		seen[w]++
		if dup != nil {
			return
		}
		if seen[w] > 1 {
			dup = fail("schedulerDup", int64(seen[w]), 1,
				fmt.Sprintf("CTA %d warp %d wired %d times", w.CTA.ID, w.Idx, seen[w]))
			return
		}
		if w.Exited() {
			dup = fail("schedulerExited", 1, 0,
				fmt.Sprintf("scheduler %d holds exited warp %d of CTA %d", sid, w.Idx, w.CTA.ID))
			return
		}
		if w.CTA.State != sm.CTAActive {
			dup = fail("schedulerStale", int64(w.CTA.State), int64(sm.CTAActive),
				fmt.Sprintf("scheduler %d holds warp of non-active CTA %d", sid, w.CTA.ID))
			return
		}
		if sid == lastSID && w.SchedSeq() <= lastSeq {
			dup = fail("schedulerOrder", w.SchedSeq(), lastSeq+1,
				fmt.Sprintf("scheduler %d list not sorted by wiring sequence at CTA %d warp %d",
					sid, w.CTA.ID, w.Idx))
			return
		}
		lastSID, lastSeq = sid, w.SchedSeq()
		listed++
	})
	if dup != nil {
		return dup
	}
	if listed != warps {
		return fail("schedulerCoverage", int64(listed), int64(warps),
			"scheduler entries vs active-CTA warps")
	}

	// Ready partitions: per scheduler, exactly the awake subset of the
	// wired warps, in the same wiring-sequence order. Together with the
	// awake-count match this proves the partition holds every issue
	// candidate exactly once — a warp missing here would silently never
	// issue (the dense scan had no such failure mode; the partition makes
	// it an auditable one).
	readySeen := make(map[*sm.Warp]bool)
	readyCount := 0
	lastSID, lastSeq = -1, 0
	s.EachReadyWarp(func(sid int, w *sm.Warp) {
		if dup != nil {
			return
		}
		if readySeen[w] {
			dup = fail("readyDup", 2, 1,
				fmt.Sprintf("CTA %d warp %d in ready partition twice", w.CTA.ID, w.Idx))
			return
		}
		readySeen[w] = true
		if seen[w] == 0 {
			dup = fail("readyUnwired", 1, 0,
				fmt.Sprintf("ready partition %d holds unwired warp %d of CTA %d", sid, w.Idx, w.CTA.ID))
			return
		}
		if w.Asleep() || w.Exited() || w.CTA.State != sm.CTAActive {
			dup = fail("readyStale", 1, 0,
				fmt.Sprintf("ready partition %d holds unschedulable warp %d of CTA %d (asleep=%v exited=%v state=%d)",
					sid, w.Idx, w.CTA.ID, w.Asleep(), w.Exited(), w.CTA.State))
			return
		}
		if sid == lastSID && w.SchedSeq() <= lastSeq {
			dup = fail("readyOrder", w.SchedSeq(), lastSeq+1,
				fmt.Sprintf("ready partition %d not sorted by wiring sequence at CTA %d warp %d",
					sid, w.CTA.ID, w.Idx))
			return
		}
		lastSID, lastSeq = sid, w.SchedSeq()
		readyCount++
	})
	if dup != nil {
		return dup
	}
	if readyCount != awake {
		return fail("readyCoverage", int64(readyCount), int64(awake),
			"ready-partition entries vs awake warps")
	}

	// Event heap: Tick(now) drains everything due at or before now, and
	// nothing scheduled during the tick may be in the past.
	if next := s.NextEventAt(); next < now {
		return fail("eventOverdue", next, now, "event due before the current cycle")
	}

	// L1 accounting: hit/miss conservation (Hits is maintained on a
	// different code path than Accesses/Misses, so the sum is a real
	// check) and tag-array residency (lines only become valid via miss
	// fills, so the resident count can exceed neither the cumulative
	// misses nor the capacity).
	if l1 := s.L1; l1 != nil {
		if l1.Hits+l1.Misses != l1.Accesses {
			return fail("mem:l1Conservation", l1.Hits+l1.Misses, l1.Accesses,
				fmt.Sprintf("hits %d + misses %d vs accesses", l1.Hits, l1.Misses))
		}
		resident := int64(l1.ResidentLines())
		if resident > l1.Misses {
			return fail("mem:l1Residency", resident, l1.Misses,
				"valid lines exceed cumulative miss fills")
		}
		if lines := int64(l1.SizeBytes() / mem.LineBytes); resident > lines {
			return fail("mem:l1Residency", resident, lines, "valid lines exceed capacity")
		}
	}

	// Policy accounting.
	if p, ok := s.Pol.(sm.SelfAuditing); ok {
		for _, acc := range p.AuditAccounting(s) {
			if acc.Value != acc.Expected {
				return fail("policy:"+acc.Name, int64(acc.Value), int64(acc.Expected), "")
			}
			if acc.Value < acc.Min || acc.Value > acc.Max {
				return fail("policy:"+acc.Name, int64(acc.Value), int64(acc.Expected),
					fmt.Sprintf("outside [%d, %d]", acc.Min, acc.Max))
			}
		}
	}
	return nil
}

// DumpSM renders the SM's counters and resident/warp state for violation
// reports.
func DumpSM(s *sm.SM, now int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SM%d @%d: active=%d pending=%d warpsUsed=%d threadsUsed=%d awake=%d shmem=%d nextEvent=%d\n",
		s.ID, now, s.ActiveCTAs(), s.PendingCTAs(), s.WarpsUsed(), s.ThreadsUsed(),
		s.AwakeWarps(), s.SharedMemUsed(), s.NextEventAt())
	for _, c := range s.Residents() {
		fmt.Fprintf(&b, "  CTA%d state=%d stalled=%d bar=%d finished=%d ready=%d %s\n",
			c.ID, c.State, c.StalledWarps(), c.BarWaiting(), c.FinishedWarps(), c.ReadyAt,
			c.DebugWarps())
	}
	if p, ok := s.Pol.(sm.SelfAuditing); ok {
		for _, acc := range p.AuditAccounting(s) {
			fmt.Fprintf(&b, "  %s: %s=%d expected=%d range=[%d,%d]\n",
				s.Pol.Name(), acc.Name, acc.Value, acc.Expected, acc.Min, acc.Max)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}
