// Package liveness implements the compile-time analysis FineReg depends on
// (paper Section IV-B and V-A): for every static instruction it computes the
// set of architectural registers that are live — used as a source by some
// subsequent instruction before being redefined — encoded as a 64-bit bit
// vector, one bit per register.
//
// The pass builds a control-flow graph over the SASS-like program, computes
// dominators and post-dominators (the PDOM reconvergence points the paper's
// Figure 9 traversal relies on), and runs a standard backward may-liveness
// fixpoint. The resulting per-PC vectors are what the simulated Register
// Management Unit fetches (through its bit-vector cache) when a CTA stalls.
package liveness

import (
	"fmt"
	"math/bits"
	"strings"

	"finereg/internal/isa"
)

// BitVec is a 64-bit register liveness vector: bit i set means Ri is live.
// It matches the paper's storage format ("a simple bit vector ... 64-bit
// long, i.e., maximum number of registers per thread").
type BitVec uint64

// Set returns v with register r marked live.
func (v BitVec) Set(r isa.Reg) BitVec { return v | 1<<uint(r) }

// Clear returns v with register r marked dead.
func (v BitVec) Clear(r isa.Reg) BitVec { return v &^ (1 << uint(r)) }

// Has reports whether register r is live in v.
func (v BitVec) Has(r isa.Reg) bool { return v&(1<<uint(r)) != 0 }

// Union returns the element-wise OR of v and o.
func (v BitVec) Union(o BitVec) BitVec { return v | o }

// Count returns the number of live registers.
func (v BitVec) Count() int { return bits.OnesCount64(uint64(v)) }

// Regs returns the live registers in ascending order.
func (v BitVec) Regs() []isa.Reg {
	out := make([]isa.Reg, 0, v.Count())
	for w := uint64(v); w != 0; w &= w - 1 {
		out = append(out, isa.Reg(bits.TrailingZeros64(w)))
	}
	return out
}

// String renders the live set as "{R0,R2,R5}".
func (v BitVec) String() string {
	regs := v.Regs()
	parts := make([]string, len(regs))
	for i, r := range regs {
		parts[i] = r.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// GoString makes %#v output readable in test failures.
func (v BitVec) GoString() string { return fmt.Sprintf("BitVec(%s)", v.String()) }
