package liveness

import (
	"math/rand"
	"testing"
	"testing/quick"

	"finereg/internal/isa"
)

// figure7Program reproduces the paper's Figure 7 CFD Solver fragment shape:
// the warp stalls at PC 0 where only R0 is live — R1, R2, R3 are all
// redefined before any use.
func figure7Program(t testing.TB) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("fig7")
	mem := isa.MemDesc{Pattern: isa.PatCoalesced, Footprint: 1 << 20}
	// 0x0000: LDG R1, [R0]     — R0 is a source => live at 0
	b.Ldg(1, 0, mem)
	// 0x0008: IADD R2, R1, R1  — R2 defined before any use
	b.IAdd(2, 1, 1)
	// 0x0010: FMUL R3, R2, R2  — R3 defined before any use
	b.FMul(3, 2, 2)
	// 0x0018: STG [R0], R3
	b.Stg(3, 0, isa.MemDesc{Pattern: isa.PatCoalesced, Region: 1, Footprint: 1 << 20})
	b.Exit()
	return b.MustBuild(0)
}

func TestFigure7LiveAtStall(t *testing.T) {
	info := MustAnalyze(figure7Program(t))
	got := info.At(0)
	if !got.Has(0) {
		t.Errorf("R0 should be live at PC 0, got %v", got)
	}
	for _, dead := range []isa.Reg{1, 2, 3} {
		if got.Has(dead) {
			t.Errorf("%v should be dead at PC 0 (redefined before use), got %v", dead, got)
		}
	}
	if got.Count() != 1 {
		t.Errorf("live count at PC 0 = %d, want 1 (only R0)", got.Count())
	}
}

func TestStraightLineChain(t *testing.T) {
	b := isa.NewBuilder("chain")
	b.MovI(0, 1)               // pc 0: def R0
	b.IAdd(1, 0, 0)            // pc 1: def R1, use R0
	b.IAdd(2, 1, 0)            // pc 2: def R2, use R1 R0
	b.Stg(2, 1, isa.MemDesc{}) // pc 3: use R2 R1
	b.Exit()
	info := MustAnalyze(b.MustBuild(0))

	cases := []struct {
		pc   int
		want []isa.Reg
	}{
		{0, nil},
		{1, []isa.Reg{0}},
		{2, []isa.Reg{0, 1}},
		{3, []isa.Reg{1, 2}},
		{4, nil},
	}
	for _, c := range cases {
		got := info.At(c.pc)
		var want BitVec
		for _, r := range c.want {
			want = want.Set(r)
		}
		if got != want {
			t.Errorf("live-in at pc %d = %v, want %v", c.pc, got, want)
		}
	}
}

// divergeProgram builds the Figure 9(a) diamond: B1 branches to B2/B3,
// reconverging at B4.
func divergeProgram(t testing.TB) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("diamond")
	b.MovI(0, 5)     // B1: def R0
	b.ISetp(1, 0, 0) // B1: def R1 (predicate)
	b.BraCond(1, "else", 0, true)
	b.IAddI(2, 0, 1) // B2 (then): def R2 = R0+1
	b.Bra("join")
	b.Label("else")
	b.IAddI(2, 0, 2) // B3 (else): def R2 = R0+2
	b.Label("join")
	b.Stg(2, 0, isa.MemDesc{}) // B4: use R2, R0
	b.Exit()
	return b.MustBuild(0)
}

func TestDivergentBranchLiveness(t *testing.T) {
	p := divergeProgram(t)
	info := MustAnalyze(p)
	// At the branch (pc 2) R0 and R1 are live (R1 is the predicate, R0 is
	// used in both arms and at the join); R2 is dead (defined in each arm).
	at := info.At(2)
	if !at.Has(0) || !at.Has(1) {
		t.Errorf("R0,R1 should be live at branch, got %v", at)
	}
	if at.Has(2) {
		t.Errorf("R2 should be dead at branch (redefined in both arms), got %v", at)
	}
	// Inside the then-arm (pc 3), R0 is live (used here and at join).
	if got := info.At(3); !got.Has(0) || got.Has(1) {
		t.Errorf("then-arm live-in = %v, want R0 live, R1 dead", got)
	}
}

func TestDivergentCFGShape(t *testing.T) {
	p := divergeProgram(t)
	g, err := BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	// Expect 4 blocks: B1 (entry+branch), then, else, join.
	if len(g.Blocks) != 4 {
		t.Fatalf("CFG has %d blocks, want 4:\n%s", len(g.Blocks), g)
	}
	entry := g.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Errorf("entry has %d successors, want 2", len(entry.Succs))
	}
	join := g.BlockOf(p.Len() - 1)
	if len(join.Preds) != 2 {
		t.Errorf("join has %d predecessors, want 2", len(join.Preds))
	}
	// PDOM of the entry block must be the join block (Figure 9(a)).
	if pd := g.ImmediatePostDom(entry.ID); pd != join.ID {
		t.Errorf("post-dominator of entry = B%d, want B%d (join)", pd, join.ID)
	}
}

// loopProgram builds Figure 9(b): a loop body B1 followed by exit block B2.
func loopProgram(t testing.TB) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("loop")
	b.MovI(0, 0) // induction
	b.MovI(1, 8) // bound
	b.MovI(3, 0) // accumulator
	b.Label("body")
	b.Ldg(2, 0, isa.MemDesc{Pattern: isa.PatCoalesced, Footprint: 1 << 16})
	b.FAdd(3, 3, 2)
	b.IAddI(0, 0, 1)
	b.ISetp(4, 0, 1)
	b.Loop(4, "body", 8)
	b.Stg(3, 0, isa.MemDesc{Region: 1})
	b.Exit()
	return b.MustBuild(0)
}

func TestLoopLiveness(t *testing.T) {
	info := MustAnalyze(loopProgram(t))
	// At loop head (pc 3, the LDG): R0 (address/induction), R1 (bound), R3
	// (accumulator, carried around the back edge) must be live; R2 and R4
	// are dead (defined before their next use).
	at := info.At(3)
	for _, r := range []isa.Reg{0, 1, 3} {
		if !at.Has(r) {
			t.Errorf("%v should be live at loop head, got %v", r, at)
		}
	}
	for _, r := range []isa.Reg{2, 4} {
		if at.Has(r) {
			t.Errorf("%v should be dead at loop head, got %v", r, at)
		}
	}
}

func TestLoopConvergesQuickly(t *testing.T) {
	info := MustAnalyze(loopProgram(t))
	// The Figure 9(b) claim: a loop needs each block visited only a small
	// constant number of times. With 3 blocks the fixpoint should finish
	// in well under 3 passes over the CFG.
	if v := info.BlockVisits(); v > 9 {
		t.Errorf("fixpoint took %d block visits for a 3-block loop, want <= 9", v)
	}
}

func TestMaxMeanLive(t *testing.T) {
	info := MustAnalyze(loopProgram(t))
	if max := info.MaxLive(); max < 3 || max > 5 {
		t.Errorf("MaxLive = %d, want within [3,5]", max)
	}
	if mean := info.MeanLive(); mean <= 0 || mean > 5 {
		t.Errorf("MeanLive = %v, want in (0,5]", mean)
	}
}

func TestBitVectorBytes(t *testing.T) {
	p := loopProgram(t)
	info := MustAnalyze(p)
	if got, want := info.BitVectorBytes(), 12*p.Len(); got != want {
		t.Errorf("BitVectorBytes = %d, want %d", got, want)
	}
}

func TestDominatorsLinear(t *testing.T) {
	p := figure7Program(t)
	g, err := BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	idom := g.Dominators()
	if idom[0] != 0 {
		t.Errorf("entry idom = %d, want 0 (itself)", idom[0])
	}
}

func TestPostDominatorsLoop(t *testing.T) {
	p := loopProgram(t)
	g, err := BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	pdom := g.PostDominators()
	// Every block's post-dominator chain must reach the exit block.
	exit := -1
	for _, b := range g.Blocks {
		if len(b.Succs) == 0 {
			exit = b.ID
		}
	}
	if exit == -1 {
		t.Fatal("no exit block")
	}
	for _, b := range g.Blocks {
		cur := b.ID
		for steps := 0; cur != exit; steps++ {
			if steps > len(g.Blocks) {
				t.Fatalf("block B%d post-dominator chain does not reach exit: %v", b.ID, pdom)
			}
			cur = pdom[cur]
		}
	}
}

func TestReachable(t *testing.T) {
	p := divergeProgram(t)
	g, err := BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	for id, ok := range g.Reachable() {
		if !ok {
			t.Errorf("block B%d unreachable in diamond CFG", id)
		}
	}
}

// randomStraightLine builds a random loop-free program for property tests.
func randomStraightLine(r *rand.Rand, n int) *isa.Program {
	b := isa.NewBuilder("rand")
	nr := 1 + r.Intn(16)
	reg := func() isa.Reg { return isa.Reg(r.Intn(nr)) }
	for i := 0; i < n; i++ {
		switch r.Intn(5) {
		case 0:
			b.MovI(reg(), uint32(r.Intn(100)))
		case 1:
			b.IAdd(reg(), reg(), reg())
		case 2:
			b.FFma(reg(), reg(), reg(), reg())
		case 3:
			b.Ldg(reg(), reg(), isa.MemDesc{})
		case 4:
			b.Stg(reg(), reg(), isa.MemDesc{})
		}
	}
	b.Exit()
	return b.MustBuild(nr)
}

// Property: for straight-line code, the per-instruction recurrence
// liveIn[pc] = use(pc) ∪ (liveIn[pc+1] − def(pc)) holds exactly.
func TestStraightLineRecurrenceQuick(t *testing.T) {
	f := func(seed int64, rawLen uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(rawLen%40)
		p := randomStraightLine(r, n)
		info := MustAnalyze(p)
		for pc := p.Len() - 2; pc >= 0; pc-- {
			ins := p.At(pc)
			want := info.At(pc + 1)
			if ins.WritesReg() {
				want = want.Clear(ins.Dst)
			}
			ins.Reads(func(rg isa.Reg) { want = want.Set(rg) })
			if info.At(pc) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every register an instruction reads is live-in at that
// instruction, on arbitrary straight-line programs.
func TestReadsAreLiveQuick(t *testing.T) {
	f := func(seed int64, rawLen uint8) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomStraightLine(r, 1+int(rawLen%60))
		info := MustAnalyze(p)
		ok := true
		for pc := 0; pc < p.Len(); pc++ {
			p.At(pc).Reads(func(rg isa.Reg) {
				if !info.At(pc).Has(rg) {
					ok = false
				}
			})
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: live counts never exceed the allocated register count.
func TestLiveBoundedQuick(t *testing.T) {
	f := func(seed int64, rawLen uint8) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomStraightLine(r, 1+int(rawLen%60))
		info := MustAnalyze(p)
		for pc := 0; pc < p.Len(); pc++ {
			if info.LiveCount(pc) > p.RegsPerThread {
				return false
			}
		}
		return info.MaxLive() <= p.RegsPerThread
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBitVecOps(t *testing.T) {
	var v BitVec
	v = v.Set(3).Set(7).Set(63)
	if v.Count() != 3 {
		t.Errorf("Count = %d, want 3", v.Count())
	}
	if !v.Has(3) || !v.Has(63) || v.Has(0) {
		t.Errorf("membership wrong: %v", v)
	}
	v = v.Clear(7)
	if v.Has(7) || v.Count() != 2 {
		t.Errorf("Clear failed: %v", v)
	}
	regs := v.Regs()
	if len(regs) != 2 || regs[0] != 3 || regs[1] != 63 {
		t.Errorf("Regs = %v, want [R3 R63]", regs)
	}
	if s := v.String(); s != "{R3,R63}" {
		t.Errorf("String = %q, want {R3,R63}", s)
	}
	u := BitVec(0).Set(1)
	if got := v.Union(u); got.Count() != 3 {
		t.Errorf("Union count = %d, want 3", got.Count())
	}
}

// Property: BitVec Set/Clear/Has behave like a set of uint6.
func TestBitVecQuick(t *testing.T) {
	f := func(ops []uint8) bool {
		var v BitVec
		ref := map[isa.Reg]bool{}
		for _, o := range ops {
			r := isa.Reg(o % 64)
			if o&0x80 != 0 {
				v = v.Clear(r)
				delete(ref, r)
			} else {
				v = v.Set(r)
				ref[r] = true
			}
		}
		if v.Count() != len(ref) {
			return false
		}
		for r := range ref {
			if !v.Has(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
