package liveness

import (
	"fmt"

	"finereg/internal/isa"
)

// Info holds the result of the liveness pass over one program: for every
// static PC, the 64-bit vector of registers live *into* that instruction —
// exactly the set a stalled warp parked at that PC must preserve (paper
// Section IV-B: "A register is regarded as alive if it is used as the
// source operand of any subsequent instructions until the first encounter
// of an instruction that uses this register as a destination").
type Info struct {
	Prog *isa.Program
	G    *CFG
	// liveIn[pc] is the live set immediately before Instrs[pc] executes.
	liveIn []BitVec
	// blockVisits counts how many blocks the divergence-aware traversal
	// inspects per block (Figure 9 accounting), for tests and the CLI.
	blockVisits int
}

// Analyze runs the full pass: CFG construction plus backward may-liveness
// to fixpoint. It is deterministic and pure.
func Analyze(p *isa.Program) (*Info, error) {
	g, err := BuildCFG(p)
	if err != nil {
		return nil, err
	}
	info := &Info{Prog: p, G: g, liveIn: make([]BitVec, p.Len())}
	info.solve()
	return info, nil
}

// MustAnalyze is Analyze that panics on error, for statically-known-valid
// kernel programs.
func MustAnalyze(p *isa.Program) *Info {
	info, err := Analyze(p)
	if err != nil {
		panic(fmt.Sprintf("liveness: %v", err))
	}
	return info
}

// solve runs the standard backward dataflow:
//
//	liveOut[b] = ∪ liveIn[succ(b)]
//	liveIn[b]  = use(b) ∪ (liveOut[b] − def(b))   applied per instruction
//
// iterated to fixpoint over the block worklist. Per-instruction vectors are
// then filled in one backward sweep per block. The traversal order follows
// the paper's Figure 9 observation: each block is processed once per
// worklist visit, and loops converge after revisiting the loop body once
// because the vectors only grow.
func (in *Info) solve() {
	g := in.G
	n := len(g.Blocks)
	liveInB := make([]BitVec, n)
	liveOutB := make([]BitVec, n)

	// transfer applies the block's instructions backward to v and returns
	// the block's live-in.
	transfer := func(b *Block, v BitVec) BitVec {
		for pc := b.End - 1; pc >= b.Start; pc-- {
			ins := in.Prog.At(pc)
			if ins.WritesReg() {
				v = v.Clear(ins.Dst)
			}
			ins.Reads(func(r isa.Reg) { v = v.Set(r) })
		}
		return v
	}

	// Worklist seeded with all blocks in reverse program order so a single
	// pass suffices for loop-free code.
	work := make([]int, 0, n)
	inWork := make([]bool, n)
	for b := n - 1; b >= 0; b-- {
		work = append(work, b)
		inWork[b] = true
	}
	for len(work) > 0 {
		bID := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[bID] = false
		b := g.Blocks[bID]
		in.blockVisits++
		var out BitVec
		for _, s := range b.Succs {
			out = out.Union(liveInB[s])
		}
		liveOutB[bID] = out
		newIn := transfer(b, out)
		if newIn != liveInB[bID] {
			liveInB[bID] = newIn
			for _, p := range b.Preds {
				if !inWork[p] {
					work = append(work, p)
					inWork[p] = true
				}
			}
		}
	}

	// Fill per-instruction live-in vectors with one final backward sweep.
	for _, b := range g.Blocks {
		v := liveOutB[b.ID]
		for pc := b.End - 1; pc >= b.Start; pc-- {
			ins := in.Prog.At(pc)
			if ins.WritesReg() {
				v = v.Clear(ins.Dst)
			}
			ins.Reads(func(r isa.Reg) { v = v.Set(r) })
			in.liveIn[pc] = v
		}
	}
}

// At returns the live-register bit vector for a warp stalled at pc (about
// to execute the instruction at pc).
func (in *Info) At(pc int) BitVec { return in.liveIn[pc] }

// LiveCount returns the number of live registers at pc.
func (in *Info) LiveCount(pc int) int { return in.liveIn[pc].Count() }

// MaxLive returns the maximum live-set size over all PCs — the worst-case
// PCRF demand of one warp of this kernel.
func (in *Info) MaxLive() int {
	m := 0
	for _, v := range in.liveIn {
		if c := v.Count(); c > m {
			m = c
		}
	}
	return m
}

// MeanLive returns the average live-set size over all static PCs.
func (in *Info) MeanLive() float64 {
	if len(in.liveIn) == 0 {
		return 0
	}
	sum := 0
	for _, v := range in.liveIn {
		sum += v.Count()
	}
	return float64(sum) / float64(len(in.liveIn))
}

// BlockVisits reports how many block transfers the fixpoint performed —
// the Figure 9 traversal-cost metric.
func (in *Info) BlockVisits() int { return in.blockVisits }

// BitVectorBytes returns the off-chip storage the live-register table of
// this kernel occupies: 12 bytes per static instruction (4-byte PC tag +
// 8-byte vector), per the paper's Section V-F accounting.
func (in *Info) BitVectorBytes() int { return 12 * in.Prog.Len() }
