package liveness

// Dominator analysis over the CFG. The post-dominator tree supplies the
// PDOM reconvergence points used both by the functional SIMT executor (to
// reconverge diverged warps) and by the paper's compiler traversal argument
// (Figure 9: analysing a block of a diverging branch only needs the path to
// the immediate post-dominator).

// Dominators computes the immediate-dominator array over the CFG using the
// iterative dataflow algorithm (Cooper/Harvey/Kennedy style, on reverse
// post-order). idom[0] == 0; unreachable blocks get idom -1.
func (g *CFG) Dominators() []int {
	order := g.reversePostOrder(false)
	return g.iterativeIdom(order, false)
}

// PostDominators computes the immediate post-dominator of each block: the
// first block control must pass through on every path from the block to
// program exit. Exit blocks (no successors) post-dominate themselves.
// Blocks that cannot reach an exit get -1.
func (g *CFG) PostDominators() []int {
	order := g.reversePostOrder(true)
	return g.iterativeIdom(order, true)
}

// reversePostOrder returns block IDs in reverse post-order of the CFG
// (reverse=false) or of the reversed CFG rooted at the exit blocks
// (reverse=true).
func (g *CFG) reversePostOrder(reverse bool) []int {
	n := len(g.Blocks)
	visited := make([]bool, n)
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		visited[b] = true
		next := g.Blocks[b].Succs
		if reverse {
			next = g.Blocks[b].Preds
		}
		for _, s := range next {
			if !visited[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if reverse {
		for _, b := range g.Blocks {
			if len(b.Succs) == 0 && !visited[b.ID] {
				dfs(b.ID)
			}
		}
	} else {
		dfs(0)
	}
	// reverse the post-order in place
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// iterativeIdom runs the classic "engineered" dominator fixpoint. For
// post-dominators the graph is traversed through Succs instead of Preds and
// roots are the exit blocks.
func (g *CFG) iterativeIdom(order []int, post bool) []int {
	n := len(g.Blocks)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	pos := make([]int, n) // position of block in order, for intersect
	for i, b := range order {
		pos[b] = i
	}
	roots := map[int]bool{}
	if post {
		for _, b := range g.Blocks {
			if len(b.Succs) == 0 {
				roots[b.ID] = true
				idom[b.ID] = b.ID
			}
		}
	} else {
		roots[0] = true
		idom[0] = 0
	}
	intersect := func(a, b int) int {
		for a != b {
			for pos[a] > pos[b] {
				a = idom[a]
			}
			for pos[b] > pos[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if roots[b] {
				continue
			}
			edges := g.Blocks[b].Preds
			if post {
				edges = g.Blocks[b].Succs
			}
			newIdom := -1
			for _, p := range edges {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// ImmediatePostDom returns the immediate post-dominator block ID of b, or
// -1 when b is an exit block or cannot reach one. This is the PDOM
// reconvergence point for a divergent branch ending block b.
func (g *CFG) ImmediatePostDom(b int) int {
	pd := g.PostDominators()
	if pd[b] == b || pd[b] < 0 {
		return -1
	}
	return pd[b]
}
