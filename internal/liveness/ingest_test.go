package liveness

import (
	"reflect"
	"testing"

	"finereg/internal/isa"
)

const userSource = `.kernel user
.regs 12
  MOV R0, #0
  MOV R1, #16
  MOV R2, #2
loop:
  LDG R3, [R0] pattern=coalesced region=1 footprint=1048576
  FFMA R5, R2, R3, R5
  IADD R0, R0, #1
  ISETP R6, R0, R1
  @R6 BRA loop trip=16
  STG [R0], R5 region=15
  EXIT
`

// TestAnalyzeUserProgram covers the ingestion path's compiler half: a
// user-assembled program (not a generator-built one) must analyze
// deterministically, and the live sets must survive an asm → disasm → asm
// round trip — the bit vectors the RMU consumes depend only on program
// semantics, never on which text produced them.
func TestAnalyzeUserProgram(t *testing.T) {
	prog, err := isa.Assemble(userSource)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	if info.MaxLive() < 1 || info.MaxLive() > prog.RegsPerThread {
		t.Errorf("max live %d outside [1, %d]", info.MaxLive(), prog.RegsPerThread)
	}
	// The loop-carried values (R0 cursor, R1 bound, R2 scale, R5
	// accumulator) are live at the loop head — what a stalled warp parked
	// there must preserve.
	head := 3 // pc of the first loop instruction
	for _, r := range []isa.Reg{0, 1, 2, 5} {
		if !info.At(head).Has(r) {
			t.Errorf("R%d not live at loop head %d: %v", r, head, info.At(head))
		}
	}

	again := MustAnalyze(prog)
	if !reflect.DeepEqual(info.At(0), again.At(0)) || info.MaxLive() != again.MaxLive() {
		t.Error("repeated analysis of the same program diverged")
	}

	rt, err := isa.Assemble(isa.EmitAsm(prog))
	if err != nil {
		t.Fatalf("round-trip assemble: %v", err)
	}
	rtInfo, err := Analyze(rt)
	if err != nil {
		t.Fatal(err)
	}
	for pc := 0; pc < prog.Len(); pc++ {
		if info.At(pc) != rtInfo.At(pc) {
			t.Errorf("pc %d: live set changed across asm round trip: %v vs %v", pc, info.At(pc), rtInfo.At(pc))
		}
	}
}
