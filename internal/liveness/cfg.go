package liveness

import (
	"fmt"
	"strings"

	"finereg/internal/isa"
)

// Block is a basic block: a maximal straight-line instruction range
// [Start, End) with control entering only at Start and leaving only at
// End-1.
type Block struct {
	// ID is the block's index in CFG.Blocks, in program order.
	ID int
	// Start and End delimit the half-open PC range of the block.
	Start, End int
	// Succs and Preds are CFG edges by block ID, in deterministic order
	// (fallthrough before branch target).
	Succs, Preds []int
}

// Len returns the number of instructions in the block.
func (b *Block) Len() int { return b.End - b.Start }

// CFG is the control-flow graph of a program. Block 0 is the entry block.
type CFG struct {
	Prog   *isa.Program
	Blocks []*Block
	// blockOf maps each PC to the ID of its containing block.
	blockOf []int
}

// BlockOf returns the block containing pc.
func (g *CFG) BlockOf(pc int) *Block { return g.Blocks[g.blockOf[pc]] }

// BuildCFG partitions the program into basic blocks and connects them.
// Leaders are: PC 0, every branch target, and every instruction following a
// branch or EXIT. A conditional branch has two successors (fallthrough,
// target); an unconditional branch only its target; EXIT has none.
func BuildCFG(p *isa.Program) (*CFG, error) {
	if err := isa.Validate(p); err != nil {
		return nil, fmt.Errorf("liveness: %w", err)
	}
	n := p.Len()
	leader := make([]bool, n)
	leader[0] = true
	for pc := 0; pc < n; pc++ {
		in := p.At(pc)
		switch {
		case in.IsBranch():
			leader[in.Target] = true
			if pc+1 < n {
				leader[pc+1] = true
			}
		case in.Op == isa.OpEXIT:
			if pc+1 < n {
				leader[pc+1] = true
			}
		}
	}
	g := &CFG{Prog: p, blockOf: make([]int, n)}
	for pc := 0; pc < n; pc++ {
		if leader[pc] {
			g.Blocks = append(g.Blocks, &Block{ID: len(g.Blocks), Start: pc})
		}
		b := g.Blocks[len(g.Blocks)-1]
		g.blockOf[pc] = b.ID
		b.End = pc + 1
	}
	addEdge := func(from, to int) {
		fb, tb := g.Blocks[from], g.Blocks[to]
		for _, s := range fb.Succs {
			if s == to {
				return
			}
		}
		fb.Succs = append(fb.Succs, to)
		tb.Preds = append(tb.Preds, from)
	}
	for _, b := range g.Blocks {
		last := p.At(b.End - 1)
		switch {
		case last.Op == isa.OpEXIT:
			// terminal: no successors
		case last.IsBranch():
			if last.IsConditional() && b.End < n {
				addEdge(b.ID, g.blockOf[b.End])
			}
			addEdge(b.ID, g.blockOf[last.Target])
		default:
			if b.End < n {
				addEdge(b.ID, g.blockOf[b.End])
			}
		}
	}
	return g, nil
}

// Reachable returns the set of blocks reachable from the entry, as a
// boolean slice indexed by block ID.
func (g *CFG) Reachable() []bool {
	seen := make([]bool, len(g.Blocks))
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Blocks[b].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// String renders the CFG structure for debugging and the liveness CLI.
func (g *CFG) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "CFG of %s: %d blocks\n", g.Prog.Name, len(g.Blocks))
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "  B%d [%d,%d) -> %v\n", b.ID, b.Start, b.End, b.Succs)
	}
	return sb.String()
}
