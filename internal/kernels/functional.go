package kernels

import "finereg/internal/isa"

// Functional kernels: small programs with real addressing semantics for
// the functional SIMT executor (internal/exec). By executor convention,
// R0 is preloaded with the global thread ID at launch; addresses are byte
// addresses formed in registers.

// VecAdd returns c[i] = a[i] + b[i] over float32 arrays. baseA/baseB/baseC
// are byte offsets of the three arrays in the executor's flat memory.
func VecAdd(baseA, baseB, baseC uint32) *isa.Program {
	b := isa.NewBuilder("vecadd")
	b.Shf(1, 0, 2)   // R1 = tid*4 (byte offset)
	b.MovI(2, baseA) // R2 = &a
	b.IAdd(3, 2, 1)  // R3 = &a[i]
	b.Ldg(4, 3, isa.MemDesc{Pattern: isa.PatCoalesced})
	b.MovI(5, baseB)
	b.IAdd(6, 5, 1)
	b.Ldg(7, 6, isa.MemDesc{Pattern: isa.PatCoalesced, Region: 1})
	b.FAdd(8, 4, 7)
	b.MovI(9, baseC)
	b.IAdd(10, 9, 1)
	b.Stg(8, 10, isa.MemDesc{Pattern: isa.PatCoalesced, Region: 2})
	b.Exit()
	return b.MustBuild(0)
}

// Saxpy returns y[i] = alpha*x[i] + y[i] with alpha's float32 bits given
// as an immediate.
func Saxpy(alphaBits, baseX, baseY uint32) *isa.Program {
	b := isa.NewBuilder("saxpy")
	b.Shf(1, 0, 2)
	b.MovI(2, baseX)
	b.IAdd(3, 2, 1)
	b.Ldg(4, 3, isa.MemDesc{Pattern: isa.PatCoalesced})
	b.MovI(5, baseY)
	b.IAdd(6, 5, 1)
	b.Ldg(7, 6, isa.MemDesc{Pattern: isa.PatCoalesced, Region: 1})
	b.MovI(8, alphaBits)
	b.FFma(9, 8, 4, 7) // y = alpha*x + y
	b.Stg(9, 6, isa.MemDesc{Pattern: isa.PatCoalesced, Region: 1})
	b.Exit()
	return b.MustBuild(0)
}

// AbsDiff computes out[i] = |a[i] - b[i]| for int32 inputs using a
// divergent branch: threads with a[i] < b[i] take the else path. It
// exercises the executor's PDOM reconvergence stack.
func AbsDiff(baseA, baseB, baseOut uint32) *isa.Program {
	b := isa.NewBuilder("absdiff")
	b.Shf(1, 0, 2)
	b.MovI(2, baseA)
	b.IAdd(3, 2, 1)
	b.Ldg(4, 3, isa.MemDesc{}) // R4 = a[i]
	b.MovI(5, baseB)
	b.IAdd(6, 5, 1)
	b.Ldg(7, 6, isa.MemDesc{Region: 1}) // R7 = b[i]
	b.ISetp(8, 4, 7)                    // R8 = a < b
	b.BraCond(8, "swap", 0, true)
	// then: diff = a - b  (a >= b). There is no ISUB; use IMUL by -1 via
	// two's complement: diff = a + (-b). Build -b = 0 - b with IMUL.
	b.MovI(9, 0xFFFFFFFF) // -1
	b.IMul(10, 7, 9)      // -b
	b.IAdd(11, 4, 10)     // a - b
	b.Bra("store")
	b.Label("swap")
	b.MovI(9, 0xFFFFFFFF)
	b.IMul(10, 4, 9)  // -a
	b.IAdd(11, 7, 10) // b - a
	b.Label("store")
	b.MovI(12, baseOut)
	b.IAdd(13, 12, 1)
	b.Stg(11, 13, isa.MemDesc{Region: 2})
	b.Exit()
	return b.MustBuild(0)
}

// DotChunks computes per-thread partial dot products with a loop:
// out[tid] = Σ_{k<trips} x[tid + k*n]*y[tid + k*n], exercising the
// executor's loop handling. n is the thread count; trips the loop count.
func DotChunks(baseX, baseY, baseOut, n, trips uint32) *isa.Program {
	b := isa.NewBuilder("dotchunks")
	b.MovI(1, 0)     // k = 0
	b.MovI(2, trips) // bound
	b.MovI(3, 0)     // acc (float 0.0 == bits 0)
	b.Mov(4, 0)      // idx = tid
	b.Label("body")
	b.Shf(5, 4, 2) // byte offset = idx*4
	b.MovI(6, baseX)
	b.IAdd(7, 6, 5)
	b.Ldg(8, 7, isa.MemDesc{})
	b.MovI(9, baseY)
	b.IAdd(10, 9, 5)
	b.Ldg(11, 10, isa.MemDesc{Region: 1})
	b.FFma(3, 8, 11, 3)
	b.IAddI(4, 4, n) // idx += n
	b.IAddI(1, 1, 1) // k++
	b.ISetp(12, 1, 2)
	b.Loop(12, "body", int(trips))
	b.Shf(5, 0, 2)
	b.MovI(13, baseOut)
	b.IAdd(14, 13, 5)
	b.Stg(3, 14, isa.MemDesc{Region: 2})
	b.Exit()
	return b.MustBuild(0)
}
