package kernels

import (
	"fmt"

	"finereg/internal/isa"
	"finereg/internal/liveness"
)

// Register-layout convention used by every generated benchmark:
//
//	R0        loop induction variable
//	R1        loop bound
//	R2        predicate scratch
//	R3..      Persistent accumulators (live across the main loop)
//	next..    per-iteration temporaries (dead at the loop head)
//	last C    cold registers, touched only in a statically present but
//	          dynamically skipped guard path — they model the compiler's
//	          worst-case allocation that FineReg's live-register analysis
//	          reclaims.
const (
	regInd   = isa.Reg(0)
	regBound = isa.Reg(1)
	regPred  = isa.Reg(2)
	firstVar = 3
)

// Build generates the synthetic program for profile p and wraps it, with
// its liveness analysis, into a launchable Kernel of gridCTAs CTAs
// (gridCTAs <= 0 uses the profile default).
func Build(p Profile, gridCTAs int) (*Kernel, error) {
	if err := checkProfile(&p); err != nil {
		return nil, err
	}
	if gridCTAs <= 0 {
		gridCTAs = p.GridCTAs
	}
	prog := generate(&p)
	live, err := liveness.Analyze(prog)
	if err != nil {
		return nil, fmt.Errorf("kernels: %s: %w", p.Abbrev, err)
	}
	return &Kernel{Profile: p, Prog: prog, Live: live, GridCTAs: gridCTAs}, nil
}

// MustBuild is Build that panics on error; the built-in table is static.
func MustBuild(p Profile, gridCTAs int) *Kernel {
	k, err := Build(p, gridCTAs)
	if err != nil {
		panic(err)
	}
	return k
}

// BuildAll generates every Table II kernel with grids scaled by scale
// (scale 1.0 = the reference 16-SM grid sizes; experiments on fewer SMs
// pass a smaller scale so run lengths stay proportionate).
func BuildAll(scale float64) []*Kernel {
	out := make([]*Kernel, 0, len(table))
	for _, p := range table {
		grid := int(float64(p.GridCTAs)*scale + 0.5)
		if grid < 1 {
			grid = 1
		}
		out = append(out, MustBuild(p, grid))
	}
	return out
}

func checkProfile(p *Profile) error {
	if p.WarpsPerCTA < 1 || p.WarpsPerCTA > 32 {
		return fmt.Errorf("kernels: %s: WarpsPerCTA %d out of range", p.Abbrev, p.WarpsPerCTA)
	}
	if p.Regs < firstVar+1 || p.Regs > isa.MaxRegs {
		return fmt.Errorf("kernels: %s: Regs %d out of range", p.Abbrev, p.Regs)
	}
	temps := p.Regs - firstVar - p.Persistent - p.ColdRegs
	if temps < 1 {
		return fmt.Errorf("kernels: %s: register budget exhausted (regs=%d persistent=%d cold=%d)",
			p.Abbrev, p.Regs, p.Persistent, p.ColdRegs)
	}
	if p.LoopTrips < 1 {
		return fmt.Errorf("kernels: %s: LoopTrips must be >= 1", p.Abbrev)
	}
	if p.Persistent < 1 {
		return fmt.Errorf("kernels: %s: Persistent must be >= 1", p.Abbrev)
	}
	if p.StreamLoads+p.HotLoads < 1 {
		return fmt.Errorf("kernels: %s: at least one global load per iteration required", p.Abbrev)
	}
	return nil
}

// generate emits the benchmark program. The shape is:
//
//	prologue   — init induction/bound, touch & seed persistent registers
//	guard      — predicate-false forward branch over a cold block
//	main loop  — loads, shared-memory ops, FMA chains into persistents,
//	             SFU ops, optional store, induction update, back edge
//	epilogue   — store persistents, EXIT
//	cold block — touches the ColdRegs (statically allocated, never run)
func generate(p *Profile) *isa.Program {
	b := isa.NewBuilder(p.Abbrev)

	persist := make([]isa.Reg, p.Persistent)
	for i := range persist {
		persist[i] = isa.Reg(firstVar + i)
	}
	nTemps := p.Regs - firstVar - p.Persistent - p.ColdRegs
	temps := make([]isa.Reg, nTemps)
	for i := range temps {
		temps[i] = isa.Reg(firstVar + p.Persistent + i)
	}
	cold := make([]isa.Reg, p.ColdRegs)
	for i := range cold {
		cold[i] = isa.Reg(p.Regs - p.ColdRegs + i)
	}
	footBytes := int64(p.FootprintKB) << 10
	hotBytes := int64(p.HotKB) << 10
	if hotBytes == 0 {
		hotBytes = 64 << 10
	}
	streamMem := func(i int) isa.MemDesc {
		return isa.MemDesc{Pattern: p.Pattern, Stride: p.Stride, Region: uint8(i), Footprint: footBytes}
	}
	// Hot regions are always coalesced: they model reused tables/tiles
	// whose lines live in the L1/L2 after warm-up.
	hotMem := func(i int) isa.MemDesc {
		return isa.MemDesc{Pattern: isa.PatCoalesced, Region: uint8(8 + i), Footprint: hotBytes}
	}
	storeMem := isa.MemDesc{Pattern: p.Pattern, Stride: p.Stride, Region: 15, Footprint: footBytes}

	// Prologue.
	b.MovI(regInd, 0)
	b.MovI(regBound, uint32(p.LoopTrips))
	for i, r := range persist {
		b.MovI(r, uint32(i+1))
	}
	// Guard over the cold block: R0 < R0 is always false, so the branch
	// never fires at runtime, but the cold block stays in the static
	// program (and in the register allocation).
	if p.ColdRegs > 0 {
		b.ISetp(regPred, regInd, regInd)
		b.BraCond(regPred, "cold", 0, false)
	}

	// Main loop.
	b.Label("body")
	// Temporaries are handed out from the TOP of the temp range: loads
	// land in the highest architectural registers, the way register
	// allocators place short-lived values after the long-lived ones. This
	// matters for RegMutex, whose BRS/SRP split keys on register indices.
	ti := 0
	nextTemp := func() isa.Reg {
		r := temps[len(temps)-1-ti%len(temps)]
		ti++
		return r
	}
	// Loads first; their values are consumed only at the tail of the
	// compute chain, so a warp issues a long independent burst before the
	// scoreboard blocks it on the memory latency — matching the hundreds
	// of cycles GPUs run between full CTA stalls (Table III).
	loaded := make([]isa.Reg, 0, p.StreamLoads+p.HotLoads)
	for i := 0; i < p.StreamLoads; i++ {
		t := nextTemp()
		b.Ldg(t, regInd, streamMem(i))
		loaded = append(loaded, t)
	}
	for i := 0; i < p.HotLoads; i++ {
		t := nextTemp()
		b.Ldg(t, regInd, hotMem(i))
		loaded = append(loaded, t)
	}
	for i := 0; i < p.ShmemPerIter; i++ {
		t := nextTemp()
		if i%2 == 0 {
			b.Lds(t, regInd)
			loaded = append(loaded, t)
		} else {
			b.Sts(persist[i%len(persist)], regInd)
		}
	}
	// Shared-memory producer/consumer kernels synchronize the CTA each
	// iteration — one reason the paper observes whole CTAs stalling
	// together (Section IV-C).
	if p.ShmemPerIter > 0 && p.WarpsPerCTA > 1 {
		b.Bar()
	}
	// Independent head: persistent-register arithmetic with dependency
	// distance len(persist), then a tail that folds the loaded values in.
	head := p.ComputePerIter - len(loaded)
	if head < 0 {
		head = 0
	}
	for i := 0; i < head; i++ {
		dst := persist[i%len(persist)]
		a := persist[(i+1)%len(persist)]
		c := persist[(i+2)%len(persist)]
		switch i % 3 {
		case 0:
			b.FFma(dst, a, c, dst)
		case 1:
			b.FMul(dst, a, c)
		default:
			b.FAdd(dst, a, c)
		}
	}
	for i, t := range loaded {
		if i >= p.ComputePerIter && i > 0 {
			break
		}
		dst := persist[i%len(persist)]
		b.FFma(dst, t, dst, dst)
	}
	for i := 0; i < p.SFUPerIter; i++ {
		b.Mufu(persist[i%len(persist)], persist[(i+1)%len(persist)])
	}
	if p.StorePeriod > 0 {
		b.Stg(persist[0], regInd, storeMem)
	}
	b.IAddI(regInd, regInd, 1)
	b.ISetp(regPred, regInd, regBound)
	b.Loop(regPred, "body", p.LoopTrips)

	// Epilogue: store the persistent results.
	for i, r := range persist {
		if i%2 == 0 {
			b.Stg(r, regInd, storeMem)
		}
	}
	b.Exit()

	// Cold block (never executed at runtime).
	if p.ColdRegs > 0 {
		b.Label("cold")
		for i, r := range cold {
			b.MovI(r, uint32(i))
		}
		for i := 1; i < len(cold); i++ {
			b.FAdd(cold[i], cold[i], cold[i-1])
		}
		b.Stg(cold[len(cold)-1], regInd, storeMem)
		b.Exit()
	}

	return b.MustBuild(p.Regs)
}
