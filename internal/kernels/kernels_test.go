package kernels

import (
	"testing"
	"testing/quick"

	"finereg/internal/isa"
	"finereg/internal/liveness"
)

// tableILimits is the paper's Table I machine.
var tableILimits = Limits{
	MaxCTAs:        32,
	MaxWarps:       64,
	MaxThreads:     2048,
	RegFileBytes:   256 << 10,
	SharedMemBytes: 96 << 10,
}

func TestTableIIHasEighteenBenchmarks(t *testing.T) {
	if got := len(Profiles()); got != 18 {
		t.Fatalf("Table II has %d benchmarks, want 18", got)
	}
}

func TestClassificationMatchesTableII(t *testing.T) {
	var nS, nR int
	for _, p := range Profiles() {
		got := p.Classify(tableILimits)
		if got != p.Class {
			ctas, lim := p.Occupancy(tableILimits)
			t.Errorf("%s: classified %v (limiter %s at %d CTAs), table says %v",
				p.Abbrev, got, lim, ctas, p.Class)
		}
		if p.Class == TypeS {
			nS++
		} else {
			nR++
		}
	}
	if nS != 9 || nR != 9 {
		t.Errorf("class split = %d Type-S / %d Type-R, want 9/9", nS, nR)
	}
}

func TestAllProgramsValidate(t *testing.T) {
	for _, k := range BuildAll(1.0) {
		if err := isa.Validate(k.Prog); err != nil {
			t.Errorf("%s: %v", k.Name(), err)
		}
		if k.Prog.RegsPerThread != k.Profile.Regs {
			t.Errorf("%s: program allocates %d regs, profile says %d",
				k.Name(), k.Prog.RegsPerThread, k.Profile.Regs)
		}
	}
}

func TestStaticInstructionBudget(t *testing.T) {
	// Paper Section V-F: "each application used in our experiments had
	// only up to 600 static instructions", so the 12-byte bit vectors fit
	// in < 4.8 KB more generously, 7.2 KB) of off-chip memory.
	for _, k := range BuildAll(1.0) {
		if n := k.Prog.Len(); n > 600 {
			t.Errorf("%s: %d static instructions, want <= 600", k.Name(), n)
		}
		if b := k.Live.BitVectorBytes(); b > 7200 {
			t.Errorf("%s: bit-vector table %d bytes, want <= 7200", k.Name(), b)
		}
	}
}

// TestLiveFractionAtLoads checks the Figure 5 premise: at global-load PCs
// (where warps stall) the live set is a strict subset of the allocation,
// and across the suite the average live fraction is well below 100%.
func TestLiveFractionAtLoads(t *testing.T) {
	var sumFrac float64
	var n int
	for _, k := range BuildAll(1.0) {
		maxFrac := 0.0
		for pc := 0; pc < k.Prog.Len(); pc++ {
			if k.Prog.At(pc).Op != isa.OpLDG {
				continue
			}
			frac := float64(k.Live.LiveCount(pc)) / float64(k.Profile.Regs)
			if frac > maxFrac {
				maxFrac = frac
			}
		}
		if maxFrac >= 1.0 {
			t.Errorf("%s: live fraction at a load PC = %.2f, want < 1.0", k.Name(), maxFrac)
		}
		sumFrac += maxFrac
		n++
	}
	if mean := sumFrac / float64(n); mean > 0.8 {
		t.Errorf("suite mean worst-case live fraction at loads = %.2f, want <= 0.8", mean)
	}
}

// TestColdRegsDeadInHotLoop checks that cold-path registers never appear
// in the live set of any hot-loop PC — the over-allocation FineReg frees.
func TestColdRegsDeadInHotLoop(t *testing.T) {
	for _, k := range BuildAll(1.0) {
		p := k.Profile
		if p.ColdRegs == 0 {
			continue
		}
		firstCold := isa.Reg(p.Regs - p.ColdRegs)
		// Hot PCs are everything before the first EXIT.
		for pc := 0; pc < k.Prog.Len() && k.Prog.At(pc).Op != isa.OpEXIT; pc++ {
			live := k.Live.At(pc)
			for r := firstCold; int(r) < p.Regs; r++ {
				if live.Has(r) {
					t.Errorf("%s: cold register %v live at hot pc %d", k.Name(), r, pc)
				}
			}
		}
	}
}

func TestCTAOverheadRange(t *testing.T) {
	// Figure 3: running an extra CTA costs 6 KB to 37.3 KB, and registers
	// dominate (88.7% on average).
	var regSum, totSum float64
	for _, p := range Profiles() {
		ov := p.CTAOverheadBytes()
		if ov < 6<<10 || ov > 40<<10 {
			t.Errorf("%s: CTA overhead %d bytes, want within [6KB, 40KB]", p.Abbrev, ov)
		}
		regSum += float64(p.RegBytesPerCTA())
		totSum += float64(ov)
	}
	if frac := regSum / totSum; frac < 0.75 || frac > 0.98 {
		t.Errorf("register share of CTA overhead = %.3f, want ~0.887 (within [0.75,0.98])", frac)
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("CS")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "Convolution Separable" {
		t.Errorf("CS resolves to %q", p.Name)
	}
	if _, err := ProfileByName("XX"); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestNamesOrdering(t *testing.T) {
	names := Names()
	if len(names) != 18 {
		t.Fatalf("Names() returned %d entries, want 18", len(names))
	}
	// First nine are Type-S, last nine Type-R.
	for i, n := range names {
		p, err := ProfileByName(n)
		if err != nil {
			t.Fatal(err)
		}
		wantClass := TypeS
		if i >= 9 {
			wantClass = TypeR
		}
		if p.Class != wantClass {
			t.Errorf("Names()[%d] = %s is %v, want %v", i, n, p.Class, wantClass)
		}
	}
}

func TestBuildRejectsBadProfiles(t *testing.T) {
	bad := []Profile{
		{Abbrev: "W0", WarpsPerCTA: 0, Regs: 16, Persistent: 2, LoopTrips: 4, StreamLoads: 1},
		{Abbrev: "R0", WarpsPerCTA: 2, Regs: 2, Persistent: 1, LoopTrips: 4, StreamLoads: 1},
		{Abbrev: "OV", WarpsPerCTA: 2, Regs: 10, Persistent: 5, ColdRegs: 5, LoopTrips: 4, StreamLoads: 1},
		{Abbrev: "T0", WarpsPerCTA: 2, Regs: 16, Persistent: 2, LoopTrips: 0, StreamLoads: 1},
		{Abbrev: "L0", WarpsPerCTA: 2, Regs: 16, Persistent: 2, LoopTrips: 4, StreamLoads: 0},
	}
	for _, p := range bad {
		if _, err := Build(p, 1); err == nil {
			t.Errorf("%s: Build accepted invalid profile", p.Abbrev)
		}
	}
}

func TestBuildGridDefaulting(t *testing.T) {
	p, _ := ProfileByName("SG")
	k := MustBuild(p, 0)
	if k.GridCTAs != p.GridCTAs {
		t.Errorf("default grid = %d, want %d", k.GridCTAs, p.GridCTAs)
	}
	k = MustBuild(p, 7)
	if k.GridCTAs != 7 {
		t.Errorf("explicit grid = %d, want 7", k.GridCTAs)
	}
}

func TestBuildAllScaling(t *testing.T) {
	half := BuildAll(0.5)
	full := BuildAll(1.0)
	for i := range half {
		if half[i].GridCTAs*2 < full[i].GridCTAs-1 || half[i].GridCTAs*2 > full[i].GridCTAs+1 {
			t.Errorf("%s: scaled grid %d not ~half of %d", half[i].Name(), half[i].GridCTAs, full[i].GridCTAs)
		}
	}
}

// Property: occupancy is monotone in every limit — growing a resource never
// reduces CTA occupancy.
func TestOccupancyMonotoneQuick(t *testing.T) {
	prof, _ := ProfileByName("SG")
	f := func(dCTA, dWarp, dThread, dReg, dShmem uint16) bool {
		base := tableILimits
		grown := Limits{
			MaxCTAs:        base.MaxCTAs + int(dCTA%64),
			MaxWarps:       base.MaxWarps + int(dWarp%128),
			MaxThreads:     base.MaxThreads + int(dThread),
			RegFileBytes:   base.RegFileBytes + int(dReg)*64,
			SharedMemBytes: base.SharedMemBytes + int(dShmem)*64,
		}
		n0, _ := prof.Occupancy(base)
		n1, _ := prof.Occupancy(grown)
		return n1 >= n0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every generated program analyses cleanly and its live sets stay
// within the allocation, for arbitrary valid profile perturbations.
func TestGeneratedProgramsAnalyzeQuick(t *testing.T) {
	f := func(seed uint32) bool {
		base := table[int(seed)%len(table)]
		base.LoopTrips = 1 + int(seed%13)
		base.ComputePerIter = int(seed % 23)
		k, err := Build(base, 4)
		if err != nil {
			return false
		}
		info, err := liveness.Analyze(k.Prog)
		if err != nil {
			return false
		}
		return info.MaxLive() <= k.Prog.RegsPerThread
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestAsmRoundTripAllBenchmarks: every generated Table II program must
// survive an EmitAsm -> Assemble round trip exactly — the assembly format
// is the archival representation of the kernels.
func TestAsmRoundTripAllBenchmarks(t *testing.T) {
	for _, k := range BuildAll(0.1) {
		asm := isa.EmitAsm(k.Prog)
		p2, err := isa.Assemble(asm)
		if err != nil {
			t.Fatalf("%s: %v", k.Name(), err)
		}
		if p2.RegsPerThread != k.Prog.RegsPerThread {
			t.Errorf("%s: regs %d != %d after round trip", k.Name(), p2.RegsPerThread, k.Prog.RegsPerThread)
		}
		if len(p2.Instrs) != len(k.Prog.Instrs) {
			t.Fatalf("%s: length %d != %d after round trip", k.Name(), len(p2.Instrs), len(k.Prog.Instrs))
		}
		for pc := range k.Prog.Instrs {
			if k.Prog.Instrs[pc] != p2.Instrs[pc] {
				t.Errorf("%s pc %d: %+v != %+v", k.Name(), pc, k.Prog.Instrs[pc], p2.Instrs[pc])
			}
		}
	}
}
