package kernels

import "testing"

// TestUserProfileClassification pins the occupancy math for user-shaped
// profiles (sparse fields: just warps/regs/shmem, no instruction mix) —
// what workload.Load derives from a .sasm program's launch geometry,
// classified under the same Table I limits as the built-in benchmarks.
func TestUserProfileClassification(t *testing.T) {
	lean := Profile{Abbrev: "u1", WarpsPerCTA: 2, Regs: 12}
	if got := lean.Classify(tableILimits); got != TypeS {
		t.Errorf("lean user kernel classified %v, want TypeS", got)
	}
	fat := Profile{Abbrev: "u2", WarpsPerCTA: 8, Regs: 64}
	if got := fat.Classify(tableILimits); got != TypeR {
		t.Errorf("register-hungry user kernel classified %v, want TypeR", got)
	}
	ctas, lim := fat.Occupancy(tableILimits)
	if lim != LimitRegFile || ctas != 4 {
		t.Errorf("fat occupancy = %d (%s), want 4 (register-file)", ctas, lim)
	}
}

// TestBuildDefaultGrid: Build with gridCTAs <= 0 falls back to the
// profile's reference grid — the contract the workload bench path relies
// on when a Program names a benchmark without a grid override.
func TestBuildDefaultGrid(t *testing.T) {
	p, err := ProfileByName("CS")
	if err != nil {
		t.Fatal(err)
	}
	k, err := Build(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k.GridCTAs != p.GridCTAs {
		t.Errorf("default grid %d, want profile reference %d", k.GridCTAs, p.GridCTAs)
	}
	if k2 := MustBuild(p, 7); k2.GridCTAs != 7 {
		t.Errorf("explicit grid %d, want 7", k2.GridCTAs)
	}
}
