// Package kernels provides the 18 benchmark kernels of the paper's Table II
// as synthetic program generators, plus a handful of small functional
// kernels used by the SIMT executor examples.
//
// The CUDA originals (Rodinia, Parboil, PolyBench, CUDA SDK) are not
// available in this environment, so each benchmark is reproduced as a
// generator that emits a SASS-like program with the *resource profile* that
// drives the paper's results: registers per thread, threads per CTA, shared
// memory per CTA, loop structure, arithmetic mix, and global-memory access
// pattern/footprint. The profiles are tuned so that, under the Table I
// configuration, each benchmark lands in the paper's Type-S or Type-R
// class, with live-register fractions and stall behaviour in the reported
// ranges (Figure 5, Table III).
package kernels

import (
	"fmt"
	"sort"

	"finereg/internal/isa"
	"finereg/internal/liveness"
)

// Type classifies a benchmark by which resource caps its baseline CTA
// occupancy (paper Section II).
type Type uint8

const (
	// TypeS benchmarks are bounded by scheduling resources (CTA slots,
	// warp slots, thread slots) and leave register file / shared memory
	// capacity unused.
	TypeS Type = iota
	// TypeR benchmarks are bounded by register file or shared memory size
	// before reaching the scheduling limit.
	TypeR
)

// String names the type the way the paper does.
func (t Type) String() string {
	if t == TypeS {
		return "Type-S"
	}
	return "Type-R"
}

// Profile is the static description of one benchmark from which its
// synthetic program is generated.
type Profile struct {
	// Abbrev is the paper's two-letter code (Table II), Name the full
	// benchmark name, Suite its origin suite.
	Abbrev, Name, Suite string
	// Class is the paper's scheduling-limit classification.
	Class Type
	// WarpsPerCTA × 32 = threads per CTA.
	WarpsPerCTA int
	// Regs is the statically allocated register count per thread.
	Regs int
	// Persistent is how many registers stay live across the main loop —
	// the dominant term of the live set at memory-stall PCs.
	Persistent int
	// SharedMem is bytes of shared memory per CTA.
	SharedMem int
	// LoopTrips is the main loop's trip count (dynamic length knob).
	LoopTrips int
	// StreamLoads global loads per iteration walk the large Footprint
	// regions (DRAM-bound); HotLoads hit small reused regions of HotKB
	// working set (cache-resident after warm-up) — real kernels mix both,
	// which sets the bytes-per-instruction ratio and thus how memory-bound
	// the benchmark is.
	StreamLoads, HotLoads int
	// HotKB is the hot-region working set (defaults to 64 KB when zero).
	HotKB int
	// ComputePerIter / SFUPerIter / ShmemPerIter set the rest of the
	// per-iteration instruction mix.
	ComputePerIter, SFUPerIter, ShmemPerIter int
	// Pattern and Stride describe the global access pattern.
	Pattern isa.Pattern
	Stride  int
	// FootprintKB is the global working set per region in KB; it controls
	// the cache hit profile (48 KB L1, 2 MB L2).
	FootprintKB int
	// StorePeriod stores results every k-th iteration (0 = epilogue only).
	StorePeriod int
	// ColdRegs registers are allocated (and touched once in a cold,
	// never-executed-at-runtime guard path) but dead in the hot loop —
	// they model the over-allocation FineReg exploits.
	ColdRegs int
	// GridCTAs is the default grid size at the reference 16-SM machine.
	GridCTAs int
}

// ThreadsPerCTA returns WarpsPerCTA × 32.
func (p *Profile) ThreadsPerCTA() int { return p.WarpsPerCTA * 32 }

// RegBytesPerCTA returns the register file bytes one CTA allocates
// (4 bytes × 32 lanes × Regs × warps).
func (p *Profile) RegBytesPerCTA() int { return p.WarpsPerCTA * p.Regs * 128 }

// CTAOverheadBytes returns the on-chip bytes needed to co-schedule one more
// CTA (registers + shared memory) — the quantity of the paper's Figure 3.
func (p *Profile) CTAOverheadBytes() int { return p.RegBytesPerCTA() + p.SharedMem }

// Kernel bundles a generated program with its launch geometry and the
// compiler's liveness information, ready for the simulator.
type Kernel struct {
	Profile Profile
	Prog    *isa.Program
	Live    *liveness.Info
	// GridCTAs is the number of CTAs this launch creates.
	GridCTAs int
}

// Name returns the benchmark abbreviation.
func (k *Kernel) Name() string { return k.Profile.Abbrev }

// table is the Table II benchmark set. Resource numbers are chosen so the
// baseline occupancy limiter matches the paper's classification under the
// Table I machine (32 CTAs / 64 warps / 2048 threads / 256 KB RF / 96 KB
// shared memory per SM) — see TestClassificationMatchesTableII.
var table = []Profile{
	// ---- Type-S: scheduler-limited ----
	{Abbrev: "BF", Name: "Breadth-First Search", Suite: "Rodinia", Class: TypeS,
		WarpsPerCTA: 3, Regs: 16, Persistent: 4, SharedMem: 0,
		LoopTrips: 12, StreamLoads: 1, HotLoads: 2, ComputePerIter: 8, Pattern: isa.PatRandom, Stride: 8,
		FootprintKB: 8 << 10, GridCTAs: 1536},
	{Abbrev: "BI", Name: "BiCGStab", Suite: "PolyBench", Class: TypeS,
		WarpsPerCTA: 4, Regs: 16, Persistent: 6, SharedMem: 1024,
		LoopTrips: 16, StreamLoads: 1, HotLoads: 1, ComputePerIter: 16, Pattern: isa.PatCoalesced,
		FootprintKB: 16 << 10, GridCTAs: 1024},
	{Abbrev: "CS", Name: "Convolution Separable", Suite: "CUDA SDK", Class: TypeS,
		WarpsPerCTA: 2, Regs: 16, Persistent: 5, SharedMem: 2048,
		LoopTrips: 16, StreamLoads: 1, HotLoads: 1, ComputePerIter: 20, ShmemPerIter: 2,
		Pattern: isa.PatCoalesced, FootprintKB: 8 << 10, GridCTAs: 2048},
	{Abbrev: "FD", Name: "Fluid Dynamics", Suite: "PolyBench", Class: TypeS,
		WarpsPerCTA: 4, Regs: 20, Persistent: 8, SharedMem: 0,
		LoopTrips: 20, StreamLoads: 1, HotLoads: 1, ComputePerIter: 22, Pattern: isa.PatCoalesced,
		FootprintKB: 24 << 10, GridCTAs: 1024},
	{Abbrev: "KM", Name: "Kmeans", Suite: "Rodinia", Class: TypeS,
		WarpsPerCTA: 3, Regs: 16, Persistent: 3, SharedMem: 0,
		LoopTrips: 14, StreamLoads: 1, HotLoads: 2, ComputePerIter: 10, Pattern: isa.PatRandom, Stride: 4,
		FootprintKB: 12 << 10, GridCTAs: 1536},
	{Abbrev: "MC", Name: "Monte Carlo", Suite: "Parboil", Class: TypeS,
		WarpsPerCTA: 2, Regs: 24, Persistent: 4, SharedMem: 0,
		LoopTrips: 24, StreamLoads: 1, ComputePerIter: 12, SFUPerIter: 2,
		Pattern: isa.PatCoalesced, FootprintKB: 8 << 10, ColdRegs: 10, GridCTAs: 2048},
	{Abbrev: "NW", Name: "Needleman-Wunsch", Suite: "Rodinia", Class: TypeS,
		WarpsPerCTA: 2, Regs: 24, Persistent: 3, SharedMem: 2048,
		LoopTrips: 12, StreamLoads: 1, HotLoads: 1, ComputePerIter: 16, ShmemPerIter: 2,
		Pattern: isa.PatCoalesced, FootprintKB: 16 << 10, ColdRegs: 8, GridCTAs: 2048},
	{Abbrev: "ST", Name: "Stencil", Suite: "Parboil", Class: TypeS,
		WarpsPerCTA: 4, Regs: 18, Persistent: 7, SharedMem: 0,
		LoopTrips: 16, StreamLoads: 1, HotLoads: 2, ComputePerIter: 22, Pattern: isa.PatCoalesced,
		FootprintKB: 32 << 10, StorePeriod: 1, GridCTAs: 1024},
	{Abbrev: "SY2", Name: "Symmetric Rank 2k", Suite: "PolyBench", Class: TypeS,
		WarpsPerCTA: 3, Regs: 16, Persistent: 6, SharedMem: 0,
		LoopTrips: 18, StreamLoads: 1, HotLoads: 2, ComputePerIter: 14, Pattern: isa.PatCoalesced,
		FootprintKB: 24 << 10, GridCTAs: 1536},
	// ---- Type-R: register/shared-memory-limited ----
	{Abbrev: "AT", Name: "Transpose Vector Multiply", Suite: "PolyBench", Class: TypeR,
		WarpsPerCTA: 8, Regs: 36, Persistent: 10, SharedMem: 0,
		LoopTrips: 16, StreamLoads: 1, HotLoads: 1, ComputePerIter: 18, Pattern: isa.PatStrided, Stride: 4,
		FootprintKB: 24 << 10, GridCTAs: 512},
	{Abbrev: "CF", Name: "CFD Solver", Suite: "Rodinia", Class: TypeR,
		WarpsPerCTA: 6, Regs: 48, Persistent: 16, SharedMem: 0,
		LoopTrips: 14, StreamLoads: 2, HotLoads: 1, ComputePerIter: 24, Pattern: isa.PatCoalesced,
		FootprintKB: 32 << 10, ColdRegs: 8, GridCTAs: 512},
	{Abbrev: "HS", Name: "Hotspot", Suite: "Rodinia", Class: TypeR,
		WarpsPerCTA: 6, Regs: 36, Persistent: 12, SharedMem: 8 << 10,
		LoopTrips: 12, StreamLoads: 1, HotLoads: 1, ComputePerIter: 16, ShmemPerIter: 3,
		Pattern: isa.PatCoalesced, FootprintKB: 16 << 10, GridCTAs: 512},
	{Abbrev: "LI", Name: "LIBOR", Suite: "GPGPU-Sim", Class: TypeR,
		WarpsPerCTA: 2, Regs: 52, Persistent: 8, SharedMem: 0,
		LoopTrips: 20, StreamLoads: 1, ComputePerIter: 20, SFUPerIter: 1,
		Pattern: isa.PatCoalesced, FootprintKB: 8 << 10, ColdRegs: 24, GridCTAs: 2048},
	{Abbrev: "LB", Name: "Lattice-Boltzmann", Suite: "Parboil", Class: TypeR,
		WarpsPerCTA: 4, Regs: 54, Persistent: 20, SharedMem: 0,
		LoopTrips: 12, StreamLoads: 2, HotLoads: 2, ComputePerIter: 28, Pattern: isa.PatCoalesced,
		FootprintKB: 48 << 10, StorePeriod: 1, GridCTAs: 768},
	{Abbrev: "SG", Name: "SGEMM", Suite: "PolyBench", Class: TypeR,
		WarpsPerCTA: 4, Regs: 48, Persistent: 24, SharedMem: 8 << 10,
		LoopTrips: 24, StreamLoads: 1, HotLoads: 2, ComputePerIter: 28, ShmemPerIter: 4,
		Pattern: isa.PatCoalesced, FootprintKB: 12 << 10, StorePeriod: 0, GridCTAs: 768},
	{Abbrev: "SR2", Name: "Sradv2", Suite: "Rodinia", Class: TypeR,
		WarpsPerCTA: 8, Regs: 34, Persistent: 10, SharedMem: 0,
		LoopTrips: 12, StreamLoads: 2, HotLoads: 1, ComputePerIter: 14, Pattern: isa.PatCoalesced,
		FootprintKB: 32 << 10, ColdRegs: 12, GridCTAs: 512},
	{Abbrev: "TA", Name: "Two Point Angular", Suite: "Parboil", Class: TypeR,
		WarpsPerCTA: 4, Regs: 24, Persistent: 8, SharedMem: 24 << 10,
		LoopTrips: 16, StreamLoads: 1, HotLoads: 1, ComputePerIter: 12, ShmemPerIter: 4, SFUPerIter: 1,
		Pattern: isa.PatCoalesced, FootprintKB: 16 << 10, ColdRegs: 8, GridCTAs: 1024},
	{Abbrev: "TR", Name: "Transpose", Suite: "CUDA SDK", Class: TypeR,
		WarpsPerCTA: 4, Regs: 38, Persistent: 12, SharedMem: 6 << 10,
		LoopTrips: 12, StreamLoads: 1, HotLoads: 1, ComputePerIter: 14, ShmemPerIter: 4,
		Pattern: isa.PatStrided, Stride: 2, FootprintKB: 32 << 10, StorePeriod: 1, GridCTAs: 768},
}

// Profiles returns the Table II benchmark profiles in paper order
// (Type-S block first). The slice is a copy; callers may mutate it.
func Profiles() []Profile {
	out := make([]Profile, len(table))
	copy(out, table)
	return out
}

// ProfileByName returns the profile with the given abbreviation.
func ProfileByName(abbrev string) (Profile, error) {
	for _, p := range table {
		if p.Abbrev == abbrev {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("kernels: unknown benchmark %q", abbrev)
}

// Names returns all benchmark abbreviations, Type-S first then Type-R,
// alphabetical within each class.
func Names() []string {
	var s, r []string
	for _, p := range table {
		if p.Class == TypeS {
			s = append(s, p.Abbrev)
		} else {
			r = append(r, p.Abbrev)
		}
	}
	sort.Strings(s)
	sort.Strings(r)
	return append(s, r...)
}
