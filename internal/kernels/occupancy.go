package kernels

// Limits captures the per-SM resources that cap CTA occupancy. It mirrors
// the Table I machine but is explicit so experiments can scale scheduling
// resources and memory independently (Figure 2).
type Limits struct {
	// MaxCTAs, MaxWarps, MaxThreads are the scheduling resources.
	MaxCTAs, MaxWarps, MaxThreads int
	// RegFileBytes and SharedMemBytes are the on-chip memory resources.
	RegFileBytes, SharedMemBytes int
}

// Limiter identifies which resource binds a kernel's baseline occupancy.
type Limiter string

// Limiter values, grouped by the paper's two classes.
const (
	LimitCTA     Limiter = "cta-slots"     // Type-S
	LimitWarp    Limiter = "warp-slots"    // Type-S
	LimitThread  Limiter = "thread-slots"  // Type-S
	LimitRegFile Limiter = "register-file" // Type-R
	LimitShmem   Limiter = "shared-memory" // Type-R
)

// IsScheduling reports whether the limiter is a scheduling resource
// (Type-S) rather than on-chip memory (Type-R).
func (l Limiter) IsScheduling() bool {
	return l == LimitCTA || l == LimitWarp || l == LimitThread
}

// Occupancy computes how many CTAs of this profile fit on one SM under the
// given limits, and which resource binds first. Ties go to the scheduling
// resource (the paper classifies a benchmark as Type-R only when memory
// binds strictly before the scheduler).
func (p *Profile) Occupancy(l Limits) (ctas int, limiter Limiter) {
	type cand struct {
		n   int
		lim Limiter
	}
	cands := []cand{
		{l.MaxCTAs, LimitCTA},
		{l.MaxWarps / p.WarpsPerCTA, LimitWarp},
		{l.MaxThreads / p.ThreadsPerCTA(), LimitThread},
	}
	if rb := p.RegBytesPerCTA(); rb > 0 {
		cands = append(cands, cand{l.RegFileBytes / rb, LimitRegFile})
	}
	if p.SharedMem > 0 {
		cands = append(cands, cand{l.SharedMemBytes / p.SharedMem, LimitShmem})
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.n < best.n {
			best = c
		}
	}
	return best.n, best.lim
}

// Classify returns the Type the profile exhibits under the given limits —
// the ground truth the Class field is checked against in tests.
func (p *Profile) Classify(l Limits) Type {
	_, lim := p.Occupancy(l)
	if lim.IsScheduling() {
		return TypeS
	}
	return TypeR
}
