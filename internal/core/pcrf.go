// Package core implements the paper's primary contribution: the FineReg
// register-file organization and management. It contains
//
//   - the pending-CTA register file (PCRF) with its chained tag structure
//     (Figure 11): per-entry valid/end bits, next-register pointer, warp ID
//     and register index, plus the free-space monitor;
//   - the register management unit (RMU, Figure 10) with its 32-entry
//     direct-mapped live-register bit-vector cache;
//   - the CTA status monitor (Table IV) tracking context and register
//     location per resident CTA;
//   - the FineReg scheduling policy that splits the register file into
//     ACRF and PCRF and performs live-register-only CTA switching.
package core

import "fmt"

// RegRef identifies one live warp-register: which warp of the CTA and
// which architectural register.
type RegRef struct {
	Warp uint8
	Reg  uint8
}

// pcrfTag is the per-entry tag of Figure 11: valid and end bits, the
// next-register pointer (10 bits in hardware), warp ID (5 bits) and
// register index (6 bits) — 21 tag bits tracked here with natural Go
// types.
type pcrfTag struct {
	valid bool
	end   bool
	next  uint16
	ref   RegRef
}

// PCRF is the pending-CTA register file: a pool of 128-byte register
// entries in which each pending CTA's live registers are stored as a
// linked chain. The free-space monitor is a presence bitmap plus counter,
// matching the paper's 1-bit-per-entry array.
type PCRF struct {
	tags []pcrfTag
	free int
	// cursor is a rotating allocation pointer so chains spread over the
	// structure the way a hardware free-list would.
	cursor int

	// Reads and Writes count register-entry accesses (128 B each).
	Reads, Writes int64
}

// NewPCRF builds a PCRF with the given number of 128-byte entries
// (sizeBytes/128; the paper's 128 KB PCRF has 1024).
func NewPCRF(entries int) (*PCRF, error) {
	if entries < 1 {
		return nil, fmt.Errorf("core: PCRF needs at least 1 entry, got %d", entries)
	}
	return &PCRF{tags: make([]pcrfTag, entries), free: entries}, nil
}

// Entries returns the PCRF capacity.
func (p *PCRF) Entries() int { return len(p.tags) }

// Free returns the number of unoccupied entries — the free-space monitor's
// zero count.
func (p *PCRF) Free() int { return p.free }

// Reset invalidates all entries.
func (p *PCRF) Reset() {
	for i := range p.tags {
		p.tags[i] = pcrfTag{}
	}
	p.free = len(p.tags)
	p.cursor = 0
	p.Reads, p.Writes = 0, 0
}

// StoreChain writes the live registers of a CTA into free entries, linking
// them with next pointers and marking the last with the end bit. It
// returns the head index (the PCRF pointer table entry). Storing nothing
// returns head -1, ok. Fails (ok=false, no mutation) when free space is
// insufficient.
func (p *PCRF) StoreChain(refs []RegRef) (head int, ok bool) {
	if len(refs) == 0 {
		return -1, true
	}
	if len(refs) > p.free {
		return -1, false
	}
	prev := -1
	head = -1
	for _, ref := range refs {
		slot := p.alloc()
		p.tags[slot] = pcrfTag{valid: true, end: true, ref: ref}
		p.Writes++
		if prev >= 0 {
			p.tags[prev].next = uint16(slot)
			p.tags[prev].end = false
		} else {
			head = slot
		}
		prev = slot
	}
	return head, true
}

// alloc returns a free slot index; the caller guaranteed availability.
func (p *PCRF) alloc() int {
	for i := 0; i < len(p.tags); i++ {
		slot := (p.cursor + i) % len(p.tags)
		if !p.tags[slot].valid {
			p.cursor = (slot + 1) % len(p.tags)
			p.free--
			return slot
		}
	}
	panic("core: PCRF alloc with no free entries")
}

// ReleaseChain walks a chain from head (restoring its registers to the
// ACRF), invalidating each entry, and returns the registers in chain
// order. A head of -1 (empty chain) returns nil.
func (p *PCRF) ReleaseChain(head int) []RegRef {
	if head < 0 {
		return nil
	}
	var refs []RegRef
	slot := head
	for {
		t := &p.tags[slot]
		if !t.valid {
			panic(fmt.Sprintf("core: PCRF chain hits invalid entry %d", slot))
		}
		refs = append(refs, t.ref)
		p.Reads++
		t.valid = false
		p.free++
		if t.end {
			return refs
		}
		slot = int(t.next)
	}
}

// ReleaseChainCount walks and invalidates a chain exactly like
// ReleaseChain but returns only its length — the hot-path variant for the
// restore paths, which account transfers by count and never look at the
// individual registers.
func (p *PCRF) ReleaseChainCount(head int) int {
	if head < 0 {
		return 0
	}
	n := 0
	slot := head
	for {
		t := &p.tags[slot]
		if !t.valid {
			panic(fmt.Sprintf("core: PCRF chain hits invalid entry %d", slot))
		}
		n++
		p.Reads++
		t.valid = false
		p.free++
		if t.end {
			return n
		}
		slot = int(t.next)
	}
}

// ChainLen walks a chain without mutating it and returns its length.
func (p *PCRF) ChainLen(head int) int {
	if head < 0 {
		return 0
	}
	n := 0
	slot := head
	for {
		t := &p.tags[slot]
		if !t.valid {
			panic(fmt.Sprintf("core: PCRF chain hits invalid entry %d", slot))
		}
		n++
		if t.end {
			return n
		}
		slot = int(t.next)
	}
}

// TagOverheadBytes returns the SRAM cost of the tag array: 21 bits per
// entry (paper Section V-F: 2.15 KB for 1024 entries).
func (p *PCRF) TagOverheadBytes() int { return len(p.tags) * 21 / 8 }
