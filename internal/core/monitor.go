package core

import "fmt"

// CtxLoc encodes where a CTA's pipeline context is (Table IV row 1).
type CtxLoc uint8

// RegLoc encodes where a CTA's registers are (Table IV row 2).
type RegLoc uint8

// Table IV encodings.
const (
	CtxNotLaunched CtxLoc = 0
	CtxSharedMem   CtxLoc = 1
	CtxPipeline    CtxLoc = 2

	RegNotLaunched RegLoc = 0
	RegPCRF        RegLoc = 1
	RegACRF        RegLoc = 2
)

// MonitorSlots is the resident-CTA capacity of the status monitor
// (Section V-F: "FineReg is designed to support up to 128 CTAs").
const MonitorSlots = 128

// StatusMonitor is the CTA status monitor of Figure 8: two arrays of 2-bit
// fields (context location, register location) indexed by resident-CTA
// slot. The fields are stored packed, as in hardware, so the structure's
// size matches the paper's 256-bit-per-field accounting.
type StatusMonitor struct {
	ctx [MonitorSlots / 32]uint64 // 2 bits per slot
	reg [MonitorSlots / 32]uint64
}

func get2(a *[MonitorSlots / 32]uint64, slot int) uint8 {
	return uint8(a[slot/32] >> (uint(slot%32) * 2) & 3)
}

func set2(a *[MonitorSlots / 32]uint64, slot int, v uint8) {
	sh := uint(slot%32) * 2
	a[slot/32] = a[slot/32]&^(3<<sh) | uint64(v&3)<<sh
}

// Set records a CTA slot's context and register location.
func (m *StatusMonitor) Set(slot int, c CtxLoc, r RegLoc) {
	if slot < 0 || slot >= MonitorSlots {
		panic(fmt.Sprintf("core: status monitor slot %d out of range", slot))
	}
	set2(&m.ctx, slot, uint8(c))
	set2(&m.reg, slot, uint8(r))
}

// Get returns a slot's context and register location.
func (m *StatusMonitor) Get(slot int) (CtxLoc, RegLoc) {
	if slot < 0 || slot >= MonitorSlots {
		panic(fmt.Sprintf("core: status monitor slot %d out of range", slot))
	}
	return CtxLoc(get2(&m.ctx, slot)), RegLoc(get2(&m.reg, slot))
}

// IsActive reports the paper's activity rule: a CTA is active only when
// both fields read 2 (pipeline + ACRF).
func (m *StatusMonitor) IsActive(slot int) bool {
	c, r := m.Get(slot)
	return c == CtxPipeline && r == RegACRF
}

// SwitchPriority ranks a slot as a resume candidate per Section V-B:
// context in shared memory with registers still in the ACRF is preferred
// (rank 0), then context and registers both backed up (rank 1); anything
// else is not a candidate (rank -1).
func (m *StatusMonitor) SwitchPriority(slot int) int {
	c, r := m.Get(slot)
	switch {
	case c == CtxSharedMem && r == RegACRF:
		return 0
	case c == CtxSharedMem && r == RegPCRF:
		return 1
	default:
		return -1
	}
}

// Reset clears all slots to not-launched.
func (m *StatusMonitor) Reset() {
	m.ctx = [MonitorSlots / 32]uint64{}
	m.reg = [MonitorSlots / 32]uint64{}
}

// StorageBits returns the monitor's SRAM cost: 2 bits × slots × 2 fields
// (Section V-F: 256 bits per field for 128 CTAs).
func (m *StatusMonitor) StorageBits() int { return MonitorSlots * 2 * 2 }
