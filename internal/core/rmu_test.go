package core

import (
	"testing"
	"testing/quick"

	"finereg/internal/mem"
)

func testHier() *mem.Hierarchy {
	return mem.NewHierarchy(2<<20, 8, 600, 313, mem.DefaultLatencies())
}

func TestRMUMissThenHit(t *testing.T) {
	h := testHier()
	r := NewRMU(h)
	d1 := r.Lookup(42, 0)
	if d1 <= 0 {
		t.Errorf("cold lookup delay = %d, want > 0 (off-chip fetch)", d1)
	}
	if r.Misses != 1 || r.Hits != 0 {
		t.Errorf("hits/misses = %d/%d, want 0/1", r.Hits, r.Misses)
	}
	if d2 := r.Lookup(42, 1000); d2 != 0 {
		t.Errorf("warm lookup delay = %d, want 0", d2)
	}
	if r.Hits != 1 {
		t.Errorf("hits = %d, want 1", r.Hits)
	}
	if got := h.DRAM.Bytes(mem.TrafficBitvec); got != bitvecBytes {
		t.Errorf("bit-vector traffic = %d bytes, want %d", got, bitvecBytes)
	}
}

func TestRMUDirectMappedConflict(t *testing.T) {
	r := NewRMU(testHier())
	r.Lookup(5, 0)
	// PC 5+32 maps to the same set in the 32-entry direct-mapped cache.
	r.Lookup(5+bitvecCacheEntries, 100)
	if d := r.Lookup(5, 2000); d == 0 {
		t.Error("conflicting PC should have evicted the original entry")
	}
	if r.Misses != 3 {
		t.Errorf("misses = %d, want 3 (two cold + one conflict)", r.Misses)
	}
}

func TestRMUReset(t *testing.T) {
	r := NewRMU(testHier())
	r.Lookup(1, 0)
	r.Reset()
	if d := r.Lookup(1, 100); d == 0 {
		t.Error("lookup after Reset should miss")
	}
}

func TestTransferLat(t *testing.T) {
	if got := TransferLat(0); got != 0 {
		t.Errorf("TransferLat(0) = %d, want 0", got)
	}
	// Tag access (4 cycles) + pipelined 1 register/cycle.
	if got := TransferLat(10); got != 14 {
		t.Errorf("TransferLat(10) = %d, want 14", got)
	}
}

// Property: lookups are idempotent within a working set of <= 32
// well-spread PCs (one miss each, hits forever after).
func TestRMUWorkingSetQuick(t *testing.T) {
	f := func(base uint16) bool {
		r := NewRMU(testHier())
		// 8 PCs spread across distinct sets.
		var pcs []int
		for i := 0; i < 8; i++ {
			pcs = append(pcs, int(base%1000)+i*4)
		}
		seen := map[int]bool{}
		distinct := map[int]bool{}
		for _, pc := range pcs {
			distinct[pc&(bitvecCacheEntries-1)] = true
			seen[pc] = true
		}
		if len(distinct) != len(seen) {
			return true // conflicting set — skip this input
		}
		for _, pc := range pcs {
			r.Lookup(pc, 0)
		}
		for _, pc := range pcs {
			if r.Lookup(pc, 10000) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStatusMonitorEncoding(t *testing.T) {
	m := &StatusMonitor{}
	m.Set(0, CtxPipeline, RegACRF)
	m.Set(127, CtxSharedMem, RegPCRF)
	m.Set(63, CtxNotLaunched, RegNotLaunched)
	if c, r := m.Get(0); c != CtxPipeline || r != RegACRF {
		t.Errorf("slot 0 = %d/%d", c, r)
	}
	if c, r := m.Get(127); c != CtxSharedMem || r != RegPCRF {
		t.Errorf("slot 127 = %d/%d", c, r)
	}
	if !m.IsActive(0) {
		t.Error("slot 0 should be active (pipeline + ACRF)")
	}
	if m.IsActive(127) || m.IsActive(63) {
		t.Error("pending/unlaunched slots must not be active")
	}
}

func TestStatusMonitorPriority(t *testing.T) {
	m := &StatusMonitor{}
	m.Set(1, CtxSharedMem, RegACRF) // preferred resume candidate
	m.Set(2, CtxSharedMem, RegPCRF) // second choice
	m.Set(3, CtxPipeline, RegACRF)  // active: not a candidate
	if p := m.SwitchPriority(1); p != 0 {
		t.Errorf("priority(ctx=shmem, reg=ACRF) = %d, want 0", p)
	}
	if p := m.SwitchPriority(2); p != 1 {
		t.Errorf("priority(ctx=shmem, reg=PCRF) = %d, want 1", p)
	}
	if p := m.SwitchPriority(3); p != -1 {
		t.Errorf("priority(active) = %d, want -1", p)
	}
}

func TestStatusMonitorStorage(t *testing.T) {
	m := &StatusMonitor{}
	// Section V-F: 256 bits per field x 2 fields.
	if got := m.StorageBits(); got != 512 {
		t.Errorf("StorageBits = %d, want 512", got)
	}
}

func TestStatusMonitorBounds(t *testing.T) {
	m := &StatusMonitor{}
	for _, bad := range []int{-1, MonitorSlots} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) should panic", bad)
				}
			}()
			m.Set(bad, CtxPipeline, RegACRF)
		}()
	}
}

// Property: Set/Get round-trips for every slot and every encoding without
// cross-slot interference.
func TestStatusMonitorQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		m := &StatusMonitor{}
		ref := map[int][2]uint8{}
		for _, op := range ops {
			slot := int(op) % MonitorSlots
			c := uint8(op>>8) % 3
			r := uint8(op>>11) % 3
			m.Set(slot, CtxLoc(c), RegLoc(r))
			ref[slot] = [2]uint8{c, r}
		}
		for slot, want := range ref {
			c, r := m.Get(slot)
			if uint8(c) != want[0] || uint8(r) != want[1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
