package core

import "finereg/internal/mem"

// bitvecCacheEntries is the live-register bit-vector cache size the paper
// empirically settled on (Section V-C: "32 entries are sufficient").
const bitvecCacheEntries = 32

// bitvecBytes is the off-chip footprint of one live-register table entry:
// 4-byte PC tag + 8-byte vector (Section V-F).
const bitvecBytes = 12

// RMU is FineReg's register management unit (Figure 10). This model
// implements the component that has timing consequences — the
// direct-mapped live-register bit-vector cache, whose misses fetch 12-byte
// entries from off-chip memory — and exposes the latency parameters of the
// PCRF access logic. The PCRF pointer table and free-space monitor live
// with the PCRF/policy state.
type RMU struct {
	hier *mem.Hierarchy

	tags  [bitvecCacheEntries]int32 // stored PC, -1 invalid
	valid [bitvecCacheEntries]bool

	// Hits and Misses count bit-vector cache probes.
	Hits, Misses int64
}

// NewRMU builds an RMU attached to the shared memory hierarchy (bit-vector
// fetches travel over the same off-chip channel as demand traffic).
func NewRMU(hier *mem.Hierarchy) *RMU {
	r := &RMU{hier: hier}
	r.Reset()
	return r
}

// Reset invalidates the bit-vector cache.
func (r *RMU) Reset() {
	for i := range r.tags {
		r.tags[i] = -1
		r.valid[i] = false
	}
}

// Lookup probes the bit-vector cache for the live-register vector of the
// instruction at pc and returns the extra cycles the CTA switch must wait
// for it. A hit costs nothing; a miss fetches 12 bytes from off-chip
// memory (accounted as TrafficBitvec) and fills the cache.
func (r *RMU) Lookup(pc int, now int64) (delay int64) {
	idx := pc & (bitvecCacheEntries - 1) // "hashing 5 bits of PC address"
	if r.valid[idx] && r.tags[idx] == int32(pc) {
		r.Hits++
		return 0
	}
	r.Misses++
	done := r.hier.Transfer(now, bitvecBytes, mem.TrafficBitvec)
	r.tags[idx] = int32(pc)
	r.valid[idx] = true
	return done - now
}

// PCRFTagLat is the fixed PCRF tag + register access latency (Section V-E:
// "at least four clock cycles to access a PCRF tag and the corresponding
// register").
const PCRFTagLat = 4

// TransferLat returns the pipelined cycles to move n live registers
// between the ACRF and PCRF: the 4-cycle tag access followed by one
// register per cycle (Section V-E: retrieval is pipelined and may take
// several hundred cycles for large live sets).
func TransferLat(n int) int64 {
	if n <= 0 {
		return 0
	}
	return PCRFTagLat + int64(n)
}
