package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func refs(n int) []RegRef {
	out := make([]RegRef, n)
	for i := range out {
		out[i] = RegRef{Warp: uint8(i % 32), Reg: uint8(i % 63)}
	}
	return out
}

func TestPCRFGeometry(t *testing.T) {
	p, err := NewPCRF(1024) // the paper's 128 KB PCRF
	if err != nil {
		t.Fatal(err)
	}
	if p.Entries() != 1024 || p.Free() != 1024 {
		t.Errorf("entries/free = %d/%d, want 1024/1024", p.Entries(), p.Free())
	}
	// Section V-F: 21 tag bits x 1024 entries = 2.15 KB (2688 bytes).
	if got := p.TagOverheadBytes(); got != 2688 {
		t.Errorf("tag overhead = %d bytes, want 2688", got)
	}
	if _, err := NewPCRF(0); err == nil {
		t.Error("zero-entry PCRF should be rejected")
	}
}

func TestPCRFStoreRetrieveChain(t *testing.T) {
	p, _ := NewPCRF(16)
	in := refs(5)
	head, ok := p.StoreChain(in)
	if !ok || head < 0 {
		t.Fatalf("StoreChain failed: head=%d ok=%v", head, ok)
	}
	if p.Free() != 11 {
		t.Errorf("free = %d, want 11", p.Free())
	}
	if n := p.ChainLen(head); n != 5 {
		t.Errorf("ChainLen = %d, want 5", n)
	}
	out := p.ReleaseChain(head)
	if len(out) != 5 {
		t.Fatalf("released %d refs, want 5", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("chain order broken at %d: got %v want %v", i, out[i], in[i])
		}
	}
	if p.Free() != 16 {
		t.Errorf("free after release = %d, want 16", p.Free())
	}
}

func TestPCRFEmptyChain(t *testing.T) {
	p, _ := NewPCRF(4)
	head, ok := p.StoreChain(nil)
	if !ok || head != -1 {
		t.Errorf("empty store: head=%d ok=%v, want -1/true", head, ok)
	}
	if got := p.ReleaseChain(-1); got != nil {
		t.Errorf("ReleaseChain(-1) = %v, want nil", got)
	}
	if got := p.ChainLen(-1); got != 0 {
		t.Errorf("ChainLen(-1) = %d, want 0", got)
	}
}

func TestPCRFCapacityRejection(t *testing.T) {
	p, _ := NewPCRF(4)
	if _, ok := p.StoreChain(refs(5)); ok {
		t.Error("overfull store should fail")
	}
	if p.Free() != 4 {
		t.Error("failed store must not mutate")
	}
	if _, ok := p.StoreChain(refs(4)); !ok {
		t.Error("exact-fit store should succeed")
	}
	if _, ok := p.StoreChain(refs(1)); ok {
		t.Error("store into full PCRF should fail")
	}
}

func TestPCRFInterleavedChains(t *testing.T) {
	p, _ := NewPCRF(32)
	h1, _ := p.StoreChain(refs(10))
	h2, _ := p.StoreChain(refs(12))
	// Release the first chain; its slots fragment the free space, so the
	// next chain must thread through non-contiguous entries.
	p.ReleaseChain(h1)
	h3, ok := p.StoreChain(refs(15))
	if !ok {
		t.Fatal("fragmented store should still succeed (15 <= 20 free)")
	}
	if n := p.ChainLen(h3); n != 15 {
		t.Errorf("fragmented chain length = %d, want 15", n)
	}
	if got := len(p.ReleaseChain(h2)); got != 12 {
		t.Errorf("chain 2 released %d, want 12", got)
	}
	if got := len(p.ReleaseChain(h3)); got != 15 {
		t.Errorf("chain 3 released %d, want 15", got)
	}
	if p.Free() != 32 {
		t.Errorf("free = %d, want 32", p.Free())
	}
}

func TestPCRFCounters(t *testing.T) {
	p, _ := NewPCRF(8)
	h, _ := p.StoreChain(refs(3))
	p.ReleaseChain(h)
	if p.Writes != 3 || p.Reads != 3 {
		t.Errorf("reads/writes = %d/%d, want 3/3", p.Reads, p.Writes)
	}
	p.Reset()
	if p.Writes != 0 || p.Reads != 0 || p.Free() != 8 {
		t.Error("Reset should clear counters and contents")
	}
}

// Property: arbitrary interleavings of store/release keep free-count
// consistent and chains intact (round-trip exactly what was stored).
func TestPCRFChainsQuick(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := NewPCRF(64)
		type chain struct {
			head int
			data []RegRef
		}
		var live []chain
		used := 0
		for op := 0; op < int(opsRaw%40)+10; op++ {
			if rng.Intn(2) == 0 && used < 60 {
				n := 1 + rng.Intn(10)
				data := make([]RegRef, n)
				for i := range data {
					data[i] = RegRef{Warp: uint8(rng.Intn(32)), Reg: uint8(rng.Intn(64))}
				}
				head, ok := p.StoreChain(data)
				if n <= p.Free()+n && !ok && n <= 64-used {
					return false // must succeed when space suffices
				}
				if ok {
					live = append(live, chain{head, data})
					used += n
				}
			} else if len(live) > 0 {
				i := rng.Intn(len(live))
				c := live[i]
				got := p.ReleaseChain(c.head)
				if len(got) != len(c.data) {
					return false
				}
				for j := range got {
					if got[j] != c.data[j] {
						return false
					}
				}
				used -= len(c.data)
				live = append(live[:i], live[i+1:]...)
			}
			if p.Free() != 64-used {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
