package core

import (
	"fmt"

	"finereg/internal/mem"
	"finereg/internal/sm"
	"finereg/internal/telemetry"
	"finereg/internal/trace"
)

// Telemetry (internal/telemetry): the FineReg degradation ladder's rungs
// as process-global counters, so a live /metrics scrape or a Progress
// sample shows which rung — ACRF-direct launch, PCRF spill/fill, or
// depletion-blocked — the fleet is currently exercising.
var (
	telACRFLaunches = telemetry.NewCounter("finereg_acrf_launches")
	telPCRFSpills   = telemetry.NewCounter("finereg_pcrf_spills")
	telPCRFSpillReg = telemetry.NewCounter("finereg_pcrf_spill_regs")
	telPCRFFills    = telemetry.NewCounter("finereg_pcrf_fills")
	telPCRFFillReg  = telemetry.NewCounter("finereg_pcrf_fill_regs")
	telDepletion    = telemetry.NewCounter("finereg_depletion_events")
)

// ctaInfo is the FineReg policy's per-CTA bookkeeping: its status-monitor
// slot and, while pending, the head of its PCRF chain.
type ctaInfo struct {
	slot     int
	head     int
	chainLen int
}

// FineReg is the paper's register-file management policy. The monolithic
// register file is split into the ACRF (active CTAs, full allocations) and
// the PCRF (pending CTAs, live registers only). When all warps of an
// active CTA stall, its live registers — identified by the compiler's
// liveness bit vectors, fetched through the RMU's bit-vector cache — are
// chained into the PCRF and the freed ACRF slot admits a new or resuming
// CTA. When the PCRF cannot hold the live set, FineReg degrades to pure
// ACRF↔PCRF context switching, and failing that leaves the CTA stalled
// (the Figure 14 depletion case).
type FineReg struct {
	cfg  sm.Config
	hier *mem.Hierarchy

	// ACRFBytes and PCRFBytes partition the register file; they must sum
	// to cfg.RegFileBytes (the paper's default splits 256 KB into
	// 128 KB + 128 KB).
	ACRFBytes, PCRFBytes int

	// CompactLive selects live-register-only storage in the PCRF (the
	// FineReg contribution). Disabling it stores full register sets — the
	// ablation that isolates the compaction benefit.
	CompactLive bool

	acrfFree int
	pcrf     *PCRF
	rmu      *RMU
	mon      *StatusMonitor

	slotFree     []int
	blocked      bool
	blockedSince int64

	// launchHoldUntil pauses fresh CTA launches after a PCRF depletion
	// event: the free-space monitor (Figure 11) has just signalled
	// overflow, so admitting another CTA — whose own eventual eviction
	// needs the same space — would only deepen the block. Swaps with
	// already-pending CTAs stay allowed (they free as much as they take).
	launchHoldUntil int64

	// DepletionEvents counts switch attempts rejected for lack of PCRF
	// space (Figure 14 diagnostics).
	DepletionEvents int64

	// refBuf is evictStore's reusable live-register scratch; StoreChain
	// copies it into the tag array, so the backing store never outlives
	// the call.
	refBuf []RegRef
}

// NewFineReg builds the policy with the given ACRF/PCRF split. It panics
// if the split does not cover the configured register file — a static
// misconfiguration.
func NewFineReg(cfg sm.Config, hier *mem.Hierarchy, acrfBytes, pcrfBytes int) *FineReg {
	if acrfBytes+pcrfBytes != cfg.RegFileBytes {
		panic(fmt.Sprintf("core: ACRF %d + PCRF %d != register file %d bytes",
			acrfBytes, pcrfBytes, cfg.RegFileBytes))
	}
	pcrf, err := NewPCRF(pcrfBytes / sm.WarpRegBytes)
	if err != nil {
		panic(err)
	}
	return &FineReg{
		cfg:         cfg,
		hier:        hier,
		ACRFBytes:   acrfBytes,
		PCRFBytes:   pcrfBytes,
		CompactLive: true,
		pcrf:        pcrf,
		rmu:         NewRMU(hier),
		mon:         &StatusMonitor{},
	}
}

// Name implements sm.Policy.
func (f *FineReg) Name() string { return "FineReg" }

// PCRFState exposes the PCRF for tests and diagnostics.
func (f *FineReg) PCRFState() *PCRF { return f.pcrf }

// RMUState exposes the RMU for tests and diagnostics.
func (f *FineReg) RMUState() *RMU { return f.rmu }

// Monitor exposes the CTA status monitor.
func (f *FineReg) Monitor() *StatusMonitor { return f.mon }

// KernelStart implements sm.Policy.
func (f *FineReg) KernelStart(s *sm.SM, now int64) {
	f.acrfFree = f.ACRFBytes / sm.WarpRegBytes
	f.pcrf.Reset()
	f.rmu.Reset()
	f.mon.Reset()
	f.blocked = false
	f.launchHoldUntil = 0
	f.slotFree = f.slotFree[:0]
	for i := MonitorSlots - 1; i >= 0; i-- {
		f.slotFree = append(f.slotFree, i)
	}
}

func (f *FineReg) takeSlot() int {
	if len(f.slotFree) == 0 {
		return -1
	}
	s := f.slotFree[len(f.slotFree)-1]
	f.slotFree = f.slotFree[:len(f.slotFree)-1]
	return s
}

func (f *FineReg) putSlot(slot int) { f.slotFree = append(f.slotFree, slot) }

// FillSlots restores ready pending CTAs and launches new ones while the
// ACRF and scheduling resources allow.
func (f *FineReg) FillSlots(s *sm.SM, now int64) {
	cost := s.Meta().RegCostPerCTA()
	for s.CanActivateOne(false) {
		if c := f.readyPending(s, now); c != nil && f.acrfFree >= cost {
			f.restore(s, c, now, 0)
			continue
		}
		if f.acrfFree < cost || !s.CanActivateOne(true) || len(f.slotFree) == 0 {
			return
		}
		c := s.LaunchNew(now, 0)
		if c == nil {
			return
		}
		f.adopt(c)
	}
}

// adopt initializes policy bookkeeping for a newly launched active CTA.
func (f *FineReg) adopt(c *sm.CTA) {
	telACRFLaunches.IncScoped(f.hier.Ops())
	f.acrfFree -= c.RegCost
	info := &ctaInfo{slot: f.takeSlot(), head: -1}
	c.SetPolicyData(info)
	f.mon.Set(info.slot, CtxPipeline, RegACRF)
}

// OnCTAStalled attempts a FineReg switch for the fully stalled CTA c.
func (f *FineReg) OnCTAStalled(s *sm.SM, c *sm.CTA, now int64) {
	f.trySwitch(s, c, now)
}

// trySwitch evicts c's live registers to the PCRF and activates a
// replacement (a ready pending CTA, else a fresh launch), implementing the
// Section V-E procedure including the free-entry arithmetic that counts
// slots released by the outgoing pending CTA.
func (f *FineReg) trySwitch(s *sm.SM, c *sm.CTA, now int64) {
	if c.State != sm.CTAActive {
		return
	}
	in := f.readyPending(s, now)
	canNew := s.Disp.Remaining() > 0 && s.CanParkResident() &&
		len(f.slotFree) > 0
	if in == nil && !canNew {
		return
	}
	live := f.evictDemand(s, c)
	space := f.pcrf.Free()
	if in != nil {
		space += f.info(in).chainLen
	}
	if in == nil {
		// Free-space-monitor admission control (Figure 11): a fresh
		// launch grows the CTA population for good, so the monitor holds
		// back when the file is near overflow. Sub-granule live sets
		// imply a large CTA population whose eviction bursts fill the
		// file faster than the coarse occupancy count reacts, so those
		// launches must leave a granule of slack beyond the eviction at
		// hand; a chain of a granule or more is individually visible to
		// the monitor and is admitted exactly, with the post-overflow
		// hold below as the backstop. Swaps are always exempt: they free
		// as many entries as they consume.
		granule := f.pcrf.Entries() / 16
		if now < f.launchHoldUntil || (live < granule && space-live < granule) {
			return
		}
	}
	if live > space {
		// Section V-B: the stalled CTA must remain in the ACRF until the
		// PCRF drains — the register-depletion stall of Figure 14.
		if !f.blocked {
			f.blocked = true
			f.blockedSince = now
		}
		f.DepletionEvents++
		telDepletion.IncScoped(f.hier.Ops())
		// Overflow means the CTA population has outgrown the PCRF; hold
		// fresh launches for one memory round-trip so pending chains can
		// drain back out instead of piling more CTAs onto a full file.
		f.launchHoldUntil = now + f.hier.DRAM.LatencyCycles
		return
	}
	if in != nil {
		inInfo := f.info(in)
		restored := f.pcrf.ReleaseChainCount(inInfo.head)
		s.Cnt.PCRFReads += int64(restored)
		s.Cnt.RFWrites += int64(restored)
		telPCRFFills.IncScoped(f.hier.Ops())
		telPCRFFillReg.AddScoped(f.hier.Ops(), int64(restored))
		inInfo.head, inInfo.chainLen = -1, 0
		evictBv := f.bitvecDelay(s, c, now)
		f.evictStore(s, c, now)
		// The status monitor initiates the bit-vector lookups the moment
		// it detects the full stall (Section V-B), so an RMU miss fetch
		// proceeds while the outgoing CTA's pipeline drains: the register
		// readout is gated on the slower of the two, not their sum.
		// Restore and eviction then stream through the arbitrator
		// concurrently (Section V-E); warps of the incoming CTA become
		// eligible as soon as their own live registers have been read
		// back, so the visible delay is one warp's worth of chain.
		lat := max(evictBv, f.cfg.SwitchDrainLat) + restoreLat(restored, s.Meta().WarpsPerCTA())
		f.acrfFree -= in.RegCost
		f.mon.Set(inInfo.slot, CtxPipeline, RegACRF)
		s.Reactivate(in, now, lat)
		if t := s.Trace(); t != nil {
			t.RegTransfer(s.ID, in.ID, trace.XferRestoreFromPCRF, restored, restored*sm.WarpRegBytes, now)
		}
	} else {
		evictBv := f.bitvecDelay(s, c, now)
		f.evictStore(s, c, now)
		// Same overlap as above: the miss fetch races the pipeline drain.
		// The fresh CTA's registers are zero-initialized into ACRF banks
		// as the outgoing chain streams to the PCRF, so — as in the swap
		// path — the first incoming warp waits one warp's share of the
		// pipelined eviction, not the whole chain.
		evictLat := max(evictBv, f.cfg.SwitchDrainLat) +
			restoreLat(c.LiveRegs, s.Meta().WarpsPerCTA())
		if nc := s.LaunchNew(now, evictLat); nc != nil {
			f.adopt(nc)
		}
	}
	f.clearBlocked(s, now)
}

// clearBlocked closes a PCRF-depletion window, accounting its cycles.
func (f *FineReg) clearBlocked(s *sm.SM, now int64) {
	if f.blocked {
		s.Cnt.DepletionCycles += now - f.blockedSince
		f.blocked = false
	}
}

// evictDemand returns the PCRF entries CTA c needs: its live registers
// when compaction is on, its full allocation otherwise.
func (f *FineReg) evictDemand(s *sm.SM, c *sm.CTA) int {
	if f.CompactLive {
		return s.Meta().LiveRegsOf(c)
	}
	return c.RegCost
}

// bitvecDelay probes the RMU's bit-vector cache for every distinct stall
// PC of c and returns the worst-case fetch delay.
func (f *FineReg) bitvecDelay(s *sm.SM, c *sm.CTA, now int64) int64 {
	var bvDelay int64
	missesBefore := f.rmu.Misses
	for _, pc := range s.Meta().StallPCs(c) {
		if d := f.rmu.Lookup(pc, now); d > bvDelay {
			bvDelay = d
		}
	}
	if t := s.Trace(); t != nil {
		if fetched := int(f.rmu.Misses - missesBefore); fetched > 0 {
			t.RegTransfer(s.ID, c.ID, trace.XferBitvec, fetched, fetched*bitvecBytes, now)
		}
	}
	return bvDelay
}

// restoreLat is the cycles until the first restored warp may issue: the
// PCRF tag access plus its share of the pipelined chain.
func restoreLat(chainLen, warps int) int64 {
	if chainLen <= 0 {
		return 0
	}
	if warps < 1 {
		warps = 1
	}
	return PCRFTagLat + int64((chainLen+warps-1)/warps)
}

// evictStore moves c's (live) registers into the PCRF, parks the CTA, and
// returns the outbound transfer latency (bit-vector lookups are accounted
// separately via bitvecDelay).
func (f *FineReg) evictStore(s *sm.SM, c *sm.CTA, now int64) int64 {
	refs := f.refBuf[:0]
	if f.CompactLive {
		s.Meta().LiveRefs(c, func(w, r uint8) {
			refs = append(refs, RegRef{Warp: w, Reg: r})
		})
	} else {
		for wi := 0; wi < s.Meta().WarpsPerCTA(); wi++ {
			for r := 0; r < s.Meta().RegsPerThread(); r++ {
				refs = append(refs, RegRef{Warp: uint8(wi), Reg: uint8(r)})
			}
		}
	}
	f.refBuf = refs[:0]
	head, ok := f.pcrf.StoreChain(refs)
	if !ok {
		panic("core: evictStore without sufficient PCRF space (caller must check)")
	}
	s.Cnt.PCRFWrites += int64(len(refs))
	s.Cnt.RFReads += int64(len(refs))
	telPCRFSpills.IncScoped(f.hier.Ops())
	telPCRFSpillReg.AddScoped(f.hier.Ops(), int64(len(refs)))
	if t := s.Trace(); t != nil {
		t.RegTransfer(s.ID, c.ID, trace.XferEvictToPCRF, len(refs), len(refs)*sm.WarpRegBytes, now)
	}
	s.Deactivate(c, sm.CTAPendingPCRF, now)
	f.acrfFree += c.RegCost
	info := f.info(c)
	info.head, info.chainLen = head, len(refs)
	c.LiveRegs = len(refs)
	f.mon.Set(info.slot, CtxSharedMem, RegPCRF)
	return TransferLat(len(refs))
}

// restore reactivates a pending CTA, reading its chain back into the ACRF.
func (f *FineReg) restore(s *sm.SM, c *sm.CTA, now, extraLat int64) {
	info := f.info(c)
	n := f.pcrf.ReleaseChainCount(info.head)
	s.Cnt.PCRFReads += int64(n)
	s.Cnt.RFWrites += int64(n)
	telPCRFFills.IncScoped(f.hier.Ops())
	telPCRFFillReg.AddScoped(f.hier.Ops(), int64(n))
	info.head, info.chainLen = -1, 0
	f.acrfFree -= c.RegCost
	f.mon.Set(info.slot, CtxPipeline, RegACRF)
	s.Reactivate(c, now, restoreLat(n, s.Meta().WarpsPerCTA())+f.cfg.SwitchDrainLat+extraLat)
	if t := s.Trace(); t != nil {
		t.RegTransfer(s.ID, c.ID, trace.XferRestoreFromPCRF, n, n*sm.WarpRegBytes, now)
	}
}

// OnCTAReady resumes the CTA directly when the ACRF has room, or swaps it
// with a fully stalled active CTA.
func (f *FineReg) OnCTAReady(s *sm.SM, c *sm.CTA, now int64) {
	if c.State != sm.CTAPendingPCRF {
		return
	}
	if s.CanActivateOne(false) && f.acrfFree >= c.RegCost {
		f.restore(s, c, now, 0)
		f.clearBlocked(s, now)
		return
	}
	if victim := f.stalledActive(s); victim != nil {
		f.trySwitch(s, victim, now)
	}
}

// OnCTAFinished releases the CTA's ACRF allocation and monitor slot.
func (f *FineReg) OnCTAFinished(s *sm.SM, c *sm.CTA, now int64) {
	f.acrfFree += c.RegCost
	info := f.info(c)
	f.mon.Set(info.slot, CtxNotLaunched, RegNotLaunched)
	f.putSlot(info.slot)
	f.clearBlocked(s, now)
}

// AllowIssue implements sm.Policy.
func (f *FineReg) AllowIssue(s *sm.SM, w *sm.Warp, now int64) bool { return true }

// BlockedOnRegisters implements sm.Policy (Figure 14b accounting).
func (f *FineReg) BlockedOnRegisters() bool { return f.blocked }

func (f *FineReg) info(c *sm.CTA) *ctaInfo {
	info, ok := c.PolicyData().(*ctaInfo)
	if !ok {
		panic("core: CTA without FineReg bookkeeping")
	}
	return info
}

// readyPending returns the best resume candidate per the status monitor's
// switch priority (Section V-B), breaking ties by CTA ID.
func (f *FineReg) readyPending(s *sm.SM, now int64) *sm.CTA {
	var best *sm.CTA
	bestRank := int(^uint(0) >> 1)
	for _, c := range s.Residents() {
		if c.State != sm.CTAPendingPCRF || c.ReadyAt > now {
			continue
		}
		rank := f.mon.SwitchPriority(f.info(c).slot)
		if rank < 0 {
			continue
		}
		if best == nil || rank < bestRank || (rank == bestRank && c.ID < best.ID) {
			best, bestRank = c, rank
		}
	}
	return best
}

func (f *FineReg) stalledActive(s *sm.SM) *sm.CTA {
	var best *sm.CTA
	for _, c := range s.Residents() {
		if c.State == sm.CTAActive && c.FullyStalled() {
			if best == nil || c.ID < best.ID {
				best = c
			}
		}
	}
	return best
}

// ACRFFree exposes the free ACRF warp-registers (tests/diagnostics).
func (f *FineReg) ACRFFree() int { return f.acrfFree }

// AuditAccounting implements sm.SelfAuditing. The PCRF ground truth is
// recomputed through the tag structure itself: each pending CTA's chain is
// walked (read-only) from its head, so a leaked or double-released chain
// shows up as a free-count mismatch. The status monitor is cross-checked
// against the CTA states by counting residents whose 2+2-bit encoding
// matches their sm.CTAState.
func (f *FineReg) AuditAccounting(s *sm.SM) []sm.AuditAccount {
	acrfTotal := f.ACRFBytes / sm.WarpRegBytes
	acrfHeld, chained, monOK := 0, 0, 0
	for _, c := range s.Residents() {
		info := f.info(c)
		switch c.State {
		case sm.CTAActive:
			acrfHeld += c.RegCost
			if f.mon.IsActive(info.slot) {
				monOK++
			}
		case sm.CTAPendingPCRF:
			chained += f.pcrf.ChainLen(info.head)
			if cl, rl := f.mon.Get(info.slot); cl == CtxSharedMem && rl == RegPCRF {
				monOK++
			}
		}
	}
	return []sm.AuditAccount{
		{Name: "acrfFree", Value: f.acrfFree, Expected: acrfTotal - acrfHeld, Min: 0, Max: acrfTotal},
		{Name: "pcrfFree", Value: f.pcrf.Free(), Expected: f.pcrf.Entries() - chained,
			Min: 0, Max: f.pcrf.Entries()},
		{Name: "monitorSlotsFree", Value: len(f.slotFree), Expected: MonitorSlots - len(s.Residents()),
			Min: 0, Max: MonitorSlots},
		{Name: "monitorConsistent", Value: monOK, Expected: len(s.Residents()),
			Min: 0, Max: MonitorSlots},
	}
}
