// Package par provides the synchronization primitive behind the sharded
// run loop (internal/gpu): an ordering Gate that serializes access to
// shared simulator state in canonical SM order while SM Ticks execute on
// parallel shard goroutines.
//
// The determinism argument, in full (DESIGN.md §15 carries the prose
// version):
//
// A global event step Ticks every due SM. In the serial loop the Ticks
// run in ascending SM index order, so all accesses to shared state — the
// L2, the DRAM channel, the grid dispatcher — form one total order:
// program order within an SM's Tick, SM index order across SMs. The
// sharded loop reproduces exactly that order: SM i's Tick may touch
// shared state only after every due SM with index < i has *completed its
// entire Tick*. Per-SM state needs no ordering (nothing outside an SM's
// own Tick mutates it — documented and verified in internal/sm), so the
// only constraint a parallel step must enforce is this shared-state
// order, and enforcing it makes every metric byte-identical to the
// serial loop at any shard count.
//
// Each shard owns the SMs with index ≡ shard (mod S) and visits them in
// ascending order, publishing a per-shard frontier: the SM index it is
// currently at (maxFrontier once done with the step). SM i's first
// shared-state access inside its Tick calls Wait(i), which spins until
// every shard's frontier has reached i — i.e. every SM below i is
// finished. Deadlock is impossible: consider the lowest-indexed SM
// blocked in Wait. It waits on a shard whose frontier is at some SM
// k < i; SM k is not blocked (it is below the lowest blocked index), so
// that shard always progresses. Since frontiers only advance, the wait
// relation is acyclic and the step completes.
//
// Between parallel steps the gate is disarmed and Wait is a single
// atomic load — the serial run loop and low-occupancy steps of a sharded
// run pay one branch per shared access, nothing more.
package par

import (
	"runtime"
	"sync/atomic"
	"time"
)

// maxFrontier marks a shard that has finished its step: every waiter's
// index compares below it.
const maxFrontier = int64(1) << 62

// cacheLinePad separates the per-shard frontiers so the spin loads of one
// shard do not false-share with the stores of another.
type frontier struct {
	v atomic.Int64
	_ [56]byte
}

// Gate is the canonical-order commit gate for one GPU instance. It is
// created unarmed (Wait is a no-op) and armed only while a parallel step
// is in flight. All methods are safe for concurrent use under the
// protocol documented on each.
type Gate struct {
	armed     atomic.Bool
	frontiers []frontier
}

// NewGate returns an unarmed gate. Size must be called before the first
// Arm.
func NewGate() *Gate { return &Gate{} }

// Size fixes the shard count. Call once, before any Arm, from the
// goroutine that will arm the gate.
func (g *Gate) Size(shards int) {
	g.frontiers = make([]frontier, shards)
}

// Arm resets every frontier to "nothing visited yet" and enables
// ordering. Call from the coordinating goroutine while no shard is
// running (between steps).
func (g *Gate) Arm() {
	for i := range g.frontiers {
		g.frontiers[i].v.Store(-1)
	}
	g.armed.Store(true)
}

// Disarm disables ordering after a parallel step has fully completed.
func (g *Gate) Disarm() { g.armed.Store(false) }

// Visit publishes that shard is now at SM index sm: every lower-indexed
// SM owned by shard has completed its Tick. Call before Ticking sm (and
// for skipped, not-due SMs, so waiters behind them unblock).
func (g *Gate) Visit(shard, sm int) {
	g.frontiers[shard].v.Store(int64(sm))
}

// Finish publishes that shard has completed the whole step.
func (g *Gate) Finish(shard int) {
	g.frontiers[shard].v.Store(maxFrontier)
}

// Wait blocks until every due SM with index < sm has completed its Tick
// (all frontiers ≥ sm). It is a no-op when the gate is unarmed, and
// idempotent: frontiers only advance within a step, so repeated calls
// from the same Tick return immediately after the first.
func (g *Gate) Wait(sm int) {
	if !g.armed.Load() {
		return
	}
	target := int64(sm)
	for spin := 0; ; spin++ {
		ok := true
		for i := range g.frontiers {
			if g.frontiers[i].v.Load() < target {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		backoff(spin)
	}
}

// backoff escalates from hot spinning through the scheduler to short
// sleeps, so a stalled peer (GOMAXPROCS below the shard count, a
// preempted worker) cannot livelock the waiter.
func backoff(spin int) {
	switch {
	case spin < 64:
		// hot spin
	case spin < 4096:
		runtime.Gosched()
	default:
		time.Sleep(5 * time.Microsecond)
	}
}

// SpinUntil spins with the same backoff schedule until cond reports
// true. The shard pool uses it for its epoch and completion barriers.
func SpinUntil(cond func() bool) {
	for spin := 0; !cond(); spin++ {
		backoff(spin)
	}
}
