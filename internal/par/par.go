// Package par provides the synchronization primitive behind the sharded
// run loop (internal/gpu): an ordering Gate that serializes access to
// shared simulator state in canonical SM order while SM Ticks execute on
// parallel shard goroutines.
//
// The determinism argument, in full (DESIGN.md §15 carries the prose
// version):
//
// A global event step Ticks every due SM. In the serial loop the Ticks
// run in ascending SM index order, so all accesses to shared state — the
// L2, the DRAM channel, the grid dispatcher — form one total order:
// program order within an SM's Tick, SM index order across SMs. The
// sharded loop reproduces exactly that order: SM i's Tick may touch
// shared state only after every due SM with index < i has *completed its
// entire Tick*. Per-SM state needs no ordering (nothing outside an SM's
// own Tick mutates it — documented and verified in internal/sm), so the
// only constraint a parallel step must enforce is this shared-state
// order, and enforcing it makes every metric byte-identical to the
// serial loop at any shard count.
//
// Each shard owns the SMs with index ≡ shard (mod S) and visits them in
// ascending order, publishing a per-shard frontier: the SM index it is
// currently at (maxFrontier once done with the step). SM i's first
// shared-state access inside its Tick calls Wait(i), which spins until
// every shard's frontier has reached i — i.e. every SM below i is
// finished.
//
// Batched publication: publishing the frontier on every Visit costs one
// cross-core store per SM per step, even when nobody is waiting. Visit
// therefore only *records* the shard's position in shard-private state
// and publishes once every batchVisits positions. The published frontier
// is a conservative lower bound on the true position, so a waiter can
// only over-wait, never under-wait — the set of completed lower SMs it
// observes on wake is exactly the serial one, and byte-identity is
// unaffected. Liveness needs one extra rule: a Wait(sm) that fails its
// first frontier scan flushes the calling shard's own pending position
// before spinning (the caller's shard is sm mod S — SM ownership is
// static), because Wait(sm) requires the caller's own published frontier
// to reach sm. With that rule, deadlock-freedom extends the PR 8
// argument: consider the lowest-indexed SM blocked in Wait. Every shard
// it waits on is either running — and publishes within a bounded batch
// or at Finish — or itself blocked in Wait, in which case it flushed
// before spinning, so its published frontier equals its true position k,
// and k < i means SM k is blocked below the lowest blocked index:
// contradiction. Frontiers only advance, so the wait relation stays
// acyclic and the step completes.
//
// Two refinements keep the uncontended path store- and count-free: Arm
// initializes frontier i to i (shard i owns nothing below SM i, so the
// claim is vacuous) rather than to "nothing", and a Wait whose first
// scan passes returns without flushing or counting — per-shard
// memoization then short-circuits every later Wait of the same Tick
// outright, since frontiers never retreat within a step.
//
// Between parallel steps the gate is disarmed and Wait is a single
// atomic load — the serial run loop and low-occupancy steps of a sharded
// run pay one branch per shared access, nothing more.
package par

import (
	"runtime"
	"sync/atomic"
	"time"

	"finereg/internal/telemetry"
)

// Telemetry (internal/telemetry): gate traffic. Global-only (never
// scoped): the counters measure host-side synchronization cost, not
// simulated work, so they must not perturb per-run Ops deltas (serial
// and sharded runs of one job must report identical Ops).
// par_gate_waits counts contended waits only — episodes whose first
// frontier scan failed and that actually spun; an already-satisfied Wait
// is a read-only scan (or a memoized no-op) and not a sync.
// par_gate_publishes counts frontier stores: batch boundaries, the flush
// inside a contended Wait, and Finish.
var (
	telGateWaits     = telemetry.NewCounter("par_gate_waits")
	telGatePublishes = telemetry.NewCounter("par_gate_publishes")
)

// maxFrontier marks a shard that has finished its step: every waiter's
// index compares below it.
const maxFrontier = int64(1) << 62

// batchVisits is the publication batch: a shard publishes its frontier
// once per this many recorded positions (plus on Finish and on flush-
// before-Wait). Liveness never depends on the batch boundary — a blocked
// shard has flushed and a finished shard has published maxFrontier — so
// the bound is sized for traffic, not correctness: on a paper-scale
// machine (16 SMs) no shard's per-step visit run reaches it and the
// steady-state publish rate is just flush-on-Wait plus one Finish per
// shard, while on larger machines it still bounds how stale a busy
// shard's frontier can get (waiters over-wait by at most a batch of
// gate-free Ticks).
const batchVisits = 16

// cacheLinePad separates the per-shard frontiers so the spin loads of one
// shard do not false-share with the stores of another.
type frontier struct {
	v atomic.Int64
	_ [56]byte
}

// pending is a shard's private, unpublished position. Only the owning
// shard's goroutine touches it while the gate is armed (Arm resets it
// from the coordinator between steps, ordered by the pool's epoch
// protocol), so the fields are plain ints. Padded like frontier so
// neighbouring shards' bookkeeping never false-shares.
type pending struct {
	pos   int64 // last recorded SM index (-1: nothing recorded)
	count int64 // positions recorded since the last publish
	done  int64 // highest SM index whose Wait was satisfied this step
	_     [40]byte
}

// Gate is the canonical-order commit gate for one GPU instance. It is
// created unarmed (Wait is a no-op) and armed only while a parallel step
// is in flight. All methods are safe for concurrent use under the
// protocol documented on each.
type Gate struct {
	armed     atomic.Bool
	frontiers []frontier
	pend      []pending
}

// NewGate returns an unarmed gate. Size must be called before the first
// Arm.
func NewGate() *Gate { return &Gate{} }

// Size fixes the shard count. Call once, before any Arm, from the
// goroutine that will arm the gate.
func (g *Gate) Size(shards int) {
	g.frontiers = make([]frontier, shards)
	g.pend = make([]pending, shards)
}

// Arm resets every frontier and enables ordering. Call from the
// coordinating goroutine while no shard is running (between steps).
// Frontier i starts at i, not at "nothing": shard i's lowest owned SM is
// SM i, so "every owned SM below i has completed" is vacuously true the
// moment the step begins — and waiters whose targets sit below a shard's
// first owned SM (the common case at the start of a round) pass without
// ever blocking on that shard.
func (g *Gate) Arm() {
	for i := range g.frontiers {
		g.frontiers[i].v.Store(int64(i))
		g.pend[i].pos = -1
		g.pend[i].count = 0
		g.pend[i].done = -1
	}
	g.armed.Store(true)
}

// Disarm disables ordering after a parallel step has fully completed.
func (g *Gate) Disarm() { g.armed.Store(false) }

// Armed reports whether a parallel step is in flight. Speculative
// consumers (internal/mem) use it to decide whether a deferred commit
// will have a gate to wait on.
func (g *Gate) Armed() bool { return g.armed.Load() }

// Visit records that shard is now at SM index sm: every lower-indexed SM
// owned by shard has completed its Tick. Call before Ticking sm (and for
// skipped, not-due SMs, so waiters behind them unblock). The position is
// published to other shards only once per batchVisits calls; Wait and
// Finish flush the remainder.
func (g *Gate) Visit(shard, sm int) {
	p := &g.pend[shard]
	p.pos = int64(sm)
	p.count++
	if p.count >= batchVisits {
		g.publish(shard)
	}
}

// publish stores shard's recorded position into its shared frontier and
// resets the batch counter. Caller must be the owning shard's goroutine.
func (g *Gate) publish(shard int) {
	p := &g.pend[shard]
	g.frontiers[shard].v.Store(p.pos)
	p.count = 0
	telGatePublishes.Inc()
}

// Finish publishes that shard has completed the whole step.
func (g *Gate) Finish(shard int) {
	g.pend[shard].count = 0
	g.frontiers[shard].v.Store(maxFrontier)
	telGatePublishes.Inc()
}

// Wait blocks until every due SM with index < sm has completed its Tick
// (all frontiers ≥ sm). It is a no-op when the gate is unarmed, and
// idempotent: frontiers only advance within a step, so repeated calls
// from the same Tick return immediately after the first. Wait must run
// on the goroutine of the shard that owns sm (true by construction:
// shared-state accesses happen inside sm's own Tick) — it first flushes
// that shard's pending position so its own published frontier can reach
// sm.
func (g *Gate) Wait(sm int) {
	if !g.armed.Load() {
		return
	}
	// Memoized fast path: frontiers only advance within a step, so once
	// Wait(sm) has been satisfied every later call from the same Tick (or
	// for a lower SM of the same shard) is free — no frontier scan, no
	// counted sync. done is shard-private like the rest of pend (Wait runs
	// on the owning shard's goroutine).
	shard := sm % len(g.frontiers)
	p := &g.pend[shard]
	target := int64(sm)
	if p.done >= target {
		return
	}
	// Uncontended path: every predecessor already done. Read-only — no
	// frontier store, no counted sync.
	if g.scan(target) {
		p.done = target
		return
	}
	// Contended: publish our own position (Wait(sm) needs our own
	// frontier at sm, and peers blocked behind our unpublished progress
	// need the flush), then spin.
	telGateWaits.Inc()
	if p.count > 0 {
		g.publish(shard)
	}
	for spin := 0; ; spin++ {
		if g.scan(target) {
			p.done = target
			return
		}
		backoff(spin)
	}
}

// scan reports whether every shard's published frontier has reached
// target.
func (g *Gate) scan(target int64) bool {
	for i := range g.frontiers {
		if g.frontiers[i].v.Load() < target {
			return false
		}
	}
	return true
}

// backoff escalates from hot spinning through the scheduler to short
// sleeps, so a stalled peer (GOMAXPROCS below the shard count, a
// preempted worker) cannot livelock the waiter.
func backoff(spin int) {
	switch {
	case spin < 64:
		// hot spin
	case spin < 4096:
		runtime.Gosched()
	default:
		time.Sleep(5 * time.Microsecond)
	}
}

// SpinUntil spins with the same backoff schedule until cond reports
// true. The shard pool uses it for its epoch and completion barriers.
func SpinUntil(cond func() bool) {
	for spin := 0; !cond(); spin++ {
		backoff(spin)
	}
}
