package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestGateDisarmedNeverBlocks: with the gate disarmed (serial mode),
// Wait returns immediately regardless of frontier state.
func TestGateDisarmedNeverBlocks(t *testing.T) {
	g := NewGate()
	g.Size(4)
	g.Wait(100) // would spin forever if the disarmed fast path broke
}

// TestGateCanonicalOrder drives two shards over four SMs (shard 0 owns
// 0 and 2, shard 1 owns 1 and 3) with every SM's "shared access" gated,
// and checks the committed order is exactly 0, 1, 2, 3 — the serial
// total order — no matter how the goroutines interleave.
func TestGateCanonicalOrder(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		g := NewGate()
		g.Size(2)
		g.Arm()

		var mu sync.Mutex
		var order []int
		commit := func(sm int) {
			g.Wait(sm)
			mu.Lock()
			order = append(order, sm)
			mu.Unlock()
		}

		var wg sync.WaitGroup
		for shard := 0; shard < 2; shard++ {
			wg.Add(1)
			go func(shard int) {
				defer wg.Done()
				for sm := shard; sm < 4; sm += 2 {
					g.Visit(shard, sm)
					commit(sm)
				}
				g.Finish(shard)
			}(shard)
		}
		wg.Wait()
		g.Disarm()

		for i, sm := range order {
			if sm != i {
				t.Fatalf("trial %d: commit order %v, want [0 1 2 3]", trial, order)
			}
		}
	}
}

// TestGateFinishReleasesWaiters: a waiter on a high SM index drains once
// every other shard has finished, even shards that never visited that
// index. SM 99 belongs to shard 0 under the static i mod S ownership the
// batched flush relies on (Wait publishes the calling shard's own
// pending position before spinning).
func TestGateFinishReleasesWaiters(t *testing.T) {
	g := NewGate()
	g.Size(3)
	g.Arm()

	var released atomic.Bool
	done := make(chan struct{})
	go func() {
		g.Visit(0, 99)
		g.Wait(99) // blocks until shards 1 and 2 pass 98
		released.Store(true)
		g.Finish(0)
		close(done)
	}()

	if released.Load() {
		t.Fatal("waiter ran before predecessor shards finished")
	}
	g.Finish(1)
	g.Finish(2)
	<-done
	g.Disarm()
}

// TestGateBatchedVisitFlushOnWait: with publication batched, a shard's
// recorded-but-unpublished position must still unblock its own Wait
// (flush-on-Wait), and a peer shard's batched positions publish no later
// than every batchVisits records.
func TestGateBatchedVisitFlushOnWait(t *testing.T) {
	g := NewGate()
	g.Size(2)
	g.Arm()
	// Shard 1 records odd SMs 1..2*batchVisits-1 without ever waiting: at
	// least one batch boundary must have published a frontier ≥ 1.
	for sm := 1; sm < 2*batchVisits; sm += 2 {
		g.Visit(1, sm)
	}
	if got := g.frontiers[1].v.Load(); got < 1 {
		t.Fatalf("peer frontier %d after %d visits, want batched publication ≥ 1", got, batchVisits)
	}
	// Shard 0 records SM 2 (one visit — below the batch) then waits on it:
	// the flush inside Wait must publish its own position or Wait(2) would
	// spin on frontiers[0] forever.
	g.Visit(0, 0)
	g.Visit(0, 2)
	done := make(chan struct{})
	go func() {
		g.Wait(2)
		close(done)
	}()
	<-done
	g.Finish(0)
	g.Finish(1)
	g.Disarm()
}

// TestSpinUntil sanity: returns once the condition flips, including when
// the flip happens from another goroutine after backoff kicks in.
func TestSpinUntil(t *testing.T) {
	var flag atomic.Bool
	go func() {
		for i := 0; i < 1_000_000; i++ {
			_ = i
		}
		flag.Store(true)
	}()
	SpinUntil(flag.Load)
	if !flag.Load() {
		t.Fatal("SpinUntil returned with condition false")
	}
}
