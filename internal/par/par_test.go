package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestGateDisarmedNeverBlocks: with the gate disarmed (serial mode),
// Wait returns immediately regardless of frontier state.
func TestGateDisarmedNeverBlocks(t *testing.T) {
	g := NewGate()
	g.Size(4)
	g.Wait(100) // would spin forever if the disarmed fast path broke
}

// TestGateCanonicalOrder drives two shards over four SMs (shard 0 owns
// 0 and 2, shard 1 owns 1 and 3) with every SM's "shared access" gated,
// and checks the committed order is exactly 0, 1, 2, 3 — the serial
// total order — no matter how the goroutines interleave.
func TestGateCanonicalOrder(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		g := NewGate()
		g.Size(2)
		g.Arm()

		var mu sync.Mutex
		var order []int
		commit := func(sm int) {
			g.Wait(sm)
			mu.Lock()
			order = append(order, sm)
			mu.Unlock()
		}

		var wg sync.WaitGroup
		for shard := 0; shard < 2; shard++ {
			wg.Add(1)
			go func(shard int) {
				defer wg.Done()
				for sm := shard; sm < 4; sm += 2 {
					g.Visit(shard, sm)
					commit(sm)
				}
				g.Finish(shard)
			}(shard)
		}
		wg.Wait()
		g.Disarm()

		for i, sm := range order {
			if sm != i {
				t.Fatalf("trial %d: commit order %v, want [0 1 2 3]", trial, order)
			}
		}
	}
}

// TestGateFinishReleasesWaiters: a waiter on a high SM index drains once
// every shard has finished, even shards that never visited that index.
func TestGateFinishReleasesWaiters(t *testing.T) {
	g := NewGate()
	g.Size(3)
	g.Arm()

	var released atomic.Bool
	done := make(chan struct{})
	go func() {
		g.Visit(2, 99)
		g.Wait(99) // blocks until shards 0 and 1 pass 98
		released.Store(true)
		g.Finish(2)
		close(done)
	}()

	if released.Load() {
		t.Fatal("waiter ran before predecessor shards finished")
	}
	g.Finish(0)
	g.Finish(1)
	<-done
	g.Disarm()
}

// TestSpinUntil sanity: returns once the condition flips, including when
// the flip happens from another goroutine after backoff kicks in.
func TestSpinUntil(t *testing.T) {
	var flag atomic.Bool
	go func() {
		for i := 0; i < 1_000_000; i++ {
			_ = i
		}
		flag.Store(true)
	}()
	SpinUntil(flag.Load)
	if !flag.Load() {
		t.Fatal("SpinUntil returned with condition false")
	}
}
