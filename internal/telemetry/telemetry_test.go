package telemetry

import (
	"sync"
	"testing"
)

func TestCounterRegistrationIdempotent(t *testing.T) {
	a := NewCounter("test_idempotent")
	b := NewCounter("test_idempotent")
	if a != b {
		t.Fatal("re-registration returned a distinct counter")
	}
	a.Add(3)
	if got := b.Value(); got != 3 {
		t.Fatalf("aliased counter reads %d, want 3", got)
	}
}

func TestCountersSorted(t *testing.T) {
	NewCounter("test_sorted_b")
	NewCounter("test_sorted_a")
	NewCounter("test_sorted_c")
	all := Counters()
	for i := 1; i < len(all); i++ {
		if all[i-1].Name() >= all[i].Name() {
			t.Fatalf("counters out of order: %q before %q", all[i-1].Name(), all[i].Name())
		}
	}
}

func TestSnapshotDelta(t *testing.T) {
	c := NewCounter("test_delta")
	c.Add(5)
	before := Capture()
	c.Add(7)
	NewCounter("test_delta_untouched")
	d := Capture().Delta(before)
	if d["test_delta"] != 7 {
		t.Errorf("delta = %d, want 7", d["test_delta"])
	}
	if _, ok := d["test_delta_untouched"]; ok {
		t.Error("zero-delta counter appears in sparse delta")
	}
}

func TestSnapshotAndReset(t *testing.T) {
	c := NewCounter("test_reset")
	c.Add(9)
	s := SnapshotAndReset()
	if s["test_reset"] < 9 {
		t.Errorf("snapshot read %d, want >= 9", s["test_reset"])
	}
	if got := c.Value(); got != 0 {
		t.Errorf("counter not reset: %d", got)
	}
}

// TestTelemetryConcurrentAdds exercises registration, adds, and captures
// from many goroutines at once — run under -race in the serving gate.
func TestTelemetryConcurrentAdds(t *testing.T) {
	const goroutines, addsEach = 8, 1000
	c := NewCounter("test_concurrent")
	start := c.Value()
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < addsEach; i++ {
				c.Inc()
				if i%100 == 0 {
					NewCounter("test_concurrent") // idempotent re-registration
					_ = Capture()
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Value() - start; got != goroutines*addsEach {
		t.Errorf("lost updates: %d adds recorded, want %d", got, goroutines*addsEach)
	}
}
