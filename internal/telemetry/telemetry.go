// Package telemetry is a dependency-free global op-count registry for
// in-run observability: simulator packages (sm, core, regfile, mem)
// register named counters at init time and bump them with a single atomic
// add on the paths they instrument. Nothing is aggregated, sampled, or
// allocated until an observer asks — a process that never snapshots pays
// only the atomic adds, and a snapshot is a cheap read of every counter,
// so periodic deltas (gpu.Run's Progress samples, the serving layer's
// /metrics) yield per-phase time series without touching the timing model.
//
// Counters are process-global by design: with one simulation running they
// attribute exactly to that run; with several running concurrently (the
// run engine's worker pool, the serving fleet) a delta mixes their
// activity and reads as fleet-wide throughput — which is precisely what a
// /metrics scrape wants. Per-run exact attribution lives in stats.Metrics
// for final results and, since the concurrent-attribution fix, in a
// per-run Scope for in-flight progress samples: an instrumented site that
// holds a Scope bumps both the global counter and the run-local cell with
// AddScoped/IncScoped, so a ProgressSample.Ops delta is exact for its own
// run no matter how many simulations share the process.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is one named monotone count. Add/Inc are lock-free; the
// registry lock is only taken at registration and snapshot time.
type Counter struct {
	name string
	id   int // registration index, stable for the process lifetime
	v    atomic.Int64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// IncScoped adds one to the global counter and attributes it to sc
// (nil-safe: with no scope it is exactly Inc).
func (c *Counter) IncScoped(sc *Scope) {
	c.v.Add(1)
	sc.Add(c, 1)
}

// AddScoped adds n to the global counter and attributes it to sc
// (nil-safe: with no scope it is exactly Add).
func (c *Counter) AddScoped(sc *Scope, n int64) {
	c.v.Add(n)
	sc.Add(c, n)
}

var global struct {
	mu     sync.RWMutex
	byName map[string]*Counter
	all    []*Counter // sorted by name
	byID   []*Counter // registration order; Counter.id indexes this
}

// NewCounter registers a counter under name and returns it. Registration
// is idempotent: a second call with the same name returns the existing
// counter, so package-level instrumentation and tests can both call it
// without coordination. Names follow Prometheus conventions
// (lowercase_with_underscores) because the serving layer exposes every
// registered counter as a /metrics series.
func NewCounter(name string) *Counter {
	global.mu.Lock()
	defer global.mu.Unlock()
	if global.byName == nil {
		global.byName = map[string]*Counter{}
	}
	if c, ok := global.byName[name]; ok {
		return c
	}
	c := &Counter{name: name, id: len(global.byID)}
	global.byName[name] = c
	global.byID = append(global.byID, c)
	i := sort.Search(len(global.all), func(i int) bool { return global.all[i].name >= name })
	global.all = append(global.all, nil)
	copy(global.all[i+1:], global.all[i:])
	global.all[i] = c
	return c
}

// Counters returns every registered counter in name order (a stable
// iteration order for /metrics exposition). The slice is a copy; the
// counters are the live instances.
func Counters() []*Counter {
	global.mu.RLock()
	defer global.mu.RUnlock()
	return append([]*Counter(nil), global.all...)
}

// Snapshot is a point-in-time reading of every registered counter.
type Snapshot map[string]int64

// Capture reads all counters. Each counter is read atomically; the set is
// not a consistent cut across counters (adds may land between reads),
// which is fine for monotone deltas.
func Capture() Snapshot {
	global.mu.RLock()
	defer global.mu.RUnlock()
	s := make(Snapshot, len(global.all))
	for _, c := range global.all {
		s[c.name] = c.v.Load()
	}
	return s
}

// Delta returns the per-counter increase since prev, omitting zero
// entries (the usual sample payload is sparse: only the ops a phase
// actually performed appear). Counters absent from prev count from zero.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{}
	for name, v := range s {
		if dv := v - prev[name]; dv != 0 {
			d[name] = dv
		}
	}
	return d
}

// Scope is one run's private view of the registry: a dense array of
// atomic cells indexed by counter registration id. Instrumented sites
// that hold a scope dual-write through AddScoped/IncScoped, so the scope
// accumulates exactly the ops performed on behalf of its run while the
// global counters keep the fleet-wide /metrics series. Cells are atomic
// because a sharded run (internal/gpu) bumps them from several shard
// goroutines at once.
//
// A nil *Scope is valid everywhere and attributes nothing — unobserved
// runs pay only the nil check.
type Scope struct {
	v []atomic.Int64
}

// NewScope returns a scope covering every counter registered so far.
// Counters registered later (impossible for the simulator's init-time
// registrations) are silently not attributed.
func NewScope() *Scope {
	global.mu.RLock()
	n := len(global.byID)
	global.mu.RUnlock()
	return &Scope{v: make([]atomic.Int64, n)}
}

// Add attributes n of counter c to the scope. nil-safe.
func (s *Scope) Add(c *Counter, n int64) {
	if s == nil {
		return
	}
	if c.id < len(s.v) {
		s.v[c.id].Add(n)
	}
}

// Capture reads the scope as a sparse Snapshot (zero cells omitted),
// directly diffable with Snapshot.Delta. A nil scope captures empty.
func (s *Scope) Capture() Snapshot {
	out := Snapshot{}
	if s == nil {
		return out
	}
	global.mu.RLock()
	defer global.mu.RUnlock()
	for id := range s.v {
		if v := s.v[id].Load(); v != 0 {
			out[global.byID[id].name] = v
		}
	}
	return out
}

// SnapshotAndReset atomically swaps every counter to zero and returns the
// values read — the measure-and-clear pattern for single-owner tools
// (micro-benchmarks, tests). Do NOT use it while other simulations may be
// running: it steals their in-progress deltas. Concurrent observers
// should Capture and diff instead.
func SnapshotAndReset() Snapshot {
	global.mu.RLock()
	defer global.mu.RUnlock()
	s := make(Snapshot, len(global.all))
	for _, c := range global.all {
		s[c.name] = c.v.Swap(0)
	}
	return s
}
