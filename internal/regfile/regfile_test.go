package regfile

import (
	"testing"

	"finereg/internal/kernels"
	"finereg/internal/mem"
	"finereg/internal/sm"
)

func newRig(t *testing.T, bench string, grid int, pol sm.Policy) (*sm.SM, *rigDisp) {
	t.Helper()
	prof, err := kernels.ProfileByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	k := kernels.MustBuild(prof, grid)
	hier := mem.NewHierarchy(2<<20, 8, 600, 313, mem.DefaultLatencies())
	disp := &rigDisp{total: grid}
	s := sm.New(0, sm.Default(), hier, disp, pol)
	s.BindKernel(k, 0)
	return s, disp
}

type rigDisp struct{ next, total int }

func (d *rigDisp) NextCTAID() int {
	if d.next >= d.total {
		return -1
	}
	d.next++
	return d.next - 1
}
func (d *rigDisp) Remaining() int { return d.total - d.next }

func runRig(t *testing.T, s *sm.SM, disp *rigDisp, bound int64) int64 {
	t.Helper()
	var now int64
	for now < bound {
		n, _ := s.Tick(now)
		if len(s.Residents()) == 0 && disp.Remaining() == 0 {
			return now
		}
		if n <= now {
			n = now + 1
		}
		now = n
	}
	t.Fatalf("did not finish within %d cycles", bound)
	return 0
}

func TestBaselineRespectsRegisterFile(t *testing.T) {
	// LB: 54 regs x 4 warps = 216 warp-registers per CTA; 2048/216 = 9.
	pol := NewBaseline(sm.Default())
	s, _ := newRig(t, "LB", 64, pol)
	if got := s.ActiveCTAs(); got != 9 {
		t.Errorf("baseline activated %d LB CTAs, want 9 (register-file limit)", got)
	}
	if free := pol.RegsFree(); free != 2048-9*216 {
		t.Errorf("RegsFree = %d, want %d", free, 2048-9*216)
	}
}

func TestBaselineRegisterAccountingBalances(t *testing.T) {
	pol := NewBaseline(sm.Default())
	s, disp := newRig(t, "SG", 24, pol)
	runRig(t, s, disp, 10_000_000)
	if free := pol.RegsFree(); free != 2048 {
		t.Errorf("registers leaked: %d free after drain, want 2048", free)
	}
}

func TestVirtualThreadExceedsBaselineResidency(t *testing.T) {
	// CS is Type-S: VT should pack more resident CTAs than the baseline's
	// 32 scheduling limit by parking stalled ones.
	polB := NewBaseline(sm.Default())
	sB, dB := newRig(t, "CS", 96, polB)
	polV := NewVirtualThread(sm.Default(), mem.NewHierarchy(2<<20, 8, 600, 313, mem.DefaultLatencies()))
	sV, dV := newRig(t, "CS", 96, polV)

	maxResB, maxResV := 0, 0
	var nb, nv int64
	for i := 0; i < 10_000_000; i++ {
		n1, _ := sB.Tick(nb)
		n2, _ := sV.Tick(nv)
		if r := sB.ResidentCTAs(); r > maxResB {
			maxResB = r
		}
		if r := sV.ResidentCTAs(); r > maxResV {
			maxResV = r
		}
		doneB := len(sB.Residents()) == 0 && dB.Remaining() == 0
		doneV := len(sV.Residents()) == 0 && dV.Remaining() == 0
		if doneB && doneV {
			break
		}
		if n1 <= nb {
			n1 = nb + 1
		}
		if n2 <= nv {
			n2 = nv + 1
		}
		if !doneB {
			nb = n1
		}
		if !doneV {
			nv = n2
		}
	}
	if maxResV <= maxResB {
		t.Errorf("VT peak residency %d should exceed baseline %d", maxResV, maxResB)
	}
	if maxResB > 32 {
		t.Errorf("baseline residency %d exceeds the 32-CTA scheduling limit", maxResB)
	}
}

func TestVirtualThreadNoGainForTypeR(t *testing.T) {
	// LB fills the register file at 9 CTAs; VT has no headroom to park
	// extra CTAs, so residency must match the baseline.
	pol := NewVirtualThread(sm.Default(), mem.NewHierarchy(2<<20, 8, 600, 313, mem.DefaultLatencies()))
	s, _ := newRig(t, "LB", 64, pol)
	var now int64
	maxRes := 0
	for i := 0; i < 30_000; i++ {
		n, _ := s.Tick(now)
		if r := s.ResidentCTAs(); r > maxRes {
			maxRes = r
		}
		if n <= now {
			n = now + 1
		}
		now = n
	}
	if maxRes != 9 {
		t.Errorf("VT residency for LB = %d, want 9 (no register headroom)", maxRes)
	}
}

func TestRegDRAMCompletesWithContextTraffic(t *testing.T) {
	prof, _ := kernels.ProfileByName("FD")
	k := kernels.MustBuild(prof, 64)
	hier := mem.NewHierarchy(2<<20, 8, 600, 313, mem.DefaultLatencies())
	disp := &rigDisp{total: 64}
	pol := NewRegDRAM(sm.Default(), hier, 4)
	s := sm.New(0, sm.Default(), hier, disp, pol)
	s.BindKernel(k, 0)
	runRig(t, s, disp, 30_000_000)
	// With an off-chip pool the policy may or may not spill depending on
	// dynamics, but accounting must balance and any context traffic must
	// be register-sized multiples.
	if ctx := hier.DRAM.Bytes(mem.TrafficContext); ctx%int64(k.Profile.WarpsPerCTA*k.Profile.Regs*128) != 0 {
		t.Errorf("context traffic %d is not a whole number of CTA contexts", ctx)
	}
}

func TestRegDRAMCapZeroEqualsVT(t *testing.T) {
	// With no off-chip pool, Reg+DRAM degenerates to Virtual Thread.
	run := func(pol sm.Policy) int64 {
		s, disp := newRig(t, "BI", 48, pol)
		return runRig(t, s, disp, 30_000_000)
	}
	hier := mem.NewHierarchy(2<<20, 8, 600, 313, mem.DefaultLatencies())
	tVT := run(NewVirtualThread(sm.Default(), hier))
	tRD := run(NewRegDRAM(sm.Default(), hier, 0))
	if tVT != tRD {
		t.Errorf("Reg+DRAM with cap 0 finished at %d, VT at %d — should be identical", tRD, tVT)
	}
}

func TestRegMutexPacksMoreCTAs(t *testing.T) {
	// BRS-only allocation admits more CTAs than the baseline's full
	// static allocation for register-limited kernels.
	polB := NewBaseline(sm.Default())
	sB, _ := newRig(t, "LB", 64, polB)
	polM := NewRegMutex(sm.Default(), mem.NewHierarchy(2<<20, 8, 600, 313, mem.DefaultLatencies()), 0.25)
	sM, _ := newRig(t, "LB", 64, polM)
	if sM.ActiveCTAs() <= sB.ActiveCTAs() {
		t.Errorf("RegMutex activated %d CTAs, baseline %d — BRS should admit more",
			sM.ActiveCTAs(), sB.ActiveCTAs())
	}
}

func TestRegMutexSRPAccountingBalances(t *testing.T) {
	pol := NewRegMutex(sm.Default(), mem.NewHierarchy(2<<20, 8, 600, 313, mem.DefaultLatencies()), 0.25)
	s, disp := newRig(t, "SY2", 48, pol)
	runRig(t, s, disp, 50_000_000)
	if used := pol.SRPInUse(); used != 0 {
		t.Errorf("SRP leaked: %d warp-registers still granted after drain", used)
	}
}

func TestRegMutexCompletesUnderHeavyContention(t *testing.T) {
	// A large SRP fraction shrinks the BRS below per-warp demand; the
	// emergency overdraft must still guarantee completion.
	pol := NewRegMutex(sm.Default(), mem.NewHierarchy(2<<20, 8, 600, 313, mem.DefaultLatencies()), 0.35)
	s, disp := newRig(t, "SY2", 96, pol)
	runRig(t, s, disp, 120_000_000)
	if pol.DeniedIssues == 0 {
		t.Error("expected SRP contention denials at SRP fraction 0.35")
	}
	if s.Cnt.DepletionCycles == 0 {
		t.Error("expected depletion stall cycles under contention")
	}
}

func TestRegMutexSRPFracClamped(t *testing.T) {
	if p := NewRegMutex(sm.Default(), nil, -1); p.SRPFrac != 0 {
		t.Errorf("negative SRP fraction should clamp to 0, got %v", p.SRPFrac)
	}
	if p := NewRegMutex(sm.Default(), nil, 2); p.SRPFrac != 0.9 {
		t.Errorf("huge SRP fraction should clamp to 0.9, got %v", p.SRPFrac)
	}
}

// TestRegDRAMDMAAllowedSizeAware is the regression test for the size-blind
// slack check: admission must account for the transfer's own service time,
// not just the pre-existing channel backlog, so a full CTA context is
// denied under backlog a small transfer still clears.
func TestRegDRAMDMAAllowedSizeAware(t *testing.T) {
	cfg := sm.Default() // SwitchDrainLat 30 → slack threshold 300 cycles
	hier := mem.NewHierarchy(2<<20, 8, 600, 313, mem.DefaultLatencies())
	r := NewRegDRAM(cfg, hier, 4)

	const (
		small = 256      // sub-cycle service at 313 B/cycle
		full  = 27 << 10 // a full CTA context: ~88 cycles of service
	)

	// Empty channel: both sizes admitted.
	if !r.dmaAllowed(small, 0) || !r.dmaAllowed(full, 0) {
		t.Fatal("empty channel must admit both transfer sizes")
	}

	// 250 cycles of backlog: 250 + 0.8 clears the 300-cycle threshold,
	// 250 + 88 does not. The old size-blind check admitted both.
	hier.DRAM.Access(0, 250*313, mem.TrafficDemand)
	if !r.dmaAllowed(small, 0) {
		t.Error("small transfer denied under moderate backlog")
	}
	if r.dmaAllowed(full, 0) {
		t.Error("full context admitted although backlog + its own service exceeds the threshold")
	}

	// Saturated channel (~350 cycles of backlog): everything is denied.
	hier.DRAM.Access(0, 100*313, mem.TrafficDemand)
	if r.dmaAllowed(small, 0) {
		t.Error("small transfer admitted on a saturated channel")
	}

	// The pacing window denies regardless of channel state; once it and
	// the backlog have both passed, transfers flow again.
	r.nextDMA = 1000
	if r.dmaAllowed(small, 999) {
		t.Error("transfer admitted inside the pacing window")
	}
	if !r.dmaAllowed(full, 1000) {
		t.Error("transfer denied after backlog and pacing window elapsed")
	}
}
