package regfile

import (
	"math"

	"finereg/internal/mem"
	"finereg/internal/sm"
)

// RegMutex implements the RegMutex policy [17] merged with Virtual Thread
// (the paper's "VT+RegMutex" configuration): the register file is split
// into per-warp base register sets (BRS) and a shared register pool (SRP).
// Each CTA statically allocates only its BRS, so more CTAs fit; when a
// warp's live register demand exceeds its BRS, it must hold an SRP grant
// to issue. Grants are not released while the warp is stalled on memory —
// the contention behaviour the paper measures in Figure 14.
type RegMutex struct {
	cfg  sm.Config
	hier *mem.Hierarchy
	vt   bool // merge Virtual Thread residency/switching
	// SRPFrac is the fraction of the register file dedicated to the SRP.
	SRPFrac float64

	brsRegs  int // BRS registers per thread
	brsFree  int // warp-registers left in the BRS partition
	srpFree  int // warp-registers left in the SRP
	srpTotal int

	grants       map[*sm.Warp]int
	blocked      bool
	lastInstr    int64
	lastMove     int64
	lastDeniedAt int64
	// Overdrafts counts emergency SRP oversubscriptions used to break
	// allocation deadlock (rare; see AllowIssue).
	Overdrafts int64

	// DeniedIssues counts AllowIssue rejections (Figure 14 diagnostics).
	DeniedIssues int64
}

// NewRegMutex returns a VT+RegMutex policy with srpFrac of the register
// file as the shared pool.
func NewRegMutex(cfg sm.Config, hier *mem.Hierarchy, srpFrac float64) *RegMutex {
	if srpFrac < 0 {
		srpFrac = 0
	}
	if srpFrac > 0.9 {
		srpFrac = 0.9
	}
	return &RegMutex{cfg: cfg, hier: hier, vt: true, SRPFrac: srpFrac}
}

// Name implements sm.Policy.
func (r *RegMutex) Name() string { return "VT+RegMutex" }

// KernelStart sizes the BRS/SRP split for the bound kernel.
func (r *RegMutex) KernelStart(s *sm.SM, now int64) {
	total := r.cfg.TotalWarpRegs()
	r.srpTotal = int(float64(total) * r.SRPFrac)
	r.srpFree = r.srpTotal
	r.brsFree = total - r.srpTotal
	// The BRS shrinks twice as fast as the SRP grows: carving srpFrac of
	// the file into the shared pool only pays off when per-warp static
	// allocations shrink by more than the pool takes, so extra CTAs fit.
	// (RegMutex's premise is that warps rarely need their full
	// allocation at once.)
	regs := s.Meta().RegsPerThread()
	r.brsRegs = int(math.Ceil(float64(regs) * (1 - 2*r.SRPFrac)))
	if minBRS := int(math.Ceil(float64(regs) / 4)); r.brsRegs < minBRS {
		r.brsRegs = minBRS
	}
	if r.brsRegs > regs {
		r.brsRegs = regs
	}
	r.grants = make(map[*sm.Warp]int)
	r.blocked = false
	r.lastInstr, r.lastMove = -1, 0
	r.lastDeniedAt = -1
}

// Note: parked (pending) CTAs deliberately KEEP their SRP grants — their
// register values still occupy the shared pool. This is the contention
// the paper measures in Figure 14(b): "when the execution of a warp is
// stalled by long-latency memory instructions, it continues to occupy SRP
// and hinders other warps from scheduling". The emergency overdraft in
// AllowIssue bounds the resulting allocation deadlock.

// brsCost is the per-CTA static allocation in warp-registers.
func (r *RegMutex) brsCost(s *sm.SM) int { return s.Meta().WarpsPerCTA() * r.brsRegs }

// FillSlots launches/resumes like Virtual Thread, but CTAs only charge
// their BRS.
func (r *RegMutex) FillSlots(s *sm.SM, now int64) {
	cost := r.brsCost(s)
	for s.CanActivateOne(false) {
		if c := readyPending(s, sm.CTAPendingRF, now); c != nil {
			s.Reactivate(c, now, r.cfg.SwitchDrainLat)
			continue
		}
		if !s.CanActivateOne(true) || r.brsFree < cost {
			return
		}
		if s.LaunchNew(now, 0) == nil {
			return
		}
		r.brsFree -= cost
	}
}

// OnCTAStalled performs Virtual Thread switching over the BRS partition.
// A stalled CTA's SRP grants remain held (RegMutex does not release SRP on
// memory stalls), which is exactly the contention source of Figure 14.
func (r *RegMutex) OnCTAStalled(s *sm.SM, c *sm.CTA, now int64) {
	if !r.vt {
		return
	}
	cost := r.brsCost(s)
	in := readyPending(s, sm.CTAPendingRF, now)
	canLaunch := s.Disp.Remaining() > 0 && r.brsFree >= cost && s.CanParkResident() &&
		!launchSaturated(r.hier, &r.cfg, now)
	if in == nil && !canLaunch {
		return
	}
	s.Deactivate(c, sm.CTAPendingRF, now)
	if in != nil {
		s.Reactivate(in, now, r.cfg.SwitchDrainLat)
		return
	}
	if s.LaunchNew(now, r.cfg.SwitchDrainLat) != nil {
		r.brsFree -= cost
	}
}

// OnCTAReady implements sm.Policy like Virtual Thread.
func (r *RegMutex) OnCTAReady(s *sm.SM, c *sm.CTA, now int64) {
	if s.CanActivateOne(false) {
		s.Reactivate(c, now, r.cfg.SwitchDrainLat)
		return
	}
	if victim := stalledActive(s); victim != nil {
		s.Deactivate(victim, sm.CTAPendingRF, now)
		s.Reactivate(c, now, r.cfg.SwitchDrainLat)
	}
}

// OnCTAFinished releases the BRS allocation and all SRP grants the CTA's
// warps still hold.
func (r *RegMutex) OnCTAFinished(s *sm.SM, c *sm.CTA, now int64) {
	r.brsFree += r.brsCost(s)
	for _, w := range c.Warps {
		if g := r.grants[w]; g > 0 {
			r.srpFree += g
			delete(r.grants, w)
		}
	}
	if r.srpFree > 0 {
		r.blocked = false
	}
}

// AllowIssue acquires or releases SRP registers so the warp holds exactly
// its live register demand above the BRS (in-flight values in high
// registers, plus the register the decoded instruction defines). A warp
// that cannot acquire its demand is denied issue; a warp that acquires and
// then stalls on memory keeps the grant — RegMutex does not release SRP on
// stalls, which is the Figure 14 contention.
func (r *RegMutex) AllowIssue(s *sm.SM, w *sm.Warp, now int64) bool {
	need := s.Meta().HighPressure(w.PC, r.brsRegs)
	if s.Cnt.Instructions != r.lastInstr {
		r.lastInstr, r.lastMove = s.Cnt.Instructions, now
	}
	grant := r.grants[w]
	switch {
	case need > grant:
		delta := need - grant
		if delta > r.srpFree {
			// Emergency overdraft: if the whole SM has made no progress
			// for a long window, SRP allocation has deadlocked (every
			// holder needs more than remains). Oversubscribe one warp to
			// guarantee forward progress; the debt repays on release.
			if now-r.lastMove > 2000 {
				r.Overdrafts++
				r.srpFree -= delta
				r.grants[w] = need
				return true
			}
			r.blocked = true
			r.DeniedIssues++
			if now != r.lastDeniedAt {
				s.Cnt.DepletionCycles++
				r.lastDeniedAt = now
			}
			return false
		}
		r.srpFree -= delta
		r.grants[w] = need
	case need < grant:
		r.srpFree += grant - need
		if need == 0 {
			delete(r.grants, w)
		} else {
			r.grants[w] = need
		}
		r.blocked = false
	}
	return true
}

// BlockedOnRegisters reports SRP depletion with schedulable work.
func (r *RegMutex) BlockedOnRegisters() bool { return r.blocked }

// SRPInUse returns the currently granted SRP warp-registers (tests).
func (r *RegMutex) SRPInUse() int { return r.srpTotal - r.srpFree }

// AuditAccounting implements sm.SelfAuditing. brsFree is checked against
// the resident count times the per-CTA BRS cost. srpFree is checked as the
// conservation identity srpTotal - Σ grants; its lower bound is widened to
// the total granted amount because the emergency overdraft in AllowIssue
// deliberately drives srpFree negative to break allocation deadlock.
func (r *RegMutex) AuditAccounting(s *sm.SM) []sm.AuditAccount {
	brsTotal := r.cfg.TotalWarpRegs() - r.srpTotal
	granted := 0
	for _, g := range r.grants {
		granted += g
	}
	return []sm.AuditAccount{
		{Name: "brsFree", Value: r.brsFree, Expected: brsTotal - r.brsCost(s)*len(s.Residents()),
			Min: 0, Max: brsTotal},
		{Name: "srpFree", Value: r.srpFree, Expected: r.srpTotal - granted,
			Min: -granted, Max: r.srpTotal},
	}
}
