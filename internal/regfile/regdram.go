package regfile

import (
	"finereg/internal/mem"
	"finereg/internal/sm"
	"finereg/internal/telemetry"
	"finereg/internal/trace"
)

// Telemetry (internal/telemetry): Reg+DRAM's off-chip context paging —
// spill-out and prefetch-in DMA transfers with their byte volume — so a
// live scrape shows when a fleet's pending pools start thrashing through
// the DRAM channel.
var (
	telDMAOut      = telemetry.NewCounter("regdram_dma_spills")
	telDMAIn       = telemetry.NewCounter("regdram_dma_prefetches")
	telDMAOutBytes = telemetry.NewCounter("regdram_dma_spill_bytes")
	telDMAInBytes  = telemetry.NewCounter("regdram_dma_prefetch_bytes")
)

// dramInfo is RegDRAM's per-CTA bookkeeping for off-chip pending CTAs.
type dramInfo struct {
	// prefetchDone is the cycle the inbound register DMA completes; zero
	// while the context still sits in DRAM un-fetched.
	prefetchDone int64
}

// RegDRAM implements the Reg+DRAM configuration (Zorua-like [39]): Virtual
// Thread's in-RF residency plus an off-chip pending pool. A stalled CTA
// with no in-RF replacement has its full register context DMA'd to DRAM
// (overlapped with execution — the cost is channel bandwidth, which is why
// the paper's Figure 15 measures this policy by its traffic) and a new CTA
// takes over its allocation. When an off-chip CTA's dependencies resolve,
// its context is prefetched back and it swaps with the next stalled active
// CTA.
type RegDRAM struct {
	cfg  sm.Config
	hier *mem.Hierarchy

	regsFree int
	dramUsed int
	nextDMA  int64
	// DRAMCap bounds the off-chip pending CTAs per SM (the paper tuned
	// this per application; experiments sweep it).
	DRAMCap int
}

// NewRegDRAM returns a Reg+DRAM policy with the given off-chip pool cap.
func NewRegDRAM(cfg sm.Config, hier *mem.Hierarchy, dramCap int) *RegDRAM {
	if dramCap < 0 {
		dramCap = 0
	}
	return &RegDRAM{cfg: cfg, hier: hier, DRAMCap: dramCap}
}

// Name implements sm.Policy.
func (r *RegDRAM) Name() string { return "Reg+DRAM" }

// KernelStart implements sm.Policy.
func (r *RegDRAM) KernelStart(s *sm.SM, now int64) {
	r.regsFree = r.cfg.TotalWarpRegs()
	r.dramUsed = 0
	r.nextDMA = 0
}

// dmaAllowed paces context DMA: the engine runs only when the off-chip
// channel has slack and a minimum interval has passed since this SM's last
// context transfer. Without pacing, stall-rate context swapping saturates
// the channel and starves demand traffic — the degenerate behaviour the
// paper's Figure 15 analysis warns about. The slack test is size-aware:
// what must fit under the threshold is the channel's backlog plus this
// transfer's own service time, so a full 27 KB context is admitted under
// strictly less pre-existing backlog than a small one.
func (r *RegDRAM) dmaAllowed(bytes int, now int64) bool {
	if now < r.nextDMA {
		return false
	}
	service := float64(bytes) / r.hier.DRAM.BytesPerCycle
	return r.hier.DRAM.QueueDelay(now)+service <= float64(10*r.cfg.SwitchDrainLat)
}

// chargeDMA advances the pacing window after a context transfer.
func (r *RegDRAM) chargeDMA(bytes int, now int64) {
	service := int64(2 * float64(bytes) / r.hier.DRAM.BytesPerCycle)
	// Pace to a few percent of the per-SM channel share so context
	// traffic stays in the Figure 15 range instead of starving demand.
	r.nextDMA = now + 1200*service
}

func (r *RegDRAM) info(c *sm.CTA) *dramInfo {
	if d, ok := c.PolicyData().(*dramInfo); ok {
		return d
	}
	d := &dramInfo{}
	c.SetPolicyData(d)
	return d
}

// ctxBytes is the full register context size of one CTA.
func ctxBytes(c *sm.CTA) int { return c.RegCost * sm.WarpRegBytes }

// pagedIn reports whether an off-chip CTA's registers have been fetched
// back on-chip (its inbound DMA completed).
func (r *RegDRAM) pagedIn(c *sm.CTA, now int64) bool {
	d := r.info(c)
	return d.prefetchDone > 0 && now >= d.prefetchDone
}

// readyDRAM returns a DRAM-pending CTA whose registers are prefetched and
// whose warps are ready, or nil.
func (r *RegDRAM) readyDRAM(s *sm.SM, now int64) *sm.CTA {
	var best *sm.CTA
	for _, c := range s.Residents() {
		if c.State == sm.CTAPendingDRAM && c.ReadyAt <= now && r.pagedIn(c, now) {
			if best == nil || c.ID < best.ID {
				best = c
			}
		}
	}
	return best
}

// FillSlots behaves like Virtual Thread, additionally admitting prefetched
// off-chip CTAs when registers free up.
func (r *RegDRAM) FillSlots(s *sm.SM, now int64) {
	cost := s.Meta().RegCostPerCTA()
	for s.CanActivateOne(false) {
		if c := readyPending(s, sm.CTAPendingRF, now); c != nil {
			s.Reactivate(c, now, r.cfg.SwitchDrainLat)
			continue
		}
		if c := r.readyDRAM(s, now); c != nil && r.regsFree >= cost {
			r.regsFree -= cost
			r.dramUsed--
			r.info(c).prefetchDone = 0
			s.Reactivate(c, now, r.cfg.SwitchDrainLat)
			continue
		}
		if !s.CanActivateOne(true) || r.regsFree < cost {
			return
		}
		if s.LaunchNew(now, 0) == nil {
			return
		}
		r.regsFree -= cost
	}
}

// spillOut parks an active CTA's registers in DRAM; the outbound DMA is
// overlapped with execution and charged as context traffic.
func (r *RegDRAM) spillOut(s *sm.SM, c *sm.CTA, now int64) {
	telDMAOut.IncScoped(r.hier.Ops())
	telDMAOutBytes.AddScoped(r.hier.Ops(), int64(ctxBytes(c)))
	r.hier.TransferOverlapped(now, ctxBytes(c), mem.TrafficContext)
	r.chargeDMA(ctxBytes(c), now)
	if t := s.Trace(); t != nil {
		t.RegTransfer(s.ID, c.ID, trace.XferSpillToDRAM, c.RegCost, ctxBytes(c), now)
	}
	s.Deactivate(c, sm.CTAPendingDRAM, now)
	r.info(c).prefetchDone = 0
	r.dramUsed++
	r.regsFree += c.RegCost
}

// worthSpilling applies the absence guard: the victim must be away longer
// than the round trip costs, or paging it out is a pure loss. Pacing is
// NOT applied here — bringing an already-prefetched CTA home must never
// be throttled, or it sits trapped off-chip on the critical path.
func (r *RegDRAM) worthSpilling(c *sm.CTA, now int64) bool {
	wake := c.EarliestWake()
	return wake < 0 || wake-now >= r.spillCost(ctxBytes(c), now)
}

// OnCTAStalled switches within the register file when possible; otherwise
// it spills the stalled CTA off-chip to admit a prefetched DRAM CTA or a
// fresh launch.
func (r *RegDRAM) OnCTAStalled(s *sm.SM, c *sm.CTA, now int64) {
	cost := s.Meta().RegCostPerCTA()

	// 1. Cheap in-RF swap (Virtual Thread behaviour).
	if in := readyPending(s, sm.CTAPendingRF, now); in != nil {
		s.Deactivate(c, sm.CTAPendingRF, now)
		s.Reactivate(in, now, r.cfg.SwitchDrainLat)
		return
	}
	if s.Disp.Remaining() > 0 && r.regsFree >= cost && s.CanParkResident() {
		s.Deactivate(c, sm.CTAPendingRF, now)
		if s.LaunchNew(now, r.cfg.SwitchDrainLat) != nil {
			r.regsFree -= cost
		}
		return
	}

	// 2. Swap with a prefetched off-chip CTA: the victim pages out
	// (overlapped) and the incoming CTA takes over its allocation.
	if in := r.readyDRAM(s, now); in != nil && r.worthSpilling(c, now) {
		r.spillOut(s, c, now)
		r.regsFree -= cost
		r.dramUsed--
		r.info(in).prefetchDone = 0
		s.Reactivate(in, now, r.cfg.SwitchDrainLat)
		return
	}

	// 3. Spill to make room for a fresh CTA — only when the victim will be
	// away long enough to amortize the channel cost (including backlog),
	// which keeps spilling self-limiting under contention.
	if s.Disp.Remaining() > 0 && r.dramUsed < r.DRAMCap && s.CanParkResident() &&
		r.dmaAllowed(ctxBytes(c), now) && r.worthSpilling(c, now) {
		r.spillOut(s, c, now)
		if s.LaunchNew(now, r.cfg.SwitchDrainLat) != nil {
			r.regsFree -= cost
		}
	}
}

// OnCTAReady fires twice for off-chip CTAs: once when the warps' data
// dependencies resolve (starting the inbound prefetch) and once when the
// prefetch DMA completes (attempting activation).
func (r *RegDRAM) OnCTAReady(s *sm.SM, c *sm.CTA, now int64) {
	if c.State == sm.CTAPendingRF {
		if s.CanActivateOne(false) {
			s.Reactivate(c, now, r.cfg.SwitchDrainLat)
		} else if victim := stalledActive(s); victim != nil {
			s.Deactivate(victim, sm.CTAPendingRF, now)
			s.Reactivate(c, now, r.cfg.SwitchDrainLat)
		}
		return
	}
	if c.State != sm.CTAPendingDRAM {
		return
	}
	d := r.info(c)
	if d.prefetchDone == 0 {
		// Prefetch is never paced: a CTA already off-chip must come home
		// as soon as it is runnable.
		telDMAIn.IncScoped(r.hier.Ops())
		telDMAInBytes.AddScoped(r.hier.Ops(), int64(ctxBytes(c)))
		d.prefetchDone = r.hier.TransferOverlapped(now, ctxBytes(c), mem.TrafficContext)
		if t := s.Trace(); t != nil {
			t.RegTransfer(s.ID, c.ID, trace.XferPrefetchFromDRAM, c.RegCost, ctxBytes(c), now)
		}
		if d.prefetchDone > now {
			s.ScheduleEvent(d.prefetchDone, c)
			return
		}
		d.prefetchDone = now
	}
	if now < d.prefetchDone {
		return
	}
	cost := s.Meta().RegCostPerCTA()
	if s.CanActivateOne(false) && r.regsFree >= cost {
		r.regsFree -= cost
		r.dramUsed--
		d.prefetchDone = 0
		s.Reactivate(c, now, r.cfg.SwitchDrainLat)
		return
	}
	if victim := stalledActive(s); victim != nil && r.worthSpilling(victim, now) {
		r.spillOut(s, victim, now)
		r.regsFree -= cost
		r.dramUsed--
		d.prefetchDone = 0
		s.Reactivate(c, now, r.cfg.SwitchDrainLat)
	}
}

// OnCTAFinished releases the CTA's register allocation.
func (r *RegDRAM) OnCTAFinished(s *sm.SM, c *sm.CTA, now int64) {
	r.regsFree += c.RegCost
}

// AllowIssue implements sm.Policy.
func (r *RegDRAM) AllowIssue(s *sm.SM, w *sm.Warp, now int64) bool { return true }

// BlockedOnRegisters implements sm.Policy.
func (r *RegDRAM) BlockedOnRegisters() bool { return false }

// spillCost estimates the channel cycles a register round trip costs right
// now: both transfers plus the current backlog and pipeline drains.
func (r *RegDRAM) spillCost(bytes int, now int64) int64 {
	return int64(float64(2*bytes)/r.hier.DRAM.BytesPerCycle+r.hier.DRAM.QueueDelay(now)) +
		2*r.cfg.SwitchDrainLat
}

// AuditAccounting implements sm.SelfAuditing: active and in-RF pending CTAs
// hold their full allocation; DRAM-pending CTAs hold none but occupy the
// bounded off-chip pool.
func (r *RegDRAM) AuditAccounting(s *sm.SM) []sm.AuditAccount {
	total := r.cfg.TotalWarpRegs()
	held, offChip := 0, 0
	for _, c := range s.Residents() {
		switch c.State {
		case sm.CTAActive, sm.CTAPendingRF:
			held += c.RegCost
		case sm.CTAPendingDRAM:
			offChip++
		}
	}
	return []sm.AuditAccount{
		{Name: "regsFree", Value: r.regsFree, Expected: total - held, Min: 0, Max: total},
		{Name: "dramUsed", Value: r.dramUsed, Expected: offChip, Min: 0, Max: r.DRAMCap},
	}
}
