// Package regfile implements the register-file management policies FineReg
// is evaluated against (paper Section VI): the conventional Baseline,
// Virtual Thread [45], Reg+DRAM (Zorua-like [39]), and RegMutex [17]
// merged with Virtual Thread. The FineReg policy itself lives in
// internal/core.
//
// Each policy instance is attached to one SM and owns that SM's
// register-file accounting in warp-registers (128-byte units: one
// architectural register across a 32-lane warp).
package regfile

import (
	"finereg/internal/sm"
)

// Baseline is the conventional GPU: CTAs are launched while every resource
// (scheduling slots, register file, shared memory) has room, registers are
// allocated for a CTA's lifetime, and there is no CTA switching.
type Baseline struct {
	cfg      sm.Config
	regsFree int
}

// NewBaseline returns a Baseline policy for an SM with the given config.
func NewBaseline(cfg sm.Config) *Baseline { return &Baseline{cfg: cfg} }

// Name implements sm.Policy.
func (b *Baseline) Name() string { return "Baseline" }

// KernelStart implements sm.Policy.
func (b *Baseline) KernelStart(s *sm.SM, now int64) {
	b.regsFree = b.cfg.TotalWarpRegs()
}

// FillSlots launches CTAs until a scheduling resource or the register file
// is exhausted.
func (b *Baseline) FillSlots(s *sm.SM, now int64) {
	cost := s.Meta().RegCostPerCTA()
	for s.CanActivateOne(true) && b.regsFree >= cost {
		if s.LaunchNew(now, 0) == nil {
			return
		}
		b.regsFree -= cost
	}
}

// OnCTAStalled implements sm.Policy; the baseline simply waits the stall
// out.
func (b *Baseline) OnCTAStalled(s *sm.SM, c *sm.CTA, now int64) {}

// OnCTAReady implements sm.Policy (the baseline never has pending CTAs).
func (b *Baseline) OnCTAReady(s *sm.SM, c *sm.CTA, now int64) {}

// OnCTAFinished releases the CTA's registers.
func (b *Baseline) OnCTAFinished(s *sm.SM, c *sm.CTA, now int64) {
	b.regsFree += c.RegCost
}

// AllowIssue implements sm.Policy.
func (b *Baseline) AllowIssue(s *sm.SM, w *sm.Warp, now int64) bool { return true }

// BlockedOnRegisters implements sm.Policy.
func (b *Baseline) BlockedOnRegisters() bool { return false }

// RegsFree exposes the remaining register capacity (tests, Figure 4's
// active-thread accounting).
func (b *Baseline) RegsFree() int { return b.regsFree }

// AuditAccounting implements sm.SelfAuditing: every resident CTA holds its
// full static allocation for its lifetime.
func (b *Baseline) AuditAccounting(s *sm.SM) []sm.AuditAccount {
	total := b.cfg.TotalWarpRegs()
	held := 0
	for _, c := range s.Residents() {
		held += c.RegCost
	}
	return []sm.AuditAccount{
		{Name: "regsFree", Value: b.regsFree, Expected: total - held, Min: 0, Max: total},
	}
}
