package regfile

import (
	"finereg/internal/mem"
	"finereg/internal/sm"
)

// launchSaturated reports whether the off-chip channel is so backlogged
// that launching an additional (cold) CTA would only lengthen everyone's
// queues: on a bandwidth-bound phase, extra TLP cannot help, so switching
// policies keep swapping ready work but stop admitting new CTAs.
func launchSaturated(hier *mem.Hierarchy, cfg *sm.Config, now int64) bool {
	return hier.DRAM.QueueDelay(now) > float64(20*cfg.SwitchDrainLat)
}

// VirtualThread implements the Virtual Thread policy [45]: CTAs keep being
// launched until the register file (or shared memory) is full — beyond the
// scheduling limit — and stalled active CTAs are context-switched with
// ready pending ones. Pending CTAs keep their full register allocation in
// the register file; only the pipeline context moves (to shared memory),
// so a switch costs just the drain/refill latency.
type VirtualThread struct {
	cfg      sm.Config
	hier     *mem.Hierarchy
	regsFree int
}

// NewVirtualThread returns a Virtual Thread policy.
func NewVirtualThread(cfg sm.Config, hier *mem.Hierarchy) *VirtualThread {
	return &VirtualThread{cfg: cfg, hier: hier}
}

// Name implements sm.Policy.
func (v *VirtualThread) Name() string { return "VT" }

// KernelStart implements sm.Policy.
func (v *VirtualThread) KernelStart(s *sm.SM, now int64) {
	v.regsFree = v.cfg.TotalWarpRegs()
}

// FillSlots activates ready pending CTAs first (their registers are
// already resident) and then launches new CTAs while the register file has
// space.
func (v *VirtualThread) FillSlots(s *sm.SM, now int64) {
	cost := s.Meta().RegCostPerCTA()
	for s.CanActivateOne(false) {
		if c := readyPending(s, sm.CTAPendingRF, now); c != nil {
			s.Reactivate(c, now, v.cfg.SwitchDrainLat)
			continue
		}
		if !s.CanActivateOne(true) || v.regsFree < cost {
			return
		}
		if s.LaunchNew(now, 0) == nil {
			return
		}
		v.regsFree -= cost
	}
}

// OnCTAStalled evicts the stalled CTA (registers stay in the RF) whenever
// a replacement exists: a ready pending CTA, or an unlaunched CTA that
// still fits in the register file.
func (v *VirtualThread) OnCTAStalled(s *sm.SM, c *sm.CTA, now int64) {
	cost := s.Meta().RegCostPerCTA()
	in := readyPending(s, sm.CTAPendingRF, now)
	canLaunch := s.Disp.Remaining() > 0 && v.regsFree >= cost && s.CanParkResident() &&
		!launchSaturated(v.hier, &v.cfg, now)
	if in == nil && !canLaunch {
		return
	}
	s.Deactivate(c, sm.CTAPendingRF, now)
	if in != nil {
		s.Reactivate(in, now, v.cfg.SwitchDrainLat)
		return
	}
	if s.LaunchNew(now, v.cfg.SwitchDrainLat) != nil {
		v.regsFree -= cost
	}
}

// OnCTAReady swaps the newly ready pending CTA in if an active CTA is
// sitting fully stalled.
func (v *VirtualThread) OnCTAReady(s *sm.SM, c *sm.CTA, now int64) {
	if s.CanActivateOne(false) {
		s.Reactivate(c, now, v.cfg.SwitchDrainLat)
		return
	}
	if victim := stalledActive(s); victim != nil {
		s.Deactivate(victim, sm.CTAPendingRF, now)
		s.Reactivate(c, now, v.cfg.SwitchDrainLat)
	}
}

// OnCTAFinished releases the CTA's register allocation.
func (v *VirtualThread) OnCTAFinished(s *sm.SM, c *sm.CTA, now int64) {
	v.regsFree += c.RegCost
}

// AllowIssue implements sm.Policy.
func (v *VirtualThread) AllowIssue(s *sm.SM, w *sm.Warp, now int64) bool { return true }

// BlockedOnRegisters implements sm.Policy.
func (v *VirtualThread) BlockedOnRegisters() bool { return false }

// RegsFree exposes remaining register capacity for tests.
func (v *VirtualThread) RegsFree() int { return v.regsFree }

// AuditAccounting implements sm.SelfAuditing: active and pending residents
// alike keep their full allocation in the register file (parking moves only
// the pipeline context).
func (v *VirtualThread) AuditAccounting(s *sm.SM) []sm.AuditAccount {
	total := v.cfg.TotalWarpRegs()
	held := 0
	for _, c := range s.Residents() {
		held += c.RegCost
	}
	return []sm.AuditAccount{
		{Name: "regsFree", Value: v.regsFree, Expected: total - held, Min: 0, Max: total},
	}
}

// readyPending returns the oldest pending CTA in the given state whose
// dependencies have resolved, or nil.
func readyPending(s *sm.SM, st sm.CTAState, now int64) *sm.CTA {
	var best *sm.CTA
	for _, c := range s.Residents() {
		if c.State == st && c.ReadyAt <= now {
			if best == nil || c.ID < best.ID {
				best = c
			}
		}
	}
	return best
}

// stalledActive returns a fully stalled active CTA, preferring the one
// that has been stalled the longest (lowest ID as tiebreak).
func stalledActive(s *sm.SM) *sm.CTA {
	var best *sm.CTA
	for _, c := range s.Residents() {
		if c.State == sm.CTAActive && c.FullyStalled() {
			if best == nil || c.ID < best.ID {
				best = c
			}
		}
	}
	return best
}
