package energy

import (
	"testing"
	"testing/quick"

	"finereg/internal/stats"
)

func sampleMetrics() *stats.Metrics {
	return &stats.Metrics{
		Cycles: 10_000, Instructions: 40_000,
		RFReads: 60_000, RFWrites: 30_000,
		PCRFReads: 2_000, PCRFWrites: 2_000,
		SharedAccesses: 1_000,
		L1Accesses:     9_000, L2Accesses: 4_000,
		DRAMDemandBytes: 500_000, DRAMContextBytes: 10_000, DRAMBitvecBytes: 120,
		CTASwitches: 300,
	}
}

func TestEstimateComponentsPositive(t *testing.T) {
	b := Estimate(sampleMetrics(), 16, DefaultCoefficients())
	comps := map[string]float64{
		"DRAMDyn": b.DRAMDyn, "RFDyn": b.RFDyn, "OthersDyn": b.OthersDyn,
		"Leakage": b.Leakage, "FineRegLog": b.FineRegLog, "CTASwitch": b.CTASwitch,
	}
	for name, v := range comps {
		if v <= 0 {
			t.Errorf("%s = %v, want > 0", name, v)
		}
	}
	var sum float64
	for _, v := range comps {
		sum += v
	}
	if diff := b.Total() - sum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Total %v != component sum %v", b.Total(), sum)
	}
}

func TestTimeProportionalDominates(t *testing.T) {
	// The calibration intent: on GPU-class chips static+clock energy is
	// the largest share, so faster configurations come out greener
	// (Figure 16's FineReg result).
	b := Estimate(sampleMetrics(), 16, DefaultCoefficients())
	timeTerm := b.Leakage
	if timeTerm < 0.3*b.Total() {
		t.Errorf("leakage share = %.2f of total, want >= 0.30", timeTerm/b.Total())
	}
}

func TestFasterRunUsesLessEnergy(t *testing.T) {
	slow := sampleMetrics()
	fast := sampleMetrics()
	fast.Cycles = slow.Cycles * 3 / 4 // same work, 25% faster
	eSlow := Estimate(slow, 16, DefaultCoefficients()).Total()
	eFast := Estimate(fast, 16, DefaultCoefficients()).Total()
	if eFast >= eSlow {
		t.Errorf("faster run should use less energy: fast %v >= slow %v", eFast, eSlow)
	}
}

func TestContextTrafficCostsEnergy(t *testing.T) {
	base := sampleMetrics()
	heavy := sampleMetrics()
	heavy.DRAMContextBytes += 5_000_000 // Reg+DRAM style context movement
	eBase := Estimate(base, 16, DefaultCoefficients())
	eHeavy := Estimate(heavy, 16, DefaultCoefficients())
	if eHeavy.DRAMDyn <= eBase.DRAMDyn {
		t.Error("context traffic must show up as DRAM dynamic energy")
	}
}

// Property: Estimate is monotone in every counter — more events never
// reduce energy.
func TestEstimateMonotoneQuick(t *testing.T) {
	f := func(dCyc, dInstr, dRF, dDRAM uint16) bool {
		a := sampleMetrics()
		b := sampleMetrics()
		b.Cycles += int64(dCyc)
		b.Instructions += int64(dInstr)
		b.RFReads += int64(dRF)
		b.DRAMDemandBytes += int64(dDRAM)
		return Estimate(b, 16, DefaultCoefficients()).Total() >=
			Estimate(a, 16, DefaultCoefficients()).Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScalesWithSMCount(t *testing.T) {
	m := sampleMetrics()
	e16 := Estimate(m, 16, DefaultCoefficients())
	e32 := Estimate(m, 32, DefaultCoefficients())
	if e32.Leakage <= e16.Leakage {
		t.Error("leakage must scale with SM count")
	}
	if e32.DRAMDyn != e16.DRAMDyn {
		t.Error("DRAM energy must not depend on SM count")
	}
}
