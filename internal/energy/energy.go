// Package energy estimates whole-run energy from the simulator's event
// counters, in the style of the GPUWattch/register-file-virtualization
// models the paper adopts (Section VI-F). The model is event-based: each
// counter class carries a per-event energy coefficient, plus
// time-proportional terms (leakage and clock tree) that dominate on
// GPU-class chips. Absolute joules are not the point — the Figure 16
// comparison is relative — but the coefficients are set to plausible
// 28 nm-class magnitudes so the breakdown shape is meaningful.
package energy

import "finereg/internal/stats"

// Coefficients are per-event energies in picojoules (pJ) and per-cycle
// powers in pJ/cycle.
type Coefficients struct {
	// InstrPJ covers decode/issue/execute datapath energy per instruction.
	InstrPJ float64
	// RFAccessPJ is one 128-byte register-file read or write.
	RFAccessPJ float64
	// PCRFAccessPJ is one PCRF entry access (tag + 128-byte data).
	PCRFAccessPJ float64
	// SharedPJ is one shared-memory access.
	SharedPJ float64
	// L1PJ / L2PJ are per cache probe.
	L1PJ, L2PJ float64
	// DRAMPJPerByte is off-chip transfer energy.
	DRAMPJPerByte float64
	// SwitchPJ is the CTA-switching control logic per switch event.
	SwitchPJ float64
	// RMUPJ is FineReg management logic per PCRF transfer (index decode,
	// pointer table, free-space monitor).
	RMUPJ float64
	// LeakagePJPerCycleSM and ClockPJPerCycleSM are static and clock-tree
	// power per SM-cycle; they make energy largely runtime-proportional,
	// which is why faster configurations come out greener in Figure 16.
	LeakagePJPerCycleSM float64
	ClockPJPerCycleSM   float64
}

// DefaultCoefficients returns the calibration used by the experiments.
func DefaultCoefficients() Coefficients {
	return Coefficients{
		InstrPJ:             28,
		RFAccessPJ:          22,
		PCRFAccessPJ:        26,
		SharedPJ:            32,
		L1PJ:                40,
		L2PJ:                90,
		DRAMPJPerByte:       18,
		SwitchPJ:            600,
		RMUPJ:               8,
		LeakagePJPerCycleSM: 1100,
		ClockPJPerCycleSM:   350,
	}
}

// Breakdown is the Figure 16 component decomposition, in microjoules.
type Breakdown struct {
	DRAMDyn    float64 // off-chip transfer energy
	RFDyn      float64 // register file (ACRF/PCRF) access energy
	OthersDyn  float64 // datapath, caches, shared memory, clock tree
	Leakage    float64 // static energy over the run
	FineRegLog float64 // RMU + status monitor activity
	CTASwitch  float64 // switching logic
}

// Total returns the summed energy in microjoules.
func (b Breakdown) Total() float64 {
	return b.DRAMDyn + b.RFDyn + b.OthersDyn + b.Leakage + b.FineRegLog + b.CTASwitch
}

// Estimate computes the energy breakdown for one run on a machine with
// numSMs SMs.
func Estimate(m *stats.Metrics, numSMs int, c Coefficients) Breakdown {
	const toMicro = 1e-6 // pJ -> µJ
	var b Breakdown
	b.DRAMDyn = float64(m.DRAMBytes()) * c.DRAMPJPerByte * toMicro
	b.RFDyn = (float64(m.RFReads+m.RFWrites)*c.RFAccessPJ +
		float64(m.PCRFReads+m.PCRFWrites)*c.PCRFAccessPJ) * toMicro
	b.OthersDyn = (float64(m.Instructions)*c.InstrPJ +
		float64(m.SharedAccesses)*c.SharedPJ +
		float64(m.L1Accesses)*c.L1PJ +
		float64(m.L2Accesses)*c.L2PJ +
		float64(m.Cycles)*float64(numSMs)*c.ClockPJPerCycleSM) * toMicro
	b.Leakage = float64(m.Cycles) * float64(numSMs) * c.LeakagePJPerCycleSM * toMicro
	b.FineRegLog = float64(m.PCRFReads+m.PCRFWrites) * c.RMUPJ * toMicro
	b.CTASwitch = float64(m.CTASwitches) * c.SwitchPJ * toMicro
	return b
}
