// Package workload is the program-ingestion layer: it turns user-supplied
// kernel descriptions — .sasm source text in the internal/isa dialect, or
// references to the built-in Table II benchmarks — into launchable
// kernels.Kernel values, with the same admission-hardening contract as the
// rest of the serving stack: untrusted input is rejected with a structured
// *Error (program index, offending field, assembler line/column), never a
// panic, and loading is deterministic so a program produces byte-identical
// kernels whether ingested locally, via serve, or via fleet.
//
// A workload.Program is a pure-value spec (it serializes canonically into
// the content-addressed runner job key), and Load is a pure function of
// the spec, so the cache key of a job changes iff the program text or
// launch geometry changes.
package workload

import (
	"errors"
	"fmt"

	"finereg/internal/isa"
	"finereg/internal/kernels"
	"finereg/internal/liveness"
)

// Defaults applied when neither the spec nor the source's launch
// directives pin a value.
const (
	// DefaultWarpsPerCTA is the warps-per-CTA fallback for source programs.
	DefaultWarpsPerCTA = 4
	// DefaultGridCTAs is the grid-size fallback for source programs.
	DefaultGridCTAs = 64
	// MaxPrograms bounds the kernels one job may carry (stream length or
	// partition count) so a single request cannot queue unbounded work.
	MaxPrograms = 16
)

// Program specifies one kernel of a job: either Source (assembly text) or
// Bench (a Table II abbreviation), plus optional launch-geometry
// overrides. Exactly one of Source/Bench must be set. All fields are
// plain values serialized in declaration order, so the spec participates
// in the canonical job-key encoding; omitempty keeps legacy keys stable.
type Program struct {
	// Source is assembly text in the internal/isa dialect. Launch
	// directives in the source (.warps/.shmem/.grid) provide defaults that
	// the override fields below win over.
	Source string `json:"source,omitempty"`
	// Bench names a built-in Table II benchmark (e.g. "SG").
	Bench string `json:"bench,omitempty"`
	// WarpsPerCTA overrides the source's .warps directive (source
	// programs only).
	WarpsPerCTA int `json:"warps_per_cta,omitempty"`
	// SharedMem overrides the source's .shmem directive in bytes per CTA
	// (source programs only; 0 means "use the directive/default").
	SharedMem int `json:"shared_mem,omitempty"`
	// Grid overrides the grid size in CTAs (both source and bench).
	Grid int `json:"grid,omitempty"`
}

// Error is a structured ingestion failure. Index is the program's position
// within its job (set by LoadAll), Field names the offending spec field,
// and Line/Col carry the assembler position when the failure came from
// parsing Source (1-based; zero when not applicable).
type Error struct {
	Index int
	Field string
	Line  int
	Col   int
	Msg   string
	err   error
}

// Error renders "workload: program N: field: [line L, col C:] msg".
func (e *Error) Error() string {
	s := fmt.Sprintf("workload: program %d: %s: ", e.Index, e.Field)
	switch {
	case e.Line > 0 && e.Col > 0:
		s += fmt.Sprintf("line %d, col %d: ", e.Line, e.Col)
	case e.Line > 0:
		s += fmt.Sprintf("line %d: ", e.Line)
	}
	return s + e.Msg
}

// Unwrap exposes the underlying cause (e.g. *isa.AsmError).
func (e *Error) Unwrap() error { return e.err }

func errField(field, format string, args ...any) *Error {
	return &Error{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// Load lowers the spec into a launchable kernel: Source is assembled,
// validated, and analyzed through the liveness pass (Bench programs reuse
// the built-in generators), and the result is wrapped with an occupancy
// profile derived from the program's register demand and launch geometry.
// lim, when non-zero, classifies the profile (Type-S vs Type-R) under
// those SM limits — classification is cosmetic (tables and labels), so a
// zero Limits is fine. Every failure is a *Error with Index 0; callers
// loading several programs use LoadAll to get positioned indices.
func (p *Program) Load(lim kernels.Limits) (*kernels.Kernel, error) {
	switch {
	case p.Source == "" && p.Bench == "":
		return nil, errField("source", "one of source or bench is required")
	case p.Source != "" && p.Bench != "":
		return nil, errField("source", "source and bench are mutually exclusive")
	case p.Bench != "":
		return p.loadBench()
	}
	return p.loadSource(lim)
}

// Validate checks the spec without keeping the kernel; it is what
// runner.Job.Validate calls at admission so malformed programs 400
// instead of panicking a worker.
func (p *Program) Validate(lim kernels.Limits) error {
	_, err := p.Load(lim)
	return err
}

func (p *Program) loadBench() (*kernels.Kernel, error) {
	if p.WarpsPerCTA != 0 || p.SharedMem != 0 {
		return nil, errField("bench", "warps_per_cta/shared_mem overrides apply to source programs only (bench %q has a fixed profile)", p.Bench)
	}
	prof, err := kernels.ProfileByName(p.Bench)
	if err != nil {
		return nil, &Error{Field: "bench", Msg: err.Error(), err: err}
	}
	if p.Grid < 0 {
		return nil, errField("grid", "grid %d < 0", p.Grid)
	}
	k, err := kernels.Build(prof, p.Grid)
	if err != nil {
		return nil, &Error{Field: "bench", Msg: err.Error(), err: err}
	}
	return k, nil
}

func (p *Program) loadSource(lim kernels.Limits) (*kernels.Kernel, error) {
	prog, launch, err := isa.AssembleLaunch(p.Source)
	if err != nil {
		e := &Error{Field: "source", Msg: err.Error(), err: err}
		var ae *isa.AsmError
		if errors.As(err, &ae) {
			e.Line, e.Col, e.Msg = ae.Line, ae.Col, ae.Msg
		}
		return nil, e
	}

	warps := firstPositive(p.WarpsPerCTA, launch.WarpsPerCTA, DefaultWarpsPerCTA)
	if p.WarpsPerCTA < 0 || warps < 1 || warps > 64 {
		return nil, errField("warps_per_cta", "warps per CTA %d out of range [1,64]", firstNonzero(p.WarpsPerCTA, launch.WarpsPerCTA))
	}
	shmem := firstPositive(p.SharedMem, launch.SharedMem, 0)
	if p.SharedMem < 0 || shmem < 0 || shmem > 1<<24 {
		return nil, errField("shared_mem", "shared memory %d out of range [0,%d]", firstNonzero(p.SharedMem, launch.SharedMem), 1<<24)
	}
	grid := firstPositive(p.Grid, launch.GridCTAs, DefaultGridCTAs)
	if p.Grid < 0 || grid < 1 || grid > 1<<22 {
		return nil, errField("grid", "grid %d out of range [1,%d]", firstNonzero(p.Grid, launch.GridCTAs), 1<<22)
	}

	live, err := liveness.Analyze(prog)
	if err != nil {
		return nil, &Error{Field: "source", Msg: err.Error(), err: err}
	}

	prof := kernels.Profile{
		Abbrev:      prog.Name,
		Name:        prog.Name,
		Suite:       "user",
		WarpsPerCTA: warps,
		Regs:        prog.RegsPerThread,
		SharedMem:   shmem,
		GridCTAs:    grid,
	}
	if lim != (kernels.Limits{}) {
		prof.Class = prof.Classify(lim)
	}
	return &kernels.Kernel{Profile: prof, Prog: prog, Live: live, GridCTAs: grid}, nil
}

// LoadAll loads every spec, attaching the program's index to any failure.
func LoadAll(specs []Program, lim kernels.Limits) ([]*kernels.Kernel, error) {
	if len(specs) > MaxPrograms {
		return nil, &Error{Field: "programs", Msg: fmt.Sprintf("%d programs exceed the per-job cap of %d", len(specs), MaxPrograms)}
	}
	ks := make([]*kernels.Kernel, len(specs))
	for i := range specs {
		k, err := specs[i].Load(lim)
		if err != nil {
			var we *Error
			if errors.As(err, &we) {
				we.Index = i
			}
			return nil, err
		}
		ks[i] = k
	}
	return ks, nil
}

// ValidateAll is LoadAll without keeping the kernels.
func ValidateAll(specs []Program, lim kernels.Limits) error {
	_, err := LoadAll(specs, lim)
	return err
}

func firstPositive(vals ...int) int {
	for _, v := range vals {
		if v > 0 {
			return v
		}
	}
	return 0
}

func firstNonzero(vals ...int) int {
	for _, v := range vals {
		if v != 0 {
			return v
		}
	}
	return 0
}
