package workload

import (
	"errors"
	"strings"
	"testing"

	"finereg/internal/isa"
	"finereg/internal/kernels"
)

var tableILimits = kernels.Limits{
	MaxCTAs: 32, MaxWarps: 64, MaxThreads: 2048,
	RegFileBytes: 256 << 10, SharedMemBytes: 96 << 10,
}

const demoSrc = `.kernel demo
.regs 12
.warps 2
.grid 8
  MOV R0, #0
  MOV R1, #4
top:
  LDG R2, [R0] pattern=coalesced region=1 footprint=65536
  FFMA R3, R2, R2, R3
  IADD R0, R0, #1
  ISETP R4, R0, R1
  @R4 BRA top trip=4
  STG [R0], R3 region=15
  EXIT
`

func TestLoadSourceProgram(t *testing.T) {
	p := Program{Source: demoSrc}
	k, err := p.Load(tableILimits)
	if err != nil {
		t.Fatal(err)
	}
	if k.Profile.Abbrev != "demo" || k.Profile.Suite != "user" {
		t.Errorf("profile identity = %q/%q", k.Profile.Abbrev, k.Profile.Suite)
	}
	if k.Profile.WarpsPerCTA != 2 {
		t.Errorf("WarpsPerCTA = %d, want 2 (from .warps)", k.Profile.WarpsPerCTA)
	}
	if k.Profile.Regs != 12 {
		t.Errorf("Regs = %d, want 12 (from .regs)", k.Profile.Regs)
	}
	if k.GridCTAs != 8 || k.Profile.GridCTAs != 8 {
		t.Errorf("grid = %d/%d, want 8 (from .grid)", k.GridCTAs, k.Profile.GridCTAs)
	}
	if k.Live == nil || k.Prog == nil {
		t.Fatal("kernel missing program or liveness info")
	}
	if got := k.Prog.Len(); got != 9 {
		t.Errorf("program length = %d, want 9", got)
	}
}

func TestLoadOverridesBeatDirectives(t *testing.T) {
	p := Program{Source: demoSrc, WarpsPerCTA: 6, Grid: 32, SharedMem: 1024}
	k, err := p.Load(tableILimits)
	if err != nil {
		t.Fatal(err)
	}
	if k.Profile.WarpsPerCTA != 6 || k.GridCTAs != 32 || k.Profile.SharedMem != 1024 {
		t.Errorf("overrides not applied: %+v grid=%d", k.Profile, k.GridCTAs)
	}
}

func TestLoadDefaultsWithoutDirectives(t *testing.T) {
	p := Program{Source: "MOV R0, #1\nEXIT"}
	k, err := p.Load(kernels.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if k.Profile.WarpsPerCTA != DefaultWarpsPerCTA {
		t.Errorf("WarpsPerCTA = %d, want default %d", k.Profile.WarpsPerCTA, DefaultWarpsPerCTA)
	}
	if k.GridCTAs != DefaultGridCTAs {
		t.Errorf("grid = %d, want default %d", k.GridCTAs, DefaultGridCTAs)
	}
}

func TestLoadBenchProgram(t *testing.T) {
	p := Program{Bench: "SG", Grid: 10}
	k, err := p.Load(tableILimits)
	if err != nil {
		t.Fatal(err)
	}
	if k.Profile.Abbrev != "SG" || k.GridCTAs != 10 {
		t.Errorf("bench kernel = %q grid %d", k.Profile.Abbrev, k.GridCTAs)
	}
	// Bench + geometry overrides is a contradiction, not a merge.
	if _, err := (&Program{Bench: "SG", WarpsPerCTA: 8}).Load(tableILimits); err == nil {
		t.Error("bench with warps override was accepted")
	}
}

func TestLoadDeterministic(t *testing.T) {
	p := Program{Source: demoSrc}
	k1, err := p.Load(tableILimits)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := p.Load(tableILimits)
	if err != nil {
		t.Fatal(err)
	}
	if isa.EmitAsm(k1.Prog) != isa.EmitAsm(k2.Prog) {
		t.Error("repeated loads produced different programs")
	}
	if k1.Profile != k2.Profile {
		t.Errorf("repeated loads produced different profiles: %+v vs %+v", k1.Profile, k2.Profile)
	}
}

func TestLoadErrorsAreStructured(t *testing.T) {
	cases := []struct {
		name     string
		spec     Program
		field    string
		wantLine int
	}{
		{"empty", Program{}, "source", 0},
		{"both", Program{Source: "EXIT", Bench: "SG"}, "source", 0},
		{"unknown-bench", Program{Bench: "ZZ"}, "bench", 0},
		{"bad-asm", Program{Source: "MOV R0, #0\nMOV R99, #1\nEXIT"}, "source", 2},
		{"no-exit", Program{Source: "MOV R0, #1"}, "source", 0},
		{"bad-warps", Program{Source: "EXIT", WarpsPerCTA: -1}, "warps_per_cta", 0},
		{"bad-grid", Program{Source: "EXIT", Grid: 1 << 23}, "grid", 0},
		{"bad-shmem", Program{Source: "EXIT", SharedMem: -5}, "shared_mem", 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.spec.Load(tableILimits)
			var we *Error
			if !errors.As(err, &we) {
				t.Fatalf("want *Error, got %T %v", err, err)
			}
			if we.Field != c.field {
				t.Errorf("Field = %q, want %q (%v)", we.Field, c.field, err)
			}
			if we.Line != c.wantLine {
				t.Errorf("Line = %d, want %d (%v)", we.Line, c.wantLine, err)
			}
		})
	}
}

func TestLoadAllIndexesErrors(t *testing.T) {
	specs := []Program{{Source: "EXIT"}, {Source: "FROB\nEXIT"}}
	_, err := LoadAll(specs, tableILimits)
	var we *Error
	if !errors.As(err, &we) {
		t.Fatalf("want *Error, got %v", err)
	}
	if we.Index != 1 {
		t.Errorf("Index = %d, want 1", we.Index)
	}
	if !strings.Contains(err.Error(), "program 1") {
		t.Errorf("error does not name the program: %v", err)
	}
}

func TestLoadAllCapsPrograms(t *testing.T) {
	specs := make([]Program, MaxPrograms+1)
	for i := range specs {
		specs[i] = Program{Source: "EXIT"}
	}
	if _, err := LoadAll(specs, tableILimits); err == nil {
		t.Error("over-cap program list accepted")
	}
	if err := ValidateAll(specs[:MaxPrograms], tableILimits); err != nil {
		t.Errorf("at-cap program list rejected: %v", err)
	}
}
