// Package exec is a functional SIMT executor for the finereg ISA. It runs
// programs for real — per-lane register files, byte-addressed global and
// shared memory, and a PDOM reconvergence stack for divergent control flow
// (the same post-dominator analysis the compiler pass uses).
//
// The executor exists to demonstrate that the ISA and its programs are
// semantically meaningful, and to back the runnable examples; the timing
// simulator (internal/sm, internal/gpu) models performance separately.
package exec

import (
	"errors"
	"fmt"
	"math"

	"finereg/internal/isa"
	"finereg/internal/liveness"
)

// WarpSize is the SIMD width (lanes per warp).
const WarpSize = 32

// fullMask has all 32 lanes active.
const fullMask = uint32(0xFFFFFFFF)

// ErrExec wraps all runtime execution errors.
var ErrExec = errors.New("exec: runtime error")

func execErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrExec, fmt.Sprintf(format, args...))
}

// Machine executes kernels against a flat global memory.
type Machine struct {
	// Mem is global memory; all LDG/STG addresses index into it.
	Mem []byte
	// SharedBytes is the shared memory allocated per CTA.
	SharedBytes int
	// MaxSteps bounds per-warp dynamic instructions (guards against
	// non-terminating programs). Zero means the 1M default.
	MaxSteps int
}

// Launch runs the program over a grid of gridCTAs CTAs of threadsPerCTA
// threads. By convention R0 of every thread is preloaded with its global
// thread ID. Warps within a CTA execute in barrier-delimited phases, so
// OpBAR works for producer/consumer shared-memory patterns.
func (m *Machine) Launch(p *isa.Program, gridCTAs, threadsPerCTA int) error {
	if err := isa.Validate(p); err != nil {
		return err
	}
	if threadsPerCTA <= 0 || threadsPerCTA%WarpSize != 0 {
		return execErrf("threadsPerCTA %d must be a positive multiple of %d", threadsPerCTA, WarpSize)
	}
	g, err := liveness.BuildCFG(p)
	if err != nil {
		return err
	}
	reconv := reconvergenceTable(g)
	warpsPerCTA := threadsPerCTA / WarpSize
	for cta := 0; cta < gridCTAs; cta++ {
		shared := make([]byte, m.SharedBytes)
		warps := make([]*warpCtx, warpsPerCTA)
		for w := range warps {
			warps[w] = newWarpCtx(p, cta*threadsPerCTA+w*WarpSize)
		}
		if err := m.runCTA(p, reconv, warps, shared); err != nil {
			return fmt.Errorf("cta %d: %w", cta, err)
		}
	}
	return nil
}

// runCTA executes all warps of a CTA in rounds: each warp runs until it
// reaches a barrier or exits; a barrier releases when every live warp has
// arrived.
func (m *Machine) runCTA(p *isa.Program, reconv []int, warps []*warpCtx, shared []byte) error {
	for {
		alive, arrived := 0, 0
		for _, w := range warps {
			if w.done {
				continue
			}
			alive++
			if !w.atBarrier {
				if err := m.runWarp(p, reconv, w, shared); err != nil {
					return err
				}
				if w.done {
					alive--
					continue
				}
			}
			if w.atBarrier {
				arrived++
			}
		}
		if alive == 0 {
			return nil
		}
		if arrived == alive {
			for _, w := range warps {
				w.atBarrier = false
			}
			continue
		}
		if arrived < alive {
			// Some warp neither finished nor reached the barrier: runWarp
			// only returns on barrier/exit, so this is unreachable unless
			// a warp deadlocks on a malformed program.
			return execErrf("barrier deadlock: %d/%d warps arrived", arrived, alive)
		}
	}
}

// warpCtx is the architectural state of one warp.
type warpCtx struct {
	regs      [isa.MaxRegs][WarpSize]uint32
	stack     []simtEntry
	steps     int
	done      bool
	atBarrier bool
}

// simtEntry is one reconvergence-stack frame: execute at pc under mask
// until pc reaches rpc.
type simtEntry struct {
	pc, rpc int
	mask    uint32
}

func newWarpCtx(p *isa.Program, firstTID int) *warpCtx {
	w := &warpCtx{}
	for lane := 0; lane < WarpSize; lane++ {
		w.regs[0][lane] = uint32(firstTID + lane)
	}
	w.stack = append(w.stack, simtEntry{pc: 0, rpc: -1, mask: fullMask})
	return w
}

// reconvergenceTable maps each branch PC to its PDOM reconvergence PC
// (start of the immediate post-dominator block), or -1.
func reconvergenceTable(g *liveness.CFG) []int {
	pdom := g.PostDominators()
	table := make([]int, g.Prog.Len())
	for pc := range table {
		table[pc] = -1
	}
	for _, b := range g.Blocks {
		last := b.End - 1
		if !g.Prog.At(last).IsBranch() {
			continue
		}
		if pd := pdom[b.ID]; pd >= 0 && pd != b.ID {
			table[last] = g.Blocks[pd].Start
		}
	}
	return table
}

// runWarp executes the warp until it exits or reaches a barrier.
func (m *Machine) runWarp(p *isa.Program, reconv []int, w *warpCtx, shared []byte) error {
	maxSteps := m.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1 << 20
	}
	for {
		if len(w.stack) == 0 {
			w.done = true
			return nil
		}
		e := &w.stack[len(w.stack)-1]
		if e.pc == e.rpc {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		if w.steps++; w.steps > maxSteps {
			return execErrf("step budget %d exceeded (non-terminating program?)", maxSteps)
		}
		in := p.At(e.pc)
		switch in.Op {
		case isa.OpEXIT:
			if len(w.stack) != 1 {
				return execErrf("pc %d: divergent EXIT unsupported", e.pc)
			}
			w.done = true
			return nil
		case isa.OpBAR:
			e.pc++
			w.atBarrier = true
			return nil
		case isa.OpBRA:
			takenMask := e.mask
			if in.IsConditional() {
				takenMask = 0
				for lane := 0; lane < WarpSize; lane++ {
					if e.mask&(1<<lane) != 0 && w.regs[in.Pred][lane] != 0 {
						takenMask |= 1 << lane
					}
				}
			}
			fallMask := e.mask &^ takenMask
			switch {
			case fallMask == 0:
				e.pc = in.Target
			case takenMask == 0:
				e.pc++
			default:
				rpc := reconv[e.pc]
				if rpc < 0 {
					return execErrf("pc %d: divergent branch without reconvergence point", e.pc)
				}
				fall := e.pc + 1
				e.pc = rpc // this frame becomes the join continuation
				w.stack = append(w.stack,
					simtEntry{pc: fall, rpc: rpc, mask: fallMask},
					simtEntry{pc: in.Target, rpc: rpc, mask: takenMask})
			}
		default:
			if err := m.execLanes(in, e.mask, w, shared, e.pc); err != nil {
				return err
			}
			e.pc++
		}
	}
}

// execLanes applies a non-control instruction to every active lane.
func (m *Machine) execLanes(in *isa.Instr, mask uint32, w *warpCtx, shared []byte, pc int) error {
	for lane := 0; lane < WarpSize; lane++ {
		if mask&(1<<lane) == 0 {
			continue
		}
		s := func(i int) uint32 { return w.regs[in.Srcs[i]][lane] }
		var v uint32
		switch in.Op {
		case isa.OpNOP:
			continue
		case isa.OpMOV:
			if in.NSrc == 0 {
				v = in.Imm
			} else {
				v = s(0)
			}
		case isa.OpIADD:
			if in.NSrc == 1 {
				v = s(0) + in.Imm
			} else {
				v = s(0) + s(1)
			}
		case isa.OpIMUL:
			v = s(0) * s(1)
		case isa.OpISETP:
			if int32(s(0)) < int32(s(1)) {
				v = 1
			}
		case isa.OpSHF:
			v = s(0) << (in.Imm & 31)
		case isa.OpFADD:
			v = f2b(b2f(s(0)) + b2f(s(1)))
		case isa.OpFMUL:
			v = f2b(b2f(s(0)) * b2f(s(1)))
		case isa.OpFFMA:
			v = f2b(b2f(s(0))*b2f(s(1)) + b2f(s(2)))
		case isa.OpMUFU:
			v = f2b(1 / b2f(s(0)))
		case isa.OpLDG, isa.OpLDS:
			memv, addr := m.Mem, s(0)
			if in.Op == isa.OpLDS {
				memv = shared
			}
			u, err := load32(memv, addr, pc, lane)
			if err != nil {
				return err
			}
			v = u
		case isa.OpSTG, isa.OpSTS:
			memv, addr := m.Mem, w.regs[in.Srcs[1]][lane]
			if in.Op == isa.OpSTS {
				memv = shared
			}
			if err := store32(memv, addr, s(0), pc, lane); err != nil {
				return err
			}
			continue
		default:
			return execErrf("pc %d: unhandled opcode %v", pc, in.Op)
		}
		if in.Dst.Valid() {
			w.regs[in.Dst][lane] = v
		}
	}
	return nil
}

func load32(mem []byte, addr uint32, pc, lane int) (uint32, error) {
	if int(addr)+4 > len(mem) {
		return 0, execErrf("pc %d lane %d: load at %#x out of bounds (%d bytes)", pc, lane, addr, len(mem))
	}
	return uint32(mem[addr]) | uint32(mem[addr+1])<<8 | uint32(mem[addr+2])<<16 | uint32(mem[addr+3])<<24, nil
}

func store32(mem []byte, addr, v uint32, pc, lane int) error {
	if int(addr)+4 > len(mem) {
		return execErrf("pc %d lane %d: store at %#x out of bounds (%d bytes)", pc, lane, addr, len(mem))
	}
	mem[addr] = byte(v)
	mem[addr+1] = byte(v >> 8)
	mem[addr+2] = byte(v >> 16)
	mem[addr+3] = byte(v >> 24)
	return nil
}

func b2f(b uint32) float32 { return math.Float32frombits(b) }
func f2b(f float32) uint32 { return math.Float32bits(f) }

// ReadF32 reads a float32 from machine memory at byte offset off.
func (m *Machine) ReadF32(off int) float32 {
	u, err := load32(m.Mem, uint32(off), -1, -1)
	if err != nil {
		panic(err)
	}
	return b2f(u)
}

// WriteF32 writes a float32 into machine memory at byte offset off.
func (m *Machine) WriteF32(off int, v float32) {
	if err := store32(m.Mem, uint32(off), f2b(v), -1, -1); err != nil {
		panic(err)
	}
}

// ReadU32 reads a uint32 from machine memory at byte offset off.
func (m *Machine) ReadU32(off int) uint32 {
	u, err := load32(m.Mem, uint32(off), -1, -1)
	if err != nil {
		panic(err)
	}
	return u
}

// WriteU32 writes a uint32 into machine memory at byte offset off.
func (m *Machine) WriteU32(off int, v uint32) {
	if err := store32(m.Mem, uint32(off), v, -1, -1); err != nil {
		panic(err)
	}
}
