package exec

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"finereg/internal/isa"
	"finereg/internal/kernels"
)

func TestVecAdd(t *testing.T) {
	const n = 256 // 8 warps
	baseA, baseB, baseC := uint32(0), uint32(4*n), uint32(8*n)
	m := &Machine{Mem: make([]byte, 12*n)}
	for i := 0; i < n; i++ {
		m.WriteF32(int(baseA)+4*i, float32(i))
		m.WriteF32(int(baseB)+4*i, 2*float32(i))
	}
	p := kernels.VecAdd(baseA, baseB, baseC)
	if err := m.Launch(p, 2, 128); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got, want := m.ReadF32(int(baseC)+4*i), 3*float32(i); got != want {
			t.Fatalf("c[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestSaxpy(t *testing.T) {
	const n = 64
	alpha := float32(2.5)
	baseX, baseY := uint32(0), uint32(4*n)
	m := &Machine{Mem: make([]byte, 8*n)}
	for i := 0; i < n; i++ {
		m.WriteF32(4*i, float32(i))
		m.WriteF32(int(baseY)+4*i, 1)
	}
	p := kernels.Saxpy(math.Float32bits(alpha), baseX, baseY)
	if err := m.Launch(p, 1, n); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := alpha*float32(i) + 1
		if got := m.ReadF32(int(baseY) + 4*i); got != want {
			t.Fatalf("y[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestAbsDiffDivergence(t *testing.T) {
	const n = 64
	baseA, baseB, baseOut := uint32(0), uint32(4*n), uint32(8*n)
	m := &Machine{Mem: make([]byte, 12*n)}
	rng := rand.New(rand.NewSource(42))
	a := make([]int32, n)
	b := make([]int32, n)
	for i := 0; i < n; i++ {
		a[i], b[i] = int32(rng.Intn(1000)), int32(rng.Intn(1000))
		m.WriteU32(int(baseA)+4*i, uint32(a[i]))
		m.WriteU32(int(baseB)+4*i, uint32(b[i]))
	}
	if err := m.Launch(kernels.AbsDiff(baseA, baseB, baseOut), 1, n); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := a[i] - b[i]
		if want < 0 {
			want = -want
		}
		if got := int32(m.ReadU32(int(baseOut) + 4*i)); got != want {
			t.Fatalf("out[%d] = %d, want |%d-%d| = %d", i, got, a[i], b[i], want)
		}
	}
}

func TestDotChunksLoop(t *testing.T) {
	const n, trips = 32, 8
	total := n * trips
	baseX, baseY, baseOut := uint32(0), uint32(4*total), uint32(8*total)
	m := &Machine{Mem: make([]byte, 12*total)}
	for i := 0; i < total; i++ {
		m.WriteF32(int(baseX)+4*i, 1)
		m.WriteF32(int(baseY)+4*i, float32(i%5))
	}
	if err := m.Launch(kernels.DotChunks(baseX, baseY, baseOut, n, trips), 1, n); err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < n; tid++ {
		var want float32
		for k := 0; k < trips; k++ {
			want += float32((tid + k*n) % 5)
		}
		if got := m.ReadF32(int(baseOut) + 4*tid); got != want {
			t.Fatalf("out[%d] = %v, want %v", tid, got, want)
		}
	}
}

func TestBarrierSharedMemory(t *testing.T) {
	// Warp 0 writes shared[tid'] = tid'*3, all warps barrier, then every
	// thread reads its own slot back and stores it to global memory.
	const warps = 4
	const threads = warps * 32
	b := isa.NewBuilder("barrier")
	b.Shf(1, 0, 2)             // R1 = tid*4 (global tid == local tid with 1 CTA)
	b.MovI(2, 3)               //
	b.IMul(3, 0, 2)            // R3 = tid*3
	b.Sts(3, 1)                // shared[tid] = tid*3
	b.Bar()                    //
	b.Lds(4, 1)                // R4 = shared[tid]
	b.MovI(5, 0)               // out base 0
	b.IAdd(6, 5, 1)            //
	b.Stg(4, 6, isa.MemDesc{}) // out[tid] = R4
	b.Exit()
	p := b.MustBuild(0)
	m := &Machine{Mem: make([]byte, 4*threads), SharedBytes: 4 * threads}
	if err := m.Launch(p, 1, threads); err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < threads; tid++ {
		if got := m.ReadU32(4 * tid); got != uint32(tid*3) {
			t.Fatalf("out[%d] = %d, want %d", tid, got, tid*3)
		}
	}
}

func TestLaunchRejectsBadGeometry(t *testing.T) {
	m := &Machine{Mem: make([]byte, 1024)}
	p := kernels.VecAdd(0, 128, 256)
	if err := m.Launch(p, 1, 33); err == nil {
		t.Error("threadsPerCTA=33 should be rejected")
	}
	if err := m.Launch(p, 1, 0); err == nil {
		t.Error("threadsPerCTA=0 should be rejected")
	}
}

func TestOutOfBoundsLoad(t *testing.T) {
	m := &Machine{Mem: make([]byte, 64)} // far too small for tid*4 addressing
	p := kernels.VecAdd(0, 1<<20, 2<<20)
	err := m.Launch(p, 1, 32)
	if err == nil {
		t.Fatal("expected out-of-bounds error")
	}
	if !errors.Is(err, ErrExec) {
		t.Errorf("error %v should wrap ErrExec", err)
	}
}

func TestStepBudget(t *testing.T) {
	// An always-taken backward branch (predicate forced to 1) never
	// terminates; the step budget must catch it.
	b := isa.NewBuilder("infinite")
	b.MovI(1, 1)
	b.Label("top")
	b.Nop()
	b.Loop(1, "top", 1)
	b.Exit()
	p := b.MustBuild(0)
	m := &Machine{Mem: make([]byte, 64), MaxSteps: 1000}
	err := m.Launch(p, 1, 32)
	if err == nil || !errors.Is(err, ErrExec) {
		t.Fatalf("expected step-budget error, got %v", err)
	}
}

// Property: vecadd is correct for arbitrary inputs (functional executor as
// oracle-checked reference).
func TestVecAddQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 32
		m := &Machine{Mem: make([]byte, 12*n)}
		want := make([]float32, n)
		for i := 0; i < n; i++ {
			a := rng.Float32() * 100
			c := rng.Float32() * 100
			m.WriteF32(4*i, a)
			m.WriteF32(4*n+4*i, c)
			want[i] = a + c
		}
		if err := m.Launch(kernels.VecAdd(0, 4*n, 8*n), 1, n); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if m.ReadF32(8*n+4*i) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: divergence handling is mask-exact — per-lane results match a
// scalar reference for random inputs.
func TestAbsDiffQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 32
		baseA, baseB, baseOut := 0, 4*n, 8*n
		m := &Machine{Mem: make([]byte, 12*n)}
		a := make([]int32, n)
		bb := make([]int32, n)
		for i := 0; i < n; i++ {
			a[i], bb[i] = int32(rng.Intn(1<<20)), int32(rng.Intn(1<<20))
			m.WriteU32(baseA+4*i, uint32(a[i]))
			m.WriteU32(baseB+4*i, uint32(bb[i]))
		}
		if err := m.Launch(kernels.AbsDiff(uint32(baseA), uint32(baseB), uint32(baseOut)), 1, n); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			want := a[i] - bb[i]
			if want < 0 {
				want = -want
			}
			if int32(m.ReadU32(baseOut+4*i)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
