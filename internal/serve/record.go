package serve

import (
	"errors"
	"sync"
	"time"

	"finereg/internal/runner"
	"finereg/internal/serve/metrics"
	"finereg/internal/trace"
)

// Job lifecycle states.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

// Event kinds.
const (
	eventSubmit   = "submit"
	eventStart    = "start"
	eventProgress = "progress"
	eventFinish   = "finish"
)

// subBuffer is the per-subscriber event buffer. A job emits a handful of
// lifecycle events plus a progress stream, so a subscriber only lags if
// its connection stalls — in which case the overflowing event is dropped
// and counted (finereg_serve_sse_dropped_total; the terminal state is
// always available via GET /v1/jobs/{id}).
const subBuffer = 16

// progressKeep bounds how many progress events the record retains for
// replay: a late subscriber sees the lifecycle history plus the most
// recent progress window, and a long run cannot grow a record without
// bound. Live subscribers receive every sample.
const progressKeep = 16

// record is one admitted job: the canonical runner.Job, its lifecycle
// state, its result, and the event log + live subscribers feeding the SSE
// stream. The record's identity is derived from the job key, so duplicate
// submissions resolve to the same record — the serving layer's coalescing
// mirrors the engine's in-flight dedup one level up.
type record struct {
	id  string
	key string
	job *runner.Job

	// client is the submitting client's self-reported id (admission
	// fair-share bucket); immutable after creation.
	client string

	// dropped counts events lost to lagging subscribers (set once at
	// admission to the server's SSE-drop counter; nil in tests that build
	// bare records).
	dropped *metrics.Counter

	mu        sync.Mutex
	priority  int   // admission priority; raised by higher-priority duplicates
	qseq      int64 // admission queue arrival sequence
	preempted bool  // failed by a higher-priority preemption (resubmission re-runs)
	state     string
	seq       int64 // monotone event sequence (history may be pruned)
	nProgress int   // progress events currently retained in events
	events    []Event
	subs      map[chan Event]struct{}
	result    *runner.Result
	errMsg    string
	cached    bool
	queued    time.Time
	started   time.Time
	finished  time.Time

	// done is closed on the terminal transition (test/wait convenience).
	done chan struct{}
}

func newRecord(id, key string, j *runner.Job) *record {
	return &record{
		id: id, key: key, job: j,
		state: stateQueued,
		subs:  map[chan Event]struct{}{},
		done:  make(chan struct{}),
	}
}

// pri / setPriority / queueSeq / setQueueSeq / clientID are the admission
// queue's accessors; the queue serializes mutation under its own lock and
// these guard the fields against concurrent status() reads.
func (r *record) pri() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.priority
}

func (r *record) setPriority(p int) {
	r.mu.Lock()
	r.priority = p
	r.mu.Unlock()
}

func (r *record) queueSeq() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.qseq
}

func (r *record) setQueueSeq(s int64) {
	r.mu.Lock()
	r.qseq = s
	r.mu.Unlock()
}

func (r *record) clientID() string { return r.client }

// wasPreempted reports a terminal state caused by priority preemption.
func (r *record) wasPreempted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.preempted
}

func unixMS(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixMilli()
}

// appendEvent records one lifecycle event and forwards it to live
// subscribers; the caller holds r.mu.
func (r *record) appendEventLocked(kind string) {
	r.seq++
	ev := Event{
		Seq:    r.seq,
		Kind:   kind,
		Job:    r.id,
		Label:  r.job.Label,
		State:  r.state,
		Cached: r.cached,
		Error:  r.errMsg,
		AtMS:   time.Now().UnixMilli(),
	}
	r.events = append(r.events, ev)
	r.broadcastLocked(ev)
}

// broadcastLocked forwards one event to live subscribers, counting drops;
// the caller holds r.mu.
func (r *record) broadcastLocked(ev Event) {
	for ch := range r.subs {
		select {
		case ch <- ev:
		default:
			// Lagging subscriber: drop rather than block the simulating
			// worker; terminal state stays pollable, and the loss is
			// visible in /metrics.
			if r.dropped != nil {
				r.dropped.Inc()
			}
		}
	}
}

// progress records one in-run sample as a `progress` event: appended to
// the (bounded) replay history and broadcast live. Samples arriving after
// the terminal transition are ignored — the stream contract is that
// finish is last.
func (r *record) progress(s trace.ProgressSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == stateDone || r.state == stateFailed {
		return
	}
	r.seq++
	ev := Event{
		Seq:          r.seq,
		Kind:         eventProgress,
		Job:          r.id,
		Label:        r.job.Label,
		State:        r.state,
		AtMS:         time.Now().UnixMilli(),
		Cycle:        s.Cycle,
		CycleDelta:   s.CycleDelta,
		GridCTAs:     s.GridCTAs,
		CTAsLaunched: s.CTAsLaunched,
		CTAsRetired:  s.CTAsRetired,
		Instructions: s.Instructions,
		CyclesPerSec: s.CyclesPerSec,
		Final:        s.Final,
		Ops:          s.Ops,
	}
	if r.nProgress >= progressKeep {
		// Prune the oldest retained progress event; lifecycle events are
		// always kept, so replay stays submit/start + a sliding progress
		// window.
		for i, old := range r.events {
			if old.Kind == eventProgress {
				r.events = append(r.events[:i], r.events[i+1:]...)
				r.nProgress--
				break
			}
		}
	}
	r.events = append(r.events, ev)
	r.nProgress++
	r.broadcastLocked(ev)
}

// submitted marks admission.
func (r *record) submitted() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queued = time.Now()
	r.appendEventLocked(eventSubmit)
}

// start marks the dequeue→running transition.
func (r *record) start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.state = stateRunning
	r.started = time.Now()
	r.appendEventLocked(eventStart)
}

// finish records the terminal state and wakes waiters. err == nil means
// success; cached reports a cache/dedup hit. The commit is at-most-once:
// a record that is already terminal ignores further finishes and reports
// false — under fleet dispatch a requeued job can in principle complete
// twice (the node presumed dead finishes after its replacement), and only
// the first result, keyed by the record's content hash, is committed.
func (r *record) finish(res *runner.Result, err error, cached bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == stateDone || r.state == stateFailed {
		return false
	}
	r.finished = time.Now()
	r.cached = cached
	if err != nil {
		r.state = stateFailed
		r.errMsg = err.Error()
		r.preempted = errors.Is(err, errPreempted)
	} else {
		r.state = stateDone
		r.result = res
	}
	r.appendEventLocked(eventFinish)
	close(r.done)
	return true
}

// latency returns queued→finished wall time (0 until finished).
func (r *record) latency() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.finished.IsZero() || r.queued.IsZero() {
		return 0
	}
	return r.finished.Sub(r.queued)
}

// status snapshots the record as a JobStatus.
func (r *record) status() JobStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return JobStatus{
		ID:           r.id,
		Key:          r.key,
		Label:        r.job.Label,
		Client:       r.client,
		Priority:     r.priority,
		State:        r.state,
		Cached:       r.cached,
		Error:        r.errMsg,
		Result:       r.result,
		QueuedAtMS:   unixMS(r.queued),
		StartedAtMS:  unixMS(r.started),
		FinishedAtMS: unixMS(r.finished),
	}
}

// terminal reports whether the record reached done/failed.
func (r *record) terminal() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state == stateDone || r.state == stateFailed
}

// subscribe returns the event history so far and a channel carrying
// subsequent events; cancel unregisters. If the record is already
// terminal, past holds the full stream and the channel never fires.
func (r *record) subscribe() (past []Event, ch chan Event, cancel func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	past = append([]Event(nil), r.events...)
	ch = make(chan Event, subBuffer)
	r.subs[ch] = struct{}{}
	return past, ch, func() {
		r.mu.Lock()
		delete(r.subs, ch)
		r.mu.Unlock()
	}
}

// batchRecord groups the records of one POST /v1/batches submission.
type batchRecord struct {
	id   string
	recs []*record
}

func (b *batchRecord) status() BatchStatus {
	st := BatchStatus{ID: b.id, Total: len(b.recs)}
	for _, r := range b.recs {
		js := r.status()
		st.Jobs = append(st.Jobs, js)
		if js.Done() {
			st.Done++
			if js.State == stateFailed {
				st.Failed++
			}
		}
	}
	return st
}
