// Package serve exposes the simulator fleet as a long-running HTTP/JSON
// service: single-job and batched submissions are validated, canonicalized
// into runner.Job keys (so duplicate in-flight and cached requests
// coalesce for free), admitted through a bounded queue, and executed on a
// shared run engine with its content-addressed cache. Progress streams to
// clients as server-sent events fed from the engine's trace.JobSink
// lifecycle stream, and /metrics exposes Prometheus-text counters.
//
// Admission is a degradation ladder, the same discipline FineReg applies
// to register space (ACRF → PCRF → context switch to DRAM) applied to
// requests: a job whose result is already known is answered immediately
// (coalesced/cached — the ACRF hit); a fresh job waits in the bounded
// queue for a worker (the PCRF spill); and once the queue is full the
// server sheds load with a 429 instead of queueing unboundedly (the
// context switch — latency traded for survival). Graceful shutdown drains
// in-flight jobs through the engine's cooperative gpu.Stop path.
package serve

import (
	"fmt"
	"net/http"
	"runtime"
	"sync"

	"finereg/internal/gpu"
	"finereg/internal/runner"
	"finereg/internal/serve/metrics"
	"finereg/internal/telemetry"
	"finereg/internal/trace"
)

// Runner is the dispatch seam: it executes one admitted job to
// completion and reports (result, served-from-cache, error). The default
// runs the job on the server's local engine; a fleet coordinator installs
// a dispatcher that routes the job to a worker node instead
// (internal/fleet). Implementations may optionally expose
//
//	StopAll() int
//
// which Shutdown invokes when the drain deadline expires to interrupt
// whatever is still in flight.
type Runner interface {
	RunJob(j *runner.Job) (res *runner.Result, cached bool, err error)
}

// localRunner executes jobs on the server's own engine — the single-node
// default for the dispatch seam.
type localRunner struct{ e *runner.Engine }

func (l localRunner) RunJob(j *runner.Job) (*runner.Result, bool, error) {
	b := l.e.Run([]*runner.Job{j})
	cached := b.Stats.CacheHits+b.Stats.Deduped > 0
	return b.Results[0], cached, b.Errs[0]
}

func (l localRunner) StopAll() int { return l.e.StopAll() }

// Config sizes the server.
type Config struct {
	// Engine executes the jobs; nil builds a default engine with an
	// in-memory cache. The server installs a trace.Fanout as the engine's
	// Events sink (preserving any sink already attached) so progress
	// observers and the service's own metrics share the lifecycle stream.
	Engine *runner.Engine
	// Runner overrides how admitted jobs are executed (nil = run on
	// Engine). A fleet coordinator supplies a dispatcher here; everything
	// else — admission, records, SSE, metrics — is unchanged.
	Runner Runner
	// Workers is the number of jobs simulated concurrently (<= 0 means
	// GOMAXPROCS). Each worker drives one single-job engine batch at a
	// time.
	Workers int
	// QueueCap bounds the admission queue; a submission that does not fit
	// is shed with a 429 (<= 0 means DefaultQueueCap).
	QueueCap int
	// MaxBatch bounds jobs per batch request (<= 0 means
	// DefaultMaxBatch).
	MaxBatch int
	// MaxRecords bounds retained completed job records; the oldest are
	// evicted first (their results remain in the engine cache, so a
	// resubmission is still answered without re-simulation). <= 0 means
	// DefaultMaxRecords.
	MaxRecords int
	// ProgressEvery is the in-run progress sample period, in simulated
	// cycles, for jobs executed by this server: samples stream to SSE
	// subscribers as `progress` events and feed the /metrics rate gauges.
	// 0 means gpu.DefaultProgressEvery; < 0 disables in-run sampling
	// (lifecycle events and end-of-run telemetry still flow). Sampling
	// never changes results or cache keys.
	ProgressEvery int64
	// Shards sets intra-run SM parallelism (gpu.Config.Shards) for jobs
	// executed by this server: each run's event steps Tick due SMs across
	// this many shard goroutines, byte-identical to serial execution.
	// Like ProgressEvery it is host tuning, excluded from the job key
	// (gpu.Config.Shards is json:"-"): a sharded run hits the same cache
	// entries as a serial twin. <= 0 leaves submitted jobs untouched.
	Shards int
}

// Defaults for Config's zero values.
const (
	DefaultQueueCap   = 64
	DefaultMaxBatch   = 256
	DefaultMaxRecords = 4096
	maxBatchesKept    = 1024
)

// Server is the simulation service. Create with New, serve with any
// http.Server (Server implements http.Handler), stop with Shutdown.
type Server struct {
	cfg    Config
	engine *runner.Engine
	runner Runner
	fan    *trace.Fanout
	reg    *metrics.Registry
	mux    *http.ServeMux

	mu       sync.Mutex
	records  map[string]*record // by id (= key prefix)
	batches  map[string]*batchRecord
	batchIDs []string // insertion order, for eviction
	doneIDs  []string // completed records, eviction order
	queue    *admitQueue
	draining bool
	batchSeq int64

	wg      sync.WaitGroup
	drainCh chan struct{}

	// test hook: runs in the worker after dequeue, before the job starts.
	testBeforeRun func(*record)

	// metrics
	mSubmitted  *metrics.Counter
	mCoalesced  *metrics.Counter
	mShed       *metrics.Counter
	mPreempted  *metrics.Counter
	mDone       *metrics.Counter
	mFailed     *metrics.Counter
	mInflight   *metrics.Gauge
	mLatency    *metrics.Histogram
	mSSEOpen    *metrics.Gauge
	mSSEDropped *metrics.Counter
	mSamples    *metrics.Counter

	// rates holds the live sim-cycles/s of each in-flight sampled job
	// (updated per progress sample, removed at completion); the
	// finereg_sim_cycles_per_sec gauge sums it at scrape time.
	rateMu sync.Mutex
	rates  map[string]float64
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		cfg.Engine = &runner.Engine{Cache: runner.NewCache("")}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxRecords <= 0 {
		cfg.MaxRecords = DefaultMaxRecords
	}
	if cfg.ProgressEvery == 0 {
		cfg.ProgressEvery = gpu.DefaultProgressEvery
	}
	s := &Server{
		cfg:     cfg,
		engine:  cfg.Engine,
		runner:  cfg.Runner,
		reg:     metrics.NewRegistry(),
		records: map[string]*record{},
		batches: map[string]*batchRecord{},
		queue:   newAdmitQueue(cfg.QueueCap),
		drainCh: make(chan struct{}),
		rates:   map[string]float64{},
	}
	if s.runner == nil {
		s.runner = localRunner{e: s.engine}
	}

	// The engine's Events slot becomes a fan-out: an existing sink (a CLI
	// progress line) keeps receiving, and the server attaches its own
	// metrics sink alongside.
	if fan, ok := s.engine.Events.(*trace.Fanout); ok {
		s.fan = fan
	} else {
		s.fan = trace.NewFanout()
		if s.engine.Events != nil {
			s.fan.Subscribe(s.engine.Events)
		}
		s.engine.Events = s.fan
	}

	s.initMetrics()
	s.fan.Subscribe(engineSink{s})
	s.mux = http.NewServeMux()
	s.routes()

	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Fanout returns the engine's event fan-out so callers can attach their
// own observers (finereg-serve subscribes a trace.Progress line).
func (s *Server) Fanout() *trace.Fanout { return s.fan }

// Registry returns the server's metrics registry (for registering extra
// process-level series before serving).
func (s *Server) Registry() *metrics.Registry { return s.reg }

func (s *Server) initMetrics() {
	r := s.reg
	s.mSubmitted = r.NewCounter("finereg_serve_submissions_total",
		"Job submissions accepted (including coalesced duplicates).")
	s.mCoalesced = r.NewCounter("finereg_serve_coalesced_total",
		"Submissions answered by an existing in-flight or completed job.")
	s.mShed = r.NewCounter("finereg_serve_shed_total",
		"Submissions rejected with 429 because the admission queue was full.")
	s.mPreempted = r.NewCounter("finereg_serve_preempted_total",
		"Queued jobs evicted by higher-priority submissions to a full queue.")
	s.mDone = r.NewCounter("finereg_serve_jobs_done_total",
		"Jobs that finished successfully.")
	s.mFailed = r.NewCounter("finereg_serve_jobs_failed_total",
		"Jobs that finished with an error.")
	s.mInflight = r.NewGauge("finereg_serve_inflight_jobs",
		"Jobs currently executing on a worker.")
	s.mSSEOpen = r.NewGauge("finereg_serve_sse_subscribers",
		"Open SSE event-stream connections.")
	s.mSSEDropped = r.NewCounter("finereg_serve_sse_dropped_total",
		"Events dropped because an SSE subscriber lagged behind its buffer.")
	s.mSamples = r.NewCounter("finereg_serve_progress_samples_total",
		"In-run progress samples received from executing simulations.")
	s.mLatency = r.NewHistogram("finereg_serve_job_latency_seconds",
		"Admission-to-completion latency of finished jobs.",
		metrics.DefLatencyBuckets)
	r.NewGaugeFunc("finereg_serve_queue_depth",
		"Jobs waiting in the admission queue.",
		func() float64 { return float64(s.queue.depth()) })
	r.NewGaugeFunc("finereg_serve_queue_capacity",
		"Admission queue capacity.",
		func() float64 { return float64(s.queue.capacity()) })
	// Engine- and cache-level series, read at scrape time.
	r.NewCounterFunc("finereg_engine_jobs_executed_total",
		"Fresh simulations executed by the run engine.",
		func() int64 { return s.engine.Stats().Executed })
	r.NewCounterFunc("finereg_engine_cache_hits_total",
		"Engine results served from the content-addressed cache.",
		func() int64 { return s.engine.Stats().CacheHits })
	// Cache hits split by the tier that served them: process memory, the
	// node's on-disk store (L2), or the fleet's shared remote tier.
	if c := s.engine.Cache; c != nil {
		vec := r.NewCounterFuncVec("finereg_cache_hits_total",
			"Content-addressed cache hits by serving tier.", "source")
		vec.Add("mem", func() int64 { return c.Stats().MemHits })
		vec.Add("disk", func() int64 { return c.Stats().DiskHits })
		vec.Add("remote", func() int64 { return c.Stats().RemoteHits })
		r.NewCounterFunc("finereg_cache_misses_total",
			"Content-addressed cache lookups that missed every tier.",
			func() int64 { return c.Stats().Misses })
	}
	r.NewGaugeFunc("finereg_engine_inflight_simulations",
		"Simulations currently executing inside the engine.",
		func() float64 { return float64(s.engine.InFlight()) })
	r.NewGaugeFunc("finereg_cache_hit_ratio",
		"Cache hits over resolved jobs (hits + fresh executions).",
		func() float64 {
			st := s.engine.Stats()
			den := st.CacheHits + st.Executed
			if den == 0 {
				return 0
			}
			return float64(st.CacheHits) / float64(den)
		})
	// Fleet-wide simulation telemetry. The aggregate live rate sums each
	// in-flight job's last sampled sim-cycles/s; the per-op totals expose
	// every internal/telemetry counter (process-global: all simulations
	// this process has run, not only those submitted through the server).
	r.NewGaugeFunc("finereg_sim_cycles_per_sec",
		"Aggregate live simulation rate over all in-flight sampled jobs.",
		func() float64 {
			s.rateMu.Lock()
			defer s.rateMu.Unlock()
			var sum float64
			for _, v := range s.rates {
				sum += v
			}
			return sum
		})
	for _, c := range telemetry.Counters() {
		c := c
		r.NewCounterFunc("finereg_sim_"+c.Name()+"_total",
			"Simulator op count (internal/telemetry, process-global).",
			c.Value)
	}
}

// onProgress is the per-record progress callback installed on admitted
// jobs: it appends/broadcasts the SSE progress event and maintains the
// fleet rate gauge. Runs on the simulating worker goroutine.
func (s *Server) onProgress(rec *record) func(trace.ProgressSample) {
	return func(ps trace.ProgressSample) {
		rec.progress(ps)
		s.mSamples.Inc()
		s.rateMu.Lock()
		if ps.Final {
			delete(s.rates, rec.id)
		} else {
			s.rates[rec.id] = ps.CyclesPerSec
		}
		s.rateMu.Unlock()
	}
}

// engineSink feeds engine-level lifecycle events into the server metrics;
// it is one subscriber of the trace fan-out (a progress line is another).
type engineSink struct{ s *Server }

func (engineSink) BatchStart(int)       {}
func (engineSink) BatchEnd()            {}
func (engineSink) JobStart(int, string) {}
func (engineSink) JobProgress(int, string, trace.ProgressSample) {
	// Per-record progress is wired through the job's own callback (the
	// engine's batch-local job id cannot distinguish concurrent one-job
	// batches); the fan-out event still serves external subscribers like
	// the CLI progress line.
}
func (e engineSink) JobDone(id int, label string, cached bool, err error) {
	// Engine-side completion accounting happens via CounterFuncs reading
	// Engine.Stats(); nothing to do here yet. The subscriber exists so the
	// fan-out always has a server-side consumer and to keep the hook where
	// richer per-event metrics would attach.
}

// fingerprint mirrors the engine's key fingerprint selection.
func (s *Server) fingerprint() string {
	if s.engine.Cache != nil && s.engine.Cache.Fingerprint != "" {
		return s.engine.Cache.Fingerprint
	}
	return runner.SimFingerprint
}

// jobID derives the server identity from the content-addressed key.
func jobID(key string) string { return "j" + key[:16] }

// errDraining, errQueueFull, and errPreempted classify admission
// failures.
var (
	errDraining  = fmt.Errorf("serve: server is draining")
	errQueueFull = fmt.Errorf("serve: admission queue full")
	errPreempted = fmt.Errorf("serve: preempted by a higher-priority submission")
)

// jobMeta carries per-submission admission attributes that are not part
// of the job's content-addressed identity.
type jobMeta struct {
	priority int
	client   string
}

// admit atomically admits a set of resolved jobs: every job is either
// coalesced onto an existing record or enqueued; if the fresh jobs do not
// all fit in the queue — after preempting any strictly lower-priority
// queued jobs — nothing is admitted and errQueueFull is returned (a batch
// is admitted whole or shed whole). meta may be nil (all defaults); when
// present it must be parallel to jobs. Returns one status per job in
// input order.
func (s *Server) admit(jobs []*runner.Job, meta []jobMeta) ([]SubmitStatus, []*record, error) {
	out, recs, victims, err := s.admitLocked(jobs, meta)
	// Victims are failed outside s.mu: completed() re-locks it, and
	// record transitions never need the server lock.
	for _, v := range victims {
		s.mPreempted.Inc()
		if v.finish(nil, errPreempted, false) {
			s.completed(v, false)
		}
	}
	return out, recs, err
}

func (s *Server) admitLocked(jobs []*runner.Job, meta []jobMeta) ([]SubmitStatus, []*record, []*record, error) {
	fp := s.fingerprint()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, nil, nil, errDraining
	}

	type slot struct {
		rec       *record
		coalesced bool
	}
	metaAt := func(i int) jobMeta {
		if meta == nil {
			return jobMeta{}
		}
		return meta[i]
	}
	slots := make([]slot, len(jobs))
	var fresh []*record
	var replaced []string // ids of preempted records being re-admitted
	newIDs := map[string]*record{}
	var raises []struct {
		rec *record
		pri int
	}
	for i, j := range jobs {
		key := j.Key(fp)
		id := jobID(key)
		if rec, ok := s.records[id]; ok && !rec.wasPreempted() {
			slots[i] = slot{rec: rec, coalesced: true}
			// A higher-priority duplicate promotes the shared record if
			// it is still waiting in the queue.
			if p := metaAt(i).priority; p > rec.pri() {
				raises = append(raises, struct {
					rec *record
					pri int
				}{rec, p})
			}
			continue
		} else if ok {
			// The earlier incarnation was preempted before running; a
			// resubmission re-runs it under a fresh record (same id).
			replaced = append(replaced, id)
		}
		if rec, ok := newIDs[id]; ok { // duplicate within this submission
			slots[i] = slot{rec: rec, coalesced: true}
			if p := metaAt(i).priority; p > rec.pri() {
				rec.setPriority(p)
			}
			continue
		}
		rec := newRecord(id, key, j)
		rec.dropped = s.mSSEDropped
		rec.client = metaAt(i).client
		rec.setPriority(metaAt(i).priority)
		if s.cfg.ProgressEvery > 0 {
			// In-run sampling: excluded from the job key, so the sampled
			// job hits the same cache entries as an unsampled twin.
			j.Cfg.ProgressEvery = s.cfg.ProgressEvery
			j.Cfg.Progress = s.onProgress(rec)
		}
		if s.cfg.Shards > 0 {
			// Intra-run parallelism: host tuning, also key-excluded.
			j.Cfg.Shards = s.cfg.Shards
		}
		newIDs[id] = rec
		fresh = append(fresh, rec)
		slots[i] = slot{rec: rec}
	}

	// The submit event is appended before the queue can hand the record
	// to a worker, so streams always open with "submit". Records of a
	// shed batch are never registered and thus never observable.
	for _, rec := range fresh {
		rec.submitted()
	}
	victims, ok := s.queue.admit(fresh)
	if !ok {
		s.mShed.Add(int64(len(jobs)))
		return nil, nil, nil, errQueueFull
	}
	for _, id := range replaced {
		s.forgetDoneLocked(id)
	}
	for _, rec := range fresh {
		s.records[rec.id] = rec
	}
	for _, r := range raises {
		s.queue.raise(r.rec, r.pri)
	}

	out := make([]SubmitStatus, len(jobs))
	recs := make([]*record, len(jobs))
	for i, sl := range slots {
		st := sl.rec.status()
		out[i] = SubmitStatus{ID: st.ID, Key: st.Key, State: st.State, Coalesced: sl.coalesced}
		recs[i] = sl.rec
		s.mSubmitted.Inc()
		if sl.coalesced {
			s.mCoalesced.Inc()
		}
	}
	return out, recs, victims, nil
}

// forgetDoneLocked drops id's completed-record eviction entry when the
// record is replaced in place (a preempted job being re-admitted), so the
// stale entry cannot later evict the fresh incarnation.
func (s *Server) forgetDoneLocked(id string) {
	for i, d := range s.doneIDs {
		if d == id {
			s.doneIDs = append(s.doneIDs[:i], s.doneIDs[i+1:]...)
			return
		}
	}
}

// worker executes admitted jobs one at a time through the dispatch seam
// (the local engine by default, a fleet dispatcher on a coordinator).
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		rec, ok := s.queue.pop()
		if !ok {
			return
		}
		if s.isDraining() {
			// Queued but never started: fail fast so waiters unblock.
			if rec.finish(nil, errDraining, false) {
				s.completed(rec, false)
			}
			continue
		}
		if hook := s.testBeforeRun; hook != nil {
			hook(rec)
		}
		rec.start()
		s.mInflight.Add(1)
		res, cached, err := s.runner.RunJob(rec.job)
		s.mInflight.Add(-1)
		if rec.finish(res, err, cached) {
			s.completed(rec, err == nil)
		}
	}
}

// completed does terminal bookkeeping: counters, latency, and record
// eviction beyond the retention cap.
func (s *Server) completed(rec *record, ok bool) {
	if ok {
		s.mDone.Inc()
	} else {
		s.mFailed.Inc()
	}
	if lat := rec.latency(); lat > 0 {
		s.mLatency.Observe(lat.Seconds())
	}
	// The Final sample normally clears the rate entry; failed or
	// interrupted runs never emit one, so clear unconditionally.
	s.rateMu.Lock()
	delete(s.rates, rec.id)
	s.rateMu.Unlock()
	s.mu.Lock()
	s.doneIDs = append(s.doneIDs, rec.id)
	for len(s.doneIDs) > s.cfg.MaxRecords {
		victim := s.doneIDs[0]
		s.doneIDs = s.doneIDs[1:]
		delete(s.records, victim)
	}
	s.mu.Unlock()
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// lookup finds a record by id.
func (s *Server) lookup(id string) *record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.records[id]
}

// registerBatch stores a batch record (bounded history).
func (s *Server) registerBatch(recs []*record) *batchRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batchSeq++
	b := &batchRecord{id: fmt.Sprintf("b%06d", s.batchSeq), recs: recs}
	s.batches[b.id] = b
	s.batchIDs = append(s.batchIDs, b.id)
	for len(s.batchIDs) > maxBatchesKept {
		victim := s.batchIDs[0]
		s.batchIDs = s.batchIDs[1:]
		delete(s.batches, victim)
	}
	return b
}

func (s *Server) lookupBatch(id string) *batchRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batches[id]
}
