package serve

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"finereg/internal/runner"
)

// submitOne submits one job with admission metadata and returns its
// status, failing the test on any error.
func submitOne(t *testing.T, c *Client, j *runner.Job, prio int, client string) SubmitStatus {
	t.Helper()
	req := RequestFromJob(j)
	req.Priority = prio
	req.Client = client
	st, err := c.SubmitJob(context.Background(), req)
	if err != nil {
		t.Fatalf("submit %s: %v", j.Label, err)
	}
	return *st
}

// TestPriorityDequeueOrder: with one worker parked, queued jobs must
// dequeue in strict priority order regardless of arrival order.
func TestPriorityDequeueOrder(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, QueueCap: 8})
	entered, release := blockWorkers(s)

	// Park the worker on a dummy so subsequent submissions pile up.
	submitOne(t, c, tinyJob(t, "CS", runner.Baseline()), 0, "")
	<-entered

	low := submitOne(t, c, tinyJob(t, "CS", runner.VirtualThread()), 0, "")
	high := submitOne(t, c, tinyJob(t, "LB", runner.Baseline()), 5, "")
	mid := submitOne(t, c, tinyJob(t, "LB", runner.VirtualThread()), 2, "")

	close(release)
	want := []string{high.ID, mid.ID, low.ID}
	for i, id := range want {
		rec := <-entered
		if rec.id != id {
			t.Fatalf("dequeue %d: got %s (prio %d), want %s", i, rec.id, rec.pri(), id)
		}
	}
}

// TestFairShareRoundRobin: equal-priority jobs of different clients must
// drain round-robin, so one client's bulk sweep cannot starve another.
func TestFairShareRoundRobin(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, QueueCap: 16})
	entered, release := blockWorkers(s)

	submitOne(t, c, tinyJob(t, "CS", runner.Baseline()), 0, "")
	<-entered

	// alice bulk-submits three, then bob two; FIFO would run all of
	// alice's first.
	submitOne(t, c, tinyJob(t, "CS", runner.VirtualThread()), 0, "alice")
	submitOne(t, c, tinyJob(t, "LB", runner.Baseline()), 0, "alice")
	submitOne(t, c, tinyJob(t, "LB", runner.VirtualThread()), 0, "alice")
	submitOne(t, c, tinyJob(t, "CS", runner.FineRegDefault()), 0, "bob")
	submitOne(t, c, tinyJob(t, "LB", runner.FineRegDefault()), 0, "bob")

	close(release)
	var got []string
	for i := 0; i < 5; i++ {
		rec := <-entered
		got = append(got, rec.clientID())
	}
	want := []string{"alice", "bob", "alice", "bob", "alice"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}
}

// TestPreemption: a higher-priority submission to a full queue evicts a
// strictly lower-priority queued job instead of being shed; an
// equal-priority newcomer still sheds; and the preempted job can be
// resubmitted and re-run.
func TestPreemption(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	entered, release := blockWorkers(s)

	submitOne(t, c, tinyJob(t, "CS", runner.Baseline()), 0, "")
	<-entered // worker parked; queue now empty

	victimJob := tinyJob(t, "CS", runner.VirtualThread())
	victim := submitOne(t, c, victimJob, 0, "") // fills the one-slot queue
	winner := submitOne(t, c, tinyJob(t, "LB", runner.Baseline()), 3, "")

	// The victim must be terminally failed with the preemption error.
	vs, err := c.JobStatus(context.Background(), victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if vs.State != stateFailed || !strings.Contains(vs.Error, "preempted") {
		t.Fatalf("victim state %q error %q, want failed/preempted", vs.State, vs.Error)
	}

	// Equal priority does not preempt: shed with 429.
	req := RequestFromJob(tinyJob(t, "LB", runner.VirtualThread()))
	req.Priority = 3
	_, err = c.SubmitJob(context.Background(), req)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("equal-priority submission to full queue: got %v, want 429", err)
	}

	if body := scrapeMetrics(t, c); !strings.Contains(body, "finereg_serve_preempted_total 1") {
		t.Errorf("metrics missing preemption count:\n%s", grepMetric(body, "preempted"))
	}

	close(release)
	waitJobDone(t, c, winner.ID)

	// The preempted job resubmits as a fresh record (same id) and runs.
	resub := submitOne(t, c, victimJob, 0, "")
	if resub.ID != victim.ID {
		t.Fatalf("resubmitted victim got id %s, want %s", resub.ID, victim.ID)
	}
	if resub.Coalesced {
		t.Fatal("resubmitted preempted job was coalesced onto the failed record")
	}
	st := waitJobDone(t, c, victim.ID)
	if st.State != stateDone {
		t.Fatalf("resubmitted victim finished %s (%s), want done", st.State, st.Error)
	}
	_ = s
}

// waitJobDone polls a job until it is terminal.
func waitJobDone(t *testing.T, c *Client, id string) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := c.JobStatus(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Done() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func scrapeMetrics(t *testing.T, c *Client) string {
	t.Helper()
	resp, err := http.Get(c.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// grepMetric filters a metrics body to lines containing substr (test
// failure diagnostics).
func grepMetric(body, substr string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestShedWaitJitter: the backoff sleep must stay within [wait/2, wait]
// and honor Retry-After.
func TestShedWaitJitter(t *testing.T) {
	distinct := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		w := shedWait(time.Second, "")
		if w < 500*time.Millisecond || w > time.Second {
			t.Fatalf("shedWait(1s) = %v outside [500ms, 1s]", w)
		}
		distinct[w] = true
	}
	if len(distinct) < 2 {
		t.Error("shedWait produced no jitter over 64 draws")
	}
	for i := 0; i < 64; i++ {
		if w := shedWait(time.Second, "2"); w < time.Second || w > 2*time.Second {
			t.Fatalf("shedWait(Retry-After: 2) = %v outside [1s, 2s]", w)
		}
	}
	if w := shedWait(time.Second, "bogus"); w < 500*time.Millisecond || w > time.Second {
		t.Fatalf("shedWait with unparseable Retry-After = %v, want base fallback", w)
	}
	if w := shedWait(0, ""); w != 0 {
		t.Fatalf("shedWait(0) = %v, want 0", w)
	}
}

// TestMetricsHitSources: a cache hit on an evicted record's job must show
// up under finereg_cache_hits_total{source="mem"}.
func TestMetricsHitSources(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, MaxRecords: 1})
	j1 := tinyJob(t, "CS", runner.Baseline())
	j2 := tinyJob(t, "CS", runner.VirtualThread())
	if _, err := c.RunJobs(context.Background(), []*runner.Job{j1, j2}); err != nil {
		t.Fatal(err)
	}
	// j2's completion evicted j1's record (MaxRecords 1), so resubmitting
	// j1 re-enters the queue and hits the engine's memory cache tier.
	st := submitOne(t, c, j1, 0, "")
	waitJobDone(t, c, st.ID)

	body := scrapeMetrics(t, c)
	for _, want := range []string{
		`finereg_cache_hits_total{source="mem"} 1`,
		`finereg_cache_hits_total{source="disk"} 0`,
		`finereg_cache_hits_total{source="remote"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, grepMetric(body, "cache_hits"))
		}
	}
}
