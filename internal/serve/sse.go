package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// handleJobEvents streams a job's lifecycle as server-sent events: the
// recorded history first (so late subscribers still see "submit"), then
// live events until the job finishes, the client disconnects, or the
// server drains. Each event renders as
//
//	id: <seq>
//	event: <kind>
//	data: <Event JSON>
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	rec := s.lookup(r.PathValue("id"))
	if rec == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "serve: unknown job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError,
			errorBody{Error: "serve: response writer does not support streaming"})
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	past, ch, cancel := rec.subscribe()
	defer cancel()
	s.mSSEOpen.Add(1)
	defer s.mSSEOpen.Add(-1)

	for _, ev := range past {
		if !writeSSE(w, ev) {
			return
		}
	}
	fl.Flush()
	if len(past) > 0 && past[len(past)-1].Kind == eventFinish {
		return // already terminal; history was the whole stream
	}

	for {
		select {
		case ev := <-ch:
			if !writeSSE(w, ev) {
				return
			}
			fl.Flush()
			if ev.Kind == eventFinish {
				return
			}
		case <-rec.done:
			// The terminal event may have raced past the subscription (or
			// been dropped on lag); emit the definitive finish event from
			// the record and stop.
			drainFinish(w, fl, rec, ch)
			return
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			return
		}
	}
}

// drainFinish flushes any buffered events and guarantees the stream ends
// with the finish event.
func drainFinish(w http.ResponseWriter, fl http.Flusher, rec *record, ch chan Event) {
	sawFinish := false
	for {
		select {
		case ev := <-ch:
			if !writeSSE(w, ev) {
				return
			}
			sawFinish = sawFinish || ev.Kind == eventFinish
		default:
			if !sawFinish {
				rec.mu.Lock()
				var last Event
				if n := len(rec.events); n > 0 {
					last = rec.events[n-1]
				}
				rec.mu.Unlock()
				if last.Kind == eventFinish {
					writeSSE(w, last)
				}
			}
			fl.Flush()
			return
		}
	}
}

// writeSSE renders one event; reports false on a write error (client
// gone).
func writeSSE(w http.ResponseWriter, ev Event) bool {
	data, err := json.Marshal(ev)
	if err != nil {
		return false
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
	return err == nil
}
