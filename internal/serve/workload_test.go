package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"finereg/internal/gpu"
	"finereg/internal/runner"
	"finereg/internal/workload"
)

const testProgram = `.kernel demo
.regs 12
.warps 2
.grid 8
  MOV R0, #0
  MOV R1, #4
top:
  LDG R2, [R0] pattern=coalesced region=1 footprint=65536
  FFMA R3, R2, R2, R3
  IADD R0, R0, #1
  ISETP R4, R0, R1
  @R4 BRA top trip=4
  STG [R0], R3 region=15
  EXIT
`

// TestProgramOverHTTPByteIdentical is the ingestion acceptance test: a
// user program submitted via POST /v1/jobs must produce metrics
// byte-identical to the same program run in-process, under the same
// content-addressed key.
func TestProgramOverHTTPByteIdentical(t *testing.T) {
	cfg := gpu.Default().Scale(2)
	jobs := []*runner.Job{
		{Cfg: cfg, Policy: runner.Baseline(), Programs: []workload.Program{{Source: testProgram}}},
		{Cfg: cfg, Policy: runner.Baseline(), Programs: []workload.Program{
			{Source: testProgram}, {Bench: "CS", Grid: 8},
		}},
	}
	direct := (&runner.Engine{}).Run(jobs)
	if err := direct.Err(); err != nil {
		t.Fatalf("direct run: %v", err)
	}

	_, c := newTestServer(t, Config{Workers: 2, QueueCap: 8})
	remote, err := c.RunJobs(context.Background(), jobs)
	if err != nil {
		t.Fatalf("remote run: %v", err)
	}
	if err := remote.Err(); err != nil {
		t.Fatalf("remote batch: %v", err)
	}
	for i := range jobs {
		want := mustJSON(t, direct.Results[i])
		got := mustJSON(t, remote.Results[i])
		if !bytes.Equal(want, got) {
			t.Errorf("job %d: remote result differs from in-process run\ndirect: %s\nremote: %s", i, want, got)
		}
	}
	if len(remote.Results[1].Segments) != 2 {
		t.Errorf("stream segments lost over the wire: %d", len(remote.Results[1].Segments))
	}

	// Key agreement for program jobs: the server derives the same
	// content-addressed key, so resubmission coalesces.
	sub, err := c.SubmitBatch(context.Background(), []JobRequest{RequestFromJob(jobs[0])})
	if err != nil {
		t.Fatal(err)
	}
	if want := jobs[0].Key(runner.SimFingerprint); sub.Jobs[0].Key != want {
		t.Errorf("server key %s != local key %s", sub.Jobs[0].Key, want)
	}
	if !sub.Jobs[0].Coalesced {
		t.Error("resubmitted program job was not coalesced")
	}
}

// TestProgramBadRequestStructured pins the 400 contract: a malformed
// program is rejected at admission with the assembler's position in the
// structured envelope, never a worker panic or a bare string.
func TestProgramBadRequestStructured(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, MaxBatch: 4})

	post := func(path string, body any) *http.Response {
		t.Helper()
		resp, err := http.Post(c.Base+path, "application/json", bytes.NewReader(mustJSON(t, body)))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	decode := func(resp *http.Response) errorBody {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatalf("error envelope: %v", err)
		}
		return eb
	}

	bad := workload.Program{Source: "MOV R0, #0\nMOV R99, #1\nEXIT"}
	eb := decode(post("/v1/jobs", JobRequest{Policy: runner.Baseline(), Programs: []workload.Program{bad}}))
	if eb.Field != "source" {
		t.Errorf("Field = %q, want %q (%s)", eb.Field, "source", eb.Error)
	}
	if eb.Line != 2 || eb.Col < 1 {
		t.Errorf("position = line %d col %d, want line 2 with a column (%s)", eb.Line, eb.Col, eb.Error)
	}

	// Batch submissions carry the failing program's index within its job.
	eb = decode(post("/v1/batches", BatchRequest{Jobs: []JobRequest{{
		Policy:   runner.Baseline(),
		Programs: []workload.Program{{Bench: "CS", Grid: 8}, bad},
	}}}))
	if eb.Program != 1 {
		t.Errorf("Program = %d, want 1 (%s)", eb.Program, eb.Error)
	}
	if eb.Line != 2 {
		t.Errorf("Line = %d, want 2 (%s)", eb.Line, eb.Error)
	}

	// Mixed-form and partition-mismatch requests fail loudly too.
	eb = decode(post("/v1/jobs", JobRequest{Bench: "CS", Policy: runner.Baseline(),
		Programs: []workload.Program{{Bench: "LB"}}}))
	if eb.Error == "" {
		t.Error("mixed programs+bench accepted")
	}
	partCfg := gpu.Default().Scale(2)
	partCfg.Partitions = []int{1, 1}
	eb = decode(post("/v1/jobs", JobRequest{Cfg: &partCfg, Policy: runner.Baseline(),
		Programs: []workload.Program{{Bench: "CS", Grid: 4}}}))
	if eb.Error == "" {
		t.Error("partition/program count mismatch accepted")
	}
}
