package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"finereg/internal/runner"
)

// Client talks to a finereg-serve instance. It speaks the exact-form job
// encoding (RequestFromJob), so a job submitted through a Client resolves
// to the same canonical key — and therefore the same cache entry — as the
// same job run in-process.
type Client struct {
	// Base is the server root, e.g. "http://localhost:8321".
	Base string
	// HTTP is the transport (nil = http.DefaultClient).
	HTTP *http.Client
	// PollInterval paces WaitBatch status polls (0 = 250ms).
	PollInterval time.Duration
	// ShedBackoff paces retries after a 429 load shed (0 = 1s; the
	// server's Retry-After header, when present, takes precedence). The
	// actual sleep is jittered uniformly over [wait/2, wait] so a herd of
	// clients shed together does not retry in lockstep.
	ShedBackoff time.Duration
	// Priority is applied to every submitted job (see
	// JobRequest.Priority). Zero is the default priority.
	Priority int
	// ClientID is the fair-share admission bucket reported with every
	// submission (see JobRequest.Client). Empty means the shared bucket.
	ClientID string
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string { return c.Base + path }

// APIError is a non-2xx server response: the HTTP status plus the decoded
// error envelope (429 responses carry queue depth/capacity).
type APIError struct {
	Status int
	Body   errorBody
}

// Error implements error.
func (e *APIError) Error() string {
	if e.Body.Error != "" {
		return fmt.Sprintf("serve: HTTP %d: %s", e.Status, e.Body.Error)
	}
	return fmt.Sprintf("serve: HTTP %d", e.Status)
}

// apiError decodes a non-2xx response into an *APIError.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	ae := &APIError{Status: resp.StatusCode}
	if json.Unmarshal(body, &ae.Body) != nil || ae.Body.Error == "" {
		ae.Body.Error = string(bytes.TrimSpace(body))
	}
	return ae
}

func (c *Client) postJSON(ctx context.Context, path string, in, out any) (*http.Response, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url(path), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return resp, apiError(resp)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp, fmt.Errorf("serve: decoding %s response: %w", path, err)
		}
	}
	return resp, nil
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// shedWait resolves one 429 backoff sleep: the server's Retry-After (in
// seconds, when parseable) overrides base, and the result is jittered
// uniformly over [wait/2, wait]. Without jitter, every client shed by the
// same full queue retries at the same instant and the herd sheds again.
func shedWait(base time.Duration, retryAfter string) time.Duration {
	wait := base
	if retryAfter != "" {
		if secs, err := strconv.Atoi(retryAfter); err == nil && secs > 0 {
			wait = time.Duration(secs) * time.Second
		}
	}
	if wait <= 0 {
		return 0
	}
	half := wait / 2
	return half + rand.N(wait-half+1)
}

// applyMeta stamps the client's Priority/ClientID onto the requests
// (copying; per-request values already set win).
func (c *Client) applyMeta(reqs []JobRequest) []JobRequest {
	if c.Priority == 0 && c.ClientID == "" {
		return reqs
	}
	out := make([]JobRequest, len(reqs))
	copy(out, reqs)
	for i := range out {
		if out[i].Priority == 0 {
			out[i].Priority = c.Priority
		}
		if out[i].Client == "" {
			out[i].Client = c.ClientID
		}
	}
	return out
}

// SubmitBatch submits a batch, retrying 429 load sheds with jittered
// backoff (the 429 is the server protecting itself; the client's job is
// patience). A batch that can never fit — larger than the server's whole
// queue — fails immediately instead of retrying forever.
func (c *Client) SubmitBatch(ctx context.Context, reqs []JobRequest) (*BatchSubmitStatus, error) {
	backoff := c.ShedBackoff
	if backoff <= 0 {
		backoff = time.Second
	}
	reqs = c.applyMeta(reqs)
	for {
		var st BatchSubmitStatus
		resp, err := c.postJSON(ctx, "/v1/batches", BatchRequest{Jobs: reqs}, &st)
		if err == nil {
			return &st, nil
		}
		var ae *APIError
		if resp == nil || !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
			return nil, err
		}
		if ae.Body.QueueCap > 0 && len(reqs) > ae.Body.QueueCap {
			return nil, fmt.Errorf("serve: batch of %d jobs can never fit the server's queue of %d: %w",
				len(reqs), ae.Body.QueueCap, err)
		}
		select {
		case <-time.After(shedWait(backoff, resp.Header.Get("Retry-After"))):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// SubmitJob submits one job (no retry; callers wanting shed patience use
// SubmitBatch).
func (c *Client) SubmitJob(ctx context.Context, req JobRequest) (*SubmitStatus, error) {
	reqs := c.applyMeta([]JobRequest{req})
	var st SubmitStatus
	if _, err := c.postJSON(ctx, "/v1/jobs", reqs[0], &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// StreamEvents subscribes to a job's SSE lifecycle stream, invoking fn
// for every decoded event until fn returns false, the stream ends, or ctx
// expires. Returns nil on a clean stop (fn false, or stream closed after
// a terminal event was delivered) and the transport/decode error
// otherwise. The fleet coordinator uses this to forward a worker's
// progress stream upward.
func (c *Client) StreamEvents(ctx context.Context, id string, fn func(Event) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/events"), nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	terminal := false
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue // event:/id: lines and blank separators
		}
		var ev Event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			return fmt.Errorf("serve: decoding event stream: %w", err)
		}
		if ev.Kind == eventFinish {
			terminal = true
		}
		if !fn(ev) {
			return nil
		}
	}
	if err := sc.Err(); err != nil && !terminal {
		return err
	}
	return nil
}

// JobStatus fetches one job's status.
func (c *Client) JobStatus(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.getJSON(ctx, "/v1/jobs/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// BatchStatus fetches one batch's status.
func (c *Client) BatchStatus(ctx context.Context, id string) (*BatchStatus, error) {
	var st BatchStatus
	if err := c.getJSON(ctx, "/v1/batches/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// WaitBatch polls a batch until every job is terminal (or ctx expires)
// and returns the final status.
func (c *Client) WaitBatch(ctx context.Context, id string) (*BatchStatus, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	for {
		st, err := c.BatchStatus(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.Finished() {
			return st, nil
		}
		select {
		case <-time.After(interval):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// DefaultSubmitChunk is the per-request job count RunJobs submits. Small
// enough to fit the server's default admission queue with room to spare;
// chunks stream in as earlier ones drain, with 429 backoff as the pacing
// signal.
const DefaultSubmitChunk = 16

// RunJobs submits jobs (chunked), waits for completion, and reshapes the
// statuses into a runner.Batch, making the remote server a drop-in
// replacement for Engine.Run (internal/experiments uses exactly this).
func (c *Client) RunJobs(ctx context.Context, jobs []*runner.Job) (*runner.Batch, error) {
	start := time.Now()
	reqs := make([]JobRequest, len(jobs))
	for i, j := range jobs {
		reqs[i] = RequestFromJob(j)
	}

	// Submit every chunk before waiting on any: the server runs chunk N
	// while chunk N+1 waits out its 429 backoff, so the whole set
	// pipelines through the bounded queue.
	type span struct {
		id         string
		start, end int
	}
	var spans []span
	for lo := 0; lo < len(reqs); lo += DefaultSubmitChunk {
		hi := lo + DefaultSubmitChunk
		if hi > len(reqs) {
			hi = len(reqs)
		}
		sub, err := c.SubmitBatch(ctx, reqs[lo:hi])
		if err != nil {
			return nil, err
		}
		spans = append(spans, span{id: sub.ID, start: lo, end: hi})
	}

	b := &runner.Batch{
		Jobs:    jobs,
		Results: make([]*runner.Result, len(jobs)),
		Errs:    make([]error, len(jobs)),
	}
	b.Stats.Submitted = len(jobs)
	for _, sp := range spans {
		st, err := c.WaitBatch(ctx, sp.id)
		if err != nil {
			return nil, err
		}
		if len(st.Jobs) != sp.end-sp.start {
			return nil, fmt.Errorf("serve: batch %s returned %d statuses for %d jobs",
				sp.id, len(st.Jobs), sp.end-sp.start)
		}
		for k, js := range st.Jobs {
			i := sp.start + k
			switch {
			case js.State == stateFailed:
				b.Errs[i] = fmt.Errorf("serve: job %s (%s): %s", js.ID, jobs[i].Label, js.Error)
				b.Stats.Failed++
			case js.Result != nil:
				b.Results[i] = js.Result
				if js.Cached {
					b.Stats.CacheHits++
				} else {
					b.Stats.Executed++
				}
			default:
				b.Errs[i] = fmt.Errorf("serve: job %s (%s) finished without a result", js.ID, jobs[i].Label)
				b.Stats.Failed++
			}
		}
	}
	b.Stats.Wall = time.Since(start)
	return b, nil
}
