package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"finereg/internal/gpu"
	"finereg/internal/kernels"
	"finereg/internal/runner"
)

// tinyJob returns a small but real simulation job (2-SM machine, shrunken
// grid) so service tests exercise the actual simulator.
func tinyJob(t *testing.T, bench string, pol runner.PolicySpec) *runner.Job {
	t.Helper()
	p, err := kernels.ProfileByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	return &runner.Job{
		Cfg:     gpu.Default().Scale(2),
		Profile: p,
		Grid:    int(float64(p.GridCTAs)*0.1 + 0.5),
		Policy:  pol,
		Label:   bench + "/" + pol.Kind,
	}
}

// newTestServer builds a Server plus an httptest front end and returns a
// wired Client. The server is shut down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, &Client{Base: hs.URL, PollInterval: 5 * time.Millisecond, ShedBackoff: 5 * time.Millisecond}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestEndToEndByteIdentical is the tentpole acceptance test: a batch
// through the HTTP service must return byte-identical results, under the
// same cache keys, as the same jobs run directly on a runner.Engine.
func TestEndToEndByteIdentical(t *testing.T) {
	jobs := []*runner.Job{
		tinyJob(t, "CS", runner.Baseline()),
		tinyJob(t, "CS", runner.VirtualThread()),
		tinyJob(t, "LB", runner.FineRegDefault()),
	}

	direct := (&runner.Engine{}).Run(jobs)
	if err := direct.Err(); err != nil {
		t.Fatalf("direct run: %v", err)
	}

	s, c := newTestServer(t, Config{Workers: 2, QueueCap: 8})
	remote, err := c.RunJobs(context.Background(), jobs)
	if err != nil {
		t.Fatalf("remote run: %v", err)
	}
	if err := remote.Err(); err != nil {
		t.Fatalf("remote batch: %v", err)
	}
	for i := range jobs {
		want := mustJSON(t, direct.Results[i])
		got := mustJSON(t, remote.Results[i])
		if !bytes.Equal(want, got) {
			t.Errorf("job %d (%s): remote result differs from direct run\ndirect: %s\nremote: %s",
				i, jobs[i].Label, want, got)
		}
	}

	// Key agreement: the server derives the same content-addressed keys
	// the engine would.
	sub, err := c.SubmitBatch(context.Background(), []JobRequest{RequestFromJob(jobs[0])})
	if err != nil {
		t.Fatal(err)
	}
	if want := jobs[0].Key(runner.SimFingerprint); sub.Jobs[0].Key != want {
		t.Errorf("server key %s != local key %s", sub.Jobs[0].Key, want)
	}
	if !sub.Jobs[0].Coalesced {
		t.Error("resubmission of a completed job was not coalesced")
	}
	if got := s.engine.Stats().Executed; got != 3 {
		t.Errorf("engine executed %d simulations, want 3", got)
	}
}

// TestShardedServerByteIdentical: a server configured with intra-run
// shards must return byte-identical results, under the same cache keys,
// as a serial direct run — sharding is host tuning, invisible to both
// the result and the key (gpu.Config.Shards is json:"-").
func TestShardedServerByteIdentical(t *testing.T) {
	jobs := []*runner.Job{
		tinyJob(t, "CS", runner.FineRegDefault()),
		tinyJob(t, "LB", runner.Baseline()),
	}

	direct := (&runner.Engine{}).Run(jobs)
	if err := direct.Err(); err != nil {
		t.Fatalf("direct run: %v", err)
	}

	_, c := newTestServer(t, Config{Workers: 2, Shards: 2})
	remote, err := c.RunJobs(context.Background(), jobs)
	if err != nil {
		t.Fatalf("remote run: %v", err)
	}
	if err := remote.Err(); err != nil {
		t.Fatalf("remote batch: %v", err)
	}
	for i := range jobs {
		want := mustJSON(t, direct.Results[i])
		got := mustJSON(t, remote.Results[i])
		if !bytes.Equal(want, got) {
			t.Errorf("job %d (%s): sharded server result differs from serial direct run\ndirect: %s\nremote: %s",
				i, jobs[i].Label, want, got)
		}
	}
	sub, err := c.SubmitBatch(context.Background(), []JobRequest{RequestFromJob(jobs[0])})
	if err != nil {
		t.Fatal(err)
	}
	if want := jobs[0].Key(runner.SimFingerprint); sub.Jobs[0].Key != want {
		t.Errorf("sharded server key %s != serial local key %s", sub.Jobs[0].Key, want)
	}
}

// TestWarmCacheResubmit: a second submission of an already-computed batch
// must be answered without re-simulation (the coalesce-or-cache rung of
// the admission ladder).
func TestWarmCacheResubmit(t *testing.T) {
	jobs := []*runner.Job{
		tinyJob(t, "CS", runner.Baseline()),
		tinyJob(t, "LB", runner.Baseline()),
	}
	s, c := newTestServer(t, Config{Workers: 2})
	if _, err := c.RunJobs(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	executed := s.engine.Stats().Executed

	b, err := c.RunJobs(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if got := s.engine.Stats().Executed; got != executed {
		t.Errorf("warm resubmission re-simulated: executed %d -> %d", executed, got)
	}
	for i, res := range b.Results {
		if res == nil {
			t.Errorf("warm resubmission job %d has no result", i)
		}
	}

	// Even with the server-side record evicted, the engine cache answers.
	s.mu.Lock()
	for id := range s.records {
		delete(s.records, id)
	}
	s.doneIDs = nil
	s.mu.Unlock()
	if _, err := c.RunJobs(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if got := s.engine.Stats().Executed; got != executed {
		t.Errorf("evicted-record resubmission re-simulated: executed %d -> %d", executed, got)
	}
}

// TestSSELifecycle: the event stream must deliver submit, start, and
// finish for a job, replaying history for late subscribers.
func TestSSELifecycle(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	sub, err := c.SubmitBatch(context.Background(), []JobRequest{RequestFromJob(tinyJob(t, "CS", runner.Baseline()))})
	if err != nil {
		t.Fatal(err)
	}
	id := sub.Jobs[0].ID

	resp, err := http.Get(c.Base + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}

	var kinds []string
	var finish Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			kinds = append(kinds, strings.TrimPrefix(line, "event: "))
		}
		if strings.HasPrefix(line, "data: ") {
			var ev Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad event payload: %v", err)
			}
			if ev.Kind == eventFinish {
				finish = ev
			}
		}
	}
	// The server closes the stream after the finish event, so the scanner
	// terminates on EOF. Freshly executed jobs interleave progress samples
	// (at minimum the end-of-run Final one) between start and finish; the
	// lifecycle skeleton around them must be exact and finish must be last.
	var lifecycle []string
	nProgress := 0
	for _, k := range kinds {
		if k == eventProgress {
			nProgress++
			continue
		}
		lifecycle = append(lifecycle, k)
	}
	want := []string{eventSubmit, eventStart, eventFinish}
	if strings.Join(lifecycle, ",") != strings.Join(want, ",") {
		t.Fatalf("lifecycle kinds %v, want %v (full stream %v)", lifecycle, want, kinds)
	}
	if nProgress == 0 {
		t.Error("fresh job streamed no progress events; the Final sample must reach the stream")
	}
	if kinds[len(kinds)-1] != eventFinish {
		t.Fatalf("stream must end with finish, got %v", kinds)
	}
	if finish.State != stateDone {
		t.Errorf("finish event state %q, want %q", finish.State, stateDone)
	}
	if finish.Job != id {
		t.Errorf("finish event names job %q, want %q", finish.Job, id)
	}
}

// blockWorkers installs a testBeforeRun hook that parks every worker until
// release is closed, reporting each dequeue on entered.
func blockWorkers(s *Server) (entered chan *record, release chan struct{}) {
	entered = make(chan *record, 16)
	release = make(chan struct{})
	s.testBeforeRun = func(rec *record) {
		entered <- rec
		<-release
	}
	return entered, release
}

// TestLoadShed: with one worker busy and the one-slot queue full, a fresh
// submission must be shed with 429 + Retry-After and the queue-state
// envelope, and the shed must be visible in /metrics. Nothing about the
// shed request is retained server-side (bounded memory).
func TestLoadShed(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	entered, release := blockWorkers(s)

	submit := func(j *runner.Job) (*http.Response, error) {
		body := mustJSON(t, RequestFromJob(j))
		return http.Post(c.Base+"/v1/jobs", "application/json", bytes.NewReader(body))
	}

	// A: dequeued and parked in the hook. B: occupies the queue slot.
	respA, err := submit(tinyJob(t, "CS", runner.Baseline()))
	if err != nil {
		t.Fatal(err)
	}
	var subA SubmitStatus
	if err := json.NewDecoder(respA.Body).Decode(&subA); err != nil {
		t.Fatal(err)
	}
	respA.Body.Close()
	<-entered
	respB, err := submit(tinyJob(t, "CS", runner.VirtualThread()))
	if err != nil {
		t.Fatal(err)
	}
	respB.Body.Close()

	// C: queue full -> shed.
	respC, err := submit(tinyJob(t, "CS", runner.FineRegDefault()))
	if err != nil {
		t.Fatal(err)
	}
	defer respC.Body.Close()
	if respC.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue returned %d, want 429", respC.StatusCode)
	}
	if respC.Header.Get("Retry-After") == "" {
		t.Error("429 lacks Retry-After")
	}
	var eb errorBody
	if err := json.NewDecoder(respC.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.QueueCap != 1 || eb.QueueDepth != 1 {
		t.Errorf("shed envelope depth=%d cap=%d, want 1/1", eb.QueueDepth, eb.QueueCap)
	}
	s.mu.Lock()
	nrecs := len(s.records)
	s.mu.Unlock()
	if nrecs != 2 {
		t.Errorf("shed submission left state behind: %d records, want 2", nrecs)
	}
	if got := s.mShed.Value(); got != 1 {
		t.Errorf("shed counter %d, want 1", got)
	}

	mresp, err := http.Get(c.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics Content-Type %q", ct)
	}
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"finereg_serve_shed_total 1",
		"finereg_serve_queue_depth 1",
		"finereg_serve_queue_capacity 1",
		"finereg_cache_hit_ratio",
		"finereg_serve_job_latency_seconds_bucket",
		"# TYPE finereg_serve_job_latency_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics lack %q", want)
		}
	}

	close(release)
	rec := s.lookup(subA.ID)
	if rec == nil {
		t.Fatal("job A record vanished")
	}
	select {
	case <-rec.done:
	case <-time.After(30 * time.Second):
		t.Fatal("job A never finished after release")
	}
}

// TestCoalesceInFlight: an identical submission while the first is still
// executing must coalesce onto the same record — one simulation, one ID —
// even across separate HTTP requests (the engine's in-flight dedup is
// per-Run; this is the serving layer's own rung).
func TestCoalesceInFlight(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	entered, release := blockWorkers(s)

	job := tinyJob(t, "CS", runner.Baseline())
	sub1, err := c.SubmitBatch(context.Background(), []JobRequest{RequestFromJob(job)})
	if err != nil {
		t.Fatal(err)
	}
	<-entered // worker holds the job pre-start

	sub2, err := c.SubmitBatch(context.Background(), []JobRequest{RequestFromJob(job)})
	if err != nil {
		t.Fatal(err)
	}
	if !sub2.Jobs[0].Coalesced {
		t.Error("duplicate in-flight submission was not coalesced")
	}
	if sub1.Jobs[0].ID != sub2.Jobs[0].ID {
		t.Errorf("duplicate got a different ID: %s vs %s", sub1.Jobs[0].ID, sub2.Jobs[0].ID)
	}

	// Duplicates within one batch also share the record.
	sub3, err := c.SubmitBatch(context.Background(), []JobRequest{RequestFromJob(job), RequestFromJob(job)})
	if err != nil {
		t.Fatal(err)
	}
	if sub3.Jobs[0].ID != sub3.Jobs[1].ID {
		t.Error("intra-batch duplicates got distinct IDs")
	}

	close(release)
	rec := s.lookup(sub1.Jobs[0].ID)
	select {
	case <-rec.done:
	case <-time.After(30 * time.Second):
		t.Fatal("job never finished")
	}
	if got := s.engine.Stats().Executed; got != 1 {
		t.Errorf("coalesced job executed %d times, want 1", got)
	}
}

// TestGracefulDrain: Shutdown lets the in-flight job finish, fails queued
// jobs fast, and rejects new submissions with 503.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{Workers: 1, QueueCap: 4})
	hs := httptest.NewServer(s)
	defer hs.Close()
	c := &Client{Base: hs.URL, PollInterval: 5 * time.Millisecond}
	entered, release := blockWorkers(s)

	subA, err := c.SubmitBatch(context.Background(), []JobRequest{RequestFromJob(tinyJob(t, "CS", runner.Baseline()))})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	subB, err := c.SubmitBatch(context.Background(), []JobRequest{RequestFromJob(tinyJob(t, "LB", runner.Baseline()))})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	// Draining: new submissions are refused with 503.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if s.isDraining() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never entered draining state")
		}
		time.Sleep(time.Millisecond)
	}
	_, err = c.SubmitBatch(context.Background(), []JobRequest{RequestFromJob(tinyJob(t, "HS", runner.Baseline()))})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Errorf("submission during drain: got %v, want 503", err)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	stA := s.lookup(subA.Jobs[0].ID).status()
	if stA.State != stateDone {
		t.Errorf("in-flight job state %q after drain, want %q (err %q)", stA.State, stateDone, stA.Error)
	}
	stB := s.lookup(subB.Jobs[0].ID).status()
	if stB.State != stateFailed || !strings.Contains(stB.Error, "draining") {
		t.Errorf("queued job state %q err %q, want fast drain failure", stB.State, stB.Error)
	}

	// Shutdown is idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

// TestBadRequests pins the 400/404 surfaces.
func TestBadRequests(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, MaxBatch: 2})

	post := func(path string, body any) *http.Response {
		t.Helper()
		resp, err := http.Post(c.Base+path, "application/json", bytes.NewReader(mustJSON(t, body)))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	expect := func(resp *http.Response, code int, msg string) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != code {
			t.Errorf("status %d, want %d", resp.StatusCode, code)
		}
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatalf("error envelope: %v", err)
		}
		if msg != "" && !strings.Contains(eb.Error, msg) {
			t.Errorf("error %q lacks %q", eb.Error, msg)
		}
	}

	expect(post("/v1/jobs", JobRequest{Bench: "NOPE", Policy: runner.Baseline()}), 400, "")
	expect(post("/v1/jobs", JobRequest{Policy: runner.Baseline()}), 400, "neither bench nor profile")
	expect(post("/v1/jobs", map[string]any{"bogus_field": 1}), 400, "bad request body")
	expect(post("/v1/batches", BatchRequest{}), 400, "no jobs")
	expect(post("/v1/batches", BatchRequest{Jobs: []JobRequest{
		{Bench: "CS", Policy: runner.Baseline()},
		{Bench: "LB", Policy: runner.Baseline()},
		{Bench: "MM", Policy: runner.Baseline()},
	}}), 400, "limit")
	expect(post("/v1/jobs", JobRequest{Bench: "CS", Policy: runner.PolicySpec{Kind: "bogus"}}), 400, "")

	for _, path := range []string{"/v1/jobs/jdeadbeef", "/v1/batches/b999999", "/v1/jobs/jdeadbeef/events"} {
		resp, err := http.Get(c.Base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestBatchStatusProgression: batch status aggregates its jobs and
// reports completion.
func TestBatchStatusProgression(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	jobs := []JobRequest{
		RequestFromJob(tinyJob(t, "CS", runner.Baseline())),
		RequestFromJob(tinyJob(t, "CS", runner.VirtualThread())),
	}
	sub, err := c.SubmitBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Jobs) != 2 {
		t.Fatalf("batch submit returned %d jobs", len(sub.Jobs))
	}
	st, err := c.WaitBatch(context.Background(), sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 2 || st.Done != 2 || st.Failed != 0 {
		t.Errorf("final batch status %+v", st)
	}
	for _, js := range st.Jobs {
		if js.Result == nil {
			t.Errorf("job %s finished without a result", js.ID)
		}
		if js.QueuedAtMS == 0 || js.StartedAtMS == 0 || js.FinishedAtMS == 0 {
			t.Errorf("job %s lacks timeline stamps: %+v", js.ID, js)
		}
	}
}

// TestClientShedBackoff: a shed SubmitBatch retries until capacity frees
// up — the client side of the admission ladder — while a batch that can
// never fit fails immediately instead of retrying forever.
func TestClientShedBackoff(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	entered, release := blockWorkers(s)

	// Park the worker on A and fill the one-slot queue with B.
	if _, err := c.SubmitBatch(context.Background(), []JobRequest{
		RequestFromJob(tinyJob(t, "CS", runner.Baseline()))}); err != nil {
		t.Fatal(err)
	}
	<-entered
	if _, err := c.SubmitBatch(context.Background(), []JobRequest{
		RequestFromJob(tinyJob(t, "CS", runner.VirtualThread()))}); err != nil {
		t.Fatal(err)
	}

	// A two-job batch exceeds the whole queue: fail fast, no retry loop.
	never := []JobRequest{
		RequestFromJob(tinyJob(t, "CS", runner.FineRegDefault())),
		RequestFromJob(tinyJob(t, "LB", runner.FineRegDefault())),
	}
	if _, err := c.SubmitBatch(context.Background(), never); err == nil ||
		!strings.Contains(err.Error(), "never fit") {
		t.Errorf("oversize batch: got %v, want never-fit failure", err)
	}

	// A one-job submission sheds now but succeeds once the worker drains
	// the backlog.
	done := make(chan error, 1)
	go func() {
		_, err := c.SubmitBatch(context.Background(), []JobRequest{
			RequestFromJob(tinyJob(t, "HS", runner.Baseline()))})
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("submission returned %v before capacity freed", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("retrying submission failed: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("retrying submission never got through")
	}
}
