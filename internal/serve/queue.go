package serve

import (
	"sync"
)

// admitQueue is the bounded admission queue behind POST /v1/jobs and
// /v1/batches. It replaces the original FIFO channel with a scheduling
// structure that is aware of request priority and submitting client:
//
//   - Strict priority: a queued job with higher Priority is always
//     dequeued before any lower-priority job, regardless of arrival order.
//   - Fair share within a priority: jobs of equal priority are drained
//     round-robin across clients, so one client bulk-submitting a sweep
//     cannot starve another client's interactive single jobs; within one
//     client, arrival order (FIFO) is preserved.
//   - Preemptive shedding: when the queue is full, an incoming job may
//     evict ("preempt") queued jobs of strictly lower priority instead of
//     being blindly 429ed. Equal-or-higher-priority backlog still sheds
//     the newcomer — with every request at the default priority 0 the
//     queue degrades to exactly the old FIFO + shed-the-newcomer behavior.
//
// The zero priority is the default for all existing clients, so a server
// that never sees a Priority field behaves byte-for-byte as before.
type admitQueue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	limit int
	n     int
	seq   int64

	// clients maps client id -> pending records ordered by (priority
	// desc, arrival seq asc); order is the round-robin ring over clients
	// with pending work, next the cursor into it. A client whose queue
	// drains is removed from the ring (and re-enters at the back on its
	// next submission), which both bounds memory to active clients and
	// gives newly active clients immediate service.
	clients map[string][]*record
	order   []string
	next    int

	closed bool
}

func newAdmitQueue(limit int) *admitQueue {
	q := &admitQueue{limit: limit, clients: map[string][]*record{}}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *admitQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

func (q *admitQueue) capacity() int { return q.limit }

// admit atomically admits recs whole or not at all. When the free space
// is short it preempts queued records of strictly lower priority than the
// *lowest* incoming priority (lowest-priority, most-recently-arrived
// victims first). Returns the evicted records — the caller owns failing
// them — and whether admission succeeded.
func (q *admitQueue) admit(recs []*record) (victims []*record, ok bool) {
	if len(recs) == 0 {
		return nil, true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, false
	}
	if len(recs) > q.limit {
		return nil, false
	}
	need := len(recs) - (q.limit - q.n)
	if need > 0 {
		floor := recs[0].pri()
		for _, r := range recs[1:] {
			if p := r.pri(); p < floor {
				floor = p
			}
		}
		victims = q.pickVictimsLocked(need, floor)
		if len(victims) < need {
			return nil, false
		}
		for _, v := range victims {
			q.removeLocked(v)
		}
	}
	for _, rec := range recs {
		q.seq++
		rec.setQueueSeq(q.seq)
		q.pushLocked(rec)
	}
	q.cond.Broadcast()
	return victims, true
}

// pickVictimsLocked selects up to need queued records with priority
// strictly below floor: lowest priority first, youngest (highest seq)
// first among equals — the jobs that have waited least lose first.
func (q *admitQueue) pickVictimsLocked(need, floor int) []*record {
	var pool []*record
	for _, recs := range q.clients {
		for _, r := range recs {
			if r.pri() < floor {
				pool = append(pool, r)
			}
		}
	}
	// Selection sort of the first `need` victims; pools are tiny (bounded
	// by the queue capacity).
	var victims []*record
	for len(victims) < need && len(pool) > 0 {
		best := 0
		for i := 1; i < len(pool); i++ {
			pi, pb := pool[i].pri(), pool[best].pri()
			if pi < pb || (pi == pb && pool[i].queueSeq() > pool[best].queueSeq()) {
				best = i
			}
		}
		victims = append(victims, pool[best])
		pool = append(pool[:best], pool[best+1:]...)
	}
	return victims
}

// pushLocked inserts rec into its client's queue keeping (priority desc,
// seq asc) order, registering the client in the round-robin ring if it
// had no pending work.
func (q *admitQueue) pushLocked(rec *record) {
	client := rec.clientID()
	recs, existed := q.clients[client]
	i := len(recs)
	for ; i > 0; i-- {
		if recs[i-1].pri() >= rec.pri() {
			break
		}
	}
	recs = append(recs, nil)
	copy(recs[i+1:], recs[i:])
	recs[i] = rec
	q.clients[client] = recs
	if !existed {
		q.order = append(q.order, client)
	}
	q.n++
}

// removeLocked deletes rec from its client queue (no-op if absent).
func (q *admitQueue) removeLocked(rec *record) {
	client := rec.clientID()
	recs := q.clients[client]
	for i, r := range recs {
		if r == rec {
			q.clients[client] = append(recs[:i], recs[i+1:]...)
			q.n--
			q.dropClientIfEmptyLocked(client)
			return
		}
	}
}

func (q *admitQueue) dropClientIfEmptyLocked(client string) {
	if len(q.clients[client]) > 0 {
		return
	}
	delete(q.clients, client)
	for i, c := range q.order {
		if c == client {
			q.order = append(q.order[:i], q.order[i+1:]...)
			if q.next > i {
				q.next--
			}
			if len(q.order) > 0 {
				q.next %= len(q.order)
			} else {
				q.next = 0
			}
			return
		}
	}
}

// raise bumps rec's priority to p if it is still queued and p is higher
// (a duplicate submission at higher priority promotes the shared record).
// Reports whether a bump happened.
func (q *admitQueue) raise(rec *record, p int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	recs := q.clients[rec.clientID()]
	for i, r := range recs {
		if r == rec {
			if p <= rec.pri() {
				return false
			}
			// Remove and re-insert at the new priority position.
			q.clients[rec.clientID()] = append(recs[:i], recs[i+1:]...)
			q.n--
			rec.setPriority(p)
			q.pushLocked(rec)
			return true
		}
	}
	return false
}

// pop blocks until a record is available (or the queue is closed and
// empty) and returns the next record by (priority, client round-robin,
// FIFO) order. After close, the remaining backlog still drains through
// pop so the caller can fail it fast.
func (q *admitQueue) pop() (*record, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.n > 0 {
			return q.popLocked(), true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

func (q *admitQueue) popLocked() *record {
	// Highest priority on offer: each client queue is priority-sorted, so
	// only heads need scanning.
	best := 0
	first := true
	for _, client := range q.order {
		if recs := q.clients[client]; len(recs) > 0 {
			if p := recs[0].pri(); first || p > best {
				best, first = p, false
			}
		}
	}
	// Round-robin among the clients whose head sits at that priority.
	for i := 0; i < len(q.order); i++ {
		idx := (q.next + i) % len(q.order)
		client := q.order[idx]
		recs := q.clients[client]
		if len(recs) == 0 || recs[0].pri() != best {
			continue
		}
		rec := recs[0]
		q.clients[client] = recs[1:]
		q.n--
		q.next = (idx + 1) % len(q.order)
		q.dropClientIfEmptyLocked(client)
		return rec
	}
	panic("serve: admitQueue accounting out of sync") // n > 0 guaranteed a head
}

// close wakes every waiter; pop drains the backlog then reports closed.
func (q *admitQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
