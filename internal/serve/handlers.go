package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"finereg/internal/runner"
	"finereg/internal/workload"
)

// routes wires the v1 API onto the server's mux.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	s.mux.HandleFunc("POST /v1/batches", s.handleSubmitBatch)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/batches/{id}", s.handleGetBatch)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Handle mounts an extra handler on the server's mux — the hook a fleet
// coordinator or worker uses to add its /v1/fleet/* and /v1/cache/*
// routes next to the core API. Must be called before serving traffic.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	enc.Encode(v)
}

func (s *Server) writeAdmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errQueueFull):
		// Load shed: tell the client to back off rather than queue
		// unboundedly server-side.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{
			Error:      err.Error(),
			QueueDepth: s.queue.depth(),
			QueueCap:   s.queue.capacity(),
		})
	case errors.Is(err, errDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	default:
		writeBadRequest(w, err)
	}
}

// writeBadRequest renders a 400. When the failure is a program ingestion
// error the envelope carries the structured position (program index,
// field, assembler line/column) alongside the rendered message, so
// clients can point at the offending source instead of parsing strings.
func writeBadRequest(w http.ResponseWriter, err error) {
	body := errorBody{Error: err.Error()}
	var we *workload.Error
	if errors.As(err, &we) {
		body.Program, body.Field, body.Line, body.Col = we.Index, we.Field, we.Line, we.Col
	}
	writeJSON(w, http.StatusBadRequest, body)
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: bad request body: %w", err)
	}
	return nil
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := decodeBody(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	job, err := req.Resolve()
	if err != nil {
		writeBadRequest(w, err)
		return
	}
	sts, _, err := s.admit([]*runner.Job{job}, []jobMeta{{priority: req.Priority, client: req.Client}})
	if err != nil {
		s.writeAdmitError(w, err)
		return
	}
	status := http.StatusAccepted
	if sts[0].Coalesced {
		status = http.StatusOK
	}
	writeJSON(w, status, sts[0])
}

func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeBody(r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if len(req.Jobs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "serve: batch has no jobs"})
		return
	}
	if len(req.Jobs) > s.cfg.MaxBatch {
		writeJSON(w, http.StatusBadRequest, errorBody{
			Error: fmt.Sprintf("serve: batch of %d exceeds the %d-job limit", len(req.Jobs), s.cfg.MaxBatch)})
		return
	}
	jobs := make([]*runner.Job, 0, len(req.Jobs))
	meta := make([]jobMeta, 0, len(req.Jobs))
	for i := range req.Jobs {
		j, err := req.Jobs[i].Resolve()
		if err != nil {
			writeBadRequest(w, fmt.Errorf("serve: job %d: %w", i, err))
			return
		}
		jobs = append(jobs, j)
		meta = append(meta, jobMeta{priority: req.Jobs[i].Priority, client: req.Jobs[i].Client})
	}
	sts, recs, err := s.admit(jobs, meta)
	if err != nil {
		s.writeAdmitError(w, err)
		return
	}
	b := s.registerBatch(recs)
	writeJSON(w, http.StatusAccepted, BatchSubmitStatus{ID: b.id, Jobs: sts})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	rec := s.lookup(r.PathValue("id"))
	if rec == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "serve: unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, rec.status())
}

func (s *Server) handleGetBatch(w http.ResponseWriter, r *http.Request) {
	b := s.lookupBatch(r.PathValue("id"))
	if b == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "serve: unknown batch"})
		return
	}
	writeJSON(w, http.StatusOK, b.status())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.Render(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Shutdown gracefully stops the server: admission closes (new submissions
// get 503), jobs still waiting in the queue fail fast, and in-flight
// simulations are given until ctx's deadline to finish on their own.
// When the deadline expires the engine's cooperative stop path
// (gpu.Stop via Engine.StopAll) interrupts whatever is still running,
// and Shutdown waits for the workers to observe it — the simulator
// checks the flag every event step, so that wait is prompt. Returns
// ctx.Err() when the deadline forced a stop, nil on a clean drain.
// Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	if !already {
		s.draining = true
		s.queue.close()  // workers drain the backlog (failing it fast) and exit
		close(s.drainCh) // SSE streams terminate
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		if sa, ok := s.runner.(interface{ StopAll() int }); ok {
			sa.StopAll()
		}
		<-done
		return ctx.Err()
	}
}
