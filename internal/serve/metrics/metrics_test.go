package metrics

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var sb strings.Builder
	r.Render(&sb)
	return sb.String()
}

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "Jobs.")
	g := r.NewGauge("depth", "Depth.")
	r.NewGaugeFunc("cap", "Capacity.", func() float64 { return 8 })
	r.NewCounterFunc("exec_total", "Executed.", func() int64 { return 42 })

	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter %d, want 5", c.Value())
	}
	g.Set(3)
	g.Add(-0.5)
	if g.Value() != 2.5 {
		t.Errorf("gauge %v, want 2.5", g.Value())
	}

	out := render(r)
	for _, want := range []string{
		"# HELP jobs_total Jobs.",
		"# TYPE jobs_total counter",
		"jobs_total 5",
		"# TYPE depth gauge",
		"depth 2.5",
		"cap 8",
		"# TYPE exec_total counter",
		"exec_total 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
	// Registration order is preserved.
	if strings.Index(out, "jobs_total") > strings.Index(out, "exec_total") {
		t.Error("render does not preserve registration order")
	}
}

func TestCounterDecrementPanics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", "")
	defer func() {
		if recover() == nil {
			t.Error("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.NewGauge("dup", "")
}

// TestDuplicateRegistrationPanicNamesOffender pins the panic message: a
// wiring bug at startup must identify which series collided, not just
// that one did (the telemetry-derived serve series make collisions easy
// to introduce from far-apart packages).
func TestDuplicateRegistrationPanicNamesOffender(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("finereg_sim_gpu_cycles_total", "")
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("duplicate registration did not panic")
		}
		msg, ok := v.(string)
		if !ok || !strings.Contains(msg, `"finereg_sim_gpu_cycles_total"`) {
			t.Fatalf("panic %v does not name the duplicated series", v)
		}
	}()
	r.NewCounterFunc("finereg_sim_gpu_cycles_total", "", func() int64 { return 0 })
}

func TestHistogramBucketsCumulate(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count %d, want 5", h.Count())
	}
	out := render(r)
	for _, want := range []string{
		`lat_bucket{le="0.1"} 1`,
		`lat_bucket{le="1"} 3`,
		`lat_bucket{le="10"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		"lat_sum 106.05",
		"lat_count 5",
		"# TYPE lat histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundsMustAscend(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds did not panic")
		}
	}()
	r.NewHistogram("bad", "", []float64{1, 1})
}

// TestHistogramObserveConcurrent hammers Observe from many goroutines,
// interleaved with scrapes, and checks the final buckets account for
// every observation exactly — no update lost between the bucket scan and
// the locked count/sum update. Run under -race this also proves the
// immutable-bounds scan outside the lock is safe.
func TestHistogramObserveConcurrent(t *testing.T) {
	const (
		workers = 16
		perG    = 500
	)
	r := NewRegistry()
	h := r.NewHistogram("obs", "", []float64{1, 2, 4, 8})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				h.Observe(float64(k % 10))
				if k%32 == i%32 {
					var sb strings.Builder
					r.Render(&sb)
				}
			}
		}()
	}
	wg.Wait()
	if n := h.Count(); n != workers*perG {
		t.Fatalf("count %d, want %d", n, workers*perG)
	}
	// Each goroutine observes 0..9 fifty times: per goroutine sum is
	// 45*50, and the le="4" cumulative bucket holds values 0..4.
	out := render(r)
	wantSum := formatFloat(float64(workers) * perG / 10 * 45)
	if !strings.Contains(out, "obs_sum "+wantSum) {
		t.Errorf("render lacks exact sum %s:\n%s", wantSum, out)
	}
	if want := `obs_bucket{le="4"} ` + formatInt(workers*perG/2); !strings.Contains(out, want) {
		t.Errorf("render lacks %q:\n%s", want, out)
	}
}

func formatInt(n int) string { return strconv.Itoa(n) }

// TestFuncVecRender pins the labeled-family exposition: one HELP/TYPE
// header, one child line per label value in insertion order, counters as
// integers and gauges in float formatting, late Add and Remove honored.
func TestFuncVecRender(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterFuncVec("hits_total", "Hits by source.", "source")
	cv.Add("mem", func() int64 { return 7 })
	cv.Add("disk", func() int64 { return 3 })
	gv := r.NewGaugeFuncVec("node_up", "Node liveness.", "node")
	gv.Add("http://a:1", func() float64 { return 1 })

	// Children can join after registration (nodes joining a fleet).
	cv.Add("remote", func() int64 { return 0 })
	gv.Add("http://b:2", func() float64 { return 0.5 })

	out := render(r)
	for _, want := range []string{
		"# HELP hits_total Hits by source.",
		"# TYPE hits_total counter",
		`hits_total{source="mem"} 7`,
		`hits_total{source="disk"} 3`,
		`hits_total{source="remote"} 0`,
		"# TYPE node_up gauge",
		`node_up{node="http://a:1"} 1`,
		`node_up{node="http://b:2"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE hits_total counter") != 1 {
		t.Error("labeled family rendered more than one TYPE header")
	}
	if strings.Index(out, `source="mem"`) > strings.Index(out, `source="disk"`) {
		t.Error("labeled children not in insertion order")
	}

	// Replacing a child's function is idempotent re-registration, not a
	// duplicate panic; removing drops the line.
	cv.Add("mem", func() int64 { return 8 })
	gv.Remove("http://b:2")
	out = render(r)
	if !strings.Contains(out, `hits_total{source="mem"} 8`) {
		t.Errorf("re-Add did not replace child:\n%s", out)
	}
	if strings.Contains(out, `node_up{node="http://b:2"}`) {
		t.Errorf("Remove left the child behind:\n%s", out)
	}
}

// TestFuncVecConcurrent exercises Add/Remove/Render races.
func TestFuncVecConcurrent(t *testing.T) {
	r := NewRegistry()
	gv := r.NewGaugeFuncVec("v", "", "node")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := "n" + strconv.Itoa(i)
			for k := 0; k < 100; k++ {
				gv.Add(name, func() float64 { return float64(k) })
				var sb strings.Builder
				r.Render(&sb)
				if k%10 == 0 {
					gv.Remove(name)
				}
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentUse exercises every mutator under the race detector.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h", "", DefLatencyBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(k))
				var sb strings.Builder
				r.Render(&sb)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 800 {
		t.Errorf("counter %d, want 800", c.Value())
	}
	if g.Value() != 800 {
		t.Errorf("gauge %v, want 800", g.Value())
	}
	if h.Count() != 800 {
		t.Errorf("histogram count %d, want 800", h.Count())
	}
}
