package metrics

import (
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var sb strings.Builder
	r.Render(&sb)
	return sb.String()
}

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "Jobs.")
	g := r.NewGauge("depth", "Depth.")
	r.NewGaugeFunc("cap", "Capacity.", func() float64 { return 8 })
	r.NewCounterFunc("exec_total", "Executed.", func() int64 { return 42 })

	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter %d, want 5", c.Value())
	}
	g.Set(3)
	g.Add(-0.5)
	if g.Value() != 2.5 {
		t.Errorf("gauge %v, want 2.5", g.Value())
	}

	out := render(r)
	for _, want := range []string{
		"# HELP jobs_total Jobs.",
		"# TYPE jobs_total counter",
		"jobs_total 5",
		"# TYPE depth gauge",
		"depth 2.5",
		"cap 8",
		"# TYPE exec_total counter",
		"exec_total 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
	// Registration order is preserved.
	if strings.Index(out, "jobs_total") > strings.Index(out, "exec_total") {
		t.Error("render does not preserve registration order")
	}
}

func TestCounterDecrementPanics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", "")
	defer func() {
		if recover() == nil {
			t.Error("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.NewGauge("dup", "")
}

func TestHistogramBucketsCumulate(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count %d, want 5", h.Count())
	}
	out := render(r)
	for _, want := range []string{
		`lat_bucket{le="0.1"} 1`,
		`lat_bucket{le="1"} 3`,
		`lat_bucket{le="10"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		"lat_sum 106.05",
		"lat_count 5",
		"# TYPE lat histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundsMustAscend(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds did not panic")
		}
	}()
	r.NewHistogram("bad", "", []float64{1, 1})
}

// TestConcurrentUse exercises every mutator under the race detector.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h", "", DefLatencyBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(k))
				var sb strings.Builder
				r.Render(&sb)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 800 {
		t.Errorf("counter %d, want 800", c.Value())
	}
	if g.Value() != 800 {
		t.Errorf("gauge %v, want 800", g.Value())
	}
	if h.Count() != 800 {
		t.Errorf("histogram count %d, want 800", h.Count())
	}
}
