// Package metrics is a minimal, dependency-free metrics registry for the
// serving layer: counters, gauges, function-backed gauges, and
// fixed-bucket histograms, rendered in the Prometheus text exposition
// format. It exists so internal/serve can expose a /metrics endpoint
// without pulling a client library into a repository that is otherwise
// stdlib-only; the subset implemented here (no labels, no timestamps) is
// exactly what the server needs and nothing more.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
)

// metric is one named time series rendered by the registry.
type metric interface {
	desc() (name, help, typ string)
	write(w io.Writer)
}

// Registry holds metrics in registration order (related series stay
// adjacent in the rendered output). All methods are safe for concurrent
// use; registration of a duplicate name panics (a wiring bug, not a
// runtime condition).
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{names: map[string]bool{}} }

func (r *Registry) register(m metric) {
	name, _, _ := m.desc()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	r.names[name] = true
	r.metrics = append(r.metrics, m)
}

// Render writes every metric in the Prometheus text format.
func (r *Registry) Render(w io.Writer) {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range ms {
		name, help, typ := m.desc()
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		m.write(w)
	}
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ---- Counter ----

// Counter is a monotonically increasing integer series.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; counters never go down).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: counter decrement")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) desc() (string, string, string) { return c.name, c.help, "counter" }
func (c *Counter) write(w io.Writer)              { fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load()) }

// ---- Gauge ----

// Gauge is a settable value.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return bitsFloat(g.bits.Load()) }

func (g *Gauge) desc() (string, string, string) { return g.name, g.help, "gauge" }
func (g *Gauge) write(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.Value()))
}

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// ---- GaugeFunc ----

// GaugeFunc is a gauge whose value is computed at scrape time — the
// natural shape for values another component already maintains (queue
// length, cache hit ratio).
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

// NewGaugeFunc registers a function-backed gauge.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	g := &GaugeFunc{name: name, help: help, fn: fn}
	r.register(g)
	return g
}

func (g *GaugeFunc) desc() (string, string, string) { return g.name, g.help, "gauge" }
func (g *GaugeFunc) write(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.fn()))
}

// ---- CounterFunc ----

// CounterFunc exposes a monotone value another component maintains (e.g.
// the run engine's executed-job total) as a counter series.
type CounterFunc struct {
	name, help string
	fn         func() int64
}

// NewCounterFunc registers a function-backed counter.
func (r *Registry) NewCounterFunc(name, help string, fn func() int64) *CounterFunc {
	c := &CounterFunc{name: name, help: help, fn: fn}
	r.register(c)
	return c
}

func (c *CounterFunc) desc() (string, string, string) { return c.name, c.help, "counter" }
func (c *CounterFunc) write(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", c.name, c.fn())
}

// ---- Labeled function-backed families ----

// funcVec is a family of function-backed series sharing one name and one
// label dimension, rendered under a single HELP/TYPE header:
//
//	name{label="a"} 1
//	name{label="b"} 2
//
// Children may be added after registration (the fleet layer adds a child
// per worker node as nodes join); Add of an existing label value replaces
// the child's function, so re-registration is idempotent. This is the only
// label support the registry has — one dimension, function-backed — which
// is exactly what hit-source and per-node series need.
type funcVec struct {
	name, help, typ string
	label           string

	mu    sync.Mutex
	order []string
	fns   map[string]func() float64
}

func (v *funcVec) add(value string, fn func() float64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.fns[value]; !ok {
		v.order = append(v.order, value)
	}
	v.fns[value] = fn
}

func (v *funcVec) remove(value string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.fns[value]; !ok {
		return
	}
	delete(v.fns, value)
	for i, s := range v.order {
		if s == value {
			v.order = append(v.order[:i], v.order[i+1:]...)
			break
		}
	}
}

func (v *funcVec) desc() (string, string, string) { return v.name, v.help, v.typ }
func (v *funcVec) write(w io.Writer) {
	v.mu.Lock()
	order := append([]string(nil), v.order...)
	fns := make([]func() float64, len(order))
	for i, val := range order {
		fns[i] = v.fns[val]
	}
	v.mu.Unlock()
	for i, val := range order {
		if v.typ == "counter" {
			fmt.Fprintf(w, "%s{%s=%q} %d\n", v.name, v.label, val, int64(fns[i]()))
		} else {
			fmt.Fprintf(w, "%s{%s=%q} %s\n", v.name, v.label, val, formatFloat(fns[i]()))
		}
	}
}

// CounterFuncVec is a labeled family of function-backed counters (e.g.
// finereg_cache_hits_total{source="mem"|"disk"|"remote"}).
type CounterFuncVec struct{ v *funcVec }

// NewCounterFuncVec registers a counter family with one label dimension.
func (r *Registry) NewCounterFuncVec(name, help, label string) *CounterFuncVec {
	v := &funcVec{name: name, help: help, typ: "counter", label: label,
		fns: map[string]func() float64{}}
	r.register(v)
	return &CounterFuncVec{v: v}
}

// Add attaches (or replaces) the child for one label value. fn must be
// monotone non-decreasing, as for any counter.
func (c *CounterFuncVec) Add(value string, fn func() int64) {
	c.v.add(value, func() float64 { return float64(fn()) })
}

// GaugeFuncVec is a labeled family of function-backed gauges (e.g.
// finereg_fleet_node_up{node=...}).
type GaugeFuncVec struct{ v *funcVec }

// NewGaugeFuncVec registers a gauge family with one label dimension.
func (r *Registry) NewGaugeFuncVec(name, help, label string) *GaugeFuncVec {
	v := &funcVec{name: name, help: help, typ: "gauge", label: label,
		fns: map[string]func() float64{}}
	r.register(v)
	return &GaugeFuncVec{v: v}
}

// Add attaches (or replaces) the child for one label value.
func (g *GaugeFuncVec) Add(value string, fn func() float64) { g.v.add(value, fn) }

// Remove drops the child for one label value (a departed worker node).
func (g *GaugeFuncVec) Remove(value string) { g.v.remove(value) }

// ---- Histogram ----

// Histogram counts observations into fixed upper-bound buckets,
// Prometheus-style (cumulative le buckets plus _sum and _count).
type Histogram struct {
	name, help string
	bounds     []float64

	mu     sync.Mutex
	counts []int64
	sum    float64
	n      int64
}

// DefLatencyBuckets spans job latencies from milliseconds (warm cache
// hits) to the half-hour full-scale runs.
var DefLatencyBuckets = []float64{0.005, 0.025, 0.1, 0.5, 1, 5, 15, 60, 300, 1800}

// NewHistogram registers a histogram with the given ascending bucket upper
// bounds (an implicit +Inf bucket is always appended).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{
		name: name, help: help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
	r.register(h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := len(h.bounds) // +Inf slot
	for b, ub := range h.bounds {
		if v <= ub {
			i = b
			break
		}
	}
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

func (h *Histogram) desc() (string, string, string) { return h.name, h.help, "histogram" }
func (h *Histogram) write(w io.Writer) {
	h.mu.Lock()
	counts := append([]int64(nil), h.counts...)
	sum, n := h.sum, h.n
	h.mu.Unlock()
	var cum int64
	for i, ub := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatFloat(ub), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, n)
	fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(sum))
	fmt.Fprintf(w, "%s_count %d\n", h.name, n)
}
