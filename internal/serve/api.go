package serve

import (
	"fmt"

	"finereg/internal/gpu"
	"finereg/internal/kernels"
	"finereg/internal/runner"
	"finereg/internal/trace"
	"finereg/internal/workload"
)

// This file is the service's wire vocabulary: the JSON request/response
// shapes of the v1 API. A JobRequest canonicalizes into a runner.Job, so
// the job's content-addressed key — and with it every dedup and cache
// layer below — is identical whether the job arrived over HTTP or was
// constructed in-process.

// JobRequest describes one simulation to run. Two forms are accepted:
//
//   - Convenience: name a Table II benchmark ("bench") and optionally a
//     machine size ("sms", default 16) and grid; the profile and config
//     are resolved server-side exactly as the CLIs resolve them.
//   - Exact: embed the full kernels.Profile and gpu.Config. This is the
//     passthrough form remote clients (internal/experiments, tests) use to
//     reproduce an in-process runner.Job bit for bit.
type JobRequest struct {
	// Bench is a Table II abbreviation (e.g. "CS"); ignored when Profile
	// is set.
	Bench string `json:"bench,omitempty"`
	// Profile is the full kernel profile (exact form).
	Profile *kernels.Profile `json:"profile,omitempty"`
	// SMs sizes the default machine (gpu.Default().Scale(SMs), default
	// 16); ignored when Cfg is set.
	SMs int `json:"sms,omitempty"`
	// Cfg is the full machine configuration (exact form).
	Cfg *gpu.Config `json:"cfg,omitempty"`
	// Programs, when non-empty, is the job's workload instead of
	// Bench/Profile: user .sasm source or bench references (see
	// internal/workload). Several programs form an in-order stream; with
	// Cfg.Partitions set they run concurrently, one per partition. The
	// program text enters the job's content-addressed key, so submitting
	// the same source always coalesces onto the same cache entry.
	Programs []workload.Program `json:"programs,omitempty"`
	// Grid is the CTA count (default: the profile's reference grid scaled
	// by SMs/16, or by GridScale when set). Ignored for Programs jobs —
	// each program carries its own grid.
	Grid int `json:"grid,omitempty"`
	// GridScale scales the profile's reference grid when Grid is 0.
	GridScale float64 `json:"grid_scale,omitempty"`
	// Policy selects the register-file management policy. Custom policy
	// kinds cannot cross the wire (their factory is code) and are
	// rejected.
	Policy runner.PolicySpec `json:"policy"`
	// TrackReg and Stalls enable the corresponding instrumentation.
	TrackReg bool `json:"track_reg,omitempty"`
	Stalls   bool `json:"stalls,omitempty"`
	// Audit enables the runtime invariant auditor on the default config
	// (ignored when Cfg is set — set Cfg.Audit directly instead).
	Audit bool `json:"audit,omitempty"`
	// Label tags progress lines and errors; not part of the job identity.
	Label string `json:"label,omitempty"`
	// Priority orders admission: higher-priority jobs dequeue first, and
	// when the queue is full they may preempt queued jobs of strictly
	// lower priority instead of being shed. Default 0. Not part of the
	// job identity (a high-priority run hits the same cache entry as a
	// low-priority twin).
	Priority int `json:"priority,omitempty"`
	// Client is the submitter's self-reported identity, the fair-share
	// bucket for admission: equal-priority jobs drain round-robin across
	// clients. Default "" (one shared bucket). Not part of the job
	// identity.
	Client string `json:"client,omitempty"`
}

// Resolve canonicalizes the request into a validated runner.Job.
func (r *JobRequest) Resolve() (*runner.Job, error) {
	var prof kernels.Profile
	switch {
	case len(r.Programs) > 0:
		if r.Profile != nil || r.Bench != "" {
			return nil, fmt.Errorf("serve: job carries both programs and a bench/profile")
		}
		if r.Grid != 0 || r.GridScale != 0 {
			return nil, fmt.Errorf("serve: programs carry their own grids; job-level grid/grid_scale do not apply")
		}
	case r.Profile != nil:
		prof = *r.Profile
	case r.Bench != "":
		p, err := kernels.ProfileByName(r.Bench)
		if err != nil {
			return nil, err
		}
		prof = p
	default:
		return nil, fmt.Errorf("serve: job names neither bench nor profile nor programs")
	}

	var cfg gpu.Config
	if r.Cfg != nil {
		cfg = *r.Cfg
	} else {
		sms := r.SMs
		if sms == 0 {
			sms = 16
		}
		if sms < 1 || sms > 4096 {
			return nil, fmt.Errorf("serve: sms %d outside [1, 4096]", sms)
		}
		cfg = gpu.Default().Scale(sms)
		cfg.Audit = r.Audit
	}

	j := &runner.Job{
		Cfg:      cfg,
		Policy:   r.Policy,
		TrackReg: r.TrackReg,
		Stalls:   r.Stalls,
		Programs: r.Programs,
		Label:    r.Label,
	}
	if len(r.Programs) == 0 {
		grid := r.Grid
		if grid == 0 {
			scale := r.GridScale
			if scale == 0 {
				scale = float64(cfg.NumSMs) / 16
			}
			grid = int(float64(prof.GridCTAs)*scale + 0.5)
			if grid < 1 {
				grid = 1
			}
		}
		j.Profile, j.Grid = prof, grid
	}
	if err := j.Validate(); err != nil {
		return nil, err
	}
	return j, nil
}

// RequestFromJob returns the exact-form request reproducing j: resolving
// it on any server yields the same canonical job, hence the same key,
// cache entry, and result bytes as running j in-process.
func RequestFromJob(j *runner.Job) JobRequest {
	cfg, prof := j.Cfg, j.Profile
	if len(j.Programs) > 0 {
		return JobRequest{
			Cfg:      &cfg,
			Policy:   j.Policy,
			TrackReg: j.TrackReg,
			Stalls:   j.Stalls,
			Programs: j.Programs,
			Label:    j.Label,
		}
	}
	return JobRequest{
		Profile:  &prof,
		Cfg:      &cfg,
		Grid:     j.Grid,
		Policy:   j.Policy,
		TrackReg: j.TrackReg,
		Stalls:   j.Stalls,
		Label:    j.Label,
	}
}

// BatchRequest is the body of POST /v1/batches.
type BatchRequest struct {
	Jobs []JobRequest `json:"jobs"`
}

// SubmitStatus is the per-job outcome of a submission.
type SubmitStatus struct {
	// ID is the job's server identity — a prefix of its content-addressed
	// key, so resubmitting the same job always yields the same ID.
	ID string `json:"id"`
	// Key is the full runner.Job cache key.
	Key string `json:"key"`
	// State is "queued", "running", "done", or "failed".
	State string `json:"state"`
	// Coalesced reports that the submission matched an existing job
	// (in-flight or completed) and no new work was enqueued.
	Coalesced bool `json:"coalesced,omitempty"`
}

// BatchSubmitStatus is the response of POST /v1/batches.
type BatchSubmitStatus struct {
	ID string `json:"id"`
	// Jobs has one entry per requested job, in request order (duplicate
	// requests map to the same ID).
	Jobs []SubmitStatus `json:"jobs"`
}

// JobStatus is the response of GET /v1/jobs/{id}.
type JobStatus struct {
	ID       string `json:"id"`
	Key      string `json:"key"`
	Label    string `json:"label,omitempty"`
	Client   string `json:"client,omitempty"`
	Priority int    `json:"priority,omitempty"`
	State    string `json:"state"`
	Cached   bool   `json:"cached,omitempty"`
	Error    string `json:"error,omitempty"`
	// Result carries the metrics (and Figure 5 windows when tracked) once
	// State is "done".
	Result *runner.Result `json:"result,omitempty"`
	// QueuedAtMS/StartedAtMS/FinishedAtMS are Unix milliseconds (0 =
	// not reached).
	QueuedAtMS   int64 `json:"queued_at_ms,omitempty"`
	StartedAtMS  int64 `json:"started_at_ms,omitempty"`
	FinishedAtMS int64 `json:"finished_at_ms,omitempty"`
}

// Done reports whether the job reached a terminal state.
func (s *JobStatus) Done() bool { return s.State == stateDone || s.State == stateFailed }

// BatchStatus is the response of GET /v1/batches/{id}.
type BatchStatus struct {
	ID     string `json:"id"`
	Total  int    `json:"total"`
	Done   int    `json:"done"`
	Failed int    `json:"failed"`
	// Jobs lists per-job statuses in submission order (duplicates share
	// an ID and a status).
	Jobs []JobStatus `json:"jobs"`
}

// Finished reports whether every job in the batch reached a terminal
// state.
func (b *BatchStatus) Finished() bool { return b.Done >= b.Total }

// Event is one entry of a job's lifecycle stream (SSE `data:` payload;
// the kind doubles as the SSE `event:` field). "progress" events carry
// the in-run sample fields; lifecycle events leave them zero.
type Event struct {
	Seq   int64  `json:"seq"`
	Kind  string `json:"event"` // "submit", "start", "progress", "finish"
	Job   string `json:"job"`
	Label string `json:"label,omitempty"`
	State string `json:"state"`
	// Cached is set on "finish" when the result came from the cache or an
	// in-flight duplicate rather than a fresh simulation.
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
	AtMS   int64  `json:"at_ms"`

	// Progress sample payload (kind "progress" only): simulated cycle,
	// CTA launch/retire counts against the grid total, the live
	// sim-cycles/s rate over the last sample window, and the sparse
	// telemetry op-count delta (PCRF spills, DMA transfers, DRAM ops...).
	// The fields mirror trace.ProgressSample one for one so a forwarding
	// hop (a fleet coordinator relaying a worker's stream) can
	// reconstruct the sample losslessly via Sample.
	Cycle        int64            `json:"cycle,omitempty"`
	CycleDelta   int64            `json:"cycle_delta,omitempty"`
	GridCTAs     int64            `json:"grid_ctas,omitempty"`
	CTAsLaunched int64            `json:"ctas_launched,omitempty"`
	CTAsRetired  int64            `json:"ctas_retired,omitempty"`
	Instructions int64            `json:"instructions,omitempty"`
	CyclesPerSec float64          `json:"cycles_per_sec,omitempty"`
	Final        bool             `json:"final,omitempty"`
	Ops          map[string]int64 `json:"ops,omitempty"`
}

// Sample reconstructs the trace.ProgressSample a "progress" event was
// built from (WallMS is the origin node's wall clock and does not
// survive the hop; consumers derive their own timing).
func (e *Event) Sample() trace.ProgressSample {
	return trace.ProgressSample{
		Cycle:        e.Cycle,
		CycleDelta:   e.CycleDelta,
		GridCTAs:     e.GridCTAs,
		CTAsLaunched: e.CTAsLaunched,
		CTAsRetired:  e.CTAsRetired,
		Instructions: e.Instructions,
		CyclesPerSec: e.CyclesPerSec,
		Final:        e.Final,
		Ops:          e.Ops,
	}
}

// errorBody is the JSON error envelope for non-2xx responses.
type errorBody struct {
	Error string `json:"error"`
	// Program/Field/Line/Col locate a workload validation failure in the
	// request: the offending program's index, the spec field, and — for
	// assembler failures — the 1-based source position. Omitted (zero)
	// when the failure is not a program ingestion error.
	Program int    `json:"program,omitempty"`
	Field   string `json:"field,omitempty"`
	Line    int    `json:"line,omitempty"`
	Col     int    `json:"col,omitempty"`
	// QueueDepth/QueueCap qualify 429 load-shed responses.
	QueueDepth int `json:"queue_depth,omitempty"`
	QueueCap   int `json:"queue_cap,omitempty"`
}
