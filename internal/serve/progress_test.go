package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"finereg/internal/runner"
	"finereg/internal/serve/metrics"
	"finereg/internal/trace"
)

// TestSSEProgressStream: with a short sample period, an executing job's
// event stream carries a progress series — monotone cycles, CTA counts
// against the grid — and the samples surface in the fleet /metrics.
func TestSSEProgressStream(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, ProgressEvery: 64})
	sub, err := c.SubmitBatch(context.Background(), []JobRequest{RequestFromJob(tinyJob(t, "CS", runner.Baseline()))})
	if err != nil {
		t.Fatal(err)
	}
	id := sub.Jobs[0].ID

	resp, err := http.Get(c.Base + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var progress []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event payload: %v", err)
		}
		if ev.Kind == eventProgress {
			progress = append(progress, ev)
		}
	}
	if len(progress) < 2 {
		t.Fatalf("got %d progress events, want a periodic series plus the final sample", len(progress))
	}
	// A lagging subscriber may miss samples (drop-on-lag, including the
	// final one), so the assertions are about what was received: a monotone
	// series with consistent CTA accounting, not a complete one.
	prevCycle, prevRetired := int64(-1), int64(-1)
	for i, ev := range progress {
		if ev.Cycle <= prevCycle {
			t.Fatalf("progress %d cycle %d not after %d", i, ev.Cycle, prevCycle)
		}
		prevCycle = ev.Cycle
		if ev.State != stateRunning || ev.Job != id {
			t.Fatalf("progress %d mislabeled: state=%q job=%q", i, ev.State, ev.Job)
		}
		if ev.GridCTAs <= 0 {
			t.Fatalf("progress %d has no grid size", i)
		}
		if ev.CTAsRetired < prevRetired || ev.CTAsRetired > ev.CTAsLaunched || ev.CTAsLaunched > ev.GridCTAs {
			t.Fatalf("progress %d CTA accounting inconsistent: %d retired (prev %d) / %d launched / %d grid",
				i, ev.CTAsRetired, prevRetired, ev.CTAsLaunched, ev.GridCTAs)
		}
		prevRetired = ev.CTAsRetired
	}

	if got := s.mSamples.Value(); got < int64(len(progress)) {
		t.Errorf("progress-sample counter %d < %d streamed samples", got, len(progress))
	}

	mresp, err := http.Get(c.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"finereg_sim_cycles_per_sec",
		"finereg_sim_gpu_cycles_total",
		"finereg_sim_gpu_instructions_total",
		"finereg_sim_sm_cta_launches_total",
		"finereg_serve_progress_samples_total",
		"finereg_serve_sse_dropped_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics lack %q", want)
		}
	}
	// The run completed, so the aggregate simulated-cycle counter must be
	// past the final sample's cycle and the live rate back to zero.
	if !strings.Contains(body, "finereg_sim_cycles_per_sec 0") {
		t.Error("live rate gauge not cleared after the run finished")
	}
}

// TestProgressDisabled: a negative ProgressEvery turns server-side
// sampling off — the stream is pure lifecycle.
func TestProgressDisabled(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, ProgressEvery: -1})
	sub, err := c.SubmitBatch(context.Background(), []JobRequest{RequestFromJob(tinyJob(t, "CS", runner.Baseline()))})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(c.Base + "/v1/jobs/" + sub.Jobs[0].ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: "+eventProgress) {
			t.Fatal("progress event streamed with sampling disabled")
		}
	}
}

// TestRecordProgressBounds exercises the record-level progress machinery
// directly: bounded replay history, monotone sequence numbers, drop
// accounting for lagging subscribers, and the terminal-state guard.
func TestRecordProgressBounds(t *testing.T) {
	reg := metrics.NewRegistry()
	dropped := reg.NewCounter("drops", "")
	rec := newRecord("j1", "k1", tinyJob(t, "CS", runner.Baseline()))
	rec.dropped = dropped
	rec.submitted()
	rec.start()

	// A subscriber that never drains: everything past its buffer drops.
	_, _, cancel := rec.subscribe()
	defer cancel()

	const n = subBuffer + progressKeep + 8
	for i := 1; i <= n; i++ {
		rec.progress(trace.ProgressSample{Cycle: int64(i * 100)})
	}

	rec.mu.Lock()
	var kept []Event
	var lifecycle int
	for _, ev := range rec.events {
		if ev.Kind == eventProgress {
			kept = append(kept, ev)
		} else {
			lifecycle++
		}
	}
	seq := rec.seq
	rec.mu.Unlock()

	if len(kept) != progressKeep {
		t.Errorf("retained %d progress events, want %d", len(kept), progressKeep)
	}
	if lifecycle != 2 {
		t.Errorf("pruning touched lifecycle events: %d retained, want 2", lifecycle)
	}
	// The retained window is the most recent samples, in order, and seq
	// keeps counting across pruned history.
	for i := 1; i < len(kept); i++ {
		if kept[i].Seq <= kept[i-1].Seq || kept[i].Cycle <= kept[i-1].Cycle {
			t.Fatalf("retained window out of order at %d: %+v then %+v", i, kept[i-1], kept[i])
		}
	}
	if want := kept[len(kept)-1].Cycle; want != int64(n*100) {
		t.Errorf("newest retained sample at cycle %d, want %d", want, n*100)
	}
	if seq != int64(2+n) {
		t.Errorf("seq %d after 2 lifecycle + %d progress events, want %d", seq, n, 2+n)
	}

	// The subscriber joined after submit/start (those arrived via replay,
	// not the channel), so its buffer held the first subBuffer live samples
	// and every later one was dropped and counted.
	if got, want := dropped.Value(), int64(n-subBuffer); got != want {
		t.Errorf("dropped counter %d, want %d", got, want)
	}

	// After the terminal transition, late samples are ignored: finish stays
	// the last event.
	rec.finish(nil, nil, false)
	rec.progress(trace.ProgressSample{Cycle: 1 << 30})
	rec.mu.Lock()
	lastKind := rec.events[len(rec.events)-1].Kind
	rec.mu.Unlock()
	if lastKind != eventFinish {
		t.Errorf("event after finish: stream ends with %q", lastKind)
	}
}
