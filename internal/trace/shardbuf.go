package trace

// ShardBuffer is a Sink that records events instead of handling them, so
// a sharded run (internal/gpu) can trace without serializing its Ticks:
// each SM gets its own buffer, written only from that SM's Tick (one
// goroutine at a time — the shard pool never runs one SM concurrently
// with itself), and the run goroutine drains every buffer in ascending
// SM index order at the step barrier via FlushTo. Because the serial
// loop Ticks SMs in exactly that order, the concatenation of per-SM
// buffers is byte-for-byte the serial event stream.
//
// Events carry everything their Sink method received; RunStart/RunEnd
// are run-level and are emitted by the run goroutine directly on the
// user's sink, so a ShardBuffer ignores them.
type ShardBuffer struct {
	events []bufEvent
}

// bufEvent is one recorded emission. kind selects which fields are live;
// a single flat struct keeps the buffer allocation-free after warm-up.
type bufEvent struct {
	kind    bufKind
	sm, cta int
	warp    int
	now     int64
	a, b, c int64 // kind-specific int args (arg/until/wakeAt/pc/regs/miss counts...)
	reason  StallReason
	ctaKind CTAKind
	tKind   TransferKind
	queue   float64
}

type bufKind uint8

const (
	evCTA bufKind = iota
	evWarpSpawn
	evWarpDrop
	evWarpBlock
	evWarpWake
	evWarpIssue
	evWarpDeny
	evWarpBarrier
	evWarpBarrierRelease
	evWarpExit
	evRegTransfer
	evMemAccess
)

// NewShardBuffer returns an empty buffer.
func NewShardBuffer() *ShardBuffer { return &ShardBuffer{} }

func (s *ShardBuffer) push(e bufEvent) { s.events = append(s.events, e) }

// RunStart is a no-op: run-level events bypass the per-SM buffers.
func (s *ShardBuffer) RunStart(kernel string, numSMs int) {}

// RunEnd is a no-op: run-level events bypass the per-SM buffers.
func (s *ShardBuffer) RunEnd(now int64) {}

func (s *ShardBuffer) CTAEvent(sm int, kind CTAKind, cta int, now, arg int64) {
	s.push(bufEvent{kind: evCTA, sm: sm, cta: cta, now: now, a: arg, ctaKind: kind})
}

func (s *ShardBuffer) WarpSpawn(sm, cta, warp int, now, wakeAt int64, reason StallReason) {
	s.push(bufEvent{kind: evWarpSpawn, sm: sm, cta: cta, warp: warp, now: now, a: wakeAt, reason: reason})
}

func (s *ShardBuffer) WarpDrop(sm, cta, warp int, now int64) {
	s.push(bufEvent{kind: evWarpDrop, sm: sm, cta: cta, warp: warp, now: now})
}

func (s *ShardBuffer) WarpBlock(sm, cta, warp int, now, until int64, reason StallReason) {
	s.push(bufEvent{kind: evWarpBlock, sm: sm, cta: cta, warp: warp, now: now, a: until, reason: reason})
}

func (s *ShardBuffer) WarpWake(sm, cta, warp int, now int64) {
	s.push(bufEvent{kind: evWarpWake, sm: sm, cta: cta, warp: warp, now: now})
}

func (s *ShardBuffer) WarpIssue(sm, cta, warp int, now int64, pc int) {
	s.push(bufEvent{kind: evWarpIssue, sm: sm, cta: cta, warp: warp, now: now, a: int64(pc)})
}

func (s *ShardBuffer) WarpDeny(sm, cta, warp int, now int64) {
	s.push(bufEvent{kind: evWarpDeny, sm: sm, cta: cta, warp: warp, now: now})
}

func (s *ShardBuffer) WarpBarrier(sm, cta, warp int, now int64) {
	s.push(bufEvent{kind: evWarpBarrier, sm: sm, cta: cta, warp: warp, now: now})
}

func (s *ShardBuffer) WarpBarrierRelease(sm, cta, warp int, now int64) {
	s.push(bufEvent{kind: evWarpBarrierRelease, sm: sm, cta: cta, warp: warp, now: now})
}

func (s *ShardBuffer) WarpExit(sm, cta, warp int, now int64) {
	s.push(bufEvent{kind: evWarpExit, sm: sm, cta: cta, warp: warp, now: now})
}

func (s *ShardBuffer) RegTransfer(sm, cta int, kind TransferKind, regs, bytes int, now int64) {
	s.push(bufEvent{kind: evRegTransfer, sm: sm, cta: cta, now: now, a: int64(regs), b: int64(bytes), tKind: kind})
}

func (s *ShardBuffer) MemAccess(sm int, now int64, lines, l1Miss, l2Miss int, queue float64) {
	s.push(bufEvent{kind: evMemAccess, sm: sm, now: now, a: int64(lines), b: int64(l1Miss), c: int64(l2Miss), queue: queue})
}

// FlushTo replays every recorded event into dst in recording order and
// empties the buffer (capacity is retained). Call from one goroutine at
// a step barrier, in ascending SM index order across buffers.
func (s *ShardBuffer) FlushTo(dst Sink) {
	for i := range s.events {
		e := &s.events[i]
		switch e.kind {
		case evCTA:
			dst.CTAEvent(e.sm, e.ctaKind, e.cta, e.now, e.a)
		case evWarpSpawn:
			dst.WarpSpawn(e.sm, e.cta, e.warp, e.now, e.a, e.reason)
		case evWarpDrop:
			dst.WarpDrop(e.sm, e.cta, e.warp, e.now)
		case evWarpBlock:
			dst.WarpBlock(e.sm, e.cta, e.warp, e.now, e.a, e.reason)
		case evWarpWake:
			dst.WarpWake(e.sm, e.cta, e.warp, e.now)
		case evWarpIssue:
			dst.WarpIssue(e.sm, e.cta, e.warp, e.now, int(e.a))
		case evWarpDeny:
			dst.WarpDeny(e.sm, e.cta, e.warp, e.now)
		case evWarpBarrier:
			dst.WarpBarrier(e.sm, e.cta, e.warp, e.now)
		case evWarpBarrierRelease:
			dst.WarpBarrierRelease(e.sm, e.cta, e.warp, e.now)
		case evWarpExit:
			dst.WarpExit(e.sm, e.cta, e.warp, e.now)
		case evRegTransfer:
			dst.RegTransfer(e.sm, e.cta, e.tKind, int(e.a), int(e.b), e.now)
		case evMemAccess:
			dst.MemAccess(e.sm, e.now, int(e.a), int(e.b), int(e.c), e.queue)
		}
	}
	s.events = s.events[:0]
}

// Len reports the number of buffered events (tests).
func (s *ShardBuffer) Len() int { return len(s.events) }
