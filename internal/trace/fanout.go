package trace

import "sync"

// Fanout is a JobSink multiplexer: every engine lifecycle event is
// forwarded to each subscribed sink. It decouples the run engine's single
// Events slot from the set of observers a long-running process wants — a
// CLI progress line, the serving layer's per-job event streams, a metrics
// sink — and supports subscribing and unsubscribing while batches are
// running (a new SSE client attaches mid-flight without touching the
// engine).
//
// The engine already serializes its Events calls, so subscribers see
// events one at a time in engine order; Fanout's own lock only protects
// the subscriber set against concurrent Subscribe/cancel. Subscribers are
// invoked synchronously on the engine's emitting goroutine — a slow sink
// slows the batch, exactly like a slow Engine.Events always has.
type Fanout struct {
	mu   sync.RWMutex
	subs map[int]JobSink
	next int
}

// NewFanout returns an empty multiplexer, usable as an Engine.Events sink.
func NewFanout() *Fanout { return &Fanout{subs: map[int]JobSink{}} }

// Subscribe adds sink and returns its removal function. Safe to call while
// batches run; the sink starts receiving at the next event. The removal
// function is idempotent.
func (f *Fanout) Subscribe(sink JobSink) (cancel func()) {
	f.mu.Lock()
	id := f.next
	f.next++
	f.subs[id] = sink
	f.mu.Unlock()
	return func() {
		f.mu.Lock()
		delete(f.subs, id)
		f.mu.Unlock()
	}
}

// Subscribers returns the current subscriber count.
func (f *Fanout) Subscribers() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.subs)
}

func (f *Fanout) each(fn func(JobSink)) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, s := range f.subs {
		fn(s)
	}
}

// BatchStart implements JobSink.
func (f *Fanout) BatchStart(total int) { f.each(func(s JobSink) { s.BatchStart(total) }) }

// JobStart implements JobSink.
func (f *Fanout) JobStart(id int, label string) {
	f.each(func(s JobSink) { s.JobStart(id, label) })
}

// JobProgress implements JobSink.
func (f *Fanout) JobProgress(id int, label string, sample ProgressSample) {
	f.each(func(s JobSink) { s.JobProgress(id, label, sample) })
}

// JobDone implements JobSink.
func (f *Fanout) JobDone(id int, label string, cached bool, err error) {
	f.each(func(s JobSink) { s.JobDone(id, label, cached, err) })
}

// BatchEnd implements JobSink.
func (f *Fanout) BatchEnd() { f.each(func(s JobSink) { s.BatchEnd() }) }
