// Package trace is the simulator's cycle-level observability layer. The
// timing model (internal/sm, internal/gpu) and the register-file policies
// (internal/core, internal/regfile) emit structured events into a Sink;
// consumers turn the stream into artifacts:
//
//   - ChromeWriter renders a chrome://tracing / Perfetto-compatible JSON
//     timeline (one track per SM, one sub-track per CTA slot) so a run's
//     context-switch choreography is visually inspectable;
//   - StallAggregator buckets every non-issuing warp-slot cycle into a
//     stall-reason histogram (stats.StallBreakdown) and per-CTA timelines.
//
// Tracing is opt-in and costs nothing when disabled: every emission site
// is guarded by a sink-nil check, so the default (no sink attached) adds
// only an untaken branch to the hot paths. Multi fans one event stream out
// to several consumers.
package trace

// StallReason classifies what a warp slot is doing during one cycle. Every
// cycle of every warp wired into a scheduler lands in exactly one bucket;
// the StallAggregator enforces the partition (sum of buckets == warp-slot
// cycles).
type StallReason uint8

const (
	// ReasonIssue: the warp issued an instruction this cycle.
	ReasonIssue StallReason = iota
	// ReasonIdle: the warp was issue-ready but its scheduler picked another
	// warp (or nothing) this cycle.
	ReasonIdle
	// ReasonScoreboard: blocked on a short-latency dependency (ALU, SFU,
	// shared memory).
	ReasonScoreboard
	// ReasonMemory: blocked on a global-memory dependency (L1/L2/DRAM).
	ReasonMemory
	// ReasonTransfer: waiting out a CTA-switch register transfer or
	// pipeline drain (PCRF/DRAM context movement, SwitchDrainLat).
	ReasonTransfer
	// ReasonRegDepletion: issue denied by the policy for lack of register
	// resources (RegMutex SRP acquisition failure).
	ReasonRegDepletion
	// ReasonBarrier: parked at a CTA-wide barrier.
	ReasonBarrier
	// NumReasons bounds the enum.
	NumReasons
)

// String names the reason for tables and trace labels.
func (r StallReason) String() string {
	switch r {
	case ReasonIssue:
		return "issue"
	case ReasonIdle:
		return "idle"
	case ReasonScoreboard:
		return "scoreboard"
	case ReasonMemory:
		return "memory"
	case ReasonTransfer:
		return "transfer"
	case ReasonRegDepletion:
		return "reg-depletion"
	case ReasonBarrier:
		return "barrier"
	}
	return "unknown"
}

// CTAKind labels CTA lifecycle events.
type CTAKind uint8

const (
	// CTALaunch: a fresh CTA entered execution (grid -> active).
	CTALaunch CTAKind = iota
	// CTALaunchParked: a fresh CTA was queued directly into a pending pool
	// (Reg+DRAM's off-chip launch path).
	CTALaunchParked
	// CTADeactivate: active -> pending; arg carries the pending-state code
	// (the sm.CTAState the CTA parked into).
	CTADeactivate
	// CTAReactivate: pending -> active; arg carries the reactivation delay.
	CTAReactivate
	// CTAFinish: the CTA's last warp exited.
	CTAFinish
	// CTAFullStall: every non-exited warp is long-blocked (the CTA-switch
	// trigger; instant).
	CTAFullStall
	// CTAReady: a pending CTA's earliest warp dependency resolved (instant).
	CTAReady
)

// String names the kind for trace labels.
func (k CTAKind) String() string {
	switch k {
	case CTALaunch:
		return "launch"
	case CTALaunchParked:
		return "launch-parked"
	case CTADeactivate:
		return "deactivate"
	case CTAReactivate:
		return "reactivate"
	case CTAFinish:
		return "finish"
	case CTAFullStall:
		return "full-stall"
	case CTAReady:
		return "ready"
	}
	return "unknown"
}

// TransferKind labels register-movement events.
type TransferKind uint8

const (
	// XferEvictToPCRF: live registers chained ACRF -> PCRF (FineReg).
	XferEvictToPCRF TransferKind = iota
	// XferRestoreFromPCRF: chain read back PCRF -> ACRF.
	XferRestoreFromPCRF
	// XferSpillToDRAM: full register context DMA'd off-chip (Reg+DRAM).
	XferSpillToDRAM
	// XferPrefetchFromDRAM: off-chip context fetched back on-chip.
	XferPrefetchFromDRAM
	// XferBitvec: live-register bit-vector fetch through the RMU cache.
	XferBitvec
)

// String names the transfer for trace labels.
func (k TransferKind) String() string {
	switch k {
	case XferEvictToPCRF:
		return "evict>PCRF"
	case XferRestoreFromPCRF:
		return "restore<PCRF"
	case XferSpillToDRAM:
		return "spill>DRAM"
	case XferPrefetchFromDRAM:
		return "prefetch<DRAM"
	case XferBitvec:
		return "bitvec-fetch"
	}
	return "unknown"
}

// Sink receives the simulator's event stream. One Sink serves the whole
// GPU; every method carries the SM id. Implementations must not retain the
// goroutine — the simulator is single-threaded and calls are synchronous.
//
// Warps are identified by (sm, cta, warp): the CTA's grid-global id plus
// the warp's index within it.
type Sink interface {
	// RunStart opens a run (kernel name, machine size).
	RunStart(kernel string, numSMs int)
	// RunEnd closes the run at the final simulated cycle.
	RunEnd(now int64)

	// CTAEvent reports a CTA lifecycle transition. arg is kind-specific:
	// the pending-state code for CTADeactivate, the reactivation delay for
	// CTAReactivate, 0 otherwise.
	CTAEvent(sm int, kind CTAKind, cta int, now, arg int64)

	// WarpSpawn: the warp entered a scheduler (its CTA was activated). If
	// wakeAt > now the warp starts blocked for the given reason (transfer
	// drain or a still-pending memory dependency).
	WarpSpawn(sm, cta, warp int, now, wakeAt int64, reason StallReason)
	// WarpDrop: the warp left its scheduler (its CTA was deactivated).
	WarpDrop(sm, cta, warp int, now int64)
	// WarpBlock: a scheduler probe found the warp's dependencies unready;
	// it sleeps until `until`.
	WarpBlock(sm, cta, warp int, now, until int64, reason StallReason)
	// WarpWake: a sleeping warp became schedulable again.
	WarpWake(sm, cta, warp int, now int64)
	// WarpIssue: the warp issued the instruction at pc this cycle.
	WarpIssue(sm, cta, warp int, now int64, pc int)
	// WarpDeny: the policy refused issue (register-resource depletion).
	WarpDeny(sm, cta, warp int, now int64)
	// WarpBarrier: the warp arrived at a CTA-wide barrier.
	WarpBarrier(sm, cta, warp int, now int64)
	// WarpBarrierRelease: the barrier opened for this warp.
	WarpBarrierRelease(sm, cta, warp int, now int64)
	// WarpExit: the warp retired (EXIT issued at cycle now).
	WarpExit(sm, cta, warp int, now int64)

	// RegTransfer: regs warp-registers (bytes total) moved for cta.
	RegTransfer(sm, cta int, kind TransferKind, regs, bytes int, now int64)
	// MemAccess: one warp global-memory instruction touched `lines` cache
	// lines with the given miss counts; queue is the DRAM channel backlog
	// (cycles) sampled at issue.
	MemAccess(sm int, now int64, lines, l1Miss, l2Miss int, queue float64)
}

// Noop is a Sink that discards everything — the measurable upper bound of
// tracing's dispatch overhead (a nil sink skips even the interface call).
type Noop struct{}

// RunStart implements Sink.
func (Noop) RunStart(string, int) {}

// RunEnd implements Sink.
func (Noop) RunEnd(int64) {}

// CTAEvent implements Sink.
func (Noop) CTAEvent(int, CTAKind, int, int64, int64) {}

// WarpSpawn implements Sink.
func (Noop) WarpSpawn(int, int, int, int64, int64, StallReason) {}

// WarpDrop implements Sink.
func (Noop) WarpDrop(int, int, int, int64) {}

// WarpBlock implements Sink.
func (Noop) WarpBlock(int, int, int, int64, int64, StallReason) {}

// WarpWake implements Sink.
func (Noop) WarpWake(int, int, int, int64) {}

// WarpIssue implements Sink.
func (Noop) WarpIssue(int, int, int, int64, int) {}

// WarpDeny implements Sink.
func (Noop) WarpDeny(int, int, int, int64) {}

// WarpBarrier implements Sink.
func (Noop) WarpBarrier(int, int, int, int64) {}

// WarpBarrierRelease implements Sink.
func (Noop) WarpBarrierRelease(int, int, int, int64) {}

// WarpExit implements Sink.
func (Noop) WarpExit(int, int, int, int64) {}

// RegTransfer implements Sink.
func (Noop) RegTransfer(int, int, TransferKind, int, int, int64) {}

// MemAccess implements Sink.
func (Noop) MemAccess(int, int64, int, int, int, float64) {}

// Multi fans events out to several sinks in order. Nil members are
// skipped; with zero or one non-nil member the result collapses to nil or
// that member.
func Multi(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiSink(live)
}

type multiSink []Sink

func (m multiSink) RunStart(kernel string, numSMs int) {
	for _, s := range m {
		s.RunStart(kernel, numSMs)
	}
}

func (m multiSink) RunEnd(now int64) {
	for _, s := range m {
		s.RunEnd(now)
	}
}

func (m multiSink) CTAEvent(sm int, kind CTAKind, cta int, now, arg int64) {
	for _, s := range m {
		s.CTAEvent(sm, kind, cta, now, arg)
	}
}

func (m multiSink) WarpSpawn(sm, cta, warp int, now, wakeAt int64, reason StallReason) {
	for _, s := range m {
		s.WarpSpawn(sm, cta, warp, now, wakeAt, reason)
	}
}

func (m multiSink) WarpDrop(sm, cta, warp int, now int64) {
	for _, s := range m {
		s.WarpDrop(sm, cta, warp, now)
	}
}

func (m multiSink) WarpBlock(sm, cta, warp int, now, until int64, reason StallReason) {
	for _, s := range m {
		s.WarpBlock(sm, cta, warp, now, until, reason)
	}
}

func (m multiSink) WarpWake(sm, cta, warp int, now int64) {
	for _, s := range m {
		s.WarpWake(sm, cta, warp, now)
	}
}

func (m multiSink) WarpIssue(sm, cta, warp int, now int64, pc int) {
	for _, s := range m {
		s.WarpIssue(sm, cta, warp, now, pc)
	}
}

func (m multiSink) WarpDeny(sm, cta, warp int, now int64) {
	for _, s := range m {
		s.WarpDeny(sm, cta, warp, now)
	}
}

func (m multiSink) WarpBarrier(sm, cta, warp int, now int64) {
	for _, s := range m {
		s.WarpBarrier(sm, cta, warp, now)
	}
}

func (m multiSink) WarpBarrierRelease(sm, cta, warp int, now int64) {
	for _, s := range m {
		s.WarpBarrierRelease(sm, cta, warp, now)
	}
}

func (m multiSink) WarpExit(sm, cta, warp int, now int64) {
	for _, s := range m {
		s.WarpExit(sm, cta, warp, now)
	}
}

func (m multiSink) RegTransfer(sm, cta int, kind TransferKind, regs, bytes int, now int64) {
	for _, s := range m {
		s.RegTransfer(sm, cta, kind, regs, bytes, now)
	}
}

func (m multiSink) MemAccess(sm int, now int64, lines, l1Miss, l2Miss int, queue float64) {
	for _, s := range m {
		s.MemAccess(sm, now, lines, l1Miss, l2Miss, queue)
	}
}
