package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// JobSink extends the observability layer from simulated time to harness
// time: the run engine (internal/runner) reports batch-level job lifecycle
// events — submission, start, completion, cache hits — through this
// interface, the batch-scheduling counterpart of Sink's cycle-level stream.
// The engine serializes calls (one event at a time, from worker
// goroutines), so implementations need no locking of their own against the
// engine; Progress locks anyway because CLIs may share it across engines.
type JobSink interface {
	// BatchStart opens a batch of total jobs.
	BatchStart(total int)
	// JobStart: worker began executing job id (a cache miss; cache hits
	// skip straight to JobDone).
	JobStart(id int, label string)
	// JobProgress: an in-flight job emitted a periodic progress sample
	// (only when progress sampling is enabled; cached and deduped jobs
	// emit none). Arrives between JobStart and JobDone.
	JobProgress(id int, label string, sample ProgressSample)
	// JobDone: job id finished. cached reports whether the result came
	// from the content-addressed cache (memory or disk) or from a
	// duplicate in-flight job rather than a fresh simulation.
	JobDone(id int, label string, cached bool, err error)
	// BatchEnd closes the batch.
	BatchEnd()
}

// ProgressSample is one in-run observation of a simulation, emitted by
// gpu.Run's Progress callback on the event core's wake schedule (the
// first event step at or after each ProgressEvery-cycle boundary, plus a
// Final sample at run end). Samples are observation only — they never
// feed stats.Metrics, so results are byte-identical with sampling on or
// off.
type ProgressSample struct {
	// Cycle is the simulated cycle of the sample; CycleDelta the cycles
	// simulated since the previous sample (== Cycle on the first), so
	// consumers accumulate totals without tracking per-job state.
	Cycle      int64 `json:"cycle"`
	CycleDelta int64 `json:"cycle_delta"`
	// GridCTAs is the kernel's total grid; CTAsLaunched/CTAsRetired the
	// cumulative launch and completion counts at the sample point
	// (launched - retired CTAs are resident).
	GridCTAs     int64 `json:"grid_ctas"`
	CTAsLaunched int64 `json:"ctas_launched"`
	CTAsRetired  int64 `json:"ctas_retired"`
	// Instructions is the cumulative warp-instruction count.
	Instructions int64 `json:"instructions"`
	// WallMS is wall-clock milliseconds since the run started;
	// CyclesPerSec the live simulation rate over the last inter-sample
	// window.
	WallMS       int64   `json:"wall_ms"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// Final marks the end-of-run sample (cumulative fields are totals).
	Final bool `json:"final,omitempty"`
	// Ops is the sparse telemetry delta since the previous sample
	// (internal/telemetry counter increases: PCRF spills, DMA transfers,
	// DRAM ops, ...). Counts come from the run's private telemetry.Scope,
	// not the process-global registry, so they attribute exactly to this
	// job even with any number of concurrent jobs in flight — a job's
	// deltas sum to precisely its own totals.
	Ops map[string]int64 `json:"ops,omitempty"`
}

// Progress is a JobSink that renders a single live status line — jobs
// done/total, cache hits, failures, throughput, and (when jobs emit
// progress samples) cumulative simulated cycles with the live
// sim-cycles/s rate — rewriting it in place with carriage returns. Point
// it at stderr so machine-readable stdout stays clean. Counts accumulate
// across batches (one experiments run issues many), so the line shows
// whole-invocation throughput. Call Close when done to terminate the
// line.
type Progress struct {
	mu      sync.Mutex
	w       io.Writer
	start   time.Time
	total   int
	done    int
	cached  int
	failed  int
	lastLen int

	// simCycles accumulates ProgressSample.CycleDelta across jobs; rate
	// rendering derives from it and wall time. lastSample throttles
	// sample-driven rerenders so high-frequency sampling cannot flood the
	// terminal (lifecycle events always render).
	simCycles  int64
	sawSample  bool
	lastSample time.Time
}

// sampleRenderPeriod caps how often JobProgress rewrites the line.
const sampleRenderPeriod = 100 * time.Millisecond

// NewProgress returns a Progress writing to w (conventionally os.Stderr).
func NewProgress(w io.Writer) *Progress { return &Progress{w: w} }

// BatchStart implements JobSink.
func (p *Progress) BatchStart(total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.start.IsZero() {
		p.start = time.Now()
	}
	p.total += total
	p.render()
}

// JobStart implements JobSink.
func (p *Progress) JobStart(int, string) {}

// JobProgress implements JobSink: cumulative cycles feed the status
// line's live rate. Rerenders are throttled to sampleRenderPeriod.
func (p *Progress) JobProgress(id int, label string, s ProgressSample) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.start.IsZero() {
		p.start = time.Now()
	}
	p.simCycles += s.CycleDelta
	p.sawSample = true
	if now := time.Now(); now.Sub(p.lastSample) >= sampleRenderPeriod {
		p.lastSample = now
		p.render()
	}
}

// JobDone implements JobSink.
func (p *Progress) JobDone(id int, label string, cached bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if cached {
		p.cached++
	}
	if err != nil {
		p.failed++
	}
	p.render()
}

// BatchEnd implements JobSink.
func (p *Progress) BatchEnd() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.render()
}

// Close terminates the status line (no-op if nothing was rendered).
func (p *Progress) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lastLen > 0 {
		fmt.Fprintln(p.w)
		p.lastLen = 0
	}
}

// render rewrites the status line in place; the caller holds p.mu.
func (p *Progress) render() {
	elapsed := time.Since(p.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(p.done) / elapsed
	}
	line := fmt.Sprintf("jobs %d/%d done (%d cached, %d failed) %.1f jobs/s",
		p.done, p.total, p.cached, p.failed, rate)
	if p.sawSample {
		cycRate := 0.0
		if elapsed > 0 {
			cycRate = float64(p.simCycles) / elapsed
		}
		line += fmt.Sprintf(" | %s cyc @ %s cyc/s", siCount(p.simCycles), siCount(int64(cycRate)))
	}
	pad := ""
	if n := p.lastLen - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	fmt.Fprintf(p.w, "\r%s%s", line, pad)
	p.lastLen = len(line)
}

// siCount renders a count with an SI magnitude suffix (1.5M, 820k).
func siCount(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.1fG", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}
