package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// JobSink extends the observability layer from simulated time to harness
// time: the run engine (internal/runner) reports batch-level job lifecycle
// events — submission, start, completion, cache hits — through this
// interface, the batch-scheduling counterpart of Sink's cycle-level stream.
// The engine serializes calls (one event at a time, from worker
// goroutines), so implementations need no locking of their own against the
// engine; Progress locks anyway because CLIs may share it across engines.
type JobSink interface {
	// BatchStart opens a batch of total jobs.
	BatchStart(total int)
	// JobStart: worker began executing job id (a cache miss; cache hits
	// skip straight to JobDone).
	JobStart(id int, label string)
	// JobDone: job id finished. cached reports whether the result came
	// from the content-addressed cache (memory or disk) or from a
	// duplicate in-flight job rather than a fresh simulation.
	JobDone(id int, label string, cached bool, err error)
	// BatchEnd closes the batch.
	BatchEnd()
}

// Progress is a JobSink that renders a single live status line — jobs
// done/total, cache hits, failures, throughput — rewriting it in place
// with carriage returns. Point it at stderr so machine-readable stdout
// stays clean. Counts accumulate across batches (one experiments run
// issues many), so the line shows whole-invocation throughput. Call Close
// when done to terminate the line.
type Progress struct {
	mu      sync.Mutex
	w       io.Writer
	start   time.Time
	total   int
	done    int
	cached  int
	failed  int
	lastLen int
}

// NewProgress returns a Progress writing to w (conventionally os.Stderr).
func NewProgress(w io.Writer) *Progress { return &Progress{w: w} }

// BatchStart implements JobSink.
func (p *Progress) BatchStart(total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.start.IsZero() {
		p.start = time.Now()
	}
	p.total += total
	p.render()
}

// JobStart implements JobSink.
func (p *Progress) JobStart(int, string) {}

// JobDone implements JobSink.
func (p *Progress) JobDone(id int, label string, cached bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if cached {
		p.cached++
	}
	if err != nil {
		p.failed++
	}
	p.render()
}

// BatchEnd implements JobSink.
func (p *Progress) BatchEnd() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.render()
}

// Close terminates the status line (no-op if nothing was rendered).
func (p *Progress) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lastLen > 0 {
		fmt.Fprintln(p.w)
		p.lastLen = 0
	}
}

// render rewrites the status line in place; the caller holds p.mu.
func (p *Progress) render() {
	elapsed := time.Since(p.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(p.done) / elapsed
	}
	line := fmt.Sprintf("jobs %d/%d done (%d cached, %d failed) %.1f jobs/s",
		p.done, p.total, p.cached, p.failed, rate)
	pad := ""
	if n := p.lastLen - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	fmt.Fprintf(p.w, "\r%s%s", line, pad)
	p.lastLen = len(line)
}
