package trace

import (
	"fmt"
	"sort"

	"finereg/internal/stats"
)

// StallAggregator is a Sink that buckets every warp-slot cycle of a run
// into a stall-reason histogram and accumulates per-CTA timelines.
//
// It runs a per-warp state machine: a warp wired into a scheduler is, at
// any cycle, in exactly one state (ready, blocked-for-reason, at a
// barrier). Transitions arrive as events; on each transition the elapsed
// segment is flushed into the state's bucket. Warp-slot totals are
// accumulated independently — only from activation/drop boundaries — so
// the partition invariant (sum of buckets == warp-slot cycles) is a real
// cross-check of the event stream, not an identity.
type StallAggregator struct {
	buckets [NumReasons]int64
	slot    int64 // warp-slot cycles, from residency boundaries only

	warps map[warpKey]*warpState
	ctas  map[ctaKey]*CTATimeline
	end   int64
}

type warpKey struct{ sm, cta, warp int }
type ctaKey struct{ sm, cta int }

type warpState struct {
	start    int64 // current segment start
	reason   StallReason
	activeAt int64 // residency segment start
	lastDeny int64 // dedupe multiple probes in one cycle
}

// CTATimeline summarizes one CTA's residency history.
type CTATimeline struct {
	SM, CTA       int
	LaunchAt      int64
	FinishAt      int64
	Activations   int64 // times the CTA entered execution (launch + resumes)
	Switches      int64 // deactivations (active -> pending)
	FullStalls    int64
	ActiveCycles  int64
	PendingCycles int64

	active     bool
	lastChange int64
}

// NewStallAggregator returns an empty aggregator ready to attach to a run.
func NewStallAggregator() *StallAggregator {
	return &StallAggregator{
		warps: make(map[warpKey]*warpState),
		ctas:  make(map[ctaKey]*CTATimeline),
	}
}

// Breakdown returns the accumulated histogram as a stats.StallBreakdown.
func (a *StallAggregator) Breakdown() *stats.StallBreakdown {
	return &stats.StallBreakdown{
		WarpSlotCycles:     a.slot,
		IssueCycles:        a.buckets[ReasonIssue],
		IdleCycles:         a.buckets[ReasonIdle],
		ScoreboardCycles:   a.buckets[ReasonScoreboard],
		MemoryCycles:       a.buckets[ReasonMemory],
		TransferCycles:     a.buckets[ReasonTransfer],
		RegDepletionCycles: a.buckets[ReasonRegDepletion],
		BarrierCycles:      a.buckets[ReasonBarrier],
	}
}

// Timelines returns the per-CTA summaries ordered by (SM, CTA id).
func (a *StallAggregator) Timelines() []*CTATimeline {
	out := make([]*CTATimeline, 0, len(a.ctas))
	for _, t := range a.ctas {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SM != out[j].SM {
			return out[i].SM < out[j].SM
		}
		return out[i].CTA < out[j].CTA
	})
	return out
}

// EndCycle returns the final simulated cycle reported by RunEnd.
func (a *StallAggregator) EndCycle() int64 { return a.end }

// flushTo closes the warp's current segment at cycle t (no-op when the
// segment is empty or t precedes its start, which happens when a release
// races an issue in the same cycle).
func (w *warpState) flushTo(a *StallAggregator, t int64) {
	if t > w.start {
		a.buckets[w.reason] += t - w.start
		w.start = t
	}
}

// ---- Sink implementation ----

// RunStart implements Sink.
func (a *StallAggregator) RunStart(kernel string, numSMs int) {}

// RunEnd implements Sink.
func (a *StallAggregator) RunEnd(now int64) { a.end = now }

// CTAEvent implements Sink; it maintains the per-CTA timelines (warp-level
// accounting arrives through the Warp* events).
func (a *StallAggregator) CTAEvent(sm int, kind CTAKind, cta int, now, arg int64) {
	k := ctaKey{sm, cta}
	t := a.ctas[k]
	if t == nil {
		t = &CTATimeline{SM: sm, CTA: cta, LaunchAt: now, FinishAt: -1, lastChange: now}
		a.ctas[k] = t
	}
	switch kind {
	case CTALaunch:
		t.active, t.lastChange = true, now
		t.Activations++
	case CTALaunchParked:
		t.active, t.lastChange = false, now
	case CTADeactivate:
		t.ActiveCycles += now - t.lastChange
		t.active, t.lastChange = false, now
		t.Switches++
	case CTAReactivate:
		t.PendingCycles += now - t.lastChange
		t.active, t.lastChange = true, now
		t.Activations++
	case CTAFinish:
		t.ActiveCycles += now - t.lastChange
		t.active, t.lastChange = false, now
		t.FinishAt = now
	case CTAFullStall:
		t.FullStalls++
	}
}

// WarpSpawn implements Sink.
func (a *StallAggregator) WarpSpawn(sm, cta, warp int, now, wakeAt int64, reason StallReason) {
	st := &warpState{start: now, activeAt: now, reason: ReasonIdle, lastDeny: -1}
	if wakeAt > now {
		st.reason = reason
	}
	a.warps[warpKey{sm, cta, warp}] = st
}

// WarpDrop implements Sink.
func (a *StallAggregator) WarpDrop(sm, cta, warp int, now int64) {
	k := warpKey{sm, cta, warp}
	if st := a.warps[k]; st != nil {
		st.flushTo(a, now)
		a.slot += now - st.activeAt
		delete(a.warps, k)
	}
}

// WarpBlock implements Sink.
func (a *StallAggregator) WarpBlock(sm, cta, warp int, now, until int64, reason StallReason) {
	if st := a.warps[warpKey{sm, cta, warp}]; st != nil {
		st.flushTo(a, now)
		st.reason = reason
	}
}

// WarpWake implements Sink.
func (a *StallAggregator) WarpWake(sm, cta, warp int, now int64) {
	if st := a.warps[warpKey{sm, cta, warp}]; st != nil {
		st.flushTo(a, now)
		st.reason = ReasonIdle
	}
}

// WarpIssue implements Sink.
func (a *StallAggregator) WarpIssue(sm, cta, warp int, now int64, pc int) {
	if st := a.warps[warpKey{sm, cta, warp}]; st != nil {
		st.flushTo(a, now)
		a.buckets[ReasonIssue]++
		st.start = now + 1
		st.reason = ReasonIdle
	}
}

// WarpDeny implements Sink. A warp can be probed (and denied) more than
// once in a cycle — GTO checks its greedy warp before scanning the pool —
// so repeated denials in the same cycle collapse to one depletion cycle.
func (a *StallAggregator) WarpDeny(sm, cta, warp int, now int64) {
	st := a.warps[warpKey{sm, cta, warp}]
	if st == nil || st.lastDeny == now {
		return
	}
	st.lastDeny = now
	st.flushTo(a, now)
	a.buckets[ReasonRegDepletion]++
	st.start = now + 1
	st.reason = ReasonIdle
}

// WarpBarrier implements Sink; the arrival follows the issue of the
// barrier instruction in the same cycle, so the segment starts at now+1.
func (a *StallAggregator) WarpBarrier(sm, cta, warp int, now int64) {
	if st := a.warps[warpKey{sm, cta, warp}]; st != nil {
		st.flushTo(a, now)
		st.reason = ReasonBarrier
	}
}

// WarpBarrierRelease implements Sink. The last arriver releases the
// barrier in its own issue cycle; its segment start (now+1) then precedes
// the release time and flushTo no-ops.
func (a *StallAggregator) WarpBarrierRelease(sm, cta, warp int, now int64) {
	if st := a.warps[warpKey{sm, cta, warp}]; st != nil {
		st.flushTo(a, now)
		st.reason = ReasonIdle
	}
}

// WarpExit implements Sink. The EXIT instruction's issue cycle was already
// counted by WarpIssue (which advanced the segment to now+1), so the
// warp's residency closes at now+1.
func (a *StallAggregator) WarpExit(sm, cta, warp int, now int64) {
	k := warpKey{sm, cta, warp}
	if st := a.warps[k]; st != nil {
		st.flushTo(a, now+1)
		a.slot += now + 1 - st.activeAt
		delete(a.warps, k)
	}
}

// RegTransfer implements Sink.
func (a *StallAggregator) RegTransfer(sm, cta int, kind TransferKind, regs, bytes int, now int64) {
}

// MemAccess implements Sink.
func (a *StallAggregator) MemAccess(sm int, now int64, lines, l1Miss, l2Miss int, queue float64) {
}

// TimelineTable renders the per-CTA summaries (at most limit rows, 0 = no
// limit) ordered by total resident time, longest first.
func (a *StallAggregator) TimelineTable(limit int) *stats.Table {
	tls := a.Timelines()
	sort.SliceStable(tls, func(i, j int) bool {
		return tls[i].ActiveCycles+tls[i].PendingCycles > tls[j].ActiveCycles+tls[j].PendingCycles
	})
	if limit > 0 && len(tls) > limit {
		tls = tls[:limit]
	}
	t := &stats.Table{Header: []string{"sm/cta", "launch", "finish", "acts", "switches", "stalls", "activeCyc", "pendingCyc"}}
	for _, tl := range tls {
		finish := "-"
		if tl.FinishAt >= 0 {
			finish = fmt.Sprintf("%d", tl.FinishAt)
		}
		t.AddRow(fmt.Sprintf("SM%d/CTA%d", tl.SM, tl.CTA),
			tl.LaunchAt, finish, tl.Activations, tl.Switches, tl.FullStalls,
			tl.ActiveCycles, tl.PendingCycles)
	}
	return t
}
