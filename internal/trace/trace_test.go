package trace_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"finereg/internal/gpu"
	"finereg/internal/kernels"
	"finereg/internal/stats"
	"finereg/internal/trace"
)

// testConfig is a 2-SM machine so runs stay test-sized while still
// exercising cross-SM dispatch.
func testConfig() gpu.Config { return gpu.Default().Scale(2) }

func testKernel(t *testing.T, name string, grid int) *kernels.Kernel {
	t.Helper()
	prof, err := kernels.ProfileByName(name)
	if err != nil {
		t.Fatalf("profile %s: %v", name, err)
	}
	// Shrink the streaming footprint to the 2-SM machine like the
	// experiment harness does, so runs are not artificially DRAM-bound.
	prof.FootprintKB = 1024
	k, err := kernels.Build(prof, grid)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	return k
}

// policies returns all five evaluated configurations.
func policies() map[string]gpu.PolicyFactory {
	return map[string]gpu.PolicyFactory{
		"baseline": gpu.Baseline(),
		"vt":       gpu.VirtualThread(),
		"regdram":  gpu.RegDRAM(2),
		"regmutex": gpu.VTRegMutex(0.2),
		"finereg":  gpu.FineRegDefault(),
	}
}

// TestStallPartitionInvariant is the core property of the aggregator: over
// a full run, every warp-slot cycle lands in exactly one bucket, so the
// buckets sum to the independently-accumulated warp-slot total, and the
// issue bucket equals the instruction count the simulator reports.
func TestStallPartitionInvariant(t *testing.T) {
	for _, bench := range []string{"CS", "NW", "SG"} {
		for pname, pf := range policies() {
			t.Run(bench+"/"+pname, func(t *testing.T) {
				agg := trace.NewStallAggregator()
				g := gpu.New(testConfig(), pf)
				g.SetTrace(agg)
				m, err := g.Run(testKernel(t, bench, 96))
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				b := agg.Breakdown()
				if err := b.Check(); err != nil {
					t.Errorf("partition invariant: %v\n%s", err, b)
				}
				if b.IssueCycles != m.Instructions {
					t.Errorf("issue cycles %d != instructions %d", b.IssueCycles, m.Instructions)
				}
				if b.WarpSlotCycles <= 0 {
					t.Errorf("no warp-slot cycles accumulated")
				}
				if agg.EndCycle() != m.Cycles {
					t.Errorf("end cycle %d != metrics cycles %d", agg.EndCycle(), m.Cycles)
				}
			})
		}
	}
}

// TestStallPartitionInvariantSharded re-runs the partition invariant on
// a sharded machine: per-SM trace buffers (not the aggregator itself)
// absorb concurrent emission, so the breakdown a sharded run delivers
// must equal the serial run's field for field — the partition property
// and the identity both. Run under -race this also exercises the buffer
// merge path against the aggregator's single-goroutine assumption.
func TestStallPartitionInvariantSharded(t *testing.T) {
	for _, bench := range []string{"CS", "NW", "SG"} {
		t.Run(bench, func(t *testing.T) {
			run := func(shards int) (*stats.StallBreakdown, int64) {
				agg := trace.NewStallAggregator()
				cfg := testConfig()
				cfg.Shards = shards
				g := gpu.New(cfg, gpu.FineRegDefault())
				g.SetTrace(agg)
				m, err := g.Run(testKernel(t, bench, 96))
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				return agg.Breakdown(), m.Instructions
			}
			serial, serialInstr := run(1)
			sharded, shardedInstr := run(2)
			if err := sharded.Check(); err != nil {
				t.Errorf("sharded partition invariant: %v\n%s", err, sharded)
			}
			if serialInstr != shardedInstr {
				t.Errorf("instructions diverge: serial %d, sharded %d", serialInstr, shardedInstr)
			}
			if !reflect.DeepEqual(serial, sharded) {
				t.Errorf("stall breakdown diverges:\nserial:  %+v\nsharded: %+v", serial, sharded)
			}
		})
	}
}

// TestCTATimelines checks the per-CTA residency bookkeeping under the
// policy that actually context-switches.
func TestCTATimelines(t *testing.T) {
	agg := trace.NewStallAggregator()
	g := gpu.New(testConfig(), gpu.FineRegDefault())
	g.SetTrace(agg)
	m, err := g.Run(testKernel(t, "CS", 96))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	tls := agg.Timelines()
	if len(tls) != int(m.CTAsLaunched) {
		t.Fatalf("timelines %d != launched CTAs %d", len(tls), m.CTAsLaunched)
	}
	var switches int64
	for _, tl := range tls {
		if tl.FinishAt < 0 {
			t.Errorf("SM%d/CTA%d never finished", tl.SM, tl.CTA)
			continue
		}
		if tl.ActiveCycles+tl.PendingCycles != tl.FinishAt-tl.LaunchAt {
			t.Errorf("SM%d/CTA%d: active %d + pending %d != residency %d",
				tl.SM, tl.CTA, tl.ActiveCycles, tl.PendingCycles, tl.FinishAt-tl.LaunchAt)
		}
		if tl.Activations < 1 {
			t.Errorf("SM%d/CTA%d: no activations", tl.SM, tl.CTA)
		}
		switches += tl.Switches
	}
	if switches != m.CTASwitches {
		t.Errorf("timeline switches %d != metrics switches %d", switches, m.CTASwitches)
	}
	if tbl := agg.TimelineTable(5); tbl.String() == "" {
		t.Error("empty timeline table")
	}
}

// chromeDoc mirrors the trace-event JSON envelope for validation.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Ts   int64          `json:"ts"`
		Name string         `json:"name"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestChromeWriterValidJSON runs a switching-heavy configuration through
// the Chrome writer and validates the emitted document: it parses, its
// slices are balanced per track, and the expected metadata is present.
func TestChromeWriterValidJSON(t *testing.T) {
	var buf bytes.Buffer
	cw := trace.NewChromeWriter(&buf)
	g := gpu.New(testConfig(), gpu.FineRegDefault())
	g.SetTrace(cw)
	if _, err := g.Run(testKernel(t, "CS", 96)); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := cw.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	open := map[string]int{} // per (pid,tid) B/E balance
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		key := fmt.Sprintf("%d.%d", ev.Pid, ev.Tid)
		switch ev.Ph {
		case "B":
			open[key]++
		case "E":
			open[key]--
			if open[key] < 0 {
				t.Fatalf("unbalanced E on track %s", key)
			}
		case "M":
			if ev.Name == "process_name" || ev.Name == "thread_name" {
				names[fmt.Sprint(ev.Args["name"])] = true
			}
		}
	}
	for key, n := range open {
		if n != 0 {
			t.Errorf("track %s left %d slices open", key, n)
		}
	}
	for _, want := range []string{"SM0", "SM1", "slot 0"} {
		if !names[want] {
			t.Errorf("missing %q metadata track", want)
		}
	}
	// Close is idempotent and must not duplicate the terminator.
	if err := cw.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Errorf("document corrupted by second close: %v", err)
	}
}

// TestMulti checks the fan-out helper's collapsing rules and delivery.
func TestMulti(t *testing.T) {
	if trace.Multi() != nil {
		t.Error("Multi() should collapse to nil")
	}
	if trace.Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) should collapse to nil")
	}
	a := trace.NewStallAggregator()
	if got := trace.Multi(nil, a); got != trace.Sink(a) {
		t.Error("Multi(nil, x) should collapse to x")
	}
	b := trace.NewStallAggregator()
	g := gpu.New(testConfig(), gpu.VirtualThread())
	g.SetTrace(trace.Multi(a, b))
	m, err := g.Run(testKernel(t, "NW", 8))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if a.Breakdown().IssueCycles != m.Instructions || b.Breakdown().IssueCycles != m.Instructions {
		t.Errorf("fan-out lost events: a=%d b=%d want %d",
			a.Breakdown().IssueCycles, b.Breakdown().IssueCycles, m.Instructions)
	}
}

// TestNoopSinkRuns pins the Noop sink to the Sink contract through a real
// run (catches signature drift at compile time, panics at run time).
func TestNoopSinkRuns(t *testing.T) {
	g := gpu.New(testConfig(), gpu.Baseline())
	g.SetTrace(trace.Noop{})
	if _, err := g.Run(testKernel(t, "CS", 8)); err != nil {
		t.Fatalf("run with Noop sink: %v", err)
	}
}
