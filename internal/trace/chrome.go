package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// ChromeWriter streams the event stream as Chrome trace-event JSON
// (loadable in chrome://tracing and Perfetto). The layout:
//
//   - one "process" (pid) per SM, named "SM<i>";
//   - inside each SM, one "thread" (tid) per CTA slot: a CTA occupies the
//     lowest free slot while active, rendered as a B/E duration slice named
//     "CTA <id>", so context switches appear as interleaved slices;
//   - instant events on the slot for full stalls and register transfers;
//   - a per-SM counter track "ctas" (active/pending residency) and a
//     global "DRAM" process with a channel-backlog counter.
//
// Events are streamed as they arrive (constant memory); Close (or RunEnd)
// finishes the JSON document. Timestamps map one simulated cycle to one
// microsecond.
type ChromeWriter struct {
	w     *bufio.Writer
	first bool
	err   error

	sms  map[int]*smTrack
	meta map[string]bool // emitted metadata records

	// counter decimation: at most one DRAM sample per CounterEvery cycles.
	CounterEvery int64
	lastDRAMTs   int64
	closed       bool
}

type smTrack struct {
	slots   map[int]int // ctaID -> slot tid while active
	free    []int
	nextTid int
	active  int
	pending int
}

// NewChromeWriter wraps w; the caller owns the underlying writer's
// lifetime and must call Close (RunEnd also closes the document).
func NewChromeWriter(w io.Writer) *ChromeWriter {
	cw := &ChromeWriter{
		w:            bufio.NewWriterSize(w, 1<<16),
		first:        true,
		sms:          make(map[int]*smTrack),
		meta:         make(map[string]bool),
		CounterEvery: 50,
		lastDRAMTs:   -1,
	}
	cw.raw(`{"displayTimeUnit":"ns","traceEvents":[`)
	return cw
}

// Err returns the first write error, if any.
func (c *ChromeWriter) Err() error { return c.err }

// Close terminates the JSON document and flushes. Safe to call twice.
func (c *ChromeWriter) Close() error {
	if !c.closed {
		c.closed = true
		if c.err == nil {
			if _, err := c.w.WriteString("\n]}\n"); err != nil {
				c.err = err
			}
		}
	}
	if err := c.w.Flush(); c.err == nil {
		c.err = err
	}
	return c.err
}

func (c *ChromeWriter) raw(s string) {
	if c.err != nil || c.closed {
		return
	}
	if _, err := c.w.WriteString(s); err != nil {
		c.err = err
	}
}

// event writes one record; body is the pre-rendered JSON fields after the
// common ones. All strings are simulator-controlled (no escaping needed).
func (c *ChromeWriter) event(body string) {
	if c.closed {
		return
	}
	if c.first {
		c.first = false
		c.raw("\n{")
	} else {
		c.raw(",\n{")
	}
	c.raw(body)
	c.raw("}")
}

// metaOnce emits a metadata record (process/thread naming) a single time.
func (c *ChromeWriter) metaOnce(key, body string) {
	if !c.meta[key] {
		c.meta[key] = true
		c.event(body)
	}
}

func (c *ChromeWriter) track(sm int) *smTrack {
	t := c.sms[sm]
	if t == nil {
		t = &smTrack{slots: make(map[int]int)}
		c.sms[sm] = t
		c.metaOnce(fmt.Sprintf("p%d", sm),
			fmt.Sprintf(`"ph":"M","pid":%d,"name":"process_name","args":{"name":"SM%d"}`, sm, sm))
		c.metaOnce(fmt.Sprintf("ps%d", sm),
			fmt.Sprintf(`"ph":"M","pid":%d,"name":"process_sort_index","args":{"sort_index":%d}`, sm, sm))
	}
	return t
}

// openSlot assigns the lowest free CTA-slot tid on the SM.
func (c *ChromeWriter) openSlot(sm, cta int) int {
	t := c.track(sm)
	var tid int
	if n := len(t.free); n > 0 {
		sort.Ints(t.free)
		tid = t.free[0]
		t.free = t.free[1:]
	} else {
		tid = t.nextTid
		t.nextTid++
	}
	t.slots[cta] = tid
	c.metaOnce(fmt.Sprintf("t%d.%d", sm, tid),
		fmt.Sprintf(`"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"slot %d"}`, sm, tid, tid))
	return tid
}

func (c *ChromeWriter) closeSlot(sm, cta int) (int, bool) {
	t := c.track(sm)
	tid, ok := t.slots[cta]
	if ok {
		delete(t.slots, cta)
		t.free = append(t.free, tid)
	}
	return tid, ok
}

// xferTid is the per-SM lane for transfer events whose CTA holds no slot.
const xferTid = 9990

func (c *ChromeWriter) ctaCounter(sm int, now int64) {
	t := c.track(sm)
	c.event(fmt.Sprintf(`"ph":"C","pid":%d,"tid":0,"name":"ctas","ts":%d,"args":{"active":%d,"pending":%d}`,
		sm, now, t.active, t.pending))
}

// ---- Sink implementation ----

// RunStart implements Sink.
func (c *ChromeWriter) RunStart(kernel string, numSMs int) {
	c.metaOnce("kernel",
		fmt.Sprintf(`"ph":"i","s":"g","name":"kernel %s","pid":0,"tid":0,"ts":0`, kernel))
}

// RunEnd implements Sink; it finalizes the document.
func (c *ChromeWriter) RunEnd(now int64) { c.Close() }

// CTAEvent implements Sink.
func (c *ChromeWriter) CTAEvent(sm int, kind CTAKind, cta int, now, arg int64) {
	t := c.track(sm)
	switch kind {
	case CTALaunch:
		t.active++
		tid := c.openSlot(sm, cta)
		c.event(fmt.Sprintf(`"ph":"B","pid":%d,"tid":%d,"ts":%d,"name":"CTA %d","args":{"cta":%d}`,
			sm, tid, now, cta, cta))
		c.ctaCounter(sm, now)
	case CTALaunchParked:
		t.pending++
		c.ctaCounter(sm, now)
	case CTADeactivate:
		t.active--
		t.pending++
		if tid, ok := c.closeSlot(sm, cta); ok {
			c.event(fmt.Sprintf(`"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%d,"name":"deactivate(state %d)"`,
				sm, tid, now, arg))
			c.event(fmt.Sprintf(`"ph":"E","pid":%d,"tid":%d,"ts":%d`, sm, tid, now))
		}
		c.ctaCounter(sm, now)
	case CTAReactivate:
		t.pending--
		t.active++
		tid := c.openSlot(sm, cta)
		c.event(fmt.Sprintf(`"ph":"B","pid":%d,"tid":%d,"ts":%d,"name":"CTA %d","args":{"cta":%d,"resume_delay":%d}`,
			sm, tid, now, cta, cta, arg))
		c.ctaCounter(sm, now)
	case CTAFinish:
		t.active--
		if tid, ok := c.closeSlot(sm, cta); ok {
			c.event(fmt.Sprintf(`"ph":"E","pid":%d,"tid":%d,"ts":%d`, sm, tid, now))
		}
		c.ctaCounter(sm, now)
	case CTAFullStall:
		if tid, ok := c.track(sm).slots[cta]; ok {
			c.event(fmt.Sprintf(`"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%d,"name":"full-stall CTA %d"`,
				sm, tid, now, cta))
		}
	case CTAReady:
		c.event(fmt.Sprintf(`"ph":"i","s":"p","pid":%d,"tid":%d,"ts":%d,"name":"ready CTA %d"`,
			sm, xferTid, now, cta))
		c.metaOnce(fmt.Sprintf("t%d.x", sm),
			fmt.Sprintf(`"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"pending pool"}`, sm, xferTid))
	}
}

// WarpSpawn implements Sink (warp-level detail is not drawn; the slot
// slices carry the story).
func (c *ChromeWriter) WarpSpawn(sm, cta, warp int, now, wakeAt int64, reason StallReason) {}

// WarpDrop implements Sink.
func (c *ChromeWriter) WarpDrop(sm, cta, warp int, now int64) {}

// WarpBlock implements Sink.
func (c *ChromeWriter) WarpBlock(sm, cta, warp int, now, until int64, reason StallReason) {}

// WarpWake implements Sink.
func (c *ChromeWriter) WarpWake(sm, cta, warp int, now int64) {}

// WarpIssue implements Sink.
func (c *ChromeWriter) WarpIssue(sm, cta, warp int, now int64, pc int) {}

// WarpDeny implements Sink.
func (c *ChromeWriter) WarpDeny(sm, cta, warp int, now int64) {}

// WarpBarrier implements Sink.
func (c *ChromeWriter) WarpBarrier(sm, cta, warp int, now int64) {}

// WarpBarrierRelease implements Sink.
func (c *ChromeWriter) WarpBarrierRelease(sm, cta, warp int, now int64) {}

// WarpExit implements Sink.
func (c *ChromeWriter) WarpExit(sm, cta, warp int, now int64) {}

// RegTransfer implements Sink; transfers render as instants on the CTA's
// slot (still open during eviction, already open after reactivation) or on
// the SM's pending-pool lane.
func (c *ChromeWriter) RegTransfer(sm, cta int, kind TransferKind, regs, bytes int, now int64) {
	tid, ok := c.track(sm).slots[cta]
	if !ok {
		tid = xferTid
		c.metaOnce(fmt.Sprintf("t%d.x", sm),
			fmt.Sprintf(`"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"pending pool"}`, sm, xferTid))
	}
	c.event(fmt.Sprintf(`"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%d,"name":"%s","args":{"cta":%d,"regs":%d,"bytes":%d}`,
		sm, tid, now, kind, cta, regs, bytes))
}

// dramPid is the pseudo-process hosting the global DRAM counter track.
const dramPid = 10000

// MemAccess implements Sink; the DRAM backlog is sampled at most once per
// CounterEvery cycles to bound file size.
func (c *ChromeWriter) MemAccess(sm int, now int64, lines, l1Miss, l2Miss int, queue float64) {
	if c.lastDRAMTs >= 0 && now-c.lastDRAMTs < c.CounterEvery {
		return
	}
	c.lastDRAMTs = now
	c.metaOnce("dram",
		fmt.Sprintf(`"ph":"M","pid":%d,"name":"process_name","args":{"name":"DRAM"}`, dramPid))
	c.event(fmt.Sprintf(`"ph":"C","pid":%d,"tid":0,"name":"queue","ts":%d,"args":{"backlog_cycles":%.1f}`,
		dramPid, now, queue))
}
