package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements a textual assembly format for the ISA, so kernels
// can be written, inspected and versioned as plain files rather than Go
// code. EmitAsm and Assemble round-trip exactly.
//
// Format:
//
//	; comments run to end of line (// also works)
//	.kernel NAME        kernel name
//	.regs N             minimum register allocation (optional)
//	label:              label at the next instruction
//	  MOV R0, #5        immediate forms use #
//	  IADD R3, R1, R2
//	  LDG R4, [R0] pattern=strided stride=4 region=1 footprint=8388608
//	  STG [R0], R4 region=15
//	  @R2 BRA label trip=16        predicated branch with loop trip count
//	  @R2 BRA label diverge        forward divergent branch
//	  BAR
//	  EXIT

// EmitAsm renders a program in the assembly format accepted by Assemble.
// Branch targets become generated labels (L<pc>).
func EmitAsm(p *Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ".kernel %s\n.regs %d\n", p.Name, p.RegsPerThread)
	targets := map[int]bool{}
	for pc := range p.Instrs {
		if in := &p.Instrs[pc]; in.Op == OpBRA {
			targets[in.Target] = true
		}
	}
	for pc := range p.Instrs {
		if targets[pc] {
			fmt.Fprintf(&sb, "L%d:\n", pc)
		}
		sb.WriteString("  ")
		sb.WriteString(emitInstr(&p.Instrs[pc]))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func emitInstr(in *Instr) string {
	var sb strings.Builder
	if in.Op == OpBRA && in.Pred.Valid() {
		fmt.Fprintf(&sb, "@%s ", in.Pred)
	}
	sb.WriteString(in.Op.String())
	switch in.Op {
	case OpNOP, OpBAR, OpEXIT:
	case OpBRA:
		fmt.Fprintf(&sb, " L%d", in.Target)
		if in.Trip > 0 {
			fmt.Fprintf(&sb, " trip=%d", in.Trip)
		}
		if in.Diverge {
			sb.WriteString(" diverge")
		}
	case OpLDG, OpLDS:
		addr := "-"
		if in.NSrc > 0 {
			addr = in.Srcs[0].String()
		}
		fmt.Fprintf(&sb, " %s, [%s]", in.Dst, addr)
		if in.Op == OpLDG {
			sb.WriteString(emitMem(&in.Mem))
		}
	case OpSTG, OpSTS:
		addr := "-"
		if in.NSrc > 1 {
			addr = in.Srcs[1].String()
		}
		fmt.Fprintf(&sb, " [%s], %s", addr, in.Srcs[0])
		if in.Op == OpSTG {
			sb.WriteString(emitMem(&in.Mem))
		}
	case OpMOV:
		if in.NSrc == 0 {
			fmt.Fprintf(&sb, " %s, #%d", in.Dst, in.Imm)
		} else {
			fmt.Fprintf(&sb, " %s, %s", in.Dst, in.Srcs[0])
		}
	case OpIADD:
		if in.NSrc == 1 {
			fmt.Fprintf(&sb, " %s, %s, #%d", in.Dst, in.Srcs[0], in.Imm)
		} else {
			fmt.Fprintf(&sb, " %s, %s, %s", in.Dst, in.Srcs[0], in.Srcs[1])
		}
	case OpSHF:
		fmt.Fprintf(&sb, " %s, %s, #%d", in.Dst, in.Srcs[0], in.Imm)
	case OpMUFU:
		fmt.Fprintf(&sb, " %s, %s", in.Dst, in.Srcs[0])
	default: // 2- and 3-source ALU forms
		parts := []string{in.Dst.String()}
		for _, r := range in.Srcs[:in.NSrc] {
			parts = append(parts, r.String())
		}
		sb.WriteString(" " + strings.Join(parts, ", "))
	}
	return sb.String()
}

func emitMem(m *MemDesc) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, " pattern=%s", m.Pattern)
	if m.Stride != 0 {
		fmt.Fprintf(&sb, " stride=%d", m.Stride)
	}
	if m.Region != 0 {
		fmt.Fprintf(&sb, " region=%d", m.Region)
	}
	if m.Footprint != 0 {
		fmt.Fprintf(&sb, " footprint=%d", m.Footprint)
	}
	return sb.String()
}

// Assemble parses the assembly format into a validated Program.
func Assemble(text string) (*Program, error) {
	a := &assembler{b: NewBuilder("kernel")}
	for lineNo, raw := range strings.Split(text, "\n") {
		if err := a.line(raw); err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", lineNo+1, err)
		}
	}
	if a.name != "" {
		a.b.name = a.name
	}
	return a.b.Build(a.minRegs)
}

type assembler struct {
	b       *Builder
	name    string
	minRegs int
}

func (a *assembler) line(raw string) error {
	// Strip comments (';' or '//'; '#' marks immediates, not comments).
	if i := strings.IndexByte(raw, ';'); i >= 0 {
		raw = raw[:i]
	}
	if i := strings.Index(raw, "//"); i >= 0 {
		raw = raw[:i]
	}
	line := strings.TrimSpace(raw)
	if line == "" {
		return nil
	}
	switch {
	case strings.HasPrefix(line, ".kernel"):
		a.name = strings.TrimSpace(strings.TrimPrefix(line, ".kernel"))
		return nil
	case strings.HasPrefix(line, ".regs"):
		n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, ".regs")))
		if err != nil {
			return fmt.Errorf("bad .regs: %w", err)
		}
		a.minRegs = n
		return nil
	case strings.HasSuffix(line, ":"):
		a.b.Label(strings.TrimSuffix(line, ":"))
		return nil
	}
	return a.instr(line)
}

// instr parses one instruction line.
func (a *assembler) instr(line string) error {
	pred := RegNone
	if strings.HasPrefix(line, "@") {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return fmt.Errorf("dangling predicate %q", line)
		}
		r, err := parseReg(line[1:sp])
		if err != nil {
			return err
		}
		pred = r
		line = strings.TrimSpace(line[sp+1:])
	}
	mnemonic, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	ops, kv, err := splitOperands(rest)
	if err != nil {
		return err
	}

	switch strings.ToUpper(mnemonic) {
	case "NOP":
		a.b.Nop()
	case "BAR":
		a.b.Bar()
	case "EXIT":
		a.b.Exit()
	case "BRA":
		if len(ops) != 1 {
			return fmt.Errorf("BRA wants a label, got %v", ops)
		}
		trip := int(kv["trip"])
		_, diverge := kv["diverge"]
		if pred == RegNone {
			a.b.Bra(ops[0])
		} else {
			a.b.BraCond(pred, ops[0], trip, diverge)
		}
	case "MOV":
		dst, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		if len(ops) != 2 {
			return fmt.Errorf("MOV wants 2 operands, got %v", ops)
		}
		if imm, ok := parseImm(ops[1]); ok {
			a.b.MovI(dst, imm)
		} else {
			src, err := parseReg(ops[1])
			if err != nil {
				return err
			}
			a.b.Mov(dst, src)
		}
	case "IADD":
		dst, srcA, err := parseTwo(ops)
		if err != nil {
			return err
		}
		if imm, ok := parseImm(ops[2]); ok {
			a.b.IAddI(dst, srcA, imm)
		} else {
			srcB, err := parseReg(ops[2])
			if err != nil {
				return err
			}
			a.b.IAdd(dst, srcA, srcB)
		}
	case "SHF":
		dst, srcA, err := parseTwo(ops)
		if err != nil {
			return err
		}
		imm, ok := parseImm(ops[2])
		if !ok {
			return fmt.Errorf("SHF wants an immediate shift, got %q", ops[2])
		}
		a.b.Shf(dst, srcA, imm)
	case "IMUL", "ISETP", "FADD", "FMUL":
		dst, srcA, err := parseTwo(ops)
		if err != nil {
			return err
		}
		srcB, err := parseReg(ops[2])
		if err != nil {
			return err
		}
		switch strings.ToUpper(mnemonic) {
		case "IMUL":
			a.b.IMul(dst, srcA, srcB)
		case "ISETP":
			a.b.ISetp(dst, srcA, srcB)
		case "FADD":
			a.b.FAdd(dst, srcA, srcB)
		case "FMUL":
			a.b.FMul(dst, srcA, srcB)
		}
	case "FFMA":
		if len(ops) != 4 {
			return fmt.Errorf("FFMA wants 4 operands, got %v", ops)
		}
		regs := make([]Reg, 4)
		for i, o := range ops {
			r, err := parseReg(o)
			if err != nil {
				return err
			}
			regs[i] = r
		}
		a.b.FFma(regs[0], regs[1], regs[2], regs[3])
	case "MUFU":
		if len(ops) != 2 {
			return fmt.Errorf("MUFU wants 2 operands, got %v", ops)
		}
		dst, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		srcA, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		a.b.Mufu(dst, srcA)
	case "LDG", "LDS":
		if len(ops) != 2 {
			return fmt.Errorf("%s wants dst, [addr], got %v", mnemonic, ops)
		}
		dst, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		addr, err := parseAddr(ops[1])
		if err != nil {
			return err
		}
		if strings.ToUpper(mnemonic) == "LDG" {
			a.b.Ldg(dst, addr, memFromKV(kv))
		} else {
			a.b.Lds(dst, addr)
		}
	case "STG", "STS":
		if len(ops) != 2 {
			return fmt.Errorf("%s wants [addr], src, got %v", mnemonic, ops)
		}
		addr, err := parseAddr(ops[0])
		if err != nil {
			return err
		}
		val, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		if strings.ToUpper(mnemonic) == "STG" {
			a.b.Stg(val, addr, memFromKV(kv))
		} else {
			a.b.Sts(val, addr)
		}
	default:
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	return nil
}

// splitOperands separates comma-separated operands from trailing key=value
// attributes (and bare flags like "diverge").
func splitOperands(rest string) (ops []string, kv map[string]int64, err error) {
	kv = map[string]int64{}
	fields := strings.Fields(rest)
	var opText []string
	for _, f := range fields {
		if k, v, ok := strings.Cut(f, "="); ok {
			n, perr := strconv.ParseInt(v, 10, 64)
			if perr != nil && k != "pattern" {
				return nil, nil, fmt.Errorf("bad attribute %q: %w", f, perr)
			}
			if k == "pattern" {
				n, perr = patternCode(v)
				if perr != nil {
					return nil, nil, perr
				}
			}
			kv[k] = n
			continue
		}
		if f == "diverge" {
			kv["diverge"] = 1
			continue
		}
		opText = append(opText, f)
	}
	for _, part := range strings.Split(strings.Join(opText, " "), ",") {
		if p := strings.TrimSpace(part); p != "" {
			ops = append(ops, p)
		}
	}
	return ops, kv, nil
}

func patternCode(s string) (int64, error) {
	switch s {
	case "coalesced":
		return int64(PatCoalesced), nil
	case "strided":
		return int64(PatStrided), nil
	case "random":
		return int64(PatRandom), nil
	case "broadcast":
		return int64(PatBroadcast), nil
	default:
		return 0, fmt.Errorf("unknown access pattern %q", s)
	}
}

func memFromKV(kv map[string]int64) MemDesc {
	return MemDesc{
		Pattern:   Pattern(kv["pattern"]),
		Stride:    int(kv["stride"]),
		Region:    uint8(kv["region"]),
		Footprint: kv["footprint"],
	}
}

func parseReg(s string) (Reg, error) {
	s = strings.TrimSpace(s)
	if s == "-" {
		return RegNone, nil
	}
	if len(s) < 2 || (s[0] != 'R' && s[0] != 'r') {
		return RegNone, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= MaxRegs {
		return RegNone, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

func parseImm(s string) (uint32, bool) {
	if !strings.HasPrefix(s, "#") {
		return 0, false
	}
	n, err := strconv.ParseInt(strings.TrimPrefix(s, "#"), 0, 64)
	if err != nil {
		return 0, false
	}
	return uint32(n), true
}

func parseAddr(s string) (Reg, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return RegNone, fmt.Errorf("bad address operand %q", s)
	}
	return parseReg(s[1 : len(s)-1])
}

// parseTwo parses the destination and first source of a 3-operand form.
func parseTwo(ops []string) (dst, srcA Reg, err error) {
	if len(ops) != 3 {
		return RegNone, RegNone, fmt.Errorf("want 3 operands, got %v", ops)
	}
	if dst, err = parseReg(ops[0]); err != nil {
		return
	}
	srcA, err = parseReg(ops[1])
	return
}
